package taskpar_test

import (
	"sync/atomic"
	"testing"

	"finishrepair/taskpar"
)

func executors(t *testing.T) map[string]*taskpar.Executor {
	t.Helper()
	pool := taskpar.NewPoolExecutor(4)
	t.Cleanup(pool.Shutdown)
	return map[string]*taskpar.Executor{
		"goroutines": taskpar.NewGoroutineExecutor(),
		"pool":       pool,
	}
}

func TestFinishWaitsForAllTasks(t *testing.T) {
	for name, exec := range executors(t) {
		t.Run(name, func(t *testing.T) {
			var n atomic.Int64
			exec.Finish(func(c *taskpar.Ctx) {
				for i := 0; i < 100; i++ {
					c.Async(func(c *taskpar.Ctx) {
						c.Async(func(*taskpar.Ctx) { n.Add(1) })
						n.Add(1)
					})
				}
			})
			if got := n.Load(); got != 200 {
				t.Errorf("finish returned before tasks completed: n = %d, want 200", got)
			}
		})
	}
}

func TestNestedFinishJoinsOnlyItsTasks(t *testing.T) {
	for name, exec := range executors(t) {
		t.Run(name, func(t *testing.T) {
			var inner, outer atomic.Int64
			exec.Finish(func(c *taskpar.Ctx) {
				c.Finish(func(c *taskpar.Ctx) {
					for i := 0; i < 50; i++ {
						c.Async(func(*taskpar.Ctx) { inner.Add(1) })
					}
				})
				if inner.Load() != 50 {
					t.Error("nested finish did not join its asyncs")
				}
				c.Async(func(*taskpar.Ctx) { outer.Add(1) })
			})
			if outer.Load() != 1 {
				t.Error("outer finish did not join trailing async")
			}
		})
	}
}

// Recursive fork/join: parallel Fibonacci with per-call result cells,
// the canonical structured-parallelism smoke test.
func TestParallelFib(t *testing.T) {
	for name, exec := range executors(t) {
		t.Run(name, func(t *testing.T) {
			var fib func(c *taskpar.Ctx, n int, out *int64)
			fib = func(c *taskpar.Ctx, n int, out *int64) {
				if n < 2 {
					*out = int64(n)
					return
				}
				var x, y int64
				c.Finish(func(c *taskpar.Ctx) {
					c.Async(func(c *taskpar.Ctx) { fib(c, n-1, &x) })
					c.Async(func(c *taskpar.Ctx) { fib(c, n-2, &y) })
				})
				*out = x + y
			}
			var r int64
			exec.Finish(func(c *taskpar.Ctx) { fib(c, 18, &r) })
			if r != 2584 {
				t.Errorf("fib(18) = %d, want 2584", r)
			}
		})
	}
}

func TestPanicPropagation(t *testing.T) {
	for name, exec := range executors(t) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("recovered %v, want boom", r)
				}
			}()
			exec.Finish(func(c *taskpar.Ctx) {
				c.Async(func(*taskpar.Ctx) { panic("boom") })
			})
			t.Error("Finish returned instead of panicking")
		})
	}
}

func TestPackageLevelFinish(t *testing.T) {
	var n atomic.Int64
	taskpar.Finish(func(c *taskpar.Ctx) {
		c.Async(func(*taskpar.Ctx) { n.Add(1) })
	})
	if n.Load() != 1 {
		t.Error("package-level Finish did not join")
	}
}
