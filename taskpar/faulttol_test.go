package taskpar_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"finishrepair/taskpar"
)

// recoverFrom runs f and returns the value it panicked with (nil if it
// returned normally).
func recoverFrom(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}

// TestPanicCancelsUnstartedSiblings pins the scope-cancellation
// contract on a 1-worker pool, where task order is deterministic: the
// panicking task is submitted first and runs first, so every sibling
// submitted after it must be skipped and the counter stays zero.
func TestPanicCancelsUnstartedSiblings(t *testing.T) {
	e := taskpar.NewPoolExecutor(1)
	defer e.Shutdown()
	var ran atomic.Int64
	v := recoverFrom(func() {
		e.Finish(func(c *taskpar.Ctx) {
			c.Async(func(*taskpar.Ctx) { panic("boom") })
			for i := 0; i < 64; i++ {
				c.Async(func(*taskpar.Ctx) { ran.Add(1) })
			}
		})
	})
	if v != "boom" {
		t.Fatalf("expected Finish to re-raise the task panic, got %v", v)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d sibling task(s) ran after the panic; all should be skipped", n)
	}
}

// TestNestedFinishPanicCancelsOuterSiblings: a panic inside a nested
// finish scope unwinds through the nested join into the outer task,
// which records it in the outer scope — so the outer scope's unstarted
// siblings are skipped too.
func TestNestedFinishPanicCancelsOuterSiblings(t *testing.T) {
	e := taskpar.NewPoolExecutor(1)
	defer e.Shutdown()
	var ran atomic.Int64
	v := recoverFrom(func() {
		e.Finish(func(c *taskpar.Ctx) {
			c.Async(func(c *taskpar.Ctx) {
				c.Finish(func(c *taskpar.Ctx) {
					c.Async(func(*taskpar.Ctx) { panic("inner boom") })
				})
			})
			for i := 0; i < 32; i++ {
				c.Async(func(*taskpar.Ctx) { ran.Add(1) })
			}
		})
	})
	if v != "inner boom" {
		t.Fatalf("expected the nested panic to propagate to the outer Finish, got %v", v)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d outer sibling task(s) ran after the nested panic", n)
	}
}

// TestPanicPropagatesExactlyOnceAndPoolIsReusable: with many panicking
// tasks, Finish re-raises exactly one of the recorded values, and the
// executor stays fully usable afterwards — no stale panic resurfaces on
// the next scope.
func TestPanicPropagatesExactlyOnceAndPoolIsReusable(t *testing.T) {
	e := taskpar.NewPoolExecutor(4)
	defer e.Shutdown()
	v := recoverFrom(func() {
		e.Finish(func(c *taskpar.Ctx) {
			for i := 0; i < 16; i++ {
				i := i
				c.Async(func(*taskpar.Ctx) { panic(i) })
			}
		})
	})
	if _, ok := v.(int); !ok {
		t.Fatalf("expected one of the task panic values, got %T (%v)", v, v)
	}
	// The same executor must run a fresh scope cleanly.
	var sum atomic.Int64
	v = recoverFrom(func() {
		e.Finish(func(c *taskpar.Ctx) {
			for i := 1; i <= 100; i++ {
				i := i
				c.Async(func(*taskpar.Ctx) { sum.Add(int64(i)) })
			}
		})
	})
	if v != nil {
		t.Fatalf("reused pool re-raised a stale panic: %v", v)
	}
	if got := sum.Load(); got != 5050 {
		t.Fatalf("reused pool computed %d, want 5050", got)
	}
}

// TestPoolShutdownAfterPanicLeaksNoGoroutines: after a panicking
// workload and Shutdown, the process goroutine count must return to its
// pre-pool baseline (small slack for runtime background goroutines).
func TestPoolShutdownAfterPanicLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	e := taskpar.NewPoolExecutor(4)
	recoverFrom(func() {
		e.Finish(func(c *taskpar.Ctx) {
			for i := 0; i < 32; i++ {
				c.Async(func(*taskpar.Ctx) { panic("boom") })
			}
		})
	})
	e.Shutdown()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before pool, %d after shutdown",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFinishCtxCancelSkipsUnstartedTasks: once the context is canceled,
// tasks that have not started are skipped (the running task completes —
// never preempted) and FinishCtx returns the context's cause.
func TestFinishCtxCancelSkipsUnstartedTasks(t *testing.T) {
	e := taskpar.NewPoolExecutor(1)
	defer e.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := e.FinishCtx(ctx, func(c *taskpar.Ctx) {
		c.Async(func(*taskpar.Ctx) {
			cancel()
			<-ctx.Done() // keep running after cancellation; must not be preempted
		})
		for i := 0; i < 64; i++ {
			c.Async(func(*taskpar.Ctx) { ran.Add(1) })
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FinishCtx returned %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d task(s) ran after cancellation", n)
	}
}

// TestFinishCtxNilAndUncanceled: FinishCtx with a live context behaves
// exactly like Finish and returns nil.
func TestFinishCtxNilAndUncanceled(t *testing.T) {
	e := taskpar.NewGoroutineExecutor()
	var sum atomic.Int64
	if err := e.FinishCtx(context.Background(), func(c *taskpar.Ctx) {
		for i := 1; i <= 10; i++ {
			i := i
			c.Async(func(*taskpar.Ctx) { sum.Add(int64(i)) })
		}
	}); err != nil {
		t.Fatalf("FinishCtx with live context returned %v", err)
	}
	if got := sum.Load(); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

// TestFinishCtxInheritedByNestedScope: a nested c.Finish opened under a
// canceled FinishCtx inherits the cancellation, so its tasks are
// skipped as well.
func TestFinishCtxInheritedByNestedScope(t *testing.T) {
	e := taskpar.NewPoolExecutor(1)
	defer e.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the scope even opens
	var ran atomic.Int64
	err := e.FinishCtx(ctx, func(c *taskpar.Ctx) {
		c.Finish(func(c *taskpar.Ctx) {
			c.Async(func(*taskpar.Ctx) { ran.Add(1) })
		})
		c.Async(func(*taskpar.Ctx) { ran.Add(1) })
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FinishCtx returned %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d task(s) ran under a pre-canceled context", n)
	}
}
