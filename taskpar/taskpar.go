// Package taskpar provides structured async/finish task parallelism for
// Go — the "finish scopes" that goroutines lack, modeled on Habanero
// Java and X10 and matching the semantics assumed by the repair tool:
//
//	taskpar.Finish(func(c *taskpar.Ctx) {
//	    c.Async(func(c *taskpar.Ctx) { left()  })
//	    c.Async(func(c *taskpar.Ctx) { right() })
//	}) // waits for left, right, and everything they spawned
//
// Async creates a child task that may run in parallel with the remainder
// of its parent; Finish waits for all tasks transitively created inside
// it (terminally-strict parallelism). Two executors are available:
// goroutine-per-task (default; simple and robust) and a bounded
// work-stealing pool in which blocked finish scopes help execute pending
// tasks instead of idling.
//
// Panics inside tasks propagate: the first panic observed in a finish
// scope is re-raised by Finish after all its tasks complete — exactly
// once, regardless of how many tasks panicked. A recorded panic also
// CANCELS the scope: sibling tasks that have not started yet are skipped
// (running tasks are never preempted), so a failing subtree does not
// keep burning workers while the scope drains. FinishCtx extends the
// same cooperative cancellation to a context.Context; nested finish
// scopes inherit it.
package taskpar

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"finishrepair/internal/obs"
	"finishrepair/internal/sched"
)

// Runtime metrics: tasks spawned, finish scopes waited on, and (in
// yield.go) the yields of blocked pool scopes.
var (
	mAsyncs   = obs.Default().Counter("taskpar.asyncs")
	mFinishes = obs.Default().Counter("taskpar.finish_waits")
)

// Executor runs async/finish programs.
type Executor struct {
	pool *sched.Pool // nil for goroutine-per-task mode
}

// NewGoroutineExecutor returns an executor that runs every async on its
// own goroutine.
func NewGoroutineExecutor() *Executor { return &Executor{} }

// NewPoolExecutor returns an executor backed by a work-stealing pool of
// n workers (n <= 0 means GOMAXPROCS). Close it with Shutdown.
func NewPoolExecutor(n int) *Executor {
	return &Executor{pool: sched.NewPool(n)}
}

// Shutdown releases pool workers; a no-op for the goroutine executor.
func (e *Executor) Shutdown() {
	if e.pool != nil {
		e.pool.Shutdown()
	}
}

// scope is one finish scope: a count of live transitive tasks and the
// first panic observed. The goroutine executor waits on the WaitGroup;
// the pool executor polls pending so a blocked scope can help run
// queued tasks.
type scope struct {
	pending atomic.Int64
	wg      sync.WaitGroup
	// done, when non-nil, is the cancellation channel of the context the
	// scope was opened under (FinishCtx); nested scopes inherit it.
	done     <-chan struct{}
	failed   atomic.Bool // set with the first recorded panic
	panicMu  sync.Mutex
	panicked any
	hasPanic bool
}

func (s *scope) recordPanic(v any) {
	s.panicMu.Lock()
	if !s.hasPanic {
		s.hasPanic = true
		s.panicked = v
		s.failed.Store(true)
	}
	s.panicMu.Unlock()
}

// aborted reports whether the scope should stop launching new tasks: a
// sibling already panicked, or the scope's context was canceled.
func (s *scope) aborted() bool {
	if s.failed.Load() {
		return true
	}
	if s.done != nil {
		select {
		case <-s.done:
			return true
		default:
		}
	}
	return false
}

func (s *scope) rethrow() {
	s.panicMu.Lock()
	defer s.panicMu.Unlock()
	if s.hasPanic {
		panic(s.panicked)
	}
}

// Ctx is the capability to spawn tasks and open nested finish scopes. A
// Ctx is bound to the innermost enclosing finish scope of the task that
// received it.
type Ctx struct {
	exec   *Executor
	scope  *scope
	worker *sched.Worker // non-nil when running on a pool worker
}

// Finish runs body in a new finish scope on executor e and blocks until
// every task transitively spawned inside has completed.
func (e *Executor) Finish(body func(*Ctx)) {
	e.finishOn(nil, nil, body)
}

// FinishCtx is Finish with cooperative cancellation: when ctx is
// canceled, tasks of the scope (and of nested scopes, which inherit the
// context) that have not started yet are skipped; tasks already running
// complete normally — they are never preempted. After the scope drains
// FinishCtx returns the context's cause, or nil if it was not canceled.
// Panics still propagate by re-raise, exactly as with Finish.
func (e *Executor) FinishCtx(ctx context.Context, body func(*Ctx)) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	e.finishOn(nil, done, body)
	if ctx != nil && ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// Finish runs body in a nested finish scope, waiting for its transitive
// tasks. The current task keeps its identity; only the join scope
// changes. The nested scope inherits the enclosing scope's cancellation
// context, if any.
func (c *Ctx) Finish(body func(*Ctx)) {
	c.exec.finishOn(c.worker, c.scope.done, body)
}

func (e *Executor) finishOn(w *sched.Worker, done <-chan struct{}, body func(*Ctx)) {
	mFinishes.Inc()
	s := &scope{done: done}
	ctx := &Ctx{exec: e, scope: s, worker: w}
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.recordPanic(r)
			}
		}()
		body(ctx)
	}()
	e.wait(ctx)
	s.rethrow()
}

// Async spawns fn as a child task of the current task. The child joins
// at the innermost enclosing finish scope. The child's Ctx spawns into
// the same scope.
func (c *Ctx) Async(fn func(*Ctx)) {
	mAsyncs.Inc()
	s := c.scope
	s.pending.Add(1)
	s.wg.Add(1)
	run := func(w *sched.Worker) {
		defer func() {
			if r := recover(); r != nil {
				s.recordPanic(r)
			}
			s.pending.Add(-1)
			s.wg.Done()
		}()
		// A panicked sibling or canceled context aborts the scope: tasks
		// that have not started yet are skipped (the join bookkeeping
		// above still runs, so the finish drains normally).
		if s.aborted() {
			return
		}
		fn(&Ctx{exec: c.exec, scope: s, worker: w})
	}
	if c.exec.pool == nil {
		go run(nil)
		return
	}
	if c.worker != nil {
		c.worker.Spawn(run)
	} else {
		c.exec.pool.Submit(sched.Task(run))
	}
}

// wait blocks until ctx's scope has no pending tasks. On the pool, a
// blocked scope helps run queued tasks ("help-first" waiting) to avoid
// deadlocking the fixed worker set.
func (e *Executor) wait(ctx *Ctx) {
	s := ctx.scope
	if e.pool == nil || ctx.worker == nil {
		s.wg.Wait()
		return
	}
	for s.pending.Load() > 0 {
		if !ctx.worker.RunOne() {
			// Nothing stealable right now; the remaining tasks are
			// running on other workers. Spin-yield via the WaitGroup
			// fast path is not available per-scope, so just yield.
			yield()
		}
	}
}

// Finish is the package-level convenience using a goroutine executor.
func Finish(body func(*Ctx)) {
	defaultExec.Finish(body)
}

var defaultExec = NewGoroutineExecutor()

// String implements fmt.Stringer for diagnostics.
func (e *Executor) String() string {
	if e.pool == nil {
		return "taskpar(goroutines)"
	}
	return fmt.Sprintf("taskpar(pool,%d)", e.pool.Size())
}
