package taskpar

import (
	"runtime"

	"finishrepair/internal/obs"
)

var mYields = obs.Default().Counter("taskpar.yields")

func yield() {
	mYields.Inc()
	runtime.Gosched()
}
