package taskpar

import "runtime"

func yield() { runtime.Gosched() }
