package main_test

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"finishrepair/internal/bench"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/race"
	"finishrepair/internal/repair"
	"finishrepair/tdr"
)

// testWorkers is the parallel worker count exercised by the determinism
// tests; the CI matrix overrides it via TDR_TEST_WORKERS.
func testWorkers(t *testing.T) int {
	if s := os.Getenv("TDR_TEST_WORKERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad TDR_TEST_WORKERS=%q", s)
		}
		return n
	}
	return 8
}

// repairOutcome is everything a repair run produces that callers can
// observe: the rewritten source and the per-iteration statistics.
type repairOutcome struct {
	source    string
	inserted  int
	races     []int
	nslcas    []int
	dpStates  int64
	degraded  bool
	iterCount int
}

func repairWithWorkers(t *testing.T, src string, workers int) repairOutcome {
	t.Helper()
	prog := parser.MustParse(src)
	ast.StripFinishes(prog)
	rep, err := repair.Repair(prog, repair.Options{
		UseTraceFiles: true,
		Engine:        race.EngineBoth,
		Workers:       workers,
	})
	if err != nil {
		t.Fatalf("repair (workers=%d): %v", workers, err)
	}
	out := repairOutcome{
		source:    printer.Print(prog),
		inserted:  rep.Inserted,
		dpStates:  rep.TotalDPStates(),
		degraded:  rep.Degraded,
		iterCount: len(rep.Iterations),
	}
	for _, it := range rep.Iterations {
		out.races = append(out.races, it.Races)
		out.nslcas = append(out.nslcas, it.NSLCAs)
	}
	return out
}

// TestRepairWorkersDeterministic repairs every benchmark program
// sequentially and with the parallel analysis pipeline (concurrent
// differential engines plus the per-NS-LCA DP worker pool) and requires
// byte-identical repaired source and identical per-iteration race and
// insertion statistics: worker count must never change the result.
func TestRepairWorkersDeterministic(t *testing.T) {
	workers := testWorkers(t)
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			src := b.Src(b.RepairSize)
			seq := repairWithWorkers(t, src, 1)
			par := repairWithWorkers(t, src, workers)
			if seq.source != par.source {
				t.Fatalf("repaired source differs between -j 1 and -j %d", workers)
			}
			if seq.inserted != par.inserted {
				t.Fatalf("insertions differ: -j 1 inserted %d, -j %d inserted %d", seq.inserted, workers, par.inserted)
			}
			if seq.iterCount != par.iterCount {
				t.Fatalf("iteration counts differ: %d vs %d", seq.iterCount, par.iterCount)
			}
			for i := range seq.races {
				if seq.races[i] != par.races[i] || seq.nslcas[i] != par.nslcas[i] {
					t.Fatalf("iteration %d differs: -j 1 (%d races, %d groups), -j %d (%d races, %d groups)",
						i, seq.races[i], seq.nslcas[i], workers, par.races[i], par.nslcas[i])
				}
			}
			if seq.dpStates != par.dpStates {
				t.Fatalf("DP states differ: %d vs %d", seq.dpStates, par.dpStates)
			}
			if seq.degraded || par.degraded {
				t.Fatalf("unexpected degraded placement without a budget")
			}
		})
	}
}

// TestRepairWorkersCancellation proves the parallel pipeline stays
// responsive to cancellation: a repair running with the full worker pool
// must return a typed error within 100ms of its context being canceled
// (the shared meter is checked from every concurrent replay and DP
// worker).
func TestRepairWorkersCancellation(t *testing.T) {
	b := bench.Get("Mergesort")
	prog, err := tdr.Load(b.Src(b.RepairSize))
	if err != nil {
		t.Fatal(err)
	}
	prog.StripFinishes()

	ctx, cancel := context.WithCancel(context.Background())
	var canceledAt time.Time
	go func() {
		time.Sleep(10 * time.Millisecond)
		canceledAt = time.Now()
		cancel()
	}()
	_, err = prog.RepairCtx(ctx, tdr.RepairOptions{
		Detector: tdr.MRW,
		Engine:   tdr.Both,
		Workers:  8,
	})
	returned := time.Now()
	if err == nil {
		t.Skip("repair finished before cancellation; nothing to measure")
	}
	if canceledAt.IsZero() {
		t.Fatalf("repair failed before cancellation: %v", err)
	}
	if lag := returned.Sub(canceledAt); lag > 100*time.Millisecond {
		t.Fatalf("cancellation lag %v exceeds 100ms", lag)
	}
}
