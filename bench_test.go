// Package main_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation (§7), plus
// micro-benchmarks of the substrate components.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The Table/Figure benchmarks use the repair-mode inputs (Table 1,
// column 4); full-size Figure 16 numbers come from `hjbench -fig 16`.
package main_test

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"finishrepair/internal/bench"
	"finishrepair/internal/homework"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/lexer"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/parinterp"
	"finishrepair/internal/race"
	"finishrepair/internal/repair"
	"finishrepair/taskpar"
)

// BenchmarkTable2_Detection measures race detection plus S-DPST
// construction per benchmark (Table 2, "Data Race Detection Time").
func BenchmarkTable2_Detection(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			prog := parser.MustParse(bm.Src(bm.RepairSize))
			ast.StripFinishes(prog)
			info := sem.MustCheck(prog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2_Repair measures the full repair loop per benchmark
// (Table 2, "Repair Time" plus detection rounds).
func BenchmarkTable2_Repair(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			src := bm.Src(bm.RepairSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				prog := parser.MustParse(src)
				ast.StripFinishes(prog)
				b.StartTimer()
				if _, err := repair.Repair(prog, repair.Options{UseTraceFiles: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3_SRWDetection is the SRW column of Table 3.
func BenchmarkTable3_SRWDetection(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			prog := parser.MustParse(bm.Src(bm.RepairSize))
			ast.StripFinishes(prog)
			info := sem.MustCheck(prog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := race.Detect(info, race.VariantSRW, race.NewBagsOracle()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16 measures the three execution modes of Figure 16 on the
// repair-size inputs (the full performance inputs run via hjbench).
func BenchmarkFig16_Sequential(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			prog := parser.MustParse(bm.Src(bm.RepairSize))
			ast.StripFinishes(prog)
			info := sem.MustCheck(prog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := interp.Run(info, interp.Options{Mode: interp.Elide}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16_OriginalParallel runs the expert-written parallel
// version on the work-stealing runtime.
func BenchmarkFig16_OriginalParallel(b *testing.B) {
	exec := taskpar.NewPoolExecutor(0)
	defer exec.Shutdown()
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			prog := parser.MustParse(bm.Src(bm.RepairSize))
			info := sem.MustCheck(prog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := parinterp.Run(info, parinterp.Options{Executor: exec}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16_RepairedParallel runs the tool-repaired version on the
// work-stealing runtime.
func BenchmarkFig16_RepairedParallel(b *testing.B) {
	exec := taskpar.NewPoolExecutor(0)
	defer exec.Shutdown()
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			src, err := bench.RepairedSource(bm, bm.RepairSize)
			if err != nil {
				b.Fatal(err)
			}
			prog := parser.MustParse(src)
			info := sem.MustCheck(prog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := parinterp.Run(info, parinterp.Options{Executor: exec}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHomework grades one submission of each class (§7.4).
func BenchmarkHomeworkGrading(b *testing.B) {
	toolSpan, toolSrc, err := homework.ToolRepair()
	if err != nil {
		b.Fatal(err)
	}
	subs := homework.Submissions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub := subs[i%len(subs)]
		if _, err := homework.Grade(sub, toolSpan, toolSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectEngines splits detection into its capture-once /
// analyze-many halves and compares the pluggable engines: "capture" is
// the one instrumented execution that records the event-trace IR,
// "espbags" / "vc" are pure trace replays through each detector backend,
// "both" runs the legacy two-engine differential pair serially (the
// independent-engines gold standard), and "both-j2" / "both-j4" run the
// fused dual-oracle engine with the requested analysis parallelism —
// one shadow scan cross-checking both oracles per ordering query,
// sharded by location hash when cores allow (race.AnalyzeParallel).
// Engines are released back to the shadow-memory reuse pool between
// iterations, as the repair loop does. Regenerate BENCH_detect.json
// with `make bench-detect`; gate regressions with `make bench-diff`
// (which also enforces both-jN <= both per benchmark).
func BenchmarkDetectEngines(b *testing.B) {
	release := func(eng race.Engine) {
		if r, ok := eng.(race.Releaser); ok {
			r.Release()
		}
	}
	// reportQuantiles attaches the per-iteration latency quantiles to
	// the result (p50-ns/op etc.); scripts/benchdiff gates on p95 so a
	// tail regression can't hide behind a stable mean.
	reportQuantiles := func(b *testing.B, durs []time.Duration) {
		if len(durs) == 0 {
			return
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		q := func(p float64) float64 {
			return float64(durs[int(p*float64(len(durs)-1)+0.5)])
		}
		b.ReportMetric(q(0.50), "p50-ns/op")
		b.ReportMetric(q(0.95), "p95-ns/op")
		b.ReportMetric(q(0.99), "p99-ns/op")
	}
	for _, bm := range bench.All() {
		bm := bm
		prog := parser.MustParse(bm.Src(bm.RepairSize))
		ast.StripFinishes(prog)
		info := sem.MustCheck(prog)
		_, tr, err := race.Capture(info, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bm.Name+"/capture", func(b *testing.B) {
			b.ReportAllocs()
			runtime.GC() // pay the previous stage's GC debt outside the timer
			durs := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, _, err := race.Capture(info, nil); err != nil {
					b.Fatal(err)
				}
				durs = append(durs, time.Since(t0))
			}
			b.ReportMetric(float64(tr.Len()), "events")
			reportQuantiles(b, durs)
		})
		for _, kind := range []race.EngineKind{race.EngineESPBags, race.EngineVC} {
			kind := kind
			b.Run(bm.Name+"/"+kind.String(), func(b *testing.B) {
				b.ReportAllocs()
				// Warm the detector pools so B/op reflects the
				// steady state, not one-time slab growth.
				eng := race.NewEngine(kind, race.VariantMRW)
				if _, err := race.Analyze(tr, info.Prog, nil, eng, nil, false); err != nil {
					b.Fatal(err)
				}
				release(eng)
				runtime.GC()
				durs := make([]time.Duration, 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t0 := time.Now()
					eng := race.NewEngine(kind, race.VariantMRW)
					if _, err := race.Analyze(tr, info.Prog, nil, eng, nil, false); err != nil {
						b.Fatal(err)
					}
					release(eng)
					durs = append(durs, time.Since(t0))
				}
				reportQuantiles(b, durs)
			})
		}
		for _, workers := range []int{1, 2, 4} {
			workers := workers
			stage := "both"
			if workers > 1 {
				stage = fmt.Sprintf("both-j%d", workers)
			}
			// both = legacy two-engine differential, serial; both-jN =
			// fused dual-oracle engine under AnalyzeParallel.
			mkEng := func() race.Engine {
				if workers > 1 {
					return race.NewFused(race.VariantMRW)
				}
				return race.NewEngine(race.EngineBoth, race.VariantMRW)
			}
			b.Run(bm.Name+"/"+stage, func(b *testing.B) {
				b.ReportAllocs()
				check := func(eng race.Engine) {
					if c, ok := eng.(race.Checker); ok {
						if err := c.Check(); err != nil {
							b.Fatal(err)
						}
					}
				}
				eng := mkEng()
				if _, err := race.AnalyzeParallel(tr, info.Prog, nil, eng, nil, false, workers); err != nil {
					b.Fatal(err)
				}
				check(eng)
				release(eng)
				runtime.GC()
				durs := make([]time.Duration, 0, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t0 := time.Now()
					eng := mkEng()
					if _, err := race.AnalyzeParallel(tr, info.Prog, nil, eng, nil, false, workers); err != nil {
						b.Fatal(err)
					}
					check(eng)
					release(eng)
					durs = append(durs, time.Since(t0))
				}
				reportQuantiles(b, durs)
			})
		}
	}
}

// ----------------------------------------------------------------------
// Substrate micro-benchmarks (ablations).

// BenchmarkOracle compares the two ordering oracles that parameterize
// the detectors (ESP-Bags union-find vs Theorem-1 S-DPST queries) on the
// mergesort race workload — the design choice discussed in DESIGN.md.
func BenchmarkOracle(b *testing.B) {
	bm := bench.Get("Mergesort")
	src := bm.Src(300)
	oracles := map[string]func() race.Oracle{
		"ESPBags": func() race.Oracle { return race.NewBagsOracle() },
		"DPST":    func() race.Oracle { return race.NewDPSTOracle() },
	}
	for name, mk := range oracles {
		b.Run(name, func(b *testing.B) {
			prog := parser.MustParse(src)
			ast.StripFinishes(prog)
			info := sem.MustCheck(prog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := race.Detect(info, race.VariantMRW, mk()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDPSolver measures Algorithm 1 on dependence graphs of
// increasing size (the O(n^3) dynamic program).
func BenchmarkDPSolver(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512} {
		p := &repair.Problem{N: n, T: make([]int64, n), Async: make([]bool, n)}
		for i := 0; i < n; i++ {
			p.T[i] = int64(i%13 + 1)
			p.Async[i] = i%2 == 0
		}
		for i := 0; i+3 < n; i += 4 {
			p.Edges = append(p.Edges, [2]int{i, i + 3})
		}
		b.Run(benchName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repair.Solve(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveParallel measures the per-NS-LCA DP worker pool: a
// batch of independent placement problems solved sequentially vs on 4
// workers (repair rounds with many race groups take this path).
func BenchmarkSolveParallel(b *testing.B) {
	const n, batch = 128, 16
	mkProbs := func() []*repair.Problem {
		probs := make([]*repair.Problem, batch)
		for k := range probs {
			p := &repair.Problem{N: n, T: make([]int64, n), Async: make([]bool, n)}
			for i := 0; i < n; i++ {
				p.T[i] = int64((i+k)%13 + 1)
				p.Async[i] = i%2 == 0
			}
			for i := 0; i+3 < n; i += 4 {
				p.Edges = append(p.Edges, [2]int{i, i + 3})
			}
			probs[k] = p
		}
		return probs
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			probs := mkProbs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := repair.SolveAll(probs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShadowEpoch measures the epoch-frontier MRW shadow memory on
// the Mergesort detection workload: "fresh" allocates a new detector
// per replay, "pooled" releases it back to the reuse pool between
// replays (the repair loop's analyze-many pattern).
func BenchmarkShadowEpoch(b *testing.B) {
	bm := bench.Get("Mergesort")
	prog := parser.MustParse(bm.Src(bm.RepairSize))
	ast.StripFinishes(prog)
	info := sem.MustCheck(prog)
	_, tr, err := race.Capture(info, nil)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, pooled bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det := race.NewMRW(race.NewBagsOracle())
			if _, err := race.Analyze(tr, info.Prog, nil, det, nil, false); err != nil {
				b.Fatal(err)
			}
			if pooled {
				det.Release()
			}
		}
	}
	b.Run("fresh", func(b *testing.B) { run(b, false) })
	b.Run("pooled", func(b *testing.B) { run(b, true) })
}

func benchName(n int) string {
	switch n {
	case 8:
		return "n=8"
	case 32:
		return "n=32"
	case 128:
		return "n=128"
	default:
		return "n=512"
	}
}

// BenchmarkLexer and BenchmarkParser measure front-end throughput.
func BenchmarkLexer(b *testing.B) {
	src := bench.Get("Mergesort").Src(1000)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		toks, errs := lexer.ScanAll(src)
		if len(errs) > 0 || len(toks) == 0 {
			b.Fatal("lex failed")
		}
	}
}

func BenchmarkParser(b *testing.B) {
	src := bench.Get("Mergesort").Src(1000)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaskpar measures the structured-concurrency runtime: spawn +
// join throughput in both executors.
func BenchmarkTaskparSpawnJoin(b *testing.B) {
	execs := map[string]*taskpar.Executor{
		"goroutines": taskpar.NewGoroutineExecutor(),
		"pool":       taskpar.NewPoolExecutor(0),
	}
	defer execs["pool"].Shutdown()
	for name, exec := range execs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exec.Finish(func(c *taskpar.Ctx) {
					for j := 0; j < 64; j++ {
						c.Async(func(*taskpar.Ctx) {})
					}
				})
			}
		})
	}
}
