package interp

import (
	"math"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
)

func (in *interp) eval(f *frame, e ast.Expr) Value {
	in.tick()
	switch ex := e.(type) {
	case *ast.IntLit:
		return IntV(ex.Value)
	case *ast.FloatLit:
		return FloatV(ex.Value)
	case *ast.BoolLit:
		return BoolV(ex.Value)
	case *ast.StringLit:
		return StringV(ex.Value)
	case *ast.Ident:
		return in.loadVar(ex.Sym.(*sem.Symbol), f)
	case *ast.UnaryExpr:
		x := in.eval(f, ex.X)
		switch ex.Op {
		case token.SUB:
			if x.K == KInt {
				return IntV(-x.I)
			}
			return FloatV(-x.F)
		case token.NOT:
			return BoolV(!x.Bool())
		}
	case *ast.BinaryExpr:
		return in.evalBinary(f, ex)
	case *ast.IndexExpr:
		arr, i := in.evalIndexTarget(f, ex)
		in.readLoc(arr.Base + uint64(i))
		return arr.Elems[i]
	case *ast.MakeExpr:
		n := in.eval(f, ex.Len)
		if n.I < 0 {
			throwf("make with negative length %d at %s", n.I, ex.Pos())
		}
		a := &Array{Elems: make([]Value, n.I)}
		z := zeroValue(ex.Elem)
		for i := range a.Elems {
			a.Elems[i] = z
		}
		if in.opts.Instrument {
			a.Base = in.nextLoc
			in.nextLoc += uint64(n.I)
		}
		return Value{K: KArray, A: a}
	case *ast.CallExpr:
		return in.evalCall(f, ex)
	}
	throwf("unknown expression %T", e)
	return Value{}
}

func (in *interp) evalBinary(f *frame, ex *ast.BinaryExpr) Value {
	// Short-circuit operators.
	switch ex.Op {
	case token.LAND:
		x := in.eval(f, ex.X)
		if !x.Bool() {
			return BoolV(false)
		}
		return BoolV(in.eval(f, ex.Y).Bool())
	case token.LOR:
		x := in.eval(f, ex.X)
		if x.Bool() {
			return BoolV(true)
		}
		return BoolV(in.eval(f, ex.Y).Bool())
	}
	x := in.eval(f, ex.X)
	y := in.eval(f, ex.Y)
	if x.K == KInt && y.K == KInt {
		switch ex.Op {
		case token.ADD:
			return IntV(x.I + y.I)
		case token.SUB:
			return IntV(x.I - y.I)
		case token.MUL:
			return IntV(x.I * y.I)
		case token.QUO:
			if y.I == 0 {
				throwf("integer division by zero at %s", ex.OpPos)
			}
			return IntV(x.I / y.I)
		case token.REM:
			if y.I == 0 {
				throwf("integer modulo by zero at %s", ex.OpPos)
			}
			return IntV(x.I % y.I)
		case token.AND:
			return IntV(x.I & y.I)
		case token.OR:
			return IntV(x.I | y.I)
		case token.XOR:
			return IntV(x.I ^ y.I)
		case token.SHL:
			if y.I < 0 || y.I > 63 {
				throwf("shift count %d out of range at %s", y.I, ex.OpPos)
			}
			return IntV(x.I << uint(y.I))
		case token.SHR:
			if y.I < 0 || y.I > 63 {
				throwf("shift count %d out of range at %s", y.I, ex.OpPos)
			}
			return IntV(x.I >> uint(y.I))
		case token.LSS:
			return BoolV(x.I < y.I)
		case token.LEQ:
			return BoolV(x.I <= y.I)
		case token.GTR:
			return BoolV(x.I > y.I)
		case token.GEQ:
			return BoolV(x.I >= y.I)
		case token.EQL:
			return BoolV(x.I == y.I)
		case token.NEQ:
			return BoolV(x.I != y.I)
		}
	}
	if x.K == KFloat && y.K == KFloat {
		switch ex.Op {
		case token.ADD:
			return FloatV(x.F + y.F)
		case token.SUB:
			return FloatV(x.F - y.F)
		case token.MUL:
			return FloatV(x.F * y.F)
		case token.QUO:
			return FloatV(x.F / y.F)
		case token.LSS:
			return BoolV(x.F < y.F)
		case token.LEQ:
			return BoolV(x.F <= y.F)
		case token.GTR:
			return BoolV(x.F > y.F)
		case token.GEQ:
			return BoolV(x.F >= y.F)
		case token.EQL:
			return BoolV(x.F == y.F)
		case token.NEQ:
			return BoolV(x.F != y.F)
		}
	}
	if x.K == KBool && y.K == KBool {
		switch ex.Op {
		case token.EQL:
			return BoolV(x.I == y.I)
		case token.NEQ:
			return BoolV(x.I != y.I)
		}
	}
	throwf("invalid operands for %s at %s", ex.Op, ex.OpPos)
	return Value{}
}

func (in *interp) evalCall(f *frame, ex *ast.CallExpr) Value {
	switch target := ex.Target.(type) {
	case *sem.Builtin:
		return in.evalBuiltin(f, ex, target)
	case *ast.FuncDecl:
		args := make([]Value, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = in.eval(f, a)
		}
		return in.callFunc(target, args, in.siteBlock, in.siteIdx)
	}
	throwf("call of unresolved function %s at %s", ex.Fun, ex.FunPos)
	return Value{}
}

func (in *interp) evalBuiltin(f *frame, ex *ast.CallExpr, b *sem.Builtin) Value {
	args := make([]Value, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = in.eval(f, a)
	}
	switch b.ID() {
	case sem.BLen:
		if args[0].A == nil {
			throwf("len of nil array at %s", ex.FunPos)
		}
		return IntV(int64(len(args[0].A.Elems)))
	case sem.BPrint, sem.BPrintln:
		for i, a := range args {
			if i > 0 {
				in.out.WriteByte(' ')
			}
			in.out.WriteString(a.String())
		}
		if b.ID() == sem.BPrintln {
			in.out.WriteByte('\n')
		}
		return VoidV()
	case sem.BIntConv:
		if args[0].K == KFloat {
			return IntV(int64(args[0].F))
		}
		return args[0]
	case sem.BFloatConv:
		if args[0].K == KInt {
			return FloatV(float64(args[0].I))
		}
		return args[0]
	case sem.BSqrt:
		return FloatV(math.Sqrt(args[0].F))
	case sem.BSin:
		return FloatV(math.Sin(args[0].F))
	case sem.BCos:
		return FloatV(math.Cos(args[0].F))
	case sem.BPow:
		return FloatV(math.Pow(args[0].F, args[1].F))
	case sem.BExp:
		return FloatV(math.Exp(args[0].F))
	case sem.BLog:
		return FloatV(math.Log(args[0].F))
	case sem.BFloor:
		return FloatV(math.Floor(args[0].F))
	case sem.BAbs:
		if args[0].K == KInt {
			if args[0].I < 0 {
				return IntV(-args[0].I)
			}
			return args[0]
		}
		return FloatV(math.Abs(args[0].F))
	}
	throwf("unknown builtin %s at %s", ex.Fun, ex.FunPos)
	return Value{}
}
