package interp

import (
	"bytes"

	"finishrepair/internal/dpst"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
	"finishrepair/internal/trace"
)

// Mode selects how parallel constructs are executed.
type Mode int

// Execution modes.
const (
	// DepthFirst executes asyncs inline in depth-first order (the
	// canonical sequential execution used for race detection).
	DepthFirst Mode = iota
	// Elide ignores async and finish entirely: the serial elision. Used
	// as the semantic reference and for HJ-Seq timings.
	Elide
)

// Options configures a run.
type Options struct {
	Mode Mode
	// Instrument enables S-DPST construction and access instrumentation.
	Instrument bool
	// Trace, when set, captures the event-trace IR of this run: structure
	// events, step boundaries, and memory accesses stream into the
	// recorder so analyses can replay the execution without re-running
	// it. Requires Instrument and the DepthFirst mode.
	Trace *trace.Recorder
	// OpLimit bounds this run's work units; 0 means the shared default
	// (guard.DefaultOpLimit), so sequential, instrumented, and parallel
	// runs all agree on one bound.
	OpLimit int64
	// Meter, when set, threads the pipeline's shared budget through the
	// hot loop: cumulative op accounting, periodic cancellation/deadline
	// checks, and the S-DPST node bound. Nil costs one pointer test.
	Meter *guard.Meter
	// NoCollapse disables maximal-step collapsing of task-free scope
	// subtrees (the paper's §9 "garbage collection of parts of the
	// S-DPST that do not exhibit race conditions", realized eagerly).
	// Used only for the ablation study; production runs collapse.
	NoCollapse bool
}

// Result summarizes a run.
type Result struct {
	Tree   *dpst.Tree // nil unless instrumented
	Output string
	Work   int64 // total work units executed
	Steps  int   // number of step nodes (instrumented runs)
	// Globals is the final value of every global variable slot, in slot
	// order. The adversarial scheduler compares it (rendered via
	// RenderState) against controlled-schedule runs: two executions agree
	// only if both output and final shared state match.
	Globals []Value
}

// Run executes the checked program and returns the result. Runtime
// faults are returned as *RuntimeError.
func Run(info *sem.Info, opts Options) (*Result, error) {
	in := &interp{
		info:      info,
		opts:      opts,
		ev:        opts.Trace,
		opLimit:   opts.OpLimit,
		meter:     opts.Meter,
		nodeLimit: opts.Meter.MaxSDPSTNodes(),
	}
	if in.ev != nil && (!opts.Instrument || opts.Mode != DepthFirst) {
		return nil, &RuntimeError{Msg: "trace capture requires the instrumented depth-first mode"}
	}
	if in.opLimit == 0 {
		in.opLimit = guard.DefaultOpLimit
	}
	if opts.Instrument {
		in.tree = dpst.NewTree()
		in.curNode = in.tree.Root
		in.nextLoc = 1 + uint64(info.GlobalCount)
	}
	in.globals = make([]Value, info.GlobalCount)

	res := &Result{}
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if re, ok := r.(*RuntimeError); ok {
					err = re
					return
				}
				// Budget trips and cancellations unwind via guard.Bail;
				// return the typed error they carry.
				if b, ok := r.(guard.Bail); ok {
					err = b.Err
					return
				}
				panic(r)
			}
		}()
		for _, g := range info.Prog.Globals {
			in.execGlobal(g)
		}
		main := info.Prog.Func("main")
		in.callFunc(main, nil, nil, 0)
		return nil
	}()

	// Flush the unbatched tail so cumulative accounting across pipeline
	// runs stays accurate; enforcement already happened in tick.
	if in.meter != nil && in.sinceMeter > 0 {
		_ = in.meter.AddOps(in.sinceMeter)
		in.sinceMeter = 0
	}

	if opts.Instrument {
		in.endStep()
		in.tree.AggregateWork()
		res.Tree = in.tree
		res.Steps = in.steps
	}
	res.Output = in.out.String()
	res.Work = in.work
	res.Globals = in.globals
	return res, err
}

type frame struct {
	slots []Value
}

type interp struct {
	info    *sem.Info
	opts    Options
	globals []Value
	out     bytes.Buffer

	work    int64
	opLimit int64

	// Event-trace capture (nil = off).
	ev *trace.Recorder

	// Shared pipeline budget (nil = unlimited); sinceMeter batches the
	// meter calls so the hot loop stays one increment and two compares.
	meter      *guard.Meter
	sinceMeter int64
	nodeLimit  int64 // S-DPST node budget (0 = unlimited)
	nodes      int64 // nodes created this run

	// Instrumentation state.
	tree    *dpst.Tree
	curNode *dpst.Node // innermost interior node
	curStep *dpst.Node
	nextLoc uint64
	steps   int

	// Innermost statement coordinates, for call scopes opened
	// mid-expression.
	siteBlock *ast.Block
	siteIdx   int

	// isoDepth is the lexical isolated-nesting depth of the current
	// execution point (runtime backstop for the sem isolation check).
	isoDepth int
}

// meterBatch is how many ticks elapse between flushes to the shared
// meter (which itself checks cancellation every guard check interval).
const meterBatch = 1024

// tick charges one work unit to the current step.
func (in *interp) tick() {
	in.work++
	if in.work > in.opLimit {
		panic(guard.Bail{Err: &guard.BudgetExceededError{
			Resource: guard.ResourceOps,
			Phase:    in.meter.CurrentPhase(),
			Limit:    in.opLimit,
			Used:     in.work,
		}})
	}
	if in.meter != nil {
		if in.sinceMeter++; in.sinceMeter >= meterBatch {
			in.sinceMeter = 0
			if err := in.meter.AddOps(meterBatch); err != nil {
				panic(guard.Bail{Err: err})
			}
		}
	}
	if in.curStep != nil {
		in.curStep.Work++
		if in.ev != nil {
			in.ev.AddWork(1)
		}
	}
}

// noteNode charges one S-DPST node against the node budget.
func (in *interp) noteNode() {
	in.nodes++
	if in.nodeLimit > 0 && in.nodes > in.nodeLimit {
		panic(guard.Bail{Err: in.meter.NodeBudgetError(in.nodes)})
	}
}

// ensureStep makes sure a current step exists covering statement idx of
// block b, extending the trailing step when possible. It also records
// the statement site so that steps can be re-established after an
// interior node (e.g. a call scope) ends mid-statement.
func (in *interp) ensureStep(b *ast.Block, idx int) {
	if !in.opts.Instrument {
		return
	}
	in.siteBlock, in.siteIdx = b, idx
	if in.ev != nil {
		in.ev.Step(b, idx)
	}
	if in.curStep == nil {
		// Maximal steps: when the previous construct collapsed into a
		// trailing step of the same block, extend it instead of starting
		// a new one.
		if k := len(in.curNode.Children); k > 0 {
			last := in.curNode.Children[k-1]
			if last.Kind == dpst.Step && last.OwnerBlock == b {
				in.curStep = last
			}
		}
	}
	if in.curStep != nil {
		if idx >= 0 {
			if idx > in.curStep.StmtHi {
				in.curStep.StmtHi = idx
			}
			if in.curStep.StmtLo == -2 {
				in.curStep.StmtLo = idx
			}
		}
		return
	}
	in.noteNode()
	s := in.tree.NewChild(in.curNode, dpst.Step, dpst.NotScope, "")
	s.OwnerBlock = b
	s.StmtLo, s.StmtHi = idx, idx
	in.curStep = s
	in.steps++
}

func (in *interp) endStep() {
	if in.curStep != nil && in.ev != nil {
		in.ev.End()
	}
	in.curStep = nil
}

// pushNode opens an interior S-DPST node for the construct at statement
// idx of block owner, whose children instantiate body.
func (in *interp) pushNode(kind dpst.Kind, class dpst.ScopeClass, label string, stmt ast.Stmt, owner *ast.Block, idx int, body *ast.Block) *dpst.Node {
	if !in.opts.Instrument {
		return nil
	}
	in.endStep()
	in.noteNode()
	n := in.tree.NewChild(in.curNode, kind, class, label)
	n.OwnerBlock = owner
	n.StmtLo, n.StmtHi = idx, idx
	n.Body = body
	n.Stmt = stmt
	in.curNode = n
	if in.ev != nil {
		in.ev.Push(uint8(kind), uint8(class), label, owner, idx, body)
	}
	return n
}

func (in *interp) popNode() {
	if !in.opts.Instrument {
		return
	}
	in.endStep()
	if in.ev != nil {
		in.ev.Pop()
	}
	closing := in.curNode
	in.curNode = in.curNode.Parent
	// Maximal steps: a scope whose subtree spawned no tasks is just
	// sequential work — fold it into a step (and into the preceding
	// step, when adjacent).
	if !in.opts.NoCollapse {
		in.tree.CollapseScope(closing)
	}
}

func (in *interp) readLoc(loc uint64) {
	if in.ev != nil && loc != 0 {
		if in.curStep == nil {
			// A call scope ended mid-statement; resume a step at the
			// recorded statement site.
			in.ensureStep(in.siteBlock, in.siteIdx)
		}
		in.ev.Read(loc)
	}
}

func (in *interp) writeLoc(loc uint64) {
	if in.ev != nil && loc != 0 {
		if in.curStep == nil {
			in.ensureStep(in.siteBlock, in.siteIdx)
		}
		in.ev.Write(loc)
	}
}

func (in *interp) execGlobal(g *ast.VarDeclStmt) {
	in.ensureStep(nil, 0)
	in.tick()
	sym := g.Sym.(*sem.Symbol)
	var v Value
	if g.Init != nil {
		v = in.eval(nil, g.Init)
	} else {
		v = zeroValue(g.Type)
	}
	in.globals[sym.Slot] = v
	// Global initialization happens before main and is ordered before
	// everything; it is not reported to the access listener.
}

// control-flow signal for return statements.
type ctrl struct {
	returned bool
	val      Value
}

func (in *interp) execBlock(f *frame, b *ast.Block) ctrl {
	for i, s := range b.Stmts {
		if c := in.execStmt(f, b, i, s); c.returned {
			return c
		}
	}
	return ctrl{}
}

func (in *interp) execStmt(f *frame, b *ast.Block, idx int, s ast.Stmt) ctrl {
	switch st := s.(type) {
	case *ast.VarDeclStmt:
		in.ensureStep(b, idx)
		in.tick()
		sym := st.Sym.(*sem.Symbol)
		var v Value
		if st.Init != nil {
			v = in.eval(f, st.Init)
		} else {
			v = zeroValue(st.Type)
		}
		f.slots[sym.Slot] = v
		return ctrl{}

	case *ast.AssignStmt:
		in.ensureStep(b, idx)
		in.tick()
		in.execAssign(f, st)
		return ctrl{}

	case *ast.ExprStmt:
		in.ensureStep(b, idx)
		in.tick()
		in.setCallSite(b, idx)
		in.eval(f, st.X)
		return ctrl{}

	case *ast.ReturnStmt:
		in.ensureStep(b, idx)
		in.tick()
		var v Value
		if st.Value != nil {
			in.setCallSite(b, idx)
			v = in.eval(f, st.Value)
		}
		return ctrl{returned: true, val: v}

	case *ast.IfStmt:
		in.ensureStep(b, idx)
		in.tick()
		in.setCallSite(b, idx)
		cond := in.eval(f, st.Cond)
		if cond.Bool() {
			in.pushNode(dpst.Scope, dpst.IfScope, "if", st, b, idx, st.Then)
			c := in.execBlock(f, st.Then)
			in.popNode()
			return c
		}
		if st.Else != nil {
			in.pushNode(dpst.Scope, dpst.ElseScope, "else", st, b, idx, st.Else)
			c := in.execBlock(f, st.Else)
			in.popNode()
			return c
		}
		return ctrl{}

	case *ast.WhileStmt:
		in.ensureStep(b, idx)
		in.tick()
		in.pushNode(dpst.Scope, dpst.LoopScope, "while", st, b, idx, st.Body)
		for {
			in.pushNode(dpst.Scope, dpst.LoopIter, "iter", st, st.Body, -1, st.Body)
			in.ensureStep(st.Body, -1)
			in.setCallSite(st.Body, -1)
			cond := in.eval(f, st.Cond)
			if !cond.Bool() {
				in.popNode()
				break
			}
			in.endStep()
			c := in.execBlock(f, st.Body)
			in.popNode()
			if c.returned {
				in.popNode()
				return c
			}
		}
		in.popNode()
		return ctrl{}

	case *ast.ForStmt:
		in.ensureStep(b, idx)
		in.tick()
		in.pushNode(dpst.Scope, dpst.LoopScope, "for", st, b, idx, st.Body)
		if st.Init != nil {
			// The init statement is charged to a header pseudo-step of
			// the loop scope.
			if c := in.execStmt(f, st.Body, -1, st.Init); c.returned {
				in.popNode()
				return c
			}
			in.endStep()
		}
		for {
			in.pushNode(dpst.Scope, dpst.LoopIter, "iter", st, st.Body, -1, st.Body)
			if st.Cond != nil {
				in.ensureStep(st.Body, -1)
				in.setCallSite(st.Body, -1)
				cond := in.eval(f, st.Cond)
				if !cond.Bool() {
					in.popNode()
					break
				}
				in.endStep()
			}
			c := in.execBlock(f, st.Body)
			if c.returned {
				in.popNode()
				in.popNode()
				return c
			}
			if st.Post != nil {
				if c := in.execStmt(f, st.Body, -1, st.Post); c.returned {
					in.popNode()
					in.popNode()
					return c
				}
			}
			in.popNode()
		}
		in.popNode()
		return ctrl{}

	case *ast.AsyncStmt:
		if in.isoDepth > 0 {
			// Runtime backstop for the sem check: calls can smuggle an
			// async into an isolated body only if the checker was bypassed.
			throwf("async not allowed inside isolated at %s", st.AsyncPos)
		}
		in.ensureStep(b, idx)
		in.tick()
		in.pushNode(dpst.Async, dpst.NotScope, "async", st, b, idx, st.Body)
		if in.opts.Mode == Elide {
			c := in.execBlock(f, st.Body)
			in.popNode()
			// In the elision, return inside what was an async body
			// returns from the enclosing function.
			return c
		}
		// Depth-first inline execution with a by-value snapshot of the
		// parent frame (HJ final-variable capture semantics).
		child := &frame{slots: make([]Value, len(f.slots))}
		copy(child.slots, f.slots)
		in.execBlock(child, st.Body)
		in.popNode()
		return ctrl{}

	case *ast.FinishStmt:
		// Finish statements are free in the cost model so that repaired
		// programs have exactly the work of the original.
		if in.isoDepth > 0 {
			throwf("finish not allowed inside isolated at %s", st.FinishPos)
		}
		in.pushNode(dpst.Finish, dpst.NotScope, "finish", st, b, idx, st.Body)
		c := in.execBlock(f, st.Body)
		in.popNode()
		return c

	case *ast.IsolatedStmt:
		// Isolated statements are free in the cost model, like finish, so
		// that repaired programs have exactly the work of the original.
		// Serially the body just runs inline; the IsoScope class marks the
		// region so collapse attributes its work as serialized IsoWork.
		in.isoDepth++
		if n := in.pushNode(dpst.Scope, dpst.IsoScope, "isolated", st, b, idx, st.Body); n != nil {
			n.IsoClass = st.LockClass
		}
		c := in.execBlock(f, st.Body)
		in.popNode()
		in.isoDepth--
		return c

	case *ast.BlockStmt:
		in.ensureStep(b, idx)
		in.tick()
		in.pushNode(dpst.Scope, dpst.BlockScope, "block", st, b, idx, st.Body)
		c := in.execBlock(f, st.Body)
		in.popNode()
		return c
	}
	throwf("unknown statement %T", s)
	return ctrl{}
}

func (in *interp) execAssign(f *frame, st *ast.AssignStmt) {
	rhs := in.eval(f, st.RHS)
	switch lhs := st.LHS.(type) {
	case *ast.Ident:
		sym := lhs.Sym.(*sem.Symbol)
		if st.Op != token.ASSIGN {
			old := in.loadVar(sym, f)
			rhs = applyCompound(st, old, rhs)
		}
		in.storeVar(sym, f, rhs)
	case *ast.IndexExpr:
		arr, i := in.evalIndexTarget(f, lhs)
		if st.Op != token.ASSIGN {
			in.readLoc(arr.Base + uint64(i))
			old := arr.Elems[i]
			rhs = applyCompound(st, old, rhs)
		}
		arr.Elems[i] = rhs
		in.writeLoc(arr.Base + uint64(i))
	default:
		throwf("invalid assignment target %T", st.LHS)
	}
}

func applyCompound(st *ast.AssignStmt, old, rhs Value) Value {
	switch old.K {
	case KInt:
		switch st.Op {
		case token.ADDASSIGN:
			return IntV(old.I + rhs.I)
		case token.SUBASSIGN:
			return IntV(old.I - rhs.I)
		case token.MULASSIGN:
			return IntV(old.I * rhs.I)
		case token.QUOASSIGN:
			if rhs.I == 0 {
				throwf("integer division by zero")
			}
			return IntV(old.I / rhs.I)
		}
	case KFloat:
		switch st.Op {
		case token.ADDASSIGN:
			return FloatV(old.F + rhs.F)
		case token.SUBASSIGN:
			return FloatV(old.F - rhs.F)
		case token.MULASSIGN:
			return FloatV(old.F * rhs.F)
		case token.QUOASSIGN:
			return FloatV(old.F / rhs.F)
		}
	}
	throwf("invalid compound assignment %s on value kind %d", st.Op, old.K)
	return Value{}
}

func (in *interp) loadVar(sym *sem.Symbol, f *frame) Value {
	if sym.Kind == sem.GlobalVar {
		in.readLoc(1 + uint64(sym.Slot))
		return in.globals[sym.Slot]
	}
	return f.slots[sym.Slot]
}

func (in *interp) storeVar(sym *sem.Symbol, f *frame, v Value) {
	if sym.Kind == sem.GlobalVar {
		in.globals[sym.Slot] = v
		in.writeLoc(1 + uint64(sym.Slot))
		return
	}
	f.slots[sym.Slot] = v
}

func (in *interp) evalIndexTarget(f *frame, lhs *ast.IndexExpr) (*Array, int64) {
	av := in.eval(f, lhs.X)
	iv := in.eval(f, lhs.Index)
	if av.A == nil {
		throwf("index of nil array at %s", lhs.Pos())
	}
	if iv.I < 0 || iv.I >= int64(len(av.A.Elems)) {
		throwf("index %d out of range [0,%d) at %s", iv.I, len(av.A.Elems), lhs.Pos())
	}
	return av.A, iv.I
}

func zeroValue(t ast.Type) Value {
	switch tt := t.(type) {
	case *ast.PrimType:
		switch tt.Kind {
		case ast.Int:
			return IntV(0)
		case ast.Float:
			return FloatV(0)
		case ast.Bool:
			return BoolV(false)
		default:
			return StringV("")
		}
	case *ast.ArrayType:
		return Value{K: KArray}
	}
	return VoidV()
}

// callSite tracks the statement coordinates of the innermost statement
// being executed, so that call scopes opened mid-expression know their
// static position.
func (in *interp) setCallSite(b *ast.Block, idx int) {
	in.siteBlock, in.siteIdx = b, idx
}

func (in *interp) callFunc(fn *ast.FuncDecl, args []Value, siteBlock *ast.Block, siteIdx int) Value {
	in.pushNode(dpst.Scope, dpst.CallScope, fn.Name, nil, siteBlock, siteIdx, fn.Body)
	nf := &frame{slots: make([]Value, in.info.FrameSize[fn])}
	copy(nf.slots, args)
	c := in.execBlock(nf, fn.Body)
	in.popNode()
	if c.returned {
		return c.val
	}
	return VoidV()
}
