// Package interp implements the canonical sequential depth-first
// execution of HJ-lite programs, with optional instrumentation that
// builds the S-DPST and feeds memory accesses to a data-race detector.
//
// Semantics relevant to race detection:
//
//   - async bodies capture enclosing locals BY VALUE (a snapshot at spawn
//     time), the HJ "final variable" idiom; locals therefore never race.
//   - arrays are heap objects shared by reference; global variables are
//     shared cells. Only array elements and globals are instrumented.
//   - finish bodies are scope-transparent for variable scoping but
//     introduce a Finish node in the S-DPST.
//
// The work cost model is deterministic: every statement and expression
// node evaluated charges one work unit to the current step. These units
// feed the finish-placement DP (t[i], EST) and the critical-path-length
// analyzer.
package interp

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind tags runtime values.
type Kind int

// Value kinds.
const (
	KInt Kind = iota
	KFloat
	KBool
	KString
	KArray
	KVoid
)

// Array is a heap-allocated HJ-lite array. Base is the first shadow
// location ID of its elements (element i lives at Base+i); Base is 0 when
// the run is not instrumented.
type Array struct {
	Base  uint64
	Elems []Value
}

// Value is a tagged HJ-lite runtime value.
type Value struct {
	K Kind
	I int64 // int payload; bools use 0/1
	F float64
	S string
	A *Array
}

// Convenience constructors.
func IntV(v int64) Value     { return Value{K: KInt, I: v} }
func FloatV(v float64) Value { return Value{K: KFloat, F: v} }
func BoolV(v bool) Value {
	if v {
		return Value{K: KBool, I: 1}
	}
	return Value{K: KBool}
}
func StringV(s string) Value { return Value{K: KString, S: s} }
func VoidV() Value           { return Value{K: KVoid} }

// Bool reports the truth of a KBool value.
func (v Value) Bool() bool { return v.I != 0 }

// String formats the value the way print does.
func (v Value) String() string {
	switch v.K {
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		return s
	case KBool:
		return strconv.FormatBool(v.I != 0)
	case KString:
		return v.S
	case KArray:
		if v.A == nil {
			return "nil"
		}
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.A.Elems {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(']')
		return sb.String()
	default:
		return "void"
	}
}

// Equal compares values of the same primitive kind; arrays compare by
// identity.
func (v Value) Equal(o Value) bool {
	if v.K != o.K {
		return false
	}
	switch v.K {
	case KInt, KBool:
		return v.I == o.I
	case KFloat:
		return v.F == o.F
	case KString:
		return v.S == o.S
	case KArray:
		return v.A == o.A
	default:
		return true
	}
}

// RuntimeError is an HJ-lite runtime fault (index out of range, division
// by zero, nil array). Budget trips and cancellations are NOT runtime
// errors; they surface as the guard package's typed errors.
type RuntimeError struct {
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

func throwf(format string, args ...any) {
	panic(&RuntimeError{Msg: fmt.Sprintf(format, args...)})
}
