package interp_test

import (
	"strings"
	"testing"

	"finishrepair/internal/interp"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
)

func run(t *testing.T, src string, mode interp.Mode) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := interp.Run(info, interp.Options{Mode: mode})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return res.Output
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	prog := parser.MustParse(src)
	info := sem.MustCheck(prog)
	_, err := interp.Run(info, interp.Options{Mode: interp.DepthFirst, OpLimit: 1 << 20})
	return err
}

func TestArithmetic(t *testing.T) {
	cases := []struct{ expr, want string }{
		{"7 + 3", "10"},
		{"7 - 3", "4"},
		{"7 * 3", "21"},
		{"7 / 3", "2"},
		{"7 % 3", "1"},
		{"-7 / 2", "-3"}, // Go-style truncation
		{"-7 % 3", "-1"},
		{"6 & 3", "2"},
		{"6 | 3", "7"},
		{"6 ^ 3", "5"},
		{"1 << 4", "16"},
		{"256 >> 3", "32"},
		{"7 < 8", "true"},
		{"8 <= 8", "true"},
		{"9 > 10", "false"},
		{"9 >= 10", "false"},
		{"3 == 3", "true"},
		{"3 != 3", "false"},
	}
	for _, c := range cases {
		got := run(t, "func main() { println("+c.expr+"); }", interp.DepthFirst)
		if got != c.want+"\n" {
			t.Errorf("%s = %q, want %q", c.expr, strings.TrimSpace(got), c.want)
		}
	}
}

func TestFloatsAndBuiltins(t *testing.T) {
	cases := []struct{ expr, want string }{
		{"1.5 + 2.25", "3.75"},
		{"10.0 / 4.0", "2.5"},
		{"sqrt(9.0)", "3"},
		{"pow(2.0, 10.0)", "1024"},
		{"floor(2.9)", "2"},
		{"abs(-2.5)", "2.5"},
		{"abs(-7)", "7"},
		{"int(3.99)", "3"},
		{"int(-3.99)", "-3"},
		{"float(3) / 2.0", "1.5"},
		{"exp(0.0)", "1"},
		{"log(1.0)", "0"},
		{"sin(0.0)", "0"},
		{"cos(0.0)", "1"},
	}
	for _, c := range cases {
		got := run(t, "func main() { println("+c.expr+"); }", interp.DepthFirst)
		if got != c.want+"\n" {
			t.Errorf("%s = %q, want %q", c.expr, strings.TrimSpace(got), c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand would divide by zero; short-circuiting must
	// prevent evaluation.
	out := run(t, `
func boom() bool { var x = 1 / 0; return x == 0; }
func main() {
    var z = 0;
    if (z != 0 && boom()) { println("bad"); }
    if (z == 0 || boom()) { println("ok"); }
}
`, interp.DepthFirst)
	if out != "ok\n" {
		t.Errorf("got %q", out)
	}
}

func TestControlFlow(t *testing.T) {
	out := run(t, `
func classify(n int) int {
    if (n < 0) { return -1; }
    else if (n == 0) { return 0; }
    return 1;
}
func main() {
    var s = 0;
    for (var i = 0; i < 10; i = i + 1) { s = s + i; }
    var w = 0;
    while (w < 100) { w = w + 7; }
    println(s, w, classify(-5), classify(0), classify(9));
}
`, interp.DepthFirst)
	if out != "45 105 -1 0 1\n" {
		t.Errorf("got %q", out)
	}
}

func TestArraysAndNesting(t *testing.T) {
	out := run(t, `
func main() {
    var m = make([][]int, 3);
    for (var i = 0; i < 3; i = i + 1) {
        m[i] = make([]int, 3);
        for (var j = 0; j < 3; j = j + 1) {
            m[i][j] = i * 3 + j;
        }
    }
    var tr = 0;
    for (var i = 0; i < 3; i = i + 1) { tr = tr + m[i][i]; }
    println(tr, len(m), len(m[0]));
}
`, interp.DepthFirst)
	if out != "12 3 3\n" {
		t.Errorf("got %q", out)
	}
}

func TestCompoundAssignOnElements(t *testing.T) {
	out := run(t, `
func main() {
    var a = make([]int, 2);
    a[0] = 10;
    a[0] += 5;
    a[0] -= 3;
    a[0] *= 2;
    a[0] /= 4;
    var f = make([]float, 1);
    f[0] = 8.0;
    f[0] /= 2.0;
    println(a[0], f[0]);
}
`, interp.DepthFirst)
	if out != "6 4\n" {
		t.Errorf("got %q", out)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`func main() { var x = 1 / 0; println(x); }`, "division by zero"},
		{`func main() { var x = 1 % 0; println(x); }`, "modulo by zero"},
		{`func main() { var a = make([]int, 2); println(a[5]); }`, "out of range"},
		{`func main() { var a = make([]int, 2); println(a[-1]); }`, "out of range"},
		{`func main() { var a []int; println(a[0]); }`, "nil array"},
		{`func main() { var a []int; println(len(a)); }`, "len of nil"},
		{`func main() { var a = make([]int, -1); println(len(a)); }`, "negative length"},
		{`func main() { var x = 1 << 64; println(x); }`, "shift count"},
		{`func main() { while (true) { } }`, "op budget"},
	}
	for _, c := range cases {
		err := runErr(t, c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestGlobalsInitializeInOrder(t *testing.T) {
	out := run(t, `
var a = 2;
var b = a * 10;
var c = make([]int, b);
func main() { println(a, b, len(c)); }
`, interp.DepthFirst)
	if out != "2 20 20\n" {
		t.Errorf("got %q", out)
	}
}

// Async bodies capture locals by value: mutating the captured copy does
// not affect the parent, and the parent's later writes are invisible to
// the child (in depth-first order the child runs first).
func TestAsyncCapturesByValue(t *testing.T) {
	out := run(t, `
var obs = make([]int, 2);
func main() {
    var x = 1;
    finish {
        async {
            obs[0] = x; // sees the spawn-time value
            x = 99;     // child's private copy
        }
    }
    obs[1] = x;
    println(obs[0], obs[1]);
}
`, interp.DepthFirst)
	if out != "1 1\n" {
		t.Errorf("got %q", out)
	}
}

// Arrays are shared by reference between tasks.
func TestArraysSharedAcrossTasks(t *testing.T) {
	out := run(t, `
func main() {
    var a = make([]int, 1);
    finish {
        async { a[0] = 41; }
    }
    a[0] = a[0] + 1;
    println(a[0]);
}
`, interp.DepthFirst)
	if out != "42\n" {
		t.Errorf("got %q", out)
	}
}

// Property: the serial elision and the depth-first execution produce the
// same output for any generated program (depth-first IS the elision
// order).
func TestElisionEqualsDepthFirst(t *testing.T) {
	for seed := int64(300); seed < 340; seed++ {
		src := progen.Gen(seed, progen.Default())
		if a, b := run(t, src, interp.Elide), run(t, src, interp.DepthFirst); a != b {
			t.Fatalf("seed %d: elide %q != depth-first %q\n%s", seed, a, b, src)
		}
	}
}

// Instrumentation must not change program semantics.
func TestInstrumentationTransparent(t *testing.T) {
	for seed := int64(400); seed < 420; seed++ {
		src := progen.Gen(seed, progen.Default())
		prog := parser.MustParse(src)
		info := sem.MustCheck(prog)
		plain, err := interp.Run(info, interp.Options{Mode: interp.DepthFirst})
		if err != nil {
			t.Fatal(err)
		}
		instr, err := interp.Run(info, interp.Options{Mode: interp.DepthFirst, Instrument: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Output != instr.Output {
			t.Fatalf("seed %d: instrumented output differs", seed)
		}
		if plain.Work != instr.Work {
			t.Fatalf("seed %d: instrumented work %d != %d", seed, instr.Work, plain.Work)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    interp.Value
		want string
	}{
		{interp.IntV(-5), "-5"},
		{interp.FloatV(2.5), "2.5"},
		{interp.BoolV(true), "true"},
		{interp.StringV("hi"), "hi"},
		{interp.VoidV(), "void"},
		{interp.Value{K: interp.KArray}, "nil"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.K, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	a := interp.Value{K: interp.KArray, A: &interp.Array{}}
	b := interp.Value{K: interp.KArray, A: &interp.Array{}}
	if a.Equal(b) {
		t.Error("distinct arrays compare equal")
	}
	if !a.Equal(a) {
		t.Error("array not equal to itself")
	}
	if !interp.IntV(3).Equal(interp.IntV(3)) || interp.IntV(3).Equal(interp.FloatV(3)) {
		t.Error("primitive equality wrong")
	}
}
