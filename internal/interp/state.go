package interp

import (
	"strings"

	"finishrepair/internal/lang/sem"
)

// RenderState renders the final global-variable state of a run as one
// "name=value" line per global, in declaration order (arrays include
// their element values). It is the canonical comparison key the
// adversarial scheduler uses to decide whether a controlled-schedule
// execution agrees with the serial oracle: output alone can miss torn
// state the program never prints.
func RenderState(info *sem.Info, globals []Value) string {
	var sb strings.Builder
	for _, g := range info.Prog.Globals {
		sym := g.Sym.(*sem.Symbol)
		if sym.Slot < 0 || sym.Slot >= len(globals) {
			continue
		}
		sb.WriteString(sym.Name)
		sb.WriteByte('=')
		sb.WriteString(globals[sym.Slot].String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
