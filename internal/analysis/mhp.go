package analysis

import "finishrepair/internal/lang/ast"

// This file computes the static may-happen-in-parallel relation.
//
// Two layers:
//
//  1. Per-statement summaries all(s) and esc(s), with per-function
//     summaries contains(f)/escape(f) resolved by a fixpoint over the
//     (possibly recursive) call graph. all(s) is every statement that
//     may execute while s runs; esc(s) is every statement that may
//     still be running after s completes — the asyncs s spawned (or its
//     callees spawned) that no enclosing finish has joined. finish is
//     the only construct that kills escapes: esc(finish S) = ∅.
//
//  2. A forward walk of main (preceded by the global initializers)
//     threading a "live" set of possibly-still-running statements.
//     Sequencing s after live set L records L × all(s) as MHP pairs
//     and flows L ∪ esc(s) onward. Loops additionally record
//     escBody × all(loop): an async escaping iteration k runs in
//     parallel with everything in iteration k+1 — this is how an async
//     body becomes MHP with itself (unbounded instances).
//
// Function bodies other than main are also walked with an empty
// incoming live set so intra-callee pairs are recorded once,
// context-insensitively; call-site context is covered by L × all(call).
func (r *Result) summaries() {
	n := len(r.stmts)
	r.all = make([]bitset, n)
	r.esc = make([]bitset, n)
	for i := range r.all {
		r.all[i] = newBitset(n)
		r.esc[i] = newBitset(n)
	}
	for _, fn := range r.info.Prog.Funcs {
		r.contains[fn] = newBitset(n)
		r.escapes[fn] = newBitset(n)
	}

	// Fixpoint: statement summaries depend on callee summaries which
	// depend on statement summaries; iterate until no bitset grows.
	// Everything is monotone over finite sets, so this terminates.
	for {
		changed := false
		for i, rec := range r.stmts {
			if r.updateStmt(i, rec.stmt) {
				changed = true
			}
		}
		for _, fn := range r.info.Prog.Funcs {
			cont, esc := r.contains[fn], r.escapes[fn]
			for _, s := range fn.Body.Stmts {
				id := r.byStmt[s]
				if cont.or(r.all[id]) {
					changed = true
				}
				if esc.or(r.esc[id]) {
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// updateStmt folds one round of the all/esc equations for statement i
// and reports whether either set grew.
func (r *Result) updateStmt(i int, s ast.Stmt) bool {
	all, esc := r.all[i], r.esc[i]
	changed := false
	if !all.has(i) {
		all.set(i)
		changed = true
	}
	for _, fn := range r.stmtCallees(s) {
		if all.or(r.contains[fn]) {
			changed = true
		}
		if esc.or(r.escapes[fn]) {
			changed = true
		}
	}
	child := func(cs ast.Stmt, escapes bool) {
		id := r.byStmt[cs]
		if all.or(r.all[id]) {
			changed = true
		}
		if escapes && esc.or(r.esc[id]) {
			changed = true
		}
	}
	switch st := s.(type) {
	case *ast.AsyncStmt:
		// The whole body may still be running after the spawn returns.
		for _, cs := range st.Body.Stmts {
			child(cs, false)
			if esc.or(r.all[r.byStmt[cs]]) {
				changed = true
			}
		}
	case *ast.FinishStmt:
		// finish joins everything spawned inside: nothing escapes.
		for _, cs := range st.Body.Stmts {
			child(cs, false)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			child(st.Init, true)
		}
		if st.Post != nil {
			child(st.Post, true)
		}
		for _, cs := range st.Body.Stmts {
			child(cs, true)
		}
	default:
		for _, b := range ast.StmtBlocks(s) {
			for _, cs := range b.Stmts {
				child(cs, true)
			}
		}
	}
	return changed
}

// walkMHP runs the forward live-set walk and fills r.mhp and r.liveAt.
func (r *Result) walkMHP() {
	n := len(r.stmts)
	r.mhp = make([]bitset, n)
	r.liveAt = make([]bitset, n)
	for i := range r.mhp {
		r.mhp[i] = newBitset(n)
		r.liveAt[i] = newBitset(n)
	}

	// The real program: globals initialize serially, then main runs.
	live := newBitset(n)
	for _, g := range r.info.Prog.Globals {
		live = r.seqStep(r.byStmt[g], live)
	}
	if main := r.info.Prog.Func("main"); main != nil {
		r.walkBlock(main.Body, live)
	}
	// Other functions: record their internal structure once with an
	// empty live set (call-site parallelism is covered through all()).
	for _, fn := range r.info.Prog.Funcs {
		if fn.Name == "main" {
			continue
		}
		r.walkBlock(fn.Body, newBitset(n))
	}

	for _, row := range r.mhp {
		r.mhpPairs += row.count()
	}
}

// walkBlock sequences the statements of b under the incoming live set
// and returns the live set after the block.
func (r *Result) walkBlock(b *ast.Block, live bitset) bitset {
	if b == nil {
		return live
	}
	for _, s := range b.Stmts {
		live = r.seqStep(r.byStmt[s], live)
	}
	return live
}

// seqStep records the MHP pairs for executing statement id while the
// statements in live may still be running, descends into nested blocks,
// and returns the live set after the statement.
func (r *Result) seqStep(id int, live bitset) bitset {
	r.liveAt[id].or(live)
	r.addPairs(live, r.all[id])

	switch st := r.stmts[id].stmt.(type) {
	case *ast.IfStmt:
		r.walkBlock(st.Then, live)
		r.walkBlock(st.Else, live)
	case *ast.WhileStmt:
		r.loopWalk(id, nil, st.Body, nil, live)
	case *ast.ForStmt:
		r.loopWalk(id, st.Init, st.Body, st.Post, live)
	case *ast.AsyncStmt, *ast.FinishStmt:
		for _, b := range ast.StmtBlocks(st) {
			r.walkBlock(b, live)
		}
	case *ast.BlockStmt:
		r.walkBlock(st.Body, live)
	}

	out := live.clone()
	out.or(r.esc[id])
	return out
}

// loopWalk handles the cross-iteration parallelism of a loop statement:
// anything escaping one iteration may run in parallel with everything
// in the next (asyncs in loops are unbounded instances).
func (r *Result) loopWalk(loopID int, init ast.Stmt, body *ast.Block, post ast.Stmt, live bitset) {
	if init != nil {
		live = r.seqStep(r.byStmt[init], live)
	}
	// esc[loop] is everything escaping an iteration (body, post, and
	// condition-callee escapes); init escapes ride along harmlessly.
	loopEsc := r.esc[loopID].clone()
	r.addPairs(loopEsc, r.all[loopID])
	r.liveAt[loopID].or(loopEsc)

	bodyLive := live.clone()
	bodyLive.or(loopEsc)
	bodyLive = r.walkBlock(body, bodyLive)
	if post != nil {
		r.seqStep(r.byStmt[post], bodyLive)
	}
}

// addPairs records a × b (both directions) in the MHP relation.
func (r *Result) addPairs(a, b bitset) {
	if a.empty() || b.empty() {
		return
	}
	a.forEach(func(i int) { r.mhp[i].or(b) })
	b.forEach(func(j int) { r.mhp[j].or(a) })
}

// MayHappenInParallel reports whether the two statements may execute
// concurrently according to the static relation. Statements not in the
// analyzed program are conservatively parallel.
func (r *Result) MayHappenInParallel(a, b ast.Stmt) bool {
	ia, oka := r.byStmt[a]
	ib, okb := r.byStmt[b]
	if !oka || !okb {
		return true
	}
	return r.mhp[ia].has(ib)
}
