package analysis

import (
	"strings"
	"testing"

	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
)

// FuzzVet asserts the analyzer never panics on any program the parser
// and checker accept, and that its output is deterministic (two runs
// over the same program render identically — the property the hjvet
// exit code and the golden files depend on). Seeds come from the repair
// round-trip and parser corpora.
func FuzzVet(f *testing.F) {
	f.Add("var x = 0; func main() { async { x = 1; } x = 2; }")
	f.Add("func main() { finish { } }")
	f.Add("var a = make([]int, 4); func main() { for (var i = 0; i < 4; i = i + 1) { async { a[i] = i; } } }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse(src)
		if err != nil {
			return
		}
		info, err := sem.Check(prog)
		if err != nil {
			return
		}
		render := func() string {
			res := Analyze(info, nil)
			ds, err := RunChecks(res, nil)
			if err != nil {
				t.Fatalf("RunChecks: %v", err)
			}
			var sb strings.Builder
			if err := WriteText(&sb, "fuzz.hj", ds); err != nil {
				t.Fatalf("WriteText: %v", err)
			}
			var jb strings.Builder
			if err := WriteJSON(&jb, "fuzz.hj", ds); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			return sb.String() + "\x00" + jb.String()
		}
		a, b := render(), render()
		if a != b {
			t.Errorf("analysis not deterministic:\n%q\nvs\n%q", a, b)
		}
	})
}
