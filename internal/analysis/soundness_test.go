package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"finishrepair/internal/analysis"
	"finishrepair/internal/bench"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/race"
)

// soundnessProgram is one (name, source) pair fed to the cross-check.
type soundnessProgram struct {
	name string
	src  string
}

// soundnessCorpus is every runnable HJ-lite program bundled with the
// repo: each benchmark at its repair size (as shipped and with all
// finishes stripped — the maximally racy variant), plus every .hj file
// under testdata/, testdata/vet/, and examples/hj/.
func soundnessCorpus(t *testing.T) []soundnessProgram {
	t.Helper()
	var out []soundnessProgram
	for _, b := range bench.All() {
		src := b.Src(b.RepairSize)
		out = append(out, soundnessProgram{b.Name, src})
		prog := parser.MustParse(src)
		ast.StripFinishes(prog)
		out = append(out, soundnessProgram{b.Name + "-stripped", stripSrc(prog)})
	}
	for _, dir := range []string{
		filepath.Join("..", "..", "testdata"),
		filepath.Join("..", "..", "testdata", "vet"),
		filepath.Join("..", "..", "examples", "hj"),
	} {
		matches, err := filepath.Glob(filepath.Join(dir, "*.hj"))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			b, err := os.ReadFile(m)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, soundnessProgram{filepath.ToSlash(m), string(b)})
		}
	}
	return out
}

func stripSrc(prog *ast.Program) string { return printer.Print(prog) }

// TestStaticCoversDynamic is the soundness cross-check the static
// analysis is designed around: for every bundled program, every data
// race the dynamic detector finds on the canonical sequential execution
// must be contained in the static candidate set, and its endpoints must
// be statically may-happen-in-parallel (the property that makes
// -static-prune a provable no-op). The test also requires that the
// S-DPST→statement mapping actually resolved for most races, so the
// conservative fall-through cannot quietly satisfy the assertion.
func TestStaticCoversDynamic(t *testing.T) {
	resolvedChecks := 0
	for _, p := range soundnessCorpus(t) {
		p := p
		t.Run(p.name, func(t *testing.T) {
			prog, err := parser.Parse(p.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			info, err := sem.Check(prog)
			if err != nil {
				t.Fatalf("sem: %v", err)
			}
			res := analysis.Analyze(info, nil)

			_, det, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
			if err != nil {
				t.Fatalf("detect: %v", err)
			}
			for _, r := range det.Races() {
				if !res.Covers(r.Src, r.Dst) {
					t.Errorf("dynamic race not in static candidate set: %v", r)
				}
				if !res.MayRunInParallel(r.Src, r.Dst) {
					t.Errorf("dynamic race statically serial (pruning would drop it): %v", r)
				}
				if res.Resolvable(r.Src) && res.Resolvable(r.Dst) {
					resolvedChecks++
				}
			}
		})
	}
	if resolvedChecks == 0 {
		t.Fatalf("no race had both endpoints resolved to statements; the cross-check was vacuous")
	}
}
