package analysis

import (
	"finishrepair/internal/analysis/commute"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
)

// This file infers per-location lock classes for isolated repair from
// the effect-region partition. Two isolated bodies need mutual
// exclusion only when their footprints may overlap; when a recognized
// commutative update touches exactly one abstract location, the repair
// can key its isolated block to that location's class instead of the
// single global isolated lock, and updates of provably different
// locations run concurrently.
//
// Class numbering: class 0 is the global exclusive lock (source-level
// isolated, and any body whose footprint is not a single location);
// class id+1 is the lock of abstract location id (the same dense IDs
// effects.go assigns — global slots first, then array alias classes).
// Keying classes to effect locations makes the scheme sound by
// construction: bodies of different nonzero classes have disjoint
// effect footprints, so they cannot race no matter how they interleave.

// Locations computes just the statement index and the abstract-location
// partition of a checked program — the subset of Analyze the lock-class
// inference needs, skipping the MHP fixpoint and candidate
// construction.
func Locations(info *sem.Info) *Result {
	r := &Result{
		info:     info,
		byStmt:   make(map[ast.Stmt]int),
		contains: make(map[*ast.FuncDecl]bitset),
		escapes:  make(map[*ast.FuncDecl]bitset),
	}
	r.index()
	r.buildEffects()
	return r
}

// LockClassOf returns the lock class an isolated block wrapping the
// recognized update should carry: location+1 when the region's whole
// effect footprint is exactly the update's target location, else 0 (the
// global lock). Statements the analysis has not indexed (e.g. regions
// inside already-rewritten blocks) conservatively get class 0.
func (r *Result) LockClassOf(u commute.Update) int {
	target := r.targetLocation(u.Target)
	if target < 0 {
		return 0
	}
	foot := newBitset(r.locs.n)
	known := true
	for i := u.Lo; i <= u.Hi && i < len(u.Block.Stmts); i++ {
		ast.InspectStmts(u.Block.Stmts[i], func(s ast.Stmt) {
			id, ok := r.byStmt[s]
			if !ok {
				known = false
				return
			}
			foot.or(r.eff[id].reads)
			foot.or(r.eff[id].writes)
		})
	}
	if !known {
		return 0
	}
	single := true
	foot.forEach(func(loc int) {
		if loc != target {
			single = false
		}
	})
	if !single || !foot.has(target) {
		return 0
	}
	return target + 1
}

// targetLocation maps a recognized update's target lvalue to its
// abstract location ID, or -1.
func (r *Result) targetLocation(target ast.Expr) int {
	switch x := target.(type) {
	case *ast.Ident:
		if sym, ok := x.Sym.(*sem.Symbol); ok && sym.Kind == sem.GlobalVar {
			return sym.Slot
		}
	case *ast.IndexExpr:
		return r.locs.classOf(r.regionOf(x.X, nil, r.locs))
	}
	return -1
}

// LockClassName renders a lock class for provenance output.
func (r *Result) LockClassName(class int) string {
	if class == 0 {
		return "global"
	}
	return r.LocationName(class - 1)
}
