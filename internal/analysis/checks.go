package analysis

import (
	"fmt"
	"sort"
	"strings"

	"finishrepair/internal/analysis/commute"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/obs"
)

// A Check inspects an analysis Result and reports diagnostics.
type Check struct {
	Name string
	Doc  string
	Run  func(*Result) []Diagnostic
}

// Checks returns the registered lint checks in canonical order.
func Checks() []Check {
	return []Check{
		{"static-race", "statement pairs that may run in parallel with conflicting effects, not covered by any dynamic race", checkStaticRace},
		{"redundant-finish", "finish whose body cannot transitively spawn an async", checkRedundantFinish},
		{"unscoped-async-loop", "async spawned in a loop with no enclosing finish inside the loop", checkUnscopedAsyncLoop},
		{"write-after-async", "serial access conflicting with an async that may still be running", checkWriteAfterAsync},
		{"redundant-isolated", "isolated body writing no shared state, or isolated nested inside isolated", checkRedundantIsolated},
		{"reducible-race", "static race whose sites form a recognized commutative reduction, repairable with isolated instead of finish", checkReducibleRace},
		{"dead-stmt", "statement after an infinite loop or return, or a branch arm that can never run", checkDeadStmt},
	}
}

// CheckNames returns the canonical check-name list.
func CheckNames() []string {
	var out []string
	for _, c := range Checks() {
		out = append(out, c.Name)
	}
	return out
}

// RunChecks runs the named checks (all when names is empty) over a
// Result and returns the combined, position-sorted diagnostics. Unknown
// names are an error.
func RunChecks(res *Result, names []string) ([]Diagnostic, error) {
	all := Checks()
	var run []Check
	if len(names) == 0 {
		run = all
	} else {
		byName := make(map[string]Check, len(all))
		for _, c := range all {
			byName[c.Name] = c
		}
		for _, name := range names {
			c, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(CheckNames(), ", "))
			}
			run = append(run, c)
		}
	}
	var ds []Diagnostic
	for _, c := range run {
		found := c.Run(res)
		// Check names use dashes ("static-race"); metric names use the
		// pkg.noun_verb convention, so translate.
		obs.Default().Counter("vet.diag." + strings.ReplaceAll(c.Name, "-", "_")).Add(int64(len(found)))
		ds = append(ds, found...)
	}
	obs.Default().Counter("vet.diagnostics").Add(int64(len(ds)))
	SortDiagnostics(ds)
	return ds, nil
}

// checkStaticRace reports every candidate pair no dynamic race has
// covered. Run standalone (hjvet) nothing is covered, so this is the
// whole candidate set; run after repair (hjrepair -vet) it is the
// coverage-gap report.
func checkStaticRace(r *Result) []Diagnostic {
	var ds []Diagnostic
	for _, c := range r.UncoveredCandidates() {
		d := Diagnostic{
			Pos:      c.APos,
			Severity: Warning,
			Check:    "static-race",
			Hint:     "enclose the spawning region in finish { ... } or make the accesses disjoint",
		}
		if c.A == c.B {
			d.Message = fmt.Sprintf("statement may race with other instances of itself on %s (%s)", c.Loc, c.Kind)
		} else {
			d.Message = fmt.Sprintf("statement may race on %s (%s)", c.Loc, c.Kind)
			d.Related = []Related{{Pos: c.BPos, Message: fmt.Sprintf("conflicting access in %s", c.BFunc)}}
		}
		ds = append(ds, d)
	}
	return ds
}

// checkRedundantFinish reports finishes that cannot join anything: no
// statement reachable inside the body (including callees) is an async.
func checkRedundantFinish(r *Result) []Diagnostic {
	var ds []Diagnostic
	for id, rec := range r.stmts {
		if _, ok := rec.stmt.(*ast.FinishStmt); !ok {
			continue
		}
		if r.all[id].intersects(r.asyncs) {
			continue
		}
		ds = append(ds, Diagnostic{
			Pos:      rec.stmt.Pos(),
			Severity: Warning,
			Check:    "redundant-finish",
			Message:  "finish body spawns no async (directly or through calls)",
			Hint:     "remove the finish or move it around the spawning code",
		})
	}
	return ds
}

// checkUnscopedAsyncLoop reports asyncs spawned inside a loop with no
// finish between the async and the loop, when the async's statements
// participate in some race candidate (a dependent use exists).
func checkUnscopedAsyncLoop(r *Result) []Diagnostic {
	inCand := newBitset(len(r.stmts))
	for _, c := range r.cands {
		inCand.set(c.A)
		inCand.set(c.B)
	}
	var ds []Diagnostic
	var walk func(b *ast.Block, loop ast.Stmt, inFinish bool)
	walk = func(b *ast.Block, loop ast.Stmt, inFinish bool) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *ast.WhileStmt:
				walk(st.Body, st, inFinish)
			case *ast.ForStmt:
				walk(st.Body, st, inFinish)
			case *ast.FinishStmt:
				// A finish anywhere above the async joins it, whether it
				// wraps the async inside the loop or the whole loop.
				walk(st.Body, loop, true)
			case *ast.AsyncStmt:
				if loop != nil && !inFinish {
					id := r.byStmt[s]
					if r.all[id].intersects(inCand) {
						ds = append(ds, Diagnostic{
							Pos:      s.Pos(),
							Severity: Warning,
							Check:    "unscoped-async-loop",
							Message:  "async in a loop has no enclosing finish; its instances accumulate unjoined",
							Hint:     "wrap the loop (or the spawning region) in finish { ... }",
							Related:  []Related{{Pos: loop.Pos(), Message: "loop spawning the async"}},
						})
					}
				}
				walk(st.Body, loop, inFinish)
			default:
				for _, nb := range ast.StmtBlocks(s) {
					walk(nb, loop, inFinish)
				}
			}
		}
	}
	for _, fn := range r.info.Prog.Funcs {
		walk(fn.Body, nil, false)
	}
	return ds
}

// checkWriteAfterAsync reports statements whose writes conflict with
// the effects of asyncs that may still be running when the statement
// executes (the live set of the MHP walk).
func checkWriteAfterAsync(r *Result) []Diagnostic {
	var ds []Diagnostic
	for id, rec := range r.stmts {
		if r.eff[id].writes.empty() || r.liveAt[id].empty() {
			continue
		}
		if _, ok := rec.stmt.(*ast.AsyncStmt); ok {
			continue
		}
		conflictID := -1
		var loc int
		r.liveAt[id].forEach(func(j int) {
			if conflictID >= 0 {
				return
			}
			l, _ := conflict(effect{reads: r.eff[j].reads, writes: r.eff[j].writes},
				effect{reads: newBitset(r.locs.n), writes: r.eff[id].writes})
			if l >= 0 {
				conflictID, loc = j, l
			}
		})
		if conflictID < 0 {
			continue
		}
		ds = append(ds, Diagnostic{
			Pos:      rec.stmt.Pos(),
			Severity: Warning,
			Check:    "write-after-async",
			Message:  fmt.Sprintf("write to %s may race with an earlier async still running", r.LocationName(loc)),
			Hint:     "join the async with finish before this statement",
			Related:  []Related{{Pos: r.stmts[conflictID].stmt.Pos(), Message: "conflicting access possibly still running"}},
		})
	}
	return ds
}

// checkRedundantIsolated reports isolated statements that buy no mutual
// exclusion: bodies that write no shared location (globals or array
// elements, including through calls), and isolated statements
// syntactically nested inside another isolated (the outer region
// already serializes the inner one).
func checkRedundantIsolated(r *Result) []Diagnostic {
	var ds []Diagnostic
	for id, rec := range r.stmts {
		iso, ok := rec.stmt.(*ast.IsolatedStmt)
		if !ok {
			continue
		}
		writes := newBitset(r.locs.n)
		r.all[id].forEach(func(k int) { writes.or(r.eff[k].writes) })
		if writes.empty() {
			ds = append(ds, Diagnostic{
				Pos:      iso.Pos(),
				Severity: Warning,
				Check:    "redundant-isolated",
				Message:  "isolated body writes no global or array location (directly or through calls)",
				Hint:     "remove the isolated wrapper, or move the shared writes it is meant to protect inside",
			})
		}
	}
	var walk func(b *ast.Block, outer *ast.IsolatedStmt)
	walk = func(b *ast.Block, outer *ast.IsolatedStmt) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			if iso, ok := s.(*ast.IsolatedStmt); ok {
				if outer != nil {
					ds = append(ds, Diagnostic{
						Pos:      iso.Pos(),
						Severity: Warning,
						Check:    "redundant-isolated",
						Message:  "isolated nested inside isolated is redundant",
						Hint:     "remove the inner isolated wrapper",
						Related:  []Related{{Pos: outer.Pos(), Message: "enclosing isolated"}},
					})
				}
				walk(iso.Body, iso)
				continue
			}
			for _, nb := range ast.StmtBlocks(s) {
				walk(nb, outer)
			}
		}
	}
	for _, fn := range r.info.Prog.Funcs {
		walk(fn.Body, nil)
	}
	return ds
}

// checkReducibleRace reports static race candidates whose two sites
// both resolve to recognized commutative updates of the SAME location
// in compatible families, with the verdict confirmed by the serial
// order probe. These are the races `-strategy auto` can repair by
// wrapping just the update in isolated — keeping the surrounding
// parallelism — instead of serializing whole tasks with finish.
func checkReducibleRace(r *Result) []Diagnostic {
	sites := commute.NewSiteIndex(r.info.Prog)
	var ds []Diagnostic
	type pairKey struct{ a, b commute.Key }
	seen := map[pairKey]bool{}
	for _, c := range r.UncoveredCandidates() {
		ua, oka := sites.At(r.stmts[c.A].stmt)
		ub, okb := sites.At(r.stmts[c.B].stmt)
		if !oka || !okb {
			continue
		}
		// The reduction explains the race only when both sites update
		// the same location the candidate conflicts on, in one family.
		if ua.TargetBase() == nil || ua.TargetBase() != ub.TargetBase() {
			continue
		}
		if !commute.Compatible(ua, ub) {
			continue
		}
		if commute.ProbePair(r.info, ua, ub) != nil {
			continue
		}
		k := pairKey{ua.RegionKey(), ub.RegionKey()}
		if seen[k] {
			continue
		}
		seen[k] = true
		d := Diagnostic{
			Pos:      c.APos,
			Severity: Info,
			Check:    "reducible-race",
			Message:  fmt.Sprintf("race on %s is a recognized %s reduction", c.Loc, ua.Family),
			Hint:     "run hjrepair -strategy auto to repair with an isolated block instead of finish serialization",
		}
		if c.A != c.B {
			d.Related = []Related{{Pos: c.BPos, Message: fmt.Sprintf("matching %s update in %s", ub.Family, c.BFunc)}}
		}
		ds = append(ds, d)
	}
	return ds
}

// checkDeadStmt reports unreachable statements: code after a return or
// an infinite loop (while(true), for without condition, if whose arms
// both terminate), and branch arms guarded by a constant condition.
// Only the first dead statement of each block is reported.
func checkDeadStmt(r *Result) []Diagnostic {
	var ds []Diagnostic
	var blockDead func(b *ast.Block)
	var terminal func(s ast.Stmt) bool
	blockTerminal := func(b *ast.Block) bool {
		if b == nil {
			return false
		}
		for _, s := range b.Stmts {
			if terminal(s) {
				return true
			}
		}
		return false
	}
	terminal = func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.WhileStmt:
			lit, ok := st.Cond.(*ast.BoolLit)
			return ok && lit.Value
		case *ast.ForStmt:
			return st.Cond == nil
		case *ast.IfStmt:
			return st.Else != nil && blockTerminal(st.Then) && blockTerminal(st.Else)
		case *ast.BlockStmt:
			return blockTerminal(st.Body)
		case *ast.FinishStmt:
			return blockTerminal(st.Body)
		}
		return false
	}
	deadArm := func(b *ast.Block, why string) {
		if b == nil || len(b.Stmts) == 0 {
			return
		}
		ds = append(ds, Diagnostic{
			Pos:      b.Stmts[0].Pos(),
			Severity: Warning,
			Check:    "dead-stmt",
			Message:  "unreachable branch: " + why,
			Hint:     "remove the dead code or fix the condition",
		})
	}
	blockDead = func(b *ast.Block) {
		if b == nil {
			return
		}
		reported := false
		dead := false
		for _, s := range b.Stmts {
			if dead && !reported {
				reported = true
				ds = append(ds, Diagnostic{
					Pos:      s.Pos(),
					Severity: Warning,
					Check:    "dead-stmt",
					Message:  "unreachable statement",
					Hint:     "remove the dead code",
				})
			}
			if ifs, ok := s.(*ast.IfStmt); ok {
				if lit, isLit := ifs.Cond.(*ast.BoolLit); isLit {
					if lit.Value {
						deadArm(ifs.Else, "condition is always true")
					} else {
						deadArm(ifs.Then, "condition is always false")
					}
				}
			}
			for _, nb := range ast.StmtBlocks(s) {
				blockDead(nb)
			}
			if !dead && terminal(s) {
				dead = true
			}
		}
	}
	for _, fn := range r.info.Prog.Funcs {
		blockDead(fn.Body)
	}
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Pos.Line != ds[j].Pos.Line {
			return ds[i].Pos.Line < ds[j].Pos.Line
		}
		return ds[i].Pos.Col < ds[j].Pos.Col
	})
	return ds
}
