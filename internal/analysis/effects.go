package analysis

import (
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
)

// This file computes conservative per-statement read/write effect
// summaries over a finite universe of abstract locations.
//
// The dynamic detectors instrument exactly two kinds of accesses:
// global variable slots (loadVar/storeVar on globals) and array
// elements (base + index). Locals and parameters are task-private —
// async bodies capture a by-value snapshot of the parent frame (HJ
// final-variable semantics) — so they can never race and need no
// locations. The static universe is therefore:
//
//   - one location per global symbol (the variable's own slot; for an
//     array-typed global this is the header holding the reference), and
//   - one location per alias class of array objects, where classes are
//     computed by union-find over every array-typed assignment,
//     initializer, argument→parameter binding, and return. All elements
//     of all arrays in a class are conflated into the single class
//     location, and nested array levels collapse into the same class.
//
// make() creates a fresh region and unions nothing, so provably
// disjoint arrays (two separate makes never assigned together) land in
// different classes.

// retKey identifies the abstract region returned by a function.
type retKey struct{ fn *ast.FuncDecl }

// paramKey identifies the abstract region of a function parameter.
// Parameter symbols are only reachable through idents in the body, so
// call-site bindings union against this stable key and ident visits
// union the symbol into it.
type paramKey struct {
	fn *ast.FuncDecl
	i  int
}

// locTable assigns dense location IDs: globals first (slot order), then
// one per array alias class in deterministic program-walk order.
type locTable struct {
	parent map[any]any // union-find over *sem.Symbol / retKey / paramKey
	id     map[any]int // root → location ID
	names  []string
	n      int
}

func newLocTable() *locTable {
	return &locTable{parent: make(map[any]any), id: make(map[any]int)}
}

func (t *locTable) find(k any) any {
	p, ok := t.parent[k]
	if !ok || p == k {
		return k
	}
	root := t.find(p)
	t.parent[k] = root
	return root
}

func (t *locTable) union(a, b any) {
	if a == nil || b == nil {
		return
	}
	ra, rb := t.find(a), t.find(b)
	if ra != rb {
		t.parent[ra] = rb
	}
}

// effect is one statement's summary: the abstract locations it may
// read and may write through its own expressions (callee effects are
// attributed to the callee's statements, which MHP covers separately).
type effect struct {
	reads, writes bitset
}

func (e effect) empty() bool { return e.reads.empty() && e.writes.empty() }

// buildEffects computes the alias classes and the per-statement
// summaries.
func (r *Result) buildEffects() {
	t := newLocTable()
	r.locs = t

	// Pass 1: alias-class unions over the whole program.
	for _, g := range r.info.Prog.Globals {
		r.unionStmt(g, nil, t)
	}
	for _, fn := range r.info.Prog.Funcs {
		fn := fn
		for _, s := range fn.Body.Stmts {
			ast.InspectStmts(s, func(st ast.Stmt) { r.unionStmt(st, fn, t) })
		}
	}

	// Pass 2: deterministic location numbering. Globals get their slot
	// index; array classes are numbered in first-touch program order.
	for _, sym := range r.info.GlobalSyms {
		t.names = append(t.names, sym.Name)
		t.n++
	}
	classLoc := func(k any, name string) {
		if k == nil {
			return
		}
		root := t.find(k)
		if _, seen := t.id[root]; !seen {
			t.id[root] = t.n
			t.names = append(t.names, name+"[]")
			t.n++
		}
	}
	for _, sym := range r.info.GlobalSyms {
		if _, ok := sym.Type.(*ast.ArrayType); ok {
			classLoc(sym, sym.Name)
		}
	}
	for _, rec := range r.stmts {
		for _, e := range ast.StmtExprs(rec.stmt) {
			ast.InspectExpr(e, func(x ast.Expr) {
				if id, ok := x.(*ast.Ident); ok {
					if sym, ok := id.Sym.(*sem.Symbol); ok {
						if _, arr := sym.Type.(*ast.ArrayType); arr {
							classLoc(sym, sym.Name)
						}
					}
				}
			})
		}
	}

	// Pass 3: per-statement effects.
	r.eff = make([]effect, len(r.stmts))
	for i, rec := range r.stmts {
		r.eff[i] = r.stmtEffect(rec.stmt, t)
	}
}

// regionOf returns the union-find key for the array object an
// expression evaluates to, or nil when it is not an array (or is a
// fresh make).
func (r *Result) regionOf(e ast.Expr, fn *ast.FuncDecl, t *locTable) any {
	switch ex := e.(type) {
	case *ast.Ident:
		if sym, ok := ex.Sym.(*sem.Symbol); ok {
			if _, arr := sym.Type.(*ast.ArrayType); arr {
				return sym
			}
		}
	case *ast.IndexExpr:
		// a[i] of a nested array stays in a's class (levels conflate).
		if r.isArray(e) {
			return r.regionOf(ex.X, fn, t)
		}
	case *ast.CallExpr:
		if callee, ok := ex.Target.(*ast.FuncDecl); ok && callee.Ret != nil {
			if _, arr := callee.Ret.(*ast.ArrayType); arr {
				return retKey{fn: callee}
			}
		}
	}
	return nil
}

func (r *Result) isArray(e ast.Expr) bool {
	ty, ok := r.info.ExprType[e]
	if !ok {
		return false
	}
	_, arr := ty.(*ast.ArrayType)
	return arr
}

// unionStmt records the alias-class unions a single statement induces.
func (r *Result) unionStmt(s ast.Stmt, fn *ast.FuncDecl, t *locTable) {
	switch st := s.(type) {
	case *ast.VarDeclStmt:
		if st.Init != nil {
			if sym, ok := st.Sym.(*sem.Symbol); ok {
				if _, arr := sym.Type.(*ast.ArrayType); arr {
					t.union(sym, r.regionOf(st.Init, fn, t))
				}
			}
		}
	case *ast.AssignStmt:
		if r.isArray(st.RHS) || r.isArray(st.LHS) {
			t.union(r.regionOf(st.LHS, fn, t), r.regionOf(st.RHS, fn, t))
		}
	case *ast.ReturnStmt:
		if fn != nil && st.Value != nil && r.isArray(st.Value) {
			t.union(retKey{fn: fn}, r.regionOf(st.Value, fn, t))
		}
	}
	// Calls and parameter idents can appear in any expression position.
	for _, e := range ast.StmtExprs(s) {
		ast.InspectExpr(e, func(x ast.Expr) {
			switch ex := x.(type) {
			case *ast.CallExpr:
				callee, ok := ex.Target.(*ast.FuncDecl)
				if !ok {
					return
				}
				for i, a := range ex.Args {
					if i < len(callee.Params) && r.isArray(a) {
						t.union(paramKey{fn: callee, i: i}, r.regionOf(a, fn, t))
					}
				}
			case *ast.Ident:
				if sym, ok := ex.Sym.(*sem.Symbol); ok && sym.Kind == sem.ParamVar {
					if _, arr := sym.Type.(*ast.ArrayType); arr && fn != nil {
						t.union(sym, paramKey{fn: fn, i: sym.Slot})
					}
				}
			}
		})
	}
}

// classOf returns the class location ID of an array region key, or -1.
func (t *locTable) classOf(k any) int {
	if k == nil {
		return -1
	}
	if id, ok := t.id[t.find(k)]; ok {
		return id
	}
	return -1
}

// stmtEffect computes the read/write summary of one statement's own
// expressions.
func (r *Result) stmtEffect(s ast.Stmt, t *locTable) effect {
	e := effect{reads: newBitset(t.n), writes: newBitset(t.n)}
	fn := r.stmts[r.byStmt[s]].fn

	readExpr := func(x ast.Expr) {
		ast.InspectExpr(x, func(sub ast.Expr) {
			switch ex := sub.(type) {
			case *ast.Ident:
				if sym, ok := ex.Sym.(*sem.Symbol); ok && sym.Kind == sem.GlobalVar {
					e.reads.set(sym.Slot)
				}
			case *ast.IndexExpr:
				if cls := t.classOf(r.regionOf(ex.X, fn, t)); cls >= 0 {
					e.reads.set(cls)
				}
			case *ast.CallExpr:
				// Builtins that take arrays (len, print, println) may
				// touch elements; charge a conservative class read.
				if _, user := ex.Target.(*ast.FuncDecl); !user {
					for _, a := range ex.Args {
						if r.isArray(a) {
							if cls := t.classOf(r.regionOf(a, fn, t)); cls >= 0 {
								e.reads.set(cls)
							}
						}
					}
				}
			}
		})
	}

	switch st := s.(type) {
	case *ast.AssignStmt:
		readExpr(st.RHS)
		switch lhs := st.LHS.(type) {
		case *ast.Ident:
			if sym, ok := lhs.Sym.(*sem.Symbol); ok && sym.Kind == sem.GlobalVar {
				e.writes.set(sym.Slot)
				if st.Op != token.ASSIGN { // compound assignment also reads
					e.reads.set(sym.Slot)
				}
			}
		case *ast.IndexExpr:
			readExpr(lhs.X)
			readExpr(lhs.Index)
			if cls := t.classOf(r.regionOf(lhs.X, fn, t)); cls >= 0 {
				e.writes.set(cls)
				if st.Op != token.ASSIGN {
					e.reads.set(cls)
				}
			}
		}
	case *ast.VarDeclStmt:
		if st.Init != nil {
			readExpr(st.Init)
		}
		if sym, ok := st.Sym.(*sem.Symbol); ok && sym.Kind == sem.GlobalVar {
			e.writes.set(sym.Slot)
		}
	default:
		for _, x := range ast.StmtExprs(s) {
			readExpr(x)
		}
	}
	return e
}

// NumLocations returns the number of abstract locations.
func (r *Result) NumLocations() int { return r.locs.n }

// LocationName renders location id for diagnostics ("sum" for a global,
// "a[]" for the element class of arrays aliasing a).
func (r *Result) LocationName(id int) string {
	if id >= 0 && id < len(r.locs.names) {
		return r.locs.names[id]
	}
	return "?"
}
