// Package analysis implements static analysis of HJ-lite programs: a
// conservative may-happen-in-parallel (MHP) relation over statements
// derived from the async/finish structure, per-statement read/write
// effect summaries, and the static race-candidate set (MHP pairs with
// conflicting effects). It also hosts the diagnostics framework and the
// lint checks behind cmd/hjvet.
//
// The analysis is deliberately over-approximate: an async inside a loop
// is treated as unboundedly many concurrent instances, calls are
// resolved context-insensitively through per-function summaries, and
// array effects are tracked per alias class of array bases (no element
// or index precision). The payoff is a soundness guarantee relative to
// the dynamic detectors: every race the ESP-Bags or vector-clock engine
// can observe on any input is between statements the MHP relation marks
// parallel and whose summaries conflict — so the static candidate set
// contains the dynamic race set (asserted by TestStaticCoversDynamic).
package analysis

import (
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/obs"
)

// stmtRec is one indexed statement with its enclosing function (nil for
// a global initializer).
type stmtRec struct {
	stmt ast.Stmt
	fn   *ast.FuncDecl
}

// Result holds everything the analysis computed over one program. It is
// immutable after Analyze except for the per-candidate covered marks
// (MarkCovered), which accumulate dynamic-coverage information across
// detector runs.
type Result struct {
	info *sem.Info

	// Statement universe, in deterministic program order: global
	// initializers first, then each function body in declaration order
	// (for-loop Init and Post are statements of their own).
	stmts  []stmtRec
	byStmt map[ast.Stmt]int

	// asyncs marks the statement IDs that are AsyncStmts.
	asyncs bitset

	// isod marks statement IDs syntactically inside an isolated body;
	// isoClass[i] is the lock class of the outermost isolated statement
	// containing i (meaningful only when isod.has(i)). Two isolated
	// statements exclude each other when either class is 0 (the global
	// lock) or the classes are equal; bodies of different nonzero
	// classes run concurrently, so their statements stay candidates.
	// The dynamic detectors suppress the same pairs via the per-access
	// isolation bit and class.
	isod     bitset
	isoClass []int

	// Per-function summaries (fixpoint over the call graph):
	// contains(f) = statements possibly executed during a call to f,
	// escape(f) = statements possibly still running after the call
	// returns (asyncs spawned inside f with no enclosing finish).
	contains map[*ast.FuncDecl]bitset
	escapes  map[*ast.FuncDecl]bitset

	// all[i] = statements possibly executed while statement i runs
	// (itself, nested statements, callee bodies transitively).
	// esc[i]  = statements possibly still running after i completes.
	// liveAt[i] = statements of earlier asyncs possibly still running
	// when i starts (the "live set" flowing through the MHP walk).
	// mhp[i]  = statements that may run in parallel with i; mhp[i] may
	// contain i itself (an async body inside a loop races with its own
	// other instances).
	all, esc, liveAt, mhp []bitset

	// Abstract locations and per-statement effects over them.
	locs *locTable
	eff  []effect

	cands   []Candidate
	covered []bool

	mhpPairs int
}

// Analyze runs the full static analysis over a checked program. sp may
// be nil (the obs span API is nil-safe); child spans are recorded for
// the three stages.
func Analyze(info *sem.Info, sp *obs.Span) *Result {
	r := &Result{
		info:     info,
		byStmt:   make(map[ast.Stmt]int),
		contains: make(map[*ast.FuncDecl]bitset),
		escapes:  make(map[*ast.FuncDecl]bitset),
	}
	r.index()

	msp := sp.Child("vet/mhp")
	r.summaries()
	r.walkMHP()
	msp.SetInt("stmts", int64(len(r.stmts))).SetInt("mhp_pairs", int64(r.mhpPairs)).End()

	esp := sp.Child("vet/effects")
	r.buildEffects()
	esp.SetInt("locations", int64(r.locs.n)).End()

	csp := sp.Child("vet/candidates")
	r.buildCandidates()
	csp.SetInt("candidates", int64(len(r.cands))).End()

	obs.Default().Counter("vet.runs").Add(1)
	obs.Default().Counter("vet.candidates").Add(int64(len(r.cands)))
	obs.Default().Counter("vet.mhp_pairs").Add(int64(r.mhpPairs))
	return r
}

// index assigns dense IDs to every statement in deterministic program
// order and records which are asyncs.
func (r *Result) index() {
	add := func(s ast.Stmt, fn *ast.FuncDecl) {
		if _, dup := r.byStmt[s]; dup {
			return
		}
		r.byStmt[s] = len(r.stmts)
		r.stmts = append(r.stmts, stmtRec{stmt: s, fn: fn})
	}
	for _, g := range r.info.Prog.Globals {
		add(g, nil)
	}
	for _, fn := range r.info.Prog.Funcs {
		fn := fn
		for _, s := range fn.Body.Stmts {
			ast.InspectStmts(s, func(st ast.Stmt) { add(st, fn) })
		}
	}
	n := len(r.stmts)
	r.asyncs = newBitset(n)
	r.isod = newBitset(n)
	r.isoClass = make([]int, n)
	for i, rec := range r.stmts {
		switch st := rec.stmt.(type) {
		case *ast.AsyncStmt:
			r.asyncs.set(i)
		case *ast.IsolatedStmt:
			for _, s := range st.Body.Stmts {
				ast.InspectStmts(s, func(in ast.Stmt) {
					if id, ok := r.byStmt[in]; ok {
						// Statements are visited outermost-isolated
						// first, and the outermost lock is the one that
						// governs exclusion, so the first class sticks.
						if !r.isod.has(id) {
							r.isod.set(id)
							r.isoClass[id] = st.LockClass
						}
					}
				})
			}
		}
	}
}

// NumStmts returns the size of the statement universe.
func (r *Result) NumStmts() int { return len(r.stmts) }

// MHPPairs returns the number of ordered statement pairs in the MHP
// relation.
func (r *Result) MHPPairs() int { return r.mhpPairs }

// StmtID returns the dense ID of a statement, or -1 when the statement
// is not part of the analyzed program.
func (r *Result) StmtID(s ast.Stmt) int {
	if id, ok := r.byStmt[s]; ok {
		return id
	}
	return -1
}

// stmtCallees returns the user functions that statement s may call
// directly (through its own expressions, not nested statements).
func (r *Result) stmtCallees(s ast.Stmt) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, e := range ast.StmtExprs(s) {
		ast.InspectExpr(e, func(x ast.Expr) {
			if call, ok := x.(*ast.CallExpr); ok {
				if fn, ok := call.Target.(*ast.FuncDecl); ok {
					out = append(out, fn)
				}
			}
		})
	}
	return out
}
