package analysis

import (
	"fmt"

	"finishrepair/internal/dpst"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/token"
)

// Candidate is one static race candidate: an unordered statement pair
// in the MHP relation whose effect summaries conflict. A == B is
// possible (an async body in a loop racing with its own other
// instances).
type Candidate struct {
	A, B       int // statement IDs, A <= B
	APos, BPos token.Pos
	AFunc      string // enclosing function ("" for a global initializer)
	BFunc      string
	Loc        string // lowest conflicting abstract location, rendered
	Kind       string // "W/W" or "R/W"
}

// String renders the candidate for reports.
func (c Candidate) String() string {
	return fmt.Sprintf("%s (%s) and %s (%s) on %s [%s]", c.APos, c.AFunc, c.BPos, c.BFunc, c.Loc, c.Kind)
}

// buildCandidates intersects the MHP relation with the effect
// summaries.
func (r *Result) buildCandidates() {
	n := len(r.stmts)
	for i := 0; i < n; i++ {
		ei := r.eff[i]
		if ei.empty() {
			continue
		}
		for j := i; j < n; j++ {
			if !r.mhp[i].has(j) {
				continue
			}
			// Both statements inside isolated bodies whose locks exclude
			// each other (either class 0's global lock, or one shared
			// nonzero class) cannot overlap. The dynamic detectors
			// suppress exactly these pairs (both access sites isolated
			// with excluding classes), so dropping them here preserves
			// the static-covers-dynamic guarantee; bodies of different
			// nonzero classes run concurrently and stay candidates.
			if r.isod.has(i) && r.isod.has(j) &&
				(r.isoClass[i] == 0 || r.isoClass[j] == 0 || r.isoClass[i] == r.isoClass[j]) {
				continue
			}
			ej := r.eff[j]
			loc, kind := conflict(ei, ej)
			if loc < 0 {
				continue
			}
			r.cands = append(r.cands, Candidate{
				A: i, B: j,
				APos: r.stmts[i].stmt.Pos(), BPos: r.stmts[j].stmt.Pos(),
				AFunc: fnName(r.stmts[i].fn), BFunc: fnName(r.stmts[j].fn),
				Loc: r.LocationName(loc), Kind: kind,
			})
		}
	}
	r.covered = make([]bool, len(r.cands))
}

func fnName(fn *ast.FuncDecl) string {
	if fn == nil {
		return "globals"
	}
	return fn.Name
}

// conflict returns the lowest location where the two effects conflict
// (write/write or read/write), or -1. Kind reports which.
func conflict(a, b effect) (int, string) {
	best, kind := -1, ""
	scan := func(x, y bitset, k string) {
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		for w := 0; w < n; w++ {
			if m := x[w] & y[w]; m != 0 {
				loc := w << 6
				for m&1 == 0 {
					m >>= 1
					loc++
				}
				if best < 0 || loc < best {
					best, kind = loc, k
				}
			}
		}
	}
	scan(a.writes, b.writes, "W/W")
	scan(a.writes, b.reads, "R/W")
	scan(a.reads, b.writes, "R/W")
	return best, kind
}

// Candidates returns the static race-candidate set in deterministic
// (statement-ID) order.
func (r *Result) Candidates() []Candidate { return r.cands }

// stmtSetOf maps a (resolved) S-DPST node to the set of statement IDs
// whose execution the node may represent: the union of all() over the
// statements the node's static coordinates cover. Loop-header
// pseudo-steps (StmtLo == -1) and other nodes without usable
// coordinates climb to the nearest ancestor carrying an AST statement.
// ok is false when no mapping exists; callers must then be
// conservative.
func (r *Result) stmtSetOf(n *dpst.Node) (bitset, bool) {
	if n == nil {
		return nil, false
	}
	n = n.Resolve()
	if n.OwnerBlock != nil && n.StmtLo >= 0 && n.StmtHi < len(n.OwnerBlock.Stmts) {
		set := newBitset(len(r.stmts))
		for i := n.StmtLo; i <= n.StmtHi; i++ {
			id, ok := r.byStmt[n.OwnerBlock.Stmts[i]]
			if !ok {
				return nil, false
			}
			set.or(r.all[id])
		}
		return set, true
	}
	for a := n; a != nil; a = a.Parent {
		if a.Stmt != nil {
			if id, ok := r.byStmt[a.Stmt]; ok {
				return r.all[id], true
			}
			return nil, false
		}
	}
	return nil, false
}

// Resolvable reports whether the node maps to a concrete statement set
// — i.e. whether Covers/MayRunInParallel answer from the analysis
// rather than falling through to the conservative default. Tests use it
// to prove the soundness cross-check is non-vacuous.
func (r *Result) Resolvable(n *dpst.Node) bool {
	_, ok := r.stmtSetOf(n)
	return ok
}

// MayRunInParallel reports whether the statements represented by the
// two S-DPST nodes may run in parallel statically. Unknown nodes are
// conservatively parallel, so using this as a filter can only suppress
// provably-serial work.
func (r *Result) MayRunInParallel(src, dst *dpst.Node) bool {
	sa, oka := r.stmtSetOf(src)
	sb, okb := r.stmtSetOf(dst)
	if !oka || !okb {
		return true
	}
	par := false
	sa.forEach(func(i int) {
		if !par && r.mhp[i].intersects(sb) {
			par = true
		}
	})
	return par
}

// Covers reports whether a dynamic race between the two S-DPST nodes is
// explained by some static candidate: a candidate whose endpoints fall
// one in each node's statement set (or both in either, for self-races).
// Unknown nodes are conservatively covered.
func (r *Result) Covers(src, dst *dpst.Node) bool {
	sa, oka := r.stmtSetOf(src)
	sb, okb := r.stmtSetOf(dst)
	if !oka || !okb {
		return true
	}
	for _, c := range r.cands {
		if (sa.has(c.A) && sb.has(c.B)) || (sb.has(c.A) && sa.has(c.B)) {
			return true
		}
	}
	return false
}

// MarkCovered records that a dynamic race between the two nodes was
// observed, marking every candidate it can explain as dynamically
// exercised. Unknown nodes mark nothing.
func (r *Result) MarkCovered(src, dst *dpst.Node) {
	sa, oka := r.stmtSetOf(src)
	sb, okb := r.stmtSetOf(dst)
	if !oka || !okb {
		return
	}
	for i, c := range r.cands {
		if (sa.has(c.A) && sb.has(c.B)) || (sb.has(c.A) && sa.has(c.B)) {
			r.covered[i] = true
		}
	}
}

// UncoveredCandidates returns the candidates no dynamic race has
// touched since Analyze — the coverage-gap report of hjrepair -vet.
func (r *Result) UncoveredCandidates() []Candidate {
	var out []Candidate
	for i, c := range r.cands {
		if !r.covered[i] {
			out = append(out, c)
		}
	}
	return out
}
