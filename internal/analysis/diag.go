package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"finishrepair/internal/lang/token"
)

// Severity grades diagnostics.
type Severity int

// Severity levels.
const (
	Info Severity = iota
	Warning
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Error:
		return "error"
	default:
		return "warning"
	}
}

// Related is a secondary position attached to a diagnostic (the other
// end of a race pair, the conflicting async, ...).
type Related struct {
	Pos     token.Pos
	Message string
}

// Diagnostic is one finding of a lint check: a position, a severity, a
// stable check name, the message, an optional fix hint, and related
// positions.
type Diagnostic struct {
	Pos      token.Pos
	Severity Severity
	Check    string
	Message  string
	Hint     string
	Related  []Related
}

// SortDiagnostics orders diagnostics by position then check name, so
// renderers and golden files are deterministic.
func SortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Check < b.Check
	})
}

// WriteText renders diagnostics in the classic compiler format:
//
//	file:line:col: warning: [check] message
//	        file:line:col: related message
//	        hint: fix hint
func WriteText(w io.Writer, file string, ds []Diagnostic) error {
	bw := bufio.NewWriter(w)
	for _, d := range ds {
		fmt.Fprintf(bw, "%s:%s: %s: [%s] %s\n", file, d.Pos, d.Severity, d.Check, d.Message)
		for _, rel := range d.Related {
			fmt.Fprintf(bw, "\t%s:%s: %s\n", file, rel.Pos, rel.Message)
		}
		if d.Hint != "" {
			fmt.Fprintf(bw, "\thint: %s\n", d.Hint)
		}
	}
	return bw.Flush()
}

// JSON DTOs: explicit types so the wire format is stable independent of
// internal struct shape.

type jsonRelated struct {
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

type jsonDiagnostic struct {
	Line     int           `json:"line"`
	Col      int           `json:"col"`
	Severity string        `json:"severity"`
	Check    string        `json:"check"`
	Message  string        `json:"message"`
	Hint     string        `json:"hint,omitempty"`
	Related  []jsonRelated `json:"related,omitempty"`
}

type jsonReport struct {
	File        string           `json:"file"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

// WriteJSON renders diagnostics as a single JSON document.
func WriteJSON(w io.Writer, file string, ds []Diagnostic) error {
	rep := jsonReport{File: file, Diagnostics: []jsonDiagnostic{}}
	for _, d := range ds {
		jd := jsonDiagnostic{
			Line: d.Pos.Line, Col: d.Pos.Col,
			Severity: d.Severity.String(), Check: d.Check,
			Message: d.Message, Hint: d.Hint,
		}
		for _, rel := range d.Related {
			jd.Related = append(jd.Related, jsonRelated{Line: rel.Pos.Line, Col: rel.Pos.Col, Message: rel.Message})
		}
		rep.Diagnostics = append(rep.Diagnostics, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Allowlist suppresses known-acceptable diagnostics, keyed by file
// suffix, position, and check name. The format is line-oriented:
//
//	# comment
//	path/to/file.hj:12:3 static-race
//
// Path matching is by suffix so the allowlist works from any working
// directory.
type Allowlist struct {
	entries []allowEntry
}

type allowEntry struct {
	path  string
	line  int
	col   int
	check string
}

// ParseAllowlist reads the allowlist format. Malformed lines are
// errors, so stale entries cannot silently rot.
func ParseAllowlist(r io.Reader) (*Allowlist, error) {
	al := &Allowlist{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("allowlist line %d: want \"path:line:col check\", got %q", lineNo, line)
		}
		loc := fields[0]
		i := strings.LastIndex(loc, ":")
		j := strings.LastIndex(loc[:i], ":")
		if i < 0 || j < 0 {
			return nil, fmt.Errorf("allowlist line %d: bad location %q", lineNo, loc)
		}
		ln, err1 := strconv.Atoi(loc[j+1 : i])
		col, err2 := strconv.Atoi(loc[i+1:])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("allowlist line %d: bad location %q", lineNo, loc)
		}
		al.entries = append(al.entries, allowEntry{path: loc[:j], line: ln, col: col, check: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return al, nil
}

// Match reports whether the diagnostic at file is allowlisted.
func (al *Allowlist) Match(file string, d Diagnostic) bool {
	if al == nil {
		return false
	}
	for _, e := range al.entries {
		if e.line == d.Pos.Line && e.col == d.Pos.Col && e.check == d.Check &&
			(file == e.path || strings.HasSuffix(file, "/"+e.path) || strings.HasSuffix(e.path, "/"+file) || e.path == file) {
			return true
		}
	}
	return false
}

// Filter returns the diagnostics not matched by the allowlist.
func (al *Allowlist) Filter(file string, ds []Diagnostic) []Diagnostic {
	if al == nil {
		return ds
	}
	out := ds[:0:0]
	for _, d := range ds {
		if !al.Match(file, d) {
			out = append(out, d)
		}
	}
	return out
}
