package analysis

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers. The
// MHP relation, effect summaries, and function summaries are all sets
// over the (small) statement and location universes, so dense words beat
// maps by a wide margin and make the fixpoint's "did anything change"
// test a single pass of ORs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// or folds c into b and reports whether b changed.
func (b bitset) or(c bitset) bool {
	changed := false
	for i, w := range c {
		if nw := b[i] | w; nw != b[i] {
			b[i] = nw
			changed = true
		}
	}
	return changed
}

func (b bitset) intersects(c bitset) bool {
	n := len(b)
	if len(c) < n {
		n = len(c)
	}
	for i := 0; i < n; i++ {
		if b[i]&c[i] != 0 {
			return true
		}
	}
	return false
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls f for every member, in increasing order.
func (b bitset) forEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
