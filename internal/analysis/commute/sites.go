package commute

import (
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
)

// SiteIndex maps access-site statements (as reported by the static
// candidate set or the dynamic race engines) to recognized commutative
// updates. It handles the one indirection recognition itself cannot: a
// min/max reduction's racy write is the assignment INSIDE the if's then
// block, but the recognizable unit is the whole if statement, so the
// index hoists such sites to the enclosing if before recognizing.
type SiteIndex struct {
	own   map[ast.Stmt]site
	hoist map[ast.Stmt]site
}

type site struct {
	b   *ast.Block
	idx int
}

// NewSiteIndex walks every function body of prog and records each
// statement's (block, index) position plus the hoist edges from
// single-statement then-blocks to their if.
func NewSiteIndex(prog *ast.Program) *SiteIndex {
	ix := &SiteIndex{own: map[ast.Stmt]site{}, hoist: map[ast.Stmt]site{}}
	var walk func(b *ast.Block)
	walk = func(b *ast.Block) {
		if b == nil {
			return
		}
		for i, s := range b.Stmts {
			ix.own[s] = site{b, i}
			if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil &&
				ifs.Then != nil && len(ifs.Then.Stmts) == 1 {
				ix.hoist[ifs.Then.Stmts[0]] = site{b, i}
			}
			for _, nb := range ast.StmtBlocks(s) {
				walk(nb)
			}
			if fs, ok := s.(*ast.ForStmt); ok {
				// Init/Post are statements without a block position of
				// their own; record them so lookups do not miss, but
				// with an invalid index (never recognizable).
				if fs.Init != nil {
					ix.own[fs.Init] = site{b, -1}
				}
				if fs.Post != nil {
					ix.own[fs.Post] = site{b, -1}
				}
			}
		}
	}
	for _, fn := range prog.Funcs {
		walk(fn.Body)
	}
	return ix
}

// At resolves the smallest recognized commutative update containing
// statement s, hoisting through a single-statement then-block when the
// statement itself is not recognizable.
func (ix *SiteIndex) At(s ast.Stmt) (Update, bool) {
	if p, ok := ix.own[s]; ok && p.idx >= 0 {
		if u, ok := RecognizeAt(p.b, p.idx); ok {
			return u, true
		}
	}
	if p, ok := ix.hoist[s]; ok {
		if u, ok := RecognizeAt(p.b, p.idx); ok {
			return u, true
		}
	}
	return Update{}, false
}

// TargetBase returns the symbol the update's target lvalue is rooted at
// (the reduced global, or the base array variable).
func (u Update) TargetBase() *sem.Symbol { return baseSym(u.Target) }

// Key identifies an update region for deduplication: several dynamic
// race sites typically resolve to one static region.
type Key struct {
	Block  *ast.Block
	Lo, Hi int
}

// RegionKey returns the update's dedup key.
func (u Update) RegionKey() Key { return Key{u.Block, u.Lo, u.Hi} }
