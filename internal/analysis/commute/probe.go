// Semantic order probe: the checker backing every static "commutes"
// verdict. For a candidate pair of recognized updates the probe builds
// two tiny HJ-lite programs — one running region A then region B, one
// running B then A, over identical deterministic initial state — and
// executes both under the serial interpreter (the repair pipeline's
// ground-truth semantics). If the rendered final states differ, the
// static verdict is wrong and the pair is refuted; refuted or
// unsupported pairs fall back to the always-sound finish repair.
package commute

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
)

// ErrRefuted reports that the serial oracle observed different final
// states for the two execution orders: the statically recognized pair
// does not in fact commute. Any other ProbePair error means the probe
// could not build a faithful closed program for the pair (calls in
// opaque terms, non-int locals, runtime faults) — unsupported, not
// disproven.
var ErrRefuted = errors.New("order probe refuted commutativity: the two execution orders disagree")

// Two deterministic valuations for the pair's free inputs. Two trials
// with distinct, coprime-ish spreads catch order dependence that a
// single lucky valuation (e.g. all-equal inputs for min/max) would
// mask.
var probeTrials = [2][]int64{
	{3, 5, 7, 2, 6, 4, 1},
	{6, 1, 4, 7, 2, 5, 3},
}

// ProbePair checks that the two recognized update regions commute
// semantically: both statement orders, run from identical initial
// state under the serial interpreter, must render identical final
// state. It returns nil when both trial valuations agree, ErrRefuted
// when any trial disagrees, and a descriptive error when the pair
// cannot be probed.
func ProbePair(info *sem.Info, a, b Update) error {
	pr, err := newProber(info, a, b)
	if err != nil {
		return err
	}
	for trial := range probeTrials {
		ab, err := pr.run(trial, false)
		if err != nil {
			return err
		}
		ba, err := pr.run(trial, true)
		if err != nil {
			return err
		}
		if ab != ba {
			mRefuted.Inc()
			return fmt.Errorf("%w (trial %d)", ErrRefuted, trial)
		}
	}
	mConfirmed.Inc()
	return nil
}

// prober holds the pieces of the generated probe program that do not
// depend on trial or order: global declarations, array fills, and the
// rendered region bodies.
type prober struct {
	globalDecls []string // var g int = ...; / var arr []int = make(...)
	fills       []string // deterministic array fill loops
	freeDecls   []string // var pa_x int = @N; with @N a sample slot
	bodyA       []string
	bodyB       []string
}

func newProber(info *sem.Info, a, b Update) (*prober, error) {
	gw := &probeWriter{
		info:    info,
		rename:  map[*sem.Symbol]string{},
		globals: map[*sem.Symbol]bool{},
	}
	// Reserve every global name so local renames cannot collide.
	for _, g := range info.Prog.Globals {
		if sym, ok := g.Sym.(*sem.Symbol); ok {
			gw.taken(sym.Name)
		}
	}
	p := &prober{}
	var err error
	if p.bodyA, err = gw.region("pa", a); err != nil {
		return nil, err
	}
	if p.bodyB, err = gw.region("pb", b); err != nil {
		return nil, err
	}
	p.globalDecls, p.fills, err = gw.globalSetup()
	if err != nil {
		return nil, err
	}
	p.freeDecls = gw.freeDecls
	return p, nil
}

// run renders, parses, checks, and executes one order under one trial
// valuation, returning the rendered final global state.
func (p *prober) run(trial int, swapped bool) (string, error) {
	var sb strings.Builder
	for _, d := range p.globalDecls {
		sb.WriteString(d)
		sb.WriteByte('\n')
	}
	sb.WriteString("func main() {\n")
	for _, f := range p.fills {
		sb.WriteString(f)
		sb.WriteByte('\n')
	}
	samples := probeTrials[trial]
	for i, d := range p.freeDecls {
		v := samples[i%len(samples)]
		sb.WriteString(strings.Replace(d, "@", fmt.Sprint(v), 1))
		sb.WriteByte('\n')
	}
	first, second := p.bodyA, p.bodyB
	if swapped {
		first, second = second, first
	}
	for _, s := range first {
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	for _, s := range second {
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	sb.WriteString("}\n")

	prog, err := parser.Parse(sb.String())
	if err != nil {
		return "", fmt.Errorf("order probe: generated program does not parse: %w", err)
	}
	pinfo, err := sem.Check(prog)
	if err != nil {
		return "", fmt.Errorf("order probe: generated program does not check: %w", err)
	}
	res, err := interp.Run(pinfo, interp.Options{Mode: interp.Elide})
	if err != nil {
		return "", fmt.Errorf("order probe: serial run failed: %w", err)
	}
	return interp.RenderState(pinfo, res.Globals), nil
}

// probeWriter renders region statements to HJ-lite source, renaming
// every local to a per-instance fresh name and collecting the shared
// state the closed program must declare.
type probeWriter struct {
	info      *sem.Info
	rename    map[*sem.Symbol]string
	names     map[string]bool
	globals   map[*sem.Symbol]bool
	freeDecls []string
}

func (w *probeWriter) taken(name string) {
	if w.names == nil {
		w.names = map[string]bool{}
	}
	w.names[name] = true
}

// fresh picks an unused name with the instance prefix.
func (w *probeWriter) fresh(prefix, base string) string {
	name := prefix + "_" + base
	for i := 2; w.names[name]; i++ {
		name = fmt.Sprintf("%s_%s%d", prefix, base, i)
	}
	w.taken(name)
	return name
}

// region renders one update region's statements. Locals declared
// inside the region are renamed and re-declared by their own
// statements; locals defined before the region (free inputs) are
// renamed and declared up front with a trial sample value.
func (w *probeWriter) region(prefix string, u Update) ([]string, error) {
	// Renames are scoped per region instance: when a group probes two
	// dynamic instances of the same static statements against each
	// other, each instance must get its own free-input samples —
	// sharing them would make any pair trivially order-independent.
	w.rename = map[*sem.Symbol]string{}
	// First pass: name the region-bound locals so forward references in
	// the renderer resolve consistently.
	for i := u.Lo; i <= u.Hi; i++ {
		if vd, ok := u.Block.Stmts[i].(*ast.VarDeclStmt); ok {
			if sym, ok := vd.Sym.(*sem.Symbol); ok {
				w.rename[sym] = w.fresh(prefix, sym.Name)
			}
		}
	}
	var out []string
	for i := u.Lo; i <= u.Hi; i++ {
		src, err := w.stmtSrc(prefix, u.Block.Stmts[i])
		if err != nil {
			return nil, err
		}
		out = append(out, "    "+src)
	}
	return out, nil
}

// globalSetup declares every referenced global with a deterministic
// initial value: int globals keep their original literal initializer
// (min/max reductions depend on the seed value) or get 7; arrays are
// allocated at their original literal length (else 16) and filled with
// a spread of distinct values.
func (w *probeWriter) globalSetup() (decls, fills []string, err error) {
	syms := make([]*sem.Symbol, 0, len(w.globals))
	for sym := range w.globals {
		syms = append(syms, sym)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Slot < syms[j].Slot })
	for _, sym := range syms {
		var orig *ast.VarDeclStmt
		for _, g := range w.info.Prog.Globals {
			if g.Sym == any(sym) {
				orig = g
				break
			}
		}
		switch t := sym.Type.(type) {
		case *ast.PrimType:
			if t.Kind != ast.Int {
				return nil, nil, fmt.Errorf("order probe: global %s has unsupported type %s", sym.Name, t)
			}
			init := int64(7)
			if orig != nil {
				if lit, ok := orig.Init.(*ast.IntLit); ok {
					init = lit.Value
				}
			}
			decls = append(decls, fmt.Sprintf("var %s int = %d;", sym.Name, init))
		case *ast.ArrayType:
			if pt, ok := t.Elem.(*ast.PrimType); !ok || pt.Kind != ast.Int {
				return nil, nil, fmt.Errorf("order probe: global %s has unsupported type %s", sym.Name, t)
			}
			n := int64(16)
			if orig != nil {
				if mk, ok := orig.Init.(*ast.MakeExpr); ok {
					if lit, ok := mk.Len.(*ast.IntLit); ok {
						n = lit.Value
					}
				}
			}
			decls = append(decls, fmt.Sprintf("var %s []int = make([]int, %d);", sym.Name, n))
			idx := w.fresh("pf", sym.Name+"i")
			fills = append(fills, fmt.Sprintf(
				"    for (var %[1]s = 0; %[1]s < %[2]d; %[1]s = %[1]s + 1) { %[3]s[%[1]s] = (%[1]s * 13 + 5) %% 17; }",
				idx, n, sym.Name))
		default:
			return nil, nil, fmt.Errorf("order probe: global %s has unsupported type", sym.Name)
		}
	}
	return decls, fills, nil
}

// stmtSrc renders the statement shapes a recognized region can contain.
func (w *probeWriter) stmtSrc(prefix string, s ast.Stmt) (string, error) {
	switch st := s.(type) {
	case *ast.VarDeclStmt:
		sym, _ := st.Sym.(*sem.Symbol)
		name := w.rename[sym]
		if name == "" {
			return "", fmt.Errorf("order probe: undeclared region local %s", st.Name)
		}
		if st.Init == nil {
			return fmt.Sprintf("var %s int = 0;", name), nil
		}
		init, err := w.exprSrc(prefix, st.Init)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("var %s = %s;", name, init), nil
	case *ast.AssignStmt:
		lhs, err := w.exprSrc(prefix, st.LHS)
		if err != nil {
			return "", err
		}
		rhs, err := w.exprSrc(prefix, st.RHS)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %s %s;", lhs, st.Op, rhs), nil
	case *ast.IfStmt:
		if st.Else != nil || st.Then == nil || len(st.Then.Stmts) != 1 {
			return "", fmt.Errorf("order probe: unsupported if shape")
		}
		cond, err := w.exprSrc(prefix, st.Cond)
		if err != nil {
			return "", err
		}
		body, err := w.stmtSrc(prefix, st.Then.Stmts[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("if (%s) { %s }", cond, body), nil
	}
	return "", fmt.Errorf("order probe: unsupported statement shape %T", s)
}

// exprSrc renders an expression, renaming locals and recording
// referenced globals. Calls are rejected: a call's effects cannot be
// reproduced in the closed probe program.
func (w *probeWriter) exprSrc(prefix string, e ast.Expr) (string, error) {
	switch ex := e.(type) {
	case *ast.Ident:
		sym, ok := ex.Sym.(*sem.Symbol)
		if !ok {
			return "", fmt.Errorf("order probe: unresolved identifier %s", ex.Name)
		}
		if sym.Kind == sem.GlobalVar {
			w.globals[sym] = true
			return sym.Name, nil
		}
		if name, ok := w.rename[sym]; ok {
			return name, nil
		}
		// A free local input: declare it with a trial sample slot. Only
		// int inputs have a faithful closed-form sample.
		if pt, ok := sym.Type.(*ast.PrimType); !ok || pt.Kind != ast.Int {
			return "", fmt.Errorf("order probe: free local %s has unsupported type", sym.Name)
		}
		name := w.fresh(prefix, sym.Name)
		w.rename[sym] = name
		w.freeDecls = append(w.freeDecls, fmt.Sprintf("    var %s = @;", name))
		return name, nil
	case *ast.IntLit:
		return fmt.Sprint(ex.Value), nil
	case *ast.BoolLit:
		return fmt.Sprint(ex.Value), nil
	case *ast.BinaryExpr:
		x, err := w.exprSrc(prefix, ex.X)
		if err != nil {
			return "", err
		}
		y, err := w.exprSrc(prefix, ex.Y)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", x, ex.Op, y), nil
	case *ast.UnaryExpr:
		x, err := w.exprSrc(prefix, ex.X)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s%s)", ex.Op, x), nil
	case *ast.IndexExpr:
		x, err := w.exprSrc(prefix, ex.X)
		if err != nil {
			return "", err
		}
		idx, err := w.exprSrc(prefix, ex.Index)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s[%s]", x, idx), nil
	case *ast.CallExpr:
		return "", fmt.Errorf("order probe: call %s(...) cannot be reproduced in a closed probe", ex.Fun)
	case *ast.FloatLit:
		return "", fmt.Errorf("order probe: float literal in region")
	}
	return "", fmt.Errorf("order probe: unsupported expression %T", e)
}
