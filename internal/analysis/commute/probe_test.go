package commute

import (
	"errors"
	"testing"
)

func TestProbeConfirmsAdditive(t *testing.T) {
	info, b := mainBlock(t, `
var s = 0;
func main() {
    var t = 1;
    var u = 2;
    s = s + t;
    s = s - u;
}`)
	a, ok1 := Recognize(b, 2, 2)
	c, ok2 := Recognize(b, 3, 3)
	if !ok1 || !ok2 {
		t.Fatal("recognition failed")
	}
	if err := ProbePair(info, a, c); err != nil {
		t.Fatalf("additive pair refuted: %v", err)
	}
}

func TestProbeConfirmsSelfPair(t *testing.T) {
	// A group usually holds two dynamic instances of ONE static update;
	// the probe must give each instance independent inputs.
	info, b := mainBlock(t, `
var s = 0;
func main() {
    var t = 1;
    s = s + t;
}`)
	u, ok := Recognize(b, 1, 1)
	if !ok {
		t.Fatal("recognition failed")
	}
	if err := ProbePair(info, u, u); err != nil {
		t.Fatalf("self pair refuted: %v", err)
	}
}

func TestProbeRefutesMixedFamilies(t *testing.T) {
	info, b := mainBlock(t, `
var s = 7;
func main() {
    var t = 1;
    var u = 2;
    s = s + t;
    s = s * u;
}`)
	a, ok1 := Recognize(b, 2, 2)
	c, ok2 := Recognize(b, 3, 3)
	if !ok1 || !ok2 {
		t.Fatal("recognition failed")
	}
	err := ProbePair(info, a, c)
	if !errors.Is(err, ErrRefuted) {
		t.Fatalf("mixed add/mul pair not refuted: %v", err)
	}
}

func TestProbeRefutesMixedCounterPair(t *testing.T) {
	// The classic soundness hole in the old syntactic gate: sum reads
	// cnt, so the two additive updates of DIFFERENT locations do not
	// commute even though each is individually a recognized reduction.
	info, b := mainBlock(t, `
var cnt = 0;
var sum = 0;
func main() {
    cnt = cnt + 1;
    sum = sum + cnt;
}`)
	a, ok1 := Recognize(b, 0, 0)
	c, ok2 := Recognize(b, 1, 1)
	if !ok1 || !ok2 {
		t.Fatal("recognition failed")
	}
	if !Overlaps(a, c) {
		t.Fatal("cross-reading pair not flagged as overlapping")
	}
	err := ProbePair(info, a, c)
	if !errors.Is(err, ErrRefuted) {
		t.Fatalf("order-dependent cross-location pair not refuted: %v", err)
	}
}

func TestProbeConfirmsMinMax(t *testing.T) {
	info, b := mainBlock(t, `
var lo = 99;
func main() {
    var x = 1;
    if (x < lo) { lo = x; }
}`)
	u, ok := Recognize(b, 1, 1)
	if !ok || u.Family != FamMin {
		t.Fatalf("min not recognized: %+v ok=%v", u, ok)
	}
	if err := ProbePair(info, u, u); err != nil {
		t.Fatalf("min self pair refuted: %v", err)
	}
}

func TestProbeConfirmsRegionPair(t *testing.T) {
	info, b := mainBlock(t, `
var acc = 0;
func main() {
    var inc = 3;
    var cur = acc;
    acc = cur + inc;
}`)
	u, ok := RecognizeAt(b, 1)
	if !ok || u.Lo != 1 || u.Hi != 2 {
		t.Fatalf("region not recognized: %+v ok=%v", u, ok)
	}
	if err := ProbePair(info, u, u); err != nil {
		t.Fatalf("split RMW self pair refuted: %v", err)
	}
}

func TestProbeUnsupportedCall(t *testing.T) {
	// Calls in an opaque term keep the statement recognized (parity with
	// the old gate) but the probe cannot close over the callee: the pair
	// is unsupported, not refuted — callers must fall back to finish.
	info, b := mainBlock(t, `
var s = 0;
func f(x int) int { return x * 2; }
func main() {
    var t = 1;
    s = s + f(t);
}`)
	u, ok := Recognize(b, 1, 1)
	if !ok {
		t.Fatal("call-bearing opaque term no longer recognized")
	}
	err := ProbePair(info, u, u)
	if err == nil {
		t.Fatal("call-bearing pair probed successfully")
	}
	if errors.Is(err, ErrRefuted) {
		t.Fatalf("unsupported pair misreported as refuted: %v", err)
	}
}

func TestProbeArrayTargets(t *testing.T) {
	info, b := mainBlock(t, `
var a = make([]int, 8);
func main() {
    var i = 1;
    var j = 2;
    a[i] = a[i] + 1;
    a[j] = a[j] + 3;
}`)
	x, ok1 := Recognize(b, 2, 2)
	y, ok2 := Recognize(b, 3, 3)
	if !ok1 || !ok2 {
		t.Fatal("recognition failed")
	}
	if err := ProbePair(info, x, y); err != nil {
		t.Fatalf("array element adds refuted: %v", err)
	}
}
