package commute

import (
	"testing"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
)

// mainBlock parses and checks src and returns main's body.
func mainBlock(t *testing.T, src string) (*sem.Info, *ast.Block) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info, prog.Func("main").Body
}

// TestRecognizeSingleStmt is the table-driven gate test from the
// satellite task: one statement per program, last statement of main,
// recognized (or not) on its own.
func TestRecognizeSingleStmt(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want Family
		ok   bool
	}{
		{"add-compound", "var s = 0; func main() { var t = 1; s += t; }", FamAdd, true},
		{"sub-compound", "var s = 0; func main() { var t = 1; s -= t; }", FamAdd, true},
		{"mul-compound", "var s = 1; func main() { var t = 2; s *= t; }", FamMul, true},
		{"quo-compound", "var s = 8; func main() { var t = 2; s /= t; }", FamNone, false},
		{"add-expanded", "var s = 0; func main() { var t = 1; s = s + t; }", FamAdd, true},
		{"add-operand-order", "var s = 0; func main() { var t = 1; s = t + s; }", FamAdd, true},
		// The satellite fix: expanded subtraction is additive.
		{"sub-expanded", "var s = 0; func main() { var t = 1; s = s - t; }", FamAdd, true},
		{"sub-reversed", "var s = 0; func main() { var t = 1; s = t - s; }", FamNone, false},
		{"mul-expanded", "var s = 1; func main() { var t = 2; s = s * t; }", FamMul, true},
		{"mul-operand-order", "var s = 1; func main() { var t = 2; s = t * s; }", FamMul, true},
		{"deep-add-chain", "var s = 0; func main() { var t = 1; var u = 2; s = t + (s + u); }", FamAdd, true},
		{"add-sub-chain", "var s = 0; func main() { var t = 1; var u = 2; s = (s - t) + u; }", FamAdd, true},
		{"mixed-chain", "var s = 0; func main() { var t = 1; s = s * t + 1; }", FamNone, false},
		// Self-reading RHS: the update term must not read the target.
		{"self-reading-rhs", "var s = 0; func main() { s = s + s; }", FamNone, false},
		{"self-reading-term", "var s = 0; func main() { var t = 1; s = s + (s * t); }", FamNone, false},
		{"identity-write", "var s = 0; func main() { s = s; }", FamNone, false},
		{"plain-write", "var s = 0; func main() { var t = 1; s = t; }", FamNone, false},
		// Float rejection: reordering float adds reorders rounding.
		{"float-target", "var f = 0.0; func main() { f = f + 1.0; }", FamNone, false},
		{"float-compound", "var f = 1.0; func main() { f *= 2.0; }", FamNone, false},
		{"array-add", "var a = make([]int, 4); func main() { var i = 1; a[i] = a[i] + 2; }", FamAdd, true},
		{"array-other-index", "var a = make([]int, 4); func main() { var i = 1; var j = 2; a[i] = a[j] + 2; }", FamNone, false},
		// Min/max if-forms, all four relations and both operand orders.
		{"min-lss", "var lo = 99; func main() { var x = 1; if (x < lo) { lo = x; } }", FamMin, true},
		{"min-leq", "var lo = 99; func main() { var x = 1; if (x <= lo) { lo = x; } }", FamMin, true},
		{"min-flipped", "var lo = 99; func main() { var x = 1; if (lo > x) { lo = x; } }", FamMin, true},
		{"max-gtr", "var hi = 0; func main() { var x = 1; if (x > hi) { hi = x; } }", FamMax, true},
		{"max-geq", "var hi = 0; func main() { var x = 1; if (x >= hi) { hi = x; } }", FamMax, true},
		{"max-flipped", "var hi = 0; func main() { var x = 1; if (hi < x) { hi = x; } }", FamMax, true},
		{"minmax-wrong-assign", "var lo = 99; func main() { var x = 1; var y = 2; if (x < lo) { lo = y; } }", FamNone, false},
		{"minmax-else", "var lo = 99; func main() { var x = 1; if (x < lo) { lo = x; } else { lo = 0; } }", FamNone, false},
		{"minmax-eql", "var lo = 99; func main() { var x = 1; if (x == lo) { lo = x; } }", FamNone, false},
		{"minmax-two-stmts", "var lo = 99; var n = 0; func main() { var x = 1; if (x < lo) { lo = x; n = n + 1; } }", FamNone, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, b := mainBlock(t, tc.src)
			idx := len(b.Stmts) - 1
			u, ok := Recognize(b, idx, idx)
			if ok != tc.ok {
				t.Fatalf("Recognize(%q) ok = %v, want %v", tc.name, ok, tc.ok)
			}
			if ok && u.Family != tc.want {
				t.Fatalf("Recognize(%q) family = %v, want %v", tc.name, u.Family, tc.want)
			}
		})
	}
}

// TestRecognizeRegion covers multi-statement bodies: local compute
// feeding a single shared update.
func TestRecognizeRegion(t *testing.T) {
	t.Run("split-rmw", func(t *testing.T) {
		_, b := mainBlock(t, `
var acc = 0;
func main() {
    var inc = 3;
    var cur = acc;
    acc = cur + inc;
}`)
		// Site = the read of acc (statement 1, "var cur = acc").
		u, ok := RecognizeAt(b, 1)
		if !ok {
			t.Fatal("split read-modify-write not recognized")
		}
		if u.Lo != 1 || u.Hi != 2 || u.Family != FamAdd {
			t.Fatalf("got region [%d,%d] family %v, want [1,2] add", u.Lo, u.Hi, u.Family)
		}
		// Site = the write (statement 2) resolves to the same region.
		u2, ok := RecognizeAt(b, 2)
		if !ok || u2.Lo != 1 || u2.Hi != 2 {
			t.Fatalf("write-site recognition = %+v ok=%v, want region [1,2]", u2, ok)
		}
	})

	t.Run("local-chain", func(t *testing.T) {
		_, b := mainBlock(t, `
var acc = 0;
func main() {
    var i = 4;
    var inc = i * i;
    var cur = acc;
    acc = cur + inc;
}`)
		u, ok := RecognizeAt(b, 1)
		if !ok || u.Lo != 1 || u.Hi != 3 || u.Family != FamAdd {
			t.Fatalf("got %+v ok=%v, want region [1,3] add", u, ok)
		}
	})

	t.Run("single-preferred-over-region", func(t *testing.T) {
		// The anchor alone is already a recognized update; the region
		// search must not swallow the preceding local compute (this is
		// what keeps old-gate placements byte-identical).
		_, b := mainBlock(t, `
var s = 0;
func main() {
    var t = 2;
    s = s + t;
}`)
		u, ok := RecognizeAt(b, 1)
		if !ok || u.Lo != 1 || u.Hi != 1 {
			t.Fatalf("got %+v ok=%v, want single statement [1,1]", u, ok)
		}
	})

	t.Run("reads-other-shared", func(t *testing.T) {
		// The intermediate reads a global array: wrapping would not make
		// the pair's effect order-independent, so the region is rejected.
		_, b := mainBlock(t, `
var a = make([]int, 4);
var acc = 0;
func main() {
    var i = 1;
    var cur = a[i];
    acc = cur + 1;
}`)
		if u, ok := RecognizeAt(b, 1); ok {
			t.Fatalf("region reading unrelated shared state recognized: %+v", u)
		}
	})

	t.Run("local-used-after-region", func(t *testing.T) {
		// cur is read after the region; isolated wrapping would shrink
		// its scope.
		_, b := mainBlock(t, `
var acc = 0;
var out = 0;
func main() {
    var cur = acc;
    acc = cur + 1;
    out = cur;
}`)
		if u, ok := RecognizeAt(b, 0); ok {
			t.Fatalf("region whose local escapes recognized: %+v", u)
		}
	})

	t.Run("hoisted-minmax", func(t *testing.T) {
		// The if alone is the recognized update; the hoisted array read
		// stays outside (and outside the eventual isolated body).
		_, b := mainBlock(t, `
var a = make([]int, 4);
var lo = 99;
func main() {
    var i = 1;
    var x = a[i];
    if (x < lo) { lo = x; }
}`)
		u, ok := RecognizeAt(b, 2)
		if !ok || u.Lo != 2 || u.Hi != 2 || u.Family != FamMin {
			t.Fatalf("got %+v ok=%v, want single min at [2,2]", u, ok)
		}
	})

	t.Run("call-in-intermediate", func(t *testing.T) {
		_, b := mainBlock(t, `
var acc = 0;
func f() int { return 3; }
func main() {
    var cur = f();
    acc = acc + cur;
}`)
		// The write alone is recognized (cur is a free local); the region
		// including the call is not.
		u, ok := RecognizeAt(b, 1)
		if !ok || u.Lo != 1 || u.Hi != 1 {
			t.Fatalf("got %+v ok=%v, want single [1,1]", u, ok)
		}
		if _, ok := Recognize(b, 0, 1); ok {
			t.Fatal("region containing a call recognized")
		}
	})
}

func TestCompatible(t *testing.T) {
	_, b := mainBlock(t, `
var s = 0;
var p = 1;
func main() {
    var t = 2;
    s = s + t;
    s = s * t;
    p = p * t;
}`)
	add, ok1 := Recognize(b, 1, 1)
	mul, ok2 := Recognize(b, 2, 2)
	other, ok3 := Recognize(b, 3, 3)
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("recognition failed: %v %v %v", ok1, ok2, ok3)
	}
	if Compatible(add, mul) {
		t.Fatal("add and mul of the same location reported compatible")
	}
	if !Compatible(add, add) {
		t.Fatal("same-family same-location reported incompatible")
	}
	if !Compatible(mul, other) {
		t.Fatal("different-location updates reported incompatible")
	}
}
