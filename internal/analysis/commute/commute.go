// Package commute implements the static commutativity analysis behind
// the isolated repair strategy: it recognizes statement regions that
// implement a commutative reduction of one shared location — arithmetic
// updates (`x = x + e`, `x *= e`), min/max reductions
// (`if e < x { x = e }` and variants), and multi-statement bodies where
// straight-line local compute feeds a single shared update — and backs
// every static "commutes" verdict with a semantic order probe against
// the serial interpreter (probe.go).
//
// The package is a leaf: it depends only on the language front end and
// the serial interpreter, so both the static analyzer (the
// reducible-race vet check) and the repair strategy layer can consume
// its verdicts without import cycles.
package commute

import (
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
	"finishrepair/internal/obs"
)

// Verdict metrics: one count per static "commutes" verdict rendered,
// and the semantic-probe outcomes backing them. confirmed + refuted can
// undercount verdicts: probes on regions the serial oracle cannot
// rebuild (calls in opaque terms, non-int locals) are unsupported, and
// the strategy layer treats unsupported like refuted (finish fallback).
var (
	mVerdicts  = obs.Default().Counter("analysis.commute_verdicts")
	mConfirmed = obs.Default().Counter("analysis.commute_confirmed")
	mRefuted   = obs.Default().Counter("analysis.commute_refuted")
)

// Family classifies a commutative update. Two updates of the same
// location commute with each other exactly when they share a family:
// additive updates commute among themselves (integer + and - are one
// abelian group action), multiplications among themselves, and min/max
// with themselves (idempotent, commutative, associative). Across
// families the final value depends on order.
type Family int

// Update families.
const (
	FamNone Family = iota
	FamAdd         // x = x + e, x += e, x -= e, x = x - e
	FamMul         // x = x * e, x *= e
	FamMin         // if e < x { x = e } and variants
	FamMax         // if e > x { x = e } and variants
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamAdd:
		return "add"
	case FamMul:
		return "mul"
	case FamMin:
		return "min"
	case FamMax:
		return "max"
	}
	return "none"
}

// Update is one recognized commutative update region: statements
// [Lo, Hi] of Block implement Target = Target ⊕ e for the family's ⊕,
// where e does not read Target and every intermediate statement only
// computes locals. Target is the shared lvalue being reduced into (an
// *ast.Ident or *ast.IndexExpr).
type Update struct {
	Block  *ast.Block
	Lo, Hi int
	Family Family
	Target ast.Expr
}

// maxRegion bounds how far RecognizeAt extends a multi-statement region
// around an access site; reductions longer than this fall back to the
// always-sound finish repair.
const maxRegion = 8

// RecognizeAt resolves the smallest recognized commutative update
// containing statement idx of block b. It tries the statement alone
// first — so programs the single-statement gate already handled keep
// placements (and repaired output) byte-identical — and only then grows
// a region: forward to the nearest shared-update anchor, backward over
// the local compute feeding it.
func RecognizeAt(b *ast.Block, idx int) (Update, bool) {
	if b == nil || idx < 0 || idx >= len(b.Stmts) {
		return Update{}, false
	}
	if u, ok := Recognize(b, idx, idx); ok {
		return u, true
	}
	// Find the update anchor: the first statement at or after idx that
	// is not straight-line local compute. The region's validator then
	// proves it is a shared update fed only by the locals in between.
	hi := idx
	for hi < len(b.Stmts) && hi-idx < maxRegion && isLocalCompute(b.Stmts[hi]) {
		hi++
	}
	if hi >= len(b.Stmts) || hi-idx >= maxRegion {
		return Update{}, false
	}
	lo := idx
	if lo > hi {
		lo = hi
	}
	for ; lo >= 0 && hi-lo < maxRegion; lo-- {
		if lo == hi {
			continue // single statement already failed above
		}
		if u, ok := Recognize(b, lo, hi); ok {
			return u, true
		}
	}
	return Update{}, false
}

// Recognize classifies statements [lo, hi] of b as one commutative
// update region. The final statement must be a recognized shared
// update; every earlier statement must be straight-line local compute
// (var declarations and assignments to locals, no calls), which the
// validator inlines symbolically so that split read-modify-writes like
//
//	var cur = acc;
//	acc = cur + inc;
//
// normalize to acc = acc + inc. Locals declared inside the region must
// not be used after it (wrapping the region in isolated would otherwise
// shrink their scope).
func Recognize(b *ast.Block, lo, hi int) (Update, bool) {
	if b == nil || lo < 0 || hi >= len(b.Stmts) || lo > hi {
		return Update{}, false
	}
	env := symEnv{}
	bound := map[*sem.Symbol]bool{}
	for i := lo; i < hi; i++ {
		if !env.absorb(b.Stmts[i], bound) {
			return Update{}, false
		}
	}
	fam, target, ok := recognizeFinal(b.Stmts[hi], env)
	if !ok {
		return Update{}, false
	}
	// Intermediate statements may read only locals and the target
	// itself; reading unrelated shared state inside the region would
	// make the wrapped body's result depend on concurrent writers the
	// probe never sees.
	base := baseSym(target)
	for i := lo; i < hi; i++ {
		if readsSharedExcept(b.Stmts[i], base) {
			return Update{}, false
		}
	}
	if usedAfter(b, hi, bound) {
		return Update{}, false
	}
	mVerdicts.Inc()
	return Update{Block: b, Lo: lo, Hi: hi, Family: fam, Target: target}, true
}

// Compatible reports whether two recognized updates may be co-isolated:
// updates of the same location must share a family (mixed families on
// one location do not commute); updates of provably different locations
// never conflict, so their relative order is irrelevant.
func Compatible(a, b Update) bool {
	if baseSym(a.Target) != baseSym(b.Target) {
		return true
	}
	return a.Family == b.Family
}

// Overlaps reports whether the shared state the two regions touch may
// intersect (same target base symbol, or either region reads the
// other's target): the pairs whose execution order can matter and that
// the semantic probe therefore must check.
func Overlaps(a, b Update) bool {
	if baseSym(a.Target) == baseSym(b.Target) {
		return true
	}
	return regionReadsBase(a, baseSym(b.Target)) || regionReadsBase(b, baseSym(a.Target))
}

// ---------------------------------------------------------------------
// Symbolic inlining of straight-line locals.

// symEnv maps a local symbol to the expression tree holding its current
// symbolic value (already substituted).
type symEnv map[*sem.Symbol]ast.Expr

// absorb folds one straight-line statement into the environment; it
// returns false when the statement is not local compute.
func (env symEnv) absorb(s ast.Stmt, bound map[*sem.Symbol]bool) bool {
	if hasCall(s) {
		return false
	}
	switch st := s.(type) {
	case *ast.VarDeclStmt:
		sym, ok := st.Sym.(*sem.Symbol)
		if !ok || sym.Kind == sem.GlobalVar {
			return false
		}
		if st.Init != nil {
			env[sym] = env.subst(st.Init)
		} else {
			if pt, ok := st.Type.(*ast.PrimType); !ok || pt.Kind != ast.Int {
				return false
			}
			env[sym] = &ast.IntLit{Value: 0}
		}
		bound[sym] = true
		return true
	case *ast.AssignStmt:
		id, ok := st.LHS.(*ast.Ident)
		if !ok {
			return false
		}
		sym, ok := id.Sym.(*sem.Symbol)
		if !ok || sym.Kind == sem.GlobalVar {
			return false
		}
		rhs := env.subst(st.RHS)
		if op, compound := expandCompound(st.Op); compound {
			rhs = &ast.BinaryExpr{X: env.current(sym), Op: op, Y: rhs}
		}
		env[sym] = rhs
		return true
	}
	return false
}

// current returns the symbol's symbolic value, or a fresh reference
// when the local was defined before the region (a free input).
func (env symEnv) current(sym *sem.Symbol) ast.Expr {
	if e, ok := env[sym]; ok {
		return e
	}
	return &ast.Ident{Name: sym.Name, Sym: sym}
}

// subst rewrites e with every environment-bound local replaced by its
// symbolic value. The result shares no mutable state with the input.
func (env symEnv) subst(e ast.Expr) ast.Expr {
	switch ex := e.(type) {
	case *ast.Ident:
		if sym, ok := ex.Sym.(*sem.Symbol); ok {
			if v, ok := env[sym]; ok {
				return v
			}
		}
		return &ast.Ident{Name: ex.Name, NamePos: ex.NamePos, Sym: ex.Sym}
	case *ast.BinaryExpr:
		return &ast.BinaryExpr{X: env.subst(ex.X), Op: ex.Op, OpPos: ex.OpPos, Y: env.subst(ex.Y)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{X: env.subst(ex.X), Op: ex.Op, OpPos: ex.OpPos}
	case *ast.IndexExpr:
		return &ast.IndexExpr{X: env.subst(ex.X), Index: env.subst(ex.Index), LbPos: ex.LbPos}
	case *ast.CallExpr:
		args := make([]ast.Expr, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = env.subst(a)
		}
		return &ast.CallExpr{Fun: ex.Fun, FunPos: ex.FunPos, Args: args, Target: ex.Target}
	}
	return e // literals and make() are immutable here
}

// expandCompound maps a compound assignment operator to its binary op.
func expandCompound(op token.Kind) (token.Kind, bool) {
	switch op {
	case token.ADDASSIGN:
		return token.ADD, true
	case token.SUBASSIGN:
		return token.SUB, true
	case token.MULASSIGN:
		return token.MUL, true
	case token.QUOASSIGN:
		return token.QUO, true
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Final-statement recognition.

// recognizeFinal classifies the region's anchor statement, after
// symbolic substitution of the locals computed before it.
func recognizeFinal(s ast.Stmt, env symEnv) (Family, ast.Expr, bool) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return recognizeAssign(st, env)
	case *ast.IfStmt:
		return recognizeMinMax(st, env)
	}
	return FamNone, nil, false
}

// recognizeAssign handles the arithmetic families: compound updates
// (`x += e`, `x -= e`, `x *= e`) and the expanded assignment forms.
// The expanded subtraction `x = x - e` is deliberately in the additive
// family: integer - is addition of the negation, so any interleaving of
// + and - updates yields the same final value.
func recognizeAssign(st *ast.AssignStmt, env symEnv) (Family, ast.Expr, bool) {
	target := st.LHS
	if !intLValue(target) {
		return FamNone, nil, false
	}
	rhs := env.subst(st.RHS)
	if op, compound := expandCompound(st.Op); compound {
		if op == token.QUO {
			return FamNone, nil, false // integer division does not commute
		}
		rhs = &ast.BinaryExpr{X: cloneLValue(target), Op: op, Y: rhs}
	} else if st.Op != token.ASSIGN {
		return FamNone, nil, false
	}
	fam, ok := chainFamily(rhs, target, FamNone)
	if !ok {
		return FamNone, nil, false
	}
	return fam, target, true
}

// chainFamily walks the substituted RHS looking for exactly one
// occurrence of the target lvalue, reachable through a uniform operator
// family: any operand of + (and the left operand of -) for the additive
// family, any operand of * for the multiplicative one. Every opaque
// branch on the way must not read the target's base symbol.
func chainFamily(e ast.Expr, target ast.Expr, want Family) (Family, bool) {
	if sameLValue(e, target) {
		// Bare `x = x` — an identity write, not an update; require at
		// least one operator above (want set by the recursion).
		if want == FamNone {
			return FamNone, false
		}
		return want, true
	}
	be, ok := e.(*ast.BinaryExpr)
	if !ok {
		return FamNone, false
	}
	var fam Family
	switch be.Op {
	case token.ADD, token.SUB:
		fam = FamAdd
	case token.MUL:
		fam = FamMul
	default:
		return FamNone, false
	}
	if want != FamNone && want != fam {
		return FamNone, false
	}
	inX := touchesLValue(be.X, target)
	inY := touchesLValue(be.Y, target)
	switch {
	case inX && !inY:
		return chainFamily(be.X, target, fam)
	case inY && !inX:
		if be.Op == token.SUB {
			return FamNone, false // x = e - x reverses the operands
		}
		return chainFamily(be.Y, target, fam)
	}
	return FamNone, false // both or neither branch reads the target
}

// recognizeMinMax handles `if e REL x { x = e }` and its operand-order
// variants, which implement x = min(x, e) or x = max(x, e).
func recognizeMinMax(st *ast.IfStmt, env symEnv) (Family, ast.Expr, bool) {
	if st.Else != nil || st.Then == nil || len(st.Then.Stmts) != 1 {
		return FamNone, nil, false
	}
	asg, ok := st.Then.Stmts[0].(*ast.AssignStmt)
	if !ok || asg.Op != token.ASSIGN {
		return FamNone, nil, false
	}
	target := asg.LHS
	if !intLValue(target) {
		return FamNone, nil, false
	}
	cond, ok := st.Cond.(*ast.BinaryExpr)
	if !ok {
		return FamNone, nil, false
	}
	var rel token.Kind
	var value ast.Expr // the compared (and assigned) candidate value
	switch {
	case sameLValue(cond.Y, target):
		rel, value = cond.Op, cond.X // e REL x
	case sameLValue(cond.X, target):
		// x REL e is e REL' x with the relation flipped.
		value = cond.Y
		switch cond.Op {
		case token.LSS:
			rel = token.GTR
		case token.LEQ:
			rel = token.GEQ
		case token.GTR:
			rel = token.LSS
		case token.GEQ:
			rel = token.LEQ
		default:
			return FamNone, nil, false
		}
	default:
		return FamNone, nil, false
	}
	var fam Family
	switch rel {
	case token.LSS, token.LEQ:
		fam = FamMin // new value replaces x when smaller
	case token.GTR, token.GEQ:
		fam = FamMax
	default:
		return FamNone, nil, false
	}
	// The assigned value must be the compared value (after inlining the
	// locals), and must not read the target.
	if !exprEqual(env.subst(value), env.subst(asg.RHS)) {
		return FamNone, nil, false
	}
	if base := baseSym(target); base != nil {
		if readsBase(env.subst(asg.RHS), base) || readsBase(env.subst(value), base) {
			return FamNone, nil, false
		}
	}
	if it, ok := intType(target); !ok || !it {
		return FamNone, nil, false
	}
	return fam, target, true
}

// ---------------------------------------------------------------------
// Shape predicates.

// isLocalCompute reports whether s only computes locals: a local var
// declaration or an assignment to a local, with no calls.
func isLocalCompute(s ast.Stmt) bool {
	if hasCall(s) {
		return false
	}
	switch st := s.(type) {
	case *ast.VarDeclStmt:
		sym, ok := st.Sym.(*sem.Symbol)
		return ok && sym.Kind != sem.GlobalVar
	case *ast.AssignStmt:
		if id, ok := st.LHS.(*ast.Ident); ok {
			sym, ok := id.Sym.(*sem.Symbol)
			return ok && sym.Kind != sem.GlobalVar
		}
	}
	return false
}

// intLValue reports whether the assignment target is an int-typed
// variable or an element of an int array — the only target shapes the
// isolated repair accepts (float reduction reorders rounding; bool and
// arrays-of-arrays have no commutative update families here).
func intLValue(lhs ast.Expr) bool {
	it, ok := intType(lhs)
	return ok && it
}

func intType(lhs ast.Expr) (isInt bool, ok bool) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if sym, k := x.Sym.(*sem.Symbol); k {
			if pt, k := sym.Type.(*ast.PrimType); k {
				return pt.Kind == ast.Int, true
			}
		}
	case *ast.IndexExpr:
		if id, k := x.X.(*ast.Ident); k {
			if sym, k := id.Sym.(*sem.Symbol); k {
				if at, k := sym.Type.(*ast.ArrayType); k {
					if pt, k := at.Elem.(*ast.PrimType); k {
						return pt.Kind == ast.Int, true
					}
				}
			}
		}
	}
	return false, false
}

// sameLValue reports whether two expressions certainly denote the same
// location: identical symbols, or index expressions over the same array
// symbol with syntactically identical simple indices.
func sameLValue(a, b ast.Expr) bool {
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		return ok && ax.Sym != nil && ax.Sym == bx.Sym
	case *ast.IndexExpr:
		bx, ok := b.(*ast.IndexExpr)
		if !ok || !sameLValue(ax.X, bx.X) {
			return false
		}
		switch ai := ax.Index.(type) {
		case *ast.Ident:
			bi, ok := bx.Index.(*ast.Ident)
			return ok && ai.Sym != nil && ai.Sym == bi.Sym
		case *ast.IntLit:
			bi, ok := bx.Index.(*ast.IntLit)
			return ok && ai.Value == bi.Value
		}
	}
	return false
}

// exprEqual is structural expression equality (symbols by identity,
// literals by value).
func exprEqual(a, b ast.Expr) bool {
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		return ok && ax.Sym != nil && ax.Sym == bx.Sym
	case *ast.IntLit:
		bx, ok := b.(*ast.IntLit)
		return ok && ax.Value == bx.Value
	case *ast.BoolLit:
		bx, ok := b.(*ast.BoolLit)
		return ok && ax.Value == bx.Value
	case *ast.BinaryExpr:
		bx, ok := b.(*ast.BinaryExpr)
		return ok && ax.Op == bx.Op && exprEqual(ax.X, bx.X) && exprEqual(ax.Y, bx.Y)
	case *ast.UnaryExpr:
		bx, ok := b.(*ast.UnaryExpr)
		return ok && ax.Op == bx.Op && exprEqual(ax.X, bx.X)
	case *ast.IndexExpr:
		bx, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(ax.X, bx.X) && exprEqual(ax.Index, bx.Index)
	}
	return false
}

// baseSym returns the variable symbol an lvalue is rooted at.
func baseSym(lhs ast.Expr) *sem.Symbol {
	switch x := lhs.(type) {
	case *ast.Ident:
		if sym, ok := x.Sym.(*sem.Symbol); ok {
			return sym
		}
	case *ast.IndexExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if sym, ok := id.Sym.(*sem.Symbol); ok {
				return sym
			}
		}
	}
	return nil
}

// touchesLValue reports whether e contains any occurrence of the
// target's base symbol (conservative: a[i] vs a[j] both count).
func touchesLValue(e ast.Expr, target ast.Expr) bool {
	base := baseSym(target)
	if base == nil {
		return true
	}
	return readsBase(e, base)
}

// readsBase reports whether e mentions sym anywhere.
func readsBase(e ast.Expr, sym *sem.Symbol) bool {
	found := false
	ast.InspectExpr(e, func(x ast.Expr) {
		if id, ok := x.(*ast.Ident); ok && id.Sym == sym {
			found = true
		}
	})
	return found
}

// cloneLValue shallow-copies an lvalue for use as an expression leaf.
func cloneLValue(lhs ast.Expr) ast.Expr {
	switch x := lhs.(type) {
	case *ast.Ident:
		return &ast.Ident{Name: x.Name, NamePos: x.NamePos, Sym: x.Sym}
	case *ast.IndexExpr:
		return &ast.IndexExpr{X: x.X, Index: x.Index, LbPos: x.LbPos}
	}
	return lhs
}

// hasCall reports whether the statement's own expressions contain any
// call.
func hasCall(s ast.Stmt) bool {
	found := false
	for _, e := range ast.StmtExprs(s) {
		ast.InspectExpr(e, func(x ast.Expr) {
			if _, ok := x.(*ast.CallExpr); ok {
				found = true
			}
		})
	}
	return found
}

// readsSharedExcept reports whether the statement's expressions mention
// any global or array-typed symbol other than allowed (nil permits no
// shared symbol at all).
func readsSharedExcept(s ast.Stmt, allowed *sem.Symbol) bool {
	found := false
	for _, e := range ast.StmtExprs(s) {
		ast.InspectExpr(e, func(x ast.Expr) {
			id, ok := x.(*ast.Ident)
			if !ok {
				return
			}
			sym, ok := id.Sym.(*sem.Symbol)
			if !ok || sym == allowed {
				return
			}
			if sym.Kind == sem.GlobalVar {
				found = true
				return
			}
			if _, arr := sym.Type.(*ast.ArrayType); arr {
				found = true // local array vars may alias shared storage
			}
		})
	}
	return found
}

// regionReadsBase reports whether any statement of the region mentions
// sym.
func regionReadsBase(u Update, sym *sem.Symbol) bool {
	if sym == nil {
		return true
	}
	for i := u.Lo; i <= u.Hi && i < len(u.Block.Stmts); i++ {
		for _, e := range ast.StmtExprs(u.Block.Stmts[i]) {
			if readsBase(e, sym) {
				return true
			}
		}
	}
	return false
}

// usedAfter reports whether any of the bound locals is referenced by a
// later statement of the block (including nested blocks): wrapping the
// region in isolated would shrink their scope and break those uses.
func usedAfter(b *ast.Block, hi int, bound map[*sem.Symbol]bool) bool {
	if len(bound) == 0 {
		return false
	}
	found := false
	for i := hi + 1; i < len(b.Stmts); i++ {
		ast.InspectStmts(b.Stmts[i], func(s ast.Stmt) {
			for _, e := range ast.StmtExprs(s) {
				ast.InspectExpr(e, func(x ast.Expr) {
					if id, ok := x.(*ast.Ident); ok {
						if sym, ok := id.Sym.(*sem.Symbol); ok && bound[sym] {
							found = true
						}
					}
				})
			}
		})
	}
	return found
}
