package analysis

import (
	"strings"
	"testing"

	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
)

// analyze parses, checks, and analyzes an HJ-lite source.
func analyze(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return Analyze(info, nil)
}

// stmtAt returns the ID of the first indexed statement on the given
// source line.
func stmtAt(t *testing.T, r *Result, line int) int {
	t.Helper()
	for id, rec := range r.stmts {
		if rec.stmt.Pos().Line == line {
			return id
		}
	}
	t.Fatalf("no statement on line %d", line)
	return -1
}

func TestMHPAsyncVsContinuation(t *testing.T) {
	src := `var x = 0;
func main() {
  async { x = 1; }
  x = 2;
  finish { }
  x = 3;
}`
	r := analyze(t, src)
	asyncWrite := stmtAt(t, r, 3) + 1 // the x=1 inside the async body
	serial := stmtAt(t, r, 4)
	after := stmtAt(t, r, 6)
	if !r.mhp[asyncWrite].has(serial) {
		t.Errorf("async body write and following serial write must be MHP")
	}
	// finish { } does NOT join the earlier async (it only joins tasks
	// spawned inside it), so x = 3 is still parallel with the async.
	if !r.mhp[asyncWrite].has(after) {
		t.Errorf("empty finish must not serialize an async spawned before it")
	}
	if !r.MayHappenInParallel(r.stmts[asyncWrite].stmt, r.stmts[serial].stmt) {
		t.Errorf("MayHappenInParallel disagrees with mhp bitset")
	}
}

func TestMHPFinishJoins(t *testing.T) {
	src := `var x = 0;
func main() {
  finish {
    async { x = 1; }
  }
  x = 2;
}`
	r := analyze(t, src)
	asyncWrite := stmtAt(t, r, 4) + 1
	after := stmtAt(t, r, 6)
	if r.mhp[asyncWrite].has(after) {
		t.Errorf("write after finish must not be MHP with the joined async")
	}
	if len(r.Candidates()) != 0 {
		t.Errorf("fully synchronized program has candidates: %v", r.Candidates())
	}
}

func TestMHPLoopSelfParallel(t *testing.T) {
	src := `var a = make([]int, 8);
var x = 0;
func main() {
  for (var i = 0; i < 8; i = i + 1) {
    async { x = x + 1; }
  }
}`
	r := analyze(t, src)
	w := stmtAt(t, r, 5) + 1 // x = x + 1 inside the async
	if !r.mhp[w].has(w) {
		t.Errorf("async body in a loop must be MHP with itself")
	}
	found := false
	for _, c := range r.Candidates() {
		if c.A == w && c.B == w && c.Kind == "W/W" {
			found = true
		}
	}
	if !found {
		t.Errorf("self-race candidate on x missing; candidates: %v", r.Candidates())
	}
}

func TestMHPTwoSerialAsyncs(t *testing.T) {
	src := `var x = 0;
func main() {
  async { x = 1; }
  async { x = 2; }
}`
	r := analyze(t, src)
	w1 := stmtAt(t, r, 3) + 1
	w2 := stmtAt(t, r, 4) + 1
	if !r.mhp[w1].has(w2) {
		t.Errorf("two sibling asyncs must be MHP")
	}
	wantPair := false
	for _, c := range r.Candidates() {
		if (c.A == w1 && c.B == w2) || (c.A == w2 && c.B == w1) {
			wantPair = true
			if c.Kind != "W/W" {
				t.Errorf("kind = %s, want W/W", c.Kind)
			}
			if c.Loc != "x" {
				t.Errorf("loc = %s, want x", c.Loc)
			}
		}
	}
	if !wantPair {
		t.Errorf("missing candidate for sibling async writes; got %v", r.Candidates())
	}
}

func TestMHPThroughCalls(t *testing.T) {
	src := `var x = 0;
func spawn() {
  async { x = x + 1; }
}
func main() {
  spawn();
  x = 5;
}`
	r := analyze(t, src)
	w := stmtAt(t, r, 3) + 1 // x = x + 1 inside spawn's async
	serial := stmtAt(t, r, 7)
	if !r.mhp[w].has(serial) {
		t.Errorf("async escaping a callee must be MHP with the caller's continuation")
	}
}

func TestEffectsDisjointArrays(t *testing.T) {
	src := `var a = make([]int, 4);
var b = make([]int, 4);
func main() {
  async { a[0] = 1; }
  b[0] = 2;
}`
	r := analyze(t, src)
	for _, c := range r.Candidates() {
		if strings.Contains(c.Loc, "[]") {
			t.Errorf("disjoint makes must be separate classes; candidate %v", c)
		}
	}
}

func TestEffectsAliasThroughCall(t *testing.T) {
	src := `var a = make([]int, 4);
func work(p []int) {
  async { p[0] = 1; }
}
func main() {
  work(a);
  a[0] = 2;
}`
	r := analyze(t, src)
	found := false
	for _, c := range r.Candidates() {
		if c.Loc == "a[]" && c.Kind == "W/W" {
			found = true
		}
	}
	if !found {
		t.Errorf("param must alias argument's class; candidates: %v", r.Candidates())
	}
}

func TestEffectsLocalsIgnored(t *testing.T) {
	src := `func main() {
  var y = 0;
  async { y = 1; }
  y = 2;
  println(y);
}`
	r := analyze(t, src)
	if n := len(r.Candidates()); n != 0 {
		t.Errorf("locals are task-private (by-value capture); got %d candidates: %v", n, r.Candidates())
	}
}

func TestMarkCoveredAndUncovered(t *testing.T) {
	src := `var x = 0;
func main() {
  async { x = 1; }
  async { x = 2; }
}`
	r := analyze(t, src)
	if len(r.Candidates()) == 0 {
		t.Fatal("expected candidates")
	}
	if got := len(r.UncoveredCandidates()); got != len(r.Candidates()) {
		t.Fatalf("before marking, all candidates uncovered; got %d of %d", got, len(r.Candidates()))
	}
	// Unknown nodes are conservative: Covers says yes, MarkCovered
	// marks nothing.
	if !r.Covers(nil, nil) {
		t.Error("unknown nodes must be conservatively covered")
	}
	r.MarkCovered(nil, nil)
	if got := len(r.UncoveredCandidates()); got != len(r.Candidates()) {
		t.Errorf("marking unknown nodes must not cover candidates")
	}
	if !r.MayRunInParallel(nil, nil) {
		t.Error("unknown nodes must be conservatively parallel")
	}
}

func TestRunChecksUnknownName(t *testing.T) {
	r := analyze(t, `func main() { }`)
	if _, err := RunChecks(r, []string{"no-such-check"}); err == nil {
		t.Error("unknown check name must error")
	}
	if ds, err := RunChecks(r, nil); err != nil || len(ds) != 0 {
		t.Errorf("empty main: diags=%v err=%v", ds, err)
	}
}

func TestCheckRedundantFinish(t *testing.T) {
	src := `var x = 0;
func main() {
  finish { x = 1; }
  finish { async { x = 2; } }
}`
	r := analyze(t, src)
	ds, err := RunChecks(r, []string{"redundant-finish"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Pos.Line != 3 {
		t.Errorf("want one redundant-finish on line 3, got %v", ds)
	}
}

func TestCheckDeadStmt(t *testing.T) {
	src := `func f() int {
  return 1;
  return 2;
}
func main() {
  if (false) {
    println(0);
  }
  println(f());
}`
	r := analyze(t, src)
	ds, err := RunChecks(r, []string{"dead-stmt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("want 2 dead-stmt diags (line 3 unreachable, line 7 dead arm), got %v", ds)
	}
	if ds[0].Pos.Line != 3 || ds[1].Pos.Line != 7 {
		t.Errorf("positions: got %v", ds)
	}
}

func TestCheckUnscopedAsyncLoop(t *testing.T) {
	src := `var x = 0;
func main() {
  for (var i = 0; i < 4; i = i + 1) {
    async { x = x + 1; }
  }
  finish {
    for (var j = 0; j < 4; j = j + 1) {
      async { x = x + 1; }
    }
  }
}`
	r := analyze(t, src)
	ds, err := RunChecks(r, []string{"unscoped-async-loop"})
	if err != nil {
		t.Fatal(err)
	}
	// Only the first loop's async is unscoped... but note the finish on
	// line 6 does not join the FIRST loop's asyncs, while the second
	// loop is properly scoped. Still, the finish-wrapped async races
	// with the first loop's instances — that is static-race's job, not
	// this check's.
	if len(ds) != 1 || ds[0].Pos.Line != 4 {
		t.Errorf("want one unscoped-async-loop on line 4, got %v", ds)
	}
}

func TestCheckWriteAfterAsync(t *testing.T) {
	src := `var x = 0;
func main() {
  async { x = 1; }
  x = 2;
}`
	r := analyze(t, src)
	ds, err := RunChecks(r, []string{"write-after-async"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Pos.Line != 4 {
		t.Errorf("want one write-after-async on line 4, got %v", ds)
	}
	if len(ds) == 1 && len(ds[0].Related) != 1 {
		t.Errorf("want related position for the conflicting async access")
	}
}

func TestDiagnosticRenderers(t *testing.T) {
	src := `var x = 0;
func main() {
  async { x = 1; }
  x = 2;
}`
	r := analyze(t, src)
	ds, err := RunChecks(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("expected diagnostics")
	}
	var text, jsonOut strings.Builder
	if err := WriteText(&text, "prog.hj", ds); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "prog.hj:") || !strings.Contains(text.String(), "warning: [") {
		t.Errorf("text format:\n%s", text.String())
	}
	if err := WriteJSON(&jsonOut, "prog.hj", ds); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut.String(), `"check"`) || !strings.Contains(jsonOut.String(), `"file": "prog.hj"`) {
		t.Errorf("json format:\n%s", jsonOut.String())
	}
}

func TestAllowlist(t *testing.T) {
	al, err := ParseAllowlist(strings.NewReader(`# comment
examples/hj/foo.hj:3:3 static-race
`))
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnostic{Pos: pos(3, 3), Check: "static-race"}
	if !al.Match("examples/hj/foo.hj", d) {
		t.Error("exact path must match")
	}
	if !al.Match("/abs/path/examples/hj/foo.hj", d) {
		t.Error("suffix path must match")
	}
	if al.Match("examples/hj/foo.hj", Diagnostic{Pos: pos(3, 4), Check: "static-race"}) {
		t.Error("different position must not match")
	}
	if _, err := ParseAllowlist(strings.NewReader("garbage line here and more\n")); err == nil {
		t.Error("malformed line must error")
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	src := `var a = make([]int, 8);
var sum = 0;
func add(p []int, i int) { sum = sum + p[i]; }
func main() {
  finish {
    for (var i = 0; i < 8; i = i + 1) {
      async { add(a, i); }
    }
  }
  println(sum);
}`
	render := func() string {
		r := analyze(t, src)
		ds, err := RunChecks(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := WriteText(&sb, "p.hj", ds); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("analysis output not deterministic:\n%s\n--- vs ---\n%s", a, b)
	}
}

func pos(line, col int) token.Pos { return token.Pos{Line: line, Col: col} }
