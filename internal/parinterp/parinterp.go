// Package parinterp executes HJ-lite programs with real parallelism:
// async statements become taskpar tasks (goroutines or work-stealing
// pool workers) and finish statements become taskpar finish scopes.
//
// It implements the same semantics as the canonical sequential
// interpreter (async bodies capture locals by value; arrays and globals
// are shared). It is intended for DATA-RACE-FREE programs — the
// evaluation runs it only on expert-written or tool-repaired programs;
// running a racy program yields the corresponding Go-level races.
//
// A second execution mode serves the opposite purpose: with
// Options.Controller set, the run is fully serialized under an external
// scheduler — one logical task at a time, a named yield point before
// every shared-memory access, spawn, and print — so an adversarial
// controller (internal/adversary) can steer racy programs into chosen
// interleavings deterministically and without Go-level races.
package parinterp

import (
	"bytes"
	"math"
	"sync"

	"finishrepair/internal/faults"
	"finishrepair/internal/guard"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
	"finishrepair/taskpar"
)

// Options configures a parallel run.
type Options struct {
	// Executor runs the tasks; nil means a fresh goroutine executor.
	// Ignored in controlled mode.
	Executor *taskpar.Executor
	// Meter charges coarse work units (loop iterations, calls, task
	// spawns) against the shared pipeline budget and aborts the run with
	// a typed error on cancellation, deadline, or op exhaustion. Nil
	// means unlimited. Charging is deliberately coarse — the parallel
	// run's cost model feeds no analysis, so per-expression atomics would
	// be pure overhead.
	Meter *guard.Meter
	// Controller, when set, switches the run into controlled mode: tasks
	// become token-gated goroutines, every shared access yields to the
	// controller first, and array locations are numbered exactly like the
	// sequential detector's (globals at 1+slot, arrays from
	// 1+GlobalCount at allocation). See the Controller contract.
	Controller Controller
}

// Result of a parallel run.
type Result struct {
	Output string
	// State is the rendered final global state (controlled runs only;
	// see interp.RenderState). Schedule divergence is judged on Output
	// and State together.
	State string
}

// tctx is the per-task execution context threaded through the
// interpreter: the taskpar context in free-running mode, or the
// controller task id plus the innermost statement position in
// controlled mode.
type tctx struct {
	tp       *taskpar.Ctx // nil in controlled mode
	id       int          // controller task id (controlled mode)
	pos      token.Pos    // innermost statement position (controlled mode)
	isoDepth int          // isolated-statement nesting depth (this task)
}

// Run executes the checked program in parallel.
func Run(info *sem.Info, opts Options) (res *Result, err error) {
	pi := &par{
		info:    info,
		globals: make([]interp.Value, info.GlobalCount),
		meter:   opts.Meter,
		ctl:     opts.Controller,
	}
	if pi.ctl != nil {
		return pi.runControlled(info, opts)
	}
	pi.classMu = make([]sync.Mutex, maxLockClass(info.Prog))
	exec := opts.Executor
	if exec == nil {
		exec = taskpar.NewGoroutineExecutor()
	}

	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(guard.Bail); ok {
				res, err = nil, b.Err
				return
			}
			if re, ok := r.(*interp.RuntimeError); ok {
				res, err = nil, re
				return
			}
			panic(r)
		}
	}()

	opts.Meter.SetPhase("parallel-run")
	// Globals initialize sequentially before main (no tasks yet).
	exec.Finish(func(c *taskpar.Ctx) {
		// Injected inside the root finish so an armed panic exercises the
		// executor's propagation path, not just this function's recover.
		if ferr := faults.Inject(faults.ParallelRun); ferr != nil {
			panic(guard.Bail{Err: ferr})
		}
		tc := &tctx{tp: c}
		for _, g := range info.Prog.Globals {
			sym := g.Sym.(*sem.Symbol)
			if g.Init != nil {
				pi.globals[sym.Slot] = pi.eval(tc, nil, g.Init)
			} else {
				pi.globals[sym.Slot] = zeroValue(g.Type)
			}
		}
		main := info.Prog.Func("main")
		pi.call(tc, main, nil)
	})
	return &Result{Output: pi.out.String()}, nil
}

type par struct {
	info    *sem.Info
	globals []interp.Value
	meter   *guard.Meter

	outMu sync.Mutex
	out   bytes.Buffer

	// isoMu is the global isolated lock (free-running mode). A class-0
	// isolated body write-locks it, excluding every other isolated body.
	// A class-c body (c > 0) read-locks isoMu — so any number of
	// nonzero-class bodies run concurrently with each other while class 0
	// is excluded — and then locks classMu[c-1] to exclude its own class.
	// Controlled mode needs no locks — the scheduler token plus yield
	// suppression inside isolated bodies already makes them atomic.
	isoMu   sync.RWMutex
	classMu []sync.Mutex

	// Controlled-mode state: the external scheduler, the next array
	// location (allocation is serialized by the token, so no lock), the
	// spawned-task join group, and the first failure.
	ctl      Controller
	nextLoc  uint64
	wg       sync.WaitGroup
	errMu    sync.Mutex
	firstErr error
}

// tick charges one coarse work unit; it panics a guard.Bail carrying the
// meter's typed error when the budget trips or the run is canceled. The
// Bail unwinds the current task, propagates through the executor's
// finish-scope panic channel, and is converted back to an error at Run.
func (p *par) tick() {
	if p.meter == nil {
		return
	}
	if err := p.meter.AddOps(1); err != nil {
		panic(guard.Bail{Err: err})
	}
}

type frame struct {
	slots []interp.Value
}

type ctrl struct {
	returned bool
	val      interp.Value
}

func (p *par) call(c *tctx, fn *ast.FuncDecl, args []interp.Value) interp.Value {
	p.tick()
	f := &frame{slots: make([]interp.Value, p.info.FrameSize[fn])}
	copy(f.slots, args)
	r := p.execBlock(c, f, fn.Body)
	if r.returned {
		return r.val
	}
	return interp.VoidV()
}

func (p *par) execBlock(c *tctx, f *frame, b *ast.Block) ctrl {
	for _, s := range b.Stmts {
		if r := p.execStmt(c, f, s); r.returned {
			return r
		}
	}
	return ctrl{}
}

func (p *par) execStmt(c *tctx, f *frame, s ast.Stmt) ctrl {
	if p.ctl != nil {
		c.pos = s.Pos()
	}
	switch st := s.(type) {
	case *ast.VarDeclStmt:
		sym := st.Sym.(*sem.Symbol)
		if st.Init != nil {
			f.slots[sym.Slot] = p.eval(c, f, st.Init)
		} else {
			f.slots[sym.Slot] = zeroValue(st.Type)
		}
		return ctrl{}
	case *ast.AssignStmt:
		p.execAssign(c, f, st)
		return ctrl{}
	case *ast.ExprStmt:
		p.eval(c, f, st.X)
		return ctrl{}
	case *ast.ReturnStmt:
		var v interp.Value
		if st.Value != nil {
			v = p.eval(c, f, st.Value)
		}
		return ctrl{returned: true, val: v}
	case *ast.IfStmt:
		if p.eval(c, f, st.Cond).Bool() {
			return p.execBlock(c, f, st.Then)
		}
		if st.Else != nil {
			return p.execBlock(c, f, st.Else)
		}
		return ctrl{}
	case *ast.WhileStmt:
		for p.eval(c, f, st.Cond).Bool() {
			p.tick()
			if r := p.execBlock(c, f, st.Body); r.returned {
				return r
			}
			if p.ctl != nil {
				c.pos = s.Pos()
			}
		}
		return ctrl{}
	case *ast.ForStmt:
		if st.Init != nil {
			if r := p.execStmt(c, f, st.Init); r.returned {
				return r
			}
		}
		for st.Cond == nil || p.eval(c, f, st.Cond).Bool() {
			p.tick()
			if r := p.execBlock(c, f, st.Body); r.returned {
				return r
			}
			if st.Post != nil {
				if r := p.execStmt(c, f, st.Post); r.returned {
					return r
				}
			}
			if p.ctl != nil {
				c.pos = s.Pos()
			}
		}
		return ctrl{}
	case *ast.AsyncStmt:
		if c.isoDepth > 0 {
			panic(&interp.RuntimeError{Msg: "async not allowed inside isolated"})
		}
		p.tick()
		// By-value snapshot of the parent frame (final-variable capture).
		child := &frame{slots: make([]interp.Value, len(f.slots))}
		copy(child.slots, f.slots)
		if p.ctl != nil {
			id := p.ctl.Register(c.id)
			p.spawnTask(id, func(cc *tctx) {
				p.execBlock(cc, child, st.Body)
			})
			p.yield(c, OpSpawn, 0)
			return ctrl{}
		}
		c.tp.Async(func(cc *taskpar.Ctx) {
			p.execBlock(&tctx{tp: cc}, child, st.Body)
		})
		return ctrl{}
	case *ast.FinishStmt:
		if c.isoDepth > 0 {
			panic(&interp.RuntimeError{Msg: "finish not allowed inside isolated"})
		}
		if p.ctl != nil {
			scope := p.ctl.FinishEnter(c.id)
			r := p.execBlock(c, f, st.Body)
			p.ctl.FinishWait(c.id, scope)
			return r
		}
		var r ctrl
		c.tp.Finish(func(cc *taskpar.Ctx) {
			r = p.execBlock(&tctx{tp: cc}, f, st.Body)
		})
		return r
	case *ast.IsolatedStmt:
		return p.execIsolated(c, f, st)
	case *ast.BlockStmt:
		return p.execBlock(c, f, st.Body)
	}
	panic(&interp.RuntimeError{Msg: "unknown statement"})
}

// execIsolated runs st.Body under its lock class's mutual exclusion
// (outermost level only — the locks are not re-entrant, but nested
// isolated is already exclusive under the outermost frame's class).
// Free-running mode: class 0 write-locks the global isolated lock;
// class c > 0 read-locks it (excluding class 0 but not other classes)
// and locks its own class mutex. Controlled mode relies on the
// scheduler token: yield suppresses itself while isoDepth > 0, so the
// body runs atomically under whichever schedule the controller picked.
func (p *par) execIsolated(c *tctx, f *frame, st *ast.IsolatedStmt) ctrl {
	if p.ctl == nil && c.isoDepth == 0 {
		if cls := st.LockClass; cls > 0 && cls <= len(p.classMu) {
			p.isoMu.RLock()
			defer p.isoMu.RUnlock()
			p.classMu[cls-1].Lock()
			defer p.classMu[cls-1].Unlock()
		} else {
			p.isoMu.Lock()
			defer p.isoMu.Unlock()
		}
	}
	c.isoDepth++
	defer func() { c.isoDepth-- }()
	return p.execBlock(c, f, st.Body)
}

// maxLockClass scans the program for the highest isolated lock class, to
// size the per-class mutex table before the run starts.
func maxLockClass(prog *ast.Program) int {
	maxCls := 0
	var walk func(b *ast.Block)
	walk = func(b *ast.Block) {
		for _, s := range b.Stmts {
			if iso, ok := s.(*ast.IsolatedStmt); ok && iso.LockClass > maxCls {
				maxCls = iso.LockClass
			}
			for _, nb := range ast.StmtBlocks(s) {
				walk(nb)
			}
		}
	}
	for _, fn := range prog.Funcs {
		walk(fn.Body)
	}
	return maxCls
}

func (p *par) execAssign(c *tctx, f *frame, st *ast.AssignStmt) {
	rhs := p.eval(c, f, st.RHS)
	switch lhs := st.LHS.(type) {
	case *ast.Ident:
		sym := lhs.Sym.(*sem.Symbol)
		if st.Op != token.ASSIGN {
			rhs = compound(st.Op, p.load(c, sym, f), rhs)
		}
		p.store(c, sym, f, rhs)
	case *ast.IndexExpr:
		av := p.eval(c, f, lhs.X)
		iv := p.eval(c, f, lhs.Index)
		if av.A == nil || iv.I < 0 || iv.I >= int64(len(av.A.Elems)) {
			panic(&interp.RuntimeError{Msg: "index out of range in parallel run"})
		}
		if st.Op != token.ASSIGN {
			p.yield(c, OpRead, av.A.Base+uint64(iv.I))
			rhs = compound(st.Op, av.A.Elems[iv.I], rhs)
		}
		p.yield(c, OpWrite, av.A.Base+uint64(iv.I))
		av.A.Elems[iv.I] = rhs
	}
}

func (p *par) load(c *tctx, sym *sem.Symbol, f *frame) interp.Value {
	if sym.Kind == sem.GlobalVar {
		p.yield(c, OpRead, 1+uint64(sym.Slot))
		return p.globals[sym.Slot]
	}
	return f.slots[sym.Slot]
}

func (p *par) store(c *tctx, sym *sem.Symbol, f *frame, v interp.Value) {
	if sym.Kind == sem.GlobalVar {
		p.yield(c, OpWrite, 1+uint64(sym.Slot))
		p.globals[sym.Slot] = v
		return
	}
	f.slots[sym.Slot] = v
}

func compound(op token.Kind, old, rhs interp.Value) interp.Value {
	switch old.K {
	case interp.KInt:
		switch op {
		case token.ADDASSIGN:
			return interp.IntV(old.I + rhs.I)
		case token.SUBASSIGN:
			return interp.IntV(old.I - rhs.I)
		case token.MULASSIGN:
			return interp.IntV(old.I * rhs.I)
		case token.QUOASSIGN:
			if rhs.I == 0 {
				panic(&interp.RuntimeError{Msg: "integer division by zero"})
			}
			return interp.IntV(old.I / rhs.I)
		}
	case interp.KFloat:
		switch op {
		case token.ADDASSIGN:
			return interp.FloatV(old.F + rhs.F)
		case token.SUBASSIGN:
			return interp.FloatV(old.F - rhs.F)
		case token.MULASSIGN:
			return interp.FloatV(old.F * rhs.F)
		case token.QUOASSIGN:
			return interp.FloatV(old.F / rhs.F)
		}
	}
	panic(&interp.RuntimeError{Msg: "invalid compound assignment"})
}

func zeroValue(t ast.Type) interp.Value {
	switch tt := t.(type) {
	case *ast.PrimType:
		switch tt.Kind {
		case ast.Int:
			return interp.IntV(0)
		case ast.Float:
			return interp.FloatV(0)
		case ast.Bool:
			return interp.BoolV(false)
		default:
			return interp.StringV("")
		}
	case *ast.ArrayType:
		return interp.Value{K: interp.KArray}
	}
	return interp.VoidV()
}

func (p *par) eval(c *tctx, f *frame, e ast.Expr) interp.Value {
	switch ex := e.(type) {
	case *ast.IntLit:
		return interp.IntV(ex.Value)
	case *ast.FloatLit:
		return interp.FloatV(ex.Value)
	case *ast.BoolLit:
		return interp.BoolV(ex.Value)
	case *ast.StringLit:
		return interp.StringV(ex.Value)
	case *ast.Ident:
		return p.load(c, ex.Sym.(*sem.Symbol), f)
	case *ast.UnaryExpr:
		x := p.eval(c, f, ex.X)
		if ex.Op == token.SUB {
			if x.K == interp.KInt {
				return interp.IntV(-x.I)
			}
			return interp.FloatV(-x.F)
		}
		return interp.BoolV(!x.Bool())
	case *ast.BinaryExpr:
		return p.evalBinary(c, f, ex)
	case *ast.IndexExpr:
		av := p.eval(c, f, ex.X)
		iv := p.eval(c, f, ex.Index)
		if av.A == nil || iv.I < 0 || iv.I >= int64(len(av.A.Elems)) {
			panic(&interp.RuntimeError{Msg: "index out of range in parallel run"})
		}
		p.yield(c, OpRead, av.A.Base+uint64(iv.I))
		return av.A.Elems[iv.I]
	case *ast.MakeExpr:
		n := p.eval(c, f, ex.Len)
		if n.I < 0 {
			panic(&interp.RuntimeError{Msg: "make with negative length"})
		}
		a := &interp.Array{Elems: make([]interp.Value, n.I)}
		if p.ctl != nil {
			// Number array locations exactly like the sequential
			// detector so race-directed schedules can target them.
			a.Base = p.nextLoc
			p.nextLoc += uint64(n.I)
		}
		z := zeroValue(ex.Elem)
		for i := range a.Elems {
			a.Elems[i] = z
		}
		return interp.Value{K: interp.KArray, A: a}
	case *ast.CallExpr:
		return p.evalCall(c, f, ex)
	}
	panic(&interp.RuntimeError{Msg: "unknown expression"})
}

func (p *par) evalBinary(c *tctx, f *frame, ex *ast.BinaryExpr) interp.Value {
	switch ex.Op {
	case token.LAND:
		if !p.eval(c, f, ex.X).Bool() {
			return interp.BoolV(false)
		}
		return interp.BoolV(p.eval(c, f, ex.Y).Bool())
	case token.LOR:
		if p.eval(c, f, ex.X).Bool() {
			return interp.BoolV(true)
		}
		return interp.BoolV(p.eval(c, f, ex.Y).Bool())
	}
	x := p.eval(c, f, ex.X)
	y := p.eval(c, f, ex.Y)
	if x.K == interp.KInt && y.K == interp.KInt {
		switch ex.Op {
		case token.ADD:
			return interp.IntV(x.I + y.I)
		case token.SUB:
			return interp.IntV(x.I - y.I)
		case token.MUL:
			return interp.IntV(x.I * y.I)
		case token.QUO:
			if y.I == 0 {
				panic(&interp.RuntimeError{Msg: "integer division by zero"})
			}
			return interp.IntV(x.I / y.I)
		case token.REM:
			if y.I == 0 {
				panic(&interp.RuntimeError{Msg: "integer modulo by zero"})
			}
			return interp.IntV(x.I % y.I)
		case token.AND:
			return interp.IntV(x.I & y.I)
		case token.OR:
			return interp.IntV(x.I | y.I)
		case token.XOR:
			return interp.IntV(x.I ^ y.I)
		case token.SHL:
			return interp.IntV(x.I << uint(y.I&63))
		case token.SHR:
			return interp.IntV(x.I >> uint(y.I&63))
		case token.LSS:
			return interp.BoolV(x.I < y.I)
		case token.LEQ:
			return interp.BoolV(x.I <= y.I)
		case token.GTR:
			return interp.BoolV(x.I > y.I)
		case token.GEQ:
			return interp.BoolV(x.I >= y.I)
		case token.EQL:
			return interp.BoolV(x.I == y.I)
		case token.NEQ:
			return interp.BoolV(x.I != y.I)
		}
	}
	if x.K == interp.KFloat && y.K == interp.KFloat {
		switch ex.Op {
		case token.ADD:
			return interp.FloatV(x.F + y.F)
		case token.SUB:
			return interp.FloatV(x.F - y.F)
		case token.MUL:
			return interp.FloatV(x.F * y.F)
		case token.QUO:
			return interp.FloatV(x.F / y.F)
		case token.LSS:
			return interp.BoolV(x.F < y.F)
		case token.LEQ:
			return interp.BoolV(x.F <= y.F)
		case token.GTR:
			return interp.BoolV(x.F > y.F)
		case token.GEQ:
			return interp.BoolV(x.F >= y.F)
		case token.EQL:
			return interp.BoolV(x.F == y.F)
		case token.NEQ:
			return interp.BoolV(x.F != y.F)
		}
	}
	if x.K == interp.KBool && y.K == interp.KBool {
		switch ex.Op {
		case token.EQL:
			return interp.BoolV(x.I == y.I)
		case token.NEQ:
			return interp.BoolV(x.I != y.I)
		}
	}
	panic(&interp.RuntimeError{Msg: "invalid operands"})
}

func (p *par) evalCall(c *tctx, f *frame, ex *ast.CallExpr) interp.Value {
	switch target := ex.Target.(type) {
	case *sem.Builtin:
		args := make([]interp.Value, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = p.eval(c, f, a)
		}
		return p.builtin(c, ex, target, args)
	case *ast.FuncDecl:
		args := make([]interp.Value, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = p.eval(c, f, a)
		}
		return p.call(c, target, args)
	}
	panic(&interp.RuntimeError{Msg: "unresolved call " + ex.Fun})
}

func (p *par) builtin(c *tctx, ex *ast.CallExpr, b *sem.Builtin, args []interp.Value) interp.Value {
	switch b.ID() {
	case sem.BLen:
		if args[0].A == nil {
			panic(&interp.RuntimeError{Msg: "len of nil array"})
		}
		return interp.IntV(int64(len(args[0].A.Elems)))
	case sem.BPrint, sem.BPrintln:
		p.yield(c, OpPrint, 0)
		p.outMu.Lock()
		for i, a := range args {
			if i > 0 {
				p.out.WriteByte(' ')
			}
			p.out.WriteString(a.String())
		}
		if b.ID() == sem.BPrintln {
			p.out.WriteByte('\n')
		}
		p.outMu.Unlock()
		return interp.VoidV()
	case sem.BIntConv:
		if args[0].K == interp.KFloat {
			return interp.IntV(int64(args[0].F))
		}
		return args[0]
	case sem.BFloatConv:
		if args[0].K == interp.KInt {
			return interp.FloatV(float64(args[0].I))
		}
		return args[0]
	case sem.BSqrt:
		return interp.FloatV(math.Sqrt(args[0].F))
	case sem.BSin:
		return interp.FloatV(math.Sin(args[0].F))
	case sem.BCos:
		return interp.FloatV(math.Cos(args[0].F))
	case sem.BPow:
		return interp.FloatV(math.Pow(args[0].F, args[1].F))
	case sem.BExp:
		return interp.FloatV(math.Exp(args[0].F))
	case sem.BLog:
		return interp.FloatV(math.Log(args[0].F))
	case sem.BFloor:
		return interp.FloatV(math.Floor(args[0].F))
	case sem.BAbs:
		if args[0].K == interp.KInt {
			if args[0].I < 0 {
				return interp.IntV(-args[0].I)
			}
			return args[0]
		}
		return interp.FloatV(math.Abs(args[0].F))
	}
	panic(&interp.RuntimeError{Msg: "unknown builtin " + ex.Fun})
}
