package parinterp

import (
	"fmt"

	"finishrepair/internal/guard"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
)

// PointOp classifies a controlled-schedule yield point by the operation
// the task is about to perform.
type PointOp uint8

// Yield-point operations. Read/Write name shared-memory accesses (the
// loc numbering matches the race detector's: globals at 1+slot, array
// elements at Base+index); Spawn fires in the parent right after an
// async child is registered; Print fires before a print/println appends
// to the shared output buffer.
const (
	OpRead PointOp = iota
	OpWrite
	OpSpawn
	OpPrint
)

// String names the operation.
func (op PointOp) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSpawn:
		return "spawn"
	default:
		return "print"
	}
}

// Point is one named yield point: the operation about to happen, the
// abstract shared-memory location it touches (0 for spawn/print), and
// the source position of the innermost statement performing it.
type Point struct {
	Op  PointOp
	Loc uint64
	Pos token.Pos
}

// String renders the point for schedule traces.
func (p Point) String() string {
	if p.Loc != 0 {
		return fmt.Sprintf("%s@%d(%s)", p.Op, p.Loc, p.Pos)
	}
	return fmt.Sprintf("%s(%s)", p.Op, p.Pos)
}

// Controller serializes a controlled parallel run: the interpreter
// surrenders every scheduling decision to it, so one logical task runs
// at a time and the interleaving is exactly the controller's choice.
// Token handoff happens through channels, so even executions that are
// racy at the HJ level are free of Go-level data races.
//
// The contract:
//
//   - Register is called by the token-holding parent (or the run setup,
//     parent -1) before the child's goroutine starts; the child becomes
//     schedulable immediately and is attached to the parent's innermost
//     finish scope.
//   - Begin blocks the new task's goroutine until the controller grants
//     it the token for the first time.
//   - Yield offers a preemption point before the operation described by
//     p; it returns when the task holds the token again.
//   - FinishEnter opens a finish scope owned by the calling task and
//     returns its id; FinishWait blocks until every task transitively
//     registered in that scope has ended (returning with the token).
//   - End reports task completion and releases the token. failed marks
//     abnormal termination: the controller must then abort the run, and
//     every blocked or future blocking call panics Aborted{} so the
//     remaining tasks unwind. End itself never blocks and never panics.
type Controller interface {
	Register(parent int) int
	Begin(id int)
	Yield(id int, p Point)
	FinishEnter(id int) int
	FinishWait(id int, scope int)
	End(id int, failed bool)
}

// Aborted is the panic value a Controller raises from blocking calls
// after the run aborts; the per-task wrapper recovers it, reports a
// clean (non-failed) End, and lets the goroutine exit.
type Aborted struct{}

// runControlled executes the program under opts.Controller: every task
// is a goroutine gated by the controller's token, and every shared
// access yields first. The root task wraps globals initialization and
// main in an implicit finish scope so the run joins all tasks.
func (p *par) runControlled(info *sem.Info, opts Options) (*Result, error) {
	opts.Meter.SetPhase("controlled-run")
	p.nextLoc = 1 + uint64(info.GlobalCount)
	root := p.ctl.Register(-1)
	p.spawnTask(root, func(c *tctx) {
		scope := p.ctl.FinishEnter(c.id)
		// Globals initialize on the root task before main; allocation
		// order (and so array loc numbering) matches the sequential
		// interpreter because no other task exists yet.
		for _, g := range info.Prog.Globals {
			c.pos = g.Pos()
			sym := g.Sym.(*sem.Symbol)
			if g.Init != nil {
				p.globals[sym.Slot] = p.eval(c, nil, g.Init)
			} else {
				p.globals[sym.Slot] = zeroValue(g.Type)
			}
		}
		main := info.Prog.Func("main")
		p.call(c, main, nil)
		p.ctl.FinishWait(c.id, scope)
	})
	p.wg.Wait()
	if p.firstErr != nil {
		return nil, p.firstErr
	}
	return &Result{
		Output: p.out.String(),
		State:  interp.RenderState(info, p.globals),
	}, nil
}

// spawnTask launches one controlled task goroutine: Begin blocks until
// the controller grants the token, the body runs, and End always fires
// exactly once — including when the task unwinds on a budget trip, a
// runtime fault, or a run abort.
func (p *par) spawnTask(id int, body func(*tctx)) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		failed := false
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Aborted); !ok {
					failed = true
					p.recordPanic(r)
				}
			}
			p.ctl.End(id, failed)
		}()
		p.ctl.Begin(id)
		body(&tctx{id: id})
	}()
}

// recordPanic converts a task panic into the run's error, keeping only
// the first failure (the abort wakes the rest, whose unwinding is a
// consequence, not a cause).
func (p *par) recordPanic(r any) {
	var err error
	switch v := r.(type) {
	case guard.Bail:
		err = v.Err
	case *interp.RuntimeError:
		err = v
	case error:
		err = fmt.Errorf("controlled run: panic: %w", v)
	default:
		err = fmt.Errorf("controlled run: panic: %v", v)
	}
	p.errMu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.errMu.Unlock()
}

// yield offers the controller a preemption point; a no-op outside
// controlled mode and inside isolated bodies (holding the token through
// the whole body is exactly the mutual exclusion isolated promises, so
// no schedule can interleave with it).
func (p *par) yield(c *tctx, op PointOp, loc uint64) {
	if p.ctl == nil || c.isoDepth > 0 {
		return
	}
	p.ctl.Yield(c.id, Point{Op: op, Loc: loc, Pos: c.pos})
}
