package parinterp_test

import (
	"strings"
	"testing"

	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/parinterp"
	"finishrepair/internal/progen"
	"finishrepair/internal/repair"
	"finishrepair/taskpar"
)

func TestMatchesSequentialOnSynchronizedPrograms(t *testing.T) {
	// Repair random programs first so they are race-free, then check the
	// parallel interpreter agrees with the elision on both executors.
	pool := taskpar.NewPoolExecutor(3)
	defer pool.Shutdown()
	for seed := int64(600); seed < 615; seed++ {
		prog := parser.MustParse(progen.Gen(seed, progen.Default()))
		ast.StripFinishes(prog)
		rep, err := repair.Repair(prog, repair.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		info := sem.MustCheck(prog)
		for _, exec := range []*taskpar.Executor{nil, pool} {
			res, err := parinterp.Run(info, parinterp.Options{Executor: exec})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if res.Output != rep.Output {
				t.Fatalf("seed %d: parallel %q != sequential %q", seed, res.Output, rep.Output)
			}
		}
	}
}

func TestRuntimeErrorsPropagate(t *testing.T) {
	cases := []struct{ src, want string }{
		{`func main() { finish { async { var a = make([]int, 1); a[5] = 1; } } }`, "out of range"},
		{`func main() { var x = 1 / 0; println(x); }`, "division by zero"},
		{`func main() { var a []int; a[0] = 1; }`, "out of range"},
	}
	for _, c := range cases {
		prog := parser.MustParse(c.src)
		info := sem.MustCheck(prog)
		_, err := parinterp.Run(info, parinterp.Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestBuiltinsMatchSequential(t *testing.T) {
	src := `
func main() {
    var a = make([]float, 3);
    a[0] = sqrt(2.0) + pow(2.0, 0.5) + sin(1.0) * cos(1.0);
    a[1] = exp(1.0) + log(2.718281828459045) + floor(9.7);
    a[2] = abs(-1.5) + float(abs(-3)) + float(int(2.9));
    println(int(a[0] * 1000000.0), int(a[1] * 1000000.0), int(a[2] * 1000000.0), len(a));
    print("x", 1, true);
}
`
	prog := parser.MustParse(src)
	info := sem.MustCheck(prog)
	seqRes, err := interp.Run(info, interp.Options{Mode: interp.Elide})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := parinterp.Run(info, parinterp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Output != parRes.Output {
		t.Errorf("parallel %q != sequential %q", parRes.Output, seqRes.Output)
	}
}

func TestGlobalsWork(t *testing.T) {
	src := `
var total = make([]int, 4);
var scale = 3;
func main() {
    finish {
        async { total[0] = 1 * scale; }
        async { total[1] = 2 * scale; }
        async { total[2] = 3 * scale; }
    }
    println(total[0] + total[1] + total[2]);
}
`
	prog := parser.MustParse(src)
	info := sem.MustCheck(prog)
	res, err := parinterp.Run(info, parinterp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "18\n" {
		t.Errorf("got %q, want 18", res.Output)
	}
}
