// Package homework reproduces the paper's student-homework study (§7.4):
// 59 submissions of a manually synchronized parallel quicksort are graded
// against the repair tool's own output. The paper reports 5 submissions
// with remaining data races, 29 over-synchronized ones, and 25 that match
// the tool.
//
// The original submissions are not available, so a deterministic
// generator produces 59 submissions drawn from a catalogue of realistic
// placement strategies with the same class sizes; the grader — race
// detection plus critical-path comparison against the tool's repair — is
// the genuine analysis.
package homework

import (
	"fmt"

	"finishrepair/internal/cpl"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/race"
	"finishrepair/internal/repair"
)

// InputSize is the quicksort input used for grading.
const InputSize = 300

// quicksortTemplate renders the assignment program. Placeholders:
//
//	%[1]s  before the first recursive async   (inside quicksort)
//	%[2]s  between the two asyncs
//	%[3]s  after the second async
//	%[4]s  before the top-level call in main
//	%[5]s  after the top-level call
//	%[6]s  before the verification loop
//	%[7]s  after the verification loop
//
// Strategies fill the slots with "finish {" / "}" pairs.
const quicksortTemplate = `
func partition(a []int, lo int, hi int, out []int) {
    var p = a[(lo + hi) / 2];
    var i = lo;
    var j = hi;
    while (i <= j) {
        while (a[i] < p) { i = i + 1; }
        while (a[j] > p) { j = j - 1; }
        if (i <= j) {
            var t = a[i];
            a[i] = a[j];
            a[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    out[0] = i;
    out[1] = j;
}

func quicksort(a []int, m int, n int) {
    if (m < n) {
        var ij = make([]int, 2);
        partition(a, m, n, ij);
        %[1]s
        async quicksort(a, m, ij[1]);
        %[2]s
        async quicksort(a, ij[0], n);
        %[3]s
    }
}

func main() {
    var size = %[8]d;
    var a = make([]int, size);
    var st = make([]int, 1);
    st[0] = 2024;
    for (var i = 0; i < size; i = i + 1) {
        st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
        a[i] = st[0] %% 100000;
    }
    %[4]s
    quicksort(a, 0, size - 1);
    %[5]s
    var ok = 1;
    var sum = 0;
    %[6]s
    for (var i = 0; i < size; i = i + 1) {
        if (i > 0 && a[i - 1] > a[i]) { ok = 0; }
        sum = (sum + a[i]) %% 1000000007;
    }
    %[7]s
    println(ok, sum);
}
`

// Strategy is one way students placed finishes.
type Strategy struct {
	Name  string
	Desc  string
	slots [7]string
}

// Render produces the submission source at the given input size.
func (s *Strategy) Render(size int) string {
	return fmt.Sprintf(quicksortTemplate,
		s.slots[0], s.slots[1], s.slots[2], s.slots[3], s.slots[4], s.slots[5], s.slots[6], size)
}

var (
	fin = "finish {"
	end = "}"
)

// Strategies is the catalogue of submission shapes.
var Strategies = []Strategy{
	// Still-racy shapes.
	{Name: "none", Desc: "no finish at all"},
	{Name: "first-async-only", Desc: "finish around only the first recursive async",
		slots: [7]string{fin, end, "", "", "", "", ""}},
	{Name: "second-async-only", Desc: "finish around only the second recursive async",
		slots: [7]string{"", fin, end, "", "", "", ""}},
	{Name: "whole-main", Desc: "finish around call AND verification together (does not join before the reads)",
		slots: [7]string{"", "", "", fin, "", "", end}},
	{Name: "verify-only", Desc: "finish around the verification loop only",
		slots: [7]string{"", "", "", "", "", fin, end}},

	// Over-synchronized shapes.
	{Name: "asyncs-inside", Desc: "finish around the two recursive asyncs inside quicksort (paper Fig. 2: correct but less parallel)",
		slots: [7]string{fin, "", end, "", "", "", ""}},
	{Name: "each-async", Desc: "finish around each recursive async separately (serializes)",
		slots: [7]string{fin, end + "\n        " + fin, end, "", "", "", ""}},
	{Name: "call-and-asyncs", Desc: "finish at the call site plus finish around the recursive asyncs",
		slots: [7]string{fin, "", end, fin, end, "", ""}},

	// Matching the tool.
	{Name: "call-site", Desc: "finish around the top-level quicksort call (the tool's repair)",
		slots: [7]string{"", "", "", fin, end, "", ""}},
}

// Submission is one generated homework submission.
type Submission struct {
	ID       int
	Strategy *Strategy
	Source   string
}

// classPlan assigns 59 submissions to strategies: 5 racy, 29
// over-synchronized, 25 matching (paper §7.4 class sizes).
var classPlan = []struct {
	strategy string
	count    int
}{
	{"none", 1},
	{"first-async-only", 1},
	{"second-async-only", 1},
	{"whole-main", 1},
	{"verify-only", 1},
	{"asyncs-inside", 13},
	{"each-async", 8},
	{"call-and-asyncs", 8},
	{"call-site", 25},
}

// Submissions generates the 59 deterministic submissions.
func Submissions() []Submission {
	var out []Submission
	id := 1
	for _, cp := range classPlan {
		var st *Strategy
		for i := range Strategies {
			if Strategies[i].Name == cp.strategy {
				st = &Strategies[i]
				break
			}
		}
		for i := 0; i < cp.count; i++ {
			out = append(out, Submission{ID: id, Strategy: st, Source: st.Render(InputSize)})
			id++
		}
	}
	return out
}

// Verdict classifies a submission.
type Verdict int

// Verdicts.
const (
	Racy Verdict = iota
	OverSynchronized
	Matches
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Racy:
		return "racy"
	case OverSynchronized:
		return "over-synchronized"
	default:
		return "matches tool"
	}
}

// GradeResult is the grader's output for one submission.
type GradeResult struct {
	Submission Submission
	Verdict    Verdict
	Races      int
	Span       int64 // critical path length of the submission (0 if racy)
	ToolSpan   int64 // critical path length of the tool's repair
}

// ToolRepair repairs the bare (finish-free) assignment with the tool and
// returns the repaired program's critical path length and its normalized
// source (the grading reference, as in the paper: "we evaluated the
// student submissions against the finish statements automatically
// generated by the tool").
func ToolRepair() (span int64, normalizedSrc string, err error) {
	bare := Strategies[0].Render(InputSize)
	prog, err := parser.Parse(bare)
	if err != nil {
		return 0, "", err
	}
	if _, err := repair.Repair(prog, repair.Options{}); err != nil {
		return 0, "", err
	}
	info, err := sem.Check(prog)
	if err != nil {
		return 0, "", err
	}
	res, err := interp.Run(info, interp.Options{Mode: interp.DepthFirst, Instrument: true})
	if err != nil {
		return 0, "", err
	}
	m := cpl.Analyze(res.Tree)
	return m.Span, normalize(printer.Print(prog)), nil
}

// normalize reprints a program so that only its structure matters
// (comments, synthesized-finish markers, formatting, and inferred type
// annotations wash out).
func normalize(src string) string {
	prog := parser.MustParse(src)
	sem.MustCheck(prog) // fills in inferred var types
	return printer.Print(prog)
}

// Grade classifies one submission against the tool's repair: submissions
// with remaining races are racy; race-free submissions whose finish
// placements equal the tool's match; any other race-free placement is
// over-synchronized (the tool's placement is optimal, so extra or
// different finishes can only add synchronization).
func Grade(sub Submission, toolSpan int64, toolSrc string) (*GradeResult, error) {
	prog, err := parser.Parse(sub.Source)
	if err != nil {
		return nil, fmt.Errorf("submission %d: %w", sub.ID, err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("submission %d: %w", sub.ID, err)
	}
	res, det, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
	if err != nil {
		return nil, fmt.Errorf("submission %d: %w", sub.ID, err)
	}
	gr := &GradeResult{Submission: sub, ToolSpan: toolSpan, Races: len(det.Races())}
	if gr.Races > 0 {
		gr.Verdict = Racy
		return gr, nil
	}
	gr.Span = cpl.Analyze(res.Tree).Span
	if normalize(sub.Source) == toolSrc {
		gr.Verdict = Matches
	} else {
		gr.Verdict = OverSynchronized
	}
	return gr, nil
}

// StudyResult tallies the full study.
type StudyResult struct {
	Results  []*GradeResult
	Racy     int
	OverSync int
	Matching int
	ToolSpan int64
}

// RunStudy grades all 59 submissions.
func RunStudy() (*StudyResult, error) {
	toolSpan, toolSrc, err := ToolRepair()
	if err != nil {
		return nil, err
	}
	sr := &StudyResult{ToolSpan: toolSpan}
	for _, sub := range Submissions() {
		gr, err := Grade(sub, toolSpan, toolSrc)
		if err != nil {
			return nil, err
		}
		sr.Results = append(sr.Results, gr)
		switch gr.Verdict {
		case Racy:
			sr.Racy++
		case OverSynchronized:
			sr.OverSync++
		default:
			sr.Matching++
		}
	}
	return sr, nil
}

// Sanity re-exported helper: strip count for tests.
func stripCount(src string) int {
	prog := parser.MustParse(src)
	return ast.StripFinishes(prog)
}
