package homework

import (
	"testing"
)

func TestSubmissionCount(t *testing.T) {
	subs := Submissions()
	if len(subs) != 59 {
		t.Fatalf("generated %d submissions, want 59", len(subs))
	}
	seen := map[int]bool{}
	for _, s := range subs {
		if seen[s.ID] {
			t.Errorf("duplicate submission ID %d", s.ID)
		}
		seen[s.ID] = true
		if s.Source == "" {
			t.Errorf("submission %d has empty source", s.ID)
		}
	}
}

// TestStudyMatchesPaperCounts reproduces the paper's §7.4 result: out of
// 59 submissions, 5 still have data races, 29 are over-synchronized, and
// 25 match the tool's output. The generator fixes the class sizes; this
// test verifies the GRADER actually assigns each submission to its
// intended class (e.g. that "finish around call and verification" really
// is racy, and "finish around the recursive asyncs" really loses
// parallelism relative to the tool's repair).
func TestStudyMatchesPaperCounts(t *testing.T) {
	sr, err := RunStudy()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Racy != 5 || sr.OverSync != 29 || sr.Matching != 25 {
		for _, gr := range sr.Results {
			t.Logf("sub %2d (%s): %v races=%d span=%d tool=%d",
				gr.Submission.ID, gr.Submission.Strategy.Name, gr.Verdict, gr.Races, gr.Span, gr.ToolSpan)
		}
		t.Fatalf("study = %d racy / %d over-sync / %d matching, want 5/29/25",
			sr.Racy, sr.OverSync, sr.Matching)
	}
	t.Logf("tool span = %d", sr.ToolSpan)
}

func TestGraderAgreesWithStrategyIntent(t *testing.T) {
	toolSpan, toolSrc, err := ToolRepair()
	if err != nil {
		t.Fatal(err)
	}
	if toolSrc == "" {
		t.Fatal("empty repaired source")
	}
	intents := map[string]Verdict{
		"none":              Racy,
		"first-async-only":  Racy,
		"second-async-only": Racy,
		"whole-main":        Racy,
		"verify-only":       Racy,
		"asyncs-inside":     OverSynchronized,
		"each-async":        OverSynchronized,
		"call-and-asyncs":   OverSynchronized,
		"call-site":         Matches,
	}
	for i := range Strategies {
		st := &Strategies[i]
		gr, err := Grade(Submission{ID: 100 + i, Strategy: st, Source: st.Render(InputSize)}, toolSpan, toolSrc)
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		if gr.Verdict != intents[st.Name] {
			t.Errorf("%s: graded %v, intended %v (races=%d span=%d tool=%d)",
				st.Name, gr.Verdict, intents[st.Name], gr.Races, gr.Span, toolSpan)
		}
	}
}
