// Package progen generates random — but always terminating and
// deterministic — HJ-lite programs for property-based testing: the
// fuzzed programs exercise the detectors (oracle cross-validation), the
// repair loop (end-to-end convergence and semantics preservation), and
// the interpreters (sequential/parallel agreement).
//
// Generated programs share mutable state only through a fixed set of
// global int arrays, access them from asyncs at random nesting depths,
// and bound every loop by constants, so every program halts and the
// canonical depth-first execution is deterministic.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config tunes generation.
type Config struct {
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// MaxStmts bounds statements per block.
	MaxStmts int
	// Arrays is the number of shared global arrays.
	Arrays int
	// ArrayLen is their length.
	ArrayLen int
	// Funcs is the number of auxiliary functions.
	Funcs int
	// Commute adds commutative-reduction shapes to the statement mix:
	// scalar add/mul accumulators, hoisted min/max updates behind a
	// local, and split read-modify-writes. These exercise the static
	// commutativity analysis and the isolated repair strategy. Off by
	// default so the Default() corpus (and every expectation derived
	// from it) is byte-identical to before the knob existed.
	Commute bool
}

// Default returns the standard fuzzing configuration.
func Default() Config {
	return Config{MaxDepth: 3, MaxStmts: 3, Arrays: 3, ArrayLen: 16, Funcs: 2}
}

// Gen produces a random program from the seed. The same seed always
// yields the same program.
func Gen(seed int64, cfg Config) string {
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	return g.program()
}

type gen struct {
	rng  *rand.Rand
	cfg  Config
	sb   strings.Builder
	ind  int
	hasK bool // whether the parameter k is in scope
	// minCallee restricts calls to helpers with index >= minCallee,
	// making the call graph acyclic (helpers may only call later
	// helpers); main calls anything.
	minCallee int
	// uniq numbers the locals the commutative shapes introduce so a
	// block never redeclares one.
	uniq int
}

func (g *gen) w(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("    ", g.ind))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// Shared scalar reduction targets emitted under cfg.Commute. Each is
// bound to one update family so concurrent updates of the same scalar
// always commute: r0 add, r1 min, r2 max, r3 add via split
// read-modify-write, r4 mul (wrapping multiplication is commutative).
const numReductions = 5

func (g *gen) program() string {
	for a := 0; a < g.cfg.Arrays; a++ {
		g.w("var g%d = make([]int, %d);", a, g.cfg.ArrayLen)
	}
	if g.cfg.Commute {
		g.w("var r0 = 0;")
		g.w("var r1 = 999983;")
		g.w("var r2 = 0;")
		g.w("var r3 = 0;")
		g.w("var r4 = 1;")
	}
	for f := 0; f < g.cfg.Funcs; f++ {
		g.w("func helper%d(k int) {", f)
		g.ind++
		g.hasK = true
		g.minCallee = f + 1
		g.block(g.cfg.MaxDepth-1, true)
		g.hasK = false
		g.ind--
		g.w("}")
	}
	g.minCallee = 0
	g.w("func main() {")
	g.ind++
	g.block(g.cfg.MaxDepth, true)
	// Print a checksum of all shared state so semantic comparisons see
	// every write.
	g.w("var check = 0;")
	for a := 0; a < g.cfg.Arrays; a++ {
		g.w("for (var i%d = 0; i%d < %d; i%d = i%d + 1) { check = (check * 31 + g%d[i%d]) %% 1000003; }",
			a, a, g.cfg.ArrayLen, a, a, a, a)
	}
	if g.cfg.Commute {
		for r := 0; r < numReductions; r++ {
			g.w("check = (check * 31 + r%d) %% 1000003;", r)
		}
	}
	g.w("println(check);")
	g.ind--
	g.w("}")
	return g.sb.String()
}

func (g *gen) arr() string { return fmt.Sprintf("g%d", g.rng.Intn(g.cfg.Arrays)) }

func (g *gen) idxExpr() string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(g.cfg.ArrayLen))
	case 1:
		if g.hasK {
			return fmt.Sprintf("(k + %d) %% %d", g.rng.Intn(7), g.cfg.ArrayLen)
		}
		return fmt.Sprintf("%d", g.rng.Intn(g.cfg.ArrayLen))
	default:
		return fmt.Sprintf("%s[%d] %% %d", g.arr(), g.rng.Intn(g.cfg.ArrayLen), g.cfg.ArrayLen)
	}
}

// block emits 1..MaxStmts statements. canSpawn allows async/finish.
func (g *gen) block(depth int, canSpawn bool) {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth, canSpawn)
	}
}

// smallExpr yields a target-free operand for a reduction update: a
// small constant, or the helper parameter when one is in scope.
func (g *gen) smallExpr() string {
	if g.hasK && g.rng.Intn(2) == 0 {
		return fmt.Sprintf("(k + %d)", g.rng.Intn(9))
	}
	return fmt.Sprintf("%d", 1+g.rng.Intn(9))
}

// fresh mints a block-unique local name.
func (g *gen) fresh(prefix string) string {
	g.uniq++
	return fmt.Sprintf("%s%d", prefix, g.uniq)
}

func (g *gen) stmt(depth int, canSpawn bool) {
	span := 10
	if g.cfg.Commute {
		span = 13 // cases 10..12: commutative reduction shapes
	}
	choice := g.rng.Intn(span)
	if depth <= 0 && choice >= 4 && choice < 10 {
		choice = g.rng.Intn(4)
	}
	switch choice {
	case 0, 1: // array write
		g.w("%s[%s] = (%s[%s] + %d) %% 97;", g.arr(), g.idxExpr(), g.arr(), g.idxExpr(), g.rng.Intn(50)+1)
	case 2: // array combine
		g.w("%s[%s] = (%s[%s] * 3 + %s[%s]) %% 89;", g.arr(), g.idxExpr(), g.arr(), g.idxExpr(), g.arr(), g.idxExpr())
	case 3: // helper call (acyclic: only helpers at or after minCallee)
		if g.minCallee < g.cfg.Funcs {
			callee := g.minCallee + g.rng.Intn(g.cfg.Funcs-g.minCallee)
			g.w("helper%d(%d);", callee, g.rng.Intn(g.cfg.ArrayLen))
		} else {
			g.w("%s[%d] = %d;", g.arr(), g.rng.Intn(g.cfg.ArrayLen), g.rng.Intn(97))
		}
	case 4: // bounded for loop
		v := fmt.Sprintf("t%d", g.rng.Intn(1000))
		g.w("for (var %s = 0; %s < %d; %s = %s + 1) {", v, v, 2+g.rng.Intn(2), v, v)
		g.ind++
		g.block(depth-1, canSpawn)
		g.ind--
		g.w("}")
	case 5: // if
		g.w("if (%s[%s] %% 2 == 0) {", g.arr(), g.idxExpr())
		g.ind++
		g.block(depth-1, canSpawn)
		g.ind--
		if g.rng.Intn(2) == 0 {
			g.w("} else {")
			g.ind++
			g.block(depth-1, canSpawn)
			g.ind--
		}
		g.w("}")
	case 6, 7: // async
		if !canSpawn {
			g.w("%s[%d] = %d;", g.arr(), g.rng.Intn(g.cfg.ArrayLen), g.rng.Intn(97))
			return
		}
		g.w("async {")
		g.ind++
		g.block(depth-1, true)
		g.ind--
		g.w("}")
	case 8: // finish
		if !canSpawn {
			g.w("%s[%d] = %d;", g.arr(), g.rng.Intn(g.cfg.ArrayLen), g.rng.Intn(97))
			return
		}
		g.w("finish {")
		g.ind++
		g.block(depth-1, true)
		g.ind--
		g.w("}")
	case 10: // single-statement scalar reduction (add or mul family)
		if g.rng.Intn(3) == 0 {
			g.w("r4 = r4 * %d;", 2+g.rng.Intn(2))
		} else {
			g.w("r0 = r0 + %s;", g.smallExpr())
		}
	case 11: // hoisted min/max: read shared into a local, conditionally fold
		v := g.fresh("x")
		g.w("var %s = %s[%s];", v, g.arr(), g.idxExpr())
		if g.rng.Intn(2) == 0 {
			g.w("if (%s < r1) { r1 = %s; }", v, v)
		} else {
			g.w("if (%s > r2) { r2 = %s; }", v, v)
		}
	case 12: // split read-modify-write: one additive update over three statements
		inc, cur := g.fresh("inc"), g.fresh("cur")
		g.w("var %s = %s;", inc, g.smallExpr())
		g.w("var %s = r3;", cur)
		g.w("r3 = %s + %s;", cur, inc)
	default: // nested plain block
		g.w("{")
		g.ind++
		g.block(depth-1, canSpawn)
		g.ind--
		g.w("}")
	}
}
