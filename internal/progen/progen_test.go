package progen_test

import (
	"testing"

	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
)

func TestDeterministic(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(0); seed < 10; seed++ {
		if progen.Gen(seed, cfg) != progen.Gen(seed, cfg) {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
	if progen.Gen(1, cfg) == progen.Gen(2, cfg) {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsAreValid(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(0); seed < 200; seed++ {
		src := progen.Gen(seed, cfg)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if _, err := sem.Check(prog); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
	}
}

func TestConfigKnobs(t *testing.T) {
	cfg := progen.Config{MaxDepth: 1, MaxStmts: 1, Arrays: 1, ArrayLen: 4, Funcs: 0}
	src := progen.Gen(3, cfg)
	if _, err := parser.Parse(src); err != nil {
		t.Fatalf("minimal config: %v\n%s", err, src)
	}
}
