package progen_test

import (
	"testing"

	"finishrepair/internal/analysis/commute"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
)

func TestDeterministic(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(0); seed < 10; seed++ {
		if progen.Gen(seed, cfg) != progen.Gen(seed, cfg) {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
	if progen.Gen(1, cfg) == progen.Gen(2, cfg) {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsAreValid(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(0); seed < 200; seed++ {
		src := progen.Gen(seed, cfg)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if _, err := sem.Check(prog); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
	}
}

// The Commute knob must not perturb the default corpus: every test
// expectation derived from Default() seeds (detector cross-validation,
// repair end-to-end, fuzz baselines) relies on those programs staying
// byte-identical.
func TestCommuteOffIsByteIdentical(t *testing.T) {
	plain := progen.Default()
	explicit := progen.Default()
	explicit.Commute = false
	for seed := int64(0); seed < 20; seed++ {
		if progen.Gen(seed, plain) != progen.Gen(seed, explicit) {
			t.Fatalf("seed %d: Commute=false changed generation", seed)
		}
	}
}

// With Commute on, the corpus stays valid and actually contains
// recognizable commutative update regions — otherwise the agreement
// sweep over it would vacuously pass.
func TestCommuteShapesValidAndRecognized(t *testing.T) {
	cfg := progen.Default()
	cfg.Commute = true
	recognized := 0
	for seed := int64(0); seed < 50; seed++ {
		src := progen.Gen(seed, cfg)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if _, err := sem.Check(prog); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
		for _, fn := range prog.Funcs {
			for _, b := range allBlocks(fn.Body) {
				for i := range b.Stmts {
					if _, ok := commute.RecognizeAt(b, i); ok {
						recognized++
					}
				}
			}
		}
	}
	if recognized == 0 {
		t.Error("no commutative update recognized across 50 Commute programs")
	}
}

// allBlocks returns b and every block nested inside it.
func allBlocks(b *ast.Block) []*ast.Block {
	if b == nil {
		return nil
	}
	out := []*ast.Block{b}
	for _, s := range b.Stmts {
		for _, nb := range ast.StmtBlocks(s) {
			out = append(out, allBlocks(nb)...)
		}
	}
	return out
}

func TestConfigKnobs(t *testing.T) {
	cfg := progen.Config{MaxDepth: 1, MaxStmts: 1, Arrays: 1, ArrayLen: 4, Funcs: 0}
	src := progen.Gen(3, cfg)
	if _, err := parser.Parse(src); err != nil {
		t.Fatalf("minimal config: %v\n%s", err, src)
	}
}
