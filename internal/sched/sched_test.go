package sched_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"finishrepair/internal/sched"
)

func TestSubmitRunsAllTasks(t *testing.T) {
	p := sched.NewPool(4)
	defer p.Shutdown()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 500; i++ {
		wg.Add(1)
		p.Submit(func(*sched.Worker) {
			n.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if n.Load() != 500 {
		t.Fatalf("ran %d tasks, want 500", n.Load())
	}
}

func TestSpawnFansOut(t *testing.T) {
	p := sched.NewPool(4)
	defer p.Shutdown()
	var n atomic.Int64
	var wg sync.WaitGroup
	const width, depth = 3, 5 // 3^0 + ... + 3^5 spawned tasks
	var task func(w *sched.Worker, d int)
	task = func(w *sched.Worker, d int) {
		defer wg.Done()
		n.Add(1)
		if d == 0 {
			return
		}
		for i := 0; i < width; i++ {
			wg.Add(1)
			w.Spawn(func(w *sched.Worker) { task(w, d-1) })
		}
	}
	wg.Add(1)
	p.Submit(func(w *sched.Worker) { task(w, depth) })
	wg.Wait()
	want := int64(0)
	pow := int64(1)
	for d := 0; d <= depth; d++ {
		want += pow
		pow *= width
	}
	if n.Load() != want {
		t.Fatalf("ran %d tasks, want %d", n.Load(), want)
	}
}

func TestRunOneHelpsWhileBlocked(t *testing.T) {
	p := sched.NewPool(1) // single worker: helping is mandatory
	defer p.Shutdown()
	done := make(chan struct{})
	p.Submit(func(w *sched.Worker) {
		var pending atomic.Int64
		pending.Store(1)
		w.Spawn(func(*sched.Worker) { pending.Add(-1) })
		// The only worker is us; the child can only run if we help.
		for pending.Load() > 0 {
			if !w.RunOne() {
				t.Error("RunOne found nothing although a task is pending")
				break
			}
		}
		close(done)
	})
	<-done
}

func TestPoolSize(t *testing.T) {
	p := sched.NewPool(3)
	defer p.Shutdown()
	if p.Size() != 3 {
		t.Errorf("Size = %d, want 3", p.Size())
	}
	q := sched.NewPool(0)
	defer q.Shutdown()
	if q.Size() < 1 {
		t.Errorf("default pool size %d < 1", q.Size())
	}
}

func TestShutdownIdempotent(t *testing.T) {
	p := sched.NewPool(2)
	p.Shutdown()
	p.Shutdown() // must not panic or hang
}

// TestSubmitShutdownRace hammers the Submit/Shutdown race: tasks
// submitted concurrently with pool shutdown must all run exactly once —
// either on a worker or inline on the detached fallback — and none may
// be stranded in the global queue. Run under -race this also checks the
// synchronization of the close handshake itself.
func TestSubmitShutdownRace(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		p := sched.NewPool(4)
		const n = 64
		var ran atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				p.Submit(func(*sched.Worker) { ran.Add(1) })
			}
		}()
		p.Shutdown()
		wg.Wait()
		// Every submitted task has returned from Submit (inline) or been
		// drained by a worker before wg.Wait in Shutdown returned; a second
		// Shutdown is a no-op and everything must have run by now.
		p.Shutdown()
		if got := ran.Load(); got != n {
			t.Fatalf("trial %d: %d/%d tasks ran — tasks lost in the Submit/Shutdown race", trial, got, n)
		}
	}
}

// TestSubmitAfterShutdown: a task submitted to a fully stopped pool
// still runs (inline), including children it spawns.
func TestSubmitAfterShutdown(t *testing.T) {
	p := sched.NewPool(2)
	p.Shutdown()
	var ran atomic.Int64
	p.Submit(func(w *sched.Worker) {
		ran.Add(1)
		w.Spawn(func(*sched.Worker) { ran.Add(1) })
	})
	if got := ran.Load(); got != 2 {
		t.Fatalf("%d/2 tasks ran after shutdown", got)
	}
}
