// Package sched implements a bounded work-stealing task pool used by the
// taskpar runtime: per-worker LIFO deques with random FIFO stealing, the
// scheduling discipline of the Habanero/Cilk family of runtimes.
package sched

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"finishrepair/internal/obs"
)

// Scheduler metrics: one atomic add per event, cheap enough for the
// spawn/steal hot paths (the deque mutex dominates).
var (
	mSpawns  = obs.Default().Counter("sched.spawns")
	mSubmits = obs.Default().Counter("sched.global_submits")
	mSteals  = obs.Default().Counter("sched.steals")
)

// Task is a unit of work. The worker executing it is passed in so the
// task can spawn children into the local deque.
type Task func(w *Worker)

// Pool is a fixed-size work-stealing thread pool.
type Pool struct {
	workers []*Worker
	global  chan Task
	wake    chan struct{}
	done    chan struct{}
	idle    atomic.Int32
	closed  atomic.Bool
	wg      sync.WaitGroup
}

// Worker is one pool worker; tasks receive their worker to spawn locally.
type Worker struct {
	pool *Pool
	id   int
	mu   sync.Mutex
	deq  []Task
	rng  *rand.Rand
}

// NewPool starts a pool with n workers (n <= 0 means GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		global: make(chan Task, 1024),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		w := &Worker{pool: p, id: i, rng: rand.New(rand.NewSource(int64(i + 1)))}
		p.workers = append(p.workers, w)
	}
	p.wg.Add(n)
	for _, w := range p.workers {
		go w.run()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Submit enqueues a task from outside the pool. Submit racing Shutdown
// is safe and lossless: a task that arrives after (or while) the pool
// closes runs inline on a detached worker instead of being stranded in
// the global queue after the workers exit.
func (p *Pool) Submit(t Task) {
	mSubmits.Inc()
	if p.closed.Load() {
		p.runDetached(t)
		return
	}
	p.global <- t
	p.notify()
	if p.closed.Load() {
		// Shutdown raced the send: the workers may have finished their
		// final drain before the task landed, so drain the queue here.
		// (If a worker did pick it up, the queue is simply empty.)
		for {
			select {
			case dt := <-p.global:
				p.runDetached(dt)
			default:
				return
			}
		}
	}
}

// runDetached executes a task (and any children it spawns) on a fresh
// worker that is not part of the pool — the lossless fallback for
// submissions that race or follow Shutdown. The worker is per-call, so
// concurrent late submitters never share state.
func (p *Pool) runDetached(t Task) {
	w := &Worker{pool: p, id: -1, rng: rand.New(rand.NewSource(0x9e3779b9))}
	t(w)
	for {
		nt := w.popLocal()
		if nt == nil {
			return
		}
		nt(w)
	}
}

func (p *Pool) notify() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Shutdown stops the workers after the queues drain to idle. Tasks
// submitted concurrently with (or after) Shutdown are not lost: Submit
// detects the closed pool and runs them inline.
func (p *Pool) Shutdown() {
	if p.closed.Swap(true) {
		return
	}
	close(p.done)
	for range p.workers {
		p.notify()
	}
	p.wg.Wait()
}

// Spawn pushes a child task onto this worker's deque (LIFO end).
func (w *Worker) Spawn(t Task) {
	mSpawns.Inc()
	w.mu.Lock()
	w.deq = append(w.deq, t)
	w.mu.Unlock()
	w.pool.notify()
}

// popLocal takes the most recently spawned local task (LIFO).
func (w *Worker) popLocal() Task {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.deq)
	if n == 0 {
		return nil
	}
	t := w.deq[n-1]
	w.deq[n-1] = nil
	w.deq = w.deq[:n-1]
	return t
}

// stealFrom takes the oldest task of victim's deque (FIFO).
func (w *Worker) stealFrom(victim *Worker) Task {
	victim.mu.Lock()
	defer victim.mu.Unlock()
	if len(victim.deq) == 0 {
		return nil
	}
	t := victim.deq[0]
	victim.deq = victim.deq[1:]
	mSteals.Inc()
	return t
}

// findTask looks for runnable work: local deque, then the global queue,
// then stealing from a random victim.
func (w *Worker) findTask() Task {
	if t := w.popLocal(); t != nil {
		return t
	}
	select {
	case t := <-w.pool.global:
		return t
	default:
	}
	n := len(w.pool.workers)
	off := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := w.pool.workers[(off+i)%n]
		if v == w {
			continue
		}
		if t := w.stealFrom(v); t != nil {
			return t
		}
	}
	return nil
}

// RunOne executes one available task if any; it reports whether it did.
// Used by blocked finish scopes to help instead of idling.
func (w *Worker) RunOne() bool {
	t := w.findTask()
	if t == nil {
		return false
	}
	t(w)
	return true
}

func (w *Worker) run() {
	defer w.pool.wg.Done()
	for {
		if t := w.findTask(); t != nil {
			t(w)
			continue
		}
		select {
		case t := <-w.pool.global:
			t(w)
		case <-w.pool.wake:
		case <-w.pool.done:
			// Drain whatever remains, then exit.
			for {
				t := w.findTask()
				if t == nil {
					return
				}
				t(w)
			}
		}
	}
}
