// Package coverage implements test-coverage analysis for the repair
// tool — the paper's §9 future-work item: "test coverage analysis to
// evaluate the suitability of a given set of test cases for program
// repair". A test input can only drive repairs for the code it actually
// executes; low async coverage warns that races may hide in unexecuted
// spawns.
package coverage

import (
	"fmt"

	"finishrepair/internal/dpst"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
)

// Coverage summarizes how much of the program one test input exercised.
type Coverage struct {
	// Asyncs/Finishes: static parallel constructs vs those executed at
	// least once.
	Asyncs, AsyncsRun     int
	Finishes, FinishesRun int
	// Stmts: top-level statement slots across all blocks vs those
	// covered by at least one step or construct instance.
	Stmts, StmtsRun int
	// Funcs: declared functions vs those entered.
	Funcs, FuncsRun int
}

// AsyncCoverage returns the fraction of async statements executed.
func (c Coverage) AsyncCoverage() float64 { return frac(c.AsyncsRun, c.Asyncs) }

// StmtCoverage returns the fraction of statements executed.
func (c Coverage) StmtCoverage() float64 { return frac(c.StmtsRun, c.Stmts) }

func frac(a, b int) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// String renders the summary.
func (c Coverage) String() string {
	return fmt.Sprintf("asyncs %d/%d, finishes %d/%d, statements %d/%d, functions %d/%d",
		c.AsyncsRun, c.Asyncs, c.FinishesRun, c.Finishes, c.StmtsRun, c.Stmts, c.FuncsRun, c.Funcs)
}

// Adequate reports whether the input suffices for repair confidence:
// every async statement must have executed (unexecuted spawns can hide
// races the repair cannot see).
func (c Coverage) Adequate() bool { return c.AsyncsRun == c.Asyncs }

// Measure runs the canonical instrumented execution and computes the
// coverage of the program under its built-in input.
func Measure(info *sem.Info) (Coverage, error) {
	// NoCollapse: maximal-step collapsing folds executed scopes into
	// coarse steps and would destroy coverage granularity.
	res, err := interp.Run(info, interp.Options{
		Mode:       interp.DepthFirst,
		Instrument: true,
		NoCollapse: true,
	})
	if err != nil {
		return Coverage{}, err
	}
	return fromTree(info.Prog, res.Tree), nil
}

func fromTree(prog *ast.Program, tree *dpst.Tree) Coverage {
	var c Coverage

	// Static totals.
	asyncSet := map[ast.Stmt]bool{}
	finishSet := map[ast.Stmt]bool{}
	ast.Inspect(prog, func(s ast.Stmt) {
		switch s.(type) {
		case *ast.AsyncStmt:
			asyncSet[s] = false
		case *ast.FinishStmt:
			finishSet[s] = false
		}
	})
	c.Asyncs = len(asyncSet)
	c.Finishes = len(finishSet)
	blockStmts := 0
	for _, b := range ast.Blocks(prog) {
		blockStmts += len(b.Stmts)
	}
	c.Stmts = blockStmts
	c.Funcs = len(prog.Funcs)

	// Dynamic marks from the S-DPST.
	type slot struct {
		block int
		idx   int
	}
	covered := map[slot]bool{}
	funcsRun := map[*ast.Block]bool{}
	tree.Walk(func(n *dpst.Node) {
		if n.Stmt != nil {
			switch n.Stmt.(type) {
			case *ast.AsyncStmt:
				asyncSet[n.Stmt] = true
			case *ast.FinishStmt:
				finishSet[n.Stmt] = true
			}
		}
		if n.Kind == dpst.Scope && n.Class == dpst.CallScope && n.Body != nil {
			funcsRun[n.Body] = true
		}
		if n.OwnerBlock != nil && n.StmtHi >= 0 {
			// A range starting at the loop-header pseudo-index (-1)
			// still covers the real statements it extended into.
			lo := n.StmtLo
			if lo < 0 {
				lo = 0
			}
			hi := n.StmtHi
			if hi >= len(n.OwnerBlock.Stmts) {
				hi = len(n.OwnerBlock.Stmts) - 1
			}
			for i := lo; i <= hi; i++ {
				covered[slot{n.OwnerBlock.ID, i}] = true
			}
		}
	})
	for _, run := range asyncSet {
		if run {
			c.AsyncsRun++
		}
	}
	for _, run := range finishSet {
		if run {
			c.FinishesRun++
		}
	}
	c.StmtsRun = len(covered)
	for _, fn := range prog.Funcs {
		if funcsRun[fn.Body] {
			c.FuncsRun++
		}
	}
	return c
}
