package coverage_test

import (
	"strings"
	"testing"

	"finishrepair/internal/coverage"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
)

func measure(t *testing.T, src string) coverage.Coverage {
	t.Helper()
	info := sem.MustCheck(parser.MustParse(src))
	c, err := coverage.Measure(info)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFullCoverage(t *testing.T) {
	c := measure(t, `
func main() {
    finish { async { println(1); } }
}
`)
	if !c.Adequate() || c.AsyncCoverage() != 1 || c.Asyncs != 1 || c.Finishes != 1 {
		t.Errorf("got %v", c)
	}
}

func TestDeadBranchReducesCoverage(t *testing.T) {
	c := measure(t, `
func unused(k int) { async { println(k); } }
func main() {
    var n = 1;
    if (n > 5) {
        async { println(n); }
    }
    println(n);
}
`)
	if c.Adequate() {
		t.Errorf("expected inadequate coverage, got %v", c)
	}
	if c.Asyncs != 2 || c.AsyncsRun != 0 {
		t.Errorf("async coverage %d/%d, want 0/2", c.AsyncsRun, c.Asyncs)
	}
	if c.FuncsRun >= c.Funcs {
		t.Errorf("unused function counted as run: %v", c)
	}
	if c.StmtCoverage() >= 1 {
		t.Error("statement coverage should be < 1 with a dead branch")
	}
	if !strings.Contains(c.String(), "asyncs 0/2") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestLoopBodiesCovered(t *testing.T) {
	c := measure(t, `
func main() {
    var s = 0;
    for (var i = 0; i < 3; i = i + 1) { s = s + i; }
    println(s);
}
`)
	if c.StmtsRun != c.Stmts {
		t.Errorf("loop statements not fully covered: %v", c)
	}
}
