package faults_test

import (
	"errors"
	"sync"
	"testing"

	"finishrepair/internal/faults"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	faults.Reset()
	for _, p := range faults.Points() {
		if err := faults.Inject(p); err != nil {
			t.Fatalf("disarmed %s returned %v", p, err)
		}
	}
}

func TestArmErrorFiresOnceOnNthHit(t *testing.T) {
	defer faults.Reset()
	boom := errors.New("boom")
	faults.ArmError(faults.Detect, 3, boom)
	for i := 1; i <= 2; i++ {
		if err := faults.Inject(faults.Detect); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := faults.Inject(faults.Detect); !errors.Is(err, boom) {
		t.Fatalf("hit 3 = %v, want %v", err, boom)
	}
	if err := faults.Inject(faults.Detect); err != nil {
		t.Fatalf("fault fired twice: %v", err)
	}
	if got := faults.Hits(faults.Detect); got != 4 {
		t.Fatalf("hits = %d, want 4", got)
	}
	// Other points stay disarmed.
	if err := faults.Inject(faults.Rewrite); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestArmPanic(t *testing.T) {
	defer faults.Reset()
	faults.ArmPanic(faults.Rewrite, 1, "kaboom")
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recover = %v, want kaboom", r)
		}
	}()
	_ = faults.Inject(faults.Rewrite)
	t.Fatal("Inject did not panic")
}

func TestRearmAfterHitsCountsFromNow(t *testing.T) {
	defer faults.Reset()
	faults.ArmError(faults.Parse, 1, errors.New("a"))
	if err := faults.Inject(faults.Parse); err == nil {
		t.Fatal("first arm did not fire")
	}
	// Re-arming for "next hit" must fire on the next hit even though the
	// counter is already at 1.
	faults.ArmError(faults.Parse, 1, errors.New("b"))
	if err := faults.Inject(faults.Parse); err == nil {
		t.Fatal("re-armed fault did not fire")
	}
}

func TestConcurrentInjectIsSafe(t *testing.T) {
	defer faults.Reset()
	faults.ArmError(faults.ParallelRun, 50, errors.New("x"))
	var wg sync.WaitGroup
	var fired sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := faults.Inject(faults.ParallelRun); err != nil {
					fired.Store(err.Error(), true)
				}
			}
		}()
	}
	wg.Wait()
	n := 0
	fired.Range(func(any, any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("fault fired %d distinct times, want exactly 1", n)
	}
}
