// Package faults is a deterministic fault-injection registry for the
// repair pipeline. Each pipeline phase calls Inject at a named point;
// in production nothing is armed and the call is one atomic load. Tests
// arm a point to return an error or to panic, then drive the public API
// and assert that the failure surfaces as a typed error identifying the
// phase — proving the panic-containment and error-taxonomy layers
// actually cover every phase.
//
// Injection is deterministic: an armed fault fires on the exact hit
// number it was armed for (first hit by default) and exactly once.
package faults

import (
	"fmt"
	"sync"
	"sync/atomic"

	"finishrepair/internal/obs"
)

// Injection point names, one (at least) per pipeline phase.
const (
	Parse         = "parse"
	SemCheck      = "sem-check"
	Detect        = "detect"
	TraceIO       = "trace-io"
	GroupNSLCA    = "group-nslca"
	DPPlace       = "dp-place"
	Rewrite       = "rewrite"
	SequentialRun = "sequential-run"
	ParallelRun   = "parallel-run"
)

// Points lists every registered injection point, for tests that sweep
// all phases.
func Points() []string {
	return []string{Parse, SemCheck, Detect, TraceIO, GroupNSLCA, DPPlace, Rewrite, SequentialRun, ParallelRun}
}

var mInjected = obs.Default().Counter("fault.injected")

type plan struct {
	fireAt int // hit number (1-based) on which to fire
	err    error
	panicV any // non-nil: panic with this value instead of returning err
	fired  bool
}

var (
	armed atomic.Bool // fast-path: any plan armed?
	mu    sync.Mutex
	plans map[string]*plan
	hits  map[string]int
)

// ArmError makes hit number n (1-based; n <= 1 means the next hit) of
// point return err from Inject, once.
func ArmError(point string, n int, err error) { arm(point, n, err, nil) }

// ArmPanic makes hit number n (1-based; n <= 1 means the next hit) of
// point panic with v, once.
func ArmPanic(point string, n int, v any) { arm(point, n, nil, v) }

func arm(point string, n int, err error, v any) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	if plans == nil {
		plans = make(map[string]*plan)
	}
	plans[point] = &plan{fireAt: hitsLocked(point) + n, err: err, panicV: v}
	armed.Store(true)
}

func hitsLocked(point string) int {
	if hits == nil {
		return 0
	}
	return hits[point]
}

// Reset disarms every point and clears hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	plans = nil
	hits = nil
	armed.Store(false)
}

// Hits returns how many times point has been reached since the last
// Reset while any fault was armed (hit counting is disabled on the
// production fast path).
func Hits(point string) int {
	mu.Lock()
	defer mu.Unlock()
	return hitsLocked(point)
}

// Inject is called by pipeline phases at their injection point. It
// returns the armed error, panics with the armed value, or returns nil.
// Safe from any goroutine (the parallel-run point fires inside tasks).
func Inject(point string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	if hits == nil {
		hits = make(map[string]int)
	}
	hits[point]++
	p := plans[point]
	if p == nil || p.fired || hits[point] != p.fireAt {
		mu.Unlock()
		return nil
	}
	p.fired = true
	mu.Unlock()
	mInjected.Inc()
	if p.panicV != nil {
		panic(p.panicV)
	}
	if p.err != nil {
		return fmt.Errorf("%s: injected fault: %w", point, p.err)
	}
	return nil
}
