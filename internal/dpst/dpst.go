// Package dpst implements the Scoped Dynamic Program Structure Tree
// (S-DPST) of the paper (Definition 2): an ordered rooted tree built
// during a sequential depth-first execution of an async/finish program.
// All leaves are step instances; interior nodes are async, finish, and
// scope instances. Scope nodes represent if statements, loop iterations,
// plain blocks, and function calls, and constrain where new finish nodes
// may be introduced.
//
// Every node carries the static coordinates used by static finish
// placement: the AST block that lexically contains the construct
// (OwnerBlock) and the range of statement indices it covers in that block
// (StmtLo..StmtHi). A step may cover several consecutive statements; a
// loop-header pseudo-step uses index -1.
package dpst

import (
	"fmt"
	"strings"

	"finishrepair/internal/lang/ast"
)

// Kind classifies S-DPST nodes.
type Kind int

// Node kinds.
const (
	Step Kind = iota
	Async
	Finish
	Scope
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Step:
		return "Step"
	case Async:
		return "Async"
	case Finish:
		return "Finish"
	default:
		return "Scope"
	}
}

// ScopeClass refines Scope nodes; it determines which finish placements
// are statically expressible.
type ScopeClass int

// Scope classes. LoopIter marks one iteration of a loop: a finish cannot
// enclose a proper subrange of sibling iterations.
const (
	NotScope ScopeClass = iota
	IfScope
	ElseScope
	LoopScope // the whole loop; children are LoopIter scopes
	LoopIter
	CallScope
	BlockScope
	IsoScope // body of an isolated statement (mutual exclusion region)
)

// Node is an S-DPST node.
type Node struct {
	ID       int // depth-first visit order, unique within a tree
	Kind     Kind
	Class    ScopeClass
	Label    string // diagnostic: function name, "if", "while", ...
	Parent   *Node
	Children []*Node
	Depth    int

	// Static coordinates: the node's construct occupies statements
	// StmtLo..StmtHi of OwnerBlock. For loop-header pseudo-steps StmtLo is
	// -1. OwnerBlock is nil for the root.
	OwnerBlock     *ast.Block
	StmtLo, StmtHi int

	// Body is the AST block whose statement instances this interior
	// node's children represent (function body for call scopes and async
	// bodies, branch block for if scopes, loop body for iteration scopes).
	Body *ast.Block

	// Stmt is the AST statement that created the node, when there is one
	// (the AsyncStmt, FinishStmt, IfStmt, loop statement, or call
	// statement). Nil for steps and the root.
	Stmt ast.Stmt

	// Work is the node's own cost in abstract work units (nonzero only
	// for steps); SubtreeWork aggregates the whole subtree and is filled
	// in by Tree.AggregateWork. IsoWork is the portion of Work performed
	// inside isolated bodies: it serializes against other isolated work
	// of an excluding lock class, so the critical path is at least the
	// largest per-class serialization sum. IsoClass is the lock class
	// that IsoWork serializes under (see ast.IsolatedStmt.LockClass):
	// class 0 is the global lock; steps merged from bodies of different
	// nonzero classes conservatively degrade to class 0.
	Work        int64
	SubtreeWork int64
	IsoWork     int64
	IsoClass    int

	// Forward is non-nil when this node was collapsed into a merged
	// maximal step; Resolve follows the chain to the live node.
	Forward *Node
}

// Resolve follows Forward pointers to the live node that absorbed n
// (n itself when it was never collapsed).
func (n *Node) Resolve() *Node {
	for n.Forward != nil {
		n = n.Forward
	}
	return n
}

// IsScope reports whether the node is a scope node.
func (n *Node) IsScope() bool { return n.Kind == Scope }

// StmtPos renders the source position ("line:col") of the first
// statement the node covers, or "" when unknown (the root, loop-header
// pseudo-steps).
func (n *Node) StmtPos() string {
	if n.OwnerBlock == nil || n.StmtLo < 0 || n.StmtLo >= len(n.OwnerBlock.Stmts) {
		return ""
	}
	return n.OwnerBlock.Stmts[n.StmtLo].Pos().String()
}

// Tree is an S-DPST under construction or completed.
type Tree struct {
	Root   *Node
	nextID int
	count  int
	// chunk is the tail of the node arena: nodes are handed out from
	// fixed-capacity chunks so construction costs one allocation per
	// nodeChunk nodes instead of one per node. Full chunks are abandoned
	// to their nodes (never re-appended), so node pointers stay stable.
	chunk []Node
}

// nodeChunk is the arena chunk size.
const nodeChunk = 512

func (t *Tree) alloc() *Node {
	if len(t.chunk) == cap(t.chunk) {
		t.chunk = make([]Node, 0, nodeChunk)
	}
	t.chunk = append(t.chunk, Node{})
	return &t.chunk[len(t.chunk)-1]
}

// NewTree creates a tree whose root is the implicit finish enclosing the
// whole program (the paper draws it as Async0's parent context; a finish
// root makes the main task's completion semantics explicit).
func NewTree() *Tree {
	t := &Tree{}
	t.Root = &Node{ID: 0, Kind: Finish, Label: "root"}
	t.nextID = 1
	t.count = 1
	return t
}

// NumNodes returns the number of live nodes in the tree.
func (t *Tree) NumNodes() int {
	n := 0
	t.Walk(func(*Node) { n++ })
	return n
}

// CollapseScope implements maximal steps (paper §3: a step is a MAXIMAL
// sequence of statement instances with no asyncs and finishes): when a
// scope instance closes and its subtree contains no async or finish —
// i.e. after recursive collapsing all its children are steps — the whole
// scope becomes a single step, merged into the preceding sibling step
// when one exists. All absorbed nodes get Forward pointers so that race
// records referencing them resolve to the merged step.
//
// It returns true if n was collapsed (n is then a step or detached).
func (t *Tree) CollapseScope(n *Node) bool {
	if n.Kind != Scope {
		return false
	}
	for _, c := range n.Children {
		if c.Kind != Step {
			return false
		}
	}
	// Convert n in place into a step holding the subtree's work.
	var work, isoWork int64
	isoClass := 0
	classKnown := true
	for _, c := range n.Children {
		work += c.Work
		if c.IsoWork > 0 {
			if isoWork > 0 && c.IsoClass != isoClass {
				classKnown = false // mixed classes degrade to global
			}
			isoClass = c.IsoClass
		}
		isoWork += c.IsoWork
		c.Forward = n
	}
	if !classKnown {
		isoClass = 0
	}
	if n.Class == IsoScope {
		// Entering the isolated region makes all the contained work
		// serialized, whether or not the steps inside tracked it, and
		// the region's own lock class governs it.
		isoWork = work
		isoClass = n.IsoClass
	}
	n.Kind = Step
	n.Class = NotScope
	n.Label = ""
	n.Children = nil
	n.Work = work
	n.IsoWork = isoWork
	n.IsoClass = isoClass
	n.Body = nil

	// Merge with the immediately preceding sibling when it is a step of
	// the same owner block (and not a loop-header pseudo-step being
	// polluted: header markers only matter inside loops that survive, in
	// which case this scope would not have collapsed).
	p := n.Parent
	if p == nil || len(p.Children) < 2 {
		return true
	}
	idx := len(p.Children) - 1
	if p.Children[idx] != n {
		// n is not the last child (should not happen during depth-first
		// construction); leave as converted step.
		return true
	}
	prev := p.Children[idx-1]
	if prev.Kind == Step && prev.OwnerBlock == n.OwnerBlock {
		switch {
		case prev.IsoWork == 0:
			prev.IsoClass = n.IsoClass
		case n.IsoWork > 0 && n.IsoClass != prev.IsoClass:
			prev.IsoClass = 0 // mixed classes degrade to the global lock
		}
		prev.Work += n.Work
		prev.IsoWork += n.IsoWork
		if n.StmtLo < prev.StmtLo {
			prev.StmtLo = n.StmtLo
		}
		if n.StmtHi > prev.StmtHi {
			prev.StmtHi = n.StmtHi
		}
		n.Forward = prev
		p.Children = p.Children[:idx]
	}
	return true
}

// NewChild appends a new node under parent and returns it. Children must
// be created in left-to-right (depth-first execution) order.
func (t *Tree) NewChild(parent *Node, kind Kind, class ScopeClass, label string) *Node {
	n := t.alloc()
	n.ID = t.nextID
	n.Kind = kind
	n.Class = class
	n.Label = label
	n.Parent = parent
	n.Depth = parent.Depth + 1
	n.StmtLo = -2
	n.StmtHi = -2
	t.nextID++
	t.count++
	parent.Children = append(parent.Children, n)
	return n
}

// LCA returns the least common ancestor of a and b.
func LCA(a, b *Node) *Node {
	for a.Depth > b.Depth {
		a = a.Parent
	}
	for b.Depth > a.Depth {
		b = b.Parent
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// NSLCA returns the non-scope least common ancestor of a and b
// (Definition 4): the first non-scope node on the path from LCA(a,b) to
// the root.
func NSLCA(a, b *Node) *Node {
	l := LCA(a, b)
	for l.IsScope() {
		l = l.Parent
	}
	return l
}

// NonScopeChildOn returns the non-scope child of ancestor n on the path
// down to descendant d (Definition 3): the deepest non-scope node c on
// the path such that all nodes strictly between c and n are scopes.
// It returns nil if d == n or d is not a proper descendant of n.
func NonScopeChildOn(n, d *Node) *Node {
	if d == n {
		return nil
	}
	var c *Node
	cur := d
	for cur != nil && cur != n {
		if !cur.IsScope() {
			c = cur
		}
		cur = cur.Parent
	}
	if cur != n {
		return nil
	}
	return c
}

// Parallel reports whether two distinct leaves (steps) may execute in
// parallel, per Theorem 1: with N the NS-LCA of s1 and s2 and A the
// ancestor of the DFS-earlier step that is the non-scope child of N, s1
// and s2 can execute in parallel iff A is an async node.
func Parallel(s1, s2 *Node) bool {
	if s1 == s2 {
		return false
	}
	left := s1
	if s2.ID < s1.ID {
		left = s2
	}
	n := NSLCA(s1, s2)
	a := NonScopeChildOn(n, left)
	return a != nil && a.Kind == Async
}

// NonScopeChildren returns the non-scope children of n in left-to-right
// order: non-scope descendants reachable from n through scope nodes only.
func NonScopeChildren(n *Node) []*Node {
	var out []*Node
	var visit func(c *Node)
	visit = func(c *Node) {
		if c.IsScope() {
			for _, g := range c.Children {
				visit(g)
			}
			return
		}
		out = append(out, c)
	}
	for _, c := range n.Children {
		visit(c)
	}
	return out
}

// AggregateWork computes SubtreeWork for every node.
func (t *Tree) AggregateWork() {
	var visit func(n *Node) int64
	visit = func(n *Node) int64 {
		w := n.Work
		for _, c := range n.Children {
			w += visit(c)
		}
		n.SubtreeWork = w
		return w
	}
	visit(t.Root)
}

// Walk visits every node in depth-first order.
func (t *Tree) Walk(f func(*Node)) {
	var visit func(n *Node)
	visit = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			visit(c)
		}
	}
	visit(t.Root)
}

// Validate checks structural invariants: leaves are steps, interior nodes
// are async/finish/scope, children are ordered by ID, depths and parent
// links are consistent. It returns the first violation found.
func (t *Tree) Validate() error {
	var check func(n *Node) error
	check = func(n *Node) error {
		if len(n.Children) == 0 && n.Kind != Step && n != t.Root {
			// Empty asyncs/finishes/scopes can occur (empty body); they
			// are permitted but must not be steps' parents.
			_ = n
		}
		if n.Kind == Step && len(n.Children) > 0 {
			return fmt.Errorf("dpst: step node %d has children", n.ID)
		}
		prev := -1
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("dpst: node %d has wrong parent link", c.ID)
			}
			if c.Depth != n.Depth+1 {
				return fmt.Errorf("dpst: node %d has wrong depth", c.ID)
			}
			if c.ID <= prev || c.ID <= n.ID {
				return fmt.Errorf("dpst: children of node %d not in DFS order", n.ID)
			}
			prev = c.ID
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(t.Root)
}

// String renders the node compactly.
func (n *Node) String() string {
	if n.Label != "" {
		return fmt.Sprintf("%s(%s):%d", n.Kind, n.Label, n.ID)
	}
	return fmt.Sprintf("%s:%d", n.Kind, n.ID)
}

// Dump renders the tree as an indented outline (for tests and debugging).
func (t *Tree) Dump() string {
	var sb strings.Builder
	var visit func(n *Node, indent int)
	visit = func(n *Node, indent int) {
		sb.WriteString(strings.Repeat("  ", indent))
		sb.WriteString(n.String())
		if n.Kind == Step && n.Work > 0 {
			fmt.Fprintf(&sb, " w=%d", n.Work)
		}
		sb.WriteByte('\n')
		for _, c := range n.Children {
			visit(c, indent+1)
		}
	}
	visit(t.Root, 0)
	return sb.String()
}

// DOT renders the tree in Graphviz format, with race edges if provided
// as (source, sink) pairs.
func (t *Tree) DOT(races [][2]*Node) string {
	var sb strings.Builder
	sb.WriteString("digraph sdpst {\n  node [shape=box];\n")
	t.Walk(func(n *Node) {
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, n.String())
		for _, c := range n.Children {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", n.ID, c.ID)
		}
	})
	for _, r := range races {
		fmt.Fprintf(&sb, "  n%d -> n%d [style=dotted, color=red];\n", r[0].ID, r[1].ID)
	}
	sb.WriteString("}\n")
	return sb.String()
}
