package dpst_test

import (
	"strings"
	"testing"

	"finishrepair/internal/dpst"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
)

// build constructs a small tree by hand:
//
//	root(Finish)
//	├── step s0
//	├── async a1
//	│   ├── scope sc (if)
//	│   │   └── step s1
//	│   └── step s2
//	└── step s3
func build() (t *dpst.Tree, s0, a1, sc, s1, s2, s3 *dpst.Node) {
	t = dpst.NewTree()
	s0 = t.NewChild(t.Root, dpst.Step, dpst.NotScope, "")
	a1 = t.NewChild(t.Root, dpst.Async, dpst.NotScope, "async")
	sc = t.NewChild(a1, dpst.Scope, dpst.IfScope, "if")
	s1 = t.NewChild(sc, dpst.Step, dpst.NotScope, "")
	s2 = t.NewChild(a1, dpst.Step, dpst.NotScope, "")
	s3 = t.NewChild(t.Root, dpst.Step, dpst.NotScope, "")
	return
}

func TestLCAAndNSLCA(t *testing.T) {
	tree, s0, a1, sc, s1, s2, s3 := build()
	if got := dpst.LCA(s1, s2); got != a1 {
		t.Errorf("LCA(s1,s2) = %v, want %v", got, a1)
	}
	if got := dpst.LCA(s1, s3); got != tree.Root {
		t.Errorf("LCA(s1,s3) = %v, want root", got)
	}
	if got := dpst.LCA(s1, s1); got != s1 {
		t.Errorf("LCA(s1,s1) = %v, want s1", got)
	}
	// NSLCA of two steps under the same scope skips the scope.
	sX := tree.NewChild(sc, dpst.Step, dpst.NotScope, "")
	if got := dpst.NSLCA(s1, sX); got != a1 {
		t.Errorf("NSLCA under scope = %v, want %v", got, a1)
	}
	if got := dpst.NSLCA(s0, s3); got != tree.Root {
		t.Errorf("NSLCA(s0,s3) = %v, want root", got)
	}
	_ = s2
}

func TestNonScopeChildOn(t *testing.T) {
	tree, _, a1, sc, s1, s2, s3 := build()
	if got := dpst.NonScopeChildOn(tree.Root, s1); got != a1 {
		t.Errorf("child of root towards s1 = %v, want %v", got, a1)
	}
	if got := dpst.NonScopeChildOn(a1, s1); got != s1 {
		t.Errorf("child of a1 towards s1 = %v, want s1 (through scope)", got)
	}
	if got := dpst.NonScopeChildOn(a1, a1); got != nil {
		t.Errorf("child towards self = %v, want nil", got)
	}
	_, _, _ = sc, s2, s3
}

func TestParallelTheorem1(t *testing.T) {
	_, s0, _, _, s1, s2, s3 := build()
	// s1 and s2 are both within a1: s1 under a scope, s2 the
	// continuation; the non-scope child of their NS-LCA (a1) on the s1
	// side is a step/scope chain — NOT an async — so they are ordered.
	if dpst.Parallel(s1, s2) {
		t.Error("s1 and s2 are sequential within the task")
	}
	// s1 (inside async a1) and s3 (after it in the root): parallel.
	if !dpst.Parallel(s1, s3) {
		t.Error("s1 and s3 should be parallel (a1 is an async)")
	}
	// s0 precedes the async: ordered with everything.
	if dpst.Parallel(s0, s1) || dpst.Parallel(s0, s3) {
		t.Error("s0 is ordered before all later steps")
	}
	// A step is not parallel with itself.
	if dpst.Parallel(s1, s1) {
		t.Error("step parallel with itself")
	}
	// Symmetry.
	if dpst.Parallel(s1, s3) != dpst.Parallel(s3, s1) {
		t.Error("Parallel is not symmetric")
	}
}

func TestNonScopeChildren(t *testing.T) {
	_, s0, a1, _, s1, s2, s3 := build()
	got := dpst.NonScopeChildren(a1)
	if len(got) != 2 || got[0] != s1 || got[1] != s2 {
		t.Errorf("non-scope children of a1 = %v, want [s1 s2]", got)
	}
	root := a1.Parent
	got = dpst.NonScopeChildren(root)
	if len(got) != 3 || got[0] != s0 || got[1] != a1 || got[2] != s3 {
		t.Errorf("non-scope children of root = %v", got)
	}
}

func TestValidateCatchesBrokenTrees(t *testing.T) {
	tree, _, a1, _, s1, _, _ := build()
	if err := tree.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	s1.Depth = 99
	if err := tree.Validate(); err == nil {
		t.Error("wrong depth not caught")
	}
	s1.Depth = s1.Parent.Depth + 1
	a1.Children = append(a1.Children, a1.Children[0]) // duplicate, out of order
	if err := tree.Validate(); err == nil {
		t.Error("out-of-order children not caught")
	}
}

func TestCollapseScope(t *testing.T) {
	tree := dpst.NewTree()
	s0 := tree.NewChild(tree.Root, dpst.Step, dpst.NotScope, "")
	s0.Work = 3
	sc := tree.NewChild(tree.Root, dpst.Scope, dpst.LoopScope, "for")
	in1 := tree.NewChild(sc, dpst.Step, dpst.NotScope, "")
	in1.Work = 5
	in2 := tree.NewChild(sc, dpst.Step, dpst.NotScope, "")
	in2.Work = 7

	if !tree.CollapseScope(sc) {
		t.Fatal("collapse refused")
	}
	// sc merged into s0 (same nil owner block): root has one step child
	// with the combined work.
	if len(tree.Root.Children) != 1 {
		t.Fatalf("root has %d children, want 1", len(tree.Root.Children))
	}
	merged := tree.Root.Children[0]
	if merged != s0 || merged.Work != 15 {
		t.Errorf("merged step = %v work %d, want s0 with work 15", merged, merged.Work)
	}
	// Forwarding resolves the absorbed nodes to the merged step.
	for _, n := range []*dpst.Node{sc, in1, in2} {
		if n.Resolve() != merged {
			t.Errorf("%v resolves to %v, want %v", n, n.Resolve(), merged)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("collapsed tree invalid: %v", err)
	}
}

func TestCollapseRefusesTaskSubtrees(t *testing.T) {
	tree := dpst.NewTree()
	sc := tree.NewChild(tree.Root, dpst.Scope, dpst.IfScope, "if")
	tree.NewChild(sc, dpst.Async, dpst.NotScope, "async")
	if tree.CollapseScope(sc) {
		t.Error("collapsed a scope containing an async")
	}
	if tree.CollapseScope(tree.Root) {
		t.Error("collapsed a non-scope node")
	}
}

func TestDumpAndDOT(t *testing.T) {
	tree, _, _, _, s1, _, s3 := build()
	d := tree.Dump()
	for _, want := range []string{"Finish(root):0", "Async(async)", "Scope(if)"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	dot := tree.DOT([][2]*dpst.Node{{s1, s3}})
	if !strings.Contains(dot, "style=dotted") {
		t.Error("DOT missing race edge")
	}
	if !strings.Contains(dot, "digraph") {
		t.Error("DOT missing header")
	}
}

// Property: on generated programs, trees built by the instrumented
// interpreter always validate, and DFS IDs strictly increase left to
// right.
func TestGeneratedTreesValidate(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		prog := parser.MustParse(progen.Gen(seed, progen.Default()))
		info := sem.MustCheck(prog)
		res, err := interp.Run(info, interp.Options{Mode: interp.DepthFirst, Instrument: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Tree.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Leaves are steps; interior nodes are not.
		res.Tree.Walk(func(n *dpst.Node) {
			if n.Kind == dpst.Step && len(n.Children) > 0 {
				t.Fatalf("seed %d: step %v has children", seed, n)
			}
		})
	}
}
