// Package adversary is the deterministic adversarial scheduler for the
// task-parallel interpreter: it drives parinterp's controlled mode,
// deciding at every yield point (shared-memory access, async spawn,
// print) which logical task runs next.
//
// Three capabilities build on the controller (the robustness layer of
// ROADMAP item 3):
//
//   - witness generation (FindWitness): replay a reported race pair
//     under race-directed schedules until the program observably
//     diverges from the serial oracle — a concrete torn-value or
//     wrong-output witness instead of an abstract race report;
//   - adversarial verification (Verify): re-execute a repaired program
//     under K schedules (race-directed + seeded random-priority) and
//     fail if any interleaving diverges from the oracle;
//   - coverage-gap search (SearchGap): drive the static analyzer's
//     unexercised race candidates with position-directed schedules to
//     either find a dynamic witness or report the pair
//     schedule-unreachable for this input.
//
// All scheduling is token-based: exactly one task runs at a time and
// handoff happens through channels, so even HJ-level-racy programs
// execute without Go-level data races (the controlled-scheduling
// technique of execution-replay systems, cf. Ronsse–De Bosschere).
package adversary

import (
	"fmt"
	"math/rand"
	"sync"

	"finishrepair/internal/guard"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
	"finishrepair/internal/obs"
	"finishrepair/internal/parinterp"
)

// Adversary metrics (registered in the obs KnownMetrics manifest).
var (
	mSchedulesRun     = obs.Default().Counter("adversary.schedules_run")
	mWitnessesFound   = obs.Default().Counter("adversary.witnesses_found")
	mYields           = obs.Default().Counter("adversary.yields")
	mGapSearches      = obs.Default().Counter("adversary.gap_searches")
	mWitnessNs        = obs.Default().Histogram("adversary.witness_ns")
	mVerifyScheduleNs = obs.Default().Histogram("adversary.verify_schedule_ns")
)

// DefaultMaxYields bounds the yield points of one controlled run — the
// livelock guard for pathological schedules. Each interpreter op yields
// at most a handful of times, so this comfortably covers every bundled
// program while stopping runaway interleavings.
const DefaultMaxYields = 1 << 21

// YieldLimitError reports that one schedule exceeded its yield bound.
// It fails that schedule (a divergence-grade outcome), not the whole
// search — unlike a pipeline budget trip, which aborts the search.
type YieldLimitError struct{ Limit int64 }

// Error implements the error interface.
func (e *YieldLimitError) Error() string {
	return fmt.Sprintf("schedule exceeded %d yield points", e.Limit)
}

// RunOptions configures one controlled run.
type RunOptions struct {
	// Meter charges one op per yield against the shared pipeline budget;
	// budget and cancellation errors abort the whole schedule search.
	Meter *guard.Meter
	// MaxYields bounds this run's yield points (0 = DefaultMaxYields).
	MaxYields int64
	// Watch lists source positions whose reachability the run records:
	// Outcome.Reached[i] is true iff a shared access at Watch[i] yielded.
	Watch []token.Pos
}

// Outcome is the observable result of one controlled run.
type Outcome struct {
	Schedule Schedule
	Output   string
	State    string // rendered final globals (interp.RenderState)
	// Err is the program-level failure of this schedule (runtime error,
	// yield-limit trip), nil for a clean run. Divergence is judged on
	// Output, State, and Err against the oracle.
	Err error
	// Yields counts yield points; Grants token grants; Trace is the
	// FNV-1a digest of the grant sequence (the schedule's decision
	// fingerprint, equal across replays of the same Schedule).
	Yields int64
	Grants int64
	Trace  uint64
	// Reached mirrors RunOptions.Watch.
	Reached []bool
}

// Run executes the program under one controlled schedule. Program-level
// failures (runtime faults, yield-limit trips) land in Outcome.Err;
// only pipeline-level failures (budget exhaustion, cancellation) are
// returned as the second value and should abort the enclosing search.
func Run(info *sem.Info, sched Schedule, opts RunOptions) (*Outcome, error) {
	maxYields := opts.MaxYields
	if maxYields == 0 {
		maxYields = DefaultMaxYields
	}
	ctl := &controller{
		sched:     sched,
		rng:       rand.New(rand.NewSource(sched.Seed)),
		running:   -1,
		meter:     opts.Meter,
		maxYields: maxYields,
		abortCh:   make(chan struct{}),
		watch:     opts.Watch,
		reached:   make([]bool, len(opts.Watch)),
	}
	mSchedulesRun.Inc()
	res, err := parinterp.Run(info, parinterp.Options{Controller: ctl, Meter: opts.Meter})
	out := &Outcome{
		Schedule: sched,
		Yields:   ctl.yields,
		Grants:   ctl.grants,
		Trace:    ctl.trace,
		Reached:  ctl.reached,
	}
	mYields.Add(ctl.yields)
	if ctl.err != nil {
		// A controller invariant broke (e.g. a blocked task set with no
		// runnable task): an internal error, not a schedule outcome.
		return nil, ctl.err
	}
	if err != nil {
		if guard.IsBudgetOrCanceled(err) {
			return nil, err
		}
		out.Err = err
		return out, nil
	}
	out.Output = res.Output
	out.State = res.State
	return out, nil
}

// taskState is a controlled task's scheduling state.
type taskState uint8

const (
	tReady taskState = iota
	tRunning
	tBlocked  // waiting in FinishWait
	tDeferred // yielded at a point the schedule defers
	tDone
)

type task struct {
	id     int
	state  taskState
	gate   chan struct{} // buffered(1): a grant may precede Begin
	attach int           // finish scope this task's completion is charged to (-1: none)
	open   []int         // finish scopes opened by this task, innermost last
	// pending is the yield point the task is stopped at (valid while
	// ready-after-yield or deferred).
	pending    parinterp.Point
	hasPending bool
}

type scope struct {
	owner   int
	live    int
	waiting bool // owner is blocked in FinishWait on this scope
}

// controller implements parinterp.Controller: a single-token
// cooperative scheduler whose every decision comes from the Schedule.
// All state is mutex-guarded; blocking happens on per-task gate
// channels outside the lock.
type controller struct {
	mu       sync.Mutex
	sched    Schedule
	rng      *rand.Rand
	tasks    []*task
	scopes   []*scope
	ready    []int // schedulable task ids, insertion order
	deferred []int // tasks parked by the defer policy, FIFO
	running  int   // token holder (-1: free)
	live     int   // registered and not yet ended

	meter     *guard.Meter
	yields    int64
	maxYields int64
	grants    int64
	trace     uint64

	aborted bool
	abortCh chan struct{}
	err     error // controller-invariant failure (deadlock)

	watch   []token.Pos
	reached []bool
}

// fnv-1a over the grant sequence.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	if h == 0 {
		h = fnvOffset
	}
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// Register allocates a task attached to the parent's innermost finish
// scope and makes it schedulable immediately — before its goroutine
// starts — so schedules cannot depend on goroutine startup timing.
func (c *controller) Register(parent int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := len(c.tasks)
	t := &task{id: id, gate: make(chan struct{}, 1), attach: -1}
	if parent >= 0 {
		p := c.tasks[parent]
		if n := len(p.open); n > 0 {
			t.attach = p.open[n-1]
		} else {
			t.attach = p.attach
		}
	}
	if t.attach >= 0 {
		c.scopes[t.attach].live++
	}
	c.tasks = append(c.tasks, t)
	c.live++
	c.ready = append(c.ready, id)
	return id
}

// Begin blocks the task's goroutine until its first grant.
func (c *controller) Begin(id int) {
	c.mu.Lock()
	t := c.tasks[id]
	if c.running == -1 && !c.aborted {
		// Only the root task can find the token free at Begin.
		c.schedule()
	}
	c.mu.Unlock()
	c.await(t)
}

// Yield parks the task at point p, lets the schedule pick a successor,
// and returns when the task is granted again.
func (c *controller) Yield(id int, p parinterp.Point) {
	c.mu.Lock()
	if c.aborted {
		c.mu.Unlock()
		panic(parinterp.Aborted{})
	}
	c.yields++
	if c.yields > c.maxYields {
		c.mu.Unlock()
		panic(guard.Bail{Err: &YieldLimitError{Limit: c.maxYields}})
	}
	if err := c.meter.AddOps(1); err != nil {
		c.mu.Unlock()
		panic(guard.Bail{Err: err})
	}
	for i, w := range c.watch {
		if p.Pos == w && (p.Op == parinterp.OpRead || p.Op == parinterp.OpWrite) {
			c.reached[i] = true
		}
	}
	t := c.tasks[id]
	t.pending, t.hasPending = p, true
	if c.sched.defers(p) {
		t.state = tDeferred
		c.deferred = append(c.deferred, id)
	} else {
		t.state = tReady
		c.ready = append(c.ready, id)
	}
	c.running = -1
	c.schedule()
	c.mu.Unlock()
	c.await(t)
}

// FinishEnter opens a finish scope owned by the calling task.
func (c *controller) FinishEnter(id int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := len(c.scopes)
	c.scopes = append(c.scopes, &scope{owner: id})
	c.tasks[id].open = append(c.tasks[id].open, s)
	return s
}

// FinishWait blocks until every task registered in the scope has ended.
// When the scope is already empty the task keeps the token and returns
// without a scheduling decision (matching the cost model: an empty
// finish is free).
func (c *controller) FinishWait(id int, sid int) {
	c.mu.Lock()
	if c.aborted {
		c.mu.Unlock()
		panic(parinterp.Aborted{})
	}
	t := c.tasks[id]
	t.open = t.open[:len(t.open)-1]
	s := c.scopes[sid]
	if s.live == 0 {
		c.mu.Unlock()
		return
	}
	s.waiting = true
	t.state = tBlocked
	t.hasPending = false
	c.running = -1
	c.schedule()
	c.mu.Unlock()
	c.await(t)
}

// End retires the task, credits its finish scope (waking the scope's
// owner when it empties), and — on normal completion — releases the
// token. failed aborts the run: every blocked task is woken into an
// Aborted panic. End never blocks.
func (c *controller) End(id int, failed bool) {
	c.mu.Lock()
	t := c.tasks[id]
	t.state = tDone
	c.live--
	if t.attach >= 0 {
		s := c.scopes[t.attach]
		s.live--
		if s.live == 0 && s.waiting {
			s.waiting = false
			owner := c.tasks[s.owner]
			owner.state = tReady
			c.ready = append(c.ready, owner.id)
		}
	}
	if failed {
		c.abort()
	}
	if !c.aborted && c.running == id {
		c.running = -1
		c.schedule()
	}
	c.mu.Unlock()
}

// abort (mu held) stops all scheduling and wakes every blocked task.
func (c *controller) abort() {
	if c.aborted {
		return
	}
	c.aborted = true
	close(c.abortCh)
}

// schedule (mu held) grants the token to the schedule's pick. With no
// ready task it promotes the longest-deferred one (the livelock
// fallback: a directed schedule may not stall the program forever).
func (c *controller) schedule() {
	if c.aborted || c.running != -1 {
		return
	}
	if len(c.ready) == 0 && len(c.deferred) > 0 {
		id := c.deferred[0]
		c.deferred = c.deferred[1:]
		c.tasks[id].state = tReady
		c.ready = append(c.ready, id)
	}
	if len(c.ready) == 0 {
		if c.live > 0 {
			// Structured async/finish programs always have a runnable
			// task while any is live; getting here is a controller bug.
			c.err = fmt.Errorf("adversary: schedule deadlock with %d live task(s)", c.live)
			c.abort()
		}
		return
	}
	i := c.pick()
	id := c.ready[i]
	c.ready = append(c.ready[:i], c.ready[i+1:]...)
	t := c.tasks[id]
	t.state = tRunning
	t.hasPending = false
	c.running = id
	c.grants++
	c.trace = fnvMix(c.trace, uint64(id))
	t.gate <- struct{}{}
}

// pick (mu held) chooses the index into ready per the policy. The
// directed defer policies use the depth-first base order; only
// RandomPriority consumes the rng.
func (c *controller) pick() int {
	if c.sched.Policy == RandomPriority {
		return c.rng.Intn(len(c.ready))
	}
	best := 0
	for i, id := range c.ready {
		if id > c.ready[best] {
			best = i
		}
	}
	return best
}

// await blocks until the task is granted or the run aborts.
func (c *controller) await(t *task) {
	select {
	case <-t.gate:
	case <-c.abortCh:
		panic(parinterp.Aborted{})
	}
}
