package adversary

import (
	"fmt"
	"time"

	"finishrepair/internal/guard"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
)

// Oracle runs the canonical sequential depth-first execution — the
// semantics every schedule of a race-free program must reproduce — and
// returns its output and rendered final global state.
func Oracle(info *sem.Info, meter *guard.Meter) (*Outcome, error) {
	res, err := interp.Run(info, interp.Options{Mode: interp.DepthFirst, Meter: meter})
	if err != nil {
		if guard.IsBudgetOrCanceled(err) {
			return nil, err
		}
		return &Outcome{Schedule: Schedule{Policy: DepthFirst}, Err: err}, nil
	}
	return &Outcome{
		Schedule: Schedule{Policy: DepthFirst},
		Output:   res.Output,
		State:    interp.RenderState(info, res.Globals),
	}, nil
}

// Diverges compares a controlled outcome against the oracle and, when
// they disagree, says how.
func Diverges(oracle, o *Outcome) (bool, string) {
	if o.Err != nil {
		return true, fmt.Sprintf("schedule failed: %v", o.Err)
	}
	if o.Output != oracle.Output {
		return true, "output differs"
	}
	if o.State != oracle.State {
		return true, "final state differs"
	}
	return false, ""
}

// RaceTarget identifies one reported race for the witness search: the
// shared location the race-directed schedules aim at, plus the report's
// kind and positions for attribution.
type RaceTarget struct {
	Loc            uint64
	Kind           string // "W->W", "R->W", "W->R"
	SrcPos, DstPos string
}

// String renders the target as in race reports.
func (t RaceTarget) String() string {
	return fmt.Sprintf("%s on loc %d (%s vs %s)", t.Kind, t.Loc, t.SrcPos, t.DstPos)
}

// Witness is a reproduced race: a deterministic schedule under which
// the program observably diverges from the serial oracle, with the
// evidence (expected vs actual output and final state).
type Witness struct {
	Target   RaceTarget
	Schedule Schedule
	Reason   string // "output differs", "final state differs", "schedule failed: ..."
	Expected string // oracle output
	Actual   string // schedule output ("" when the schedule failed)
	// ExpectedState/ActualState are the rendered final globals — the
	// torn value itself when the divergence never reaches the output.
	ExpectedState, ActualState string
	// Err is the schedule's runtime failure, when that is the evidence.
	Err error
	// Yields and Trace fingerprint the replay (same schedule, same
	// program => same trace digest).
	Yields int64
	Trace  uint64
}

// SearchOptions bounds a witness/verify/gap search.
type SearchOptions struct {
	// Meter charges every schedule's yields to the pipeline budget;
	// budget/cancellation aborts the search with a typed error.
	Meter *guard.Meter
	// Seed bases the seeded random-priority schedules.
	Seed int64
	// RandomSchedules is how many seeded random schedules follow the
	// directed ones (0 = DefaultRandomSchedules).
	RandomSchedules int
	// MaxYields bounds each schedule run (0 = DefaultMaxYields).
	MaxYields int64
}

// DefaultRandomSchedules is the random-priority fallback depth of the
// witness search, after the two race-directed schedules.
const DefaultRandomSchedules = 16

func (o SearchOptions) randoms() int {
	if o.RandomSchedules == 0 {
		return DefaultRandomSchedules
	}
	return o.RandomSchedules
}

// FindWitness searches for a deterministic witness of one reported
// race: first the two race-directed schedules on the racing location,
// then seeded random-priority schedules. The first schedule that makes
// the program diverge from the serial oracle becomes the witness. A
// (nil, nil) return means no tried schedule diverged.
func FindWitness(info *sem.Info, oracle *Outcome, target RaceTarget, opts SearchOptions) (*Witness, error) {
	start := time.Now()
	defer func() { mWitnessNs.Observe(time.Since(start).Nanoseconds()) }()
	scheds := RaceDirected(target.Loc)
	for i := 0; i < opts.randoms(); i++ {
		scheds = append(scheds, Schedule{Policy: RandomPriority, Seed: opts.Seed + int64(i)})
	}
	for _, s := range scheds {
		out, err := Run(info, s, RunOptions{Meter: opts.Meter, MaxYields: opts.MaxYields})
		if err != nil {
			return nil, err
		}
		if div, reason := Diverges(oracle, out); div {
			mWitnessesFound.Inc()
			return &Witness{
				Target:        target,
				Schedule:      s,
				Reason:        reason,
				Expected:      oracle.Output,
				Actual:        out.Output,
				ExpectedState: oracle.State,
				ActualState:   out.State,
				Err:           out.Err,
				Yields:        out.Yields,
				Trace:         out.Trace,
			}, nil
		}
	}
	return nil, nil
}

// ScheduleResult is one verify schedule's verdict.
type ScheduleResult struct {
	Schedule Schedule
	Diverged bool
	Reason   string
	Ns       int64
}

// VerifyReport summarizes an adversarial verification run.
type VerifyReport struct {
	Schedules []ScheduleResult
	Failures  int
	// First is the first divergence, as a witness without a race target.
	First *Witness
}

// VerifySchedules builds the K-schedule verification suite: the
// race-directed schedules for every target location (the interleavings
// that broke the program before repair), then seeded random-priority
// schedules up to k total.
func VerifySchedules(locs []uint64, k int, seed int64) []Schedule {
	var scheds []Schedule
	for _, loc := range locs {
		scheds = append(scheds, RaceDirected(loc)...)
	}
	if len(scheds) > k {
		scheds = scheds[:k]
	}
	for i := 0; len(scheds) < k; i++ {
		scheds = append(scheds, Schedule{Policy: RandomPriority, Seed: seed + int64(i)})
	}
	return scheds
}

// Verify re-executes the program under every schedule and compares each
// against the serial oracle. All schedules run even after a failure, so
// the report shows the full divergence surface.
func Verify(info *sem.Info, oracle *Outcome, scheds []Schedule, opts SearchOptions) (*VerifyReport, error) {
	rep := &VerifyReport{}
	for _, s := range scheds {
		t0 := time.Now()
		out, err := Run(info, s, RunOptions{Meter: opts.Meter, MaxYields: opts.MaxYields})
		ns := time.Since(t0).Nanoseconds()
		mVerifyScheduleNs.Observe(ns)
		if err != nil {
			return nil, err
		}
		div, reason := Diverges(oracle, out)
		rep.Schedules = append(rep.Schedules, ScheduleResult{Schedule: s, Diverged: div, Reason: reason, Ns: ns})
		if div {
			rep.Failures++
			if rep.First == nil {
				rep.First = &Witness{
					Schedule:      s,
					Reason:        reason,
					Expected:      oracle.Output,
					Actual:        out.Output,
					ExpectedState: oracle.State,
					ActualState:   out.State,
					Err:           out.Err,
					Yields:        out.Yields,
					Trace:         out.Trace,
				}
			}
		}
	}
	return rep, nil
}

// Gap-search verdicts.
const (
	// GapWitnessed: a schedule directed at the candidate's positions made
	// the program diverge — the gap is a real, dynamically reachable race
	// the test-driven repair did not cover.
	GapWitnessed = "witnessed"
	// GapUnreachable: no tried schedule ever executed one (or both) of
	// the candidate's statements — the pair is schedule-unreachable for
	// this input; only a different input could drive it.
	GapUnreachable = "unreachable"
	// GapNoDivergence: both statements executed under the tried
	// schedules but no interleaving misbehaved.
	GapNoDivergence = "no-divergence"
)

// GapTarget is one static race candidate to drive with schedule search.
type GapTarget struct {
	APos, BPos token.Pos
	Desc       string // rendered candidate, for reports
}

// GapResult is the verdict of a coverage-gap schedule search.
type GapResult struct {
	Target  GapTarget
	Status  string // GapWitnessed | GapUnreachable | GapNoDivergence
	Witness *Witness
	// ReachedA/ReachedB record whether any schedule executed a shared
	// access at the candidate's positions.
	ReachedA, ReachedB bool
}

// SearchGap drives one unexercised static race candidate with
// position-directed schedules (defer accesses at each endpoint) plus
// seeded random-priority schedules, watching whether the candidate's
// statements execute at all. Run it on the REPAIRED program: the
// covered races are already fixed there, so any divergence is
// attributable to uncovered candidates.
func SearchGap(info *sem.Info, oracle *Outcome, target GapTarget, opts SearchOptions) (*GapResult, error) {
	mGapSearches.Inc()
	scheds := []Schedule{
		{Policy: DeferPos, Pos: target.APos},
		{Policy: DeferPos, Pos: target.BPos},
	}
	for i := 0; i < opts.randoms(); i++ {
		scheds = append(scheds, Schedule{Policy: RandomPriority, Seed: opts.Seed + int64(i)})
	}
	res := &GapResult{Target: target, Status: GapNoDivergence}
	watch := []token.Pos{target.APos, target.BPos}
	for _, s := range scheds {
		out, err := Run(info, s, RunOptions{Meter: opts.Meter, MaxYields: opts.MaxYields, Watch: watch})
		if err != nil {
			return nil, err
		}
		res.ReachedA = res.ReachedA || out.Reached[0]
		res.ReachedB = res.ReachedB || out.Reached[1]
		if div, reason := Diverges(oracle, out); div {
			mWitnessesFound.Inc()
			res.Status = GapWitnessed
			res.Witness = &Witness{
				Schedule:      s,
				Reason:        reason,
				Expected:      oracle.Output,
				Actual:        out.Output,
				ExpectedState: oracle.State,
				ActualState:   out.State,
				Err:           out.Err,
				Yields:        out.Yields,
				Trace:         out.Trace,
			}
			return res, nil
		}
	}
	if !res.ReachedA || !res.ReachedB {
		res.Status = GapUnreachable
	}
	return res, nil
}
