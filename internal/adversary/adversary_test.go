package adversary

import (
	"context"
	"errors"
	"testing"

	"finishrepair/internal/bench"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
)

func check(t *testing.T, src string) *sem.Info {
	t.Helper()
	prog := parser.MustParse(src)
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem.Check: %v", err)
	}
	return info
}

// counterSrc is the canonical lost-update program: two asyncs increment
// a shared counter inside one finish. Sequential output "2"; the
// defer-write schedule tears both read-modify-writes to produce "1".
const counterSrc = `
var count = 0;
func main() {
    finish {
        async { count = count + 1; }
        async { count = count + 1; }
    }
    println(count);
}
`

// repairedCounterSrc serializes the increments: race-free, so every
// schedule must agree with the oracle.
const repairedCounterSrc = `
var count = 0;
func main() {
    finish {
        finish { async { count = count + 1; } }
        async { count = count + 1; }
    }
    println(count);
}
`

// writeReadSrc is a W->R race: main reads the flag before the async's
// write is joined. Sequentially (depth-first) the async runs first and
// the read sees 1; deferring the write lets the read see 0.
const writeReadSrc = `
var flag = 0;
func main() {
    async { flag = 1; }
    println(flag);
}
`

func TestDepthFirstMatchesOracle(t *testing.T) {
	srcs := map[string]string{
		"counter":          counterSrc,
		"repaired-counter": repairedCounterSrc,
		"write-read":       writeReadSrc,
	}
	for _, b := range bench.All() {
		// Small inputs: controlled runs serialize every access.
		srcs["bench/"+b.Name] = b.Src(minInt(b.RepairSize, 12))
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			info := check(t, src)
			oracle, err := Oracle(info, nil)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			out, err := Run(info, Schedule{Policy: DepthFirst}, RunOptions{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if div, reason := Diverges(oracle, out); div {
				t.Fatalf("depth-first controlled run diverges from oracle: %s\noracle output %q state %q\nrun output %q state %q err %v",
					reason, oracle.Output, oracle.State, out.Output, out.State, out.Err)
			}
		})
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRandomScheduleDeterminism(t *testing.T) {
	info := check(t, counterSrc)
	for seed := int64(0); seed < 4; seed++ {
		a, err := Run(info, Schedule{Policy: RandomPriority, Seed: seed}, RunOptions{})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		b, err := Run(info, Schedule{Policy: RandomPriority, Seed: seed}, RunOptions{})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if a.Output != b.Output || a.State != b.State || a.Trace != b.Trace || a.Yields != b.Yields {
			t.Fatalf("seed %d not deterministic: (%q,%q,%x,%d) vs (%q,%q,%x,%d)",
				seed, a.Output, a.State, a.Trace, a.Yields, b.Output, b.State, b.Trace, b.Yields)
		}
	}
}

func TestCounterLostUpdateWitness(t *testing.T) {
	info := check(t, counterSrc)
	oracle, err := Oracle(info, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if oracle.Output != "2\n" {
		t.Fatalf("oracle output = %q, want 2", oracle.Output)
	}
	// count is global slot 0 => loc 1.
	w, err := FindWitness(info, oracle, RaceTarget{Loc: 1, Kind: "W->W"}, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatalf("FindWitness: %v", err)
	}
	if w == nil {
		t.Fatal("no witness found for the counter lost update")
	}
	if w.Schedule.Policy != DeferWrite {
		t.Errorf("witness schedule = %v, want the defer-write directed schedule", w.Schedule)
	}
	if w.Actual != "1\n" {
		t.Errorf("witness output = %q, want the lost update 1", w.Actual)
	}
	// Witness replays: the same schedule reproduces the same divergence.
	again, err := Run(info, w.Schedule, RunOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if again.Output != w.Actual || again.Trace != w.Trace {
		t.Errorf("replay differs: output %q trace %x, witness %q %x", again.Output, again.Trace, w.Actual, w.Trace)
	}
}

func TestWriteReadWitness(t *testing.T) {
	info := check(t, writeReadSrc)
	oracle, err := Oracle(info, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	w, err := FindWitness(info, oracle, RaceTarget{Loc: 1, Kind: "W->R"}, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatalf("FindWitness: %v", err)
	}
	if w == nil {
		t.Fatal("no witness found for the W->R race")
	}
	if w.Actual == oracle.Output {
		t.Errorf("witness output %q equals oracle output", w.Actual)
	}
}

func TestVerifyRaceFree(t *testing.T) {
	info := check(t, repairedCounterSrc)
	oracle, err := Oracle(info, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	scheds := VerifySchedules([]uint64{1}, 16, 1)
	if len(scheds) != 16 {
		t.Fatalf("VerifySchedules built %d schedules, want 16", len(scheds))
	}
	rep, err := Verify(info, oracle, scheds, SearchOptions{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Failures != 0 {
		t.Fatalf("race-free program failed %d/%d schedules; first: %+v", rep.Failures, len(rep.Schedules), rep.First)
	}
}

func TestVerifyCatchesRacyProgram(t *testing.T) {
	info := check(t, counterSrc)
	oracle, err := Oracle(info, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	rep, err := Verify(info, oracle, VerifySchedules([]uint64{1}, 16, 1), SearchOptions{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Failures == 0 {
		t.Fatal("adversarial verify passed a racy program")
	}
	if rep.First == nil {
		t.Fatal("no first divergence recorded")
	}
}

func TestSearchGapUnreachable(t *testing.T) {
	// The repaired form of examples/hj/unexercised.hj: the first writer
	// is fenced, the second is gated on a threshold this input never
	// reaches — its statement position must be schedule-unreachable.
	src := `
var x = 0;
var limit = 3;
func main() {
    finish { async { x = x + 1; } }
    if (limit > 10) {
        async { x = x + 2; }
    }
    println(x);
}
`
	prog := parser.MustParse(src)
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem.Check: %v", err)
	}
	// Find the positions of the two writer statements.
	var aPos, bPos token.Pos
	ast.Inspect(prog, func(s ast.Stmt) {
		if as, ok := s.(*ast.AssignStmt); ok {
			if as.Pos().Line == 5 {
				aPos = as.Pos()
			}
			if as.Pos().Line == 7 {
				bPos = as.Pos()
			}
		}
	})
	if aPos == (token.Pos{}) || bPos == (token.Pos{}) {
		t.Fatalf("did not locate writer statements (a=%v b=%v)", aPos, bPos)
	}
	oracle, err := Oracle(info, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	res, err := SearchGap(info, oracle, GapTarget{APos: aPos, BPos: bPos}, SearchOptions{Seed: 1, RandomSchedules: 4})
	if err != nil {
		t.Fatalf("SearchGap: %v", err)
	}
	if res.Status != GapUnreachable {
		t.Fatalf("gap status = %q (reachedA=%v reachedB=%v), want unreachable", res.Status, res.ReachedA, res.ReachedB)
	}
	if !res.ReachedA || res.ReachedB {
		t.Errorf("reachability: a=%v b=%v, want a reached and b not", res.ReachedA, res.ReachedB)
	}
}

func TestYieldLimitTripsSchedule(t *testing.T) {
	src := `
var x = 0;
func main() {
    var i = 0;
    while (i < 100000) {
        x = x + 1;
        i = i + 1;
    }
}
`
	info := check(t, src)
	out, err := Run(info, Schedule{Policy: DepthFirst}, RunOptions{MaxYields: 100})
	if err != nil {
		t.Fatalf("yield-limit trip must be a schedule outcome, got search error %v", err)
	}
	var yl *YieldLimitError
	if out.Err == nil || !errors.As(out.Err, &yl) {
		t.Fatalf("outcome err = %v, want YieldLimitError", out.Err)
	}
}

func TestBudgetAbortsSearch(t *testing.T) {
	info := check(t, counterSrc)
	m := guard.NewMeter(context.Background(), guard.Budget{OpLimit: 5})
	_, err := Run(info, Schedule{Policy: DepthFirst}, RunOptions{Meter: m})
	if err == nil || !guard.IsBudgetOrCanceled(err) {
		t.Fatalf("err = %v, want a budget trip", err)
	}
}
