package adversary

import (
	"fmt"

	"finishrepair/internal/lang/token"
	"finishrepair/internal/parinterp"
)

// Policy names a scheduling discipline for one controlled run.
type Policy string

// Scheduling policies. Every policy is deterministic: given the same
// program, input, and Schedule, the controller makes the identical
// sequence of decisions (the run is fully serialized, so host
// parallelism cannot perturb it).
const (
	// DepthFirst always grants the newest ready task — the controlled
	// reproduction of the canonical sequential depth-first execution.
	DepthFirst Policy = "depth-first"
	// RandomPriority picks uniformly among the ready tasks at every
	// yield, driven by the schedule's seed.
	RandomPriority Policy = "random"
	// DeferWrite delays any task about to write Loc until no other task
	// can run — the race-directed schedule that interleaves a
	// conflicting access between a read-modify-write's read and write
	// (lost updates) or lets a reader run before a deferred writer.
	DeferWrite Policy = "defer-write"
	// DeferRead delays any task about to read Loc, driving writes ahead
	// of the reads the sequential order put first.
	DeferRead Policy = "defer-read"
	// DeferPos delays any task about to access shared memory at source
	// position Pos — the coverage-gap search's position-directed
	// schedule, used when only static candidate positions are known.
	DeferPos Policy = "defer-pos"
)

// Schedule encodes one controlled schedule: the policy plus its
// parameter (seed for RandomPriority, target location for
// DeferWrite/DeferRead, target position for DeferPos). A Schedule and a
// program determine an interleaving completely; witnesses record the
// Schedule so anyone can replay them.
type Schedule struct {
	Policy Policy
	// Seed drives RandomPriority (ignored by the directed policies).
	Seed int64
	// Loc is the shared-memory location DeferWrite/DeferRead target.
	Loc uint64
	// Pos is the source position DeferPos targets.
	Pos token.Pos
}

// String renders the schedule compactly ("defer-write@loc3",
// "random#7", "defer-pos@4:9").
func (s Schedule) String() string {
	switch s.Policy {
	case RandomPriority:
		return fmt.Sprintf("%s#%d", s.Policy, s.Seed)
	case DeferWrite, DeferRead:
		return fmt.Sprintf("%s@loc%d", s.Policy, s.Loc)
	case DeferPos:
		return fmt.Sprintf("%s@%s", s.Policy, s.Pos)
	default:
		return string(s.Policy)
	}
}

// defers reports whether the schedule delays a task whose next
// operation is p.
func (s Schedule) defers(p parinterp.Point) bool {
	switch s.Policy {
	case DeferWrite:
		return p.Op == parinterp.OpWrite && p.Loc == s.Loc
	case DeferRead:
		return p.Op == parinterp.OpRead && p.Loc == s.Loc
	case DeferPos:
		return (p.Op == parinterp.OpRead || p.Op == parinterp.OpWrite) && p.Pos == s.Pos
	}
	return false
}

// RaceDirected builds the two race-directed schedules for a shared
// location: defer its writers, defer its readers. Between them they
// reverse the sequential order of every conflicting pair on loc —
// writes jump over reads, reads jump over writes, and read-modify-write
// sequences are torn between their read and their write.
func RaceDirected(loc uint64) []Schedule {
	return []Schedule{
		{Policy: DeferWrite, Loc: loc},
		{Policy: DeferRead, Loc: loc},
	}
}
