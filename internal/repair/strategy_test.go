package repair_test

import (
	"strings"
	"testing"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/obs/provenance"
	"finishrepair/internal/repair"
)

// A parallel sum reduction: each async squares its own element (honest
// parallel work) and then bumps the shared accumulator. Finish repair
// must serialize whole asyncs; isolated wrapping serializes only the
// commutative increment, so auto should pick isolated and end with a
// strictly shorter critical path.
const isoReductionSrc = `
var sum = 0;

func main() {
    var a = make([]int, 8);
    for (var i = 0; i < 8; i = i + 1) { a[i] = i + 1; }
    finish {
        for (var i = 0; i < 8; i = i + 1) {
            async {
                var t = a[i] * a[i];
                sum = sum + t;
            }
        }
    }
    println(sum);
}
`

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want repair.Strategy
		ok   bool
	}{
		{"finish", repair.StrategyFinish, true},
		{"isolated", repair.StrategyIsolated, true},
		{"iso", repair.StrategyIsolated, true},
		{"auto", repair.StrategyAuto, true},
		{"bogus", repair.StrategyFinish, false},
	}
	for _, c := range cases {
		got, ok := repair.ParseStrategy(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestRepairStrategyAutoPicksIsolated(t *testing.T) {
	var exFin, exAuto provenance.Explain
	finProg, _ := repairAndVerify(t, isoReductionSrc, repair.Options{Explain: &exFin})
	autoProg, _ := repairAndVerify(t, isoReductionSrc, repair.Options{Strategy: repair.StrategyAuto, Explain: &exAuto})
	exFin.Finalize()
	exAuto.Finalize()

	if src := printer.Print(autoProg); !strings.Contains(src, "isolated") {
		t.Fatalf("auto strategy inserted no isolated:\n%s", src)
	}
	if src := printer.Print(finProg); strings.Contains(src, "isolated") {
		t.Fatalf("finish strategy inserted an isolated:\n%s", src)
	}
	if exAuto.CPLAfter.Span >= exFin.CPLAfter.Span {
		t.Errorf("auto post-repair span %d, want < finish's %d",
			exAuto.CPLAfter.Span, exFin.CPLAfter.Span)
	}
	chosen := ""
	for _, it := range exAuto.Iterations {
		for _, g := range it.Groups {
			if g.Strategy != "" {
				chosen = g.Strategy
				if g.Strategy == "isolated" && g.IsolatedSpan >= g.FinishSpan {
					t.Errorf("chose isolated with span %d >= finish span %d (why: %s)",
						g.IsolatedSpan, g.FinishSpan, g.StrategyWhy)
				}
			}
		}
	}
	if chosen != "isolated" {
		t.Errorf("recorded strategy choice = %q, want isolated", chosen)
	}
}

// Forcing the isolated strategy must still only use it where it
// eliminates the group's races and is commutative; the repaired program
// stays race-free and output-identical either way.
func TestRepairStrategyIsolatedForced(t *testing.T) {
	prog, _ := repairAndVerify(t, isoReductionSrc, repair.Options{Strategy: repair.StrategyIsolated})
	if src := printer.Print(prog); !strings.Contains(src, "isolated") {
		t.Fatalf("isolated strategy inserted no isolated:\n%s", src)
	}
}

// A race on a non-commutative update (overwrite, not a reduction) must
// fall back to finish even under -strategy isolated/auto.
const overwriteSrc = `
var last = 0;

func main() {
    finish {
        async { last = 1; }
        async { last = 2; }
    }
    println(last);
}
`

func TestRepairStrategyFallsBackOnNonCommutative(t *testing.T) {
	for _, s := range []repair.Strategy{repair.StrategyIsolated, repair.StrategyAuto} {
		var ex provenance.Explain
		prog, _ := repairAndVerify(t, overwriteSrc, repair.Options{Strategy: s, Explain: &ex})
		if src := printer.Print(prog); strings.Contains(src, "isolated") {
			t.Fatalf("strategy %v wrapped a non-commutative update in isolated:\n%s", s, src)
		}
		found := false
		for _, it := range ex.Iterations {
			for _, g := range it.Groups {
				if g.Strategy == "finish" && strings.Contains(g.StrategyWhy, "infeasible") {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("strategy %v: no group recorded an infeasibility reason", s)
		}
	}
}

// The mixed-counter soundness regression: each statement is a
// recognized additive reduction of its own location, but sum's operand
// READS cnt, so the pair's execution orders disagree and isolating both
// (mutual exclusion without commutativity) would change the output. The
// semantic probe must refute the cross-location pair and force the
// finish fallback.
const mixedCounterSrc = `
var cnt = 0;
var sum = 0;

func main() {
    finish {
        for (var i = 0; i < 4; i = i + 1) {
            async { cnt = cnt + 1; }
            async { sum = sum + cnt; }
        }
    }
    println(cnt);
    println(sum);
}
`

func TestRepairStrategyRefutesMixedCounterPair(t *testing.T) {
	for _, s := range []repair.Strategy{repair.StrategyIsolated, repair.StrategyAuto} {
		var ex provenance.Explain
		prog, _ := repairAndVerify(t, mixedCounterSrc, repair.Options{Strategy: s, Explain: &ex})
		if src := printer.Print(prog); strings.Contains(src, "isolated") {
			t.Fatalf("strategy %v isolated an order-dependent cross-location pair:\n%s", s, src)
		}
		refuted := false
		for _, it := range ex.Iterations {
			for _, g := range it.Groups {
				if strings.Contains(g.StrategyWhy, "refuted") {
					refuted = true
				}
			}
		}
		if !refuted {
			t.Errorf("strategy %v: no group recorded the probe refutation", s)
		}
	}
}

// The finish strategy (the default) must behave exactly as before the
// strategy layer existed: Kind stays zero on every applied range.
func TestRepairStrategyFinishKindsZero(t *testing.T) {
	prog := parser.MustParse(isoReductionSrc)
	rep, err := repair.Repair(prog, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range rep.Iterations {
		for _, a := range it.Applied {
			if a.Kind != 0 {
				t.Errorf("finish strategy applied range with kind %v", a.Kind)
			}
		}
	}
	if n := ast.CountFinishes(prog); n == 0 {
		t.Error("no finishes inserted")
	}
}
