package repair

import (
	"fmt"

	"finishrepair/internal/cpl"
	"finishrepair/internal/dpst"
	"finishrepair/internal/obs/provenance"
	"finishrepair/internal/race"
)

// groupOutcome is the per-NS-LCA result one call to placeGroups hands
// back for provenance: the group, its computed placements, the DP
// effort spent, and whether the round applied the placements (deferred
// groups are re-examined by the next detection round).
type groupOutcome struct {
	g       *group
	ps      []Placement
	info    placeInfo
	applied bool
	note    string
	// choice records the strategy selection for this group, when a
	// non-finish strategy evaluated alternatives.
	choice *strategyChoice
}

// provNode converts an S-DPST node to its provenance form.
func provNode(n *dpst.Node) provenance.Node {
	if n == nil {
		return provenance.Node{ID: -1}
	}
	kind := "root"
	if n.Parent != nil {
		switch n.Kind {
		case dpst.Step:
			kind = "step"
		case dpst.Async:
			kind = "async"
		case dpst.Finish:
			kind = "finish"
		default:
			kind = "scope"
		}
	}
	return provenance.Node{ID: n.ID, Kind: kind, Pos: n.StmtPos()}
}

// provRace converts a detected race to its provenance form.
func provRace(r *race.Race) provenance.RacePair {
	return provenance.RacePair{
		First:  provNode(r.Src),
		Second: provNode(r.Dst),
		Loc:    fmt.Sprintf("loc#%d", r.Loc),
		Kind:   r.Kind.String(),
	}
}

func provRaces(races []*race.Race) []provenance.RacePair {
	out := make([]provenance.RacePair, len(races))
	for i, r := range races {
		out[i] = provRace(r)
	}
	return out
}

// provFinish converts a placement to the provenance scope form,
// resolving the source position of the first wrapped statement.
func provFinish(p Placement) provenance.Finish {
	f := provenance.Finish{Lo: p.Lo, Hi: p.Hi}
	// The zero kind (finish) stays implicit, keeping pre-strategy explain
	// records byte-identical.
	if p.Kind != 0 {
		f.Kind = p.Kind.String()
	}
	if p.Lo >= 0 && p.Lo < len(p.Block.Stmts) {
		f.Pos = p.Block.Stmts[p.Lo].Pos().String()
	}
	return f
}

// provGroup converts one placement outcome to its provenance form,
// including the candidate vertices the DP partitioned.
func provGroup(o groupOutcome) provenance.Group {
	g := provenance.Group{
		LCA:      provNode(o.g.lca),
		Races:    provRaces(o.g.races),
		DPStates: o.info.States,
		Vertices: o.info.Vertices,
		Edges:    o.info.Edges,
		Fallback: o.info.Fallback,
		Applied:  o.applied,
		Note:     o.note,
	}
	for _, n := range dpst.NonScopeChildren(o.g.lca) {
		g.Candidates = append(g.Candidates, provNode(n))
	}
	for _, p := range o.ps {
		g.Chosen = append(g.Chosen, provFinish(p))
	}
	if o.choice != nil {
		g.Strategy = o.choice.strategy
		g.StrategyWhy = o.choice.why
		g.FinishSpan = o.choice.finishSpan
		g.IsolatedSpan = o.choice.isoSpan
		g.CommuteFamily = o.choice.family
		g.CommuteProbe = o.choice.probe
	}
	return g
}

// provPruned converts an NS-LCA group skipped as statically serial.
func provPruned(g *group) provenance.Group {
	return provenance.Group{
		LCA:          provNode(g.lca),
		Races:        provRaces(g.races),
		PrunedSerial: true,
		Note:         "no race pair may run in parallel per the static MHP oracle",
	}
}

// provCPL measures the tree's critical path for the explain record.
// Returns nil when the tree is absent (a failed round).
func provCPL(t *dpst.Tree) *provenance.CPL {
	if t == nil {
		return nil
	}
	m := cpl.Analyze(t)
	return &provenance.CPL{Work: m.Work, Span: m.Span}
}
