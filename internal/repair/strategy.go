package repair

import (
	"fmt"

	"finishrepair/internal/cpl"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/lang/token"
	"finishrepair/internal/obs"
	"finishrepair/internal/race"
	"finishrepair/internal/trace"
)

// Strategy metrics: one count per evaluated race group, and the span
// difference (finish span minus isolated span; positive means isolated
// was the cheaper repair) whenever both candidates were comparable.
var (
	mStrategyChosen = obs.Default().Counter("repair.strategy_chosen")
	mCPLDelta       = obs.Default().Histogram("repair.cpl_delta")
)

// Strategy selects how the repair loop eliminates a race group.
type Strategy int

// Repair strategies. StrategyFinish is the zero value so library
// callers that never set Options.Strategy keep the paper's
// finish-insertion behavior unchanged.
const (
	// StrategyFinish always inserts finish scopes (paper §5-§6).
	StrategyFinish Strategy = iota
	// StrategyIsolated wraps the racing access statements in isolated
	// whenever that is feasible (commutative integer updates whose
	// serialization order cannot change the result) and verified to
	// eliminate the group's races on replay; infeasible groups fall
	// back to finish insertion.
	StrategyIsolated
	// StrategyAuto evaluates both candidates per race group and picks
	// isolated only when its post-repair critical path is strictly
	// shorter than the finish candidate's.
	StrategyAuto
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyIsolated:
		return "isolated"
	case StrategyAuto:
		return "auto"
	default:
		return "finish"
	}
}

// ParseStrategy maps a CLI flag value to a strategy.
func ParseStrategy(s string) (Strategy, bool) {
	switch s {
	case "finish":
		return StrategyFinish, true
	case "isolated", "iso":
		return StrategyIsolated, true
	case "auto":
		return StrategyAuto, true
	}
	return StrategyFinish, false
}

// strategyChoice records why a group got a finish or an isolated repair,
// for provenance. Spans are post-repair critical paths measured by
// replaying the captured trace with the candidate applied on top of the
// round's base virtual set; IsoSpan is 0 when the isolated candidate
// was infeasible or failed its probe.
type strategyChoice struct {
	strategy   string // "finish" or "isolated"
	why        string
	finishSpan int64
	isoSpan    int64
}

// strategyEvaluator holds one round's context for per-group strategy
// selection in the trace-replay loop. It is invoked from the
// deterministic accumulation pass of placeGroups (group order), and all
// probes replay against the same base virtual set, so the chosen
// program is identical for any worker count.
type strategyEvaluator struct {
	tr       *trace.Trace
	prog     *ast.Program
	base     []trace.FinishRange
	meter    *guard.Meter
	strategy Strategy
}

// choose decides between the group's finish placements (already
// computed by the DP) and an isolated wrapping of its access sites.
func (ev *strategyEvaluator) choose(g *group, finishPs []Placement) ([]Placement, *strategyChoice) {
	mStrategyChosen.Inc()
	ch := &strategyChoice{strategy: "finish"}
	isoPs, reason := isolatedCandidate(ev.prog, g)
	if reason != "" {
		ch.why = "isolated infeasible: " + reason
		return finishPs, ch
	}
	isoGone, isoSpan, err := ev.probe(isoPs, g)
	if err != nil {
		ch.why = "isolated probe failed: " + err.Error()
		return finishPs, ch
	}
	if !isoGone {
		ch.why = "isolated wrapping does not eliminate the group's races"
		return finishPs, ch
	}
	ch.isoSpan = isoSpan
	_, finSpan, err := ev.probe(finishPs, g)
	if err != nil {
		ch.why = "finish probe failed: " + err.Error()
		return finishPs, ch
	}
	ch.finishSpan = finSpan
	mCPLDelta.Observe(finSpan - isoSpan)
	if ev.strategy == StrategyIsolated {
		ch.strategy = "isolated"
		ch.why = "strategy=isolated and the wrapping eliminates the group's races"
		return isoPs, ch
	}
	if isoSpan < finSpan {
		ch.strategy = "isolated"
		ch.why = fmt.Sprintf("post-repair critical path %d beats finish's %d", isoSpan, finSpan)
		return isoPs, ch
	}
	ch.why = fmt.Sprintf("finish critical path %d <= isolated's %d", finSpan, isoSpan)
	return finishPs, ch
}

// probe replays the captured trace with base ∪ cand injected virtually
// into a fresh ESP-Bags MRW detector and reports whether every race of
// the group vanished, plus the critical-path span of the resulting
// tree. Node IDs shift between replays (synthetic scopes renumber), so
// group races are matched by their stable coordinates: location, access
// kind, and the two source sites.
func (ev *strategyEvaluator) probe(cand []Placement, g *group) (vanished bool, span int64, err error) {
	merged, _ := mergeVirtual(ev.base, cand)
	det := race.New(race.VariantMRW, race.NewBagsOracle())
	rr, err := race.Analyze(ev.tr, ev.prog, merged, det, ev.meter, false)
	if err != nil {
		return false, 0, err
	}
	want := make(map[siteKey]bool, 2*len(g.races))
	for _, r := range g.races {
		want[siteKeyOf(r)] = true
		want[siteKeyOf(flipRace(r))] = true
	}
	for _, r := range det.Races() {
		if want[siteKeyOf(r)] {
			return false, cpl.Analyze(rr.Tree).Span, nil
		}
	}
	return true, cpl.Analyze(rr.Tree).Span, nil
}

// siteKey identifies a race by replay-stable coordinates.
type siteKey struct {
	loc               uint64
	kind              race.Kind
	srcBlock, srcStmt int32
	dstBlock, dstStmt int32
}

func siteKeyOf(r *race.Race) siteKey {
	return siteKey{
		loc:      r.Loc,
		kind:     r.Kind,
		srcBlock: r.SrcSite.Block,
		srcStmt:  r.SrcSite.Stmt,
		dstBlock: r.DstSite.Block,
		dstStmt:  r.DstSite.Stmt,
	}
}

func flipRace(r *race.Race) *race.Race {
	return &race.Race{Src: r.Dst, Dst: r.Src, Loc: r.Loc, Kind: r.Kind,
		SrcSite: r.DstSite, DstSite: r.SrcSite}
}

// isolatedCandidate builds the isolated repair for one group: wrap each
// racing access statement (per its recorded source site) in its own
// isolated. It returns a non-empty reason when the group is not
// amenable:
//
//   - an access site has no statement coordinates (global initializer),
//   - a site does not resolve to a block statement,
//   - an access statement is not a commutative integer update of a
//     single shared location, or
//   - the group mixes additive and multiplicative update families.
//
// The commutativity gate is what makes the rewrite output-preserving:
// the isolated lock serializes the updates in a nondeterministic order,
// so the updates must yield the same final value under every order.
// The gate is deliberately conservative; anything it rejects still gets
// the always-sound finish repair.
func isolatedCandidate(prog *ast.Program, g *group) ([]Placement, string) {
	type key struct{ block, stmt int32 }
	seen := map[key]bool{}
	var ps []Placement
	var family token.Kind
	for _, r := range g.races {
		for _, site := range []trace.Site{r.SrcSite, r.DstSite} {
			if site.Block < 0 || site.Stmt < 0 {
				return nil, "access site has no statement coordinates"
			}
			b := ast.FindBlock(prog, int(site.Block))
			if b == nil || int(site.Stmt) >= len(b.Stmts) {
				return nil, "access site does not resolve to a statement"
			}
			st := b.Stmts[site.Stmt]
			fam, ok := commutativeOp(st)
			if !ok {
				return nil, fmt.Sprintf("statement at %s is not a commutative integer update", st.Pos())
			}
			if family == 0 {
				family = fam
			} else if family != fam {
				return nil, "group mixes additive and multiplicative updates"
			}
			k := key{site.Block, site.Stmt}
			if !seen[k] {
				seen[k] = true
				ps = append(ps, Placement{
					Block: b,
					Lo:    int(site.Stmt),
					Hi:    int(site.Stmt),
					Kind:  trace.RangeIsolated,
				})
			}
		}
	}
	if len(ps) == 0 {
		return nil, "no access sites"
	}
	return ps, ""
}

// commutativeOp reports whether st is a commutative integer
// read-modify-write of one shared location — `lhs += e`, `lhs -= e`,
// `lhs *= e`, or the expanded `lhs = lhs + e` / `lhs = e + lhs` /
// `lhs = lhs * e` forms — with an RHS that does not itself read the
// updated location. It returns the update family (token.ADD for the
// additive family, token.MUL for multiplicative); updates within one
// family commute with each other, across families they do not. Float
// updates are rejected: float addition is not associative, so
// reordering would change the bits and break the serial-oracle
// comparison.
func commutativeOp(s ast.Stmt) (token.Kind, bool) {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return 0, false
	}
	if !intLValue(as.LHS) {
		return 0, false
	}
	switch as.Op {
	case token.ADDASSIGN, token.SUBASSIGN:
		if readsLValue(as.RHS, as.LHS) {
			return 0, false
		}
		return token.ADD, true
	case token.MULASSIGN:
		if readsLValue(as.RHS, as.LHS) {
			return 0, false
		}
		return token.MUL, true
	case token.ASSIGN:
		be, ok := as.RHS.(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.MUL) {
			return 0, false
		}
		var rest ast.Expr
		switch {
		case sameLValue(as.LHS, be.X):
			rest = be.Y
		case sameLValue(as.LHS, be.Y):
			rest = be.X
		default:
			return 0, false
		}
		if readsLValue(rest, as.LHS) {
			return 0, false
		}
		if be.Op == token.MUL {
			return token.MUL, true
		}
		return token.ADD, true
	}
	return 0, false
}

// intLValue reports whether the assignment target is an int-typed
// global or an element of an int-array (the only shapes the isolated
// candidate accepts).
func intLValue(lhs ast.Expr) bool {
	switch x := lhs.(type) {
	case *ast.Ident:
		if sym, ok := x.Sym.(*sem.Symbol); ok {
			if pt, ok := sym.Type.(*ast.PrimType); ok {
				return pt.Kind == ast.Int
			}
		}
	case *ast.IndexExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if sym, ok := id.Sym.(*sem.Symbol); ok {
				if at, ok := sym.Type.(*ast.ArrayType); ok {
					if pt, ok := at.Elem.(*ast.PrimType); ok {
						return pt.Kind == ast.Int
					}
				}
			}
		}
	}
	return false
}

// sameLValue reports whether two expressions certainly denote the same
// location: identical symbols, or index expressions over the same array
// symbol with syntactically identical simple indices.
func sameLValue(a, b ast.Expr) bool {
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		return ok && ax.Sym != nil && ax.Sym == bx.Sym
	case *ast.IndexExpr:
		bx, ok := b.(*ast.IndexExpr)
		if !ok || !sameLValue(ax.X, bx.X) {
			return false
		}
		switch ai := ax.Index.(type) {
		case *ast.Ident:
			bi, ok := bx.Index.(*ast.Ident)
			return ok && ai.Sym != nil && ai.Sym == bi.Sym
		case *ast.IntLit:
			bi, ok := bx.Index.(*ast.IntLit)
			return ok && ai.Value == bi.Value
		}
	}
	return false
}

// readsLValue reports whether e may read the location lhs denotes,
// conservatively: any occurrence of the target's base symbol counts.
func readsLValue(e ast.Expr, lhs ast.Expr) bool {
	var sym any
	switch x := lhs.(type) {
	case *ast.Ident:
		sym = x.Sym
	case *ast.IndexExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			sym = id.Sym
		}
	}
	if sym == nil {
		return true
	}
	found := false
	ast.InspectExpr(e, func(x ast.Expr) {
		if id, ok := x.(*ast.Ident); ok && id.Sym == sym {
			found = true
		}
	})
	return found
}
