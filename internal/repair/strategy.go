package repair

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"finishrepair/internal/analysis"
	"finishrepair/internal/analysis/commute"
	"finishrepair/internal/cpl"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/obs"
	"finishrepair/internal/race"
	"finishrepair/internal/trace"
)

// Strategy metrics: one count per evaluated race group, the span
// difference (finish span minus isolated span; positive means isolated
// was the cheaper repair) whenever both candidates were comparable, and
// one count per isolated placement that earned a per-location lock
// class (class > 0) instead of the global isolated lock.
var (
	mStrategyChosen = obs.Default().Counter("repair.strategy_chosen")
	mCPLDelta       = obs.Default().Histogram("repair.cpl_delta")
	mLockClasses    = obs.Default().Counter("repair.lock_classes")
)

// Strategy selects how the repair loop eliminates a race group.
type Strategy int

// Repair strategies. StrategyFinish is the zero value so library
// callers that never set Options.Strategy keep the paper's
// finish-insertion behavior unchanged.
const (
	// StrategyFinish always inserts finish scopes (paper §5-§6).
	StrategyFinish Strategy = iota
	// StrategyIsolated wraps the racing update regions in isolated
	// whenever that is feasible (statically recognized commutative
	// updates whose serialization order cannot change the result,
	// confirmed by the semantic order probe) and verified to eliminate
	// the group's races on replay; infeasible groups fall back to finish
	// insertion.
	StrategyIsolated
	// StrategyAuto evaluates both candidates per race group and picks
	// isolated only when its post-repair critical path is strictly
	// shorter than the finish candidate's.
	StrategyAuto
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyIsolated:
		return "isolated"
	case StrategyAuto:
		return "auto"
	default:
		return "finish"
	}
}

// ParseStrategy maps a CLI flag value to a strategy. "iso" is accepted
// as a short alias of "isolated".
func ParseStrategy(s string) (Strategy, bool) {
	switch s {
	case "finish":
		return StrategyFinish, true
	case "isolated", "iso":
		return StrategyIsolated, true
	case "auto":
		return StrategyAuto, true
	}
	return StrategyFinish, false
}

// strategyChoice records why a group got a finish or an isolated repair,
// for provenance. Spans are post-repair critical paths measured by
// replaying the captured trace with the candidate applied on top of the
// round's base virtual set; IsoSpan is 0 when the isolated candidate
// was infeasible or failed its probe. Family names the recognized
// commutative update family (or families) of the group's regions, and
// probe the semantic order-probe outcome ("confirmed", "refuted", or
// "unsupported").
type strategyChoice struct {
	strategy   string // "finish" or "isolated"
	why        string
	finishSpan int64
	isoSpan    int64
	family     string
	probe      string
}

// strategyEvaluator holds one round's context for per-group strategy
// selection in the trace-replay loop. It is invoked from the
// deterministic accumulation pass of placeGroups (group order), and all
// probes replay against the same base virtual set, so the chosen
// program is identical for any worker count. The commutativity site
// index, the effect-region location partition, and semantic probe
// verdicts are built lazily and cached for the round.
type strategyEvaluator struct {
	tr       *trace.Trace
	info     *sem.Info
	prog     *ast.Program
	base     []trace.FinishRange
	meter    *guard.Meter
	strategy Strategy

	sites  *commute.SiteIndex
	locs   *analysis.Result
	probed map[[2]commute.Key]error
}

// choose decides between the group's finish placements (already
// computed by the DP) and an isolated wrapping of its recognized update
// regions.
func (ev *strategyEvaluator) choose(g *group, finishPs []Placement) ([]Placement, *strategyChoice) {
	mStrategyChosen.Inc()
	ch := &strategyChoice{strategy: "finish"}
	isoPs, reason := ev.isolatedCandidate(g, ch)
	if reason != "" {
		ch.why = "isolated infeasible: " + reason
		return finishPs, ch
	}
	isoGone, isoSpan, err := ev.probe(isoPs, g)
	if err != nil {
		ch.why = "isolated probe failed: " + err.Error()
		return finishPs, ch
	}
	if !isoGone {
		ch.why = "isolated wrapping does not eliminate the group's races"
		return finishPs, ch
	}
	ch.isoSpan = isoSpan
	_, finSpan, err := ev.probe(finishPs, g)
	if err != nil {
		ch.why = "finish probe failed: " + err.Error()
		return finishPs, ch
	}
	ch.finishSpan = finSpan
	mCPLDelta.Observe(finSpan - isoSpan)
	if ev.strategy == StrategyIsolated {
		ch.strategy = "isolated"
		ch.why = "strategy=isolated and the wrapping eliminates the group's races"
		return isoPs, ch
	}
	if isoSpan < finSpan {
		ch.strategy = "isolated"
		ch.why = fmt.Sprintf("post-repair critical path %d beats finish's %d", isoSpan, finSpan)
		return isoPs, ch
	}
	ch.why = fmt.Sprintf("finish critical path %d <= isolated's %d", finSpan, isoSpan)
	return finishPs, ch
}

// probe replays the captured trace with base ∪ cand injected virtually
// into a fresh ESP-Bags MRW detector and reports whether every race of
// the group vanished, plus the critical-path span of the resulting
// tree. Node IDs shift between replays (synthetic scopes renumber), so
// group races are matched by their stable coordinates: location, access
// kind, and the two source sites.
func (ev *strategyEvaluator) probe(cand []Placement, g *group) (vanished bool, span int64, err error) {
	merged, _ := mergeVirtual(ev.base, cand)
	det := race.New(race.VariantMRW, race.NewBagsOracle())
	rr, err := race.Analyze(ev.tr, ev.prog, merged, det, ev.meter, false)
	if err != nil {
		return false, 0, err
	}
	want := make(map[siteKey]bool, 2*len(g.races))
	for _, r := range g.races {
		want[siteKeyOf(r)] = true
		want[siteKeyOf(flipRace(r))] = true
	}
	for _, r := range det.Races() {
		if want[siteKeyOf(r)] {
			return false, cpl.Analyze(rr.Tree).Span, nil
		}
	}
	return true, cpl.Analyze(rr.Tree).Span, nil
}

// siteKey identifies a race by replay-stable coordinates.
type siteKey struct {
	loc               uint64
	kind              race.Kind
	srcBlock, srcStmt int32
	dstBlock, dstStmt int32
}

func siteKeyOf(r *race.Race) siteKey {
	return siteKey{
		loc:      r.Loc,
		kind:     r.Kind,
		srcBlock: r.SrcSite.Block,
		srcStmt:  r.SrcSite.Stmt,
		dstBlock: r.DstSite.Block,
		dstStmt:  r.DstSite.Stmt,
	}
}

func flipRace(r *race.Race) *race.Race {
	return &race.Race{Src: r.Dst, Dst: r.Src, Loc: r.Loc, Kind: r.Kind,
		SrcSite: r.DstSite, DstSite: r.SrcSite}
}

// isolatedCandidate builds the isolated repair for one group: resolve
// each racing access site to its recognized commutative update region
// (internal/analysis/commute), and wrap each distinct region in its own
// isolated statement tagged with the region's inferred lock class. It
// returns a non-empty reason when the group is not amenable:
//
//   - an access site has no statement coordinates (global initializer),
//   - a site does not resolve to a block statement,
//   - an access statement is not part of a recognized commutative
//     update region (single statement or a bounded straight-line region
//     of local computation feeding one shared update),
//   - two updates of the same location belong to incompatible families
//     (e.g. one additive, one multiplicative), or
//   - the semantic order probe refutes, or cannot model, a pair of the
//     group's updates.
//
// The commutativity gate is what makes the rewrite output-preserving:
// the isolated lock serializes the updates in a nondeterministic order,
// so the updates must yield the same final value under every order.
// Every static "commutes" verdict is backed by the semantic probe —
// both orders of each update pair are executed under the serial
// interpreter on concrete states and their rendered final states
// compared — so a recognizer bug degrades to the always-sound finish
// repair instead of a silent output change.
func (ev *strategyEvaluator) isolatedCandidate(g *group, ch *strategyChoice) ([]Placement, string) {
	if ev.sites == nil {
		ev.sites = commute.NewSiteIndex(ev.prog)
	}
	seen := map[commute.Key]bool{}
	var updates []commute.Update
	byTarget := map[*sem.Symbol]commute.Update{}
	for _, r := range g.races {
		for _, site := range []trace.Site{r.SrcSite, r.DstSite} {
			if site.Block < 0 || site.Stmt < 0 {
				return nil, "access site has no statement coordinates"
			}
			b := ast.FindBlock(ev.prog, int(site.Block))
			if b == nil || int(site.Stmt) >= len(b.Stmts) {
				return nil, "access site does not resolve to a statement"
			}
			st := b.Stmts[site.Stmt]
			u, ok := ev.sites.At(st)
			if !ok {
				return nil, fmt.Sprintf("statement at %s is not a commutative integer update", st.Pos())
			}
			tgt := u.TargetBase()
			if tgt == nil {
				return nil, "update target has no base symbol"
			}
			if prev, ok := byTarget[tgt]; ok {
				if !commute.Compatible(prev, u) {
					return nil, fmt.Sprintf("group mixes %s and %s updates of %s",
						prev.Family, u.Family, tgt.Name)
				}
			} else {
				byTarget[tgt] = u
			}
			if !seen[u.RegionKey()] {
				seen[u.RegionKey()] = true
				updates = append(updates, u)
			}
		}
	}
	if len(updates) == 0 {
		return nil, "no access sites"
	}
	ch.family = familyNames(updates)

	// Confirm every static verdict semantically before spending a
	// trace replay on the candidate. Self-pairs matter: a single static
	// update races with its own dynamic instances, so it must commute
	// with itself under independent operand samples.
	for i, a := range updates {
		for j := i; j < len(updates); j++ {
			b := updates[j]
			if i != j && !commute.Overlaps(a, b) {
				// Disjoint footprints: relative order is unobservable,
				// nothing to probe. Overlapping cross-location pairs
				// (one region reads the other's target, like
				// sum=sum+cnt vs cnt=cnt+1) MUST be probed — mutual
				// exclusion alone does not make them order-independent.
				continue
			}
			if err := ev.probePair(a, b); err != nil {
				if errors.Is(err, commute.ErrRefuted) {
					ch.probe = "refuted"
					return nil, fmt.Sprintf("semantic probe refuted commutativity: %v", err)
				}
				ch.probe = "unsupported"
				return nil, fmt.Sprintf("semantic probe cannot model the updates: %v", err)
			}
		}
	}
	ch.probe = "confirmed"

	if ev.locs == nil {
		ev.locs = analysis.Locations(ev.info)
	}
	ps := make([]Placement, 0, len(updates))
	for _, u := range updates {
		cls := ev.locs.LockClassOf(u)
		if cls > 0 {
			mLockClasses.Inc()
		}
		ps = append(ps, Placement{
			Block: u.Block,
			Lo:    u.Lo,
			Hi:    u.Hi,
			Kind:  trace.RangeIsolated,
			Class: cls,
		})
	}
	return ps, ""
}

// probePair runs the semantic order probe on one update pair, caching
// the verdict for the round (the same static regions recur across
// groups and iterations).
func (ev *strategyEvaluator) probePair(a, b commute.Update) error {
	if ev.probed == nil {
		ev.probed = map[[2]commute.Key]error{}
	}
	k := [2]commute.Key{a.RegionKey(), b.RegionKey()}
	if err, ok := ev.probed[k]; ok {
		return err
	}
	err := commute.ProbePair(ev.info, a, b)
	ev.probed[k] = err
	return err
}

// familyNames renders the distinct update families of a candidate's
// regions, sorted, for provenance ("add", "min+max", ...).
func familyNames(updates []commute.Update) string {
	set := map[string]bool{}
	for _, u := range updates {
		set[u.Family.String()] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}
