package repair

import (
	"fmt"
	"sort"
)

// Evaluate computes the completion time (critical path length) of the
// vertex sequence under a given finish set, in the execution model of
// §5.2: vertices execute left to right; a step advances the program
// cursor by its time; an async completes cursor+T[v] without advancing
// the cursor; a finish block completes when every vertex inside it has
// completed, and the cursor resumes at that completion time.
//
// Finish blocks must be properly nested (no partial overlap). Evaluate
// does not check that the finish set satisfies the dependence edges; use
// Satisfies for that.
func Evaluate(p *Problem, finishes []FinishBlock) (int64, error) {
	seen := make(map[FinishBlock]bool)
	var fs []FinishBlock
	for _, f := range finishes {
		if !seen[f] {
			seen[f] = true
			fs = append(fs, f)
		}
	}
	// Outer blocks first: by start ascending, then end descending.
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].S != fs[j].S {
			return fs[i].S < fs[j].S
		}
		return fs[i].E > fs[j].E
	})
	for i := 0; i < len(fs); i++ {
		for j := i + 1; j < len(fs); j++ {
			a, b := fs[i], fs[j]
			if b.S <= a.E && b.S >= a.S && b.E > a.E {
				return 0, fmt.Errorf("repair: finish blocks %v and %v partially overlap", a, b)
			}
		}
	}
	for _, f := range fs {
		if f.S < 0 || f.E >= p.N || f.S > f.E {
			return 0, fmt.Errorf("repair: finish block %v out of range", f)
		}
	}

	next := 0 // index into fs
	var evalRange func(lo, hi int, start int64) (cursor, completion int64)
	evalRange = func(lo, hi int, start int64) (int64, int64) {
		cursor := start
		completion := start
		for v := lo; v <= hi; {
			if next < len(fs) && fs[next].S == v {
				fb := fs[next]
				next++
				_, inner := evalRange(fb.S, fb.E, cursor)
				cursor = inner
				if inner > completion {
					completion = inner
				}
				v = fb.E + 1
				continue
			}
			if p.Async[v] {
				done := cursor + p.T[v]
				if done > completion {
					completion = done
				}
			} else {
				cursor += p.T[v]
				if cursor > completion {
					completion = cursor
				}
			}
			v++
		}
		return cursor, completion
	}
	_, total := evalRange(0, p.N-1, 0)
	return total, nil
}

// Satisfies reports whether the finish set covers every dependence edge:
// for each edge (x, y) there must be a block (s, e) with s <= x <= e < y
// (§5.2).
func Satisfies(p *Problem, finishes []FinishBlock) bool {
	for _, e := range p.Edges {
		ok := false
		for _, f := range finishes {
			if f.S <= e[0] && e[0] <= f.E && f.E < e[1] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
