package repair_test

import (
	"errors"
	"testing"

	"finishrepair/internal/lang/parser"
	"finishrepair/internal/obs"
	"finishrepair/internal/repair"
)

// TestRepairTracerSpans checks that a traced repair emits well-formed
// spans covering every pipeline stage of paper Fig. 6, with the final
// detection round renamed "verify".
func TestRepairTracerSpans(t *testing.T) {
	tr := obs.New()
	prog := parser.MustParse(fibSrc)
	rep, err := repair.Repair(prog, repair.Options{UseTraceFiles: true, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.OpenSpans() != 0 {
		t.Fatalf("%d spans left open", tr.OpenSpans())
	}
	recs := tr.Records()
	if err := obs.ValidateNesting(recs); err != nil {
		t.Fatalf("span nesting: %v", err)
	}
	count := map[string]int{}
	for _, r := range recs {
		count[r.Name]++
	}
	for _, phase := range []string{"repair", "iteration", "sem-check", "detect", "trace-io", "group-nslca", "dp-place", "rewrite", "verify"} {
		if count[phase] == 0 {
			t.Errorf("phase %q missing from trace; got %v", phase, count)
		}
	}
	if count["verify"] != 1 {
		t.Errorf("verify spans = %d, want exactly 1", count["verify"])
	}
	if count["iteration"] != len(rep.Iterations) {
		t.Errorf("iteration spans = %d, want %d", count["iteration"], len(rep.Iterations))
	}

	// The per-iteration report carries the breakdown the spans show.
	if rep.TotalDPStates() == 0 {
		t.Error("no DP states recorded")
	}
	for i, it := range rep.Iterations[:len(rep.Iterations)-1] {
		if it.PlaceTime == 0 && it.RewriteTime == 0 {
			t.Errorf("iteration %d: no phase durations recorded", i)
		}
	}
}

// TestRepairMaxIterationsError checks the typed exhaustion error and the
// partial report accompanying it.
func TestRepairMaxIterationsError(t *testing.T) {
	prog := parser.MustParse(fibSrc)
	rep, err := repair.Repair(prog, repair.Options{MaxIterations: 1})
	if err == nil {
		t.Fatal("repair within 1 iteration; fixture needs >= 2")
	}
	var mi *repair.MaxIterationsError
	if !errors.As(err, &mi) {
		t.Fatalf("error %T (%v), want *MaxIterationsError", err, err)
	}
	if mi.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", mi.Iterations)
	}
	if rep == nil || len(rep.Iterations) != 1 {
		t.Fatalf("partial report missing: %+v", rep)
	}
	if rep.Iterations[0].Races == 0 || mi.RemainingRaces == 0 {
		t.Errorf("exhausted repair lost race counts: iter=%+v err=%+v", rep.Iterations[0], mi)
	}
}
