package repair

import (
	"fmt"
	"sort"

	"finishrepair/internal/dpst"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/obs"
	"finishrepair/internal/race"
	"finishrepair/internal/trace"
)

// Pipeline metrics (registry names are stable; see README Observability).
var (
	mDPStates         = obs.Default().Counter("repair.dp_states")
	mFallbacks        = obs.Default().Counter("repair.fallback_placements")
	mGraphSize        = obs.Default().Histogram("repair.graph_size")
	mDPStatesPerGroup = obs.Default().Histogram("repair.dp_states_per_group")
)

// Placement is a static scope insertion: wrap statements Lo..Hi of Block
// in a new finish statement (the default) or, for Kind RangeIsolated, in
// a new isolated statement. Isolated placements cover one recognized
// update region — a straight-line run of statements inside a single
// maximal step — so against any finish range they are disjoint or
// nested, never partially overlapping. Class is the isolated lock class
// (0 = the global isolated lock; c > 0 = the per-location lock of
// abstract location c-1); it is meaningless for finish placements.
type Placement struct {
	Block  *ast.Block
	Lo, Hi int
	Kind   trace.RangeKind
	Class  int
}

// String renders the placement.
func (p Placement) String() string {
	return fmt.Sprintf("%s around stmts %d..%d of block %d", p.Kind, p.Lo, p.Hi, p.Block.ID)
}

// group is the set of races sharing one NS-LCA (paper §6.1 steps 1-2).
type group struct {
	lca   *dpst.Node
	races []*race.Race
}

// groupByNSLCA groups races by the NS-LCA of source and sink, ordered by
// the NS-LCA's DFS number.
func groupByNSLCA(races []*race.Race) []*group {
	byNode := make(map[*dpst.Node]*group)
	var order []*group
	for _, r := range races {
		l := dpst.NSLCA(r.Src, r.Dst)
		g := byNode[l]
		if g == nil {
			g = &group{lca: l}
			byNode[l] = g
			order = append(order, g)
		}
		g.races = append(g.races, r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].lca.ID < order[j].lca.ID })
	return order
}

// wrap is a concrete S-DPST insertion point: a new finish becomes the
// parent of children a..b of node p, covering statements lo..hi of the
// children's owner block.
type wrap struct {
	p      *dpst.Node
	a, b   int
	owner  *ast.Block
	lo, hi int
}

// computeWrap finds the highest S-DPST node under which a new finish can
// adopt a consecutive child range covering exactly the dependence-graph
// vertices nodes[s..e] and nothing else (paper §5.2, bottom-up
// traversal). The returned wrap satisfies the static-expressibility
// rules:
//
//   - climbing only passes through scope nodes (wrapping all children of
//     an async or finish is NOT the same as wrapping the construct);
//   - a proper subrange of a loop's iterations is not expressible;
//   - the covered children must share one owner block and must not
//     include loop-header pseudo-steps (StmtLo < 0).
func computeWrap(nodes []*dpst.Node, s, e int) (wrap, bool) {
	ns, ne := nodes[s], nodes[e]
	var p *dpst.Node
	if s == e {
		p = ns.Parent
	} else {
		p = dpst.LCA(ns, ne)
	}

	childIndex := func(parent, descendant *dpst.Node) int {
		// Index of parent's child on the path down to descendant.
		cur := descendant
		for cur.Parent != parent {
			cur = cur.Parent
			if cur == nil {
				return -1
			}
		}
		for i, c := range parent.Children {
			if c == cur {
				return i
			}
		}
		return -1
	}

	a := childIndex(p, ns)
	b := childIndex(p, ne)
	if a < 0 || b < 0 || a > b {
		return wrap{}, false
	}

	// Alignment: children a..b of p must flatten to exactly nodes[s..e].
	// It suffices that the leftmost flattened vertex of child a is ns and
	// the rightmost of child b is ne (the in-between ones are contiguous
	// by DFS order).
	if leftmostNonScope(p.Children[a]) != ns || rightmostNonScope(p.Children[b]) != ne {
		return wrap{}, false
	}

	// Climb through scope nodes while the selected range covers all of
	// p's children: wrapping everything inside a scope node is the same
	// set of leaves as wrapping the scope construct itself, and higher
	// placements are preferred (paper: "the highest node").
	for a == 0 && b == len(p.Children)-1 && p.IsScope() && p.Parent != nil {
		q := p.Parent
		i := -1
		for ci, c := range q.Children {
			if c == p {
				i = ci
				break
			}
		}
		if i < 0 {
			return wrap{}, false
		}
		p, a, b = q, i, i
	}

	// A proper subrange of loop iterations cannot be wrapped statically.
	if p.Class == dpst.LoopScope && !(a == 0 && b == len(p.Children)-1) {
		return wrap{}, false
	}

	// The covered children must be statement instances of one block, and
	// none may be a loop-header pseudo-step.
	owner := p.Children[a].OwnerBlock
	if owner == nil {
		return wrap{}, false
	}
	lo, hi := p.Children[a].StmtLo, p.Children[a].StmtHi
	for i := a; i <= b; i++ {
		c := p.Children[i]
		if c.OwnerBlock != owner || c.StmtLo < 0 {
			return wrap{}, false
		}
		if c.StmtLo < lo {
			lo = c.StmtLo
		}
		if c.StmtHi > hi {
			hi = c.StmtHi
		}
	}
	// Statement granularity: the rewrite wraps whole statements lo..hi.
	// If the next sibling child shares statement hi (e.g. the wrap ends
	// at the argument-evaluation step of a call whose body follows), the
	// rewrite would pull that sibling — and any race sinks inside it —
	// into the finish, breaking the fix. Reject such wraps; the DP then
	// picks a partition that ends on a statement boundary. (Overlap on
	// the LEFT only widens the finish start, which is safe.)
	if b+1 < len(p.Children) {
		next := p.Children[b+1]
		if next.OwnerBlock == owner && next.StmtLo >= 0 && next.StmtLo <= hi {
			return wrap{}, false
		}
	}
	return wrap{p: p, a: a, b: b, owner: owner, lo: lo, hi: hi}, true
}

func leftmostNonScope(n *dpst.Node) *dpst.Node {
	for n.IsScope() {
		if len(n.Children) == 0 {
			return n
		}
		n = n.Children[0]
	}
	return n
}

func rightmostNonScope(n *dpst.Node) *dpst.Node {
	for n.IsScope() {
		if len(n.Children) == 0 {
			return n
		}
		n = n.Children[len(n.Children)-1]
	}
	return n
}

// toPlacement converts an S-DPST wrap to the AST statement range it
// covers.
func toPlacement(w wrap) Placement {
	return Placement{Block: w.owner, Lo: w.lo, Hi: w.hi}
}

// depGraph reduces a group's races to the dependence DAG over the
// NS-LCA's non-scope children (§5.1): the ordered vertex list and the
// deduplicated race edges.
func depGraph(g *group) (nodes []*dpst.Node, edges [][2]int, err error) {
	nodes = dpst.NonScopeChildren(g.lca)
	pos := make(map[*dpst.Node]int, len(nodes))
	for i, n := range nodes {
		pos[n] = i
	}

	type edgeKey struct{ x, y int }
	edgeSet := make(map[edgeKey]bool)
	for _, r := range g.races {
		srcChild := dpst.NonScopeChildOn(g.lca, r.Src)
		dstChild := dpst.NonScopeChildOn(g.lca, r.Dst)
		if srcChild == nil || dstChild == nil {
			return nil, nil, fmt.Errorf("repair: race %v does not descend from its NS-LCA", r)
		}
		x, okx := pos[srcChild]
		y, oky := pos[dstChild]
		if !okx || !oky {
			return nil, nil, fmt.Errorf("repair: race child not among non-scope children")
		}
		if x == y {
			return nil, nil, fmt.Errorf("repair: race %v maps to a self edge; NS-LCA miscomputed", r)
		}
		if x > y {
			x, y = y, x
		}
		k := edgeKey{x, y}
		if !edgeSet[k] {
			edgeSet[k] = true
			edges = append(edges, [2]int{x, y})
		}
	}
	return nodes, edges, nil
}

// degradeGroup computes the coarse-but-sound placement for one group
// without touching the DP: every racing source child is joined (wrapped
// in its own finish, widening when a single-vertex wrap is not
// expressible) before its sink can start. Race-free though possibly
// over-synchronized — the graceful-degradation path taken when the
// DP-state or deadline budget trips mid-placement.
func degradeGroup(g *group) ([]Placement, error) {
	nodes, edges, err := depGraph(g)
	if err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, nil
	}
	return fallbackPlacements(nodes, edges)
}

// placeInfo records how one group's placement went — DP states
// explored, the dependence-graph size, and whether the sound fallback
// was taken — for metrics and provenance.
type placeInfo struct {
	States   int64
	Vertices int
	Edges    int
	Fallback bool
}

// placeGroup computes the placements for one NS-LCA group: dependence
// graph construction (§5.1), the DP (§5.2), and the bottom-up mapping to
// AST coordinates. maxGraph bounds the DP size; larger graphs use the
// sound fallback of wrapping each race source child in its own finish.
// Budget trips and cancellations inside the DP surface as the meter's
// typed errors.
func placeGroup(g *group, maxGraph int, m *guard.Meter) ([]Placement, placeInfo, error) {
	var info placeInfo
	nodes, edges, err := depGraph(g)
	if err != nil {
		return nil, info, err
	}
	info.Vertices, info.Edges = len(nodes), len(edges)
	if len(edges) == 0 {
		return nil, info, nil
	}
	mGraphSize.Observe(int64(len(nodes)))

	if len(nodes) > maxGraph {
		info.Fallback = true
		ps, err := fallbackPlacements(nodes, edges)
		return ps, info, err
	}

	prob := &Problem{
		N:     len(nodes),
		T:     make([]int64, len(nodes)),
		Async: make([]bool, len(nodes)),
		Edges: edges,
		Valid: func(s, e int) bool {
			_, ok := computeWrap(nodes, s, e)
			return ok
		},
		Meter: m,
	}
	for i, n := range nodes {
		prob.T[i] = n.SubtreeWork
		prob.Async[i] = n.Kind == dpst.Async
	}

	sol, err := Solve(prob)
	if err != nil {
		if _, ok := err.(*UnsatisfiableError); ok {
			info.Fallback = true
			ps, ferr := fallbackPlacements(nodes, edges)
			return ps, info, ferr
		}
		return nil, info, err
	}
	mDPStates.Add(sol.States)
	info.States = sol.States

	var out []Placement
	for i, fb := range sol.Finishes {
		w, ok := computeWrap(nodes, fb.S, fb.E)
		if !ok {
			// The DP only selects valid blocks; tolerate a mismatch by
			// falling back for this group.
			info.Fallback = true
			ps, ferr := fallbackPlacements(nodes, edges)
			return ps, info, ferr
		}
		out = append(out, toPlacement(widen(nodes, sol.Finishes, i, w)))
	}
	return out, info, nil
}

// widen hoists a finish block to the highest expressible scope when it
// is cost-neutral: pulling the STEPS immediately preceding the block
// into the finish changes neither the schedule (steps execute before the
// asyncs either way and spawn nothing) nor the critical path, but it can
// align the block with a whole scope and let the insertion climb — e.g.
// from "finish around the two recursive asyncs inside quicksort" to the
// paper's preferred "finish around the top-level call" (Figure 2).
func widen(nodes []*dpst.Node, all []FinishBlock, idx int, w wrap) wrap {
	fb := all[idx]
	best := w
	for s2 := fb.S - 1; s2 >= 0 && nodes[s2].Kind == dpst.Step; s2-- {
		covered := false
		for j, other := range all {
			if j != idx && other.S <= s2 && s2 <= other.E {
				covered = true
				break
			}
		}
		if covered {
			break
		}
		if w2, ok := computeWrap(nodes, s2, fb.E); ok && w2.p.Depth < best.p.Depth {
			best = w2
		}
	}
	return best
}

// fallbackPlacements covers each edge with a simple valid finish block:
// preferably around the source vertex alone, otherwise some (s..e) with
// s <= src <= e < sink. Always race-eliminating (the finish joins the
// source subtree before the sink's sibling starts) though possibly
// over-synchronized. Used when the dependence graph exceeds the DP size
// bound or the DP finds no valid placement.
func fallbackPlacements(nodes []*dpst.Node, edges [][2]int) ([]Placement, error) {
	mFallbacks.Inc()
	type span struct{ s, e int }
	seen := make(map[span]bool)
	var out []Placement
	for _, edge := range edges {
		src, sink := edge[0], edge[1]
		found := false
		// Candidate blocks covering src and ending before sink, smallest
		// first.
		try := func(s, e int) bool {
			if seen[span{s, e}] {
				return true // already emitted a block covering this shape
			}
			w, ok := computeWrap(nodes, s, e)
			if !ok {
				return false
			}
			seen[span{s, e}] = true
			out = append(out, toPlacement(w))
			return true
		}
		if try(src, src) {
			found = true
		} else {
			for e := src + 1; e < sink && !found; e++ {
				found = try(src, e)
			}
			for s := src - 1; s >= 0 && !found; s-- {
				found = try(s, src)
			}
		}
		if !found {
			return nil, fmt.Errorf("repair: no expressible fallback placement for edge %d->%d", src, sink)
		}
	}
	return out, nil
}
