package repair

import (
	"testing"

	"finishrepair/internal/dpst"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/race"
)

const miniMergesort = `
func mergesort(a []int, tmp []int, m int, n int) {
    if (m < n) {
        var mid = m + (n - m) / 2;
        async mergesort(a, tmp, m, mid);
        async mergesort(a, tmp, mid + 1, n);
        merge(a, tmp, m, mid, n);
    }
}
func merge(a []int, tmp []int, m int, mid int, n int) {
    var i = m;
    var j = mid + 1;
    var k = m;
    while (i <= mid && j <= n) {
        if (a[i] <= a[j]) { tmp[k] = a[i]; i = i + 1; }
        else { tmp[k] = a[j]; j = j + 1; }
        k = k + 1;
    }
    while (i <= mid) { tmp[k] = a[i]; i = i + 1; k = k + 1; }
    while (j <= n)   { tmp[k] = a[j]; j = j + 1; k = k + 1; }
    for (var t = m; t <= n; t = t + 1) { a[t] = tmp[t]; }
}
func main() {
    var size = 8;
    var a = make([]int, size);
    var tmp = make([]int, size);
    for (var i = 0; i < size; i = i + 1) { a[i] = (7 - i) * 3 % 11; }
    mergesort(a, tmp, 0, size - 1);
    var sum = 0;
    for (var i = 0; i < size; i = i + 1) { sum = sum + a[i] * i; }
    println(sum);
}
`

func TestDebugMergesortGroups(t *testing.T) {
	prog := parser.MustParse(miniMergesort)
	info := sem.MustCheck(prog)
	_, det, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
	if err != nil {
		t.Fatal(err)
	}
	groups := groupByNSLCA(det.Races())
	for _, g := range groups {
		nodes := dpst.NonScopeChildren(g.lca)
		ps, _, err := placeGroup(g, 1200, nil)
		if err != nil {
			t.Fatalf("placeGroup: %v", err)
		}
		t.Logf("NS-LCA %v: %d races, %d vertices, placements %v", g.lca, len(g.races), len(nodes), ps)
		for i, n := range nodes {
			t.Logf("  v%d: %v owner=%v stmts=%d..%d work=%d", i, n, blockID(n), n.StmtLo, n.StmtHi, n.SubtreeWork)
		}
	}
}

const miniSrc = `
func work(a []int, lo int, hi int) {
    for (var i = lo; i <= hi; i = i + 1) { a[i] = a[i] + 1; }
}

func split(a []int) {
    async work(a, 0, 3);
    async work(a, 4, 7);
    work(a, 0, 7);
}

func main() {
    var a = make([]int, 8);
    split(a);
    println(a[0]);
}
`

func TestDebugPlacements(t *testing.T) {
	prog := parser.MustParse(miniSrc)
	info := sem.MustCheck(prog)
	res, det, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	t.Logf("races: %d", len(det.Races()))
	groups := groupByNSLCA(det.Races())
	for _, g := range groups {
		nodes := dpst.NonScopeChildren(g.lca)
		t.Logf("NS-LCA %v: %d races, %d vertices", g.lca, len(g.races), len(nodes))
		for i, n := range nodes {
			t.Logf("  v%d: %v owner=%v stmts=%d..%d work=%d", i, n,
				blockID(n), n.StmtLo, n.StmtHi, n.SubtreeWork)
		}
		for _, r := range g.races {
			sc := dpst.NonScopeChildOn(g.lca, r.Src)
			dc := dpst.NonScopeChildOn(g.lca, r.Dst)
			t.Logf("  race %v: %v -> %v", r, sc, dc)
		}
		ps, _, err := placeGroup(g, 1200, nil)
		if err != nil {
			t.Fatalf("placeGroup: %v", err)
		}
		for _, p := range ps {
			t.Logf("  placement: %v", p)
		}
	}
}

func blockID(n *dpst.Node) int {
	if n.OwnerBlock == nil {
		return -1
	}
	return n.OwnerBlock.ID
}
