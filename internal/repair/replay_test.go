package repair_test

import (
	"fmt"
	"os"
	"testing"

	"finishrepair/internal/bench"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/obs"
	"finishrepair/internal/race"
	"finishrepair/internal/repair"
)

// TestRepairCapturesOnceReplaysRest pins the capture-once/analyze-many
// contract: a multi-iteration repair executes the instrumented program
// exactly once (one trace-capture span), and every later detection
// round replays the trace instead (one trace-replay span per iteration
// after the first).
func TestRepairCapturesOnceReplaysRest(t *testing.T) {
	tr := obs.New()
	prog := parser.MustParse(fibSrc)
	rep, err := repair.Repair(prog, repair.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Iterations) < 2 {
		t.Fatalf("fixture repaired in %d iteration(s); need >= 2 to exercise replay", len(rep.Iterations))
	}
	count := map[string]int{}
	for _, r := range tr.Records() {
		count[r.Name]++
	}
	if count["trace-capture"] != 1 {
		t.Errorf("trace-capture spans = %d, want exactly 1 (program must execute once)", count["trace-capture"])
	}
	if want := len(rep.Iterations) - 1; count["trace-replay"] != want {
		t.Errorf("trace-replay spans = %d, want %d (one per iteration after the first)", count["trace-replay"], want)
	}
	if count["detect/espbags"] != len(rep.Iterations) {
		t.Errorf("detect/espbags spans = %d, want %d (one analysis per iteration)", count["detect/espbags"], len(rep.Iterations))
	}
}

// repairBothModes repairs src with the replay loop and the legacy
// re-executing loop and requires byte-identical results.
func repairBothModes(t *testing.T, name, src string, v race.Variant) {
	t.Helper()
	var outs [2]string
	var reps [2]*repair.Report
	for i, re := range []bool{false, true} {
		prog := parser.MustParse(src)
		ast.StripFinishes(prog)
		rep, err := repair.Repair(prog, repair.Options{Variant: v, ReExecute: re, MaxIterations: 30})
		if err != nil {
			t.Fatalf("%s (%s, reexecute=%v): %v", name, v, re, err)
		}
		outs[i] = printer.Print(prog)
		reps[i] = rep
	}
	if outs[0] != outs[1] {
		t.Errorf("%s (%s): repaired sources differ between modes\n-- replay --\n%s\n-- re-execute --\n%s",
			name, v, outs[0], outs[1])
	}
	if reps[0].Output != reps[1].Output {
		t.Errorf("%s (%s): outputs differ: replay %q, re-execute %q", name, v, reps[0].Output, reps[1].Output)
	}
	if reps[0].Inserted != reps[1].Inserted {
		t.Errorf("%s (%s): inserted %d finishes via replay, %d via re-execute", name, v, reps[0].Inserted, reps[1].Inserted)
	}
}

// TestReplayModeMatchesReExecute differentially tests the two repair
// loops: for every benchmark program (both detector variants) and the
// checked-in example inputs, the trace-replay loop must produce the
// same repaired source, output, and insertion count as re-executing the
// program every iteration.
func TestReplayModeMatchesReExecute(t *testing.T) {
	for _, b := range bench.All() {
		for _, v := range []race.Variant{race.VariantMRW, race.VariantSRW} {
			b, v := b, v
			t.Run(fmt.Sprintf("%s-%s", b.Name, v), func(t *testing.T) {
				t.Parallel()
				repairBothModes(t, b.Name, b.Src(b.RepairSize), v)
			})
		}
	}
	for _, f := range []string{"../../testdata/buggy_fib.hj", "../../testdata/quicksort.hj"} {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		f := f
		t.Run(f, func(t *testing.T) {
			t.Parallel()
			repairBothModes(t, f, string(src), race.VariantMRW)
		})
	}
}
