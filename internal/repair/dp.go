// Package repair implements the paper's contribution: test-driven
// insertion of finish statements that eliminate the data races observed
// on a test input while maximizing parallelism and respecting the lexical
// scope of the input program.
//
// The pipeline (paper §3, Fig. 6):
//
//  1. detect races on the canonical depth-first execution (package race);
//  2. group races by the NS-LCA of their source and sink steps;
//  3. per NS-LCA, reduce the subtree to a dependence DAG over the
//     non-scope children (§5.1) and run the dynamic-programming optimal
//     finish placement (Algorithm 1, with the VALID static-scope check of
//     Algorithm 2 and the FIND extraction of Algorithm 3);
//  4. map each dynamic placement to the highest legal S-DPST insertion
//     point and from there to an AST (block, statement-range) rewrite
//     (§6);
//  5. re-run detection and iterate until race-free.
package repair

import (
	"fmt"
	"math"

	"finishrepair/internal/guard"
)

// Problem is the abstract optimal-finish-placement instance of §5.2: a
// DAG over vertices 0..N-1 (ordered left to right) where every edge
// (x, y) has x < y, vertex execution times T, and a static-validity
// predicate for candidate finish blocks.
type Problem struct {
	N     int
	T     []int64  // execution time of each vertex
	Async []bool   // whether vertex i is an async node
	Edges [][2]int // dependence edges (races), x < y
	// Valid reports whether a finish enclosing exactly vertices s..e is
	// statically expressible (Algorithm 2 / scope rules). Nil means
	// always valid.
	Valid func(s, e int) bool
	// Meter, when set, charges explored DP states against the pipeline's
	// shared budget and checks cancellation between cells; Solve returns
	// the meter's typed error mid-placement when a limit trips.
	Meter *guard.Meter
}

// FinishBlock is one (s, e) element of the FinishSet: a finish enclosing
// vertices s..e.
type FinishBlock struct {
	S, E int
}

// Solution is the DP result.
type Solution struct {
	// Cost is the optimal completion time COST(G) of the block 0..N-1.
	Cost int64
	// Finishes is the FinishSet extracted by Algorithm 3, outermost
	// first.
	Finishes []FinishBlock
	// States counts the (i, k, j) partition candidates the DP evaluated —
	// the work metric surfaced by the tracer and the repair.dp_states
	// counter.
	States int64
}

const inf = int64(math.MaxInt64 / 4)

// Solve runs the dynamic program of Algorithm 1 and extracts the finish
// set with Algorithm 3. It returns an error when some dependence cannot
// be satisfied by any statically valid finish placement.
func Solve(p *Problem) (*Solution, error) {
	n := p.N
	if n == 0 {
		return &Solution{}, nil
	}
	if len(p.T) != n || len(p.Async) != n {
		return nil, fmt.Errorf("repair: inconsistent problem arrays")
	}
	valid := p.Valid
	if valid == nil {
		valid = func(int, int) bool { return true }
	}

	// cross(i, k, j): does any edge leave i..k into k+1..j? Answered in
	// O(1) from 2-D prefix sums over the edge matrix.
	pre := newEdgePrefix(n, p.Edges)

	idx := func(i, j int) int { return i*n + j }
	opt := make([]int64, n*n)
	est := make([]int64, n*n) // est[i][j]: earliest start of j+1 given block i..j
	part := make([]int, n*n)
	fin := make([]bool, n*n)

	for i := 0; i < n; i++ {
		opt[idx(i, i)] = p.T[i]
		part[idx(i, i)] = i
		if p.Async[i] {
			est[idx(i, i)] = 0
		} else {
			est[idx(i, i)] = p.T[i]
		}
	}

	sol := &Solution{}
	for s := 2; s <= n; s++ {
		for i := 0; i+s-1 < n; i++ {
			j := i + s - 1
			cmin := inf
			bestP, bestF := -1, false
			bestE := int64(0)
			sol.States += int64(j - i)
			// Budget/cancellation check once per cell: the DP-state limit
			// and the deadline both trip mid-placement, letting the repair
			// loop degrade to the coarse placement instead of crashing or
			// running away on huge dependence graphs.
			if err := p.Meter.AddDPStates(int64(j - i)); err != nil {
				return nil, err
			}
			for k := i; k < j; k++ {
				var c, e int64
				var f bool
				if pre.cross(i, k, j) {
					// A dependence crosses the partition: a finish around
					// i..k is required; it must be statically valid.
					if !valid(i, k) {
						continue
					}
					c = opt[idx(i, k)] + opt[idx(k+1, j)]
					f = true
					e = opt[idx(i, k)] + est[idx(k+1, j)]
				} else {
					c = max64(opt[idx(i, k)], est[idx(i, k)]+opt[idx(k+1, j)])
					f = false
					e = est[idx(i, k)] + est[idx(k+1, j)]
				}
				if c < cmin {
					cmin, bestP, bestF, bestE = c, k, f, e
				}
			}
			if bestP < 0 {
				return nil, &UnsatisfiableError{I: i, J: j}
			}
			opt[idx(i, j)] = cmin
			part[idx(i, j)] = bestP
			fin[idx(i, j)] = bestF
			est[idx(i, j)] = bestE
		}
	}

	sol.Cost = opt[idx(0, n-1)]
	// Algorithm 3 (with the split corrected to begin..p / p+1..end; the
	// paper's FIND(p, end) double-counts vertex p).
	var find func(begin, end int)
	find = func(begin, end int) {
		if begin >= end {
			return
		}
		pnt := part[idx(begin, end)]
		if fin[idx(begin, end)] {
			sol.Finishes = append(sol.Finishes, FinishBlock{S: begin, E: pnt})
		}
		find(begin, pnt)
		find(pnt+1, end)
	}
	find(0, n-1)
	return sol, nil
}

// UnsatisfiableError reports a subproblem whose crossing dependences have
// no statically valid finish placement.
type UnsatisfiableError struct {
	I, J int
}

// Error implements the error interface.
func (e *UnsatisfiableError) Error() string {
	return fmt.Sprintf("repair: no statically valid finish placement for vertices %d..%d", e.I, e.J)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// edgePrefix answers rectangle-emptiness queries over the edge set.
type edgePrefix struct {
	n   int
	sum []int32 // (n+1)x(n+1) prefix sums of the 0/1 edge matrix
}

func newEdgePrefix(n int, edges [][2]int) *edgePrefix {
	w := n + 1
	sum := make([]int32, w*w)
	for _, e := range edges {
		x, y := e[0], e[1]
		sum[(x+1)*w+(y+1)]++
	}
	for r := 1; r < w; r++ {
		for c := 1; c < w; c++ {
			sum[r*w+c] += sum[(r-1)*w+c] + sum[r*w+c-1] - sum[(r-1)*w+c-1]
		}
	}
	return &edgePrefix{n: n, sum: sum}
}

// cross reports whether any edge goes from [i..k] into [k+1..j].
func (p *edgePrefix) cross(i, k, j int) bool {
	w := p.n + 1
	rect := p.sum[(k+1)*w+(j+1)] - p.sum[i*w+(j+1)] - p.sum[(k+1)*w+(k+1)] + p.sum[i*w+(k+1)]
	return rect > 0
}
