package repair_test

import (
	"strings"
	"testing"

	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/race"
	"finishrepair/internal/repair"
)

// Figure 3/4: six asyncs with execution times 500, 10, 10, 400, 600, 500
// and dependences B->D, A->F, D->F. The optimal finish placement is
// ( A ( B ) C D E ) F with critical path length 1110; the naive
// placements cost 1500-1510 (paper Figure 4).
func TestFig4OptimalPlacement(t *testing.T) {
	prob := &repair.Problem{
		N:     6,
		T:     []int64{500, 10, 10, 400, 600, 500},
		Async: []bool{true, true, true, true, true, true},
		Edges: [][2]int{{1, 3}, {0, 5}, {3, 5}},
	}
	sol, err := repair.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 1 finds ( A ( B ) C D ) E F with CPL 1100 — strictly
	// better than the best of the four placements listed in Figure 4
	// (1110); the figure's caption says "few possible finish placements",
	// not the optimum. F cannot start before A completes (t=500), so
	// COST >= 500+500 = 1000, and E then finishes at 500+600 = 1100,
	// which this placement attains.
	if sol.Cost != 1100 {
		t.Errorf("optimal cost = %d, want 1100", sol.Cost)
	}
	want := map[repair.FinishBlock]bool{{S: 0, E: 3}: true, {S: 1, E: 1}: true}
	if len(sol.Finishes) != 2 || !want[sol.Finishes[0]] || !want[sol.Finishes[1]] {
		t.Errorf("finish set = %v, want {(0,3),(1,1)}", sol.Finishes)
	}
	if !repair.Satisfies(prob, sol.Finishes) {
		t.Error("solver's finish set does not satisfy the dependences")
	}
	if got, err := repair.Evaluate(prob, sol.Finishes); err != nil || got != sol.Cost {
		t.Errorf("Evaluate(solution) = %d, %v; want %d", got, err, sol.Cost)
	}
}

// The four placements listed in paper Figure 4 must cost exactly what
// the paper reports: 1510, 1500, 1500, and 1110.
func TestFig4ListedCosts(t *testing.T) {
	prob := &repair.Problem{
		N:     6,
		T:     []int64{500, 10, 10, 400, 600, 500},
		Async: []bool{true, true, true, true, true, true},
		Edges: [][2]int{{1, 3}, {0, 5}, {3, 5}},
	}
	cases := []struct {
		name string
		fs   []repair.FinishBlock
		want int64
	}{
		{"( A ) ( B ) C ( D ) E F", []repair.FinishBlock{{0, 0}, {1, 1}, {3, 3}}, 1510},
		{"( A B ) C ( D ) E F", []repair.FinishBlock{{0, 1}, {3, 3}}, 1500},
		{"( A B C ) ( D ) E F", []repair.FinishBlock{{0, 2}, {3, 3}}, 1500},
		{"( A ( B ) C D E ) F", []repair.FinishBlock{{0, 4}, {1, 1}}, 1110},
	}
	for _, c := range cases {
		if !repair.Satisfies(prob, c.fs) {
			t.Errorf("%s: does not satisfy dependences", c.name)
		}
		got, err := repair.Evaluate(prob, c.fs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: CPL = %d, want %d", c.name, got, c.want)
		}
	}
}

const fibSrc = `
func fib(ret []int, n int) {
    if (n < 2) {
        ret[0] = n;
        return;
    }
    var x = make([]int, 1);
    var y = make([]int, 1);
    async fib(x, n - 1);
    async fib(y, n - 2);
    ret[0] = x[0] + y[0];
}

func main() {
    var result = make([]int, 1);
    async fib(result, 10);
    println(result[0]);
}
`

// repairAndVerify repairs src and checks the result is race-free and
// matches the serial elision output.
func repairAndVerify(t *testing.T, src string, opts repair.Options) (*ast.Program, *repair.Report) {
	t.Helper()
	prog := parser.MustParse(src)
	rep, err := repair.Repair(prog, opts)
	if err != nil {
		t.Fatalf("repair: %v\nprogram:\n%s", err, printer.Print(prog))
	}

	// Race-free after repair.
	info := sem.MustCheck(prog)
	_, det, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
	if err != nil {
		t.Fatalf("post-repair run: %v", err)
	}
	if n := len(det.Races()); n != 0 {
		t.Fatalf("%d races remain after repair:\n%s", n, printer.Print(prog))
	}

	// Semantics equal the serial elision.
	elided := parser.MustParse(src)
	ast.StripFinishes(elided)
	einfo := sem.MustCheck(elided)
	eres, err := interp.Run(einfo, interp.Options{Mode: interp.Elide})
	if err != nil {
		t.Fatalf("elision run: %v", err)
	}
	if rep.Output != eres.Output {
		t.Fatalf("repaired output %q != elision output %q", rep.Output, eres.Output)
	}
	return prog, rep
}

func TestRepairFib(t *testing.T) {
	prog, rep := repairAndVerify(t, fibSrc, repair.Options{})
	if rep.Inserted == 0 {
		t.Fatal("no finishes inserted")
	}
	// The paper's repair (Fig. 15) places one finish around the two
	// recursive asyncs inside fib and one around the top-level async in
	// main; since fib is one static function, exactly two static
	// placements are expected.
	if n := ast.CountFinishes(prog); n != 2 {
		t.Errorf("finishes in repaired program = %d, want 2\n%s", n, printer.Print(prog))
	}
	src := printer.Print(prog)
	if !strings.Contains(src, "finish") {
		t.Error("printed program lacks finish")
	}
	t.Logf("repaired in %d iterations, %d races, output %q",
		len(rep.Iterations), rep.TotalRaces(), rep.Output)
	t.Logf("\n%s", src)
}

func TestRepairFibSRW(t *testing.T) {
	_, rep := repairAndVerify(t, fibSrc, repair.Options{Variant: race.VariantSRW})
	if len(rep.Iterations) < 2 {
		t.Errorf("SRW repair took %d iterations, want >= 2 (repair + confirm)", len(rep.Iterations))
	}
}

// The mergesort example from paper Figure 1: the repair should put a
// finish around the two recursive calls (before merge).
const mergesortSrc = `
func mergesort(a []int, tmp []int, m int, n int) {
    if (m < n) {
        var mid = m + (n - m) / 2;
        async mergesort(a, tmp, m, mid);
        async mergesort(a, tmp, mid + 1, n);
        merge(a, tmp, m, mid, n);
    }
}

func merge(a []int, tmp []int, m int, mid int, n int) {
    var i = m;
    var j = mid + 1;
    var k = m;
    while (i <= mid && j <= n) {
        if (a[i] <= a[j]) {
            tmp[k] = a[i];
            i = i + 1;
        } else {
            tmp[k] = a[j];
            j = j + 1;
        }
        k = k + 1;
    }
    while (i <= mid) { tmp[k] = a[i]; i = i + 1; k = k + 1; }
    while (j <= n)   { tmp[k] = a[j]; j = j + 1; k = k + 1; }
    for (var t = m; t <= n; t = t + 1) { a[t] = tmp[t]; }
}

func main() {
    var size = 64;
    var a = make([]int, size);
    var tmp = make([]int, size);
    for (var i = 0; i < size; i = i + 1) {
        a[i] = (i * 1103515245 + 12345) % 1000;
    }
    mergesort(a, tmp, 0, size - 1);
    var ok = true;
    for (var i = 1; i < size; i = i + 1) {
        if (a[i - 1] > a[i]) { ok = false; }
    }
    println(ok);
}
`

func TestRepairMergesort(t *testing.T) {
	prog, rep := repairAndVerify(t, mergesortSrc, repair.Options{})
	if rep.Output != "true\n" {
		t.Errorf("repaired mergesort output %q, want sorted (true)", rep.Output)
	}
	t.Logf("inserted %d finishes, %d races\n%s",
		rep.Inserted, rep.TotalRaces(), printer.Print(prog))
}

// Figure 5: scoping constraints. The races A2->A4 and A3->A4 cannot be
// fixed by a finish enclosing A2 and A3 but not A1; the tool must either
// enclose A1,A2 in the if and A3 separately, or all three.
const fig5Src = `
var x = 0;
var y = 0;
var z = 0;

func main() {
    var c = 1;
    if (c > 0) {
        async { z = 1; }       // A1
        async { x = 2; }       // A2
    }
    async { y = 3; }           // A3
    async { println(x + y); } // A4
}
`

func TestRepairFig5Scoping(t *testing.T) {
	prog, rep := repairAndVerify(t, fig5Src, repair.Options{})
	t.Logf("inserted %d finishes\n%s", rep.Inserted, printer.Print(prog))
	// The output after repair must be the serial elision's.
	if rep.Output != "5\n" {
		t.Errorf("output %q, want \"5\\n\"", rep.Output)
	}
}
