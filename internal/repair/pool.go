package repair

import (
	"errors"
	"sync"
	"sync/atomic"

	"finishrepair/internal/guard"
	"finishrepair/internal/obs"
)

// runIndexed executes fn(worker, i) for every i in [0, n) on at most
// workers goroutines, handing out indices through a shared atomic
// counter. workers <= 1 (or n <= 1) degenerates to a plain loop on the
// calling goroutine, so the sequential path pays nothing for the
// abstraction and parallel/serial runs share one code path.
func runIndexed(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// SolveAll solves independent placement problems on a bounded worker
// pool and returns the solutions indexed like probs. The problems must
// be independent (per-NS-LCA DP instances are: each owns its tables and
// only the shared meter, whose counters are atomic, is touched
// concurrently). On error the first failing problem in index order
// wins, so the result does not depend on scheduling.
func SolveAll(probs []*Problem, workers int) ([]*Solution, error) {
	sols := make([]*Solution, len(probs))
	errs := make([]error, len(probs))
	runIndexed(len(probs), workers, func(_, i int) {
		sols[i], errs[i] = Solve(probs[i])
	})
	for _, err := range errs {
		if err != nil {
			return sols, err
		}
	}
	return sols, nil
}

// placeGroups computes the finish placements for every NS-LCA group of
// one repair round. The per-group placement problems are independent, so
// they run on a worker pool (workers <= 1 is sequential); the results
// are then accumulated strictly in group order — NS-LCA DFS number —
// so the chosen placement set, and therefore the rewritten source, is
// identical for any worker count.
//
// Budget semantics mirror the sequential loop: the first DP-state or
// deadline trip flips a shared degraded flag (groups solved after it
// skip the DP and take the coarse sound placement directly), lifts a
// tripped deadline so the mandatory verification run can still finish,
// and its message is reported as degradedReason — first in group order
// when several workers trip concurrently. User cancellation is not
// degraded; it propagates as err. Which groups still get exact DP
// placements around a trip depends on timing, exactly as it does
// sequentially.
//
// span, when non-nil and the pool is actually parallel, gets one
// "dp-worker" child per worker recording how many groups it solved.
//
// outcomes has one entry per group, in group order, recording that
// group's computed placements, DP effort, and whether the round applied
// them — the raw material of the provenance explain record.
//
// selector, when non-nil, is offered each group's finish placements and
// may substitute an alternative repair (isolated wrapping); it runs in
// the sequential accumulation pass, in group order, so strategy choice
// is identical for any worker count.
func placeGroups(groups []*group, maxGraph int, m *guard.Meter, workers int, span *obs.Span, selector func(*group, []Placement) ([]Placement, *strategyChoice)) (placements []Placement, outcomes []groupOutcome, states int64, degradedReason string, err error) {
	type result struct {
		ps      []Placement
		info    placeInfo
		err     error
		tripped *guard.BudgetExceededError
	}
	results := make([]result, len(groups))
	var degraded atomic.Bool

	solve := func(i int) {
		g := groups[i]
		r := &results[i]
		if degraded.Load() {
			r.info.Fallback = true
			r.ps, r.err = degradeGroup(g)
			return
		}
		ps, info, serr := placeGroup(g, maxGraph, m)
		r.info = info
		var bx *guard.BudgetExceededError
		if errors.As(serr, &bx) &&
			(bx.Resource == guard.ResourceDPStates || bx.Resource == guard.ResourceDeadline) {
			// Graceful degradation: commit the sound coarse-but-valid
			// placement instead of failing mid-repair. A tripped deadline
			// is lifted so the verification run can complete (the op
			// budget keeps it bounded).
			r.tripped = bx
			if bx.Resource == guard.ResourceDeadline {
				m.Lift(guard.ResourceDeadline)
			}
			degraded.Store(true)
			r.info.Fallback = true
			r.ps, r.err = degradeGroup(g)
			return
		}
		r.ps, r.err = ps, serr
	}

	nw := workers
	if nw > len(groups) {
		nw = len(groups)
	}
	var wspans []*obs.Span
	var wcounts []int64
	if nw > 1 {
		wspans = make([]*obs.Span, nw)
		wcounts = make([]int64, nw)
		for w := range wspans {
			wspans[w] = span.Child("dp-worker").SetInt("worker", int64(w))
		}
	}
	runIndexed(len(groups), nw, func(w, i int) {
		if wcounts != nil {
			wcounts[w]++
		}
		// Protect inside the worker: a contained panic must surface as
		// this group's error, not crash the process.
		if perr := guard.Protect("dp-place", func() error { solve(i); return nil }); perr != nil {
			results[i].err = perr
		}
	})
	for w, ws := range wspans {
		ws.SetInt("groups", wcounts[w]).End()
	}

	// Deterministic accumulation in group order. Paper §6 steps 3(d)-(f):
	// placements inserted for an earlier NS-LCA can fix later groups'
	// races, so a group's placements are accepted only when identical to
	// or disjoint from those already chosen; skipped groups are
	// re-examined by the next detection round.
	chosen := make(map[Placement]bool)
	overlaps := func(p Placement) bool {
		for c := range chosen {
			if c.Block == p.Block && p.Lo <= c.Hi && c.Lo <= p.Hi && c != p {
				return true
			}
		}
		return false
	}
	outcomes = make([]groupOutcome, len(groups))
	for i := range results {
		r := &results[i]
		o := &outcomes[i]
		o.g = groups[i]
		o.ps = r.ps
		o.info = r.info
		states += r.info.States
		mDPStatesPerGroup.Observe(r.info.States)
		if r.tripped != nil && degradedReason == "" {
			mDegraded.Inc()
			degradedReason = r.tripped.Error()
		}
		if r.err != nil {
			if err == nil {
				err = r.err
			}
			o.note = r.err.Error()
			continue
		}
		if selector != nil && len(r.ps) > 0 {
			r.ps, o.choice = selector(groups[i], r.ps)
			o.ps = r.ps
		}
		conflict := false
		for _, p := range r.ps {
			if !chosen[p] && overlaps(p) {
				conflict = true
				break
			}
		}
		if conflict {
			// Paper §6 steps 3(d)-(f): deferred to the next detection round.
			o.note = "placements overlap an earlier group's; deferred to next round"
			continue
		}
		o.applied = len(r.ps) > 0
		for _, p := range r.ps {
			if !chosen[p] {
				chosen[p] = true
				placements = append(placements, p)
			}
		}
	}
	if err != nil {
		return nil, outcomes, states, degradedReason, err
	}
	return placements, outcomes, states, degradedReason, nil
}
