package repair_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/parinterp"
	"finishrepair/internal/progen"
	"finishrepair/internal/race"
	"finishrepair/internal/repair"
)

// The central end-to-end property (the paper's Problem 1): for ANY
// structured parallel program, repairing its finish-stripped version
// yields a program that (1) is data-race-free on the input, (2) has the
// semantics of the serial elision, and (3) still parses and checks after
// printing.
func TestRepairRandomProgramsEndToEnd(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(1000); seed < 1100; seed++ {
		src := progen.Gen(seed, cfg)

		// Reference: the serial elision.
		ref := parser.MustParse(src)
		ast.StripFinishes(ref)
		refInfo := sem.MustCheck(ref)
		refRes, err := interp.Run(refInfo, interp.Options{Mode: interp.Elide})
		if err != nil {
			t.Fatalf("seed %d elision: %v", seed, err)
		}

		// Strip + repair.
		prog := parser.MustParse(src)
		ast.StripFinishes(prog)
		rep, err := repair.Repair(prog, repair.Options{})
		if err != nil {
			t.Fatalf("seed %d repair: %v\n%s", seed, err, src)
		}
		if rep.Output != refRes.Output {
			t.Fatalf("seed %d: repaired output %q != elision %q\n%s",
				seed, rep.Output, refRes.Output, printer.Print(prog))
		}

		// Race-free after repair (independent re-check with the other
		// oracle).
		info := sem.MustCheck(prog)
		_, det, err := race.Detect(info, race.VariantMRW, race.NewDPSTOracle())
		if err != nil {
			t.Fatalf("seed %d recheck: %v", seed, err)
		}
		if n := len(det.Races()); n != 0 {
			t.Fatalf("seed %d: %d races remain\n%s", seed, n, printer.Print(prog))
		}

		// The repaired source round-trips.
		printed := printer.Print(prog)
		reparsed, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("seed %d: repaired source unparsable: %v", seed, err)
		}
		if _, err := sem.Check(reparsed); err != nil {
			t.Fatalf("seed %d: repaired source ill-typed: %v", seed, err)
		}
	}
}

// SRW-driven repair must converge to the same race-free semantics even
// though each run sees only a subset of the races.
func TestRepairRandomProgramsSRW(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(2000); seed < 2030; seed++ {
		src := progen.Gen(seed, cfg)
		ref := parser.MustParse(src)
		ast.StripFinishes(ref)
		refRes, err := interp.Run(sem.MustCheck(ref), interp.Options{Mode: interp.Elide})
		if err != nil {
			t.Fatal(err)
		}
		prog := parser.MustParse(src)
		ast.StripFinishes(prog)
		rep, err := repair.Repair(prog, repair.Options{Variant: race.VariantSRW, MaxIterations: 30})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if rep.Output != refRes.Output {
			t.Fatalf("seed %d: SRW repair changed semantics", seed)
		}
	}
}

// Repaired programs must run correctly with REAL parallelism: the
// taskpar execution equals the serial elision. (Run with -race to also
// have the Go race detector cross-check race freedom.)
func TestRepairedProgramsRunParallel(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(3000); seed < 3020; seed++ {
		src := progen.Gen(seed, cfg)
		prog := parser.MustParse(src)
		ast.StripFinishes(prog)
		rep, err := repair.Repair(prog, repair.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		info := sem.MustCheck(prog)
		for try := 0; try < 3; try++ {
			res, err := parinterp.Run(info, parinterp.Options{})
			if err != nil {
				t.Fatalf("seed %d: parallel run: %v", seed, err)
			}
			if res.Output != rep.Output {
				t.Fatalf("seed %d try %d: parallel %q != sequential %q\n%s",
					seed, try, res.Output, rep.Output, printer.Print(prog))
			}
		}
	}
}

// Idempotence: repairing an already-race-free program inserts nothing.
func TestRepairIdempotent(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(4000); seed < 4030; seed++ {
		src := progen.Gen(seed, cfg)
		prog := parser.MustParse(src)
		ast.StripFinishes(prog)
		if _, err := repair.Repair(prog, repair.Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		before := printer.Print(prog)
		rep2, err := repair.Repair(prog, repair.Options{})
		if err != nil {
			t.Fatalf("seed %d second repair: %v", seed, err)
		}
		if rep2.Inserted != 0 {
			t.Fatalf("seed %d: second repair inserted %d finishes", seed, rep2.Inserted)
		}
		if printer.Print(prog) != before {
			t.Fatalf("seed %d: second repair modified the program", seed)
		}
	}
}

// ----------------------------------------------------------------------
// DP solver properties against brute force.

// bruteForce enumerates every properly nested finish set over intervals
// of 0..n-1 that satisfies the dependences and returns the minimum cost.
func bruteForce(t *testing.T, p *repair.Problem) (int64, bool) {
	t.Helper()
	var intervals [][2]int
	for s := 0; s < p.N; s++ {
		for e := s; e < p.N; e++ {
			intervals = append(intervals, [2]int{s, e})
		}
	}
	best := int64(-1)
	found := false
	var rec func(i int, chosen []repair.FinishBlock)
	rec = func(i int, chosen []repair.FinishBlock) {
		if i == len(intervals) {
			if !repair.Satisfies(p, chosen) {
				return
			}
			c, err := repair.Evaluate(p, chosen)
			if err != nil {
				return // partially overlapping; skip
			}
			if !found || c < best {
				best, found = c, true
			}
			return
		}
		rec(i+1, chosen)
		rec(i+1, append(chosen, repair.FinishBlock{S: intervals[i][0], E: intervals[i][1]}))
	}
	rec(0, nil)
	return best, found
}

// Property: on small random instances with no static restrictions,
// Algorithm 1 attains the brute-force optimum, its reported cost equals
// the evaluation of its own finish set, and the finish set satisfies all
// dependences.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(3) // 2..4 vertices: brute force is 2^(n(n+1)/2)
		p := &repair.Problem{N: n, T: make([]int64, n), Async: make([]bool, n)}
		for i := 0; i < n; i++ {
			p.T[i] = int64(1 + rng.Intn(20))
			p.Async[i] = rng.Intn(2) == 0
		}
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if rng.Intn(3) == 0 {
					p.Edges = append(p.Edges, [2]int{x, y})
				}
			}
		}
		sol, err := repair.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v (problem %+v)", trial, err, p)
		}
		if !repair.Satisfies(p, sol.Finishes) {
			t.Fatalf("trial %d: solution %v violates dependences %v", trial, sol.Finishes, p.Edges)
		}
		got, err := repair.Evaluate(p, sol.Finishes)
		if err != nil {
			t.Fatalf("trial %d: evaluate: %v", trial, err)
		}
		if got != sol.Cost {
			t.Fatalf("trial %d: Evaluate(sol)=%d but Cost=%d (%+v, finishes %v)",
				trial, got, sol.Cost, p, sol.Finishes)
		}
		want, ok := bruteForce(t, p)
		if !ok {
			t.Fatalf("trial %d: brute force found no valid set but Solve did", trial)
		}
		if sol.Cost != want {
			t.Fatalf("trial %d: Solve=%d, brute force=%d (%+v)", trial, sol.Cost, want, p)
		}
	}
}

// Property (quick): without edges, the cost never exceeds the serial sum
// and never undercuts the maximum single vertex.
func TestSolveBounds(t *testing.T) {
	f := func(times []uint8, asyncMask uint16) bool {
		n := len(times)
		if n == 0 || n > 12 {
			return true
		}
		p := &repair.Problem{N: n, T: make([]int64, n), Async: make([]bool, n)}
		var sum, max int64
		for i, v := range times {
			p.T[i] = int64(v%31) + 1
			p.Async[i] = asyncMask&(1<<i) != 0
			sum += p.T[i]
			if p.T[i] > max {
				max = p.T[i]
			}
		}
		sol, err := repair.Solve(p)
		if err != nil {
			return false
		}
		return sol.Cost >= max && sol.Cost <= sum && len(sol.Finishes) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
