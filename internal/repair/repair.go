package repair

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"finishrepair/internal/dpst"
	"finishrepair/internal/faults"
	"finishrepair/internal/guard"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/obs"
	"finishrepair/internal/obs/provenance"
	"finishrepair/internal/race"
	"finishrepair/internal/trace"
)

// Loop-level metrics; the placement metrics live in placement.go.
var (
	mIterations   = obs.Default().Counter("repair.iterations")
	mRacesFound   = obs.Default().Counter("repair.races_detected")
	mInserted     = obs.Default().Counter("repair.finishes_inserted")
	mDegraded     = obs.Default().Counter("repair.degraded_placements")
	mTraceReplays = obs.Default().Counter("repair.trace_replays")
	mPrunedSerial = obs.Default().Counter("repair.groups_pruned_serial")
	// Per-iteration stage latency distributions, mirroring the
	// Iteration.DetectTime/PlaceTime/RewriteTime fields.
	mStageDetectNs  = obs.Default().Histogram("repair.stage_detect_ns")
	mStagePlaceNs   = obs.Default().Histogram("repair.stage_place_ns")
	mStageRewriteNs = obs.Default().Histogram("repair.stage_rewrite_ns")
)

// Options configures the repair loop.
type Options struct {
	// Variant selects the detector (default MRW, which finds all races in
	// one run; SRW may need extra iterations).
	Variant race.Variant
	// Oracle constructs the ordering oracle per detection run (default
	// ESP-Bags).
	Oracle func() race.Oracle
	// MaxIterations bounds repair/re-detect rounds (default 10).
	MaxIterations int
	// MaxGraph bounds the dependence-graph size handled by the O(n^3)
	// DP; larger graphs use the sound fallback placement (default 1200).
	MaxGraph int
	// UseTraceFiles round-trips detected races through the binary trace
	// encoding, mirroring the paper's detector/analyzer file boundary
	// (default true).
	UseTraceFiles bool
	// Tracer records per-phase spans of every iteration (sem-check,
	// detect/verify, trace-io, group-nslca, dp-place, rewrite). Nil
	// disables tracing at zero cost.
	Tracer *obs.Tracer
	// ParentSpan, when set, nests the repair's span tree under it
	// instead of opening a new root on Tracer (callers wrapping the
	// repair in a larger traced phase, e.g. the bench harness).
	ParentSpan *obs.Span
	// Meter threads the pipeline's shared budget and cancellation state
	// through every phase (detect runs, the DP, the loop itself). Nil
	// means unlimited and never canceled.
	Meter *guard.Meter
	// Engine selects the race-detector backend (default ESP-Bags).
	// EngineBoth cross-checks ESP-Bags against the vector-clock engine on
	// every analysis and fails the repair with a *race.DisagreementError
	// if they ever disagree.
	Engine race.EngineKind
	// ReExecute forces the legacy loop that re-executes the instrumented
	// program on every iteration instead of capturing the event trace
	// once and replaying it with virtual finish scopes. It exists for
	// differential testing of the two paths and ignores Engine.
	ReExecute bool
	// Workers bounds the analysis parallelism: with Engine Both the two
	// detector engines analyze the captured trace concurrently, and the
	// independent per-NS-LCA placement problems are solved on a worker
	// pool of this size. Results are accumulated in deterministic NS-LCA
	// order, so the repaired program is byte-identical for any worker
	// count. 0 or 1 is fully sequential.
	Workers int
	// OnRaces, when set, observes every detection round's race list
	// before any grouping or rewriting. The static-analysis integration
	// uses it to mark which static race candidates the test execution
	// actually exercised (the coverage-gap report of hjrepair -vet).
	OnRaces func([]*race.Race)
	// MHP, when set, is a conservative may-happen-in-parallel oracle
	// over S-DPST nodes. NS-LCA groups none of whose race pairs may run
	// in parallel statically are skipped before placement. Because a
	// sound oracle can never rule out a dynamically detected race, the
	// filter is a provable no-op on outputs; it exists to skip placement
	// work when a sound-but-incomplete oracle is supplied, and is
	// exercised as a cross-check of the static analysis.
	MHP func(src, dst *dpst.Node) bool
	// Explain, when non-nil, receives the structured provenance of the
	// repair: per iteration, the detected race pairs, their NS-LCA
	// groups, the DP placement decisions, and the tree's critical path.
	// Recording costs one cpl.Analyze per round plus the conversion of
	// races/groups to their provenance form; leave nil on hot paths.
	Explain *provenance.Explain
	// Strategy selects how race groups are eliminated: finish insertion
	// (the zero value — the paper's repair and the library default),
	// isolated wrapping of commutative updates, or per-group automatic
	// choice by post-repair critical path. Strategies other than finish
	// are evaluated only by the trace-replay loop; ReExecute ignores
	// this field and always inserts finishes.
	Strategy Strategy

	// defaultOracle records that the caller left Oracle unset: with the
	// stock ESP-Bags oracle, Engine Both + Workers > 1 runs the fused
	// dual-oracle engine (single shadow scan, per-query cross-check,
	// shardable). A custom Oracle pins the legacy two-engine
	// differential, whose race-set comparison is oracle-agnostic.
	defaultOracle bool
}

func (o *Options) fill() {
	if o.Oracle == nil {
		o.defaultOracle = true
		o.Oracle = func() race.Oracle { return race.NewBagsOracle() }
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 10
	}
	if o.MaxGraph == 0 {
		o.MaxGraph = 1200
	}
}

// AppliedRange is a scope insertion that was actually applied, in
// replayable form: block identity, the (post-merge) statement range,
// the synthesized construct (finish or isolated), and the isolated
// lock class (see Placement.Class).
type AppliedRange struct {
	BlockID int
	Lo, Hi  int
	Kind    trace.RangeKind
	Class   int
}

// Iteration records one detect/place/rewrite round.
type Iteration struct {
	Races      int
	NSLCAs     int
	Placements int
	SDPSTNodes int
	// DPStates counts the dynamic-programming states explored by this
	// round's finish placements.
	DPStates int64
	// Applied lists the finish insertions of this iteration in
	// application order, for Replay.
	Applied []AppliedRange
	// DetectTime covers the instrumented execution (data race detection
	// and S-DPST construction); RepairTime covers trace I/O, dynamic and
	// static finish placement, and the AST rewrite. PlaceTime and
	// RewriteTime break RepairTime down into the grouping+DP phase and
	// the AST rewrite phase.
	DetectTime  time.Duration
	RepairTime  time.Duration
	PlaceTime   time.Duration
	RewriteTime time.Duration
}

// Report summarizes a repair.
type Report struct {
	Iterations []Iteration
	// Inserted is the total number of finish statements inserted.
	Inserted int
	// Output is the program output of the final (race-free) detection
	// run.
	Output string
	// TraceBytes is the total size of the race trace files produced.
	TraceBytes int
	// Degraded reports that at least one placement fell back to the
	// coarse sound placement because the DP-state or deadline budget
	// tripped mid-placement; DegradedReason carries the first trip. The
	// repaired program is still verified race-free, just possibly
	// over-synchronized.
	Degraded       bool
	DegradedReason string
}

// TotalRaces sums the races found across iterations.
func (r *Report) TotalRaces() int {
	n := 0
	for _, it := range r.Iterations {
		n += it.Races
	}
	return n
}

// TotalDPStates sums the DP states explored across iterations.
func (r *Report) TotalDPStates() int64 {
	var n int64
	for _, it := range r.Iterations {
		n += it.DPStates
	}
	return n
}

// MaxIterationsError reports that the iteration bound was exhausted
// before a detection run came back race-free. The partial Report (with
// every completed iteration) is still returned alongside it.
type MaxIterationsError struct {
	// Iterations is the bound that was exhausted.
	Iterations int
	// RemainingRaces is the race count of the last detection run.
	RemainingRaces int
}

// Error implements the error interface.
func (e *MaxIterationsError) Error() string {
	return fmt.Sprintf("repair: %d race(s) remain after %d iterations", e.RemainingRaces, e.Iterations)
}

// Repair runs the test-driven repair loop on prog, mutating it in place:
// detect races on the canonical execution, compute finish placements,
// and repeat until a detection run is race-free. The default loop
// executes the instrumented program exactly once — iteration 0 captures
// the event-trace IR — and every later round replays that trace with
// the accumulated finish scopes injected virtually; the AST is
// rewritten once on exit. Options.ReExecute selects the legacy loop
// that re-executes and rewrites on every iteration.
func Repair(prog *ast.Program, opts Options) (*Report, error) {
	opts.fill()
	if opts.ReExecute {
		return repairReExecute(prog, opts)
	}
	return repairReplay(prog, opts)
}

// repairReExecute is the legacy loop: every iteration re-runs the
// instrumented program on the rewritten AST.
func repairReExecute(prog *ast.Program, opts Options) (*Report, error) {
	rep := &Report{}
	root := opts.ParentSpan.Child("repair")
	if opts.ParentSpan == nil {
		root = opts.Tracer.Start("repair")
	}
	defer func() {
		root.SetInt("iterations", int64(len(rep.Iterations))).
			SetInt("races_total", int64(rep.TotalRaces())).
			SetInt("finishes_inserted", int64(rep.Inserted)).
			End()
	}()
	for iter := 0; ; iter++ {
		if iter >= opts.MaxIterations {
			remaining := 0
			if n := len(rep.Iterations); n > 0 {
				remaining = rep.Iterations[n-1].Races
			}
			return rep, &MaxIterationsError{Iterations: iter, RemainingRaces: remaining}
		}
		// Cancellation gate between rounds; the phases below also check
		// from their own hot loops.
		opts.Meter.SetPhase("repair")
		if err := opts.Meter.Check(); err != nil {
			return rep, err
		}
		mIterations.Inc()
		iterSpan := root.Child("iteration").SetInt("n", int64(iter))
		iterErr := func(err error) (*Report, error) {
			iterSpan.SetStr("error", err.Error()).End()
			return rep, err
		}

		semSpan := iterSpan.Child("sem-check")
		info, err := sem.Check(prog)
		semSpan.End()
		if err != nil {
			return iterErr(fmt.Errorf("repair: program invalid after rewrite: %w", err))
		}

		detSpan := iterSpan.Child("detect").SetStr("variant", opts.Variant.String())
		t0 := time.Now()
		var res *interp.Result
		var det race.Detector
		err = guard.Protect("detect", func() error {
			r, d, err := race.DetectWith(info, opts.Variant, opts.Oracle(), opts.Meter)
			res, det = r, d
			return err
		})
		if err != nil {
			detSpan.End()
			return iterErr(fmt.Errorf("repair: execution failed: %w", err))
		}
		detectTime := time.Since(t0)
		mStageDetectNs.Observe(detectTime.Nanoseconds())
		if len(det.Races()) == 0 {
			// The race-free confirmation round is the paper's "verify"
			// stage (Fig. 6); rename so traces show it as such.
			detSpan.Rename("verify")
		}
		detSpan.SetInt("races", int64(len(det.Races()))).
			SetInt("sdpst_nodes", int64(res.Tree.NumNodes())).
			End()

		t1 := time.Now()
		races := det.Races()
		mRacesFound.Add(int64(len(races)))
		if opts.UseTraceFiles {
			ioSpan := iterSpan.Child("trace-io")
			var buf bytes.Buffer
			err = guard.Protect("trace-io", func() error {
				opts.Meter.SetPhase("trace-io")
				if err := faults.Inject(faults.TraceIO); err != nil {
					return err
				}
				if err := race.WriteTrace(&buf, races); err != nil {
					return err
				}
				rep.TraceBytes += buf.Len()
				var rerr error
				races, rerr = race.ReadTrace(&buf, res.Tree)
				return rerr
			})
			ioSpan.SetInt("trace_bytes", int64(buf.Len())).End()
			if err != nil {
				return iterErr(err)
			}
		}

		if opts.OnRaces != nil {
			opts.OnRaces(races)
		}
		it := Iteration{
			Races:      len(races),
			SDPSTNodes: res.Tree.NumNodes(),
			DetectTime: detectTime,
		}
		if len(races) == 0 {
			it.RepairTime = time.Since(t1)
			rep.Iterations = append(rep.Iterations, it)
			rep.Output = res.Output
			if opts.Explain != nil {
				opts.Explain.Iterations = append(opts.Explain.Iterations,
					provenance.Iteration{N: iter, CPL: provCPL(res.Tree)})
				opts.Explain.Converged = true
				opts.Explain.Degraded = rep.DegradedReason
			}
			iterSpan.SetInt("races", 0).End()
			return rep, nil
		}

		tPlace := time.Now()
		groupSpan := iterSpan.Child("group-nslca")
		var groups, prunedGroups []*group
		err = guard.Protect("group-nslca", func() error {
			opts.Meter.SetPhase("group-nslca")
			if err := faults.Inject(faults.GroupNSLCA); err != nil {
				return err
			}
			groups = groupByNSLCA(races)
			if opts.MHP != nil {
				groups, prunedGroups = pruneSerialGroups(groups, opts.MHP)
			}
			return nil
		})
		groupSpan.SetInt("groups", int64(len(groups))).End()
		if err != nil {
			return iterErr(err)
		}
		it.NSLCAs = len(groups)
		// Paper §6 steps 3(d)-(f): placements inserted for an earlier
		// NS-LCA can fix later groups' races (recursive programs visit
		// the same static code at many dynamic nodes, and skewed
		// instances may prefer a different — overlapping — placement).
		// We therefore accept a group's placements only when they are
		// identical to or disjoint from those already chosen; skipped
		// groups are re-examined by the next detection run, which sees
		// the updated program.
		placeSpan := iterSpan.Child("dp-place")
		var placements []Placement
		var outcomes []groupOutcome
		err = guard.Protect("dp-place", func() error {
			opts.Meter.SetPhase("dp-place")
			if err := faults.Inject(faults.DPPlace); err != nil {
				return err
			}
			var reason string
			var perr error
			placements, outcomes, it.DPStates, reason, perr = placeGroups(groups, opts.MaxGraph, opts.Meter, opts.Workers, placeSpan, nil)
			if reason != "" {
				rep.Degraded = true
				if rep.DegradedReason == "" {
					rep.DegradedReason = reason
				}
			}
			return perr
		})
		placeSpan.SetInt("dp_states", it.DPStates).
			SetInt("placements", int64(len(placements))).
			End()
		if err != nil {
			return iterErr(err)
		}
		it.PlaceTime = time.Since(tPlace)
		mStagePlaceNs.Observe(it.PlaceTime.Nanoseconds())
		if opts.Explain != nil {
			pit := provenance.Iteration{N: iter, Races: provRaces(races), CPL: provCPL(res.Tree)}
			for _, o := range outcomes {
				pit.Groups = append(pit.Groups, provGroup(o))
			}
			for _, pg := range prunedGroups {
				pit.Groups = append(pit.Groups, provPruned(pg))
			}
			opts.Explain.Iterations = append(opts.Explain.Iterations, pit)
		}
		if len(placements) == 0 {
			return iterErr(fmt.Errorf("repair: %d races but no placements computed", len(races)))
		}

		tRewrite := time.Now()
		rewriteSpan := iterSpan.Child("rewrite")
		var applied []AppliedRange
		err = guard.Protect("rewrite", func() error {
			opts.Meter.SetPhase("rewrite")
			if err := faults.Inject(faults.Rewrite); err != nil {
				return err
			}
			var rerr error
			applied, rerr = applyPlacements(prog, placements)
			return rerr
		})
		if err != nil {
			rewriteSpan.End()
			return iterErr(err)
		}
		inserted := len(applied)
		rewriteSpan.SetInt("finishes_inserted", int64(inserted)).End()
		it.RewriteTime = time.Since(tRewrite)
		mStageRewriteNs.Observe(it.RewriteTime.Nanoseconds())
		mInserted.Add(int64(inserted))
		it.Placements = inserted
		it.Applied = applied
		it.RepairTime = time.Since(t1)
		rep.Inserted += inserted
		rep.Iterations = append(rep.Iterations, it)
		iterSpan.SetInt("races", int64(it.Races)).
			SetInt("finishes_inserted", int64(inserted)).
			End()
	}
}

// repairReplay is the capture-once/analyze-many loop. Iteration 0
// semantics-checks the program and records the event-trace IR from one
// instrumented execution; every detection round (including the first)
// replays that trace into a detector engine, with the finish scopes
// accumulated so far injected virtually. The program text is only
// touched once, on exit, when the accumulated scope set is applied.
func repairReplay(prog *ast.Program, opts Options) (*Report, error) {
	rep := &Report{}
	root := opts.ParentSpan.Child("repair")
	if opts.ParentSpan == nil {
		root = opts.Tracer.Start("repair")
	}
	defer func() {
		root.SetInt("iterations", int64(len(rep.Iterations))).
			SetInt("races_total", int64(rep.TotalRaces())).
			SetInt("finishes_inserted", int64(rep.Inserted)).
			End()
	}()

	var (
		captured *interp.Result
		tr       *trace.Trace
		info     *sem.Info
		// virtual is the accumulated finish-scope set, kept canonical
		// (deduplicated, partial overlaps merged) in the coordinates of
		// the original program.
		virtual []trace.FinishRange
	)

	// finish materializes the accumulated virtual scopes as real finish
	// statements and records the applied insertions on the last
	// iteration, so Replay can re-apply them to a fresh parse.
	finish := func() error {
		rep.Inserted = 0
		if len(virtual) == 0 {
			return nil
		}
		placements, err := virtualPlacements(prog, virtual)
		if err != nil {
			return err
		}
		applied, err := applyPlacements(prog, placements)
		if err != nil {
			return err
		}
		mInserted.Add(int64(len(applied)))
		rep.Inserted = len(applied)
		if n := len(rep.Iterations); n > 0 {
			rep.Iterations[n-1].Applied = applied
		}
		return nil
	}

	for iter := 0; ; iter++ {
		if iter >= opts.MaxIterations {
			remaining := 0
			if n := len(rep.Iterations); n > 0 {
				remaining = rep.Iterations[n-1].Races
			}
			// Mirror the legacy loop, which leaves partial repairs
			// applied when the bound trips.
			if err := finish(); err != nil {
				return rep, err
			}
			return rep, &MaxIterationsError{Iterations: iter, RemainingRaces: remaining}
		}
		opts.Meter.SetPhase("repair")
		if err := opts.Meter.Check(); err != nil {
			_ = finish()
			return rep, err
		}
		mIterations.Inc()
		iterSpan := root.Child("iteration").SetInt("n", int64(iter))
		iterErr := func(err error) (*Report, error) {
			// Keep prog in the same state the legacy loop would leave it:
			// scopes committed by completed iterations are applied.
			_ = finish()
			iterSpan.SetStr("error", err.Error()).End()
			return rep, err
		}

		if iter == 0 {
			semSpan := iterSpan.Child("sem-check")
			var err error
			info, err = sem.Check(prog)
			semSpan.End()
			if err != nil {
				return iterErr(fmt.Errorf("repair: program invalid: %w", err))
			}
		}

		detSpan := iterSpan.Child("detect").
			SetStr("variant", opts.Variant.String()).
			SetStr("engine", opts.Engine.String())
		t0 := time.Now()
		// With analysis parallelism requested, the first round streams:
		// capture and analysis overlap, consuming trace chunks as the
		// recorder seals them. Later rounds replay the completed capture.
		streamed := iter == 0 && opts.Workers > 1
		if iter == 0 && !streamed {
			capSpan := detSpan.Child("trace-capture")
			err := guard.Protect("detect", func() error {
				var cerr error
				captured, tr, cerr = race.Capture(info, opts.Meter)
				return cerr
			})
			if tr != nil {
				capSpan.SetInt("events", int64(tr.Len()))
			}
			capSpan.End()
			if err != nil {
				detSpan.End()
				return iterErr(fmt.Errorf("repair: execution failed: %w", err))
			}
		}

		eng := newRepairEngine(opts)
		analyzeParent := detSpan
		var replaySpan *obs.Span
		if iter > 0 {
			// Later rounds never re-execute: the captured trace is
			// replayed with the updated scope set.
			replaySpan = detSpan.Child("trace-replay")
			mTraceReplays.Inc()
			analyzeParent = replaySpan
		}
		engSpan := analyzeParent.Child("detect/" + eng.Name())
		if opts.Workers > 1 && opts.Engine == race.EngineBoth {
			engSpan.SetInt("workers", int64(opts.Workers))
		}
		if streamed {
			engSpan.SetInt("streamed", 1)
		}
		var rr *trace.Result
		err := guard.Protect("detect", func() error {
			var aerr error
			if streamed {
				captured, tr, rr, aerr = race.CaptureAnalyzeStreamed(info, virtual, eng, opts.Meter, false, opts.Workers)
			} else {
				rr, aerr = race.AnalyzeParallel(tr, info.Prog, virtual, eng, opts.Meter, false, opts.Workers)
			}
			return aerr
		})
		if streamed && tr != nil {
			engSpan.SetInt("events", int64(tr.Len()))
		}
		engSpan.End()
		if replaySpan != nil {
			replaySpan.End()
		}
		if err != nil {
			detSpan.End()
			return iterErr(fmt.Errorf("repair: execution failed: %w", err))
		}
		if c, ok := eng.(race.Checker); ok {
			if cerr := c.Check(); cerr != nil {
				detSpan.End()
				return iterErr(fmt.Errorf("repair: %w", cerr))
			}
		}
		detectTime := time.Since(t0)
		mStageDetectNs.Observe(detectTime.Nanoseconds())
		races := eng.Races()
		if rel, ok := eng.(race.Releaser); ok {
			// The resolved race slice owns its storage and stays valid; the
			// engine's shadow structures go back to the reuse pool for the
			// next round's detector.
			rel.Release()
		}
		if len(races) == 0 {
			detSpan.Rename("verify")
		}
		detSpan.SetInt("races", int64(len(races))).
			SetInt("sdpst_nodes", int64(rr.Tree.NumNodes())).
			End()

		t1 := time.Now()
		mRacesFound.Add(int64(len(races)))
		if opts.UseTraceFiles {
			ioSpan := iterSpan.Child("trace-io")
			var buf bytes.Buffer
			err = guard.Protect("trace-io", func() error {
				opts.Meter.SetPhase("trace-io")
				if err := faults.Inject(faults.TraceIO); err != nil {
					return err
				}
				if err := race.WriteTrace(&buf, races); err != nil {
					return err
				}
				rep.TraceBytes += buf.Len()
				var rerr error
				races, rerr = race.ReadTrace(&buf, rr.Tree)
				return rerr
			})
			ioSpan.SetInt("trace_bytes", int64(buf.Len())).End()
			if err != nil {
				return iterErr(err)
			}
		}

		if opts.OnRaces != nil {
			opts.OnRaces(races)
		}
		it := Iteration{
			Races:      len(races),
			SDPSTNodes: rr.Tree.NumNodes(),
			DetectTime: detectTime,
		}
		if len(races) == 0 {
			// Finishes are free in the cost model, so the capture run's
			// output is the repaired program's output.
			rep.Output = captured.Output
			if opts.Explain != nil {
				opts.Explain.Iterations = append(opts.Explain.Iterations,
					provenance.Iteration{N: iter, CPL: provCPL(rr.Tree)})
				opts.Explain.Converged = true
				opts.Explain.Degraded = rep.DegradedReason
			}
			tRewrite := time.Now()
			rewriteSpan := iterSpan.Child("rewrite")
			rep.Iterations = append(rep.Iterations, it)
			err = guard.Protect("rewrite", func() error { return finish() })
			rewriteSpan.SetInt("finishes_inserted", int64(rep.Inserted)).End()
			last := &rep.Iterations[len(rep.Iterations)-1]
			last.RewriteTime = time.Since(tRewrite)
			last.RepairTime = time.Since(t1)
			if err != nil {
				iterSpan.SetStr("error", err.Error()).End()
				return rep, err
			}
			iterSpan.SetInt("races", 0).End()
			return rep, nil
		}

		tPlace := time.Now()
		groupSpan := iterSpan.Child("group-nslca")
		var groups, prunedGroups []*group
		err = guard.Protect("group-nslca", func() error {
			opts.Meter.SetPhase("group-nslca")
			if err := faults.Inject(faults.GroupNSLCA); err != nil {
				return err
			}
			groups = groupByNSLCA(races)
			if opts.MHP != nil {
				groups, prunedGroups = pruneSerialGroups(groups, opts.MHP)
			}
			return nil
		})
		groupSpan.SetInt("groups", int64(len(groups))).End()
		if err != nil {
			return iterErr(err)
		}
		it.NSLCAs = len(groups)
		placeSpan := iterSpan.Child("dp-place")
		var placements []Placement
		var outcomes []groupOutcome
		// Non-finish strategies evaluate per-group alternatives against
		// this round's accumulated virtual scope set, probing candidate
		// repairs by replaying the captured trace.
		var selector func(*group, []Placement) ([]Placement, *strategyChoice)
		if opts.Strategy != StrategyFinish {
			ev := &strategyEvaluator{
				tr:       tr,
				info:     info,
				prog:     info.Prog,
				base:     virtual,
				meter:    opts.Meter,
				strategy: opts.Strategy,
			}
			selector = ev.choose
		}
		err = guard.Protect("dp-place", func() error {
			opts.Meter.SetPhase("dp-place")
			if err := faults.Inject(faults.DPPlace); err != nil {
				return err
			}
			var reason string
			var perr error
			placements, outcomes, it.DPStates, reason, perr = placeGroups(groups, opts.MaxGraph, opts.Meter, opts.Workers, placeSpan, selector)
			if reason != "" {
				rep.Degraded = true
				if rep.DegradedReason == "" {
					rep.DegradedReason = reason
				}
			}
			return perr
		})
		placeSpan.SetInt("dp_states", it.DPStates).
			SetInt("placements", int64(len(placements))).
			End()
		if err != nil {
			return iterErr(err)
		}
		it.PlaceTime = time.Since(tPlace)
		mStagePlaceNs.Observe(it.PlaceTime.Nanoseconds())
		if opts.Explain != nil {
			pit := provenance.Iteration{N: iter, Races: provRaces(races), CPL: provCPL(rr.Tree)}
			for _, o := range outcomes {
				pit.Groups = append(pit.Groups, provGroup(o))
			}
			for _, pg := range prunedGroups {
				pit.Groups = append(pit.Groups, provPruned(pg))
			}
			opts.Explain.Iterations = append(opts.Explain.Iterations, pit)
		}
		if len(placements) == 0 {
			return iterErr(fmt.Errorf("repair: %d races but no placements computed", len(races)))
		}

		// The "rewrite" of this loop never touches the AST mid-flight: it
		// folds the round's placements into the virtual scope set that
		// the next replay will inject.
		tRewrite := time.Now()
		rewriteSpan := iterSpan.Child("rewrite")
		var added int
		err = guard.Protect("rewrite", func() error {
			opts.Meter.SetPhase("rewrite")
			if err := faults.Inject(faults.Rewrite); err != nil {
				return err
			}
			virtual, added = mergeVirtual(virtual, placements)
			return nil
		})
		if err != nil {
			rewriteSpan.End()
			return iterErr(err)
		}
		rewriteSpan.SetInt("finishes_inserted", int64(added)).End()
		it.RewriteTime = time.Since(tRewrite)
		mStageRewriteNs.Observe(it.RewriteTime.Nanoseconds())
		it.Placements = added
		it.RepairTime = time.Since(t1)
		rep.Iterations = append(rep.Iterations, it)
		iterSpan.SetInt("races", int64(it.Races)).
			SetInt("finishes_inserted", int64(added)).
			End()
	}
}

// pruneSerialGroups splits NS-LCA groups into those with at least one
// race pair that may run in parallel according to the static oracle
// (kept) and those provably serial (pruned). With a sound oracle the
// pruned list is always empty (a dynamic race implies static MHP), so
// the repaired output is unchanged; the counter records how often the
// cross-check fired anyway.
func pruneSerialGroups(groups []*group, mhp func(src, dst *dpst.Node) bool) (kept, pruned []*group) {
	kept = groups[:0]
	for _, g := range groups {
		parallel := false
		for _, rc := range g.races {
			if mhp(rc.Src, rc.Dst) {
				parallel = true
				break
			}
		}
		if parallel {
			kept = append(kept, g)
		} else {
			mPrunedSerial.Inc()
			pruned = append(pruned, g)
		}
	}
	return kept, pruned
}

// newRepairEngine builds the detector engine for one analysis round,
// honoring a custom Oracle for the ESP-Bags side. With the stock oracle,
// Engine Both + Workers > 1 selects the fused dual-oracle engine: one
// shadow scan cross-checking both backends per ordering query, which
// AnalyzeParallel then shards across workers.
func newRepairEngine(opts Options) race.Engine {
	switch opts.Engine {
	case race.EngineVC:
		return race.NewEngine(race.EngineVC, opts.Variant)
	case race.EngineBoth:
		if opts.Workers > 1 && opts.defaultOracle {
			return race.NewFused(opts.Variant)
		}
		return race.NewDifferential(
			race.WithName(race.New(opts.Variant, opts.Oracle()), "espbags"),
			race.NewEngine(race.EngineVC, opts.Variant),
		)
	default:
		return race.WithName(race.New(opts.Variant, opts.Oracle()), "espbags")
	}
}

// virtualPlacements resolves a virtual scope set back to AST blocks.
func virtualPlacements(prog *ast.Program, virtual []trace.FinishRange) ([]Placement, error) {
	var ps []Placement
	for _, f := range virtual {
		b := ast.FindBlock(prog, f.BlockID)
		if b == nil {
			return nil, fmt.Errorf("repair: no block with ID %d", f.BlockID)
		}
		ps = append(ps, Placement{Block: b, Lo: f.Lo, Hi: f.Hi, Kind: f.Kind, Class: f.Class})
	}
	return ps, nil
}

// span is a statement range with its isolated lock class, the unit
// mergeVirtual canonicalizes per (block, kind).
type span struct {
	lo, hi int
	class  int
}

// mergeVirtual folds newly computed placements into the accumulated
// virtual scope set and re-canonicalizes per block and kind: exact
// duplicates are dropped and partially overlapping same-kind ranges are
// merged, since trace.Replay nests scopes and cannot represent improper
// overlap. Ranges of different kinds are never merged; they cannot
// improperly overlap either, because isolated ranges cover a recognized
// update region inside a single maximal step (disjoint from or nested
// in anything else). When ranges merge, equal lock classes are kept and
// differing ones degrade to class 0 (the global lock) conservatively.
// It returns the new set and the number of ranges not present before.
func mergeVirtual(virtual []trace.FinishRange, placements []Placement) ([]trace.FinishRange, int) {
	type bk struct {
		id   int
		kind trace.RangeKind
	}
	byBlock := map[bk][]span{}
	var order []bk
	add := func(k bk, s span) {
		if _, ok := byBlock[k]; !ok {
			order = append(order, k)
		}
		byBlock[k] = append(byBlock[k], s)
	}
	for _, f := range virtual {
		add(bk{f.BlockID, f.Kind}, span{f.Lo, f.Hi, f.Class})
	}
	for _, p := range placements {
		add(bk{p.Block.ID, p.Kind}, span{p.Lo, p.Hi, p.Class})
	}
	prev := map[trace.FinishRange]bool{}
	for _, f := range virtual {
		prev[f] = true
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].id != order[j].id {
			return order[i].id < order[j].id
		}
		return order[i].kind < order[j].kind
	})
	var out []trace.FinishRange
	added := 0
	for _, k := range order {
		for _, s := range canonicalSpans(byBlock[k]) {
			f := trace.FinishRange{BlockID: k.id, Lo: s.lo, Hi: s.hi, Kind: k.kind, Class: s.class}
			out = append(out, f)
			if !prev[f] {
				added++
			}
		}
	}
	return out, added
}

// mergeClass combines the lock classes of two ranges being merged or
// deduplicated: equal classes survive, differing ones collapse to the
// global lock.
func mergeClass(a, b int) int {
	if a == b {
		return a
	}
	return 0
}

// canonicalSpans deduplicates ranges and merges partial overlaps until
// only disjoint or strictly nested ranges remain, combining lock
// classes per mergeClass.
func canonicalSpans(spans []span) []span {
	idx := make(map[[2]int]int)
	var rs []span
	for _, s := range spans {
		k := [2]int{s.lo, s.hi}
		if i, ok := idx[k]; ok {
			rs[i].class = mergeClass(rs[i].class, s.class)
			continue
		}
		idx[k] = len(rs)
		rs = append(rs, s)
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(rs) && !changed; i++ {
			for j := i + 1; j < len(rs) && !changed; j++ {
				a, c := rs[i], rs[j]
				if a.lo > c.lo {
					a, c = c, a
				}
				overlap := c.lo <= a.hi
				nested := overlap && c.hi <= a.hi
				if overlap && !nested && a != c {
					rs[i] = span{a.lo, max(a.hi, c.hi), mergeClass(a.class, c.class)}
					rs = append(rs[:j], rs[j+1:]...)
					changed = true
				}
			}
		}
	}
	// A merge can produce a duplicate of a surviving range; drop the
	// exact duplicates left behind (combining classes again).
	out := rs[:0]
	seen := make(map[[2]int]int, len(rs))
	for _, s := range rs {
		k := [2]int{s.lo, s.hi}
		if i, ok := seen[k]; ok {
			out[i].class = mergeClass(out[i].class, s.class)
			continue
		}
		seen[k] = len(out)
		out = append(out, s)
	}
	return out
}

// applyPlacements rewrites the program, wrapping each placement's
// statement range in a synthesized finish or isolated. Identical
// placements are deduplicated, partially overlapping same-kind ranges
// in one block are merged, and nested ranges are applied
// innermost-first. It returns the applied insertions in replayable
// form.
func applyPlacements(prog *ast.Program, placements []Placement) ([]AppliedRange, error) {
	byBlock := make(map[*ast.Block][]krange)
	var blocks []*ast.Block
	for _, p := range placements {
		if p.Lo < 0 || p.Hi >= len(p.Block.Stmts) || p.Lo > p.Hi {
			return nil, fmt.Errorf("repair: placement %v out of range (block has %d stmts)", p, len(p.Block.Stmts))
		}
		if _, seen := byBlock[p.Block]; !seen {
			blocks = append(blocks, p.Block)
		}
		byBlock[p.Block] = append(byBlock[p.Block], krange{p.Lo, p.Hi, p.Kind, p.Class})
	}
	// Deterministic block order for Replay: by block ID.
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })

	var applied []AppliedRange
	for _, b := range blocks {
		rs, err := applyToBlock(prog, b, byBlock[b])
		if err != nil {
			return applied, err
		}
		applied = append(applied, rs...)
	}
	return applied, nil
}

// Replay re-applies recorded insertions to another parse of a
// structurally identical program (e.g. the same benchmark rendered at a
// different input size): block IDs are assigned deterministically by the
// parser, so the recorded coordinates transfer.
func Replay(prog *ast.Program, iterations []Iteration) error {
	for _, it := range iterations {
		for _, a := range it.Applied {
			b := ast.FindBlock(prog, a.BlockID)
			if b == nil {
				return fmt.Errorf("repair: replay: no block with ID %d", a.BlockID)
			}
			if a.Lo < 0 || a.Hi >= len(b.Stmts) || a.Lo > a.Hi {
				return fmt.Errorf("repair: replay range %d..%d out of bounds in block %d", a.Lo, a.Hi, a.BlockID)
			}
			wrapRange(prog, b, a.Lo, a.Hi, a.Kind, a.Class)
		}
	}
	return nil
}

// wrapRange wraps statements lo..hi of b in a synthesized finish or
// isolated, per kind. Isolated wrappers carry the inferred lock class
// (derived state: it steers the runtime lock choice and the detectors'
// exclusion predicate, and is never printed).
func wrapRange(prog *ast.Program, b *ast.Block, lo, hi int, kind trace.RangeKind, class int) {
	wrapped := make([]ast.Stmt, hi-lo+1)
	copy(wrapped, b.Stmts[lo:hi+1])
	var wrap ast.Stmt
	if kind == trace.RangeIsolated {
		wrap = &ast.IsolatedStmt{
			Body:        prog.NewBlock(wrapped[0].Pos(), wrapped),
			IsoPos:      wrapped[0].Pos(),
			Synthesized: true,
			LockClass:   class,
		}
	} else {
		wrap = &ast.FinishStmt{
			Body:        prog.NewBlock(wrapped[0].Pos(), wrapped),
			FinishPos:   wrapped[0].Pos(),
			Synthesized: true,
		}
	}
	rest := append([]ast.Stmt{}, b.Stmts[:lo]...)
	rest = append(rest, wrap)
	rest = append(rest, b.Stmts[hi+1:]...)
	b.Stmts = rest
}

// krange is a statement range with its scope kind and isolated lock
// class.
type krange struct {
	lo, hi int
	kind   trace.RangeKind
	class  int
}

func applyToBlock(prog *ast.Program, b *ast.Block, ranges []krange) ([]AppliedRange, error) {
	// Deduplicate by (range, kind); identical ranges that disagree on
	// lock class collapse to the global lock conservatively.
	type rk struct {
		lo, hi int
		kind   trace.RangeKind
	}
	idx := make(map[rk]int)
	var rs []krange
	for _, r := range ranges {
		k := rk{r.lo, r.hi, r.kind}
		if i, ok := idx[k]; ok {
			rs[i].class = mergeClass(rs[i].class, r.class)
			continue
		}
		idx[k] = len(rs)
		rs = append(rs, r)
	}
	// Merge partial overlaps of the same kind until only disjoint or
	// strictly nested ranges remain. Cross-kind partial overlap cannot
	// arise: isolated ranges cover one update region inside a single
	// maximal step, so against any other range they are disjoint or
	// nested.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(rs) && !changed; i++ {
			for j := i + 1; j < len(rs) && !changed; j++ {
				a, c := rs[i], rs[j]
				if a.kind != c.kind {
					continue
				}
				if a.lo > c.lo {
					a, c = c, a
				}
				overlap := c.lo <= a.hi
				nested := overlap && c.hi <= a.hi
				if overlap && !nested && a != c {
					rs[i] = krange{a.lo, max(a.hi, c.hi), a.kind, mergeClass(a.class, c.class)}
					rs = append(rs[:j], rs[j+1:]...)
					changed = true
				}
			}
		}
	}
	// Innermost (smallest) first so outer indices can be adjusted as
	// inner ranges collapse into single wrapper statements. On identical
	// ranges the isolated goes first (ends up innermost), matching the
	// replay nesting where the finish scope opens outside the isolated.
	sort.Slice(rs, func(i, j int) bool {
		li, lj := rs[i].hi-rs[i].lo, rs[j].hi-rs[j].lo
		if li != lj {
			return li < lj
		}
		if rs[i].lo != rs[j].lo {
			return rs[i].lo < rs[j].lo
		}
		return rs[i].kind > rs[j].kind
	})

	var applied []AppliedRange
	for i := 0; i < len(rs); i++ {
		lo, hi := rs[i].lo, rs[i].hi
		if lo < 0 || hi >= len(b.Stmts) || lo > hi {
			return applied, fmt.Errorf("repair: merged range %d..%d out of bounds in block %d", lo, hi, b.ID)
		}
		wrapRange(prog, b, lo, hi, rs[i].kind, rs[i].class)
		applied = append(applied, AppliedRange{BlockID: b.ID, Lo: lo, Hi: hi, Kind: rs[i].kind, Class: rs[i].class})

		shrink := hi - lo
		for j := i + 1; j < len(rs); j++ {
			switch {
			case rs[j].hi < lo:
				// Entirely to the left: unaffected.
			case rs[j].lo > hi:
				rs[j].lo -= shrink
				rs[j].hi -= shrink
			case rs[j].lo <= lo && rs[j].hi >= hi:
				rs[j].hi -= shrink
			default:
				return applied, fmt.Errorf("repair: conflicting ranges in block %d", b.ID)
			}
		}
	}
	return applied, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
