// Package race implements dynamic data-race detection for the canonical
// sequential depth-first execution of async/finish programs.
//
// Two detector variants mirror the paper (§4.1):
//
//   - SRW ("Single Reader-Writer ESP-Bags"): the classic ESP-Bags shadow
//     memory with one reader and one writer slot per location. It reports
//     only a subset of the races per run, so repair may need a second
//     detection run to confirm no races remain.
//   - MRW ("Multiple Reader-Writer ESP-Bags"): tracks all readers and
//     writers per location and reports every race in a single run.
//
// Both are parameterized by an Oracle answering "is this earlier access
// ordered before the current one?". Two oracles are provided: BagsOracle
// (the ESP-Bags union-find structure of Raman et al., driven by task
// structure events) and DPSTOracle (Theorem 1 queries on the S-DPST).
// They are interchangeable and must agree; tests cross-validate them.
package race

import (
	"fmt"

	"finishrepair/internal/dpst"
)

// Kind classifies a race by the access kinds of source and sink.
type Kind uint8

// Race kinds: source access → sink access.
const (
	WriteWrite Kind = iota
	ReadWrite       // earlier read, later write
	WriteRead       // earlier write, later read
)

// String names the race kind.
func (k Kind) String() string {
	switch k {
	case WriteWrite:
		return "W->W"
	case ReadWrite:
		return "R->W"
	default:
		return "W->R"
	}
}

// Race is a data race between two step instances on one location. Src is
// the DFS-earlier step (the source, paper §4.2), Dst the sink.
type Race struct {
	Src, Dst *dpst.Node
	Loc      uint64
	Kind     Kind
}

// String renders the race for diagnostics.
func (r *Race) String() string {
	return fmt.Sprintf("%s: step %d -> step %d @loc %d", r.Kind, r.Src.ID, r.Dst.ID, r.Loc)
}

// Oracle answers ordering queries between a recorded earlier access and
// the current execution point. Structure events arrive in depth-first
// execution order.
type Oracle interface {
	TaskStart(n *dpst.Node)
	TaskEnd(n *dpst.Node)
	FinishStart(n *dpst.Node)
	FinishEnd(n *dpst.Node)
	// Tag returns the bookkeeping value to record alongside an access by
	// the current step (the current task for ESP-Bags).
	Tag() any
	// Ordered reports whether the earlier access (prevTag, prevStep) is
	// ordered before the current step, i.e. cannot race with it.
	Ordered(prevTag any, prevStep, curStep *dpst.Node) bool
}

// Detector is the common interface of SRW and MRW.
type Detector interface {
	Read(loc uint64, step *dpst.Node)
	Write(loc uint64, step *dpst.Node)
	TaskStart(n *dpst.Node)
	TaskEnd(n *dpst.Node)
	FinishStart(n *dpst.Node)
	FinishEnd(n *dpst.Node)
	// Races returns the distinct races found, in detection order.
	Races() []*Race
}

type access struct {
	step *dpst.Node
	tag  any
}

type raceKey struct {
	src, dst int
	loc      uint64
	kind     Kind
}

// recorder deduplicates and stores races.
type recorder struct {
	seen  map[raceKey]bool
	races []*Race
}

func newRecorder() recorder { return recorder{seen: make(map[raceKey]bool)} }

func (rc *recorder) report(src, dst *dpst.Node, loc uint64, kind Kind) {
	k := raceKey{src: src.ID, dst: dst.ID, loc: loc, kind: kind}
	if rc.seen[k] {
		return
	}
	rc.seen[k] = true
	rc.races = append(rc.races, &Race{Src: src, Dst: dst, Loc: loc, Kind: kind})
}

// resolved returns the races with their endpoints resolved to live
// S-DPST steps (fine-grained steps may have been collapsed into maximal
// steps during construction), deduplicated after resolution.
func (rc *recorder) resolved() []*Race {
	seen := make(map[raceKey]bool, len(rc.races))
	out := make([]*Race, 0, len(rc.races))
	for _, r := range rc.races {
		src, dst := r.Src.Resolve(), r.Dst.Resolve()
		k := raceKey{src: src.ID, dst: dst.ID, loc: r.Loc, kind: r.Kind}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, &Race{Src: src, Dst: dst, Loc: r.Loc, Kind: r.Kind})
	}
	return out
}

// ----------------------------------------------------------------------
// SRW ESP-Bags

type srwCell struct {
	reader access
	writer access
}

// SRW is the single reader-writer detector.
type SRW struct {
	oracle Oracle
	cells  map[uint64]*srwCell
	rec    recorder
}

// NewSRW returns an SRW detector using the given oracle.
func NewSRW(o Oracle) *SRW {
	return &SRW{oracle: o, cells: make(map[uint64]*srwCell), rec: newRecorder()}
}

func (d *SRW) cell(loc uint64) *srwCell {
	c := d.cells[loc]
	if c == nil {
		c = &srwCell{}
		d.cells[loc] = c
	}
	return c
}

// Read handles a read of loc by step.
func (d *SRW) Read(loc uint64, step *dpst.Node) {
	c := d.cell(loc)
	if c.writer.step != nil && c.writer.step != step &&
		!d.oracle.Ordered(c.writer.tag, c.writer.step, step) {
		d.rec.report(c.writer.step, step, loc, WriteRead)
	}
	// Keep the reader slot pointing at a still-parallel reader: replace
	// it only when the recorded reader has become ordered (the SP-bags
	// update rule).
	if c.reader.step == nil || d.oracle.Ordered(c.reader.tag, c.reader.step, step) {
		c.reader = access{step: step, tag: d.oracle.Tag()}
	}
}

// Write handles a write of loc by step.
func (d *SRW) Write(loc uint64, step *dpst.Node) {
	c := d.cell(loc)
	if c.writer.step != nil && c.writer.step != step &&
		!d.oracle.Ordered(c.writer.tag, c.writer.step, step) {
		d.rec.report(c.writer.step, step, loc, WriteWrite)
	}
	if c.reader.step != nil && c.reader.step != step &&
		!d.oracle.Ordered(c.reader.tag, c.reader.step, step) {
		d.rec.report(c.reader.step, step, loc, ReadWrite)
	}
	c.writer = access{step: step, tag: d.oracle.Tag()}
}

// TaskStart forwards to the oracle.
func (d *SRW) TaskStart(n *dpst.Node) { d.oracle.TaskStart(n) }

// TaskEnd forwards to the oracle.
func (d *SRW) TaskEnd(n *dpst.Node) { d.oracle.TaskEnd(n) }

// FinishStart forwards to the oracle.
func (d *SRW) FinishStart(n *dpst.Node) { d.oracle.FinishStart(n) }

// FinishEnd forwards to the oracle.
func (d *SRW) FinishEnd(n *dpst.Node) { d.oracle.FinishEnd(n) }

// Races returns the distinct races detected.
func (d *SRW) Races() []*Race { return d.rec.resolved() }

// ----------------------------------------------------------------------
// MRW ESP-Bags

type mrwCell struct {
	readers []access
	writers []access
}

// MRW is the multiple reader-writer detector: it keeps every reader and
// writer of each location so that all races are reported in one run.
type MRW struct {
	oracle Oracle
	cells  map[uint64]*mrwCell
	rec    recorder
}

// NewMRW returns an MRW detector using the given oracle.
func NewMRW(o Oracle) *MRW {
	return &MRW{oracle: o, cells: make(map[uint64]*mrwCell), rec: newRecorder()}
}

func (d *MRW) cell(loc uint64) *mrwCell {
	c := d.cells[loc]
	if c == nil {
		c = &mrwCell{}
		d.cells[loc] = c
	}
	return c
}

// Read handles a read of loc by step.
func (d *MRW) Read(loc uint64, step *dpst.Node) {
	c := d.cell(loc)
	for _, w := range c.writers {
		if w.step != step && !d.oracle.Ordered(w.tag, w.step, step) {
			d.rec.report(w.step, step, loc, WriteRead)
		}
	}
	if n := len(c.readers); n > 0 && c.readers[n-1].step == step {
		return // same step re-reading
	}
	c.readers = append(c.readers, access{step: step, tag: d.oracle.Tag()})
}

// Write handles a write of loc by step.
func (d *MRW) Write(loc uint64, step *dpst.Node) {
	c := d.cell(loc)
	for _, w := range c.writers {
		if w.step != step && !d.oracle.Ordered(w.tag, w.step, step) {
			d.rec.report(w.step, step, loc, WriteWrite)
		}
	}
	for _, r := range c.readers {
		if r.step != step && !d.oracle.Ordered(r.tag, r.step, step) {
			d.rec.report(r.step, step, loc, ReadWrite)
		}
	}
	if n := len(c.writers); n > 0 && c.writers[n-1].step == step {
		return
	}
	c.writers = append(c.writers, access{step: step, tag: d.oracle.Tag()})
}

// TaskStart forwards to the oracle.
func (d *MRW) TaskStart(n *dpst.Node) { d.oracle.TaskStart(n) }

// TaskEnd forwards to the oracle.
func (d *MRW) TaskEnd(n *dpst.Node) { d.oracle.TaskEnd(n) }

// FinishStart forwards to the oracle.
func (d *MRW) FinishStart(n *dpst.Node) { d.oracle.FinishStart(n) }

// FinishEnd forwards to the oracle.
func (d *MRW) FinishEnd(n *dpst.Node) { d.oracle.FinishEnd(n) }

// Races returns the distinct races detected.
func (d *MRW) Races() []*Race { return d.rec.resolved() }
