// Package race implements dynamic data-race detection for the canonical
// sequential depth-first execution of async/finish programs.
//
// Two detector variants mirror the paper (§4.1):
//
//   - SRW ("Single Reader-Writer ESP-Bags"): the classic ESP-Bags shadow
//     memory with one reader and one writer slot per location. It reports
//     only a subset of the races per run, so repair may need a second
//     detection run to confirm no races remain.
//   - MRW ("Multiple Reader-Writer ESP-Bags"): tracks all readers and
//     writers per location and reports every race in a single run.
//
// Both are parameterized by an Oracle answering "is this earlier access
// ordered before the current one?". Two oracles are provided: BagsOracle
// (the ESP-Bags union-find structure of Raman et al., driven by task
// structure events) and DPSTOracle (Theorem 1 queries on the S-DPST).
// They are interchangeable and must agree; tests cross-validate them.
//
// The MRW shadow memory keeps an epoch-style frontier per access list
// (after FastTrack's adaptive representation): entries proven ordered
// before a per-list scan point are partitioned into a prefix that later
// accesses skip wholesale, because happens-before is transitive. Full
// O(list) rescans happen only when the scan point itself is not ordered
// before the current step. Shadow cells live in a slab, access records
// are unboxed 16-byte structs, and detector state is recycled through a
// sync.Pool across replay iterations (see Releaser).
package race

import (
	"fmt"
	"sync"

	"finishrepair/internal/dpst"
	"finishrepair/internal/trace"
)

// Kind classifies a race by the access kinds of source and sink.
type Kind uint8

// Race kinds: source access → sink access.
const (
	WriteWrite Kind = iota
	ReadWrite       // earlier read, later write
	WriteRead       // earlier write, later read
)

// String names the race kind.
func (k Kind) String() string {
	switch k {
	case WriteWrite:
		return "W->W"
	case ReadWrite:
		return "R->W"
	default:
		return "W->R"
	}
}

// Race is a data race between two step instances on one location. Src is
// the DFS-earlier step (the source, paper §4.2), Dst the sink. SrcSite
// and DstSite are the static coordinates of the racing accesses
// themselves — more precise than the merged maximal steps, which may
// span many statements — recorded so the isolated repair strategy can
// wrap exactly the racing statements.
type Race struct {
	Src, Dst         *dpst.Node
	Loc              uint64
	Kind             Kind
	SrcSite, DstSite trace.Site
	// ord is the global access-op index that produced this raw report.
	// The sharded analysis path sorts per-shard reports by ord to
	// reconstruct exactly the serial raw-report order; it stays 0 for
	// serial scans, where append order already is that order.
	ord uint64
}

// String renders the race for diagnostics.
func (r *Race) String() string {
	return fmt.Sprintf("%s: step %d -> step %d @loc %d", r.Kind, r.Src.ID, r.Dst.ID, r.Loc)
}

// Oracle answers ordering queries between a recorded earlier access and
// the current execution point. Structure events arrive in depth-first
// execution order.
type Oracle interface {
	TaskStart(n *dpst.Node)
	TaskEnd(n *dpst.Node)
	FinishStart(n *dpst.Node)
	FinishEnd(n *dpst.Node)
	// Tag returns the bookkeeping value to record alongside an access by
	// the current step, packed into a uint64 so the shadow memory stores
	// accesses without interface boxing: the task node ID for ESP-Bags,
	// a (task, count) epoch for vector clocks, 0 for the stateless S-DPST
	// oracle.
	Tag() uint64
	// Ordered reports whether the earlier access (prevTag, prevStep) is
	// ordered before the current step, i.e. cannot race with it.
	Ordered(prevTag uint64, prevStep, curStep *dpst.Node) bool
}

// TagKeyed is implemented by oracles whose Ordered answer is a function
// of the recorded tag and the current execution point only (the recorded
// step is ignored). Detectors then memoize repeated queries for the same
// tag within one shadow-memory scan — e.g. all accesses by one task
// answer alike under ESP-Bags.
type TagKeyed interface {
	OrderedByTagOnly() bool
}

func isTagKeyed(o Oracle) bool {
	tk, ok := o.(TagKeyed)
	return ok && tk.OrderedByTagOnly()
}

// Presizer is implemented by detectors that can pre-size their shadow
// structures from the expected number of trace events before analysis
// begins. Analyze calls it with the trace length.
type Presizer interface {
	Presize(events int)
}

// Releaser is implemented by detectors that can return their internal
// shadow structures to a reuse pool once the caller is done with them.
// Slices previously returned by Races() stay valid after Release, but
// the detector itself must not be used again.
type Releaser interface {
	Release()
}

// Detector is the common interface of SRW and MRW. Accesses carry their
// static site; two accesses whose sites are both isolated under
// mutually-exclusive lock classes (see isoOrdered) are ordered by that
// lock and never race (the suppression lives here, in the detectors, so
// every oracle-backed engine shares one rule and the differential
// cross-check stays honest for free).
type Detector interface {
	Read(loc uint64, step *dpst.Node, site trace.Site)
	Write(loc uint64, step *dpst.Node, site trace.Site)
	TaskStart(n *dpst.Node)
	TaskEnd(n *dpst.Node)
	FinishStart(n *dpst.Node)
	FinishEnd(n *dpst.Node)
	// Races returns the distinct races found, in detection order.
	Races() []*Race
}

// access is one recorded shadow-memory entry: unboxed.
type access struct {
	step *dpst.Node
	tag  uint64
	site trace.Site
}

type raceKey struct {
	loc      uint64
	src, dst int32
	kind     Kind
}

// recorder stores raw race reports and deduplicates them lazily: report
// is a plain arena append (the scan watermarks in mrwList already keep
// the raw stream near-distinct), and the one dedupe map is built per
// resolved() call, whose result is cached until the next report.
type recorder struct {
	races []Race
	cache []*Race
	seen  map[raceKey]int32 // scratch for resolved(), reused across runs
	ord   uint64            // stamp for subsequent reports (sharded scans)
}

func newRecorder() recorder { return recorder{} }

func (rc *recorder) reset() {
	clear(rc.races) // drop S-DPST node references before pooling
	rc.races = rc.races[:0]
	rc.cache = nil
	rc.ord = 0
}

func (rc *recorder) report(src, dst *dpst.Node, loc uint64, kind Kind, srcSite, dstSite trace.Site) {
	rc.races = append(rc.races, Race{Src: src, Dst: dst, Loc: loc, Kind: kind, SrcSite: srcSite, DstSite: dstSite, ord: rc.ord})
	rc.cache = nil
}

// adopt appends raw reports merged from other recorders (the sharded
// analysis path), invalidating any cached resolution. The values are
// copied, so the source recorders may be reset afterwards.
func (rc *recorder) adopt(rs []Race) {
	rc.races = append(rc.races, rs...)
	rc.cache = nil
}

// resolved returns the races with their endpoints resolved to live
// S-DPST steps (fine-grained steps may have been collapsed into maximal
// steps during construction), deduplicated after resolution. The result
// is cached until the next report and owns its backing storage, so it
// stays valid after the recorder is reset for reuse.
func (rc *recorder) resolved() []*Race {
	if rc.cache != nil {
		return rc.cache
	}
	if rc.seen == nil {
		rc.seen = make(map[raceKey]int32, len(rc.races))
	} else {
		clear(rc.seen)
	}
	// Count the distinct set first so the arena is sized exactly: raw
	// reports can outnumber distinct races many times over, and a
	// raw-count-capacity arena per analysis is what the pooling is
	// there to avoid.
	for i := range rc.races {
		r := &rc.races[i]
		k := raceKey{loc: r.Loc, src: int32(r.Src.Resolve().ID), dst: int32(r.Dst.Resolve().ID), kind: r.Kind}
		rc.seen[k] = -1
	}
	arena := make([]Race, 0, len(rc.seen))
	for i := range rc.races {
		r := &rc.races[i]
		src, dst := r.Src.Resolve(), r.Dst.Resolve()
		k := raceKey{loc: r.Loc, src: int32(src.ID), dst: int32(dst.ID), kind: r.Kind}
		if rc.seen[k] >= 0 {
			continue
		}
		rc.seen[k] = int32(len(arena))
		arena = append(arena, Race{Src: src, Dst: dst, Loc: r.Loc, Kind: r.Kind, SrcSite: r.SrcSite, DstSite: r.DstSite})
	}
	out := make([]*Race, len(arena))
	for i := range arena {
		out[i] = &arena[i]
	}
	rc.cache = out
	return out
}

// ----------------------------------------------------------------------
// SRW ESP-Bags

// isoOrdered reports whether two accesses are ordered by an isolated
// lock both their bodies hold: both isolated, and the lock classes
// exclude each other — either is class 0 (the global lock, which
// excludes every isolated body) or the classes are equal. Bodies of
// different nonzero classes run under independent locks, so their
// accesses stay racy.
func isoOrdered(a, b trace.Site) bool {
	return a.Iso && b.Iso && (a.IsoClass == 0 || b.IsoClass == 0 || a.IsoClass == b.IsoClass)
}

type srwCell struct {
	reader access
	writer access
}

// SRW is the single reader-writer detector.
type SRW struct {
	oracle Oracle
	cells  map[uint64]int32
	slab   []srwCell
	rec    recorder
}

// NewSRW returns an SRW detector using the given oracle.
func NewSRW(o Oracle) *SRW {
	return &SRW{oracle: o, cells: make(map[uint64]int32), rec: newRecorder()}
}

// Presize pre-sizes the shadow map from the expected event count.
func (d *SRW) Presize(events int) {
	if len(d.cells) == 0 && events > 0 {
		d.cells = make(map[uint64]int32, events/32)
	}
}

func (d *SRW) cell(loc uint64) *srwCell {
	if i, ok := d.cells[loc]; ok {
		return &d.slab[i]
	}
	d.cells[loc] = int32(len(d.slab))
	d.slab = append(d.slab, srwCell{})
	return &d.slab[len(d.slab)-1]
}

// Read handles a read of loc by step.
func (d *SRW) Read(loc uint64, step *dpst.Node, site trace.Site) {
	c := d.cell(loc)
	if c.writer.step != nil && c.writer.step != step &&
		!d.oracle.Ordered(c.writer.tag, c.writer.step, step) &&
		!isoOrdered(c.writer.site, site) {
		d.rec.report(c.writer.step, step, loc, WriteRead, c.writer.site, site)
	}
	// Keep the reader slot pointing at a still-parallel reader: replace
	// it only when the recorded reader has become ordered (the SP-bags
	// update rule).
	if c.reader.step == nil || d.oracle.Ordered(c.reader.tag, c.reader.step, step) {
		c.reader = access{step: step, tag: d.oracle.Tag(), site: site}
	}
}

// Write handles a write of loc by step.
func (d *SRW) Write(loc uint64, step *dpst.Node, site trace.Site) {
	c := d.cell(loc)
	if c.writer.step != nil && c.writer.step != step &&
		!d.oracle.Ordered(c.writer.tag, c.writer.step, step) &&
		!isoOrdered(c.writer.site, site) {
		d.rec.report(c.writer.step, step, loc, WriteWrite, c.writer.site, site)
	}
	if c.reader.step != nil && c.reader.step != step &&
		!d.oracle.Ordered(c.reader.tag, c.reader.step, step) &&
		!isoOrdered(c.reader.site, site) {
		d.rec.report(c.reader.step, step, loc, ReadWrite, c.reader.site, site)
	}
	c.writer = access{step: step, tag: d.oracle.Tag(), site: site}
}

// TaskStart forwards to the oracle.
func (d *SRW) TaskStart(n *dpst.Node) { d.oracle.TaskStart(n) }

// TaskEnd forwards to the oracle.
func (d *SRW) TaskEnd(n *dpst.Node) { d.oracle.TaskEnd(n) }

// FinishStart forwards to the oracle.
func (d *SRW) FinishStart(n *dpst.Node) { d.oracle.FinishStart(n) }

// FinishEnd forwards to the oracle.
func (d *SRW) FinishEnd(n *dpst.Node) { d.oracle.FinishEnd(n) }

// Races returns the distinct races detected.
func (d *SRW) Races() []*Race { return d.rec.resolved() }

// ShadowCells reports the number of distinct locations tracked.
func (d *SRW) ShadowCells() int { return len(d.cells) }

func (d *SRW) setOrd(ord uint64)    { d.rec.ord = ord }
func (d *SRW) rawRaces() []Race     { return d.rec.races }
func (d *SRW) adoptRaces(rs []Race) { d.rec.adopt(rs) }

// ----------------------------------------------------------------------
// MRW ESP-Bags

// mrwList is one direction (readers or writers) of a shadow cell's
// access history, with an epoch-style frontier: accs[:ord] are proven
// ordered before the scan point (scanStep, scanTag). A later access that
// the scan point is ordered before inherits the whole prefix by
// transitivity and rescans only accs[ord:]; otherwise the frontier is
// stale and the list is repartitioned against the current step.
type mrwList struct {
	accs     []access
	ord      int
	scanned  int // how far scanStep itself has already examined the list
	scanStep *dpst.Node
	scanKind Kind  // race kind the watermark scan reported under
	scanIso  bool  // isolation state the watermark scan ran under
	scanCls  int32 // lock class the watermark scan ran under
	scanTag  uint64
	last     *dpst.Node // most recently appended step, for dedupe
	lastIso  bool       // isolation state of the last appended access
	lastCls  int32      // lock class of the last appended access
}

func (l *mrwList) reset() {
	clear(l.accs) // drop S-DPST node references before pooling
	l.accs = l.accs[:0]
	l.ord = 0
	l.scanned = 0
	l.scanStep = nil
	l.scanIso = false
	l.scanCls = 0
	l.scanTag = 0
	l.last = nil
	l.lastIso = false
	l.lastCls = 0
}

type mrwCell struct {
	readers mrwList
	writers mrwList
}

// MRW is the multiple reader-writer detector: it keeps every reader and
// writer of each location so that all races are reported in one run.
type MRW struct {
	oracle   Oracle
	tagKeyed bool
	cells    map[uint64]int32
	slab     []mrwCell
	used     int
	rec      recorder
}

var mrwPool = sync.Pool{New: func() any { return new(MRW) }}

// NewMRW returns an MRW detector using the given oracle. The detector
// may come from the package's reuse pool; calling Release when done
// (optional) returns its shadow structures for later detections.
func NewMRW(o Oracle) *MRW {
	d := mrwPool.Get().(*MRW)
	if d.cells == nil {
		d.cells = make(map[uint64]int32)
	}
	d.oracle = o
	d.tagKeyed = isTagKeyed(o)
	return d
}

// Presize pre-sizes the shadow map and race records from the expected
// event count.
func (d *MRW) Presize(events int) {
	if events <= 0 {
		return
	}
	if len(d.cells) == 0 && d.used == 0 && len(d.slab) == 0 {
		d.cells = make(map[uint64]int32, events/32)
		d.slab = make([]mrwCell, 0, events/32)
	}
}

// Release resets the detector and returns its shadow structures (cell
// slab, access lists, dedupe tables) to the reuse pool. Race slices
// already returned by Races() remain valid; the detector must not be
// used afterwards. If the oracle is itself a Releaser it is released
// too.
func (d *MRW) Release() {
	for i := range d.slab[:d.used] {
		c := &d.slab[i]
		c.readers.reset()
		c.writers.reset()
	}
	d.used = 0
	clear(d.cells)
	d.rec.reset()
	if r, ok := d.oracle.(Releaser); ok {
		r.Release()
	}
	d.oracle = nil
	mrwPool.Put(d)
}

// ShadowCells reports the number of distinct locations tracked.
func (d *MRW) ShadowCells() int { return d.used }

func (d *MRW) cell(loc uint64) *mrwCell {
	if i, ok := d.cells[loc]; ok {
		return &d.slab[i]
	}
	i := d.used
	if i == len(d.slab) {
		d.slab = append(d.slab, mrwCell{})
	}
	d.used++
	d.cells[loc] = int32(i)
	return &d.slab[i]
}

// scan checks the current access by step against the recorded accesses
// in l, reporting races of the given kind, and advances l's frontier:
// every entry proven ordered before step is swapped into the accs[:ord]
// prefix and the scan point becomes step, so the next access that step
// is ordered before skips the prefix entirely.
func (d *MRW) scan(l *mrwList, step *dpst.Node, loc uint64, kind Kind, site trace.Site) {
	i := 0
	switch {
	case l.scanStep == step && l.scanKind == kind && l.scanIso == site.Iso && l.scanCls == site.IsoClass:
		// Same step scanning under the same race kind and isolation
		// state: everything up to the watermark was already examined
		// against this very step (ordered entries moved into the prefix,
		// races reported or iso-suppressed identically); only entries
		// appended since remain.
		i = l.scanned
	case l.scanStep == step:
		// Same step but a different kind (a step that read loc now writes
		// it) or a different isolation state or lock class (a merged step
		// accessing loc both inside and outside isolated, or under
		// different isolated lock classes): the ordered prefix still
		// holds, but entries in accs[ord:] must be re-examined.
		i = l.ord
	case l.scanStep != nil && d.oracle.Ordered(l.scanTag, l.scanStep, step):
		i = l.ord
	default:
		// Stale frontier: repartition the whole list against step.
		l.ord = 0
	}
	var memoTag uint64
	var memoOrd, memoValid bool
	for ; i < len(l.accs); i++ {
		a := l.accs[i]
		if a.step == step {
			continue
		}
		var ord bool
		if d.tagKeyed && memoValid && a.tag == memoTag {
			ord = memoOrd
		} else {
			ord = d.oracle.Ordered(a.tag, a.step, step)
			memoTag, memoOrd, memoValid = a.tag, ord, true
		}
		switch {
		case ord:
			l.accs[i] = l.accs[l.ord]
			l.accs[l.ord] = a
			l.ord++
		case isoOrdered(a.site, site):
			// Both accesses isolated under mutually-exclusive lock
			// classes: ordered by that lock. The entry stays OUT of the
			// ordered prefix — the suppression is pairwise, not
			// transitive, so a later non-isolated access (or one under an
			// independent lock class) must still examine it.
		default:
			d.rec.report(a.step, step, loc, kind, a.site, site)
		}
	}
	l.scanStep = step
	l.scanKind = kind
	l.scanIso = site.Iso
	l.scanCls = site.IsoClass
	l.scanTag = d.oracle.Tag()
	l.scanned = len(l.accs)
}

// Read handles a read of loc by step.
func (d *MRW) Read(loc uint64, step *dpst.Node, site trace.Site) {
	c := d.cell(loc)
	d.scan(&c.writers, step, loc, WriteRead, site)
	if c.readers.last == step && c.readers.lastIso == site.Iso && c.readers.lastCls == site.IsoClass {
		return // same step re-reading under the same isolation state
	}
	c.readers.last = step
	c.readers.lastIso = site.Iso
	c.readers.lastCls = site.IsoClass
	c.readers.accs = append(c.readers.accs, access{step: step, tag: d.oracle.Tag(), site: site})
}

// Write handles a write of loc by step.
func (d *MRW) Write(loc uint64, step *dpst.Node, site trace.Site) {
	c := d.cell(loc)
	d.scan(&c.writers, step, loc, WriteWrite, site)
	d.scan(&c.readers, step, loc, ReadWrite, site)
	if c.writers.last == step && c.writers.lastIso == site.Iso && c.writers.lastCls == site.IsoClass {
		return
	}
	c.writers.last = step
	c.writers.lastIso = site.Iso
	c.writers.lastCls = site.IsoClass
	c.writers.accs = append(c.writers.accs, access{step: step, tag: d.oracle.Tag(), site: site})
}

// TaskStart forwards to the oracle.
func (d *MRW) TaskStart(n *dpst.Node) { d.oracle.TaskStart(n) }

// TaskEnd forwards to the oracle.
func (d *MRW) TaskEnd(n *dpst.Node) { d.oracle.TaskEnd(n) }

// FinishStart forwards to the oracle.
func (d *MRW) FinishStart(n *dpst.Node) { d.oracle.FinishStart(n) }

// FinishEnd forwards to the oracle.
func (d *MRW) FinishEnd(n *dpst.Node) { d.oracle.FinishEnd(n) }

// Races returns the distinct races detected.
func (d *MRW) Races() []*Race { return d.rec.resolved() }

func (d *MRW) setOrd(ord uint64)    { d.rec.ord = ord }
func (d *MRW) rawRaces() []Race     { return d.rec.races }
func (d *MRW) adoptRaces(rs []Race) { d.rec.adopt(rs) }

// ordStamper is the sharded-analysis hook on the concrete detectors:
// stamping the global access-op index onto raw reports, exposing the raw
// report stream for merging, and adopting merged reports.
type ordStamper interface {
	setOrd(ord uint64)
	rawRaces() []Race
	adoptRaces(rs []Race)
}
