package race_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"finishrepair/internal/bench"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
	"finishrepair/internal/race"
)

// fuzzCorpusSeeds decodes the checked-in Go fuzz corpus: each file is
// "go test fuzz v1" followed by one string(...) literal.
func fuzzCorpusSeeds(t *testing.T) map[string]string {
	t.Helper()
	dir := filepath.Join("..", "..", "tdr", "testdata", "fuzz", "FuzzRepairRoundTrip")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus: %v", err)
	}
	seeds := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
				continue
			}
			src, err := strconv.Unquote(line[len("string(") : len(line)-1])
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			seeds[e.Name()] = src
		}
	}
	if len(seeds) == 0 {
		t.Fatal("no fuzz corpus seeds decoded")
	}
	return seeds
}

// checkEnginesAgree captures src once and analyzes the trace with the
// differential engine under both variants and both collapse policies;
// any race-set disagreement between ESP-Bags and the vector-clock
// engine fails. Programs that exceed the op budget (e.g. corpus seeds
// with infinite loops) or fail semantic checks are skipped.
func checkEnginesAgree(t *testing.T, name, src string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		return
	}
	ast.StripFinishes(prog)
	info, err := sem.Check(prog)
	if err != nil {
		return
	}
	m := guard.NewMeter(context.Background(), guard.Budget{OpLimit: 2_000_000})
	_, tr, err := race.Capture(info, m)
	if err != nil {
		t.Logf("%s: capture skipped: %v", name, err)
		return
	}
	for _, v := range []race.Variant{race.VariantSRW, race.VariantMRW} {
		for _, noCollapse := range []bool{false, true} {
			eng := race.NewEngine(race.EngineBoth, v)
			if _, err := race.Analyze(tr, info.Prog, nil, eng, nil, noCollapse); err != nil {
				t.Fatalf("%s (%s, noCollapse=%v): %v", name, v, noCollapse, err)
			}
			d := eng.(*race.Differential)
			if err := d.Check(); err != nil {
				t.Errorf("%s (%s, noCollapse=%v): %v", name, v, noCollapse, err)
			}
		}
	}
}

// TestEnginesAgreeOnBenchPrograms is the differential property over the
// paper's benchmark suite: for every program, ESP-Bags and the
// vector-clock detector must report identical race sets — same
// variables, same access pairs, same NS-LCA groups.
func TestEnginesAgreeOnBenchPrograms(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			checkEnginesAgree(t, b.Name, b.Src(b.RepairSize))
		})
	}
}

// TestEnginesAgreeOnFuzzCorpus runs the same property over every seed
// of the checked-in repair fuzz corpus.
func TestEnginesAgreeOnFuzzCorpus(t *testing.T) {
	for name, src := range fuzzCorpusSeeds(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			checkEnginesAgree(t, name, src)
		})
	}
}

// TestEnginesAgreeOnGeneratedPrograms fuzzes the property further with
// deterministic generated programs.
func TestEnginesAgreeOnGeneratedPrograms(t *testing.T) {
	for seed := int64(5000); seed < 5040; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			checkEnginesAgree(t, fmt.Sprintf("progen-%d", seed), progen.Gen(seed, progen.Default()))
		})
	}
}
