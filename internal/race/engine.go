package race

import (
	"fmt"
	"sort"

	"finishrepair/internal/dpst"
	"finishrepair/internal/trace"
)

// EngineKind selects a race-detector backend.
type EngineKind int

// Detector engines. ESP-Bags is the paper's detector; VC is the
// vector-clock detector after Kumar et al.; Both runs the two in
// lockstep over one replay and cross-checks their race sets.
const (
	EngineESPBags EngineKind = iota
	EngineVC
	EngineBoth
)

// String names the engine kind.
func (k EngineKind) String() string {
	switch k {
	case EngineVC:
		return "vc"
	case EngineBoth:
		return "both"
	default:
		return "espbags"
	}
}

// ParseEngineKind maps a CLI flag value to an engine kind.
func ParseEngineKind(s string) (EngineKind, bool) {
	switch s {
	case "espbags", "bags", "esp":
		return EngineESPBags, true
	case "vc", "vectorclock", "vector-clock":
		return EngineVC, true
	case "both", "differential":
		return EngineBoth, true
	}
	return EngineESPBags, false
}

// Engine is a pluggable race-detector backend: a Detector (which is
// also a trace.Sink) plus a stable name for spans and reports.
type Engine interface {
	Detector
	Name() string
}

type namedEngine struct {
	Detector
	name string
}

func (e namedEngine) Name() string { return e.name }

// Presize forwards to the wrapped detector when it supports pre-sizing.
func (e namedEngine) Presize(events int) {
	if p, ok := e.Detector.(Presizer); ok {
		p.Presize(events)
	}
}

// Release forwards to the wrapped detector when it is poolable.
func (e namedEngine) Release() {
	if r, ok := e.Detector.(Releaser); ok {
		r.Release()
	}
}

// ShadowCells forwards to the wrapped detector when it can report its
// shadow-memory size; 0 otherwise.
func (e namedEngine) ShadowCells() int {
	if s, ok := e.Detector.(ShadowSizer); ok {
		return s.ShadowCells()
	}
	return 0
}

// WithName wraps a detector as a named engine (for callers composing
// custom oracles with the engine plumbing).
func WithName(d Detector, name string) Engine { return namedEngine{d, name} }

// NewEngine builds a detector engine of the given kind and variant.
// EngineBoth returns a *Differential.
func NewEngine(k EngineKind, v Variant) Engine {
	switch k {
	case EngineVC:
		return namedEngine{New(v, NewVCOracle()), "vc"}
	case EngineBoth:
		return NewDifferential(
			namedEngine{New(v, NewBagsOracle()), "espbags"},
			namedEngine{New(v, NewVCOracle()), "vc"},
		)
	default:
		return namedEngine{New(v, NewBagsOracle()), "espbags"}
	}
}

// Differential fans one replayed execution out to two engines and
// cross-checks that they report identical race sets. Races() returns
// the primary engine's result, so a differential run is a drop-in
// replacement for either backend; call Check after analysis to surface
// any disagreement.
type Differential struct {
	primary, secondary Engine
}

// NewDifferential pairs two engines for cross-checking.
func NewDifferential(primary, secondary Engine) *Differential {
	return &Differential{primary: primary, secondary: secondary}
}

// Name identifies the differential runner.
func (d *Differential) Name() string { return "both" }

// Read forwards to both engines.
func (d *Differential) Read(loc uint64, step *dpst.Node, site trace.Site) {
	d.primary.Read(loc, step, site)
	d.secondary.Read(loc, step, site)
}

// Write forwards to both engines.
func (d *Differential) Write(loc uint64, step *dpst.Node, site trace.Site) {
	d.primary.Write(loc, step, site)
	d.secondary.Write(loc, step, site)
}

// TaskStart forwards to both engines.
func (d *Differential) TaskStart(n *dpst.Node) {
	d.primary.TaskStart(n)
	d.secondary.TaskStart(n)
}

// TaskEnd forwards to both engines.
func (d *Differential) TaskEnd(n *dpst.Node) {
	d.primary.TaskEnd(n)
	d.secondary.TaskEnd(n)
}

// FinishStart forwards to both engines.
func (d *Differential) FinishStart(n *dpst.Node) {
	d.primary.FinishStart(n)
	d.secondary.FinishStart(n)
}

// FinishEnd forwards to both engines.
func (d *Differential) FinishEnd(n *dpst.Node) {
	d.primary.FinishEnd(n)
	d.secondary.FinishEnd(n)
}

// Races returns the primary engine's races.
func (d *Differential) Races() []*Race { return d.primary.Races() }

// ShadowCells reports the primary engine's shadow-memory size.
func (d *Differential) ShadowCells() int {
	if s, ok := d.primary.(ShadowSizer); ok {
		return s.ShadowCells()
	}
	return 0
}

// EngineShadowCells reports each backend's shadow-memory size, in
// [primary, secondary] order, so metrics can sample both engines instead
// of last-writer-wins.
func (d *Differential) EngineShadowCells() [2]int {
	var out [2]int
	if s, ok := d.primary.(ShadowSizer); ok {
		out[0] = s.ShadowCells()
	}
	if s, ok := d.secondary.(ShadowSizer); ok {
		out[1] = s.ShadowCells()
	}
	return out
}

// Presize forwards to both engines.
func (d *Differential) Presize(events int) {
	if p, ok := d.primary.(Presizer); ok {
		p.Presize(events)
	}
	if p, ok := d.secondary.(Presizer); ok {
		p.Presize(events)
	}
}

// Release forwards to both engines.
func (d *Differential) Release() {
	if r, ok := d.primary.(Releaser); ok {
		r.Release()
	}
	if r, ok := d.secondary.(Releaser); ok {
		r.Release()
	}
}

// DisagreementError reports a divergence between two detector engines
// run over the same execution: a differential-testing failure, never an
// expected outcome.
type DisagreementError struct {
	Engines [2]string // engine names
	Counts  [2]int    // race counts per engine
	Detail  string    // first difference, for diagnostics
}

// Error renders the disagreement.
func (e *DisagreementError) Error() string {
	return fmt.Sprintf("detector engines disagree: %s found %d race(s), %s found %d; %s",
		e.Engines[0], e.Counts[0], e.Engines[1], e.Counts[1], e.Detail)
}

// raceSig is the identity under which race sets are compared: endpoint
// steps, location, access-pair kind, and the NS-LCA group the repair
// phase would place a finish for. Both engines see the same replayed
// tree, so node IDs are directly comparable.
type raceSig struct {
	src, dst int
	loc      uint64
	kind     Kind
	nslca    int
}

func signatures(races []*Race) map[raceSig]bool {
	m := make(map[raceSig]bool, len(races))
	for _, r := range races {
		sig := raceSig{src: r.Src.ID, dst: r.Dst.ID, loc: r.Loc, kind: r.Kind}
		if l := dpst.NSLCA(r.Src, r.Dst); l != nil {
			sig.nslca = l.ID
		}
		m[sig] = true
	}
	return m
}

// Check compares the two race sets (variable, access pair, NS-LCA
// group) and returns a *DisagreementError on any difference.
func (d *Differential) Check() error {
	pr, sr := d.primary.Races(), d.secondary.Races()
	ps, ss := signatures(pr), signatures(sr)
	var diffs []string
	for sig := range ps {
		if !ss[sig] {
			diffs = append(diffs, fmt.Sprintf("%s: step %d -> step %d @loc %d (nslca %d) [%s only]",
				sig.kind, sig.src, sig.dst, sig.loc, sig.nslca, d.primary.Name()))
		}
	}
	for sig := range ss {
		if !ps[sig] {
			diffs = append(diffs, fmt.Sprintf("%s: step %d -> step %d @loc %d (nslca %d) [%s only]",
				sig.kind, sig.src, sig.dst, sig.loc, sig.nslca, d.secondary.Name()))
		}
	}
	if len(diffs) == 0 {
		return nil
	}
	sort.Strings(diffs)
	return &DisagreementError{
		Engines: [2]string{d.primary.Name(), d.secondary.Name()},
		Counts:  [2]int{len(pr), len(sr)},
		Detail:  diffs[0],
	}
}
