package race

import (
	"fmt"

	"finishrepair/internal/dpst"
)

// ----------------------------------------------------------------------
// Dual oracle: ESP-Bags and vector clocks in lockstep over one scan.
//
// The serial differential engine (Differential) runs two complete
// detectors — two shadow memories, two scans — and compares their race
// sets afterwards. The fused engine below keeps the cross-check but
// removes the duplicated shadow work: one MRW/SRW shadow memory is
// scanned once, and every ordering query is answered by *both* backend
// oracles, whose answers must agree. That is a strictly stronger
// differential test (agreement is checked per query, over every access
// pair the scan examines, not just on the final race sets) at roughly
// half the shadow-memory cost, and it is what the sharded -j N analysis
// path runs per shard.

// OracleDivergence records the first ordering query on which the two
// backend oracles disagreed. Any divergence is a detector bug, never an
// expected outcome.
type OracleDivergence struct {
	PrevTag  uint64 // recorded epoch of the earlier access
	PrevStep int    // S-DPST node ID of the earlier access's step (-1 unknown)
	CurStep  int    // S-DPST node ID of the current step (-1 unknown)
	Bags, VC bool   // the conflicting answers
}

func (d *OracleDivergence) String() string {
	return fmt.Sprintf("ordering query diverged: step %d -> step %d (epoch %d/%d): espbags=%v vc=%v",
		d.PrevStep, d.CurStep, d.PrevTag>>32, uint32(d.PrevTag), d.Bags, d.VC)
}

// DualOracle drives the ESP-Bags and vector-clock oracles in lockstep
// over one replayed execution and cross-checks every Ordered answer.
// The recorded tag is the vector-clock epoch (task node ID in the high
// half, own-component count in the low half); ESP-Bags needs only the
// task ID, which it recovers from the high half, so one uint64 tag
// serves both backends and the shadow memory does not grow.
type DualOracle struct {
	bags *BagsOracle
	vc   *VCOracle
	// queries counts Ordered cross-checks; div records the first
	// divergence. Both are read after analysis (Fused.Check, metrics).
	queries uint64
	div     *OracleDivergence
}

// NewDualOracle pairs a fresh ESP-Bags oracle (from the reuse pool) with
// a fresh vector-clock oracle.
func NewDualOracle() *DualOracle {
	return &DualOracle{bags: NewBagsOracle(), vc: NewVCOracle()}
}

// TaskStart forwards to both oracles.
func (o *DualOracle) TaskStart(n *dpst.Node) {
	o.bags.TaskStart(n)
	o.vc.TaskStart(n)
}

// TaskEnd forwards to both oracles.
func (o *DualOracle) TaskEnd(n *dpst.Node) {
	o.bags.TaskEnd(n)
	o.vc.TaskEnd(n)
}

// FinishStart forwards to both oracles.
func (o *DualOracle) FinishStart(n *dpst.Node) {
	o.bags.FinishStart(n)
	o.vc.FinishStart(n)
}

// FinishEnd forwards to both oracles.
func (o *DualOracle) FinishEnd(n *dpst.Node) {
	o.bags.FinishEnd(n)
	o.vc.FinishEnd(n)
}

// Tag returns the vector-clock epoch; its high half is the task node ID
// the ESP-Bags side queries by.
func (o *DualOracle) Tag() uint64 { return o.vc.Tag() }

// Ordered answers with the ESP-Bags verdict after checking that the
// vector-clock oracle agrees; the first divergence is recorded for
// Check rather than failing mid-scan, so the analysis still completes
// and the error surfaces with full context.
func (o *DualOracle) Ordered(prevTag uint64, prevStep, curStep *dpst.Node) bool {
	b := o.bags.Ordered(prevTag>>32, prevStep, curStep)
	v := o.vc.Ordered(prevTag, prevStep, curStep)
	o.queries++
	if b != v && o.div == nil {
		d := &OracleDivergence{PrevTag: prevTag, PrevStep: -1, CurStep: -1, Bags: b, VC: v}
		if prevStep != nil {
			d.PrevStep = prevStep.ID
		}
		if curStep != nil {
			d.CurStep = curStep.ID
		}
		o.div = d
	}
	return b
}

// OrderedByTagOnly reports that dual queries depend only on the recorded
// epoch (both backends are tag-keyed), so scans may memoize per-tag
// answers; the memo key is the full epoch, valid for both sides.
func (o *DualOracle) OrderedByTagOnly() bool { return true }

// Release returns the ESP-Bags side to its reuse pool. The divergence
// record and query count stay readable.
func (o *DualOracle) Release() {
	if o.bags != nil {
		o.bags.Release()
		o.bags = nil
	}
	o.vc = nil
}

// ----------------------------------------------------------------------
// Fused engine.

// Checker is implemented by engines that cross-check detector backends
// and can report a divergence after analysis (Differential by race-set
// comparison, Fused by per-query agreement).
type Checker interface {
	Check() error
}

// Fused is the fused differential engine: one shadow memory of the
// given variant, scanned once, with every ordering query answered by
// both the ESP-Bags and vector-clock oracles in lockstep. Races() is
// the single scan's result (identical to the serial primary engine's,
// since the backends must agree); Check surfaces any query divergence
// as a *DisagreementError. This is the engine behind -detector both
// with -j N: AnalyzeParallel shards its scan across workers without
// duplicating whole engines.
type Fused struct {
	Detector
	variant Variant
	dual    *DualOracle

	// Set by the sharded analysis path: shadow cells summed over the
	// per-shard detectors, the first divergence across shards (lowest
	// shard index), and the total cross-check count.
	shardCells   int
	shardDiv     *OracleDivergence
	shardQueries uint64
}

// NewFused returns a fused differential engine over a dual oracle.
func NewFused(v Variant) *Fused {
	d := NewDualOracle()
	return &Fused{Detector: New(v, d), variant: v, dual: d}
}

// Name identifies the fused engine; it is a drop-in for the serial
// differential runner.
func (f *Fused) Name() string { return "both" }

// Variant reports the shadow-memory variant the engine was built with
// (the sharded path replicates it per shard).
func (f *Fused) Variant() Variant { return f.variant }

// Presize forwards to the underlying detector.
func (f *Fused) Presize(events int) {
	if p, ok := f.Detector.(Presizer); ok {
		p.Presize(events)
	}
}

// Release returns the detector's shadow structures (and the ESP-Bags
// side of the dual oracle) to their reuse pools.
func (f *Fused) Release() {
	if r, ok := f.Detector.(Releaser); ok {
		r.Release()
	}
}

// ShadowCells reports the distinct locations tracked: the local scan's
// plus, after a sharded analysis, the per-shard detectors' sum.
func (f *Fused) ShadowCells() int {
	n := f.shardCells
	if s, ok := f.Detector.(ShadowSizer); ok {
		n += s.ShadowCells()
	}
	return n
}

// Queries reports the number of cross-checked ordering queries.
func (f *Fused) Queries() uint64 { return f.dual.queries + f.shardQueries }

// Check returns a *DisagreementError if any ordering query diverged
// between the two backends, nil otherwise.
func (f *Fused) Check() error {
	div := f.dual.div
	if div == nil {
		div = f.shardDiv
	}
	if div == nil {
		return nil
	}
	n := len(f.Races())
	return &DisagreementError{
		Engines: [2]string{"espbags", "vc"},
		Counts:  [2]int{n, n},
		Detail:  div.String(),
	}
}
