package race

import (
	"sync"
	"time"

	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/trace"
)

// AnalyzeParallel is Analyze with engine-level parallelism: when det is
// a *Differential and workers > 1, the two engines analyze the shared
// read-only trace concurrently, one goroutine per engine, each replaying
// into its own S-DPST. Deterministic replay assigns identical node IDs
// to both trees, so Differential.Check's signature comparison is
// unaffected. Both replays charge the same meter (its counters are
// atomic), so budget accounting reflects the doubled replay work and a
// cancellation or deadline trip aborts both sides at their next periodic
// check. Any other detector, or workers <= 1, falls through to the
// serial Analyze.
func AnalyzeParallel(tr *trace.Trace, prog *ast.Program, fins []trace.FinishRange, det Detector, m *guard.Meter, noCollapse bool, workers int) (*trace.Result, error) {
	d, ok := det.(*Differential)
	if !ok || workers <= 1 {
		return Analyze(tr, prog, fins, det, m, noCollapse)
	}
	m.SetPhase("detect")
	t0 := time.Now()

	type side struct {
		eng Engine
		rr  *trace.Result
		err error
	}
	sides := [2]side{{eng: d.primary}, {eng: d.secondary}}
	var wg sync.WaitGroup
	for i := range sides {
		s := &sides[i]
		if p, ok := s.eng.(Presizer); ok {
			p.Presize(tr.Len())
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Protect inside the goroutine: a contained panic must surface
			// as this side's error, not crash the process.
			s.err = guard.Protect("detect", func() error {
				rr, err := trace.Replay(tr, trace.ReplayOptions{
					Prog:       prog,
					Finishes:   fins,
					Sink:       s.eng,
					NoCollapse: noCollapse,
					Meter:      m,
				})
				s.rr = rr
				return err
			})
		}()
	}
	wg.Wait()
	// Deterministic error preference: the primary side's error wins, so
	// the result does not depend on goroutine scheduling.
	if sides[0].err != nil {
		return nil, sides[0].err
	}
	if sides[1].err != nil {
		return nil, sides[1].err
	}
	mAnalyzeNs.Observe(time.Since(t0).Nanoseconds())
	if s, ok := det.(ShadowSizer); ok {
		mShadowCells.Observe(int64(s.ShadowCells()))
	}
	mDetectRuns.Inc()
	n := int64(len(det.Races()))
	mRacesFound.Add(n)
	mRacesPerRun.Observe(n)
	rr := sides[0].rr
	if rr.Tree != nil {
		mSDPSTNodes.Set(int64(rr.Tree.NumNodes()))
	}
	return rr, nil
}
