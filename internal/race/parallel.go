package race

import (
	"runtime"

	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/trace"
)

// effectiveShards clamps a -j request to the machine: sharding the
// shadow memory across more workers than cores only adds demux and
// handoff overhead. On a single-core box every -j value degrades to the
// serial fused scan, which is already strictly cheaper than the legacy
// two-engine differential.
func effectiveShards(workers int) int {
	if n := runtime.GOMAXPROCS(0); workers > n {
		workers = n
	}
	return workers
}

// AnalyzeParallel is Analyze with detector-level parallelism. When det
// is a *Fused engine (the -detector both -j N configuration) and more
// than one worker is requested, the shadow memory is partitioned by
// location hash across min(workers, GOMAXPROCS) shard workers fed from
// one demultiplexing replay pass — see AnalyzeSharded; results are
// byte-identical to the serial scan for any worker count. Any other
// detector, or workers <= 1, falls through to the serial Analyze.
//
// Earlier versions parallelized the differential engine by replaying
// the whole trace once per backend — two trees, two shadow memories,
// double the allocations, and slower than serial whenever cores were
// scarce. That path is gone: the fused engine cross-checks the two
// oracles inside one scan, and parallelism now splits that single scan.
func AnalyzeParallel(tr *trace.Trace, prog *ast.Program, fins []trace.FinishRange, det Detector, m *guard.Meter, noCollapse bool, workers int) (*trace.Result, error) {
	if f, ok := det.(*Fused); ok && workers > 1 {
		if shards := effectiveShards(workers); shards > 1 {
			return AnalyzeSharded(tr, prog, fins, f, m, noCollapse, shards)
		}
	}
	return Analyze(tr, prog, fins, det, m, noCollapse)
}
