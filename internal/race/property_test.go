package race_test

import (
	"bytes"
	"fmt"
	"testing"

	"finishrepair/internal/dpst"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
	"finishrepair/internal/race"
)

func raceSet(t *testing.T, src string, v race.Variant, o race.Oracle) map[string]bool {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v\n%s", err, src)
	}
	_, det, err := race.Detect(info, v, o)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	set := make(map[string]bool)
	for _, r := range det.Races() {
		set[fmt.Sprintf("%d>%d@%d/%v", r.Src.ID, r.Dst.ID, r.Loc, r.Kind)] = true
	}
	return set
}

// Property: the ESP-Bags oracle and the S-DPST Theorem-1 oracle decide
// the same ordering relation, so both MRW detectors report identical
// race sets on arbitrary structured programs.
func TestOraclesAgreeOnRandomPrograms(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(0); seed < 120; seed++ {
		src := progen.Gen(seed, cfg)
		bags := raceSet(t, src, race.VariantMRW, race.NewBagsOracle())
		dpstSet := raceSet(t, src, race.VariantMRW, race.NewDPSTOracle())
		if len(bags) != len(dpstSet) {
			t.Fatalf("seed %d: bags found %d races, dpst %d\n%s", seed, len(bags), len(dpstSet), src)
		}
		for k := range bags {
			if !dpstSet[k] {
				t.Fatalf("seed %d: race %s found by bags but not dpst\n%s", seed, k, src)
			}
		}
	}
}

// Property: every race SRW reports is also reported by MRW (SRW keeps a
// subset of the access history).
func TestSRWSubsetOfMRW(t *testing.T) {
	cfg := progen.Default()
	for seed := int64(100); seed < 200; seed++ {
		src := progen.Gen(seed, cfg)
		srw := raceSet(t, src, race.VariantSRW, race.NewBagsOracle())
		mrw := raceSet(t, src, race.VariantMRW, race.NewBagsOracle())
		for k := range srw {
			if !mrw[k] {
				t.Fatalf("seed %d: SRW race %s missing from MRW\n%s", seed, k, src)
			}
		}
		// And SRW is empty iff MRW is: the detectors agree on race
		// freedom (the ESP-Bags soundness/completeness guarantee).
		if (len(srw) == 0) != (len(mrw) == 0) {
			t.Fatalf("seed %d: SRW=%d MRW=%d disagree on race freedom", seed, len(srw), len(mrw))
		}
	}
}

// Property: programs whose asyncs are all directly wrapped in finishes
// are race-free (each task joins before the next statement runs).
func TestFullySynchronizedIsRaceFree(t *testing.T) {
	src := `
var g = make([]int, 4);
func main() {
    finish { async { g[0] = 1; } }
    finish { async { g[0] = g[0] + 1; } }
    finish {
        async { g[1] = 5; }
        async { g[2] = 6; }
    }
    println(g[0], g[1], g[2]);
}
`
	for _, mk := range []race.Oracle{race.NewBagsOracle(), race.NewDPSTOracle()} {
		if n := len(raceSet(t, src, race.VariantMRW, mk)); n != 0 {
			t.Errorf("expected race freedom, got %d races", n)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	src := progen.Gen(7, progen.Default())
	prog := parser.MustParse(src)
	info := sem.MustCheck(prog)
	res, det, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
	if err != nil {
		t.Fatal(err)
	}
	races := det.Races()
	var buf bytes.Buffer
	if err := race.WriteTrace(&buf, races); err != nil {
		t.Fatal(err)
	}
	got, err := race.ReadTrace(&buf, res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(races) {
		t.Fatalf("round trip: %d races, want %d", len(got), len(races))
	}
	for i := range races {
		if got[i].Src != races[i].Src || got[i].Dst != races[i].Dst ||
			got[i].Loc != races[i].Loc || got[i].Kind != races[i].Kind {
			t.Fatalf("race %d mismatch: %v vs %v", i, got[i], races[i])
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	tree := dpst.NewTree()
	if _, err := race.ReadTrace(bytes.NewReader([]byte("nonsense....")), tree); err == nil {
		t.Error("expected error for bad magic")
	}
	var buf bytes.Buffer
	if err := race.WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// Truncate a valid header promising one record.
	b := buf.Bytes()
	b[4] = 1
	if _, err := race.ReadTrace(bytes.NewReader(b), tree); err == nil {
		t.Error("expected error for truncated trace")
	}
}

// The Figure 7 example: three asyncs reading/writing x; MRW reports both
// R->W races, SRW only one (paper §4.1).
func TestFig7MultipleReaders(t *testing.T) {
	src := `
var x = 0;
var sink = 0;
func main() {
    async { sink = x; }     // A1
    async { sink = x + 0; } // A2  (distinct sink write location is fine)
    async { x = 3; }        // A3
    println(x);
}
`
	// Count only races on x's location involving the A3 write.
	prog := parser.MustParse(src)
	info := sem.MustCheck(prog)
	_, mrwDet, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
	if err != nil {
		t.Fatal(err)
	}
	prog2 := parser.MustParse(src)
	info2 := sem.MustCheck(prog2)
	_, srwDet, err := race.Detect(info2, race.VariantSRW, race.NewBagsOracle())
	if err != nil {
		t.Fatal(err)
	}
	countRW := func(rs []*race.Race) int {
		n := 0
		for _, r := range rs {
			if r.Kind == race.ReadWrite {
				n++
			}
		}
		return n
	}
	if got := countRW(mrwDet.Races()); got < 2 {
		t.Errorf("MRW reported %d R->W races, want >= 2 (both readers)", got)
	}
	if got := countRW(srwDet.Races()); got != 1 {
		t.Errorf("SRW reported %d R->W races, want exactly 1 (single reader slot)", got)
	}
}
