package race

import (
	"finishrepair/internal/dpst"
)

// ----------------------------------------------------------------------
// Vector-clock oracle: dynamic happens-before for async-finish programs
// (after Kumar et al., "Dynamic Race Detection with O(1) Samples"; see
// PAPERS.md). Each task carries a vector clock; finishes accumulate the
// clocks of tasks joining at them. An access is tagged with the
// accessing task's epoch (task ID, own-component count); an earlier
// access happens-before the current point iff the current task's clock
// has caught up with that epoch.

// vclock is a sparse vector clock keyed by task (S-DPST node) ID.
type vclock map[int32]uint32

// join raises dst to the pointwise maximum of dst and src.
func (dst vclock) join(src vclock) {
	for k, v := range src {
		if v > dst[k] {
			dst[k] = v
		}
	}
}

type vcTask struct {
	id    int32
	clock vclock
}

// VCOracle is the vector-clock ordering oracle. Structure events arrive
// in canonical depth-first order, so a single task stack and a single
// finish-frame stack suffice:
//
//   - task spawn: the child's clock is a copy of the parent's with its
//     own component set to 1; the parent then increments its own
//     component (accesses after the spawn are not ordered before the
//     child's);
//   - task end: the ended task's clock joins the accumulator of the
//     innermost enclosing finish;
//   - finish end: the accumulator joins the executing task's clock and
//     the task increments its own component.
//
// The root task doubles as the outermost implicit finish, exactly as in
// the ESP-Bags oracle.
type VCOracle struct {
	tasks []vcTask
	acc   []vclock // finish-frame accumulators, innermost last
}

// NewVCOracle returns an empty vector-clock oracle.
func NewVCOracle() *VCOracle { return &VCOracle{} }

// TaskStart handles the start of a task (async instance or the root).
func (o *VCOracle) TaskStart(n *dpst.Node) {
	id := int32(n.ID)
	if len(o.tasks) == 0 {
		o.tasks = append(o.tasks, vcTask{id: id, clock: vclock{id: 1}})
		// The root task doubles as the outermost implicit finish.
		o.acc = append(o.acc, vclock{})
		return
	}
	parent := &o.tasks[len(o.tasks)-1]
	c := make(vclock, len(parent.clock)+1)
	for k, v := range parent.clock {
		c[k] = v
	}
	c[id] = 1
	parent.clock[parent.id]++
	o.tasks = append(o.tasks, vcTask{id: id, clock: c})
}

// TaskEnd joins the ended task's clock into the innermost finish.
func (o *VCOracle) TaskEnd(n *dpst.Node) {
	t := o.tasks[len(o.tasks)-1]
	o.tasks = o.tasks[:len(o.tasks)-1]
	if len(o.tasks) == 0 {
		return // root task end; detection is over
	}
	o.acc[len(o.acc)-1].join(t.clock)
}

// FinishStart opens a finish scope with an empty join accumulator.
func (o *VCOracle) FinishStart(n *dpst.Node) {
	o.acc = append(o.acc, vclock{})
}

// FinishEnd joins everything that ended under the finish into the
// executing task.
func (o *VCOracle) FinishEnd(n *dpst.Node) {
	a := o.acc[len(o.acc)-1]
	o.acc = o.acc[:len(o.acc)-1]
	cur := &o.tasks[len(o.tasks)-1]
	cur.clock.join(a)
	cur.clock[cur.id]++
}

// Tag returns the current task's epoch packed into a uint64:
// task ID in the high half, own-component count in the low half.
func (o *VCOracle) Tag() uint64 {
	cur := &o.tasks[len(o.tasks)-1]
	return uint64(uint32(cur.id))<<32 | uint64(cur.clock[cur.id])
}

// Ordered reports whether the earlier access with epoch prevTag
// happens-before the current execution point.
func (o *VCOracle) Ordered(prevTag uint64, _, _ *dpst.Node) bool {
	u := int32(prevTag >> 32)
	c := uint32(prevTag)
	cur := &o.tasks[len(o.tasks)-1]
	return cur.clock[u] >= c
}

// OrderedByTagOnly reports that vector-clock queries depend only on the
// recorded epoch, so scans may memoize per-tag answers.
func (o *VCOracle) OrderedByTagOnly() bool { return true }
