package race_test

import (
	"testing"

	"finishrepair/internal/interp"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/race"
)

// fibSrc is the incorrectly synchronized Fibonacci program from paper
// Figure 8 (BoxInteger fields become 1-element arrays).
const fibSrc = `
func fib(ret []int, n int) {
    if (n < 2) {
        ret[0] = n;
        return;
    }
    var x = make([]int, 1);
    var y = make([]int, 1);
    async fib(x, n - 1);
    async fib(y, n - 2);
    ret[0] = x[0] + y[0];
}

func main() {
    var result = make([]int, 1);
    async fib(result, 3);
    println(result[0]);
}
`

func TestFibHasRaces(t *testing.T) {
	prog, err := parser.Parse(fibSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	for _, v := range []race.Variant{race.VariantSRW, race.VariantMRW} {
		for _, mk := range []func() race.Oracle{
			func() race.Oracle { return race.NewBagsOracle() },
			func() race.Oracle { return race.NewDPSTOracle() },
		} {
			res, det, err := race.Detect(info, v, mk())
			if err != nil {
				t.Fatalf("%v run: %v", v, err)
			}
			if len(det.Races()) == 0 {
				t.Errorf("%v: expected races in unsynchronized fib, got none\n%s", v, res.Tree.Dump())
			}
			if err := res.Tree.Validate(); err != nil {
				t.Errorf("%v: invalid S-DPST: %v", v, err)
			}
			t.Logf("%v: %d races, %d nodes, output %q", v, len(det.Races()), res.Tree.NumNodes(), res.Output)
		}
	}
}

func TestFibSerialElision(t *testing.T) {
	prog := parser.MustParse(fibSrc)
	info := sem.MustCheck(prog)
	res, err := interp.Run(info, interp.Options{Mode: interp.Elide})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output != "2\n" {
		t.Errorf("fib(3) = %q, want 2", res.Output)
	}
}
