package race

import (
	"time"

	"finishrepair/internal/faults"
	"finishrepair/internal/guard"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/obs"
	"finishrepair/internal/trace"
)

// Detection metrics, aggregated across all runs in the process.
var (
	mDetectRuns    = obs.Default().Counter("race.detect_runs")
	mRacesFound    = obs.Default().Counter("race.races_found")
	mRacesPerRun   = obs.Default().Histogram("race.races_per_run")
	mSDPSTNodes    = obs.Default().Gauge("race.sdpst_nodes")
	mTraceCaptures = obs.Default().Counter("race.trace_captures")
	mAnalyzeNs     = obs.Default().Histogram("race.analyze_ns")
	mShadowCells   = obs.Default().Histogram("race.shadow_cells")
)

// ShadowSizer is implemented by detectors that can report the size of
// their shadow memory (distinct locations tracked), for the
// race.shadow_cells distribution.
type ShadowSizer interface {
	ShadowCells() int
}

// Variant selects the detector flavor.
type Variant int

// Detector variants (paper §4.1).
const (
	VariantSRW Variant = iota
	VariantMRW
)

// String names the variant.
func (v Variant) String() string {
	if v == VariantSRW {
		return "SRW"
	}
	return "MRW"
}

// New returns a fresh detector of the given variant over oracle o.
func New(v Variant, o Oracle) Detector {
	if v == VariantSRW {
		return NewSRW(o)
	}
	return NewMRW(o)
}

// Capture executes the canonical sequential depth-first run of the
// checked program once, recording the event-trace IR. The returned
// trace can then be analyzed any number of times — by different
// engines, with different collapse policies, or with virtual finish
// scopes injected — without re-executing the program.
func Capture(info *sem.Info, m *guard.Meter) (*interp.Result, *trace.Trace, error) {
	m.SetPhase("trace-capture")
	if err := faults.Inject(faults.Detect); err != nil {
		return nil, nil, err
	}
	rec := trace.NewRecorder()
	res, err := interp.Run(info, interp.Options{
		Mode:       interp.DepthFirst,
		Instrument: true,
		Trace:      rec,
		Meter:      m,
	})
	if err != nil {
		return res, nil, err
	}
	mTraceCaptures.Inc()
	return res, rec.Trace(), nil
}

// Analyze replays a captured trace against a detector engine,
// reconstructing the S-DPST (optionally with virtual finish scopes
// injected) and feeding every structure and access event to det. The
// races det holds afterwards reference the returned replayed tree.
func Analyze(tr *trace.Trace, prog *ast.Program, fins []trace.FinishRange, det Detector, m *guard.Meter, noCollapse bool) (*trace.Result, error) {
	m.SetPhase("detect")
	if p, ok := det.(Presizer); ok {
		p.Presize(tr.Len())
	}
	t0 := time.Now()
	rr, err := trace.Replay(tr, trace.ReplayOptions{
		Prog:       prog,
		Finishes:   fins,
		Sink:       det,
		NoCollapse: noCollapse,
		Meter:      m,
	})
	if err != nil {
		return nil, err
	}
	mAnalyzeNs.Observe(time.Since(t0).Nanoseconds())
	if s, ok := det.(ShadowSizer); ok {
		mShadowCells.Observe(int64(s.ShadowCells()))
	}
	mDetectRuns.Inc()
	n := int64(len(det.Races()))
	mRacesFound.Add(n)
	mRacesPerRun.Observe(n)
	if rr.Tree != nil {
		mSDPSTNodes.Set(int64(rr.Tree.NumNodes()))
	}
	return rr, nil
}

// Detect captures the canonical sequential execution of the checked
// program and analyzes it with a fresh detector: capture once, analyze
// once. The returned result carries the replayed S-DPST (the tree the
// detector's races reference).
func Detect(info *sem.Info, v Variant, o Oracle) (*interp.Result, Detector, error) {
	return DetectWith(info, v, o, nil)
}

// DetectWith is Detect threaded with the pipeline's shared budget meter:
// the instrumented execution charges its work units against the
// cumulative op budget, honors the S-DPST node bound, and aborts with a
// typed error on cancellation or deadline. A nil meter is unlimited.
func DetectWith(info *sem.Info, v Variant, o Oracle, m *guard.Meter) (*interp.Result, Detector, error) {
	res, tr, err := Capture(info, m)
	if err != nil {
		return res, nil, err
	}
	det := New(v, o)
	rr, err := Analyze(tr, info.Prog, nil, det, m, false)
	if err != nil {
		return res, det, err
	}
	res.Tree = rr.Tree
	res.Steps = rr.Steps
	return res, det, nil
}
