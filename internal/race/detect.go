package race

import (
	"time"

	"finishrepair/internal/faults"
	"finishrepair/internal/guard"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/obs"
	"finishrepair/internal/trace"
)

// Detection metrics, aggregated across all runs in the process.
var (
	mDetectRuns    = obs.Default().Counter("race.detect_runs")
	mRacesFound    = obs.Default().Counter("race.races_found")
	mRacesPerRun   = obs.Default().Histogram("race.races_per_run")
	mSDPSTNodes    = obs.Default().Gauge("race.sdpst_nodes")
	mTraceCaptures = obs.Default().Counter("race.trace_captures")
	mAnalyzeNs     = obs.Default().Histogram("race.analyze_ns")
	mShadowCells   = obs.Default().Histogram("race.shadow_cells")
	mAnalyzeShards = obs.Default().Gauge("race.analyze_shards")
	mStreamChunks  = obs.Default().Counter("race.stream_chunks")
	mDualQueries   = obs.Default().Counter("race.dual_queries")
)

// ShadowSizer is implemented by detectors that can report the size of
// their shadow memory (distinct locations tracked), for the
// race.shadow_cells distribution.
type ShadowSizer interface {
	ShadowCells() int
}

// Variant selects the detector flavor.
type Variant int

// Detector variants (paper §4.1).
const (
	VariantSRW Variant = iota
	VariantMRW
)

// String names the variant.
func (v Variant) String() string {
	if v == VariantSRW {
		return "SRW"
	}
	return "MRW"
}

// New returns a fresh detector of the given variant over oracle o.
func New(v Variant, o Oracle) Detector {
	if v == VariantSRW {
		return NewSRW(o)
	}
	return NewMRW(o)
}

// Capture executes the canonical sequential depth-first run of the
// checked program once, recording the event-trace IR. The returned
// trace can then be analyzed any number of times — by different
// engines, with different collapse policies, or with virtual finish
// scopes injected — without re-executing the program.
func Capture(info *sem.Info, m *guard.Meter) (*interp.Result, *trace.Trace, error) {
	m.SetPhase("trace-capture")
	if err := faults.Inject(faults.Detect); err != nil {
		return nil, nil, err
	}
	rec := trace.NewRecorder()
	res, err := interp.Run(info, interp.Options{
		Mode:       interp.DepthFirst,
		Instrument: true,
		Trace:      rec,
		Meter:      m,
	})
	if err != nil {
		return res, nil, err
	}
	mTraceCaptures.Inc()
	return res, rec.Trace(), nil
}

// Analyze replays a captured trace against a detector engine,
// reconstructing the S-DPST (optionally with virtual finish scopes
// injected) and feeding every structure and access event to det. The
// races det holds afterwards reference the returned replayed tree.
func Analyze(tr *trace.Trace, prog *ast.Program, fins []trace.FinishRange, det Detector, m *guard.Meter, noCollapse bool) (*trace.Result, error) {
	m.SetPhase("detect")
	if p, ok := det.(Presizer); ok {
		p.Presize(tr.Len())
	}
	t0 := time.Now()
	rr, err := trace.Replay(tr, trace.ReplayOptions{
		Prog:       prog,
		Finishes:   fins,
		Sink:       det,
		NoCollapse: noCollapse,
		Meter:      m,
	})
	if err != nil {
		return nil, err
	}
	observeAnalysis(det, rr, time.Since(t0))
	return rr, nil
}

// observeShadow records shadow-memory sizes per engine: a differential
// run contributes one histogram sample per backend instead of
// last-writer-wins.
func observeShadow(det Detector) {
	if d, ok := det.(*Differential); ok {
		for _, c := range d.EngineShadowCells() {
			mShadowCells.Observe(int64(c))
		}
		return
	}
	if s, ok := det.(ShadowSizer); ok {
		mShadowCells.Observe(int64(s.ShadowCells()))
	}
}

// observeAnalysis records the per-analysis metrics shared by the serial,
// sharded, and streamed paths.
func observeAnalysis(det Detector, rr *trace.Result, elapsed time.Duration) {
	mAnalyzeNs.Observe(elapsed.Nanoseconds())
	observeShadow(det)
	mDetectRuns.Inc()
	n := int64(len(det.Races()))
	mRacesFound.Add(n)
	mRacesPerRun.Observe(n)
	if rr.Tree != nil {
		mSDPSTNodes.Set(int64(rr.Tree.NumNodes()))
	}
	if f, ok := det.(*Fused); ok {
		mDualQueries.Add(int64(f.Queries()))
	}
}

// CaptureAnalyzeStreamed overlaps capture and analysis: the instrumented
// execution records into a stream whose sealed chunks the analysis
// consumes as they are published, instead of capture-once-then-analyze.
// When det is a fused engine and more than one worker is requested, the
// consumer is the sharded scan (analysis parallelism stacks on the
// capture overlap); otherwise a single streaming replay feeds det. The
// returned trace is the complete capture, replayable by later
// iterations exactly like Capture's. A capture error wins over the
// analysis error it induces downstream.
func CaptureAnalyzeStreamed(info *sem.Info, fins []trace.FinishRange, det Detector, m *guard.Meter, noCollapse bool, workers int) (*interp.Result, *trace.Trace, *trace.Result, error) {
	s := trace.NewStream()
	rec := trace.NewRecorder()
	rec.StreamTo(s)

	var (
		res *interp.Result
		tr  *trace.Trace
	)
	capDone := make(chan error, 1)
	go func() {
		// Protect inside the goroutine: a contained panic must surface as
		// the capture error, not crash the process. Fail on every error
		// path — a stream that never finishes blocks the consumer forever.
		cerr := guard.Protect("trace-capture", func() error {
			m.SetPhase("trace-capture")
			if err := faults.Inject(faults.Detect); err != nil {
				return err
			}
			r, err := interp.Run(info, interp.Options{
				Mode:       interp.DepthFirst,
				Instrument: true,
				Trace:      rec,
				Meter:      m,
			})
			res = r
			return err
		})
		if cerr != nil {
			s.Fail(cerr)
		} else {
			tr = rec.Trace()
			mTraceCaptures.Inc()
		}
		capDone <- cerr
	}()

	shards := 0
	if _, ok := det.(*Fused); ok && workers > 1 {
		shards = effectiveShards(workers)
	}
	var (
		rr   *trace.Result
		aerr error
	)
	if shards > 1 {
		run := func(opts trace.ReplayOptions) (*trace.Result, error) {
			return trace.ReplayStream(s, opts)
		}
		rr, aerr = analyzeShardedFrom(run, 0, info.Prog, fins, det.(*Fused), m, noCollapse, shards)
	} else {
		m.SetPhase("detect")
		t0 := time.Now()
		rr, aerr = trace.ReplayStream(s, trace.ReplayOptions{
			Prog:       info.Prog,
			Finishes:   fins,
			Sink:       det,
			NoCollapse: noCollapse,
			Meter:      m,
		})
		if aerr == nil {
			observeAnalysis(det, rr, time.Since(t0))
		}
	}
	cerr := <-capDone
	mStreamChunks.Add(int64(s.Chunks()))
	if cerr != nil {
		return res, nil, nil, cerr
	}
	if aerr != nil {
		return res, tr, nil, aerr
	}
	return res, tr, rr, nil
}

// Detect captures the canonical sequential execution of the checked
// program and analyzes it with a fresh detector: capture once, analyze
// once. The returned result carries the replayed S-DPST (the tree the
// detector's races reference).
func Detect(info *sem.Info, v Variant, o Oracle) (*interp.Result, Detector, error) {
	return DetectWith(info, v, o, nil)
}

// DetectWith is Detect threaded with the pipeline's shared budget meter:
// the instrumented execution charges its work units against the
// cumulative op budget, honors the S-DPST node bound, and aborts with a
// typed error on cancellation or deadline. A nil meter is unlimited.
func DetectWith(info *sem.Info, v Variant, o Oracle, m *guard.Meter) (*interp.Result, Detector, error) {
	res, tr, err := Capture(info, m)
	if err != nil {
		return res, nil, err
	}
	det := New(v, o)
	rr, err := Analyze(tr, info.Prog, nil, det, m, false)
	if err != nil {
		return res, det, err
	}
	res.Tree = rr.Tree
	res.Steps = rr.Steps
	return res, det, nil
}
