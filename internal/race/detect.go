package race

import (
	"finishrepair/internal/faults"
	"finishrepair/internal/guard"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/obs"
)

// Detection metrics, aggregated across all runs in the process.
var (
	mDetectRuns  = obs.Default().Counter("race.detect_runs")
	mRacesFound  = obs.Default().Counter("race.races_found")
	mRacesPerRun = obs.Default().Histogram("race.races_per_run")
	mSDPSTNodes  = obs.Default().Gauge("race.sdpst_nodes")
)

// Variant selects the detector flavor.
type Variant int

// Detector variants (paper §4.1).
const (
	VariantSRW Variant = iota
	VariantMRW
)

// String names the variant.
func (v Variant) String() string {
	if v == VariantSRW {
		return "SRW"
	}
	return "MRW"
}

// New returns a fresh detector of the given variant over oracle o.
func New(v Variant, o Oracle) Detector {
	if v == VariantSRW {
		return NewSRW(o)
	}
	return NewMRW(o)
}

// Detect runs the canonical sequential depth-first execution of the
// checked program with instrumentation and returns the run result
// (including the S-DPST) and the detector holding the races found.
func Detect(info *sem.Info, v Variant, o Oracle) (*interp.Result, Detector, error) {
	return DetectWith(info, v, o, nil)
}

// DetectWith is Detect threaded with the pipeline's shared budget meter:
// the instrumented execution charges its work units against the
// cumulative op budget, honors the S-DPST node bound, and aborts with a
// typed error on cancellation or deadline. A nil meter is unlimited.
func DetectWith(info *sem.Info, v Variant, o Oracle, m *guard.Meter) (*interp.Result, Detector, error) {
	m.SetPhase("detect")
	if err := faults.Inject(faults.Detect); err != nil {
		return nil, nil, err
	}
	det := New(v, o)
	res, err := interp.Run(info, interp.Options{
		Mode:       interp.DepthFirst,
		Instrument: true,
		Access:     det,
		Structure:  det,
		Meter:      m,
	})
	if err == nil {
		mDetectRuns.Inc()
		n := int64(len(det.Races()))
		mRacesFound.Add(n)
		mRacesPerRun.Observe(n)
		if res.Tree != nil {
			mSDPSTNodes.Set(int64(res.Tree.NumNodes()))
		}
	}
	return res, det, err
}
