package race

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"finishrepair/internal/dpst"
	"finishrepair/internal/trace"
)

// The paper's tool writes the detected races to trace files which the
// repair passes then read back ("the time to repair is dominated by the
// time taken to read the trace files", §7.2). We mirror that boundary:
// WriteTrace serializes races, ReadTrace deserializes them against the
// S-DPST of the same execution. Version 2 of the record carries the
// access sites (block, statement, isolation bit per endpoint) that the
// isolated repair strategy needs; version 3 adds the per-endpoint
// isolated lock class in the formerly-reserved tail bytes.

const traceMagic = uint32(0x53445054) // "SDPT"

// raceTraceVersion is the current race-trace record version.
const raceTraceVersion = uint32(3)

// record layout (38 bytes): srcID(4) dstID(4) loc(8) kind(1) flags(1)
// srcBlock(4) srcStmt(4) dstBlock(4) dstStmt(4) srcClass(2) dstClass(2);
// flags bit 0 is SrcSite.Iso, bit 1 is DstSite.Iso.
const recLen = 38

// WriteTrace serializes races to w in the binary trace format.
func WriteTrace(w io.Writer, races []*Race) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], raceTraceVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(races)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recLen]byte
	for _, r := range races {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(r.Src.ID))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(r.Dst.ID))
		binary.LittleEndian.PutUint64(rec[8:16], r.Loc)
		rec[16] = byte(r.Kind)
		var flags byte
		if r.SrcSite.Iso {
			flags |= 1
		}
		if r.DstSite.Iso {
			flags |= 2
		}
		rec[17] = flags
		binary.LittleEndian.PutUint32(rec[18:22], uint32(r.SrcSite.Block))
		binary.LittleEndian.PutUint32(rec[22:26], uint32(r.SrcSite.Stmt))
		binary.LittleEndian.PutUint32(rec[26:30], uint32(r.DstSite.Block))
		binary.LittleEndian.PutUint32(rec[30:34], uint32(r.DstSite.Stmt))
		binary.LittleEndian.PutUint16(rec[34:36], uint16(r.SrcSite.IsoClass))
		binary.LittleEndian.PutUint16(rec[36:38], uint16(r.DstSite.IsoClass))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace, resolving step
// IDs against tree.
func ReadTrace(r io.Reader, tree *dpst.Tree) ([]*Race, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("race trace: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("race trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != raceTraceVersion {
		return nil, fmt.Errorf("race trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])

	byID := make(map[int]*dpst.Node)
	tree.Walk(func(nd *dpst.Node) { byID[nd.ID] = nd })

	races := make([]*Race, 0, n)
	var rec [recLen]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("race trace: truncated at record %d: %w", i, err)
		}
		src := byID[int(binary.LittleEndian.Uint32(rec[0:4]))]
		dst := byID[int(binary.LittleEndian.Uint32(rec[4:8]))]
		if src == nil || dst == nil {
			return nil, fmt.Errorf("race trace: record %d references unknown step", i)
		}
		flags := rec[17]
		races = append(races, &Race{
			Src:  src,
			Dst:  dst,
			Loc:  binary.LittleEndian.Uint64(rec[8:16]),
			Kind: Kind(rec[16]),
			SrcSite: trace.Site{
				Block:    int32(binary.LittleEndian.Uint32(rec[18:22])),
				Stmt:     int32(binary.LittleEndian.Uint32(rec[22:26])),
				Iso:      flags&1 != 0,
				IsoClass: int32(binary.LittleEndian.Uint16(rec[34:36])),
			},
			DstSite: trace.Site{
				Block:    int32(binary.LittleEndian.Uint32(rec[26:30])),
				Stmt:     int32(binary.LittleEndian.Uint32(rec[30:34])),
				Iso:      flags&2 != 0,
				IsoClass: int32(binary.LittleEndian.Uint16(rec[36:38])),
			},
		})
	}
	return races, nil
}
