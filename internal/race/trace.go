package race

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"finishrepair/internal/dpst"
)

// The paper's tool writes the detected races to trace files which the
// repair passes then read back ("the time to repair is dominated by the
// time taken to read the trace files", §7.2). We mirror that boundary:
// WriteTrace serializes races, ReadTrace deserializes them against the
// S-DPST of the same execution.

const traceMagic = uint32(0x53445054) // "SDPT"

// WriteTrace serializes races to w in the binary trace format.
func WriteTrace(w io.Writer, races []*Race) error {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(races)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [21]byte
	for _, r := range races {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(r.Src.ID))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(r.Dst.ID))
		binary.LittleEndian.PutUint64(rec[8:16], r.Loc)
		rec[16] = byte(r.Kind)
		binary.LittleEndian.PutUint32(rec[17:21], 0) // reserved
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace, resolving step
// IDs against tree.
func ReadTrace(r io.Reader, tree *dpst.Tree) ([]*Race, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("race trace: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("race trace: bad magic")
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])

	byID := make(map[int]*dpst.Node)
	tree.Walk(func(nd *dpst.Node) { byID[nd.ID] = nd })

	races := make([]*Race, 0, n)
	var rec [21]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("race trace: truncated at record %d: %w", i, err)
		}
		src := byID[int(binary.LittleEndian.Uint32(rec[0:4]))]
		dst := byID[int(binary.LittleEndian.Uint32(rec[4:8]))]
		if src == nil || dst == nil {
			return nil, fmt.Errorf("race trace: record %d references unknown step", i)
		}
		races = append(races, &Race{
			Src:  src,
			Dst:  dst,
			Loc:  binary.LittleEndian.Uint64(rec[8:16]),
			Kind: Kind(rec[16]),
		})
	}
	return races, nil
}
