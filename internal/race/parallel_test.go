package race_test

import (
	"fmt"
	"sort"
	"testing"

	"finishrepair/internal/bench"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/race"
)

// raceFingerprint renders a detector's races as a sorted,
// tree-independent fingerprint: replay assigns node IDs
// deterministically, so IDs are comparable across separate analyses of
// the same trace.
func raceFingerprint(det race.Detector) []string {
	var out []string
	for _, r := range det.Races() {
		out = append(out, fmt.Sprintf("%s:%d->%d@%d", r.Kind, r.Src.ID, r.Dst.ID, r.Loc))
	}
	sort.Strings(out)
	return out
}

// TestAnalyzeParallelMatchesSerial runs the differential engine over the
// same captured trace serially and with engine-level parallelism and
// requires identical race sets: the concurrent replays must not perturb
// detection, and the cross-check must still pass on both.
func TestAnalyzeParallelMatchesSerial(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := parser.Parse(b.Src(b.RepairSize))
			if err != nil {
				t.Fatal(err)
			}
			ast.StripFinishes(prog)
			info, err := sem.Check(prog)
			if err != nil {
				t.Fatal(err)
			}
			_, tr, err := race.Capture(info, nil)
			if err != nil {
				t.Fatal(err)
			}

			serial := race.NewEngine(race.EngineBoth, race.VariantMRW)
			if _, err := race.Analyze(tr, info.Prog, nil, serial, nil, false); err != nil {
				t.Fatal(err)
			}
			if err := serial.(*race.Differential).Check(); err != nil {
				t.Fatalf("serial cross-check: %v", err)
			}
			want := raceFingerprint(serial)

			par := race.NewEngine(race.EngineBoth, race.VariantMRW)
			if _, err := race.AnalyzeParallel(tr, info.Prog, nil, par, nil, false, 4); err != nil {
				t.Fatal(err)
			}
			if err := par.(*race.Differential).Check(); err != nil {
				t.Fatalf("parallel cross-check: %v", err)
			}
			got := raceFingerprint(par)

			if len(got) != len(want) {
				t.Fatalf("race count differs: serial %d, parallel %d", len(want), len(got))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("race %d differs: serial %s, parallel %s", i, want[i], got[i])
				}
			}
			if r, ok := par.(race.Releaser); ok {
				r.Release()
			}
		})
	}
}

// TestAnalyzeParallelFallsThrough checks that a non-differential engine
// or a worker count of 1 takes the serial path and still detects.
func TestAnalyzeParallelFallsThrough(t *testing.T) {
	b := bench.Get("Mergesort")
	prog, err := parser.Parse(b.Src(b.RepairSize))
	if err != nil {
		t.Fatal(err)
	}
	ast.StripFinishes(prog)
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := race.Capture(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, mk := range map[string]func() race.Engine{
		"single-engine": func() race.Engine { return race.NewEngine(race.EngineESPBags, race.VariantMRW) },
		"workers-1":     func() race.Engine { return race.NewEngine(race.EngineBoth, race.VariantMRW) },
	} {
		workers := 4
		if name == "workers-1" {
			workers = 1
		}
		eng := mk()
		if _, err := race.AnalyzeParallel(tr, info.Prog, nil, eng, nil, false, workers); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(eng.Races()) == 0 {
			t.Fatalf("%s: expected races on stripped Mergesort", name)
		}
	}
}
