package race

import (
	"math"
	"sort"
	"sync"
	"time"

	"finishrepair/internal/dpst"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/trace"
)

// ----------------------------------------------------------------------
// Sharded shadow memory.
//
// One replay pass demultiplexes the event stream into a bounded chunked
// op log; W shard workers consume it concurrently. Every worker applies
// all structure ops (each holds a private dual oracle, so ordering
// queries stay lock-free), but only the accesses whose location hashes
// into its shard — the shadow memory is partitioned by location, and a
// location's cell history evolves identically to the serial scan's
// because all of its accesses land in one shard in trace order.
//
// Determinism: every access op carries a global index (ord). A raw race
// report is stamped with the ord of the access that produced it; ord
// sets are disjoint across shards (one access touches one location,
// hence one shard), so concatenating the per-shard raw streams and
// stable-sorting by ord reconstructs exactly the serial raw-report
// order. The merged stream is adopted into the target engine's
// recorder, whose shared resolve/dedupe pass then yields byte-identical
// races for any shard count, including W=1 (serial).

// Shard-op kinds.
const (
	opRead = uint8(iota)
	opWrite
	opTaskStart
	opTaskEnd
	opFinishStart
	opFinishEnd
)

// shardOp is one demultiplexed replay event.
type shardOp struct {
	loc  uint64
	step *dpst.Node
	site trace.Site
	kind uint8
}

const (
	// shardOpChunk is the op-log chunk size: big enough to amortize the
	// seal/handoff lock, small enough that the pipeline stays tight.
	shardOpChunk = 8192
	// shardMaxLead bounds how many sealed chunks the producer may run
	// ahead of the slowest live worker, capping op-log memory at
	// shardMaxLead+1 chunks (plus recycled spares) regardless of trace
	// size.
	shardMaxLead = 4
)

// opLog is the bounded, chunked op queue between the replay producer and
// the shard workers. Sealed chunks are immutable; each worker tracks its
// own cursor; fully consumed chunks are recycled back to the producer.
type opLog struct {
	mu       sync.Mutex
	cond     *sync.Cond
	chunks   [][]shardOp // sealed chunks, indexed absolutely
	free     [][]shardOp // consumed chunk arrays, ready for reuse
	recycled int         // chunks[:recycled] have been handed back
	done     bool
	err      error // producer failure; workers abort without draining
	cursors  []int // per-worker count of fully consumed chunks
}

func newOpLog(workers int) *opLog {
	l := &opLog{cursors: make([]int, workers)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// minCursor returns the slowest worker's cursor. Dead workers park at
// MaxInt and never hold the producer back.
func (l *opLog) minCursor() int {
	m := math.MaxInt
	for _, c := range l.cursors {
		if c < m {
			m = c
		}
	}
	return m
}

// newChunk returns an empty op buffer, reusing a recycled one when
// available.
func (l *opLog) newChunk() []shardOp {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.free); n > 0 {
		c := l.free[n-1]
		l.free = l.free[:n-1]
		return c[:0]
	}
	return make([]shardOp, 0, shardOpChunk)
}

// seal publishes a filled chunk, blocking while the producer is more
// than shardMaxLead chunks ahead of the slowest live worker.
func (l *opLog) seal(c []shardOp) {
	l.mu.Lock()
	for len(l.chunks)-l.minCursor() >= shardMaxLead {
		l.cond.Wait()
	}
	l.chunks = append(l.chunks, c)
	l.cond.Broadcast()
	l.mu.Unlock()
}

// finish publishes the partial tail chunk and marks the log complete.
func (l *opLog) finish(tail []shardOp) {
	l.mu.Lock()
	if len(tail) > 0 {
		l.chunks = append(l.chunks, tail)
	}
	l.done = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// fail marks the log complete with a producer error: workers abort at
// their next fetch instead of draining.
func (l *opLog) fail(err error) {
	l.mu.Lock()
	l.done = true
	l.err = err
	l.cond.Broadcast()
	l.mu.Unlock()
}

// next blocks until chunk i is available. ok=false means the log is
// exhausted; a non-nil error is the producer's failure.
func (l *opLog) next(i int) (chunk []shardOp, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return nil, false, l.err
		}
		if i < len(l.chunks) {
			return l.chunks[i], true, nil
		}
		if l.done {
			return nil, false, nil
		}
		l.cond.Wait()
	}
}

// consumed records that worker w fully processed chunk i; chunks every
// worker has passed are recycled and the producer is woken.
func (l *opLog) consumed(w, i int) {
	l.mu.Lock()
	l.cursors[w] = i + 1
	for m := l.minCursor(); l.recycled < m && l.recycled < len(l.chunks); l.recycled++ {
		l.free = append(l.free, l.chunks[l.recycled])
		l.chunks[l.recycled] = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// abandon parks a dead worker's cursor at MaxInt so it never throttles
// the producer, and recycles whatever it alone was holding back.
func (l *opLog) abandon(w int) {
	l.mu.Lock()
	l.cursors[w] = math.MaxInt
	for m := l.minCursor(); l.recycled < m && l.recycled < len(l.chunks); l.recycled++ {
		l.free = append(l.free, l.chunks[l.recycled])
		l.chunks[l.recycled] = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// demuxSink is the replay sink on the producer side: it serializes every
// structure and access event into the op log in one pass.
type demuxSink struct {
	log *opLog
	cur []shardOp
}

func newDemuxSink(log *opLog) *demuxSink {
	return &demuxSink{log: log, cur: make([]shardOp, 0, shardOpChunk)}
}

func (s *demuxSink) add(op shardOp) {
	s.cur = append(s.cur, op)
	if len(s.cur) == shardOpChunk {
		s.log.seal(s.cur)
		s.cur = s.log.newChunk()
	}
}

// Read enqueues an access op.
func (s *demuxSink) Read(loc uint64, step *dpst.Node, site trace.Site) {
	s.add(shardOp{kind: opRead, loc: loc, step: step, site: site})
}

// Write enqueues an access op.
func (s *demuxSink) Write(loc uint64, step *dpst.Node, site trace.Site) {
	s.add(shardOp{kind: opWrite, loc: loc, step: step, site: site})
}

// TaskStart enqueues a structure op.
func (s *demuxSink) TaskStart(n *dpst.Node) { s.add(shardOp{kind: opTaskStart, step: n}) }

// TaskEnd enqueues a structure op.
func (s *demuxSink) TaskEnd(n *dpst.Node) { s.add(shardOp{kind: opTaskEnd, step: n}) }

// FinishStart enqueues a structure op.
func (s *demuxSink) FinishStart(n *dpst.Node) { s.add(shardOp{kind: opFinishStart, step: n}) }

// FinishEnd enqueues a structure op.
func (s *demuxSink) FinishEnd(n *dpst.Node) { s.add(shardOp{kind: opFinishEnd, step: n}) }

// shardOf maps a location to its shard (Fibonacci multiplicative hash:
// trace locations are low-entropy small integers, and consecutive array
// slots must spread rather than stripe).
func shardOf(loc uint64, shards int) int {
	return int((loc * 0x9E3779B97F4A7C15 >> 33) % uint64(shards))
}

// shardWorker drains the op log for shard w: all structure ops feed its
// private oracle, accesses hashing into w feed its detector, stamped
// with their global op index.
func shardWorker(w, shards int, det Detector, st ordStamper, log *opLog, m *guard.Meter) error {
	base := uint64(0)
	for ci := 0; ; ci++ {
		chunk, ok, err := log.next(ci)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for i := range chunk {
			op := &chunk[i]
			switch op.kind {
			case opRead:
				if shardOf(op.loc, shards) == w {
					st.setOrd(base + uint64(i))
					det.Read(op.loc, op.step, op.site)
				}
			case opWrite:
				if shardOf(op.loc, shards) == w {
					st.setOrd(base + uint64(i))
					det.Write(op.loc, op.step, op.site)
				}
			case opTaskStart:
				det.TaskStart(op.step)
			case opTaskEnd:
				det.TaskEnd(op.step)
			case opFinishStart:
				det.FinishStart(op.step)
			case opFinishEnd:
				det.FinishEnd(op.step)
			}
		}
		base += uint64(len(chunk))
		log.consumed(w, ci)
		// The producer's replay charges the op budget; workers only poll
		// for cancellation/deadline so an aborted run winds down fast.
		if err := m.Check(); err != nil {
			return err
		}
	}
}

// AnalyzeSharded is Analyze for a fused engine with its shadow memory
// partitioned across exactly `shards` concurrent workers. Results are
// byte-identical to the serial scan for any shard count. Most callers
// want AnalyzeParallel, which picks a shard count from the requested
// workers and the machine; this entry point takes the count literally
// (tests exercise the shard machinery with it on any machine).
func AnalyzeSharded(tr *trace.Trace, prog *ast.Program, fins []trace.FinishRange, f *Fused, m *guard.Meter, noCollapse bool, shards int) (*trace.Result, error) {
	if shards <= 1 {
		return Analyze(tr, prog, fins, f, m, noCollapse)
	}
	run := func(opts trace.ReplayOptions) (*trace.Result, error) {
		return trace.Replay(tr, opts)
	}
	return analyzeShardedFrom(run, tr.Len(), prog, fins, f, m, noCollapse, shards)
}

// analyzeShardedFrom runs the sharded analysis over any replay source
// (captured trace or live stream). events presizes the per-shard shadow
// arenas; 0 skips presizing (streaming, where the total is unknown).
func analyzeShardedFrom(run func(trace.ReplayOptions) (*trace.Result, error), events int, prog *ast.Program, fins []trace.FinishRange, f *Fused, m *guard.Meter, noCollapse bool, shards int) (*trace.Result, error) {
	m.SetPhase("detect")
	t0 := time.Now()

	log := newOpLog(shards)
	dets := make([]Detector, shards)
	duals := make([]*DualOracle, shards)
	for i := range dets {
		duals[i] = NewDualOracle()
		dets[i] = New(f.variant, duals[i])
		if events > 0 {
			if p, ok := dets[i].(Presizer); ok {
				p.Presize(events / shards)
			}
		}
	}

	errs := make([]error, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Protect inside the goroutine: a contained panic must surface
			// as this worker's error, not crash the process.
			err := guard.Protect("detect", func() error {
				return shardWorker(w, shards, dets[w], dets[w].(ordStamper), log, m)
			})
			if err != nil {
				errs[w] = err
				log.abandon(w)
			}
		}(w)
	}

	sink := newDemuxSink(log)
	rr, rerr := run(trace.ReplayOptions{
		Prog:       prog,
		Finishes:   fins,
		Sink:       sink,
		NoCollapse: noCollapse,
		Meter:      m,
	})
	if rerr != nil {
		log.fail(rerr)
	} else {
		log.finish(sink.cur)
	}
	wg.Wait()

	// Deterministic error preference: the producer's error wins, then the
	// lowest-indexed worker's, so the outcome does not depend on
	// goroutine scheduling.
	if rerr == nil {
		for _, e := range errs {
			if e != nil {
				rerr = e
				break
			}
		}
	}
	release := func() {
		for _, d := range dets {
			if r, ok := d.(Releaser); ok {
				r.Release()
			}
		}
	}
	if rerr != nil {
		release()
		return nil, rerr
	}

	// Deterministic merge: concatenate the per-shard raw reports and
	// stable-sort by global op index — ords are disjoint across shards
	// and reports from one op keep their scan order, so this is exactly
	// the serial raw stream. Adopt before releasing the shard detectors
	// (adopt copies; Release zeroes the source arenas).
	total := 0
	for _, d := range dets {
		total += len(d.(ordStamper).rawRaces())
	}
	merged := make([]Race, 0, total)
	for _, d := range dets {
		merged = append(merged, d.(ordStamper).rawRaces()...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].ord < merged[j].ord })
	f.Detector.(ordStamper).adoptRaces(merged)

	for i, d := range dets {
		if s, ok := d.(ShadowSizer); ok {
			f.shardCells += s.ShadowCells()
		}
		f.shardQueries += duals[i].queries
		if f.shardDiv == nil {
			f.shardDiv = duals[i].div
		}
	}
	release()

	mAnalyzeShards.Set(int64(shards))
	observeAnalysis(f, rr, time.Since(t0))
	return rr, nil
}
