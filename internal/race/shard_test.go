package race_test

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"

	"finishrepair/internal/bench"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
	"finishrepair/internal/race"
)

// testShardCounts is the shard-count dimension for the determinism
// tests; the CI matrix overrides it via TDR_TEST_SHARDS.
func testShardCounts(t *testing.T) []int {
	if s := os.Getenv("TDR_TEST_SHARDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad TDR_TEST_SHARDS=%q", s)
		}
		return []int{n}
	}
	return []int{1, 2, 8}
}

// seqFingerprint renders races in their reported sequence order,
// unsorted: the sharded merge must reproduce the serial scan's race
// stream exactly, ordering included, not just the same set.
func seqFingerprint(det race.Detector) []string {
	var out []string
	for _, r := range det.Races() {
		out = append(out, fmt.Sprintf("%s:%d->%d@%d", r.Kind, r.Src.ID, r.Dst.ID, r.Loc))
	}
	return out
}

// TestFusedMatchesDifferential checks that the fused dual-oracle engine
// reports exactly the races the legacy two-engine differential pair
// does on every benchmark program, with a clean per-query cross-check.
func TestFusedMatchesDifferential(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := parser.Parse(b.Src(b.RepairSize))
			if err != nil {
				t.Fatal(err)
			}
			ast.StripFinishes(prog)
			info, err := sem.Check(prog)
			if err != nil {
				t.Fatal(err)
			}
			_, tr, err := race.Capture(info, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []race.Variant{race.VariantSRW, race.VariantMRW} {
				legacy := race.NewEngine(race.EngineBoth, v)
				if _, err := race.Analyze(tr, info.Prog, nil, legacy, nil, false); err != nil {
					t.Fatal(err)
				}
				if err := legacy.(*race.Differential).Check(); err != nil {
					t.Fatalf("legacy cross-check (%s): %v", v, err)
				}
				fused := race.NewFused(v)
				if _, err := race.Analyze(tr, info.Prog, nil, fused, nil, false); err != nil {
					t.Fatal(err)
				}
				if err := fused.Check(); err != nil {
					t.Fatalf("fused cross-check (%s): %v", v, err)
				}
				want, got := seqFingerprint(legacy), seqFingerprint(fused)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("race streams differ (%s):\nlegacy %v\nfused  %v", v, want, got)
				}
				fused.Release()
				if r, ok := legacy.(race.Releaser); ok {
					r.Release()
				}
			}
		})
	}
}

// TestShardedDeterministicAcrossShardCounts analyzes each benchmark
// trace with the sharded fused engine at several shard counts and
// requires the race stream — order included — to be identical to the
// serial fused scan's: shard count must never change the result.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	counts := testShardCounts(t)
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := parser.Parse(b.Src(b.RepairSize))
			if err != nil {
				t.Fatal(err)
			}
			ast.StripFinishes(prog)
			info, err := sem.Check(prog)
			if err != nil {
				t.Fatal(err)
			}
			_, tr, err := race.Capture(info, nil)
			if err != nil {
				t.Fatal(err)
			}
			serial := race.NewFused(race.VariantMRW)
			if _, err := race.Analyze(tr, info.Prog, nil, serial, nil, false); err != nil {
				t.Fatal(err)
			}
			want := seqFingerprint(serial)
			serial.Release()
			for _, w := range counts {
				f := race.NewFused(race.VariantMRW)
				if _, err := race.AnalyzeSharded(tr, info.Prog, nil, f, nil, false, w); err != nil {
					t.Fatalf("shards=%d: %v", w, err)
				}
				if err := f.Check(); err != nil {
					t.Fatalf("shards=%d cross-check: %v", w, err)
				}
				if got := seqFingerprint(f); !reflect.DeepEqual(want, got) {
					t.Fatalf("race stream differs at shards=%d:\nserial  %v\nsharded %v", w, want, got)
				}
				f.Release()
			}
		})
	}
}

// checkShardedAgreesSerial captures src once and checks, for both
// variants and both collapse policies, that the sharded fused analysis
// reproduces the serial fused analysis exactly. Programs that exceed
// the op budget or fail semantic checks are skipped, mirroring the
// differential property harness.
func checkShardedAgreesSerial(t *testing.T, name, src string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		return
	}
	ast.StripFinishes(prog)
	info, err := sem.Check(prog)
	if err != nil {
		return
	}
	m := guard.NewMeter(context.Background(), guard.Budget{OpLimit: 2_000_000})
	_, tr, err := race.Capture(info, m)
	if err != nil {
		t.Logf("%s: capture skipped: %v", name, err)
		return
	}
	for _, v := range []race.Variant{race.VariantSRW, race.VariantMRW} {
		for _, noCollapse := range []bool{false, true} {
			serial := race.NewFused(v)
			if _, err := race.Analyze(tr, info.Prog, nil, serial, nil, noCollapse); err != nil {
				t.Fatalf("%s (%s, noCollapse=%v): %v", name, v, noCollapse, err)
			}
			if err := serial.Check(); err != nil {
				t.Errorf("%s (%s, noCollapse=%v): serial %v", name, v, noCollapse, err)
			}
			want := seqFingerprint(serial)
			serial.Release()

			f := race.NewFused(v)
			if _, err := race.AnalyzeSharded(tr, info.Prog, nil, f, nil, noCollapse, 3); err != nil {
				t.Fatalf("%s (%s, noCollapse=%v): sharded %v", name, v, noCollapse, err)
			}
			if err := f.Check(); err != nil {
				t.Errorf("%s (%s, noCollapse=%v): sharded %v", name, v, noCollapse, err)
			}
			if got := seqFingerprint(f); !reflect.DeepEqual(want, got) {
				t.Errorf("%s (%s, noCollapse=%v): sharded race stream differs\nserial  %v\nsharded %v",
					name, v, noCollapse, want, got)
			}
			f.Release()
		}
	}
}

// TestShardedAgreesOnFuzzCorpus runs the sharded==serial property over
// every seed of the checked-in repair fuzz corpus.
func TestShardedAgreesOnFuzzCorpus(t *testing.T) {
	for name, src := range fuzzCorpusSeeds(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			checkShardedAgreesSerial(t, name, src)
		})
	}
}

// TestShardedAgreesOnGeneratedPrograms fuzzes the sharded==serial
// property with deterministic generated programs.
func TestShardedAgreesOnGeneratedPrograms(t *testing.T) {
	for seed := int64(5000); seed < 5040; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			checkShardedAgreesSerial(t, fmt.Sprintf("progen-%d", seed), progen.Gen(seed, progen.Default()))
		})
	}
}

// TestCaptureAnalyzeStreamedSharded forces the sharded streaming
// consumer (GOMAXPROCS permitting shards) and checks it against the
// batch serial fused scan. Not parallel: it adjusts GOMAXPROCS so the
// shard clamp cannot collapse the consumer to the serial path on
// single-CPU machines.
func TestCaptureAnalyzeStreamedSharded(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	b := bench.Get("Mergesort")
	mkInfo := func() *sem.Info {
		prog, err := parser.Parse(b.Src(b.RepairSize))
		if err != nil {
			t.Fatal(err)
		}
		ast.StripFinishes(prog)
		info, err := sem.Check(prog)
		if err != nil {
			t.Fatal(err)
		}
		return info
	}

	batchInfo := mkInfo()
	_, tr, err := race.Capture(batchInfo, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := race.NewFused(race.VariantMRW)
	if _, err := race.Analyze(tr, batchInfo.Prog, nil, batch, nil, false); err != nil {
		t.Fatal(err)
	}
	want := seqFingerprint(batch)
	batch.Release()

	streamInfo := mkInfo()
	eng := race.NewFused(race.VariantMRW)
	_, str, _, err := race.CaptureAnalyzeStreamed(streamInfo, nil, eng, nil, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Check(); err != nil {
		t.Fatalf("sharded streamed cross-check: %v", err)
	}
	if str.Len() != tr.Len() {
		t.Fatalf("streamed capture length %d differs from batch %d", str.Len(), tr.Len())
	}
	if got := seqFingerprint(eng); !reflect.DeepEqual(want, got) {
		t.Fatalf("sharded streamed race stream differs:\nbatch    %v\nstreamed %v", want, got)
	}
	eng.Release()
}

// TestCaptureAnalyzeStreamedMatchesBatch overlaps capture with the
// (sharded) streaming analysis and requires the same races and the same
// complete trace as batch capture-then-analyze.
func TestCaptureAnalyzeStreamedMatchesBatch(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			mkInfo := func() *sem.Info {
				prog, err := parser.Parse(b.Src(b.RepairSize))
				if err != nil {
					t.Fatal(err)
				}
				ast.StripFinishes(prog)
				info, err := sem.Check(prog)
				if err != nil {
					t.Fatal(err)
				}
				return info
			}

			batchInfo := mkInfo()
			_, tr, err := race.Capture(batchInfo, nil)
			if err != nil {
				t.Fatal(err)
			}
			batch := race.NewFused(race.VariantMRW)
			if _, err := race.Analyze(tr, batchInfo.Prog, nil, batch, nil, false); err != nil {
				t.Fatal(err)
			}
			want := seqFingerprint(batch)
			batch.Release()

			streamInfo := mkInfo()
			eng := race.NewFused(race.VariantMRW)
			_, str, _, err := race.CaptureAnalyzeStreamed(streamInfo, nil, eng, nil, false, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Check(); err != nil {
				t.Fatalf("streamed cross-check: %v", err)
			}
			if str.Len() != tr.Len() {
				t.Fatalf("streamed capture length %d differs from batch %d", str.Len(), tr.Len())
			}
			if got := seqFingerprint(eng); !reflect.DeepEqual(want, got) {
				t.Fatalf("streamed race stream differs:\nbatch    %v\nstreamed %v", want, got)
			}
			eng.Release()
		})
	}
}
