package race

import (
	"sync"

	"finishrepair/internal/dpst"
)

// ----------------------------------------------------------------------
// DPST oracle: Theorem 1 queries, no extra state.

// DPSTOracle decides ordering with NS-LCA queries on the S-DPST
// (Theorem 1): two steps are parallel iff the non-scope child of their
// NS-LCA on the earlier step's side is an async node.
type DPSTOracle struct{}

// NewDPSTOracle returns a stateless S-DPST ordering oracle.
func NewDPSTOracle() *DPSTOracle { return &DPSTOracle{} }

// TaskStart is a no-op.
func (*DPSTOracle) TaskStart(*dpst.Node) {}

// TaskEnd is a no-op.
func (*DPSTOracle) TaskEnd(*dpst.Node) {}

// FinishStart is a no-op.
func (*DPSTOracle) FinishStart(*dpst.Node) {}

// FinishEnd is a no-op.
func (*DPSTOracle) FinishEnd(*dpst.Node) {}

// Tag returns 0; the DPST oracle needs no per-access bookkeeping.
func (*DPSTOracle) Tag() uint64 { return 0 }

// Ordered reports whether prevStep is ordered before curStep.
func (*DPSTOracle) Ordered(_ uint64, prevStep, curStep *dpst.Node) bool {
	return !dpst.Parallel(prevStep, curStep)
}

// ----------------------------------------------------------------------
// ESP-Bags oracle: disjoint-set S/P bags over tasks and finishes.

// BagsOracle implements the ESP-Bags structure for terminally-strict
// async-finish parallelism (Raman et al. 2012):
//
//   - when a task A starts, its S-bag is the singleton {A};
//   - when A ends, A's S-bag is merged into the P-bag of A's immediately
//     enclosing finish and marked P (A may run in parallel with whatever
//     executes until that finish joins);
//   - when a finish F ends, F's P-bag is merged into the current task's
//     S-bag and marked S (everything under F is now ordered before the
//     continuation).
//
// An earlier access is ordered before the current execution point iff
// the set holding its task is S-marked. Amortized near-O(1) per query
// via union-find with path compression and union by size.
//
// S-bags and P-bags are distinct union-find elements: element 2*ID is
// node ID's S-bag identity, 2*ID+1 its P-bag identity.
type BagsOracle struct {
	parent []int32
	size   []int32
	isP    []bool

	taskStack   []*dpst.Node
	finishStack []*dpst.Node
}

var bagsPool = sync.Pool{New: func() any { return new(BagsOracle) }}

// NewBagsOracle returns an empty ESP-Bags oracle. The first TaskStart
// (on the tree root) initializes the root task, which also serves as the
// outermost implicit finish. The oracle may come from the reuse pool;
// Release (optional, usually via the owning detector) recycles it.
func NewBagsOracle() *BagsOracle { return bagsPool.Get().(*BagsOracle) }

func sBag(n *dpst.Node) int32 { return int32(2 * n.ID) }
func pBag(n *dpst.Node) int32 { return int32(2*n.ID + 1) }

func (b *BagsOracle) ensure(id int32) {
	for len(b.parent) <= int(id) {
		b.parent = append(b.parent, int32(len(b.parent)))
		b.size = append(b.size, 1)
		b.isP = append(b.isP, false)
	}
}

func (b *BagsOracle) find(x int32) int32 {
	root := x
	for b.parent[root] != root {
		root = b.parent[root]
	}
	for b.parent[x] != root {
		b.parent[x], x = root, b.parent[x]
	}
	return root
}

// union merges the sets of x and y and marks the result P or S.
func (b *BagsOracle) union(x, y int32, p bool) {
	rx, ry := b.find(x), b.find(y)
	if rx == ry {
		b.isP[rx] = p
		return
	}
	if b.size[rx] < b.size[ry] {
		rx, ry = ry, rx
	}
	b.parent[ry] = rx
	b.size[rx] += b.size[ry]
	b.isP[rx] = p
}

// TaskStart handles the start of a task (async instance or the root).
func (b *BagsOracle) TaskStart(n *dpst.Node) {
	b.ensure(pBag(n))
	b.taskStack = append(b.taskStack, n)
	if len(b.taskStack) == 1 {
		// The root task doubles as the outermost implicit finish.
		b.finishStack = append(b.finishStack, n)
	}
}

// TaskEnd merges the ended task's S-bag into the P-bag of its
// immediately enclosing finish.
func (b *BagsOracle) TaskEnd(n *dpst.Node) {
	b.taskStack = b.taskStack[:len(b.taskStack)-1]
	if len(b.taskStack) == 0 {
		return // root task end; detection is over
	}
	ief := b.finishStack[len(b.finishStack)-1]
	b.union(pBag(ief), sBag(n), true)
}

// FinishStart opens a finish scope.
func (b *BagsOracle) FinishStart(n *dpst.Node) {
	b.ensure(pBag(n))
	b.finishStack = append(b.finishStack, n)
}

// FinishEnd merges the finish's P-bag into the current task's S-bag.
func (b *BagsOracle) FinishEnd(n *dpst.Node) {
	b.finishStack = b.finishStack[:len(b.finishStack)-1]
	cur := b.taskStack[len(b.taskStack)-1]
	b.union(sBag(cur), pBag(n), false)
}

// Tag returns the current task's node ID (its S-bag is element 2*ID).
func (b *BagsOracle) Tag() uint64 {
	return uint64(b.taskStack[len(b.taskStack)-1].ID)
}

// Ordered reports whether the earlier access by prevTag's task is ordered
// before the current step: true iff the set holding the task is S-marked.
func (b *BagsOracle) Ordered(prevTag uint64, _, _ *dpst.Node) bool {
	return !b.isP[b.find(int32(2*prevTag))]
}

// OrderedByTagOnly reports that bags queries depend only on the recorded
// task, so scans may memoize per-tag answers.
func (b *BagsOracle) OrderedByTagOnly() bool { return true }

// Release resets the oracle and returns its union-find arrays and stacks
// to the reuse pool; the oracle must not be used afterwards.
func (b *BagsOracle) Release() {
	b.parent = b.parent[:0]
	b.size = b.size[:0]
	b.isP = b.isP[:0]
	clear(b.taskStack)
	b.taskStack = b.taskStack[:0]
	clear(b.finishStack)
	b.finishStack = b.finishStack[:0]
	bagsPool.Put(b)
}
