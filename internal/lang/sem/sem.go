// Package sem implements name resolution and static type checking for
// HJ-lite.
//
// The checker annotates the AST in place: each *ast.Ident gets its
// resolved *Symbol, each *ast.CallExpr its target (*ast.FuncDecl or
// *Builtin), and each *ast.VarDeclStmt its declared *Symbol and inferred
// type. Locals and parameters are assigned flat frame slots per function;
// globals get slots in a program-wide array.
//
// Scoping: blocks, if/while/for bodies, and async bodies open scopes.
// The body of a finish statement is deliberately scope-TRANSPARENT: a
// finish inserted by the repair tool around a statement range must not
// capture variable declarations used after the range.
package sem

import (
	"fmt"
	"strings"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/token"
)

// SymbolKind distinguishes globals from function-frame variables.
type SymbolKind int

// Symbol kinds.
const (
	GlobalVar SymbolKind = iota
	LocalVar
	ParamVar
)

// Symbol describes a resolved variable.
type Symbol struct {
	Name string
	Type ast.Type
	Kind SymbolKind
	Slot int // index into the globals array or the function frame
	Pos  token.Pos
}

// Builtin describes a builtin function.
type Builtin struct {
	Name string
	// Check validates argument types and returns the result type (nil for
	// void). It appends errors through the checker.
	check func(c *checker, call *ast.CallExpr, args []ast.Type) ast.Type
}

// Info holds the results of checking a program.
type Info struct {
	Prog *ast.Program
	// GlobalCount is the size of the globals array.
	GlobalCount int
	// FrameSize maps each function to the number of frame slots it needs
	// (params + all locals, no reuse).
	FrameSize map[*ast.FuncDecl]int
	// ExprType records the static type of every expression.
	ExprType map[ast.Expr]ast.Type
	// GlobalSyms lists global symbols in slot order.
	GlobalSyms []*Symbol
}

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates semantic errors.
type ErrorList []*Error

// Error implements the error interface.
func (l ErrorList) Error() string {
	var sb strings.Builder
	for i, e := range l {
		if i == 8 {
			fmt.Fprintf(&sb, "... and %d more errors", len(l)-8)
			break
		}
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(e.Error())
	}
	return sb.String()
}

type scope struct {
	parent *scope
	vars   map[string]*Symbol
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.vars[name]; ok {
			return sym
		}
	}
	return nil
}

type checker struct {
	info     *Info
	errs     ErrorList
	scope    *scope
	curFn    *ast.FuncDecl
	nextSlot int
	funcs    map[string]*ast.FuncDecl

	// isoDepth tracks lexical nesting inside isolated bodies; isoCalls
	// records user-function calls made there, validated after all
	// functions are known (a callee may transitively create tasks).
	isoDepth int
	isoCalls []isoCall
}

// Check resolves and type-checks prog, annotating the AST. It returns the
// collected Info, and a non-nil error (an ErrorList) if the program is
// invalid.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:      prog,
			FrameSize: make(map[*ast.FuncDecl]int),
			ExprType:  make(map[ast.Expr]ast.Type),
		},
		funcs: make(map[string]*ast.FuncDecl),
	}
	c.scope = &scope{vars: make(map[string]*Symbol)}

	for _, fn := range prog.Funcs {
		if prev, dup := c.funcs[fn.Name]; dup {
			c.errorf(fn.FuncPos, "function %s redeclared (previous at %s)", fn.Name, prev.FuncPos)
			continue
		}
		if _, isBuiltin := builtins[fn.Name]; isBuiltin {
			c.errorf(fn.FuncPos, "function %s shadows a builtin", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}

	// Globals, in order; initializers may use earlier globals and call
	// functions (call-before-main evaluation is sequential).
	for _, g := range prog.Globals {
		c.checkVarDecl(g, true)
	}

	for _, fn := range prog.Funcs {
		c.checkFunc(fn)
	}
	c.checkIsolatedCalls()

	if main := prog.Func("main"); main == nil {
		c.errorf(token.Pos{Line: 1, Col: 1}, "program has no main function")
	} else if len(main.Params) != 0 || main.Ret != nil {
		c.errorf(main.FuncPos, "main must take no parameters and return nothing")
	}

	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

// MustCheck checks prog and panics on error; for tests and embedded
// benchmark programs.
func MustCheck(prog *ast.Program) *Info {
	info, err := Check(prog)
	if err != nil {
		panic(err)
	}
	return info
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) push() { c.scope = &scope{parent: c.scope, vars: make(map[string]*Symbol)} }
func (c *checker) pop()  { c.scope = c.scope.parent }

func (c *checker) declare(name string, ty ast.Type, kind SymbolKind, pos token.Pos) *Symbol {
	if prev, ok := c.scope.vars[name]; ok {
		c.errorf(pos, "%s redeclared in this scope (previous at %s)", name, prev.Pos)
	}
	sym := &Symbol{Name: name, Type: ty, Kind: kind, Pos: pos}
	if kind == GlobalVar {
		sym.Slot = c.info.GlobalCount
		c.info.GlobalCount++
		c.info.GlobalSyms = append(c.info.GlobalSyms, sym)
	} else {
		sym.Slot = c.nextSlot
		c.nextSlot++
	}
	c.scope.vars[name] = sym
	return sym
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.curFn = fn
	c.nextSlot = 0
	c.push()
	for _, prm := range fn.Params {
		if prm.Type == nil {
			c.errorf(prm.Pos, "parameter %s has no type", prm.Name)
			continue
		}
		c.declare(prm.Name, prm.Type, ParamVar, prm.Pos)
	}
	c.checkBlock(fn.Body, true)
	c.pop()
	c.info.FrameSize[fn] = c.nextSlot
	c.curFn = nil
}

// checkBlock checks the statements of b. If newScope is true the block
// opens a lexical scope (finish bodies pass false).
func (c *checker) checkBlock(b *ast.Block, newScope bool) {
	if b == nil {
		return
	}
	if newScope {
		c.push()
		defer c.pop()
	}
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.VarDeclStmt:
		c.checkVarDecl(st, false)
	case *ast.AssignStmt:
		c.checkAssign(st)
	case *ast.ExprStmt:
		c.checkExpr(st.X)
	case *ast.ReturnStmt:
		c.checkReturn(st)
	case *ast.IfStmt:
		if ty := c.checkExpr(st.Cond); ty != nil && !ast.TypesEqual(ty, ast.BoolType) {
			c.errorf(st.Cond.Pos(), "if condition must be bool, got %s", ty)
		}
		c.checkBlock(st.Then, true)
		c.checkBlock(st.Else, true)
	case *ast.WhileStmt:
		if ty := c.checkExpr(st.Cond); ty != nil && !ast.TypesEqual(ty, ast.BoolType) {
			c.errorf(st.Cond.Pos(), "while condition must be bool, got %s", ty)
		}
		c.checkBlock(st.Body, true)
	case *ast.ForStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			if ty := c.checkExpr(st.Cond); ty != nil && !ast.TypesEqual(ty, ast.BoolType) {
				c.errorf(st.Cond.Pos(), "for condition must be bool, got %s", ty)
			}
		}
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.checkBlock(st.Body, true)
		c.pop()
	case *ast.AsyncStmt:
		if c.isoDepth > 0 {
			c.errorf(st.AsyncPos, "async not allowed inside isolated")
		}
		c.checkBlock(st.Body, true)
	case *ast.FinishStmt:
		if c.isoDepth > 0 {
			c.errorf(st.FinishPos, "finish not allowed inside isolated")
		}
		// Scope-transparent: declarations inside the finish body remain
		// visible after it.
		c.checkBlock(st.Body, false)
	case *ast.IsolatedStmt:
		// Scope-transparent like finish: an isolated inserted by the
		// repair tool around a statement range must not capture variable
		// declarations used after the range.
		c.isoDepth++
		c.checkBlock(st.Body, false)
		c.isoDepth--
	case *ast.BlockStmt:
		c.checkBlock(st.Body, true)
	default:
		c.errorf(s.Pos(), "unknown statement %T", s)
	}
}

func (c *checker) checkVarDecl(st *ast.VarDeclStmt, global bool) {
	var initTy ast.Type
	if st.Init != nil {
		initTy = c.checkExpr(st.Init)
	}
	if st.Type == nil {
		st.Type = initTy
	} else if initTy != nil && !ast.TypesEqual(st.Type, initTy) {
		c.errorf(st.VarPos, "cannot initialize %s (%s) with %s", st.Name, st.Type, initTy)
	}
	if st.Type == nil {
		c.errorf(st.VarPos, "cannot infer type of %s", st.Name)
		st.Type = ast.IntType
	}
	kind := LocalVar
	if global {
		kind = GlobalVar
	}
	st.Sym = c.declare(st.Name, st.Type, kind, st.VarPos)
}

func (c *checker) checkAssign(st *ast.AssignStmt) {
	lt := c.checkExpr(st.LHS)
	rt := c.checkExpr(st.RHS)
	switch lhs := st.LHS.(type) {
	case *ast.Ident:
		_ = lhs
	case *ast.IndexExpr:
	default:
		c.errorf(st.LHS.Pos(), "invalid assignment target")
		return
	}
	if lt == nil || rt == nil {
		return
	}
	if !ast.TypesEqual(lt, rt) {
		c.errorf(st.OpPos, "cannot assign %s to %s", rt, lt)
		return
	}
	if st.Op != token.ASSIGN && !isNumeric(lt) {
		c.errorf(st.OpPos, "operator %s requires numeric operands, got %s", st.Op, lt)
	}
}

func (c *checker) checkReturn(st *ast.ReturnStmt) {
	want := c.curFn.Ret
	if st.Value == nil {
		if want != nil {
			c.errorf(st.RetPos, "function %s must return %s", c.curFn.Name, want)
		}
		return
	}
	got := c.checkExpr(st.Value)
	if want == nil {
		c.errorf(st.RetPos, "function %s returns no value", c.curFn.Name)
		return
	}
	if got != nil && !ast.TypesEqual(got, want) {
		c.errorf(st.RetPos, "function %s must return %s, got %s", c.curFn.Name, want, got)
	}
}

func isNumeric(t ast.Type) bool {
	p, ok := t.(*ast.PrimType)
	return ok && (p.Kind == ast.Int || p.Kind == ast.Float)
}

func isInt(t ast.Type) bool {
	p, ok := t.(*ast.PrimType)
	return ok && p.Kind == ast.Int
}

func isComparable(t ast.Type) bool {
	p, ok := t.(*ast.PrimType)
	return ok && p.Kind != ast.String
}

// checkExpr type-checks e and returns its type (nil on error).
func (c *checker) checkExpr(e ast.Expr) ast.Type {
	ty := c.exprType(e)
	if ty != nil {
		c.info.ExprType[e] = ty
	}
	return ty
}

func (c *checker) exprType(e ast.Expr) ast.Type {
	switch ex := e.(type) {
	case *ast.IntLit:
		return ast.IntType
	case *ast.FloatLit:
		return ast.FloatType
	case *ast.BoolLit:
		return ast.BoolType
	case *ast.StringLit:
		return ast.StringType
	case *ast.Ident:
		sym := c.scope.lookup(ex.Name)
		if sym == nil {
			c.errorf(ex.NamePos, "undefined: %s", ex.Name)
			return nil
		}
		ex.Sym = sym
		return sym.Type
	case *ast.UnaryExpr:
		xt := c.checkExpr(ex.X)
		if xt == nil {
			return nil
		}
		switch ex.Op {
		case token.SUB:
			if !isNumeric(xt) {
				c.errorf(ex.OpPos, "operator - requires a numeric operand, got %s", xt)
				return nil
			}
			return xt
		case token.NOT:
			if !ast.TypesEqual(xt, ast.BoolType) {
				c.errorf(ex.OpPos, "operator ! requires bool, got %s", xt)
				return nil
			}
			return ast.BoolType
		}
		c.errorf(ex.OpPos, "unknown unary operator %s", ex.Op)
		return nil
	case *ast.BinaryExpr:
		return c.binaryType(ex)
	case *ast.IndexExpr:
		xt := c.checkExpr(ex.X)
		it := c.checkExpr(ex.Index)
		if it != nil && !isInt(it) {
			c.errorf(ex.Index.Pos(), "array index must be int, got %s", it)
		}
		if xt == nil {
			return nil
		}
		at, ok := xt.(*ast.ArrayType)
		if !ok {
			c.errorf(ex.X.Pos(), "cannot index %s", xt)
			return nil
		}
		return at.Elem
	case *ast.MakeExpr:
		lt := c.checkExpr(ex.Len)
		if lt != nil && !isInt(lt) {
			c.errorf(ex.Len.Pos(), "make length must be int, got %s", lt)
		}
		return &ast.ArrayType{Elem: ex.Elem}
	case *ast.CallExpr:
		return c.callType(ex)
	}
	c.errorf(e.Pos(), "unknown expression %T", e)
	return nil
}

func (c *checker) binaryType(ex *ast.BinaryExpr) ast.Type {
	xt := c.checkExpr(ex.X)
	yt := c.checkExpr(ex.Y)
	if xt == nil || yt == nil {
		return nil
	}
	switch ex.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		if !ast.TypesEqual(xt, yt) || !isNumeric(xt) {
			c.errorf(ex.OpPos, "operator %s requires matching numeric operands, got %s and %s", ex.Op, xt, yt)
			return nil
		}
		return xt
	case token.REM, token.AND, token.OR, token.XOR, token.SHL, token.SHR:
		if !isInt(xt) || !isInt(yt) {
			c.errorf(ex.OpPos, "operator %s requires int operands, got %s and %s", ex.Op, xt, yt)
			return nil
		}
		return ast.IntType
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		if !ast.TypesEqual(xt, yt) || !isNumeric(xt) {
			c.errorf(ex.OpPos, "operator %s requires matching numeric operands, got %s and %s", ex.Op, xt, yt)
			return nil
		}
		return ast.BoolType
	case token.EQL, token.NEQ:
		if !ast.TypesEqual(xt, yt) || !isComparable(xt) {
			c.errorf(ex.OpPos, "operator %s requires matching comparable operands, got %s and %s", ex.Op, xt, yt)
			return nil
		}
		return ast.BoolType
	case token.LAND, token.LOR:
		if !ast.TypesEqual(xt, ast.BoolType) || !ast.TypesEqual(yt, ast.BoolType) {
			c.errorf(ex.OpPos, "operator %s requires bool operands, got %s and %s", ex.Op, xt, yt)
			return nil
		}
		return ast.BoolType
	}
	c.errorf(ex.OpPos, "unknown binary operator %s", ex.Op)
	return nil
}

func (c *checker) callType(ex *ast.CallExpr) ast.Type {
	args := make([]ast.Type, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = c.checkExpr(a)
	}
	if b, ok := builtins[ex.Fun]; ok {
		ex.Target = b
		return b.check(c, ex, args)
	}
	fn, ok := c.funcs[ex.Fun]
	if !ok {
		c.errorf(ex.FunPos, "undefined function: %s", ex.Fun)
		return nil
	}
	ex.Target = fn
	if c.isoDepth > 0 {
		c.isoCalls = append(c.isoCalls, isoCall{fn: fn, pos: ex.FunPos})
	}
	if len(args) != len(fn.Params) {
		c.errorf(ex.FunPos, "%s expects %d arguments, got %d", ex.Fun, len(fn.Params), len(args))
		return fn.Ret
	}
	for i, at := range args {
		if at != nil && fn.Params[i].Type != nil && !ast.TypesEqual(at, fn.Params[i].Type) {
			c.errorf(ex.Args[i].Pos(), "argument %d of %s must be %s, got %s", i+1, ex.Fun, fn.Params[i].Type, at)
		}
	}
	return fn.Ret
}
