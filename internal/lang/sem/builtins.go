package sem

import (
	"finishrepair/internal/lang/ast"
)

// BuiltinID identifies a builtin function for the interpreter.
type BuiltinID int

// Builtin identifiers.
const (
	BLen BuiltinID = iota
	BPrint
	BPrintln
	BIntConv
	BFloatConv
	BSqrt
	BSin
	BCos
	BPow
	BExp
	BLog
	BAbs
	BFloor
)

// ID returns the interpreter dispatch ID of the builtin.
func (b *Builtin) ID() BuiltinID { return builtinIDs[b.Name] }

var builtinIDs = map[string]BuiltinID{
	"len": BLen, "print": BPrint, "println": BPrintln,
	"int": BIntConv, "float": BFloatConv,
	"sqrt": BSqrt, "sin": BSin, "cos": BCos, "pow": BPow,
	"exp": BExp, "log": BLog, "abs": BAbs, "floor": BFloor,
}

func wantArgs(c *checker, call *ast.CallExpr, n int) bool {
	if len(call.Args) != n {
		c.errorf(call.FunPos, "%s expects %d argument(s), got %d", call.Fun, n, len(call.Args))
		return false
	}
	return true
}

func float1(c *checker, call *ast.CallExpr, args []ast.Type) ast.Type {
	if !wantArgs(c, call, 1) {
		return ast.FloatType
	}
	if args[0] != nil && !ast.TypesEqual(args[0], ast.FloatType) {
		c.errorf(call.Args[0].Pos(), "%s requires a float argument, got %s", call.Fun, args[0])
	}
	return ast.FloatType
}

var builtins = map[string]*Builtin{
	"len": {Name: "len", check: func(c *checker, call *ast.CallExpr, args []ast.Type) ast.Type {
		if !wantArgs(c, call, 1) {
			return ast.IntType
		}
		if args[0] != nil {
			if _, ok := args[0].(*ast.ArrayType); !ok {
				c.errorf(call.Args[0].Pos(), "len requires an array, got %s", args[0])
			}
		}
		return ast.IntType
	}},
	"print": {Name: "print", check: func(c *checker, call *ast.CallExpr, args []ast.Type) ast.Type {
		return nil
	}},
	"println": {Name: "println", check: func(c *checker, call *ast.CallExpr, args []ast.Type) ast.Type {
		return nil
	}},
	"int": {Name: "int", check: func(c *checker, call *ast.CallExpr, args []ast.Type) ast.Type {
		if wantArgs(c, call, 1) && args[0] != nil && !isNumeric(args[0]) {
			c.errorf(call.Args[0].Pos(), "int() requires a numeric argument, got %s", args[0])
		}
		return ast.IntType
	}},
	"float": {Name: "float", check: func(c *checker, call *ast.CallExpr, args []ast.Type) ast.Type {
		if wantArgs(c, call, 1) && args[0] != nil && !isNumeric(args[0]) {
			c.errorf(call.Args[0].Pos(), "float() requires a numeric argument, got %s", args[0])
		}
		return ast.FloatType
	}},
	"sqrt":  {Name: "sqrt", check: float1},
	"sin":   {Name: "sin", check: float1},
	"cos":   {Name: "cos", check: float1},
	"exp":   {Name: "exp", check: float1},
	"log":   {Name: "log", check: float1},
	"floor": {Name: "floor", check: float1},
	"pow": {Name: "pow", check: func(c *checker, call *ast.CallExpr, args []ast.Type) ast.Type {
		if !wantArgs(c, call, 2) {
			return ast.FloatType
		}
		for i, a := range args {
			if a != nil && !ast.TypesEqual(a, ast.FloatType) {
				c.errorf(call.Args[i].Pos(), "pow requires float arguments, got %s", a)
			}
		}
		return ast.FloatType
	}},
	"abs": {Name: "abs", check: func(c *checker, call *ast.CallExpr, args []ast.Type) ast.Type {
		if !wantArgs(c, call, 1) {
			return ast.IntType
		}
		if args[0] == nil {
			return ast.IntType
		}
		if !isNumeric(args[0]) {
			c.errorf(call.Args[0].Pos(), "abs requires a numeric argument, got %s", args[0])
			return ast.IntType
		}
		return args[0]
	}},
}
