// Isolation checking: isolated bodies run under global mutual exclusion
// and must not create or join tasks. Direct async/finish inside an
// isolated body is rejected in checkStmt; calls are recorded and checked
// here against the transitive "creates tasks" relation so that
//
//	isolated { f(); }   where  func f() { async { ... } }
//
// is rejected just like the inlined form.
package sem

import (
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/token"
)

type isoCall struct {
	fn  *ast.FuncDecl
	pos token.Pos
}

// checkIsolatedCalls validates every user-function call recorded inside
// an isolated body against TaskfulFuncs.
func (c *checker) checkIsolatedCalls() {
	if len(c.isoCalls) == 0 {
		return
	}
	taskful := TaskfulFuncs(c.info.Prog)
	for _, call := range c.isoCalls {
		if taskful[call.fn] {
			c.errorf(call.pos, "call inside isolated: %s creates or joins tasks (async/finish reached through the call)", call.fn.Name)
		}
	}
}

// TaskfulFuncs computes the set of functions that contain an async or
// finish statement, directly or transitively through calls. Exported for
// static analysis (hjvet) and the repair strategy gate.
func TaskfulFuncs(prog *ast.Program) map[*ast.FuncDecl]bool {
	direct := make(map[*ast.FuncDecl]bool)
	callees := make(map[*ast.FuncDecl][]*ast.FuncDecl)
	for _, fn := range prog.Funcs {
		fn := fn
		walkBlockStmts(fn.Body, func(s ast.Stmt) {
			switch s.(type) {
			case *ast.AsyncStmt, *ast.FinishStmt:
				direct[fn] = true
			}
			forEachStmtExpr(s, func(e ast.Expr) {
				walkExprCalls(e, func(call *ast.CallExpr) {
					if target, ok := call.Target.(*ast.FuncDecl); ok {
						callees[fn] = append(callees[fn], target)
					}
				})
			})
		})
	}
	// Propagate taskful-ness backwards over the call graph to fixpoint.
	taskful := make(map[*ast.FuncDecl]bool, len(direct))
	for fn := range direct {
		taskful[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if taskful[fn] {
				continue
			}
			for _, callee := range cs {
				if taskful[callee] {
					taskful[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return taskful
}

// walkBlockStmts visits every statement in b, recursing into nested
// blocks (if/while/for/async/finish/isolated bodies).
func walkBlockStmts(b *ast.Block, visit func(ast.Stmt)) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		visit(s)
		switch st := s.(type) {
		case *ast.IfStmt:
			walkBlockStmts(st.Then, visit)
			walkBlockStmts(st.Else, visit)
		case *ast.WhileStmt:
			walkBlockStmts(st.Body, visit)
		case *ast.ForStmt:
			if st.Init != nil {
				visit(st.Init)
			}
			if st.Post != nil {
				visit(st.Post)
			}
			walkBlockStmts(st.Body, visit)
		case *ast.AsyncStmt:
			walkBlockStmts(st.Body, visit)
		case *ast.FinishStmt:
			walkBlockStmts(st.Body, visit)
		case *ast.IsolatedStmt:
			walkBlockStmts(st.Body, visit)
		case *ast.BlockStmt:
			walkBlockStmts(st.Body, visit)
		}
	}
}

// forEachStmtExpr visits the expressions held directly by s (bodies are
// covered by walkBlockStmts).
func forEachStmtExpr(s ast.Stmt, visit func(ast.Expr)) {
	switch st := s.(type) {
	case *ast.VarDeclStmt:
		if st.Init != nil {
			visit(st.Init)
		}
	case *ast.AssignStmt:
		visit(st.LHS)
		visit(st.RHS)
	case *ast.ExprStmt:
		visit(st.X)
	case *ast.ReturnStmt:
		if st.Value != nil {
			visit(st.Value)
		}
	case *ast.IfStmt:
		visit(st.Cond)
	case *ast.WhileStmt:
		visit(st.Cond)
	case *ast.ForStmt:
		if st.Cond != nil {
			visit(st.Cond)
		}
	}
}

// walkExprCalls visits every CallExpr within e, including nested ones.
func walkExprCalls(e ast.Expr, visit func(*ast.CallExpr)) {
	switch ex := e.(type) {
	case *ast.BinaryExpr:
		walkExprCalls(ex.X, visit)
		walkExprCalls(ex.Y, visit)
	case *ast.UnaryExpr:
		walkExprCalls(ex.X, visit)
	case *ast.IndexExpr:
		walkExprCalls(ex.X, visit)
		walkExprCalls(ex.Index, visit)
	case *ast.MakeExpr:
		walkExprCalls(ex.Len, visit)
	case *ast.CallExpr:
		visit(ex)
		for _, a := range ex.Args {
			walkExprCalls(a, visit)
		}
	}
}
