package sem_test

import (
	"strings"
	"testing"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
)

func checkErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = sem.Check(prog)
	if wantSubstr == "" {
		if err != nil {
			t.Fatalf("unexpected check error: %v\n%s", err, src)
		}
		return
	}
	if err == nil {
		t.Fatalf("expected error containing %q\n%s", wantSubstr, src)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSubstr)
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`func main() { var x = 1 + 1.5; }`, "matching numeric"},
		{`func main() { var x = 1 < true; }`, "matching numeric"},
		{`func main() { var x = true + true; }`, "matching numeric"},
		{`func main() { var x = 1.5 % 2.0; }`, "int operands"},
		{`func main() { var x = 1.0 << 2.0; }`, "int operands"},
		{`func main() { var x = 1 && 2; }`, "bool operands"},
		{`func main() { var x = !3; }`, "requires bool"},
		{`func main() { var x = -true; }`, "numeric operand"},
		{`func main() { if (1) { } }`, "must be bool"},
		{`func main() { while (2.0) { } }`, "must be bool"},
		{`func main() { for (; 5; ) { } }`, "must be bool"},
		{`func main() { var a = make([]int, 2); a[true] = 1; }`, "index must be int"},
		{`func main() { var a = make([]int, true); }`, "length must be int"},
		{`func main() { var x = 1; x[0] = 2; }`, "cannot index"},
		{`func main() { var x = 1; x = 1.5; }`, "cannot assign"},
		{`func main() { var a = make([]int, 1); a = make([]float, 1); }`, "cannot assign"},
		{`func main() { var s = "a"; s += "b"; }`, "numeric operands"},
		{`func main() { undefinedFn(); }`, "undefined function"},
		{`func main() { var y = zz; }`, "undefined: zz"},
		{`func f(a int) {} func main() { f(); }`, "expects 1 arguments"},
		{`func f(a int) {} func main() { f(1.5); }`, "must be int"},
		{`func f() int { return; } func main() { f(); }`, "must return int"},
		{`func f() { return 1; } func main() { f(); }`, "returns no value"},
		{`func f() int { return 1.5; } func main() { f(); }`, "must return int"},
		{`func main() { var x = 1; var x = 2; }`, "redeclared"},
		{`func f() {} func f() {} func main() { }`, "redeclared"},
		{`func len(a int) {} func main() { }`, "shadows a builtin"},
		{`func f() {}`, "no main function"},
		{`func main(x int) { }`, "main must take no parameters"},
		{`func main() { var x = len(3); }`, "requires an array"},
		{`func main() { var x = sqrt(4); }`, "requires a float"},
		{`func main() { var x = pow(2.0, 3); }`, "float arguments"},
		{`func main() { var x = "a" == "b"; }`, "comparable"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestValidPrograms(t *testing.T) {
	cases := []string{
		`func main() { var x = 1; x += 2; x -= 1; x *= 3; x /= 2; println(x); }`,
		`func main() { var f = 1.5; f += 0.5; println(f, int(f), float(2)); }`,
		`func main() { var a = make([][]float, 2); a[0] = make([]float, 3); a[0][1] = 2.5; println(a[0][1]); }`,
		`func main() { var b = true && (1 < 2) || !false; println(b); }`,
		`func main() { var x = abs(-3) + int(abs(-2.5)); println(x); }`,
		`var g = 10; var h = g * 2; func main() { println(h); }`,
		`func f(a []int) int { return len(a); } func main() { println(f(make([]int, 4))); }`,
		`func main() { var s = "hi"; println(s, 1, true, 2.5); }`,
	}
	for _, src := range cases {
		checkErr(t, src, "")
	}
}

// Finish bodies are scope-transparent: declarations inside remain
// visible after the finish, and a finish cannot shadow.
func TestFinishScopeTransparent(t *testing.T) {
	checkErr(t, `
func main() {
    finish {
        var x = 1;
        async { println(x); }
    }
    println(x);
}
`, "")
	// Redeclaration across a finish boundary is therefore an error.
	checkErr(t, `
func main() {
    var x = 1;
    finish { var x = 2; }
    println(x);
}
`, "redeclared")
}

func TestBlockAndAsyncScopes(t *testing.T) {
	// Plain blocks and async bodies do scope.
	checkErr(t, `
func main() {
    { var x = 1; println(x); }
    { var x = 2; println(x); }
}
`, "")
	checkErr(t, `
func main() {
    async { var y = 1; println(y); }
    println(y);
}
`, "undefined: y")
	// Loop variables are scoped to the loop.
	checkErr(t, `
func main() {
    for (var i = 0; i < 2; i = i + 1) { println(i); }
    println(i);
}
`, "undefined: i")
}

func TestShadowing(t *testing.T) {
	checkErr(t, `
var x = 1;
func main() {
    var x = 2;
    if (x > 0) {
        var x = 3;
        println(x);
    }
    println(x);
}
`, "")
}

func TestFrameSlotsAndGlobals(t *testing.T) {
	prog := parser.MustParse(`
var a = 1;
var b = 2.5;
func f(p int, q int) int {
    var r = p + q;
    var s = r * 2;
    return s;
}
func main() {
    var x = f(1, 2);
    println(x, a, b);
}
`)
	info := sem.MustCheck(prog)
	if info.GlobalCount != 2 {
		t.Errorf("GlobalCount = %d, want 2", info.GlobalCount)
	}
	f := prog.Func("f")
	if got := info.FrameSize[f]; got != 4 { // p, q, r, s
		t.Errorf("FrameSize(f) = %d, want 4", got)
	}
	// Slots must be distinct per function.
	if info.GlobalSyms[0].Slot == info.GlobalSyms[1].Slot {
		t.Error("global slots collide")
	}
}

func TestExprTypesRecorded(t *testing.T) {
	prog := parser.MustParse(`func main() { var x = 1 + 2 * 3; println(x); }`)
	info := sem.MustCheck(prog)
	found := false
	for e, ty := range info.ExprType {
		if _, ok := e.(*ast.BinaryExpr); ok && ast.TypesEqual(ty, ast.IntType) {
			found = true
		}
	}
	if !found {
		t.Error("no binary int expression recorded in ExprType")
	}
}

func TestTypesEqual(t *testing.T) {
	cases := []struct {
		a, b ast.Type
		want bool
	}{
		{ast.IntType, ast.IntType, true},
		{ast.IntType, ast.FloatType, false},
		{&ast.ArrayType{Elem: ast.IntType}, &ast.ArrayType{Elem: ast.IntType}, true},
		{&ast.ArrayType{Elem: ast.IntType}, &ast.ArrayType{Elem: ast.FloatType}, false},
		{&ast.ArrayType{Elem: &ast.ArrayType{Elem: ast.BoolType}}, &ast.ArrayType{Elem: &ast.ArrayType{Elem: ast.BoolType}}, true},
		{nil, nil, true},
		{ast.IntType, nil, false},
	}
	for i, c := range cases {
		if got := ast.TypesEqual(c.a, c.b); got != c.want {
			t.Errorf("case %d: TypesEqual = %v, want %v", i, got, c.want)
		}
	}
}
