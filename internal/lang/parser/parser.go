// Package parser implements a recursive-descent parser for HJ-lite.
//
// Bodies of if/else, while, for, async, and finish are normalized to
// blocks so that every interior S-DPST node maps to a block with a stable
// identity — the coordinate system used by static finish placement.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/lexer"
	"finishrepair/internal/lang/token"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates parse errors.
type ErrorList []*Error

// Error implements the error interface, reporting up to five errors.
func (l ErrorList) Error() string {
	var sb strings.Builder
	for i, e := range l {
		if i == 5 {
			fmt.Fprintf(&sb, "... and %d more errors", len(l)-5)
			break
		}
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(e.Error())
	}
	return sb.String()
}

type parser struct {
	lex       *lexer.Lexer
	tok       token.Token
	errs      ErrorList
	blockSeq  int
	panicking bool
}

// Parse parses src and returns the program. On syntax errors it returns a
// non-nil error (an ErrorList) and a possibly partial program.
func Parse(src string) (prog *ast.Program, err error) {
	p := &parser{lex: lexer.New(src)}
	// errorf hard-stops runaway error cascades (adversarial inputs can
	// produce an error per byte) by panicking the accumulated ErrorList;
	// convert that back to an ordinary error return so no panic escapes.
	defer func() {
		if r := recover(); r != nil {
			errs, ok := r.(ErrorList)
			if !ok {
				panic(r)
			}
			prog, err = &ast.Program{}, errs
		}
	}()
	p.next()
	prog = p.parseProgram()
	for _, le := range p.lex.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	prog.SetNextBlockID(p.blockSeq)
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded
// benchmark programs.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *parser) next() { p.tok = p.lex.Next() }

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) > 100 {
		panic(p.errs) // hard stop on runaway error cascades
	}
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) expect(k token.Kind) token.Pos {
	pos := p.tok.Pos
	if p.tok.Kind != k {
		p.errorf(pos, "expected %q, found %s", k.String(), p.tok)
		// Do not consume; let the caller's loop advance via sync points.
		if p.tok.Kind == token.EOF {
			return pos
		}
	}
	p.next()
	return pos
}

func (p *parser) got(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) newBlock(at token.Pos, stmts []ast.Stmt) *ast.Block {
	b := &ast.Block{ID: p.blockSeq, Stmts: stmts, LbPos: at}
	p.blockSeq++
	return b
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.KwFunc:
			prog.Funcs = append(prog.Funcs, p.parseFunc())
		case token.KwVar:
			vd := p.parseVarDecl()
			prog.Globals = append(prog.Globals, vd)
		default:
			p.errorf(p.tok.Pos, "expected top-level func or var, found %s", p.tok)
			p.next()
		}
	}
	return prog
}

func (p *parser) parseFunc() *ast.FuncDecl {
	fn := &ast.FuncDecl{FuncPos: p.tok.Pos}
	p.expect(token.KwFunc)
	fn.Name = p.parseIdentName()
	p.expect(token.LPAREN)
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		if len(fn.Params) > 0 {
			p.expect(token.COMMA)
		}
		prm := ast.Param{Pos: p.tok.Pos}
		prm.Name = p.parseIdentName()
		prm.Type = p.parseType()
		fn.Params = append(fn.Params, prm)
	}
	p.expect(token.RPAREN)
	if p.tok.Kind != token.LBRACE {
		fn.Ret = p.parseType()
	}
	fn.Body = p.parseBlock()
	return fn
}

func (p *parser) parseIdentName() string {
	if p.tok.Kind != token.IDENT {
		p.errorf(p.tok.Pos, "expected identifier, found %s", p.tok)
		return "_"
	}
	name := p.tok.Lit
	p.next()
	return name
}

func (p *parser) parseType() ast.Type {
	switch p.tok.Kind {
	case token.KwInt:
		p.next()
		return ast.IntType
	case token.KwFloat:
		p.next()
		return ast.FloatType
	case token.KwBool:
		p.next()
		return ast.BoolType
	case token.KwStringTy:
		p.next()
		return ast.StringType
	case token.LBRACK:
		p.next()
		p.expect(token.RBRACK)
		return &ast.ArrayType{Elem: p.parseType()}
	}
	p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
	p.next()
	return ast.IntType
}

func (p *parser) parseBlock() *ast.Block {
	lb := p.tok.Pos
	p.expect(token.LBRACE)
	var stmts []ast.Stmt
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		stmts = append(stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return p.newBlock(lb, stmts)
}

// parseStmtAsBlock parses either a braced block or a single statement
// wrapped in a fresh block.
func (p *parser) parseStmtAsBlock() *ast.Block {
	if p.tok.Kind == token.LBRACE {
		return p.parseBlock()
	}
	pos := p.tok.Pos
	s := p.parseStmt()
	return p.newBlock(pos, []ast.Stmt{s})
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.KwVar:
		return p.parseVarDecl()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.WhileStmt{Cond: cond, Body: p.parseStmtAsBlock(), WhilePos: pos}
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		pos := p.tok.Pos
		p.next()
		var val ast.Expr
		if p.tok.Kind != token.SEMI {
			val = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{Value: val, RetPos: pos}
	case token.KwAsync:
		pos := p.tok.Pos
		p.next()
		return &ast.AsyncStmt{Body: p.parseStmtAsBlock(), AsyncPos: pos}
	case token.KwFinish:
		pos := p.tok.Pos
		p.next()
		return &ast.FinishStmt{Body: p.parseStmtAsBlock(), FinishPos: pos}
	case token.KwIsolated:
		pos := p.tok.Pos
		p.next()
		return &ast.IsolatedStmt{Body: p.parseStmtAsBlock(), IsoPos: pos}
	case token.LBRACE:
		return &ast.BlockStmt{Body: p.parseBlock()}
	default:
		s := p.parseSimpleStmt()
		p.expect(token.SEMI)
		return s
	}
}

func (p *parser) parseVarDecl() *ast.VarDeclStmt {
	vd := &ast.VarDeclStmt{VarPos: p.tok.Pos}
	p.expect(token.KwVar)
	vd.Name = p.parseIdentName()
	if p.tok.Kind != token.ASSIGN && p.tok.Kind != token.SEMI {
		vd.Type = p.parseType()
	}
	if p.got(token.ASSIGN) {
		vd.Init = p.parseExpr()
	}
	if vd.Type == nil && vd.Init == nil {
		p.errorf(vd.VarPos, "var %s needs a type or an initializer", vd.Name)
	}
	p.expect(token.SEMI)
	return vd
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.KwIf)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmtAsBlock()
	var els *ast.Block
	if p.got(token.KwElse) {
		if p.tok.Kind == token.KwIf {
			elsePos := p.tok.Pos
			nested := p.parseIf()
			els = p.newBlock(elsePos, []ast.Stmt{nested})
		} else {
			els = p.parseStmtAsBlock()
		}
	}
	return &ast.IfStmt{Cond: cond, Then: then, Else: els, IfPos: pos}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.KwFor)
	p.expect(token.LPAREN)
	var init ast.Stmt
	if p.tok.Kind != token.SEMI {
		if p.tok.Kind == token.KwVar {
			// parseVarDecl consumes the semicolon itself.
			init = p.parseVarDecl()
		} else {
			init = p.parseSimpleStmt()
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	var cond ast.Expr
	if p.tok.Kind != token.SEMI {
		cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	var post ast.Stmt
	if p.tok.Kind != token.RPAREN {
		post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	body := p.parseStmtAsBlock()
	return &ast.ForStmt{Init: init, Cond: cond, Post: post, Body: body, ForPos: pos}
}

func (p *parser) parseSimpleStmt() ast.Stmt {
	lhs := p.parseExpr()
	switch p.tok.Kind {
	case token.ASSIGN, token.ADDASSIGN, token.SUBASSIGN, token.MULASSIGN, token.QUOASSIGN:
		op := p.tok.Kind
		opPos := p.tok.Pos
		p.next()
		rhs := p.parseExpr()
		switch lhs.(type) {
		case *ast.Ident, *ast.IndexExpr:
		default:
			p.errorf(lhs.Pos(), "cannot assign to this expression")
		}
		return &ast.AssignStmt{LHS: lhs, RHS: rhs, Op: op, OpPos: opPos}
	}
	if _, ok := lhs.(*ast.CallExpr); !ok {
		p.errorf(lhs.Pos(), "expression statement must be a call")
	}
	return &ast.ExprStmt{X: lhs}
}

// ----------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		opPos := p.tok.Pos
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{X: x, Y: y, Op: op, OpPos: opPos}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.SUB, token.NOT:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		return &ast.UnaryExpr{X: p.parseUnary(), Op: op, OpPos: pos}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for p.tok.Kind == token.LBRACK {
		lb := p.tok.Pos
		p.next()
		idx := p.parseExpr()
		p.expect(token.RBRACK)
		x = &ast.IndexExpr{X: x, Index: idx, LbPos: lb}
	}
	return x
}

func (p *parser) parsePrimary() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.INT:
		v, err := strconv.ParseInt(p.tok.Lit, 10, 64)
		if err != nil {
			p.errorf(pos, "invalid integer literal %q", p.tok.Lit)
		}
		p.next()
		return &ast.IntLit{Value: v, LitPos: pos}
	case token.FLOAT:
		v, err := strconv.ParseFloat(p.tok.Lit, 64)
		if err != nil {
			p.errorf(pos, "invalid float literal %q", p.tok.Lit)
		}
		p.next()
		return &ast.FloatLit{Value: v, LitPos: pos}
	case token.STRING:
		v := p.tok.Lit
		p.next()
		return &ast.StringLit{Value: v, LitPos: pos}
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{Value: true, LitPos: pos}
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{Value: false, LitPos: pos}
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	case token.KwInt, token.KwFloat: // conversions int(x), float(x)
		name := p.tok.Kind.String()
		p.next()
		p.expect(token.LPAREN)
		arg := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.CallExpr{Fun: name, FunPos: pos, Args: []ast.Expr{arg}}
	case token.IDENT:
		name := p.tok.Lit
		p.next()
		if p.tok.Kind != token.LPAREN {
			return &ast.Ident{Name: name, NamePos: pos}
		}
		if name == "make" {
			p.expect(token.LPAREN)
			p.expect(token.LBRACK)
			p.expect(token.RBRACK)
			elem := p.parseType()
			p.expect(token.COMMA)
			n := p.parseExpr()
			p.expect(token.RPAREN)
			return &ast.MakeExpr{Elem: elem, Len: n, MakePos: pos}
		}
		p.expect(token.LPAREN)
		var args []ast.Expr
		for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
			if len(args) > 0 {
				p.expect(token.COMMA)
			}
			args = append(args, p.parseExpr())
		}
		p.expect(token.RPAREN)
		return &ast.CallExpr{Fun: name, FunPos: pos, Args: args}
	}
	p.errorf(pos, "expected expression, found %s", p.tok)
	p.next()
	return &ast.IntLit{Value: 0, LitPos: pos}
}
