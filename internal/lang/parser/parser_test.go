package parser_test

import (
	"strings"
	"testing"
	"testing/quick"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/progen"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return prog
}

func TestParseSimpleProgram(t *testing.T) {
	prog := parseOK(t, `
var g = 0;
func add(a int, b int) int { return a + b; }
func main() {
    var x = add(1, 2);
    g = x;
    println(g);
}
`)
	if len(prog.Funcs) != 2 || len(prog.Globals) != 1 {
		t.Fatalf("got %d funcs, %d globals", len(prog.Funcs), len(prog.Globals))
	}
	add := prog.Func("add")
	if add == nil || len(add.Params) != 2 || add.Ret == nil {
		t.Fatal("add signature wrong")
	}
}

func TestBodiesAreBlocks(t *testing.T) {
	prog := parseOK(t, `
func main() {
    if (true) println(1); else println(2);
    while (false) println(3);
    for (var i = 0; i < 1; i = i + 1) println(4);
    async println(5);
    finish println(6);
}
`)
	// All single-statement bodies must have been normalized to blocks.
	main := prog.Func("main")
	for i, s := range main.Body.Stmts {
		switch st := s.(type) {
		case *ast.IfStmt:
			if st.Then == nil || st.Else == nil {
				t.Errorf("stmt %d: if branches not blocks", i)
			}
		case *ast.WhileStmt:
			if st.Body == nil {
				t.Errorf("stmt %d: while body not block", i)
			}
		case *ast.ForStmt:
			if st.Body == nil {
				t.Errorf("stmt %d: for body not block", i)
			}
		case *ast.AsyncStmt:
			if st.Body == nil || len(st.Body.Stmts) != 1 {
				t.Errorf("stmt %d: async body wrong", i)
			}
		case *ast.FinishStmt:
			if st.Body == nil || len(st.Body.Stmts) != 1 {
				t.Errorf("stmt %d: finish body wrong", i)
			}
		}
	}
}

func TestElseIfChains(t *testing.T) {
	prog := parseOK(t, `
func main() {
    var x = 3;
    if (x == 1) { println(1); }
    else if (x == 2) { println(2); }
    else { println(3); }
}
`)
	ifs := 0
	ast.Inspect(prog, func(s ast.Stmt) {
		if _, ok := s.(*ast.IfStmt); ok {
			ifs++
		}
	})
	if ifs != 2 {
		t.Errorf("got %d if statements, want 2 (chained)", ifs)
	}
}

func TestPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":      "1 + 2 * 3",
		"(1 + 2) * 3":    "(1 + 2) * 3",
		"1 - 2 - 3":      "1 - 2 - 3",
		"1 - (2 - 3)":    "1 - (2 - 3)",
		"a || b && c":    "a || b && c",
		"(a || b) && c":  "(a || b) && c",
		"1 < 2 == true":  "1 < 2 == true",
		"1 + 2 << 3":     "1 + 2 << 3", // parses as 1 + (2 << 3); no parens needed
		"(1 + 2) << 3":   "(1 + 2) << 3",
		"-x * y":         "-x * y",
		"-(x * y)":       "-(x * y)",
		"a & 3 | b ^ 1":  "a & 3 | b ^ 1",
		"x % 10 + y / 2": "x % 10 + y / 2",
		"!(a && b) || c": "!(a && b) || c",
	}
	for src, want := range cases {
		full := "func main() { var a = true; var b = true; var c = true; var x = 1; var y = 2; var q = " + src + "; }"
		prog, err := parser.Parse(full)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		main := prog.Func("main")
		last := main.Body.Stmts[len(main.Body.Stmts)-1].(*ast.VarDeclStmt)
		if got := printer.PrintExpr(last.Init); got != want {
			t.Errorf("reprint %q = %q, want %q", src, got, want)
		}
	}
}

func TestUnknownSyntaxErrors(t *testing.T) {
	cases := []string{
		"func main() { var ; }",
		"func main() { x = ; }",
		"func main() { if x { } }", // missing parens
		"func main() { 1 + 2; }",   // expression statement must be a call
		"func main() { var x; }",   // no type, no init
		"func",
		"var x",
		"blah",
		"func main() { a[1 = 2; }",
	}
	for _, src := range cases {
		if _, err := parser.Parse(src); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestBlockIDsAreUnique(t *testing.T) {
	prog := parseOK(t, progen.Gen(3, progen.Default()))
	seen := map[int]bool{}
	for _, b := range ast.Blocks(prog) {
		if seen[b.ID] {
			t.Fatalf("duplicate block ID %d", b.ID)
		}
		seen[b.ID] = true
	}
	// NewBlock must not collide with parsed blocks.
	nb := prog.NewBlock(prog.Funcs[0].Body.LbPos, nil)
	if seen[nb.ID] {
		t.Fatalf("NewBlock reused ID %d", nb.ID)
	}
}

// Property: print∘parse is a projection — parsing printed output and
// printing again is the identity on the printed form, for arbitrary
// generated programs.
func TestPrintParseFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		src := progen.Gen(seed, progen.Default())
		p1, err := parser.Parse(src)
		if err != nil {
			t.Logf("seed %d: parse: %v", seed, err)
			return false
		}
		s1 := printer.Print(p1)
		p2, err := parser.Parse(s1)
		if err != nil {
			t.Logf("seed %d: reparse: %v\n%s", seed, err, s1)
			return false
		}
		s2 := printer.Print(p2)
		if s1 != s2 {
			t.Logf("seed %d: not a fixpoint", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStripFinishesRemovesAll(t *testing.T) {
	src := progen.Gen(11, progen.Default())
	prog := parseOK(t, src)
	before := ast.CountFinishes(prog)
	removed := ast.StripFinishes(prog)
	if removed != before {
		t.Errorf("removed %d, had %d", removed, before)
	}
	if n := ast.CountFinishes(prog); n != 0 {
		t.Errorf("%d finishes remain", n)
	}
	// Async count must be preserved.
	orig := parseOK(t, src)
	if ast.CountAsyncs(prog) != ast.CountAsyncs(orig) {
		t.Error("strip changed async count")
	}
	// The result still parses after printing.
	if _, err := parser.Parse(printer.Print(prog)); err != nil {
		t.Errorf("stripped program invalid: %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	parser.MustParse("not a program")
}

func TestDeeplyNestedDoesNotOverflow(t *testing.T) {
	depth := 300
	src := "func main() {" + strings.Repeat("if (true) {", depth) +
		"println(1);" + strings.Repeat("}", depth) + "}"
	parseOK(t, src)
}
