package parser

import (
	"strings"
	"testing"

	"finishrepair/internal/lang/printer"
)

// FuzzParse asserts the front end's containment contract on arbitrary
// bytes: Parse never panics, and a program that parses cleanly
// round-trips through the printer (print → reparse → print is a fixed
// point).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"func main() { }",
		"var g = 0;\nfunc main() { finish { async { g = 1; } } g = 2; }",
		"func f(n int) int { if (n < 2) { return n; } return f(n-1) + f(n-2); }\nfunc main() { println(f(10)); }",
		"func main() { for (var i = 0; i < 4; i = i + 1) { async { println(i); } } }",
		"func main() { while (true) { } }",
		"var g = 0;\nfunc main() { isolated { g = g + 1; } }",
		"func main() { isolated { } }",
		"var g = 0;\nfunc main() { finish { async { isolated { isolated { g = g * 2; } } } } }",
		"{{{{",
		"func main() { g[0 }",
		strings.Repeat("}", 200),
		strings.Repeat("(", 300),
		"func main() { x = 1e999; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		out := printer.Print(prog)
		prog2, err := Parse(out)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\nsource:\n%s\nprinted:\n%s", err, src, out)
		}
		out2 := printer.Print(prog2)
		if out != out2 {
			t.Fatalf("printer is not a fixed point\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
	})
}

// TestParseErrorCascadeContained is the regression test for the runaway
// error cascade hard stop: an adversarial input producing an error per
// token must come back as an ErrorList, not a panic.
func TestParseErrorCascadeContained(t *testing.T) {
	src := strings.Repeat("?; ", 300) // 300 invalid tokens at top level
	prog, err := Parse(src)
	if err == nil {
		t.Fatalf("expected an error for %d invalid tokens", 300)
	}
	if prog == nil {
		t.Fatalf("Parse must return a non-nil (possibly empty) program alongside errors")
	}
	if _, ok := err.(ErrorList); !ok {
		t.Fatalf("expected ErrorList, got %T: %v", err, err)
	}
}
