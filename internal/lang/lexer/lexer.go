// Package lexer implements the scanner for HJ-lite source text.
package lexer

import (
	"fmt"
	"strings"

	"finishrepair/internal/lang/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans HJ-lite source text into tokens.
type Lexer struct {
	src    string
	off    int
	line   int
	col    int
	errors []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errors }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errors = append(l.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token. At end of input it returns an EOF
// token, repeatedly if called again.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if kw, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: kw, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	}

	two := func(next byte, yes, no token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: yes, Pos: pos}
		}
		return token.Token{Kind: no, Pos: pos}
	}

	switch c {
	case '+':
		return two('=', token.ADDASSIGN, token.ADD)
	case '-':
		return two('=', token.SUBASSIGN, token.SUB)
	case '*':
		return two('=', token.MULASSIGN, token.MUL)
	case '/':
		return two('=', token.QUOASSIGN, token.QUO)
	case '%':
		return token.Token{Kind: token.REM, Pos: pos}
	case '^':
		return token.Token{Kind: token.XOR, Pos: pos}
	case '&':
		return two('&', token.LAND, token.AND)
	case '|':
		return two('|', token.LOR, token.OR)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '=':
		return two('=', token.EQL, token.ASSIGN)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LEQ, token.LSS)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GEQ, token.GTR)
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	}
	l.errorf(pos, "illegal character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off - 1
	isFloat := false
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			// Not an exponent after all; back off to before 'e'.
			l.off = save
		}
	}
	lit := l.src[start:l.off]
	if isFloat {
		return token.Token{Kind: token.FLOAT, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.INT, Lit: lit, Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			l.errorf(pos, "unterminated string literal")
			break
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			l.errorf(pos, "newline in string literal")
			break
		}
		if c == '\\' {
			if l.off >= len(l.src) {
				l.errorf(pos, "unterminated escape in string literal")
				break
			}
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			default:
				l.errorf(pos, "unknown escape \\%c", e)
			}
			continue
		}
		sb.WriteByte(c)
	}
	return token.Token{Kind: token.STRING, Lit: sb.String(), Pos: pos}
}

// ScanAll scans the entire source and returns the tokens (ending with EOF)
// and any lexical errors. It is a convenience for tests and tools.
func ScanAll(src string) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
