package lexer_test

import (
	"testing"

	"finishrepair/internal/lang/lexer"
	"finishrepair/internal/lang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := lexer.ScanAll(src)
	if len(errs) > 0 {
		t.Fatalf("lex %q: %v", src, errs[0])
	}
	var ks []token.Kind
	for _, tk := range toks {
		ks = append(ks, tk.Kind)
	}
	return ks
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+": token.ADD, "-": token.SUB, "*": token.MUL, "/": token.QUO, "%": token.REM,
		"&": token.AND, "|": token.OR, "^": token.XOR, "<<": token.SHL, ">>": token.SHR,
		"&&": token.LAND, "||": token.LOR, "!": token.NOT,
		"==": token.EQL, "!=": token.NEQ, "<": token.LSS, "<=": token.LEQ,
		">": token.GTR, ">=": token.GEQ,
		"=": token.ASSIGN, "+=": token.ADDASSIGN, "-=": token.SUBASSIGN,
		"*=": token.MULASSIGN, "/=": token.QUOASSIGN,
		"(": token.LPAREN, ")": token.RPAREN, "{": token.LBRACE, "}": token.RBRACE,
		"[": token.LBRACK, "]": token.RBRACK, ",": token.COMMA, ";": token.SEMI,
	}
	for src, want := range cases {
		ks := kinds(t, src)
		if len(ks) != 2 || ks[0] != want || ks[1] != token.EOF {
			t.Errorf("lex %q = %v, want [%v EOF]", src, ks, want)
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	ks := kinds(t, "async finish func var if else while for return true false int float bool string foo _bar x9")
	want := []token.Kind{
		token.KwAsync, token.KwFinish, token.KwFunc, token.KwVar, token.KwIf,
		token.KwElse, token.KwWhile, token.KwFor, token.KwReturn, token.KwTrue,
		token.KwFalse, token.KwInt, token.KwFloat, token.KwBool, token.KwStringTy,
		token.IDENT, token.IDENT, token.IDENT, token.EOF,
	}
	if len(ks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(ks), len(want), ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, ks[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := lexer.ScanAll("0 42 3.5 1e3 2.5e-2 7e+1")
	if len(errs) > 0 {
		t.Fatalf("%v", errs[0])
	}
	wantKinds := []token.Kind{token.INT, token.INT, token.FLOAT, token.FLOAT, token.FLOAT, token.FLOAT}
	wantLits := []string{"0", "42", "3.5", "1e3", "2.5e-2", "7e+1"}
	for i, k := range wantKinds {
		if toks[i].Kind != k || toks[i].Lit != wantLits[i] {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Lit, k, wantLits[i])
		}
	}
	// "12." must lex as INT 12 followed by an illegal '.' (floats need a
	// digit after the point).
	toks, errs = lexer.ScanAll("12.")
	if toks[0].Kind != token.INT || toks[0].Lit != "12" {
		t.Errorf("got %v, want INT 12", toks[0])
	}
	if toks[1].Kind != token.ILLEGAL || len(errs) == 0 {
		t.Errorf("expected ILLEGAL '.' with an error, got %v (%d errs)", toks[1], len(errs))
	}
}

func TestStrings(t *testing.T) {
	toks, errs := lexer.ScanAll(`"hello" "a\nb" "q\"q" "t\tt" "back\\slash"`)
	if len(errs) > 0 {
		t.Fatalf("%v", errs[0])
	}
	want := []string{"hello", "a\nb", `q"q`, "t\tt", `back\slash`}
	for i, w := range want {
		if toks[i].Kind != token.STRING || toks[i].Lit != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Lit, w)
		}
	}
}

func TestComments(t *testing.T) {
	ks := kinds(t, "a // line comment\nb /* block\ncomment */ c")
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.EOF}
	if len(ks) != len(want) {
		t.Fatalf("got %v", ks)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := lexer.ScanAll("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", `"unterminated`, `"bad \q escape"`, "/* open", "\"nl\nin string\""} {
		_, errs := lexer.ScanAll(src)
		if len(errs) == 0 {
			t.Errorf("lex %q: expected error", src)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := lexer.New("x")
	l.Next()
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("call %d after end = %v, want EOF", i, tk)
		}
	}
}
