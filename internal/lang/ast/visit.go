package ast

// This file holds the fine-grained visitor helpers used by static
// analysis (internal/analysis): expression traversal and direct-child
// accessors that let a walker distinguish "what a statement evaluates
// itself" from "what runs inside its nested blocks".

// StmtExprs returns the expressions a statement evaluates directly: the
// condition of an if/while/for, the sides of an assignment, a
// declaration's initializer, a return value, or an expression
// statement's expression. Nested statements (loop init/post, block
// bodies) are NOT descended into; callers walk those as statements.
func StmtExprs(s Stmt) []Expr {
	switch st := s.(type) {
	case *VarDeclStmt:
		if st.Init != nil {
			return []Expr{st.Init}
		}
	case *AssignStmt:
		return []Expr{st.LHS, st.RHS}
	case *IfStmt:
		return []Expr{st.Cond}
	case *WhileStmt:
		return []Expr{st.Cond}
	case *ForStmt:
		if st.Cond != nil {
			return []Expr{st.Cond}
		}
	case *ReturnStmt:
		if st.Value != nil {
			return []Expr{st.Value}
		}
	case *ExprStmt:
		return []Expr{st.X}
	}
	return nil
}

// StmtBlocks returns the blocks nested directly under a statement (both
// branches of an if, the body of a loop, async, finish, or block
// statement). A for statement's Init and Post are statements, not
// blocks; walkers handle them separately.
func StmtBlocks(s Stmt) []*Block {
	switch st := s.(type) {
	case *IfStmt:
		if st.Else != nil {
			return []*Block{st.Then, st.Else}
		}
		return []*Block{st.Then}
	case *WhileStmt:
		return []*Block{st.Body}
	case *ForStmt:
		return []*Block{st.Body}
	case *AsyncStmt:
		return []*Block{st.Body}
	case *FinishStmt:
		return []*Block{st.Body}
	case *IsolatedStmt:
		return []*Block{st.Body}
	case *BlockStmt:
		return []*Block{st.Body}
	}
	return nil
}

// InspectExpr traverses the expression tree rooted at e in pre-order,
// calling f for every expression node. A nil e is a no-op.
func InspectExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch ex := e.(type) {
	case *BinaryExpr:
		InspectExpr(ex.X, f)
		InspectExpr(ex.Y, f)
	case *UnaryExpr:
		InspectExpr(ex.X, f)
	case *CallExpr:
		for _, a := range ex.Args {
			InspectExpr(a, f)
		}
	case *IndexExpr:
		InspectExpr(ex.X, f)
		InspectExpr(ex.Index, f)
	case *MakeExpr:
		InspectExpr(ex.Len, f)
	}
}

// InspectStmts visits s and every statement nested beneath it, in
// pre-order (the single-statement form of Inspect).
func InspectStmts(s Stmt, f func(Stmt)) {
	inspectStmt(s, f)
}
