package ast_test

import (
	"testing"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
)

const src = `
var g = 1;
func f(x int) int {
    if (x > 0) { return x; } else { return -x; }
}
func main() {
    finish {
        async { g = f(2); }
        while (g > 3) { g = g - 1; }
    }
    for (var i = 0; i < 2; i = i + 1) { println(i); }
    { println(g); }
}
`

func TestInspectVisitsEveryStatementKind(t *testing.T) {
	prog := parser.MustParse(src)
	kinds := map[string]int{}
	ast.Inspect(prog, func(s ast.Stmt) {
		switch s.(type) {
		case *ast.VarDeclStmt:
			kinds["var"]++
		case *ast.AssignStmt:
			kinds["assign"]++
		case *ast.IfStmt:
			kinds["if"]++
		case *ast.WhileStmt:
			kinds["while"]++
		case *ast.ForStmt:
			kinds["for"]++
		case *ast.ReturnStmt:
			kinds["return"]++
		case *ast.ExprStmt:
			kinds["expr"]++
		case *ast.AsyncStmt:
			kinds["async"]++
		case *ast.FinishStmt:
			kinds["finish"]++
		case *ast.BlockStmt:
			kinds["block"]++
		}
	})
	for _, k := range []string{"var", "assign", "if", "while", "for", "return", "expr", "async", "finish", "block"} {
		if kinds[k] == 0 {
			t.Errorf("Inspect never saw a %s statement", k)
		}
	}
}

func TestBlocksAndFindBlock(t *testing.T) {
	prog := parser.MustParse(src)
	blocks := ast.Blocks(prog)
	if len(blocks) < 8 {
		t.Fatalf("only %d blocks found", len(blocks))
	}
	for _, b := range blocks {
		if got := ast.FindBlock(prog, b.ID); got != b {
			t.Fatalf("FindBlock(%d) returned wrong block", b.ID)
		}
	}
	if ast.FindBlock(prog, 1<<30) != nil {
		t.Error("FindBlock on unknown ID should be nil")
	}
}

func TestCounts(t *testing.T) {
	prog := parser.MustParse(src)
	if ast.CountAsyncs(prog) != 1 || ast.CountFinishes(prog) != 1 {
		t.Errorf("counts: asyncs=%d finishes=%d", ast.CountAsyncs(prog), ast.CountFinishes(prog))
	}
	total := ast.CountStmts(prog)
	if total < 10 {
		t.Errorf("CountStmts = %d, suspiciously small", total)
	}
	removed := ast.StripFinishes(prog)
	if removed != 1 || ast.CountFinishes(prog) != 0 {
		t.Error("strip failed")
	}
	// Statement count shrinks by exactly the removed finish statements.
	if got := ast.CountStmts(prog); got != total-1 {
		t.Errorf("after strip CountStmts = %d, want %d", got, total-1)
	}
}

func TestNewBlockIDsMonotonic(t *testing.T) {
	prog := parser.MustParse(src)
	b1 := prog.NewBlock(prog.Funcs[0].Body.LbPos, nil)
	b2 := prog.NewBlock(prog.Funcs[0].Body.LbPos, nil)
	if b2.ID != b1.ID+1 {
		t.Errorf("NewBlock IDs %d, %d not consecutive", b1.ID, b2.ID)
	}
}

func TestFuncLookup(t *testing.T) {
	prog := parser.MustParse(src)
	if prog.Func("f") == nil || prog.Func("main") == nil || prog.Func("nope") != nil {
		t.Error("Func lookup wrong")
	}
}
