// Package ast declares the abstract syntax tree of HJ-lite.
//
// The two parallel constructs are AsyncStmt (task creation) and FinishStmt
// (task termination): "async S" creates a child task that may run in
// parallel with the remainder of its parent, and "finish S" executes S and
// waits for all tasks transitively created inside S.
//
// Blocks carry stable integer identities; the static finish-placement
// algorithm addresses insertion points as (block ID, statement range).
package ast

import (
	"finishrepair/internal/lang/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// ----------------------------------------------------------------------
// Types

// Type is the interface implemented by HJ-lite type expressions.
type Type interface {
	typeNode()
	String() string
}

// PrimKind enumerates the primitive types.
type PrimKind int

// Primitive type kinds.
const (
	Int PrimKind = iota
	Float
	Bool
	String
)

// PrimType is a primitive type: int, float, bool, or string.
type PrimType struct{ Kind PrimKind }

func (*PrimType) typeNode() {}

// String renders the type.
func (t *PrimType) String() string {
	switch t.Kind {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	default:
		return "string"
	}
}

// ArrayType is a dynamically sized array type []Elem.
type ArrayType struct{ Elem Type }

func (*ArrayType) typeNode() {}

// String renders the type.
func (t *ArrayType) String() string { return "[]" + t.Elem.String() }

// Canonical primitive type values, shared by parser and checker.
var (
	IntType    = &PrimType{Kind: Int}
	FloatType  = &PrimType{Kind: Float}
	BoolType   = &PrimType{Kind: Bool}
	StringType = &PrimType{Kind: String}
)

// TypesEqual reports structural type equality.
func TypesEqual(a, b Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch at := a.(type) {
	case *PrimType:
		bt, ok := b.(*PrimType)
		return ok && at.Kind == bt.Kind
	case *ArrayType:
		bt, ok := b.(*ArrayType)
		return ok && TypesEqual(at.Elem, bt.Elem)
	}
	return false
}

// ----------------------------------------------------------------------
// Expressions

// Ident is a use of a name. Sym is filled in by the semantic checker with
// the resolved *sem.Symbol.
type Ident struct {
	Name    string
	NamePos token.Pos
	Sym     any
}

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	LitPos token.Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value  float64
	LitPos token.Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Value  bool
	LitPos token.Pos
}

// StringLit is a string literal.
type StringLit struct {
	Value  string
	LitPos token.Pos
}

// BinaryExpr is X Op Y.
type BinaryExpr struct {
	X, Y  Expr
	Op    token.Kind
	OpPos token.Pos
}

// UnaryExpr is Op X, where Op is - or !.
type UnaryExpr struct {
	X     Expr
	Op    token.Kind
	OpPos token.Pos
}

// CallExpr is Fun(Args...). Fun names either a user function or a builtin.
// Target is filled in by the semantic checker: a *FuncDecl for user
// functions or a sem builtin descriptor.
type CallExpr struct {
	Fun    string
	FunPos token.Pos
	Args   []Expr
	Target any
}

// IndexExpr is X[Index].
type IndexExpr struct {
	X     Expr
	Index Expr
	LbPos token.Pos
}

// MakeExpr allocates a zeroed array: make([]T, len).
type MakeExpr struct {
	Elem    Type
	Len     Expr
	MakePos token.Pos
}

// Pos implementations.
func (e *Ident) Pos() token.Pos      { return e.NamePos }
func (e *IntLit) Pos() token.Pos     { return e.LitPos }
func (e *FloatLit) Pos() token.Pos   { return e.LitPos }
func (e *BoolLit) Pos() token.Pos    { return e.LitPos }
func (e *StringLit) Pos() token.Pos  { return e.LitPos }
func (e *BinaryExpr) Pos() token.Pos { return e.X.Pos() }
func (e *UnaryExpr) Pos() token.Pos  { return e.OpPos }
func (e *CallExpr) Pos() token.Pos   { return e.FunPos }
func (e *IndexExpr) Pos() token.Pos  { return e.X.Pos() }
func (e *MakeExpr) Pos() token.Pos   { return e.MakePos }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}
func (*StringLit) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*MakeExpr) exprNode()   {}

// ----------------------------------------------------------------------
// Statements

// Block is a sequence of statements with a stable identity. A Block is a
// lexical scope except when it is the body of a FinishStmt (finish bodies
// are scope-transparent so that inserted finishes cannot capture variable
// declarations used afterwards).
type Block struct {
	ID    int
	Stmts []Stmt
	LbPos token.Pos
}

// VarDeclStmt declares a variable: var name T = init; The type may be
// omitted in source and inferred, in which case Type is filled in by the
// checker.
type VarDeclStmt struct {
	Name   string
	Type   Type // nil until inferred
	Init   Expr // nil means zero value (requires explicit Type)
	VarPos token.Pos
	Sym    any // *sem.Symbol, filled in by the checker
}

// AssignStmt assigns to an identifier or array element. Op is ASSIGN for
// plain assignment or one of the compound kinds (ADDASSIGN etc).
type AssignStmt struct {
	LHS   Expr // *Ident or *IndexExpr
	RHS   Expr
	Op    token.Kind
	OpPos token.Pos
}

// IfStmt is if (Cond) Then [else Else]. Then and Else are Blocks (the
// parser normalizes single statements into blocks).
type IfStmt struct {
	Cond  Expr
	Then  *Block
	Else  *Block // nil when absent
	IfPos token.Pos
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Cond     Expr
	Body     *Block
	WhilePos token.Pos
}

// ForStmt is for (Init; Cond; Post) Body. Init and Post may be nil.
type ForStmt struct {
	Init   Stmt // *VarDeclStmt or *AssignStmt or nil
	Cond   Expr
	Post   Stmt // *AssignStmt or nil
	Body   *Block
	ForPos token.Pos
}

// ReturnStmt is return [Value];.
type ReturnStmt struct {
	Value  Expr // nil for bare return
	RetPos token.Pos
}

// ExprStmt is an expression evaluated for effect (a call).
type ExprStmt struct {
	X Expr
}

// AsyncStmt creates a child task executing Body.
type AsyncStmt struct {
	Body     *Block
	AsyncPos token.Pos
}

// FinishStmt executes Body and waits for all tasks transitively created
// inside it. Synthesized marks finishes inserted by the repair tool.
type FinishStmt struct {
	Body        *Block
	FinishPos   token.Pos
	Synthesized bool
}

// IsolatedStmt executes Body under global mutual exclusion: no two
// isolated bodies are ever interleaved, though the body still runs on
// whichever task reaches it. Synthesized marks isolated blocks inserted
// by the repair tool. Isolated bodies are scope-transparent like finish
// bodies, and may not create or join tasks (no async/finish inside).
type IsolatedStmt struct {
	Body        *Block
	IsoPos      token.Pos
	Synthesized bool
	// LockClass selects the runtime lock protecting this body. Class 0
	// is the global isolated lock (excludes every other isolated body);
	// class c > 0 is a per-location lock inferred by the repair tool:
	// bodies of the same nonzero class exclude each other and class 0,
	// but run concurrently with other nonzero classes. The class is
	// derived state (never printed); source-level isolated is class 0.
	LockClass int
}

// BlockStmt wraps a nested plain block used as a statement.
type BlockStmt struct {
	Body *Block
}

// Pos implementations.
func (s *Block) Pos() token.Pos        { return s.LbPos }
func (s *VarDeclStmt) Pos() token.Pos  { return s.VarPos }
func (s *AssignStmt) Pos() token.Pos   { return s.LHS.Pos() }
func (s *IfStmt) Pos() token.Pos       { return s.IfPos }
func (s *WhileStmt) Pos() token.Pos    { return s.WhilePos }
func (s *ForStmt) Pos() token.Pos      { return s.ForPos }
func (s *ReturnStmt) Pos() token.Pos   { return s.RetPos }
func (s *ExprStmt) Pos() token.Pos     { return s.X.Pos() }
func (s *AsyncStmt) Pos() token.Pos    { return s.AsyncPos }
func (s *FinishStmt) Pos() token.Pos   { return s.FinishPos }
func (s *IsolatedStmt) Pos() token.Pos { return s.IsoPos }
func (s *BlockStmt) Pos() token.Pos    { return s.Body.Pos() }

func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*AsyncStmt) stmtNode()    {}
func (*FinishStmt) stmtNode()   {}
func (*IsolatedStmt) stmtNode() {}
func (*BlockStmt) stmtNode()    {}

// ----------------------------------------------------------------------
// Declarations and programs

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
	Pos  token.Pos
}

// FuncDecl is a top-level function declaration.
type FuncDecl struct {
	Name    string
	Params  []Param
	Ret     Type // nil for void
	Body    *Block
	FuncPos token.Pos
}

// Program is a parsed HJ-lite compilation unit.
type Program struct {
	Globals []*VarDeclStmt
	Funcs   []*FuncDecl

	// nextBlockID hands out identities for blocks created after parsing
	// (by the repair rewriter).
	nextBlockID int
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// SetNextBlockID records the first unused block ID; called by the parser.
func (p *Program) SetNextBlockID(id int) { p.nextBlockID = id }

// NewBlock creates a block with a fresh identity, for AST rewriting.
func (p *Program) NewBlock(at token.Pos, stmts []Stmt) *Block {
	b := &Block{ID: p.nextBlockID, Stmts: stmts, LbPos: at}
	p.nextBlockID++
	return b
}
