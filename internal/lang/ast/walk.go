package ast

// Inspect traverses the statement tree rooted at the program's functions
// and global initializers, calling f for every statement. Traversal is
// pre-order. Expressions are not visited (statements are what the repair
// tool rewrites).
func Inspect(p *Program, f func(Stmt)) {
	for _, fn := range p.Funcs {
		inspectBlock(fn.Body, f)
	}
}

func inspectBlock(b *Block, f func(Stmt)) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		inspectStmt(s, f)
	}
}

func inspectStmt(s Stmt, f func(Stmt)) {
	f(s)
	if fs, ok := s.(*ForStmt); ok {
		if fs.Init != nil {
			inspectStmt(fs.Init, f)
		}
		if fs.Post != nil {
			inspectStmt(fs.Post, f)
		}
	}
	for _, b := range StmtBlocks(s) {
		inspectBlock(b, f)
	}
}

// Blocks returns every block in the program (function bodies and all
// nested blocks), in pre-order.
func Blocks(p *Program) []*Block {
	var out []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if b == nil {
			return
		}
		out = append(out, b)
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *IfStmt:
				visit(st.Then)
				visit(st.Else)
			case *WhileStmt:
				visit(st.Body)
			case *ForStmt:
				visit(st.Body)
			case *AsyncStmt:
				visit(st.Body)
			case *FinishStmt:
				visit(st.Body)
			case *BlockStmt:
				visit(st.Body)
			}
		}
	}
	for _, fn := range p.Funcs {
		visit(fn.Body)
	}
	return out
}

// FindBlock returns the block with the given ID, or nil.
func FindBlock(p *Program, id int) *Block {
	for _, b := range Blocks(p) {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// StripFinishes removes every finish statement from the program, splicing
// each finish body in place of the statement. This is how the evaluation
// (paper §7.1) produces the "buggy" under-synchronized versions of the
// benchmarks. It returns the number of finishes removed.
func StripFinishes(p *Program) int {
	n := 0
	for _, fn := range p.Funcs {
		n += stripFinishesBlock(fn.Body)
	}
	return n
}

func stripFinishesBlock(b *Block) int {
	if b == nil {
		return 0
	}
	n := 0
	var out []Stmt
	for _, s := range b.Stmts {
		if fs, ok := s.(*FinishStmt); ok {
			n++
			n += stripFinishesBlock(fs.Body)
			out = append(out, fs.Body.Stmts...)
			continue
		}
		n += stripFinishesStmt(s)
		out = append(out, s)
	}
	b.Stmts = out
	return n
}

func stripFinishesStmt(s Stmt) int {
	switch st := s.(type) {
	case *IfStmt:
		return stripFinishesBlock(st.Then) + stripFinishesBlock(st.Else)
	case *WhileStmt:
		return stripFinishesBlock(st.Body)
	case *ForStmt:
		return stripFinishesBlock(st.Body)
	case *AsyncStmt:
		return stripFinishesBlock(st.Body)
	case *BlockStmt:
		return stripFinishesBlock(st.Body)
	}
	return 0
}

// CountStmts counts statements of the program, one per Stmt node.
func CountStmts(p *Program) int {
	n := 0
	Inspect(p, func(Stmt) { n++ })
	return n
}

// CountFinishes counts finish statements in the program.
func CountFinishes(p *Program) int {
	n := 0
	Inspect(p, func(s Stmt) {
		if _, ok := s.(*FinishStmt); ok {
			n++
		}
	})
	return n
}

// CountAsyncs counts async statements in the program.
func CountAsyncs(p *Program) int {
	n := 0
	Inspect(p, func(s Stmt) {
		if _, ok := s.(*AsyncStmt); ok {
			n++
		}
	})
	return n
}
