package printer_test

import (
	"strings"
	"testing"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/lang/token"
)

func TestGoldenProgram(t *testing.T) {
	src := `
var g = 1;
func f(a []int, x float) float {
    if (x < 0.5) { return x * 2.0; } else { return x; }
}
func main() {
    var a = make([]int, 3);
    a[0] = g;
    a[0] += 2;
    finish {
        async { a[1] = 5; }
    }
    for (var i = 0; i < 3; i = i + 1) {
        while (a[i] > 10) { a[i] = a[i] - 1; }
    }
    { println("done", f(a, 0.25)); }
}
`
	prog := parser.MustParse(src)
	out := printer.Print(prog)
	for _, want := range []string{
		"var g = 1;",
		"func f(a []int, x float) float {",
		"return x * 2.0;",
		"var a = make([]int, 3);",
		"a[0] += 2;",
		"finish {",
		"async {",
		"for (var i = 0; i < 3; i = i + 1) {",
		"while (a[i] > 10) {",
		`println("done", f(a, 0.25));`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
	// Round trip.
	if _, err := parser.Parse(out); err != nil {
		t.Fatalf("printed program unparsable: %v\n%s", err, out)
	}
}

// TestIsolatedGolden locks the printed form of isolated blocks in every
// position repair can produce them: at statement level, nested inside
// async and finish, empty, and isolated-in-isolated. Print → reparse →
// print must be a fixed point.
func TestIsolatedGolden(t *testing.T) {
	src := `
var g = 0;
func main() {
    isolated { g = g + 1; }
    finish {
        async {
            isolated {
                g = g * 2;
                isolated { g = g - 1; }
            }
        }
        isolated { }
    }
    println(g);
}
`
	prog := parser.MustParse(src)
	out := printer.Print(prog)
	for _, want := range []string{
		"isolated {\n        g = g + 1;",
		"isolated {\n                g = g * 2;",
		"isolated {\n                    g = g - 1;",
		"isolated {\n        }",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
	reparsed, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("printed program unparsable: %v\n%s", err, out)
	}
	if printer.Print(reparsed) != out {
		t.Errorf("isolated printing not a fixed point:\nfirst:\n%s\nsecond:\n%s", out, printer.Print(reparsed))
	}
}

func TestSynthesizedIsolatedMarker(t *testing.T) {
	prog := parser.MustParse("var g = 0;\nfunc main() { g = g + 1; }")
	main := prog.Func("main")
	iso := &ast.IsolatedStmt{
		Body:        prog.NewBlock(main.Body.LbPos, main.Body.Stmts),
		Synthesized: true,
	}
	main.Body.Stmts = []ast.Stmt{iso}
	out := printer.Print(prog)
	if !strings.Contains(out, "isolated { // inserted by repair tool") {
		t.Errorf("missing synthesized marker on isolated:\n%s", out)
	}
	if _, err := parser.Parse(out); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizedMarker(t *testing.T) {
	prog := parser.MustParse("func main() { println(1); }")
	main := prog.Func("main")
	fin := &ast.FinishStmt{
		Body:        prog.NewBlock(main.Body.LbPos, main.Body.Stmts),
		Synthesized: true,
	}
	main.Body.Stmts = []ast.Stmt{fin}
	out := printer.Print(prog)
	if !strings.Contains(out, "// inserted by repair tool") {
		t.Errorf("missing synthesized marker:\n%s", out)
	}
	// Marker is a comment: reparse drops it and still works.
	if _, err := parser.Parse(out); err != nil {
		t.Fatal(err)
	}
}

func TestFloatLiteralsKeepPoint(t *testing.T) {
	e := &ast.FloatLit{Value: 3}
	if got := printer.PrintExpr(e); got != "3.0" {
		t.Errorf("float 3 printed as %q, want 3.0 (must reparse as float)", got)
	}
	e2 := &ast.FloatLit{Value: 1e30}
	got := printer.PrintExpr(e2)
	prog := parser.MustParse("func main() { var x = " + got + "; println(x); }")
	info := prog.Func("main").Body.Stmts[0].(*ast.VarDeclStmt)
	if _, ok := info.Init.(*ast.FloatLit); !ok {
		t.Errorf("printed %q reparsed as %T, want FloatLit", got, info.Init)
	}
}

func TestStringEscapes(t *testing.T) {
	e := &ast.StringLit{Value: "a\"b\nc\\d"}
	out := printer.PrintExpr(e)
	prog := parser.MustParse(`func main() { println(` + out + `); }`)
	call := prog.Func("main").Body.Stmts[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	if got := call.Args[0].(*ast.StringLit).Value; got != e.Value {
		t.Errorf("escape round trip: %q != %q", got, e.Value)
	}
}

func TestPrintStmt(t *testing.T) {
	s := &ast.AssignStmt{
		LHS: &ast.Ident{Name: "x"},
		RHS: &ast.IntLit{Value: 4},
		Op:  token.ASSIGN,
	}
	if got := printer.PrintStmt(s); got != "x = 4;" {
		t.Errorf("PrintStmt = %q", got)
	}
}

func TestElseChainsPrint(t *testing.T) {
	src := `func main() { var x = 1; if (x == 0) { println(0); } else if (x == 1) { println(1); } else { println(2); } }`
	prog := parser.MustParse(src)
	out := printer.Print(prog)
	reparsed, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if printer.Print(reparsed) != out {
		t.Error("else-if chain not stable under print/parse")
	}
}
