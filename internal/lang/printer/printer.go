// Package printer regenerates HJ-lite source text from an AST.
//
// The repair tool uses it to emit the repaired program with the newly
// inserted finish statements; output re-parses to a structurally
// equivalent program.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"finishrepair/internal/lang/ast"
)

// Print renders the program as HJ-lite source text.
func Print(p *ast.Program) string {
	pr := &printer{}
	for i, g := range p.Globals {
		if i > 0 {
			pr.nl()
		}
		pr.stmt(g)
	}
	for i, fn := range p.Funcs {
		if i > 0 || len(p.Globals) > 0 {
			pr.nl()
		}
		pr.fn(fn)
	}
	return pr.sb.String()
}

// PrintStmt renders a single statement (for diagnostics).
func PrintStmt(s ast.Stmt) string {
	pr := &printer{}
	pr.stmt(s)
	return strings.TrimRight(pr.sb.String(), "\n")
}

// PrintExpr renders a single expression.
func PrintExpr(e ast.Expr) string {
	pr := &printer{}
	pr.expr(e, 0)
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) nl() { p.sb.WriteByte('\n') }

func (p *printer) line(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("    ", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) fn(fn *ast.FuncDecl) {
	var params []string
	for _, prm := range fn.Params {
		params = append(params, prm.Name+" "+prm.Type.String())
	}
	ret := ""
	if fn.Ret != nil {
		ret = " " + fn.Ret.String()
	}
	p.line("func %s(%s)%s {", fn.Name, strings.Join(params, ", "), ret)
	p.indent++
	p.blockBody(fn.Body)
	p.indent--
	p.line("}")
}

func (p *printer) blockBody(b *ast.Block) {
	for _, s := range b.Stmts {
		p.stmt(s)
	}
}

func (p *printer) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.VarDeclStmt:
		ty := ""
		if st.Type != nil {
			ty = " " + st.Type.String()
		}
		if st.Init != nil {
			p.line("var %s%s = %s;", st.Name, ty, p.exprStr(st.Init))
		} else {
			p.line("var %s%s;", st.Name, ty)
		}
	case *ast.AssignStmt:
		p.line("%s %s %s;", p.exprStr(st.LHS), st.Op.String(), p.exprStr(st.RHS))
	case *ast.ExprStmt:
		p.line("%s;", p.exprStr(st.X))
	case *ast.ReturnStmt:
		if st.Value != nil {
			p.line("return %s;", p.exprStr(st.Value))
		} else {
			p.line("return;")
		}
	case *ast.IfStmt:
		p.line("if (%s) {", p.exprStr(st.Cond))
		p.indent++
		p.blockBody(st.Then)
		p.indent--
		if st.Else != nil {
			p.line("} else {")
			p.indent++
			p.blockBody(st.Else)
			p.indent--
		}
		p.line("}")
	case *ast.WhileStmt:
		p.line("while (%s) {", p.exprStr(st.Cond))
		p.indent++
		p.blockBody(st.Body)
		p.indent--
		p.line("}")
	case *ast.ForStmt:
		init, cond, post := "", "", ""
		if st.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(PrintStmt(st.Init)), ";")
		}
		if st.Cond != nil {
			cond = p.exprStr(st.Cond)
		}
		if st.Post != nil {
			post = strings.TrimSuffix(strings.TrimSpace(PrintStmt(st.Post)), ";")
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		p.blockBody(st.Body)
		p.indent--
		p.line("}")
	case *ast.AsyncStmt:
		p.line("async {")
		p.indent++
		p.blockBody(st.Body)
		p.indent--
		p.line("}")
	case *ast.FinishStmt:
		mark := ""
		if st.Synthesized {
			mark = " // inserted by repair tool"
		}
		p.line("finish {%s", mark)
		p.indent++
		p.blockBody(st.Body)
		p.indent--
		p.line("}")
	case *ast.IsolatedStmt:
		mark := ""
		if st.Synthesized {
			mark = " // inserted by repair tool"
		}
		p.line("isolated {%s", mark)
		p.indent++
		p.blockBody(st.Body)
		p.indent--
		p.line("}")
	case *ast.BlockStmt:
		p.line("{")
		p.indent++
		p.blockBody(st.Body)
		p.indent--
		p.line("}")
	default:
		p.line("/* unknown statement %T */", s)
	}
}

func (p *printer) exprStr(e ast.Expr) string {
	sub := &printer{}
	sub.expr(e, 0)
	return sub.sb.String()
}

// expr renders e, parenthesizing when its precedence is below outerPrec.
func (p *printer) expr(e ast.Expr, outerPrec int) {
	switch ex := e.(type) {
	case *ast.Ident:
		p.sb.WriteString(ex.Name)
	case *ast.IntLit:
		p.sb.WriteString(strconv.FormatInt(ex.Value, 10))
	case *ast.FloatLit:
		s := strconv.FormatFloat(ex.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		p.sb.WriteString(s)
	case *ast.BoolLit:
		p.sb.WriteString(strconv.FormatBool(ex.Value))
	case *ast.StringLit:
		p.sb.WriteString(strconv.Quote(ex.Value))
	case *ast.BinaryExpr:
		prec := ex.Op.Precedence()
		if prec < outerPrec {
			p.sb.WriteByte('(')
		}
		p.expr(ex.X, prec)
		p.sb.WriteByte(' ')
		p.sb.WriteString(ex.Op.String())
		p.sb.WriteByte(' ')
		p.expr(ex.Y, prec+1)
		if prec < outerPrec {
			p.sb.WriteByte(')')
		}
	case *ast.UnaryExpr:
		p.sb.WriteString(ex.Op.String())
		p.expr(ex.X, 6) // higher than any binary precedence
	case *ast.CallExpr:
		p.sb.WriteString(ex.Fun)
		p.sb.WriteByte('(')
		for i, a := range ex.Args {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.sb.WriteByte(')')
	case *ast.IndexExpr:
		p.expr(ex.X, 6)
		p.sb.WriteByte('[')
		p.expr(ex.Index, 0)
		p.sb.WriteByte(']')
	case *ast.MakeExpr:
		fmt.Fprintf(&p.sb, "make(%s, ", (&ast.ArrayType{Elem: ex.Elem}).String())
		p.expr(ex.Len, 0)
		p.sb.WriteByte(')')
	default:
		fmt.Fprintf(&p.sb, "/* unknown expr %T */", e)
	}
}
