// Package token defines the lexical tokens of HJ-lite, the structured
// parallel language used by the test-driven repair tool, together with
// source positions.
//
// HJ-lite is the async/finish fragment of Habanero-Java used in the paper
// "Test-Driven Repair of Data Races in Structured Parallel Programs"
// (PLDI 2014), with a small C-like sequential core sufficient to express
// the paper's twelve benchmarks.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The list of token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // mergesort
	INT    // 12345
	FLOAT  // 3.25
	STRING // "checksum"

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND // &
	OR  // |
	XOR // ^
	SHL // <<
	SHR // >>

	LAND // &&
	LOR  // ||
	NOT  // !

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	ASSIGN    // =
	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	QUOASSIGN // /=

	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	LBRACK // [
	RBRACK // ]
	COMMA  // ,
	SEMI   // ;

	// Keywords.
	KwAsync
	KwFinish
	KwIsolated
	KwFunc
	KwVar
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwTrue
	KwFalse
	KwInt
	KwFloat
	KwBool
	KwStringTy
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT", STRING: "STRING",
	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	AND: "&", OR: "|", XOR: "^", SHL: "<<", SHR: ">>",
	LAND: "&&", LOR: "||", NOT: "!",
	EQL: "==", NEQ: "!=", LSS: "<", LEQ: "<=", GTR: ">", GEQ: ">=",
	ASSIGN: "=", ADDASSIGN: "+=", SUBASSIGN: "-=", MULASSIGN: "*=", QUOASSIGN: "/=",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", COMMA: ",", SEMI: ";",
	KwAsync: "async", KwFinish: "finish", KwIsolated: "isolated",
	KwFunc: "func", KwVar: "var",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwReturn: "return", KwTrue: "true", KwFalse: "false",
	KwInt: "int", KwFloat: "float", KwBool: "bool", KwStringTy: "string",
}

// String returns the textual form of the token kind ("+" for ADD, etc).
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"async": KwAsync, "finish": KwFinish, "isolated": KwIsolated,
	"func": KwFunc, "var": KwVar,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"return": KwReturn, "true": KwTrue, "false": KwFalse,
	"int": KwInt, "float": KwFloat, "bool": KwBool, "string": KwStringTy,
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexical token with its kind, literal text, and position.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, FLOAT, STRING
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQL, NEQ, LSS, LEQ, GTR, GEQ:
		return 3
	case ADD, SUB, OR, XOR:
		return 4
	case MUL, QUO, REM, SHL, SHR, AND:
		return 5
	}
	return 0
}
