package token_test

import (
	"testing"

	"finishrepair/internal/lang/token"
)

func TestPrecedenceTable(t *testing.T) {
	cases := map[token.Kind]int{
		token.LOR: 1, token.LAND: 2,
		token.EQL: 3, token.NEQ: 3, token.LSS: 3, token.LEQ: 3, token.GTR: 3, token.GEQ: 3,
		token.ADD: 4, token.SUB: 4, token.OR: 4, token.XOR: 4,
		token.MUL: 5, token.QUO: 5, token.REM: 5, token.SHL: 5, token.SHR: 5, token.AND: 5,
		token.ASSIGN: 0, token.IDENT: 0, token.NOT: 0,
	}
	for k, want := range cases {
		if got := k.Precedence(); got != want {
			t.Errorf("Precedence(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if token.ADD.String() != "+" || token.KwAsync.String() != "async" || token.EOF.String() != "EOF" {
		t.Error("Kind.String mismatches")
	}
	if s := token.Kind(9999).String(); s == "" {
		t.Error("unknown kind must still render")
	}
}

func TestTokenString(t *testing.T) {
	tok := token.Token{Kind: token.IDENT, Lit: "foo", Pos: token.Pos{Line: 3, Col: 7}}
	if tok.String() != `IDENT("foo")` {
		t.Errorf("Token.String = %q", tok.String())
	}
	if tok.Pos.String() != "3:7" {
		t.Errorf("Pos.String = %q", tok.Pos.String())
	}
	if !tok.Pos.IsValid() || (token.Pos{}).IsValid() {
		t.Error("IsValid wrong")
	}
}

func TestKeywordsComplete(t *testing.T) {
	for _, kw := range []string{"async", "finish", "func", "var", "if", "else",
		"while", "for", "return", "true", "false", "int", "float", "bool", "string"} {
		if _, ok := token.Keywords[kw]; !ok {
			t.Errorf("keyword %q missing", kw)
		}
	}
}
