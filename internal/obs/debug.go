package obs

import (
	"context"
	"errors"
	"expvar"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugHandler returns an http.Handler exposing the standard debug
// surface:
//
//	/debug/vars     expvar JSON (includes the obs_metrics registry)
//	/debug/metrics  the default registry as aligned text
//	/debug/prom     the default registry in Prometheus text exposition
//	/debug/pprof/*  net/http/pprof profiles
func DebugHandler() http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, Default().Snapshot())
	})
	mux.HandleFunc("/debug/prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		WritePrometheus(w, Default().Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug HTTP server on addr (e.g. "localhost:6060")
// in a background goroutine and returns the bound listener address and
// the server for shutdown. Pass addr with port 0 to pick a free port.
// Serve errors other than http.ErrServerClosed are logged rather than
// dropped.
func ServeDebug(addr string) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugHandler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("obs: debug server on %s: %v", ln.Addr(), err)
		}
	}()
	return ln.Addr().String(), srv, nil
}

// ShutdownDebug gracefully stops a server started by ServeDebug, waiting
// up to timeout for in-flight requests (a scrape mid-read, a pprof
// profile being written) before forcing the close.
func ShutdownDebug(srv *http.Server, timeout time.Duration) error {
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return err
	}
	return nil
}
