package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns an http.Handler exposing the standard debug
// surface:
//
//	/debug/vars     expvar JSON (includes the obs_metrics registry)
//	/debug/metrics  the default registry as aligned text
//	/debug/pprof/*  net/http/pprof profiles
func DebugHandler() http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteText(w, Default().Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug HTTP server on addr (e.g. "localhost:6060")
// in a background goroutine and returns the bound listener address and
// the server for shutdown. Pass addr with port 0 to pick a free port.
func ServeDebug(addr string) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugHandler()}
	go srv.Serve(ln)
	return ln.Addr().String(), srv, nil
}
