package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// timeSample is the JSONL wire form of one sampler tick: the elapsed
// time since the sampler started plus the full registry snapshot at
// that instant. The "sample" type tag keeps the lines distinguishable
// from the "span"/"metric" events of WriteJSONL so one file can carry
// both a trace and a time series.
type timeSample struct {
	Type      string   `json:"type"` // "sample"
	ElapsedMS float64  `json:"elapsed_ms"`
	Metrics   []Sample `json:"metrics"`
}

// Sampler periodically appends registry snapshots to a writer as JSON
// Lines, giving long benchmark and server runs a local time series to
// plot (and the nightly bench CI something to archive) without a real
// Prometheus scraping /debug/prom.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	start    time.Time

	mu  sync.Mutex // serializes ticks with the final Stop flush
	bw  *bufio.Writer
	enc *json.Encoder
	err error

	stop chan struct{}
	done chan struct{}
}

// StartSampler begins sampling reg (nil = the default registry) every
// interval, writing one JSONL line per tick to w. Intervals below 10ms
// are clamped to 10ms. Call Stop to flush a final sample and halt.
func StartSampler(w io.Writer, interval time.Duration, reg *Registry) *Sampler {
	if reg == nil {
		reg = Default()
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	bw := bufio.NewWriter(w)
	s := &Sampler{
		reg:      reg,
		interval: interval,
		start:    time.Now(),
		bw:       bw,
		enc:      json.NewEncoder(bw),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *Sampler) run() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sample()
		}
	}
}

// sample writes one snapshot line.
func (s *Sampler) sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	ts := timeSample{
		Type:      "sample",
		ElapsedMS: float64(time.Since(s.start).Microseconds()) / 1e3,
		Metrics:   s.reg.Snapshot(),
	}
	if err := s.enc.Encode(ts); err != nil {
		s.err = err
		return
	}
	s.err = s.bw.Flush()
}

// Stop halts the sampler, writes one final sample (so short runs always
// produce at least one line), and returns the first write error seen.
// Safe to call once.
func (s *Sampler) Stop() error {
	close(s.stop)
	<-s.done
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadSamples parses a JSONL stream written by a Sampler, returning the
// (elapsed-ms, snapshot) series. Lines of other types ("span",
// "metric") are skipped, so a combined trace+series file reads fine.
func ReadSamples(r io.Reader) (elapsedMS []float64, series [][]Sample, err error) {
	dec := json.NewDecoder(r)
	for dec.More() {
		var ts timeSample
		if err := dec.Decode(&ts); err != nil {
			return nil, nil, err
		}
		if ts.Type != "sample" {
			continue
		}
		elapsedMS = append(elapsedMS, ts.ElapsedMS)
		series = append(series, ts.Metrics)
	}
	return elapsedMS, series, nil
}
