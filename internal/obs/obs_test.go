package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"
)

// buildTree opens a deterministic random span tree on tr and returns the
// number of spans created.
func buildTree(tr *Tracer, rng *rand.Rand, parent *Span, depth, maxDepth int) int {
	n := 0
	kids := 1 + rng.Intn(3)
	for i := 0; i < kids; i++ {
		var sp *Span
		name := fmt.Sprintf("phase-%d-%d", depth, i)
		if parent == nil {
			sp = tr.Start(name)
		} else {
			sp = parent.Child(name)
		}
		sp.SetInt("depth", int64(depth)).SetStr("kind", "test")
		n++
		if depth < maxDepth && rng.Intn(2) == 0 {
			n += buildTree(tr, rng, sp, depth+1, maxDepth)
		}
		sp.End()
	}
	return n
}

func TestSpanNestingWellFormed(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		tr := New(WithoutAllocs())
		rng := rand.New(rand.NewSource(seed))
		want := buildTree(tr, rng, nil, 0, 4)
		if got := tr.OpenSpans(); got != 0 {
			t.Fatalf("seed %d: %d spans left open", seed, got)
		}
		recs := tr.Records()
		if len(recs) != want {
			t.Fatalf("seed %d: %d records, want %d", seed, len(recs), want)
		}
		if err := ValidateNesting(recs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestValidateNestingRejectsMalformed(t *testing.T) {
	overlap := []SpanRecord{
		{ID: 1, Name: "a", Start: 0, Dur: 10 * time.Millisecond},
		{ID: 2, Name: "b", Start: 5 * time.Millisecond, Dur: 10 * time.Millisecond},
	}
	if err := ValidateNesting(overlap); err == nil {
		t.Error("overlapping siblings accepted")
	}
	escape := []SpanRecord{
		{ID: 1, Name: "p", Start: 0, Dur: 5 * time.Millisecond},
		{ID: 2, Parent: 1, Name: "c", Start: 1 * time.Millisecond, Dur: 10 * time.Millisecond},
	}
	if err := ValidateNesting(escape); err == nil {
		t.Error("child escaping parent accepted")
	}
	orphan := []SpanRecord{{ID: 2, Parent: 99, Name: "c", Start: 0, Dur: time.Millisecond}}
	if err := ValidateNesting(orphan); err == nil {
		t.Error("orphan parent accepted")
	}
}

// roundTripTracer builds a small fixed trace plus metrics for the
// exporter tests.
func roundTripTracer(t *testing.T) (*Tracer, []Sample) {
	t.Helper()
	tr := New()
	root := tr.Start("repair").SetInt("iterations", 2)
	det := root.Child("detect").SetInt("races", 5).SetStr("variant", "MRW")
	time.Sleep(time.Millisecond)
	det.End()
	place := root.Child("dp-place").SetInt("dp_states", 123)
	place.End()
	root.End()

	reg := NewRegistry()
	reg.Counter("repair.races").Add(5)
	reg.Gauge("race.sdpst_nodes").Set(42)
	reg.Histogram("repair.graph_size").Observe(7)
	return tr, reg.Snapshot()
}

func TestJSONLRoundTrip(t *testing.T) {
	tr, samples := roundTripTracer(t)
	recs := tr.Records()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs, samples); err != nil {
		t.Fatal(err)
	}
	gotRecs, gotSamples, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("%d spans round-tripped, want %d", len(gotRecs), len(recs))
	}
	for i, r := range recs {
		g := gotRecs[i]
		if g.Name != r.Name || g.ID != r.ID || g.Parent != r.Parent {
			t.Errorf("span %d: got %+v, want %+v", i, g, r)
		}
		if len(g.Attrs) != len(r.Attrs) {
			t.Errorf("span %d: %d attrs, want %d", i, len(g.Attrs), len(r.Attrs))
		}
		// Timestamps survive at microsecond precision.
		if d := g.Start - r.Start; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("span %d: start drifted %v", i, d)
		}
	}
	if len(gotSamples) != len(samples) {
		t.Fatalf("%d samples round-tripped, want %d", len(gotSamples), len(samples))
	}
	for i, s := range samples {
		if gotSamples[i] != s {
			t.Errorf("sample %d: got %+v, want %+v", i, gotSamples[i], s)
		}
	}
	if err := ValidateNesting(gotRecs); err != nil {
		t.Errorf("re-parsed spans malformed: %v", err)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr, samples := roundTripTracer(t)
	recs := tr.Records()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs, samples); err != nil {
		t.Fatal(err)
	}
	gotRecs, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("%d X events, want %d", len(gotRecs), len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range gotRecs {
		byName[r.Name] = r
	}
	for _, want := range []string{"repair", "detect", "dp-place"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("phase %q missing from chrome trace", want)
		}
	}
	det := byName["detect"]
	attrs := map[string]any{}
	for _, a := range det.Attrs {
		attrs[a.Key] = a.Value()
	}
	if attrs["races"] != int64(5) || attrs["variant"] != "MRW" {
		t.Errorf("detect attrs did not round-trip: %v", attrs)
	}
	if det.Dur < time.Millisecond {
		t.Errorf("detect duration %v lost", det.Dur)
	}
}

func TestDeltaAndText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(10)
	before := reg.Snapshot()
	reg.Counter("a").Add(7)
	reg.Gauge("g").Set(3)
	d := reg.Delta(before)
	got := map[string]int64{}
	for _, s := range d {
		got[s.Name] = s.Value
	}
	if got["a"] != 7 || got["g"] != 3 {
		t.Errorf("delta = %v, want a=7 g=3", got)
	}
	var buf strings.Builder
	if err := WriteText(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a  7") {
		t.Errorf("text output %q missing counter", buf.String())
	}
}

func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("detect").SetInt("races", 3).SetStr("variant", "MRW")
		child := sp.Child("dp-place")
		child.Rename("verify").End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer: %v allocs/op, want 0", allocs)
	}
	if tr.Records() != nil || tr.OpenSpans() != 0 || tr.Enabled() {
		t.Error("nil tracer leaked state")
	}
}

func TestDebugEndpoint(t *testing.T) {
	Default().Counter("test.debug_endpoint").Inc()
	addr, srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/vars", "/debug/metrics", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if path == "/debug/metrics" && !strings.Contains(body.String(), "test.debug_endpoint") {
			t.Errorf("/debug/metrics missing registered counter:\n%s", body.String())
		}
		if path == "/debug/vars" && !strings.Contains(body.String(), "obs_metrics") {
			t.Errorf("/debug/vars missing obs_metrics key")
		}
	}
}

func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("detect").SetInt("races", int64(i))
		sp.Child("dp-place").End()
		sp.End()
	}
}

func BenchmarkTracerEnabled(b *testing.B) {
	tr := New(WithoutAllocs())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("detect").SetInt("races", int64(i))
		sp.Child("dp-place").End()
		sp.End()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := Default().Counter("bench.counter")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
