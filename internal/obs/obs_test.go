package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// buildTree opens a deterministic random span tree on tr and returns the
// number of spans created.
func buildTree(tr *Tracer, rng *rand.Rand, parent *Span, depth, maxDepth int) int {
	n := 0
	kids := 1 + rng.Intn(3)
	for i := 0; i < kids; i++ {
		var sp *Span
		name := fmt.Sprintf("phase-%d-%d", depth, i)
		if parent == nil {
			sp = tr.Start(name)
		} else {
			sp = parent.Child(name)
		}
		sp.SetInt("depth", int64(depth)).SetStr("kind", "test")
		n++
		if depth < maxDepth && rng.Intn(2) == 0 {
			n += buildTree(tr, rng, sp, depth+1, maxDepth)
		}
		sp.End()
	}
	return n
}

func TestSpanNestingWellFormed(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		tr := New(WithoutAllocs())
		rng := rand.New(rand.NewSource(seed))
		want := buildTree(tr, rng, nil, 0, 4)
		if got := tr.OpenSpans(); got != 0 {
			t.Fatalf("seed %d: %d spans left open", seed, got)
		}
		recs := tr.Records()
		if len(recs) != want {
			t.Fatalf("seed %d: %d records, want %d", seed, len(recs), want)
		}
		if err := ValidateNesting(recs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestValidateNestingRejectsMalformed(t *testing.T) {
	overlap := []SpanRecord{
		{ID: 1, Name: "a", Start: 0, Dur: 10 * time.Millisecond},
		{ID: 2, Name: "b", Start: 5 * time.Millisecond, Dur: 10 * time.Millisecond},
	}
	if err := ValidateNesting(overlap); err == nil {
		t.Error("overlapping siblings accepted")
	}
	escape := []SpanRecord{
		{ID: 1, Name: "p", Start: 0, Dur: 5 * time.Millisecond},
		{ID: 2, Parent: 1, Name: "c", Start: 1 * time.Millisecond, Dur: 10 * time.Millisecond},
	}
	if err := ValidateNesting(escape); err == nil {
		t.Error("child escaping parent accepted")
	}
	orphan := []SpanRecord{{ID: 2, Parent: 99, Name: "c", Start: 0, Dur: time.Millisecond}}
	if err := ValidateNesting(orphan); err == nil {
		t.Error("orphan parent accepted")
	}
}

// roundTripTracer builds a small fixed trace plus metrics for the
// exporter tests.
func roundTripTracer(t *testing.T) (*Tracer, []Sample) {
	t.Helper()
	tr := New()
	root := tr.Start("repair").SetInt("iterations", 2)
	det := root.Child("detect").SetInt("races", 5).SetStr("variant", "MRW")
	time.Sleep(time.Millisecond)
	det.End()
	place := root.Child("dp-place").SetInt("dp_states", 123)
	place.End()
	root.End()

	reg := NewRegistry()
	reg.Counter("repair.races").Add(5)
	reg.Gauge("race.sdpst_nodes").Set(42)
	reg.Histogram("repair.graph_size").Observe(7)
	return tr, reg.Snapshot()
}

func TestJSONLRoundTrip(t *testing.T) {
	tr, samples := roundTripTracer(t)
	recs := tr.Records()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs, samples); err != nil {
		t.Fatal(err)
	}
	gotRecs, gotSamples, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("%d spans round-tripped, want %d", len(gotRecs), len(recs))
	}
	for i, r := range recs {
		g := gotRecs[i]
		if g.Name != r.Name || g.ID != r.ID || g.Parent != r.Parent {
			t.Errorf("span %d: got %+v, want %+v", i, g, r)
		}
		if len(g.Attrs) != len(r.Attrs) {
			t.Errorf("span %d: %d attrs, want %d", i, len(g.Attrs), len(r.Attrs))
		}
		// Timestamps survive at microsecond precision.
		if d := g.Start - r.Start; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("span %d: start drifted %v", i, d)
		}
	}
	if len(gotSamples) != len(samples) {
		t.Fatalf("%d samples round-tripped, want %d", len(gotSamples), len(samples))
	}
	for i, s := range samples {
		if !reflect.DeepEqual(gotSamples[i], s) {
			t.Errorf("sample %d: got %+v, want %+v", i, gotSamples[i], s)
		}
	}
	if err := ValidateNesting(gotRecs); err != nil {
		t.Errorf("re-parsed spans malformed: %v", err)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr, samples := roundTripTracer(t)
	recs := tr.Records()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs, samples); err != nil {
		t.Fatal(err)
	}
	gotRecs, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("%d X events, want %d", len(gotRecs), len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range gotRecs {
		byName[r.Name] = r
	}
	for _, want := range []string{"repair", "detect", "dp-place"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("phase %q missing from chrome trace", want)
		}
	}
	det := byName["detect"]
	attrs := map[string]any{}
	for _, a := range det.Attrs {
		attrs[a.Key] = a.Value()
	}
	if attrs["races"] != int64(5) || attrs["variant"] != "MRW" {
		t.Errorf("detect attrs did not round-trip: %v", attrs)
	}
	if det.Dur < time.Millisecond {
		t.Errorf("detect duration %v lost", det.Dur)
	}
}

func TestDeltaAndText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(10)
	before := reg.Snapshot()
	reg.Counter("a").Add(7)
	reg.Gauge("g").Set(3)
	d := reg.Delta(before)
	got := map[string]int64{}
	for _, s := range d {
		got[s.Name] = s.Value
	}
	if got["a"] != 7 || got["g"] != 3 {
		t.Errorf("delta = %v, want a=7 g=3", got)
	}
	var buf strings.Builder
	if err := WriteText(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a  7") {
		t.Errorf("text output %q missing counter", buf.String())
	}
}

func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	h := Default().Histogram("test.zero_alloc_ns")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("detect").SetInt("races", 3).SetStr("variant", "MRW")
		child := sp.Child("dp-place")
		child.Rename("verify").End()
		sp.End()
		h.Observe(17)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer + histogram: %v allocs/op, want 0", allocs)
	}
	if tr.Records() != nil || tr.OpenSpans() != 0 || tr.Enabled() {
		t.Error("nil tracer leaked state")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Buckets() != nil {
		t.Error("empty histogram should report zero quantiles and nil buckets")
	}
	// Uniform 1..1000: quantile estimates should land within one power-of
	// -two bucket of the exact rank.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 500}, {0.95, 950}, {0.99, 990}, {1, 1000},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%.2f = %.1f, want within a bucket of %.0f", tc.q, got, tc.want)
		}
	}
	// Quantiles must be monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone: q%.2f=%.1f < %.1f", q, cur, prev)
		}
		prev = cur
	}
	// All mass in one value: every quantile is exact.
	var h2 Histogram
	for i := 0; i < 10; i++ {
		h2.Observe(64)
	}
	if got := h2.Quantile(0.99); got < 64 || got > 127 {
		t.Errorf("single-bucket q99 = %.1f, want in [64,127]", got)
	}
	if got := h2.Mean(); got != 64 {
		t.Errorf("mean = %v, want 64", got)
	}
}

func TestSnapshotHistogramSample(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test.lat_ns")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("%d samples, want 1", len(snap))
	}
	s := snap[0]
	if s.Kind != "histogram" || s.Count != 100 || s.Value != 5050 {
		t.Fatalf("sample = %+v", s)
	}
	if len(s.Buckets) == 0 || s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 {
		t.Errorf("quantiles not filled or not ordered: %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
}

func TestDeltaHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test.lat_ns")
	for i := 0; i < 50; i++ {
		h.Observe(1000) // slow before-phase
	}
	before := reg.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(2) // fast after-phase
	}
	d := reg.Delta(before)
	if len(d) != 1 {
		t.Fatalf("%d delta samples, want 1", len(d))
	}
	s := d[0]
	if s.Count != 50 || s.Value != 100 {
		t.Fatalf("delta sample = %+v, want count=50 sum=100", s)
	}
	// The interval quantiles must describe only the fast phase.
	if s.P99 > 3 {
		t.Errorf("interval p99 = %v includes pre-interval observations", s.P99)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repair.iterations").Add(3)
	reg.Gauge("race.sdpst_nodes").Set(42)
	h := reg.Histogram("repair.stage_detect_ns")
	h.Observe(0)
	h.Observe(5)
	h.Observe(100)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE repair_iterations counter",
		"repair_iterations 3",
		"# TYPE race_sdpst_nodes gauge",
		"race_sdpst_nodes 42",
		"# TYPE repair_stage_detect_ns histogram",
		`repair_stage_detect_ns_bucket{le="0"} 1`,
		`repair_stage_detect_ns_bucket{le="7"} 2`,
		`repair_stage_detect_ns_bucket{le="127"} 3`,
		`repair_stage_detect_ns_bucket{le="+Inf"} 3`,
		"repair_stage_detect_ns_sum 105",
		"repair_stage_detect_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	lastCum := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "repair_stage_detect_ns_bucket") {
			continue
		}
		var cum int64
		fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &cum)
		if cum < lastCum {
			t.Errorf("bucket counts decrease at %q", line)
		}
		lastCum = cum
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"repair.dp_states": "repair_dp_states",
		"vet.diag.static":  "vet_diag_static",
		"9lives":           "_9lives",
		"ok_name:with":     "ok_name:with",
		"spaced out":       "spaced_out",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSampler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.ticks").Add(1)
	var buf bytes.Buffer
	s := StartSampler(&buf, 10*time.Millisecond, reg)
	time.Sleep(35 * time.Millisecond)
	reg.Counter("test.ticks").Add(1)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	elapsed, series, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 2 {
		t.Fatalf("%d samples, want >= 2 (ticks plus final flush)", len(series))
	}
	for i := 1; i < len(elapsed); i++ {
		if elapsed[i] < elapsed[i-1] {
			t.Errorf("elapsed not monotone at %d: %v", i, elapsed)
		}
	}
	last := series[len(series)-1]
	if len(last) != 1 || last[0].Name != "test.ticks" || last[0].Value != 2 {
		t.Errorf("final sample = %+v, want test.ticks=2", last)
	}
}

func TestMetricNameConvention(t *testing.T) {
	for name := range KnownMetrics {
		if !MetricNameRE.MatchString(name) {
			t.Errorf("manifest name %q violates convention %s", name, MetricNameRE)
		}
	}
	for _, bad := range []string{"vet.diag.static-race", "Repair.iterations", "repair", "repair..x"} {
		if MetricNameRE.MatchString(bad) {
			t.Errorf("convention accepted %q", bad)
		}
	}
}

func TestDebugEndpoint(t *testing.T) {
	Default().Counter("test.debug_endpoint").Inc()
	Default().Histogram("test.debug_endpoint_ns").Observe(250)
	addr, srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	wantType := map[string]string{
		"/debug/vars":    "application/json",
		"/debug/metrics": "text/plain; charset=utf-8",
		"/debug/prom":    PromContentType,
		"/debug/pprof/":  "text/html",
	}
	for _, path := range []string{"/debug/vars", "/debug/metrics", "/debug/prom", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantType[path]) {
			t.Errorf("GET %s: content type %q, want prefix %q", path, ct, wantType[path])
		}
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if path == "/debug/metrics" && !strings.Contains(body.String(), "test.debug_endpoint") {
			t.Errorf("/debug/metrics missing registered counter:\n%s", body.String())
		}
		if path == "/debug/vars" && !strings.Contains(body.String(), "obs_metrics") {
			t.Errorf("/debug/vars missing obs_metrics key")
		}
		if path == "/debug/prom" {
			out := body.String()
			if !strings.Contains(out, "test_debug_endpoint 1") {
				t.Errorf("/debug/prom missing counter:\n%s", out)
			}
			if !strings.Contains(out, `test_debug_endpoint_ns_bucket{le="255"} 1`) ||
				!strings.Contains(out, `test_debug_endpoint_ns_bucket{le="+Inf"} 1`) {
				t.Errorf("/debug/prom missing histogram buckets:\n%s", out)
			}
		}
	}
	if err := ShutdownDebug(srv, time.Second); err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Error("server still serving after ShutdownDebug")
	}
}

func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("detect").SetInt("races", int64(i))
		sp.Child("dp-place").End()
		sp.End()
	}
}

func BenchmarkTracerEnabled(b *testing.B) {
	tr := New(WithoutAllocs())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("detect").SetInt("races", int64(i))
		sp.Child("dp-place").End()
		sp.End()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := Default().Counter("test.bench_counter")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
