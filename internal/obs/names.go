package obs

import "regexp"

// MetricNameRE is the naming convention every registered metric must
// follow: a lowercase package/domain prefix, then one or more
// dot-separated noun_verb segments ("repair.finishes_inserted",
// "race.stage_detect_ns"). Dashes and uppercase are rejected.
var MetricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9_]*)+$`)

// KnownMetrics is the manifest of every metric the instrumented packages
// register, mapped to its kind. The names audit test asserts that the
// default registry's contents stay a subset of this table (ignoring the
// "test." prefix reserved for tests), so adding a metric means adding a
// row here — which keeps README's metric table honest and catches
// name drift at test time.
var KnownMetrics = map[string]string{
	// taskpar: the Habanero-Java-style async/finish runtime.
	"taskpar.asyncs":       "counter",
	"taskpar.finish_waits": "counter",
	"taskpar.yields":       "counter",

	// sched: the work-stealing scheduler.
	"sched.spawns":         "counter",
	"sched.global_submits": "counter",
	"sched.steals":         "counter",

	// race: dynamic detection (ESP-bags / vector clocks over the trace IR).
	"race.detect_runs":    "counter",
	"race.races_found":    "counter",
	"race.races_per_run":  "histogram",
	"race.sdpst_nodes":    "gauge",
	"race.trace_captures": "counter",
	"race.analyze_ns":     "histogram",
	"race.shadow_cells":   "histogram",
	"race.analyze_shards": "gauge",
	"race.stream_chunks":  "counter",
	"race.dual_queries":   "counter",

	// repair: the test-driven finish-placement loop.
	"repair.iterations":           "counter",
	"repair.races_detected":       "counter",
	"repair.finishes_inserted":    "counter",
	"repair.degraded_placements":  "counter",
	"repair.trace_replays":        "counter",
	"repair.groups_pruned_serial": "counter",
	"repair.dp_states":            "counter",
	"repair.dp_states_per_group":  "histogram",
	"repair.fallback_placements":  "counter",
	"repair.graph_size":           "histogram",
	"repair.stage_detect_ns":      "histogram",
	"repair.stage_place_ns":       "histogram",
	"repair.stage_rewrite_ns":     "histogram",
	"repair.strategy_chosen":      "counter",
	"repair.cpl_delta":            "histogram",
	"repair.lock_classes":         "counter",

	// analysis/commute: static commutativity recognition and the
	// semantic order probe backing every "commutes" verdict.
	"analysis.commute_verdicts":  "counter",
	"analysis.commute_confirmed": "counter",
	"analysis.commute_refuted":   "counter",

	// fault: injection (faults) and containment (guard) — one domain
	// prefix shared by both packages.
	"fault.injected":         "counter",
	"fault.budget_trips":     "counter",
	"fault.cancellations":    "counter",
	"fault.recovered_panics": "counter",

	// adversary: controlled-schedule replay (witness search, gap search,
	// post-repair adversarial verification).
	"adversary.schedules_run":      "counter",
	"adversary.witnesses_found":    "counter",
	"adversary.yields":             "counter",
	"adversary.gap_searches":       "counter",
	"adversary.witness_ns":         "histogram",
	"adversary.verify_schedule_ns": "histogram",

	// vet: static analysis diagnostics (hjvet / hjrepair -vet).
	"vet.runs":                     "counter",
	"vet.candidates":               "counter",
	"vet.mhp_pairs":                "counter",
	"vet.diagnostics":              "counter",
	"vet.diag.static_race":         "counter",
	"vet.diag.redundant_finish":    "counter",
	"vet.diag.unscoped_async_loop": "counter",
	"vet.diag.write_after_async":   "counter",
	"vet.diag.redundant_isolated":  "counter",
	"vet.diag.reducible_race":      "counter",
	"vet.diag.dead_stmt":           "counter",
}
