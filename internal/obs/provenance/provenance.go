// Package provenance defines the structured "why did this finish land
// here" record the repair loop emits. It is a pure data package — no
// imports of dpst/race/repair — so any layer (the repair engine, tdr,
// the CLIs, cmd/hjreport) can produce or consume explain files without
// import cycles.
//
// One Explain document covers one hjrepair run: per repair iteration it
// records the detected race pairs, their NS-LCA groups, and for each
// group the DP placement decision (candidate vertices considered, the
// chosen finish range, DP states explored, fallback or not), plus the
// critical-path metrics before the first repair and after the last.
package provenance

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// CPL is a critical-path snapshot of the program's computation graph:
// total work, span (critical-path length), and the ideal parallelism
// ratio the two imply.
type CPL struct {
	Work int64 `json:"work"`
	Span int64 `json:"span"`
}

// Parallelism returns work/span, the ideal speedup. Zero span gives 0.
func (c CPL) Parallelism() float64 {
	if c.Span == 0 {
		return 0
	}
	return float64(c.Work) / float64(c.Span)
}

// Node identifies one S-DPST node in source terms: the step/async/finish
// kind, its statement position, and the dynamic node id (stable within
// one captured trace, not across runs).
type Node struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"` // "step", "async", "finish", "root"
	Pos  string `json:"pos,omitempty"`
}

// RacePair is one detected race: the two conflicting steps, the shared
// location, and the access kinds.
type RacePair struct {
	First  Node   `json:"first"`
	Second Node   `json:"second"`
	Loc    string `json:"loc"`
	Kind   string `json:"kind,omitempty"` // "write-write", "read-write", ...
}

// Finish describes the placement the repair chose: the block the
// synthesized scope wraps and the statement index range [Lo, Hi] it
// encloses. Kind is "isolated" for isolated-wrapping repairs and empty
// (implicitly "finish") for the classic finish insertion.
type Finish struct {
	Pos  string `json:"pos,omitempty"` // position of the first wrapped statement
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
	Kind string `json:"kind,omitempty"`
}

// Group is the per-NS-LCA placement decision: the races funneled into
// this group, the NS-LCA node they share, the candidate vertices the DP
// considered, what it chose, and how hard it had to work.
type Group struct {
	LCA        Node       `json:"lca"`
	Races      []RacePair `json:"races"`
	Candidates []Node     `json:"candidates,omitempty"`
	// Chosen lists the finish blocks the DP selected for this group (the
	// optimal partition may need more than one).
	Chosen   []Finish `json:"chosen,omitempty"`
	DPStates int64    `json:"dp_states"`
	Vertices int      `json:"vertices,omitempty"`
	Edges    int      `json:"edges,omitempty"`
	Fallback bool     `json:"fallback,omitempty"`
	Applied  bool     `json:"applied"`
	// PrunedSerial marks groups whose races were already serialized by a
	// finish placed for an earlier group this iteration.
	PrunedSerial bool   `json:"pruned_serial,omitempty"`
	Note         string `json:"note,omitempty"`
	// Strategy records the repair strategy chosen for this group
	// ("finish" or "isolated") when the loop evaluated alternatives, and
	// StrategyWhy the reason. FinishSpan/IsolatedSpan are the probed
	// post-repair critical paths (0 when a candidate was not probed).
	Strategy     string `json:"strategy,omitempty"`
	StrategyWhy  string `json:"strategy_why,omitempty"`
	FinishSpan   int64  `json:"finish_span,omitempty"`
	IsolatedSpan int64  `json:"isolated_span,omitempty"`
	// CommuteFamily names the recognized commutative update families of
	// the group's regions ("add", "min+max", ...), and CommuteProbe the
	// semantic order-probe verdict backing the static recognition
	// ("confirmed", "refuted", or "unsupported"). Both are empty when no
	// region was recognized.
	CommuteFamily string `json:"commute_family,omitempty"`
	CommuteProbe  string `json:"commute_probe,omitempty"`
}

// Iteration is one round of the detect → group → place loop.
type Iteration struct {
	N      int        `json:"n"`
	Races  []RacePair `json:"races"`
	Groups []Group    `json:"groups"`
	CPL    *CPL       `json:"cpl,omitempty"` // tree CPL at the start of this round
}

// FinishEntry is the flattened per-placed-finish view (one entry per
// finish the repair inserted), which is what the acceptance criterion
// and hjreport's timeline consume.
type FinishEntry struct {
	Iteration int        `json:"iteration"`
	Finish    Finish     `json:"finish"`
	LCA       Node       `json:"lca"`
	Races     []RacePair `json:"races"`
	DPStates  int64      `json:"dp_states"`
	Fallback  bool       `json:"fallback,omitempty"`
	CPLBefore CPL        `json:"cpl_before"`
	CPLAfter  CPL        `json:"cpl_after"`
	// Strategy/StrategyWhy/CommuteFamily/CommuteProbe mirror the owning
	// group's strategy choice and commutativity evidence.
	Strategy      string `json:"strategy,omitempty"`
	StrategyWhy   string `json:"strategy_why,omitempty"`
	CommuteFamily string `json:"commute_family,omitempty"`
	CommuteProbe  string `json:"commute_probe,omitempty"`
}

// WitnessRec is one replayed race witness: the schedule under which the
// program observably diverged from the serial oracle, with the evidence.
type WitnessRec struct {
	// Race attributes the witness to a reported race ("W->W on loc 1
	// (3:9 vs 4:9)"); empty for unattributed verify divergences.
	Race string `json:"race,omitempty"`
	// Schedule is the replayable schedule ("defer-write@loc1", "random#7").
	Schedule string `json:"schedule"`
	Reason   string `json:"reason"` // "output differs", "final state differs", ...
	Expected string `json:"expected"`
	Actual   string `json:"actual"`
	// ExpectedState/ActualState render the final globals — the torn value
	// itself when the divergence never reaches the output.
	ExpectedState string `json:"expected_state,omitempty"`
	ActualState   string `json:"actual_state,omitempty"`
	// Trace is the schedule's grant-sequence digest, for replay checking.
	Trace string `json:"trace,omitempty"`
}

// AdversaryRec summarizes the post-repair adversarial verification: how
// many schedules ran, how many diverged from the serial oracle, and the
// first divergence if any.
type AdversaryRec struct {
	Schedules int         `json:"schedules"`
	Failures  int         `json:"failures"`
	Seed      int64       `json:"seed"`
	First     *WitnessRec `json:"first,omitempty"`
}

// GapVerdictRec is the schedule-search verdict for one coverage gap:
// "witnessed" (a directed schedule made the repaired program diverge),
// "unreachable" (no schedule ever executed the candidate's statements on
// this input), or "no-divergence".
type GapVerdictRec struct {
	Gap      string `json:"gap"`
	Status   string `json:"status"`
	Schedule string `json:"schedule,omitempty"` // witnessing schedule, if any
}

// Explain is the whole provenance document for one repair run.
type Explain struct {
	Program    string      `json:"program,omitempty"`
	Detector   string      `json:"detector,omitempty"` // "espbags", "vc", ...
	Engine     string      `json:"engine,omitempty"`   // "replay", "reexecute"
	Iterations []Iteration `json:"iterations"`
	// Finishes is derived by Finalize: one entry per applied placement.
	Finishes  []FinishEntry `json:"finishes"`
	CPLBefore CPL           `json:"cpl_before"`
	CPLAfter  CPL           `json:"cpl_after"`
	Converged bool          `json:"converged"`
	Degraded  string        `json:"degraded,omitempty"`
	// CoverageGaps are static race candidates no dynamic race covered
	// (the hjrepair -vet residue), for the report's coverage panel.
	CoverageGaps []string `json:"coverage_gaps,omitempty"`
	// Witnesses are the replayed race witnesses found on the original
	// program (hjrepair -witness).
	Witnesses []WitnessRec `json:"witnesses,omitempty"`
	// Adversary is the post-repair K-schedule verification summary.
	Adversary *AdversaryRec `json:"adversary,omitempty"`
	// GapVerdicts are the schedule-search verdicts for the coverage gaps.
	GapVerdicts []GapVerdictRec `json:"gap_verdicts,omitempty"`
}

// Finalize derives the flattened Finishes list and the run-level CPL
// before/after from the recorded iterations. Each applied group becomes
// one FinishEntry whose CPLBefore is its iteration's tree CPL and whose
// CPLAfter is the next iteration's (the run-final CPL for the last
// round) — i.e. the critical-path cost of exactly that round's fixes.
func (e *Explain) Finalize() {
	e.Finishes = e.Finishes[:0]
	if len(e.Iterations) == 0 {
		return
	}
	sort.SliceStable(e.Iterations, func(i, j int) bool { return e.Iterations[i].N < e.Iterations[j].N })
	if c := e.Iterations[0].CPL; c != nil {
		e.CPLBefore = *c
	}
	if c := e.Iterations[len(e.Iterations)-1].CPL; c != nil {
		e.CPLAfter = *c
	}
	for idx, it := range e.Iterations {
		before, after := e.CPLBefore, e.CPLAfter
		if it.CPL != nil {
			before = *it.CPL
		}
		if idx+1 < len(e.Iterations) && e.Iterations[idx+1].CPL != nil {
			after = *e.Iterations[idx+1].CPL
		}
		for _, g := range it.Groups {
			if !g.Applied {
				continue
			}
			for _, f := range g.Chosen {
				e.Finishes = append(e.Finishes, FinishEntry{
					Iteration:   it.N,
					Finish:      f,
					LCA:         g.LCA,
					Races:       g.Races,
					DPStates:    g.DPStates,
					Fallback:    g.Fallback,
					CPLBefore:   before,
					CPLAfter:    after,
					Strategy:      g.Strategy,
					StrategyWhy:   g.StrategyWhy,
					CommuteFamily: g.CommuteFamily,
					CommuteProbe:  g.CommuteProbe,
				})
			}
		}
	}
}

// WriteJSON writes the document as indented JSON.
func (e *Explain) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ReadJSON parses a document written by WriteJSON.
func ReadJSON(r io.Reader) (*Explain, error) {
	var e Explain
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, err
	}
	return &e, nil
}

// WriteText renders the human-readable "why this finish" summary shown
// by hjrepair -explain -v.
func (e *Explain) WriteText(w io.Writer) error {
	if e.Program != "" {
		fmt.Fprintf(w, "program: %s\n", e.Program)
	}
	if e.Detector != "" || e.Engine != "" {
		fmt.Fprintf(w, "detector: %s (engine: %s)\n", e.Detector, e.Engine)
	}
	fmt.Fprintf(w, "critical path: work %d span %d (parallelism %.2f) -> work %d span %d (parallelism %.2f)\n",
		e.CPLBefore.Work, e.CPLBefore.Span, e.CPLBefore.Parallelism(),
		e.CPLAfter.Work, e.CPLAfter.Span, e.CPLAfter.Parallelism())
	if len(e.Finishes) == 0 {
		fmt.Fprintln(w, "no finishes inserted (program already race-free or repair degraded)")
	}
	for i, f := range e.Finishes {
		kind := f.Finish.Kind
		if kind == "" {
			kind = "finish"
		}
		fmt.Fprintf(w, "\n%s %d (iteration %d): wrap statements %d..%d at %s\n",
			kind, i+1, f.Iteration, f.Finish.Lo, f.Finish.Hi, orUnknown(f.Finish.Pos))
		fmt.Fprintf(w, "  why: %d race(s) share NS-LCA %s node #%d at %s\n",
			len(f.Races), f.LCA.Kind, f.LCA.ID, orUnknown(f.LCA.Pos))
		if f.Strategy != "" {
			fmt.Fprintf(w, "  strategy: %s (%s)\n", f.Strategy, f.StrategyWhy)
		}
		if f.CommuteFamily != "" {
			fmt.Fprintf(w, "  commute: family %s, probe %s\n", f.CommuteFamily, f.CommuteProbe)
		}
		for _, r := range f.Races {
			fmt.Fprintf(w, "    race on %s: %s vs %s", r.Loc, orUnknown(r.First.Pos), orUnknown(r.Second.Pos))
			if r.Kind != "" {
				fmt.Fprintf(w, " (%s)", r.Kind)
			}
			fmt.Fprintln(w)
		}
		how := fmt.Sprintf("DP explored %d states", f.DPStates)
		if f.Fallback {
			how = "fallback placement (DP budget exceeded; widest safe range)"
		}
		fmt.Fprintf(w, "  how: %s; span %d -> %d\n", how, f.CPLBefore.Span, f.CPLAfter.Span)
	}
	if e.Degraded != "" {
		fmt.Fprintf(w, "\ndegraded: %s\n", e.Degraded)
	}
	if len(e.CoverageGaps) > 0 {
		fmt.Fprintf(w, "\ncoverage gaps (%d static candidates not exercised dynamically):\n", len(e.CoverageGaps))
		for _, g := range e.CoverageGaps {
			fmt.Fprintf(w, "  %s\n", g)
		}
	}
	if len(e.Witnesses) > 0 {
		fmt.Fprintf(w, "\nwitnesses (%d race(s) replayed to a concrete divergence):\n", len(e.Witnesses))
		for _, wr := range e.Witnesses {
			writeWitness(w, "  ", &wr)
		}
	}
	if len(e.GapVerdicts) > 0 {
		fmt.Fprintf(w, "\ngap search (schedule-directed verdicts for the coverage gaps):\n")
		for _, g := range e.GapVerdicts {
			fmt.Fprintf(w, "  %s: %s", g.Status, g.Gap)
			if g.Schedule != "" {
				fmt.Fprintf(w, " (schedule %s)", g.Schedule)
			}
			fmt.Fprintln(w)
		}
	}
	if e.Adversary != nil {
		fmt.Fprintf(w, "\nadversarial verify: %d/%d schedules diverged (seed %d)\n",
			e.Adversary.Failures, e.Adversary.Schedules, e.Adversary.Seed)
		if e.Adversary.First != nil {
			writeWitness(w, "  ", e.Adversary.First)
		}
	}
	return nil
}

func writeWitness(w io.Writer, indent string, wr *WitnessRec) {
	head := wr.Race
	if head == "" {
		head = "divergence"
	}
	fmt.Fprintf(w, "%s%s under %s: %s\n", indent, head, wr.Schedule, wr.Reason)
	fmt.Fprintf(w, "%s  expected %q got %q\n", indent, wr.Expected, wr.Actual)
	if wr.ExpectedState != wr.ActualState {
		fmt.Fprintf(w, "%s  state expected %q got %q\n", indent, wr.ExpectedState, wr.ActualState)
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "?"
	}
	return s
}
