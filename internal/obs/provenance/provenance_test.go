package provenance

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleExplain() *Explain {
	return &Explain{
		Program:  "counter.hj",
		Detector: "espbags",
		Engine:   "replay",
		Iterations: []Iteration{
			// Deliberately out of order: Finalize must sort by N.
			{N: 1, CPL: &CPL{Work: 15, Span: 15}},
			{
				N:     0,
				Races: []RacePair{{First: Node{ID: 6, Kind: "step", Pos: "9:17"}, Second: Node{ID: 9, Kind: "step", Pos: "10:17"}, Loc: "loc#1", Kind: "W->W"}},
				CPL:   &CPL{Work: 15, Span: 11},
				Groups: []Group{
					{
						LCA:      Node{ID: 3, Kind: "finish", Pos: "8:5"},
						Races:    []RacePair{{Loc: "loc#1"}},
						Chosen:   []Finish{{Pos: "9:9", Lo: 0, Hi: 0}},
						DPStates: 10,
						Applied:  true,
					},
					{LCA: Node{ID: 7}, Races: []RacePair{{Loc: "loc#2"}}, Applied: false, Note: "deferred"},
					{LCA: Node{ID: 8}, PrunedSerial: true},
				},
			},
		},
		Converged:    true,
		CoverageGaps: []string{"12:17 and 14:5 on x [R/W]"},
	}
}

func TestFinalize(t *testing.T) {
	e := sampleExplain()
	e.Finalize()
	if e.Iterations[0].N != 0 || e.Iterations[1].N != 1 {
		t.Fatal("iterations not sorted by N")
	}
	if e.CPLBefore != (CPL{Work: 15, Span: 11}) || e.CPLAfter != (CPL{Work: 15, Span: 15}) {
		t.Errorf("run CPL: before %+v after %+v", e.CPLBefore, e.CPLAfter)
	}
	// Only the applied group's chosen finish becomes an entry — the
	// deferred and pruned groups stay in the iteration record only.
	if len(e.Finishes) != 1 {
		t.Fatalf("Finishes = %d, want 1", len(e.Finishes))
	}
	f := e.Finishes[0]
	if f.Iteration != 0 || f.Finish.Pos != "9:9" || f.DPStates != 10 {
		t.Errorf("entry %+v", f)
	}
	if f.CPLBefore.Span != 11 || f.CPLAfter.Span != 15 {
		t.Errorf("entry CPL: before span %d after span %d, want 11 -> 15", f.CPLBefore.Span, f.CPLAfter.Span)
	}
	// Finalize is idempotent.
	e.Finalize()
	if len(e.Finishes) != 1 {
		t.Errorf("Finalize not idempotent: %d entries", len(e.Finishes))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := sampleExplain()
	e.Finalize()
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestWriteText(t *testing.T) {
	e := sampleExplain()
	e.Finalize()
	var buf bytes.Buffer
	if err := e.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"program: counter.hj",
		"detector: espbags (engine: replay)",
		"critical path: work 15 span 11",
		"wrap statements 0..0 at 9:9",
		"share NS-LCA finish node #3 at 8:5",
		"DP explored 10 states",
		"span 11 -> 15",
		"coverage gaps (1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextFallbackAndEmpty(t *testing.T) {
	e := &Explain{Finishes: []FinishEntry{{Fallback: true}}}
	var buf bytes.Buffer
	if err := e.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fallback placement") {
		t.Errorf("fallback entry not rendered: %s", buf.String())
	}

	buf.Reset()
	empty := &Explain{Converged: true}
	empty.Finalize()
	if err := empty.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no finishes inserted") {
		t.Errorf("empty record not explained: %s", buf.String())
	}
}

func TestParallelism(t *testing.T) {
	if p := (CPL{Work: 30, Span: 10}).Parallelism(); p != 3 {
		t.Errorf("Parallelism = %v, want 3", p)
	}
	if p := (CPL{}).Parallelism(); p != 0 {
		t.Errorf("zero-span Parallelism = %v, want 0", p)
	}
}
