// Package obs is the observability substrate of the repair pipeline: a
// tracer recording named phase spans (parse, sem-check, detect, NS-LCA
// grouping, DP placement, rewrite, verify — the stages of paper Fig. 6 —
// plus vet and its vet/mhp, vet/effects, and vet/candidates children
// when the static analyzer runs), a lock-cheap metrics registry
// (including the vet.* diagnostic counters and
// repair.groups_pruned_serial), and exporters for human text, JSONL
// event logs, and Chrome trace_event JSON (chrome://tracing / Perfetto).
//
// The tracer is built around a nil fast path: a nil *Tracer and the nil
// *Span it returns are valid receivers whose methods do nothing and
// allocate nothing, so instrumented code calls
//
//	sp := tr.Start("detect").SetInt("races", n)
//	defer sp.End()
//
// unconditionally, and pays only a pointer test when tracing is off
// (BenchmarkTracerDisabled: 0 allocs/op).
package obs

import (
	"fmt"
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// Attr is one typed span attribute. Exactly one of Int/Str is
// meaningful, selected by IsStr; keeping the value unboxed avoids
// interface allocations on the hot enabled path.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// Value returns the attribute value as an interface for rendering.
func (a Attr) Value() any {
	if a.IsStr {
		return a.Str
	}
	return a.Int
}

// SpanRecord is one finished span, in the tracer's record list.
type SpanRecord struct {
	ID     int64
	Parent int64 // 0 for root spans
	Name   string
	// Start is the offset from the tracer epoch; Dur the span length.
	Start time.Duration
	Dur   time.Duration
	// AllocBytes is the heap allocation delta over the span (cumulative
	// /gc/heap/allocs:bytes, so concurrent goroutines are included), when
	// the tracer captures allocations.
	AllocBytes uint64
	Attrs      []Attr
}

// Tracer collects phase spans. The zero value is not used; create with
// New. A nil *Tracer is the disabled tracer: Start returns a nil *Span
// and nothing is recorded or allocated.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	recs    []SpanRecord
	nextID  int64
	open    int
	allocOn bool
}

// Option configures New.
type Option func(*Tracer)

// WithoutAllocs disables the per-span heap-allocation delta capture.
func WithoutAllocs() Option { return func(t *Tracer) { t.allocOn = false } }

// New returns an enabled tracer whose span timestamps are offsets from
// now. Allocation deltas are captured by default (runtime/metrics, no
// stop-the-world).
func New(opts ...Option) *Tracer {
	t := &Tracer{epoch: time.Now(), allocOn: true}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is an in-flight phase. A nil *Span (from a nil tracer) is valid:
// every method is a no-op returning the receiver.
type Span struct {
	tracer     *Tracer
	id, parent int64
	name       string
	start      time.Duration
	allocStart uint64
	attrs      []Attr
	ended      bool
}

var allocMetric = []string{"/gc/heap/allocs:bytes"}

func heapAllocs() uint64 {
	s := make([]metrics.Sample, 1)
	s[0].Name = allocMetric[0]
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// Start opens a root span. On a nil tracer it returns nil.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.open_(name, 0)
}

func (t *Tracer) open_(name string, parent int64) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.open++
	t.mu.Unlock()
	s := &Span{tracer: t, id: id, parent: parent, name: name, start: time.Since(t.epoch)}
	if t.allocOn {
		s.allocStart = heapAllocs()
	}
	return s
}

// Child opens a span nested under s. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.open_(name, s.id)
}

// SetInt attaches an integer attribute. Nil-safe; returns s for chaining.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
	return s
}

// SetStr attaches a string attribute. Nil-safe; returns s for chaining.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
	return s
}

// Rename replaces the span name (e.g. the final detection round becomes
// "verify" once it comes back race-free). Nil-safe.
func (s *Span) Rename(name string) *Span {
	if s == nil {
		return nil
	}
	s.name = name
	return s
}

// End closes the span and appends its record to the tracer. Nil-safe and
// idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.tracer
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    time.Since(t.epoch) - s.start,
		Attrs:  s.attrs,
	}
	if t.allocOn {
		if end := heapAllocs(); end >= s.allocStart {
			rec.AllocBytes = end - s.allocStart
		}
	}
	t.mu.Lock()
	t.recs = append(t.recs, rec)
	t.open--
	t.mu.Unlock()
}

// Records returns a copy of the finished spans, ordered by start time.
// Nil-safe (returns nil).
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.recs))
	copy(out, t.recs)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// OpenSpans returns the number of started-but-unended spans. Nil-safe.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// ValidateNesting checks that a span set is well-formed: every span with
// a parent lies within the parent's interval, and spans sharing a parent
// do not overlap (the pipeline is sequential per nesting level).
func ValidateNesting(recs []SpanRecord) error {
	byID := make(map[int64]SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	siblings := make(map[int64][]SpanRecord)
	for _, r := range recs {
		if r.Parent != 0 {
			p, ok := byID[r.Parent]
			if !ok {
				return fmt.Errorf("obs: span %d (%s) has unknown parent %d", r.ID, r.Name, r.Parent)
			}
			if r.Start < p.Start || r.Start+r.Dur > p.Start+p.Dur {
				return fmt.Errorf("obs: span %d (%s) [%v,%v] escapes parent %d (%s) [%v,%v]",
					r.ID, r.Name, r.Start, r.Start+r.Dur, p.ID, p.Name, p.Start, p.Start+p.Dur)
			}
		}
		siblings[r.Parent] = append(siblings[r.Parent], r)
	}
	for parent, group := range siblings {
		sort.Slice(group, func(i, j int) bool { return group[i].Start < group[j].Start })
		for i := 1; i < len(group); i++ {
			prev, cur := group[i-1], group[i]
			if cur.Start < prev.Start+prev.Dur {
				return fmt.Errorf("obs: siblings of %d overlap: %s [%v,%v] and %s [%v,%v]",
					parent, prev.Name, prev.Start, prev.Start+prev.Dur, cur.Name, cur.Start, cur.Start+cur.Dur)
			}
		}
	}
	return nil
}
