package obs_test

import (
	"strings"
	"testing"

	"finishrepair/internal/obs"

	// Blank-import every package that registers metrics in the default
	// registry so their package-level metric vars run before the audit.
	_ "finishrepair/internal/adversary"
	_ "finishrepair/internal/analysis"
	_ "finishrepair/internal/analysis/commute"
	_ "finishrepair/internal/faults"
	_ "finishrepair/internal/guard"
	_ "finishrepair/internal/race"
	_ "finishrepair/internal/repair"
	_ "finishrepair/internal/sched"
	_ "finishrepair/taskpar"
)

// TestRegisteredMetricsAreKnown audits the live default registry: every
// metric any production package registers must appear in the
// obs.KnownMetrics manifest under its declared kind, and its name must
// follow the pkg.noun_verb convention. This is the drift gate — adding
// a metric without updating the manifest (or with a misnamed or
// mistyped registration) fails here, not in a dashboard three weeks
// later. Names under the reserved "test." prefix (registered by other
// tests sharing the process) are skipped.
func TestRegisteredMetricsAreKnown(t *testing.T) {
	samples := obs.Default().Snapshot()
	if len(samples) == 0 {
		t.Fatal("default registry is empty; blank imports broken?")
	}
	seen := 0
	for _, s := range samples {
		if strings.HasPrefix(s.Name, "test.") {
			continue
		}
		seen++
		if !obs.MetricNameRE.MatchString(s.Name) {
			t.Errorf("metric %q violates the pkg.noun_verb convention (%s)", s.Name, obs.MetricNameRE)
		}
		kind, ok := obs.KnownMetrics[s.Name]
		if !ok {
			t.Errorf("metric %q (kind %s) is not in obs.KnownMetrics — add it to the manifest", s.Name, s.Kind)
			continue
		}
		if kind != s.Kind {
			t.Errorf("metric %q registered as %s but the manifest declares %s", s.Name, s.Kind, kind)
		}
	}
	if seen == 0 {
		t.Fatal("no production metrics registered")
	}
}

// TestKnownMetricsManifestHonest checks the reverse direction loosely:
// the manifest only names metrics some package actually registers at
// init time or on first use. Metrics registered lazily (on first
// observation) may legitimately be absent from a fresh registry, so
// missing entries are reported for information, not failed — but a
// manifest entry whose kind clashes with a live registration always
// fails (covered above).
func TestKnownMetricsManifestHonest(t *testing.T) {
	live := map[string]bool{}
	for _, s := range obs.Default().Snapshot() {
		live[s.Name] = true
	}
	absent := 0
	for name := range obs.KnownMetrics {
		if !live[name] {
			absent++
			t.Logf("manifest metric %q not live in this process (lazily registered?)", name)
		}
	}
	if absent == len(obs.KnownMetrics) {
		t.Error("no manifest metric is live — the manifest and the code have fully diverged")
	}
}
