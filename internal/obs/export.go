package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// ExportFiles writes the tracer's records, together with the default
// registry's snapshot, to chromePath (Chrome trace_event JSON) and
// jsonlPath (JSONL event log). Empty paths are skipped; a nil tracer
// exports empty span sets.
func ExportFiles(t *Tracer, chromePath, jsonlPath string) error {
	recs := t.Records()
	samples := Default().Snapshot()
	write := func(path string, fn func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(chromePath, func(w io.Writer) error {
		return WriteChromeTrace(w, recs, samples)
	}); err != nil {
		return err
	}
	return write(jsonlPath, func(w io.Writer) error {
		return WriteJSONL(w, recs, samples)
	})
}

// jsonSpan is the JSONL wire form of one span.
type jsonSpan struct {
	Type       string         `json:"type"` // "span"
	ID         int64          `json:"id"`
	Parent     int64          `json:"parent,omitempty"`
	Name       string         `json:"name"`
	StartUS    float64        `json:"start_us"`
	DurUS      float64        `json:"dur_us"`
	AllocBytes uint64         `json:"alloc_bytes,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// jsonMetric is the JSONL wire form of one metric sample.
type jsonMetric struct {
	Type string `json:"type"` // "metric"
	Sample
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteJSONL writes one JSON object per line: every span record followed
// by every metric sample (pass nil samples to omit metrics).
func WriteJSONL(w io.Writer, recs []SpanRecord, samples []Sample) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(jsonSpan{
			Type: "span", ID: r.ID, Parent: r.Parent, Name: r.Name,
			StartUS: micros(r.Start), DurUS: micros(r.Dur),
			AllocBytes: r.AllocBytes, Attrs: attrMap(r.Attrs),
		}); err != nil {
			return err
		}
	}
	for _, s := range samples {
		if err := enc.Encode(jsonMetric{Type: "metric", Sample: s}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL export back into span records and metric
// samples (the inverse of WriteJSONL, used for round-trip validation).
func ReadJSONL(r io.Reader) ([]SpanRecord, []Sample, error) {
	var recs []SpanRecord
	var samples []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		switch head.Type {
		case "span":
			var js jsonSpan
			if err := json.Unmarshal(raw, &js); err != nil {
				return nil, nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
			}
			rec := SpanRecord{
				ID: js.ID, Parent: js.Parent, Name: js.Name,
				Start:      time.Duration(js.StartUS * 1e3),
				Dur:        time.Duration(js.DurUS * 1e3),
				AllocBytes: js.AllocBytes,
			}
			for k, v := range js.Attrs {
				switch x := v.(type) {
				case string:
					rec.Attrs = append(rec.Attrs, Attr{Key: k, Str: x, IsStr: true})
				case float64:
					rec.Attrs = append(rec.Attrs, Attr{Key: k, Int: int64(x)})
				}
			}
			recs = append(recs, rec)
		case "metric":
			var jm jsonMetric
			if err := json.Unmarshal(raw, &jm); err != nil {
				return nil, nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
			}
			samples = append(samples, jm.Sample)
		default:
			return nil, nil, fmt.Errorf("obs: jsonl line %d: unknown event type %q", line, head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return recs, samples, nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry a microsecond timestamp and duration.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of a trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace writes the spans (and, as a final instant event, the
// metric samples) in Chrome trace_event JSON. Load the file in
// chrome://tracing or https://ui.perfetto.dev to see the pipeline
// phases on a timeline.
func WriteChromeTrace(w io.Writer, recs []SpanRecord, samples []Sample) error {
	ct := chromeTrace{DisplayTimeUnit: "ms"}
	ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "finishrepair pipeline"},
	})
	for _, r := range recs {
		args := attrMap(r.Attrs)
		if r.AllocBytes > 0 {
			if args == nil {
				args = map[string]any{}
			}
			args["alloc_bytes"] = r.AllocBytes
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: r.Name, Ph: "X", TS: micros(r.Start), Dur: micros(r.Dur),
			PID: 1, TID: 1, Args: args,
		})
	}
	if len(samples) > 0 {
		args := make(map[string]any, len(samples))
		var last time.Duration
		for _, r := range recs {
			if end := r.Start + r.Dur; end > last {
				last = end
			}
		}
		for _, s := range samples {
			args[s.Name] = s.Value
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "metrics", Ph: "i", TS: micros(last), PID: 1, TID: 1, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// ReadChromeTrace parses a trace file written by WriteChromeTrace back
// into span records ("X" events only). Used for round-trip validation.
func ReadChromeTrace(r io.Reader) ([]SpanRecord, error) {
	var ct chromeTrace
	if err := json.NewDecoder(r).Decode(&ct); err != nil {
		return nil, fmt.Errorf("obs: chrome trace: %w", err)
	}
	var recs []SpanRecord
	var id int64
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		id++
		rec := SpanRecord{
			ID:    id,
			Name:  ev.Name,
			Start: time.Duration(ev.TS * 1e3),
			Dur:   time.Duration(ev.Dur * 1e3),
		}
		for k, v := range ev.Args {
			switch x := v.(type) {
			case string:
				rec.Attrs = append(rec.Attrs, Attr{Key: k, Str: x, IsStr: true})
			case float64:
				rec.Attrs = append(rec.Attrs, Attr{Key: k, Int: int64(x)})
			}
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// WriteSpansText renders the span tree as an indented human-readable
// listing, children under parents in start order.
func WriteSpansText(w io.Writer, recs []SpanRecord) error {
	children := make(map[int64][]SpanRecord)
	for _, r := range recs {
		children[r.Parent] = append(children[r.Parent], r)
	}
	var emit func(parent int64, depth int) error
	emit = func(parent int64, depth int) error {
		for _, r := range children[parent] {
			_, err := fmt.Fprintf(w, "%*s%-24s %12v", depth*2, "", r.Name, r.Dur.Round(time.Microsecond))
			if err != nil {
				return err
			}
			if r.AllocBytes > 0 {
				if _, err := fmt.Fprintf(w, "  %8dB", r.AllocBytes); err != nil {
					return err
				}
			}
			for _, a := range r.Attrs {
				if _, err := fmt.Fprintf(w, "  %s=%v", a.Key, a.Value()); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
			if err := emit(r.ID, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return emit(0, 0)
}
