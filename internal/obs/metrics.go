package obs

import (
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Updates are a single
// atomic add; safe from any goroutine including scheduler hot paths.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the last stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// zero, bucket i holds [2^(i-1), 2^i).
const histBuckets = 64 + 1

// Histogram is a power-of-two-bucketed distribution. Observe is one
// atomic add per call plus two for sum/count.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one sample (negative samples count as zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observation, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Buckets returns the per-bucket observation counts, trimmed of trailing
// zero buckets (bucket 0 holds zero, bucket i holds [2^(i-1), 2^i-1]).
func (h *Histogram) Buckets() []int64 {
	last := -1
	var raw [histBuckets]int64
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	out := make([]int64, last+1)
	copy(out, raw[:last+1])
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// distribution by linear interpolation inside the log bucket holding the
// rank. With no samples it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	return BucketQuantile(h.Buckets(), q)
}

// BucketRange returns the value range [lo, hi] a power-of-two bucket
// index covers: bucket 0 is exactly zero, bucket i holds 2^(i-1)..2^i-1.
func BucketRange(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	hi = lo<<1 - 1
	return lo, hi
}

// BucketQuantile estimates the q-quantile of a power-of-two bucket count
// vector as produced by Histogram.Buckets (and by Registry.Delta for
// interval distributions).
func BucketQuantile(buckets []int64, q float64) float64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := int64(q*float64(total-1)) + 1
	var cum int64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := BucketRange(i)
			if c == 1 || lo == hi {
				return float64(lo)
			}
			frac := float64(rank-cum-1) / float64(c-1)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	lo, _ := BucketRange(len(buckets) - 1)
	return float64(lo)
}

// Registry holds named metrics. Registration takes a write lock once per
// metric name; subsequent lookups are read-locked and updates lock-free.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the instrumented
// packages (race, repair, sched, taskpar).
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Sample is one metric's snapshot value.
type Sample struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge", or "histogram"
	// Value is the counter/gauge value, or the histogram sum.
	Value int64 `json:"value"`
	// Count and Mean are set for histograms.
	Count int64   `json:"count,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	// Buckets are the histogram's power-of-two bucket counts (bucket 0
	// holds zero, bucket i holds [2^(i-1), 2^i-1]), trimmed of trailing
	// zeros. P50/P95/P99 are quantile estimates interpolated from them.
	Buckets []int64 `json:"buckets,omitempty"`
	P50     float64 `json:"p50,omitempty"`
	P95     float64 `json:"p95,omitempty"`
	P99     float64 `json:"p99,omitempty"`
}

// fillQuantiles recomputes the quantile estimates from Buckets.
func (s *Sample) fillQuantiles() {
	s.P50 = BucketQuantile(s.Buckets, 0.50)
	s.P95 = BucketQuantile(s.Buckets, 0.95)
	s.P99 = BucketQuantile(s.Buckets, 0.99)
}

// histogramSample builds the snapshot form of one histogram.
func histogramSample(name string, h *Histogram) Sample {
	s := Sample{
		Name: name, Kind: "histogram",
		Value: h.Sum(), Count: h.Count(), Mean: h.Mean(),
		Buckets: h.Buckets(),
	}
	s.fillQuantiles()
	return s
}

// Snapshot returns all metrics, sorted by name.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.histograms {
		out = append(out, histogramSample(name, h))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delta returns the current snapshot minus a previous one: counters and
// histogram sums/counts/buckets are differenced (so histogram quantiles
// describe only the interval's observations), gauges keep their latest
// value. Metrics absent from prev appear with their full current value.
func (r *Registry) Delta(prev []Sample) []Sample {
	base := make(map[string]Sample, len(prev))
	for _, s := range prev {
		base[s.Name] = s
	}
	cur := r.Snapshot()
	for i, s := range cur {
		b, ok := base[s.Name]
		if !ok || s.Kind == "gauge" {
			continue
		}
		cur[i].Value -= b.Value
		cur[i].Count -= b.Count
		if cur[i].Count > 0 {
			cur[i].Mean = float64(cur[i].Value) / float64(cur[i].Count)
		} else {
			cur[i].Mean = 0
		}
		if s.Kind == "histogram" {
			cur[i].Buckets = diffBuckets(s.Buckets, b.Buckets)
			cur[i].fillQuantiles()
		}
	}
	return cur
}

// diffBuckets subtracts prev bucket counts from cur, trimming trailing
// zeros. Negative cells (a registry reset between snapshots) clamp to 0.
func diffBuckets(cur, prev []int64) []int64 {
	out := make([]int64, len(cur))
	last := -1
	for i, c := range cur {
		if i < len(prev) {
			c -= prev[i]
		}
		if c < 0 {
			c = 0
		}
		out[i] = c
		if c != 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	return out[:last+1]
}

// WriteText renders the snapshot in aligned human-readable lines.
func WriteText(w io.Writer, samples []Sample) error {
	width := 0
	for _, s := range samples {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range samples {
		var err error
		switch s.Kind {
		case "histogram":
			_, err = fmt.Fprintf(w, "%-*s  %d (n=%d, mean=%.1f, p50=%.0f, p95=%.0f, p99=%.0f)\n",
				width, s.Name, s.Value, s.Count, s.Mean, s.P50, s.P95, s.P99)
		default:
			_, err = fmt.Fprintf(w, "%-*s  %d\n", width, s.Name, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

var expvarOnce sync.Once

// PublishExpvar exposes the default registry under the expvar key
// "obs_metrics" (served at /debug/vars). Safe to call more than once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("obs_metrics", expvar.Func(func() any {
			return defaultRegistry.Snapshot()
		}))
	})
}
