package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// PromContentType is the Prometheus text exposition format version the
// /debug/prom endpoint serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName converts a registry metric name to a legal Prometheus metric
// name: dots and any other character outside [a-zA-Z0-9_:] become
// underscores, and a leading digit is prefixed.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges become single
// samples; histograms become cumulative `_bucket{le="..."}` series with
// exact power-of-two upper bounds (bucket i of the registry histogram
// holds integer values up to 2^i - 1, so the emitted `le` bounds are
// 0, 1, 3, 7, 15, ... and the cumulative counts are exact, not
// interpolated), plus `_sum` and `_count`.
func WritePrometheus(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	for _, s := range samples {
		name := PromName(s.Name)
		switch s.Kind {
		case "counter", "gauge":
			fmt.Fprintf(bw, "# TYPE %s %s\n%s %d\n", name, s.Kind, name, s.Value)
		case "histogram":
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			var cum int64
			for i, c := range s.Buckets {
				cum += c
				_, hi := BucketRange(i)
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, hi, cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
			fmt.Fprintf(bw, "%s_sum %d\n", name, s.Value)
			fmt.Fprintf(bw, "%s_count %d\n", name, s.Count)
		}
	}
	return bw.Flush()
}
