package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"finishrepair/internal/cpl"
	"finishrepair/internal/guard"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/obs"
	"finishrepair/internal/parinterp"
	"finishrepair/internal/race"
	"finishrepair/internal/repair"
	"finishrepair/taskpar"
)

// tracer receives the per-phase spans of every harness run when set via
// SetTracer (hjbench -trace).
var tracer *obs.Tracer

// SetTracer attaches tr to all subsequent harness runs; nil detaches.
func SetTracer(tr *obs.Tracer) { tracer = tr }

// budget bounds subsequent harness repairs when set via SetBudget
// (hjbench -timeout). Each repair gets a fresh meter so the budget is
// per benchmark run, not cumulative across the suite.
var budget guard.Budget

// SetBudget applies b to all subsequent harness repairs; the zero
// Budget restores the defaults.
func SetBudget(b guard.Budget) { budget = b }

// workers bounds the analysis parallelism (engine-level concurrency and
// the per-NS-LCA DP pool) of subsequent harness repairs when set via
// SetWorkers (hjbench -j). Results are independent of the value.
var workers int

// SetWorkers applies w to all subsequent harness repairs; 0 or 1 is
// sequential.
func SetWorkers(w int) { workers = w }

// newMeter builds the per-run meter, or nil when no budget is set.
func newMeter() *guard.Meter {
	if budget == (guard.Budget{}) {
		return nil
	}
	return guard.NewMeter(nil, budget)
}

// RepairStats is one benchmark's repair-mode measurement (Tables 2-4).
type RepairStats struct {
	Name string `json:"name"`
	// SeqTime is the serial-elision runtime (HJ-Seq column).
	SeqTime time.Duration `json:"seq_time_ns"`
	// DetectTime is the first instrumented run: race detection plus
	// S-DPST construction.
	DetectTime time.Duration `json:"detect_time_ns"`
	SDPSTNodes int           `json:"sdpst_nodes"`
	Races      int           `json:"races"`
	// RepairTime sums dynamic+static finish placement and rewrite time
	// across iterations (trace I/O included, as in the paper's tool).
	RepairTime time.Duration `json:"repair_time_ns"`
	// PlaceTime and RewriteTime break RepairTime down into NS-LCA
	// grouping + DP placement vs the AST rewrite, summed over iterations.
	PlaceTime   time.Duration `json:"place_time_ns"`
	RewriteTime time.Duration `json:"rewrite_time_ns"`
	// SecondDetect is the confirming detection run (the final, race-free
	// iteration).
	SecondDetect time.Duration `json:"second_detect_ns"`
	Iterations   int           `json:"iterations"`
	Inserted     int           `json:"inserted"`
	// DPStates counts dynamic-programming states explored across all
	// placement rounds.
	DPStates int64 `json:"dp_states"`
	// RacesPerIteration lists each round's race count (the final 0 is
	// the confirmation round).
	RacesPerIteration []int `json:"races_per_iteration"`
	// OutputOK reports whether the repaired program's output equals the
	// serial elision's.
	OutputOK bool `json:"output_ok"`
	// SpanOriginal/SpanRepaired are critical path lengths (work units) of
	// the expert-written and the repaired program; equal values mean the
	// repair preserved maximal parallelism (§7.1).
	SpanOriginal int64 `json:"span_original"`
	SpanRepaired int64 `json:"span_repaired"`
	WorkOriginal int64 `json:"work_original"`
	WorkRepaired int64 `json:"work_repaired"`
	// Metrics is the delta of the process metrics registry over this
	// benchmark's run: detector, placement, scheduler, and taskpar
	// counters (stage-level breakdown for BENCH_*.json entries).
	Metrics []obs.Sample `json:"metrics,omitempty"`
	// Stages summarizes the per-call latency distribution of each
	// pipeline stage over this run (from the *_ns histogram deltas in
	// Metrics): p50/p95/p99 expose tail behavior the per-run totals
	// above average away.
	Stages []StageLatency `json:"stages,omitempty"`
}

// StageLatency is the distribution of one pipeline stage's per-call
// latency across a benchmark run, derived from the obs histograms.
type StageLatency struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P95Ns  float64 `json:"p95_ns"`
	P99Ns  float64 `json:"p99_ns"`
}

// stageLatencies extracts the latency histograms from a metrics delta.
func stageLatencies(samples []obs.Sample) []StageLatency {
	var out []StageLatency
	for _, s := range samples {
		if s.Kind != "histogram" || !strings.HasSuffix(s.Name, "_ns") || s.Count == 0 {
			continue
		}
		out = append(out, StageLatency{
			Stage: s.Name, Count: s.Count, MeanNs: s.Mean,
			P50Ns: s.P50, P95Ns: s.P95, P99Ns: s.P99,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// loadChecked parses and checks src.
func loadChecked(src string) (*sem.Info, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return sem.Check(prog)
}

// RunRepair strips all finishes from the benchmark (paper §7.1), repairs
// the resulting buggy program with the given detector variant, and
// collects the Table 2/3 statistics.
func RunRepair(b *Benchmark, variant race.Variant, size int) (*RepairStats, error) {
	src := b.Src(size)
	st := &RepairStats{Name: b.Name}
	before := obs.Default().Snapshot()
	bsp := tracer.Start("bench-repair").SetStr("benchmark", b.Name).SetStr("variant", variant.String())
	defer bsp.End()

	// HJ-Seq: the serial elision runtime.
	elideInfo, err := loadChecked(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	ast.StripFinishes(elideInfo.Prog)
	elideInfo, err = sem.Check(elideInfo.Prog)
	if err != nil {
		return nil, fmt.Errorf("%s elision: %w", b.Name, err)
	}
	esp := bsp.Child("seq-elision")
	t0 := time.Now()
	elideRes, err := interp.Run(elideInfo, interp.Options{Mode: interp.Elide})
	esp.End()
	if err != nil {
		return nil, fmt.Errorf("%s elision run: %w", b.Name, err)
	}
	st.SeqTime = time.Since(t0)

	// Paper-faithful detection pass: the paper's tool builds the full
	// S-DPST without collapsing task-free scopes, so Table 2/3 node and
	// race counts come from an uncollapsed run.
	{
		prog, err := parser.Parse(src)
		if err != nil {
			return nil, err
		}
		ast.StripFinishes(prog)
		info, err := sem.Check(prog)
		if err != nil {
			return nil, err
		}
		det := race.New(variant, race.NewBagsOracle())
		dsp := bsp.Child("detect-uncollapsed")
		t0 := time.Now()
		_, tr, err := race.Capture(info, nil)
		if err != nil {
			dsp.End()
			return nil, fmt.Errorf("%s detection: %w", b.Name, err)
		}
		rr, err := race.Analyze(tr, info.Prog, nil, det, nil, true)
		if err != nil {
			dsp.End()
			return nil, fmt.Errorf("%s detection: %w", b.Name, err)
		}
		st.DetectTime = time.Since(t0)
		st.SDPSTNodes = rr.Tree.NumNodes()
		st.Races = len(det.Races())
		dsp.SetInt("races", int64(st.Races)).SetInt("sdpst_nodes", int64(st.SDPSTNodes)).End()
	}

	// Buggy program: strip every finish, then repair (the repair loop
	// itself uses the collapsed S-DPST; see the ablation table).
	buggy, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	ast.StripFinishes(buggy)
	rep, err := repair.Repair(buggy, repair.Options{Variant: variant, UseTraceFiles: true, ParentSpan: bsp, Meter: newMeter(), Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("%s repair: %w", b.Name, err)
	}
	last := rep.Iterations[len(rep.Iterations)-1]
	st.Iterations = len(rep.Iterations)
	st.Inserted = rep.Inserted
	st.SecondDetect = last.DetectTime
	st.DPStates = rep.TotalDPStates()
	for _, it := range rep.Iterations {
		st.RepairTime += it.RepairTime
		st.PlaceTime += it.PlaceTime
		st.RewriteTime += it.RewriteTime
		st.RacesPerIteration = append(st.RacesPerIteration, it.Races)
	}
	st.OutputOK = rep.Output == elideRes.Output

	// Parallelism comparison: span of the repaired vs the expert-written
	// program on the same input.
	csp := bsp.Child("parallelism-compare")
	defer csp.End()
	origInfo, err := loadChecked(src)
	if err != nil {
		return nil, err
	}
	origRes, err := interp.Run(origInfo, interp.Options{Mode: interp.DepthFirst, Instrument: true})
	if err != nil {
		return nil, fmt.Errorf("%s original instrumented run: %w", b.Name, err)
	}
	om := cpl.Analyze(origRes.Tree)
	repInfo, err := sem.Check(buggy)
	if err != nil {
		return nil, err
	}
	repRes, err := interp.Run(repInfo, interp.Options{Mode: interp.DepthFirst, Instrument: true})
	if err != nil {
		return nil, fmt.Errorf("%s repaired instrumented run: %w", b.Name, err)
	}
	rm := cpl.Analyze(repRes.Tree)
	st.SpanOriginal, st.SpanRepaired = om.Span, rm.Span
	st.WorkOriginal, st.WorkRepaired = om.Work, rm.Work
	st.Metrics = obs.Default().Delta(before)
	st.Stages = stageLatencies(st.Metrics)
	return st, nil
}

// RaceCounts runs both detectors once on the stripped benchmark and
// returns (SRW, MRW) race counts (Table 4). Counts use the
// paper-faithful uncollapsed S-DPST (steps at scope granularity). The
// execution is captured once and analyzed by both variants.
func RaceCounts(b *Benchmark, size int) (srw, mrw int, err error) {
	prog, err := parser.Parse(b.Src(size))
	if err != nil {
		return 0, 0, err
	}
	ast.StripFinishes(prog)
	info, err := sem.Check(prog)
	if err != nil {
		return 0, 0, err
	}
	_, tr, err := race.Capture(info, nil)
	if err != nil {
		return 0, 0, err
	}
	for _, v := range []race.Variant{race.VariantSRW, race.VariantMRW} {
		det := race.New(v, race.NewBagsOracle())
		if _, err := race.Analyze(tr, info.Prog, nil, det, nil, true); err != nil {
			return 0, 0, err
		}
		if v == race.VariantSRW {
			srw = len(det.Races())
		} else {
			mrw = len(det.Races())
		}
	}
	return srw, mrw, nil
}

// PerfStats is one benchmark's Figure-16 measurement: mean execution
// times with 95%% confidence half-widths for sequential, original
// parallel, and repaired parallel versions.
type PerfStats struct {
	Name                 string
	Runs                 int
	Seq, Orig, Repaired  time.Duration
	SeqCI, OrigCI, RepCI time.Duration
	OutputOK             bool
	// Model-predicted speedups on P processors from the deterministic
	// work/span metrics (Brent: T_P >= max(T1/P, Tinf), so speedup <=
	// min(P, T1/Tinf)). Independent of the host's core count.
	ModelP                 int
	OrigModel, RepairModel float64
}

// RunPerf measures the benchmark at the given size: the serial elision,
// the expert-written parallel program, and the tool-repaired parallel
// program, each averaged over runs executions (paper: 30; pass fewer for
// quick runs). Parallel versions execute on a work-stealing pool of
// GOMAXPROCS workers.
func RunPerf(b *Benchmark, size, runs int) (*PerfStats, error) {
	if runs <= 0 {
		runs = 5
	}
	src := b.Src(size)
	ps := &PerfStats{Name: b.Name, Runs: runs}
	psp := tracer.Start("bench-perf").SetStr("benchmark", b.Name).SetInt("runs", int64(runs))
	defer psp.End()

	// Serial elision.
	elideInfo, err := loadChecked(src)
	if err != nil {
		return nil, err
	}
	ast.StripFinishes(elideInfo.Prog)
	elideInfo, err = sem.Check(elideInfo.Prog)
	if err != nil {
		return nil, err
	}
	var seqOut string
	ps.Seq, ps.SeqCI, err = timeRuns(runs, func() error {
		r, err := interp.Run(elideInfo, interp.Options{Mode: interp.Elide})
		if err == nil {
			seqOut = r.Output
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("%s seq: %w", b.Name, err)
	}

	exec := taskpar.NewPoolExecutor(0)
	defer exec.Shutdown()

	// Original parallel.
	origInfo, err := loadChecked(src)
	if err != nil {
		return nil, err
	}
	var origOut string
	ps.Orig, ps.OrigCI, err = timeRuns(runs, func() error {
		r, err := parinterp.Run(origInfo, parinterp.Options{Executor: exec})
		if err == nil {
			origOut = r.Output
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("%s original parallel: %w", b.Name, err)
	}

	// Repaired parallel: the repair is discovered on the repair-size
	// input and replayed onto the perf-size source (the placements are
	// static, so they transfer across input sizes).
	repairedSrc, err := RepairedSource(b, size)
	if err != nil {
		return nil, err
	}
	repInfo, err := loadChecked(repairedSrc)
	if err != nil {
		return nil, fmt.Errorf("%s repaired source: %w", b.Name, err)
	}
	var repOut string
	ps.Repaired, ps.RepCI, err = timeRuns(runs, func() error {
		r, err := parinterp.Run(repInfo, parinterp.Options{Executor: exec})
		if err == nil {
			repOut = r.Output
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("%s repaired parallel: %w", b.Name, err)
	}

	ps.OutputOK = seqOut == origOut && origOut == repOut

	// Model speedups (the paper's 12-core testbed).
	ps.ModelP = 12
	if m, err := modelMetrics(origInfo); err == nil {
		ps.OrigModel = math.Min(float64(ps.ModelP), m.Parallelism())
	}
	if m, err := modelMetrics(repInfo); err == nil {
		ps.RepairModel = math.Min(float64(ps.ModelP), m.Parallelism())
	}
	return ps, nil
}

// modelMetrics runs the instrumented canonical execution (no detector)
// and returns the work/span metrics.
func modelMetrics(info *sem.Info) (cpl.Metrics, error) {
	res, err := interp.Run(info, interp.Options{
		Mode: interp.DepthFirst, Instrument: true,
	})
	if err != nil {
		return cpl.Metrics{}, err
	}
	return cpl.Analyze(res.Tree), nil
}

func timeRuns(runs int, f func() error) (mean, ci95 time.Duration, err error) {
	durs := make([]float64, runs)
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, 0, err
		}
		durs[i] = float64(time.Since(t0))
	}
	var sum float64
	for _, d := range durs {
		sum += d
	}
	m := sum / float64(runs)
	var sq float64
	for _, d := range durs {
		sq += (d - m) * (d - m)
	}
	sd := 0.0
	if runs > 1 {
		sd = math.Sqrt(sq / float64(runs-1))
	}
	half := 1.96 * sd / math.Sqrt(float64(runs))
	return time.Duration(m), time.Duration(half), nil
}
