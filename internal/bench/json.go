package bench

import (
	"encoding/json"
	"io"

	"finishrepair/internal/race"
)

// WriteRepairJSON marshals repair-mode stats as indented JSON — the
// machine-readable form of Table 2, carrying the stage-level breakdown
// (phase timings, DP states, races per iteration, metrics deltas) for
// BENCH_*.json entries.
func WriteRepairJSON(w io.Writer, stats []*RepairStats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(stats)
}

// Table2JSON runs repair mode (MRW) on every benchmark and writes the
// results as JSON (hjbench -table 2 -json).
func Table2JSON(w io.Writer) error {
	var stats []*RepairStats
	for _, b := range All() {
		st, err := RunRepair(b, race.VariantMRW, b.RepairSize)
		if err != nil {
			return err
		}
		stats = append(stats, st)
	}
	return WriteRepairJSON(w, stats)
}
