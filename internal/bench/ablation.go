package bench

import (
	"fmt"
	"io"
	"time"

	"finishrepair/internal/dpst"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/race"
)

// AblationStats compares S-DPST construction with and without
// maximal-step collapsing of task-free scope subtrees. Collapsing is our
// eager realization of the paper's §9 future-work item ("garbage
// collection of parts of the S-DPST that do not exhibit race
// conditions"); the ablation quantifies what it buys.
type AblationStats struct {
	Name                     string
	NodesFull, NodesGC       int
	RacesFull, RacesGC       int
	DetectFull, DetectGC     time.Duration
	MaxGraphFull, MaxGraphGC int
}

// RunAblation measures one benchmark both ways on the repair input: the
// stripped program is captured once, then the trace is replayed with
// and without collapsing.
func RunAblation(b *Benchmark) (*AblationStats, error) {
	st := &AblationStats{Name: b.Name}
	prog, err := parser.Parse(b.Src(b.RepairSize))
	if err != nil {
		return nil, err
	}
	ast.StripFinishes(prog)
	info, err := sem.Check(prog)
	if err != nil {
		return nil, err
	}
	_, tr, err := race.Capture(info, nil)
	if err != nil {
		return nil, err
	}
	for _, noCollapse := range []bool{true, false} {
		det := race.NewMRW(race.NewBagsOracle())
		t0 := time.Now()
		res, err := race.Analyze(tr, info.Prog, nil, det, nil, noCollapse)
		if err != nil {
			return nil, err
		}
		d := time.Since(t0)

		// Largest dependence graph any NS-LCA would present to the DP:
		// the maximum non-scope-children count over race NS-LCAs.
		maxGraph := maxDependenceGraph(det.Races())

		if noCollapse {
			st.NodesFull = res.Tree.NumNodes()
			st.RacesFull = len(det.Races())
			st.DetectFull = d
			st.MaxGraphFull = maxGraph
		} else {
			st.NodesGC = res.Tree.NumNodes()
			st.RacesGC = len(det.Races())
			st.DetectGC = d
			st.MaxGraphGC = maxGraph
		}
	}
	return st, nil
}

func maxDependenceGraph(races []*race.Race) int {
	// Count non-scope children per distinct NS-LCA.
	seen := map[int]int{}
	max := 0
	for _, r := range races {
		l := dpst.NSLCA(r.Src, r.Dst)
		if _, ok := seen[l.ID]; !ok {
			seen[l.ID] = len(dpst.NonScopeChildren(l))
		}
		if seen[l.ID] > max {
			max = seen[l.ID]
		}
	}
	return max
}

// PrintAblation writes the collapse ablation for every benchmark.
func PrintAblation(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: maximal-step collapsing of task-free scopes (eager S-DPST GC, paper §9)")
	fmt.Fprintf(w, "%-14s %12s %12s %12s %12s %14s %14s %10s %10s\n",
		"Benchmark", "Nodes", "Nodes+GC", "Races", "Races+GC", "Detect (ms)", "Detect+GC", "MaxDG", "MaxDG+GC")
	for _, b := range All() {
		st, err := RunAblation(b)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %12d %12d %12d %12d %14s %14s %10d %10d\n",
			st.Name, st.NodesFull, st.NodesGC, st.RacesFull, st.RacesGC,
			ms(st.DetectFull), ms(st.DetectGC), st.MaxGraphFull, st.MaxGraphGC)
	}
	return nil
}
