package bench_test

import (
	"testing"

	"finishrepair/internal/bench"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/parinterp"
	"finishrepair/internal/race"
)

// TestOriginalsAreRaceFree: each expert-written benchmark must have no
// races on its repair input (they are the ground truth of §7.1).
func TestOriginalsAreRaceFree(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := parser.Parse(b.Src(b.RepairSize))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			info, err := sem.Check(prog)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			res, det, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if n := len(det.Races()); n != 0 {
				for i, r := range det.Races() {
					if i >= 5 {
						break
					}
					t.Logf("race: %v", r)
				}
				t.Fatalf("%d races in expert-written %s", n, b.Name)
			}
			if err := res.Tree.Validate(); err != nil {
				t.Errorf("invalid S-DPST: %v", err)
			}
		})
	}
}

// TestStrippedAreRacy: removing all finishes must introduce detectable
// races in every benchmark — otherwise there is nothing to repair.
func TestStrippedAreRacy(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			srw, mrw, err := bench.RaceCounts(b, b.RepairSize)
			if err != nil {
				t.Fatal(err)
			}
			if mrw == 0 {
				t.Fatalf("no MRW races in stripped %s", b.Name)
			}
			if srw == 0 {
				t.Fatalf("no SRW races in stripped %s", b.Name)
			}
			if mrw < srw {
				t.Errorf("MRW found fewer races (%d) than SRW (%d)", mrw, srw)
			}
			t.Logf("SRW=%d MRW=%d", srw, mrw)
		})
	}
}

// TestRepairAllBenchmarks is the core §7.1 experiment: strip, repair,
// verify race freedom, output equality with the serial elision, and
// that the repair preserves the expert version's critical path length
// (maximal parallelism).
func TestRepairAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			st, err := bench.RunRepair(b, race.VariantMRW, b.RepairSize)
			if err != nil {
				t.Fatal(err)
			}
			if !st.OutputOK {
				t.Error("repaired output differs from serial elision")
			}
			if st.Races == 0 {
				t.Error("no races found to repair")
			}
			if st.Inserted == 0 {
				t.Error("no finishes inserted")
			}
			if st.WorkOriginal != st.WorkRepaired {
				t.Errorf("work changed: original %d, repaired %d", st.WorkOriginal, st.WorkRepaired)
			}
			slack := st.SpanOriginal + st.SpanOriginal/10
			if st.SpanRepaired > slack {
				t.Errorf("repair lost parallelism: span %d vs expert %d", st.SpanRepaired, st.SpanOriginal)
			}
			if len(st.Stages) == 0 {
				t.Error("no stage latency distributions in RepairStats")
			}
			for _, sl := range st.Stages {
				if sl.Count == 0 || sl.P95Ns < sl.P50Ns || sl.P99Ns < sl.P95Ns {
					t.Errorf("stage %s: bad quantiles %+v", sl.Stage, sl)
				}
			}
			t.Logf("races=%d inserted=%d iters=%d span: expert=%d repaired=%d (work %d)",
				st.Races, st.Inserted, st.Iterations, st.SpanOriginal, st.SpanRepaired, st.WorkOriginal)
		})
	}
}

// TestRepairSRWConverges: the SRW detector misses races per run but the
// iterated tool must still reach race freedom with the same semantics.
func TestRepairSRWConverges(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			st, err := bench.RunRepair(b, race.VariantSRW, b.RepairSize)
			if err != nil {
				t.Fatal(err)
			}
			if !st.OutputOK {
				t.Error("repaired output differs from serial elision")
			}
			t.Logf("SRW iterations=%d races(first)=%d", st.Iterations, st.Races)
		})
	}
}

// TestParallelExecutionMatches: the expert-written benchmarks must
// produce the serial elision's output when executed with real
// parallelism on the taskpar runtime.
func TestParallelExecutionMatches(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			src := b.Src(b.RepairSize)
			info, err := loadChecked(src)
			if err != nil {
				t.Fatal(err)
			}
			pres, err := parinterp.Run(info, parinterp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			einfo, err := loadChecked(src)
			if err != nil {
				t.Fatal(err)
			}
			ast.StripFinishes(einfo.Prog)
			einfo, err = sem.Check(einfo.Prog)
			if err != nil {
				t.Fatal(err)
			}
			eres, err := interp.Run(einfo, interp.Options{Mode: interp.Elide})
			if err != nil {
				t.Fatal(err)
			}
			if pres.Output != eres.Output {
				t.Errorf("parallel output %q != elision %q", pres.Output, eres.Output)
			}
		})
	}
}

// TestRepairedSourceRoundTrip: the repaired source re-parses, re-checks,
// and stays race-free at a different input size.
func TestRepairedSourceRoundTrip(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			otherSize := b.RepairSize + b.RepairSize/2
			if b.Name == "Nqueens" || b.Name == "FannKuch" {
				otherSize = b.RepairSize + 1
			}
			src, err := bench.RepairedSource(b, otherSize)
			if err != nil {
				t.Fatal(err)
			}
			info, err := loadChecked(src)
			if err != nil {
				t.Fatalf("repaired source invalid: %v\n%s", err, src)
			}
			_, det, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
			if err != nil {
				t.Fatal(err)
			}
			if n := len(det.Races()); n != 0 {
				t.Errorf("%d races at size %d in replayed repair", n, otherSize)
			}
		})
	}
}

func loadChecked(src string) (*sem.Info, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return sem.Check(prog)
}

// TestSourcesPrintStably: printing a parsed benchmark and re-parsing it
// yields the same printed form (printer fixpoint).
func TestSourcesPrintStably(t *testing.T) {
	for _, b := range bench.All() {
		prog := parser.MustParse(b.Src(b.RepairSize))
		p1 := printer.Print(prog)
		prog2, err := parser.Parse(p1)
		if err != nil {
			t.Fatalf("%s: reparse: %v", b.Name, err)
		}
		p2 := printer.Print(prog2)
		if p1 != p2 {
			t.Errorf("%s: printer not a fixpoint", b.Name)
		}
	}
}
