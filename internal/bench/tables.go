package bench

import (
	"fmt"
	"io"
	"time"

	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/printer"
	"finishrepair/internal/race"
	"finishrepair/internal/repair"
)

// RepairedSource repairs the benchmark on its repair-size input and
// replays the resulting finish insertions onto the program rendered at
// renderSize (the sources are structurally identical; only integer
// literals differ, so block coordinates transfer).
func RepairedSource(b *Benchmark, renderSize int) (string, error) {
	small, err := parser.Parse(b.Src(b.RepairSize))
	if err != nil {
		return "", err
	}
	ast.StripFinishes(small)
	rep, err := repair.Repair(small, repair.Options{Workers: workers})
	if err != nil {
		return "", fmt.Errorf("%s: %w", b.Name, err)
	}
	big, err := parser.Parse(b.Src(renderSize))
	if err != nil {
		return "", err
	}
	ast.StripFinishes(big)
	if err := repair.Replay(big, rep.Iterations); err != nil {
		return "", fmt.Errorf("%s: %w", b.Name, err)
	}
	return printer.Print(big), nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// PrintTable1 writes the benchmark roster (paper Table 1).
func PrintTable1(w io.Writer) {
	fmt.Fprintf(w, "Table 1: List of Benchmarks Evaluated\n")
	fmt.Fprintf(w, "%-10s %-14s %-55s %12s %12s\n", "Source", "Benchmark", "Description", "Repair", "Performance")
	for _, b := range All() {
		fmt.Fprintf(w, "%-10s %-14s %-55s %12d %12d\n", b.Suite, b.Name, b.Desc, b.RepairSize, b.PerfSize)
	}
}

// PrintTable2 runs repair mode (MRW) on every benchmark and writes the
// paper's Table 2: HJ-Seq time, detection time, S-DPST nodes, races,
// repair time.
func PrintTable2(w io.Writer) error {
	fmt.Fprintf(w, "Table 2: Time for Program Repair (input size: Repair)\n")
	fmt.Fprintf(w, "%-14s %12s %16s %14s %12s %12s %10s %8s\n",
		"Benchmark", "HJ-Seq (ms)", "Detection (ms)", "S-DPST Nodes", "Races", "Repair (s)", "DP states", "OK")
	for _, b := range All() {
		st, err := RunRepair(b, race.VariantMRW, b.RepairSize)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %12s %16s %14d %12d %12s %10d %8v\n",
			st.Name, ms(st.SeqTime), ms(st.DetectTime), st.SDPSTNodes, st.Races, secs(st.RepairTime), st.DPStates, st.OutputOK)
	}
	return nil
}

// PrintTable3 compares SRW and MRW repair end to end (paper Table 3):
// detection time, repair time, the second (confirming) detection for
// SRW, and totals.
func PrintTable3(w io.Writer) error {
	fmt.Fprintf(w, "Table 3: Comparison of SRW ESP-Bags and MRW ESP-Bags (input size: Repair)\n")
	fmt.Fprintf(w, "%-14s | %-25s | %-21s | %-12s | %-19s\n",
		"", "Detection (ms)", "Repair (s)", "2nd Det (ms)", "Total (s)")
	fmt.Fprintf(w, "%-14s | %12s %12s | %10s %10s | %12s | %9s %9s\n",
		"Benchmark", "SRW", "MRW", "SRW", "MRW", "SRW only", "SRW", "MRW")
	for _, b := range All() {
		srw, err := RunRepair(b, race.VariantSRW, b.RepairSize)
		if err != nil {
			return err
		}
		mrw, err := RunRepair(b, race.VariantMRW, b.RepairSize)
		if err != nil {
			return err
		}
		srwTotal := srw.DetectTime + srw.RepairTime + srw.SecondDetect
		mrwTotal := mrw.DetectTime + mrw.RepairTime
		fmt.Fprintf(w, "%-14s | %12s %12s | %10s %10s | %12s | %9s %9s\n",
			b.Name, ms(srw.DetectTime), ms(mrw.DetectTime),
			secs(srw.RepairTime), secs(mrw.RepairTime),
			ms(srw.SecondDetect), secs(srwTotal), secs(mrwTotal))
	}
	return nil
}

// PrintTable4 writes race counts per detector (paper Table 4).
func PrintTable4(w io.Writer) error {
	fmt.Fprintf(w, "Table 4: Number of data races detected (input size: Repair)\n")
	fmt.Fprintf(w, "%-14s %14s %14s\n", "Benchmark", "SRW ESP-Bags", "MRW ESP-Bags")
	for _, b := range All() {
		srw, mrw, err := RaceCounts(b, b.RepairSize)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %14d %14d\n", b.Name, srw, mrw)
	}
	return nil
}

// PrintFig16 measures sequential, original parallel, and repaired
// parallel execution times (paper Figure 16) at the given scale of the
// performance input (scale 100 = the full PerfSize).
func PrintFig16(w io.Writer, runs, scalePct int) error {
	if scalePct <= 0 {
		scalePct = 100
	}
	fmt.Fprintf(w, "Figure 16: Execution times (ms, mean of %d runs ± 95%%CI), performance input at %d%% scale\n", runs, scalePct)
	fmt.Fprintf(w, "Model columns: speedup bound min(P, T1/Tinf) on the paper's 12-core testbed,\n")
	fmt.Fprintf(w, "from the deterministic work/span metrics (host-core independent).\n")
	fmt.Fprintf(w, "%-14s %16s %18s %18s %10s %12s %12s %6s\n",
		"Benchmark", "Sequential", "Original Par", "Repaired Par", "Speedup", "Orig@12p", "Repair@12p", "OK")
	for _, b := range All() {
		ps, err := RunPerf(b, b.ScaledPerfSize(scalePct), runs)
		if err != nil {
			return err
		}
		speedup := float64(ps.Seq) / float64(ps.Repaired)
		fmt.Fprintf(w, "%-14s %10s±%-6s %12s±%-6s %12s±%-6s %9.2fx %11.2fx %11.2fx %6v\n",
			b.Name, ms(ps.Seq), ms(ps.SeqCI), ms(ps.Orig), ms(ps.OrigCI),
			ms(ps.Repaired), ms(ps.RepCI), speedup, ps.OrigModel, ps.RepairModel, ps.OutputOK)
	}
	return nil
}
