// Package bench contains the paper's twelve benchmarks (Table 1) written
// in HJ-lite, plus the harness that regenerates every table and figure of
// the evaluation (§7).
//
// Each benchmark is the expert-written, fully synchronized program. The
// evaluation strips all finish statements to obtain the buggy version
// (§7.1), repairs it, and compares race counts, repair times, and the
// performance of sequential, original-parallel, and repaired-parallel
// versions.
//
// Substitutions versus the paper's exact codes are documented in
// DESIGN.md: Crypt uses an XTEA-style Feistel cipher instead of IDEA;
// Spanning Tree uses a level-synchronous claim/merge BFS instead of the
// atomic-based pseudo-DFS; inputs are scaled for an interpreter.
package bench

import "fmt"

// Benchmark describes one Table-1 entry.
type Benchmark struct {
	Name  string
	Suite string
	Desc  string
	// Src renders the expert-written program for the given size knob.
	Src func(size int) string
	// RepairSize and PerfSize are the input sizes used for repair mode
	// and for performance evaluation (Table 1 columns 4 and 5).
	RepairSize int
	PerfSize   int
	// Exponential marks benchmarks whose cost is exponential in the size
	// knob (Fibonacci, Nqueens, FannKuch); percentage scaling converts
	// to subtracting from the knob instead.
	Exponential bool
}

// ScaledPerfSize maps a percentage scale to an input size, respecting
// exponential-cost knobs.
func (b *Benchmark) ScaledPerfSize(scalePct int) int {
	if scalePct >= 100 || scalePct <= 0 {
		return b.PerfSize
	}
	if b.Exponential {
		s := b.PerfSize + (scalePct-100)/25 // -1 knob per 25% reduction
		if s < 4 {
			s = 4
		}
		return s
	}
	s := b.PerfSize * scalePct / 100
	if s < 1 {
		s = 1
	}
	return s
}

// All returns the twelve benchmarks in Table-1 order.
func All() []*Benchmark {
	return []*Benchmark{
		{Name: "Fibonacci", Suite: "HJ Bench", Desc: "Compute nth Fibonacci number",
			Src: fibSrc, RepairSize: 16, PerfSize: 26, Exponential: true},
		{Name: "Quicksort", Suite: "HJ Bench", Desc: "Quicksort",
			Src: quicksortSrc, RepairSize: 1000, PerfSize: 120000},
		{Name: "Mergesort", Suite: "HJ Bench", Desc: "Mergesort",
			Src: mergesortSrc, RepairSize: 1000, PerfSize: 120000},
		{Name: "Spanning Tree", Suite: "HJ Bench", Desc: "Spanning tree of an undirected graph",
			Src: spanningTreeSrc, RepairSize: 200, PerfSize: 20000},
		{Name: "Nqueens", Suite: "BOTS", Desc: "N Queens problem",
			Src: nqueensSrc, RepairSize: 6, PerfSize: 9, Exponential: true},
		{Name: "Series", Suite: "JGF", Desc: "Fourier coefficient analysis",
			Src: seriesSrc, RepairSize: 25, PerfSize: 600},
		{Name: "SOR", Suite: "JGF", Desc: "Successive over-relaxation",
			Src: sorSrc, RepairSize: 100, PerfSize: 500},
		{Name: "Crypt", Suite: "JGF", Desc: "Feistel block cipher encryption (IDEA stand-in)",
			Src: cryptSrc, RepairSize: 3000, PerfSize: 400000},
		{Name: "Sparse", Suite: "JGF", Desc: "Sparse matrix multiplication",
			Src: sparseSrc, RepairSize: 100, PerfSize: 40000},
		{Name: "LUFact", Suite: "JGF", Desc: "LU factorization",
			Src: lufactSrc, RepairSize: 25, PerfSize: 140},
		{Name: "FannKuch", Suite: "Shootout", Desc: "Indexed access to tiny integer sequence",
			Src: fannkuchSrc, RepairSize: 6, PerfSize: 9, Exponential: true},
		{Name: "Mandelbrot", Suite: "Shootout", Desc: "Mandelbrot set escape-time counts",
			Src: mandelbrotSrc, RepairSize: 50, PerfSize: 500},
	}
}

// Get returns the benchmark with the given name, or nil.
func Get(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// nchunk is the task granularity of the loop-parallel benchmarks
// (chunked parallelism like the JGF codes, not one task per element).
const nchunk = 8

func fibSrc(n int) string {
	return fmt.Sprintf(`
// Fibonacci (HJ Bench): recursive task parallelism, paper Figures 8/15.
func fib(ret []int, n int) {
    if (n < 2) {
        ret[0] = n;
        return;
    }
    var x = make([]int, 1);
    var y = make([]int, 1);
    finish {
        async fib(x, n - 1);
        async fib(y, n - 2);
    }
    ret[0] = x[0] + y[0];
}

func main() {
    var result = make([]int, 1);
    finish {
        async fib(result, %d);
    }
    println(result[0]);
}
`, n)
}

func quicksortSrc(n int) string {
	return fmt.Sprintf(`
// Quicksort (HJ Bench): the paper's Figure 2 — the correct placement is
// a finish around the top-level call, not around the recursive asyncs.
func partition(a []int, lo int, hi int, out []int) {
    var p = a[(lo + hi) / 2];
    var i = lo;
    var j = hi;
    while (i <= j) {
        while (a[i] < p) { i = i + 1; }
        while (a[j] > p) { j = j - 1; }
        if (i <= j) {
            var t = a[i];
            a[i] = a[j];
            a[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    out[0] = i;
    out[1] = j;
}

func quicksort(a []int, m int, n int) {
    if (m < n) {
        var ij = make([]int, 2);
        partition(a, m, n, ij);
        async quicksort(a, m, ij[1]);
        async quicksort(a, ij[0], n);
    }
}

func main() {
    var size = %d;
    var a = make([]int, size);
    var st = make([]int, 1);
    st[0] = 12345;
    for (var i = 0; i < size; i = i + 1) {
        st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
        a[i] = st[0] %% 100000;
    }
    finish {
        quicksort(a, 0, size - 1);
    }
    var ok = 1;
    var sum = 0;
    for (var i = 0; i < size; i = i + 1) {
        if (i > 0 && a[i - 1] > a[i]) { ok = 0; }
        sum = (sum + a[i] * (i %% 97 + 1)) %% 1000000007;
    }
    println(ok, sum);
}
`, n)
}

func mergesortSrc(n int) string {
	return fmt.Sprintf(`
// Mergesort (HJ Bench): paper Figure 1 — finish around the two
// recursive asyncs, before merge.
func mergesort(a []int, tmp []int, m int, n int) {
    if (m < n) {
        var mid = m + (n - m) / 2;
        finish {
            async mergesort(a, tmp, m, mid);
            async mergesort(a, tmp, mid + 1, n);
        }
        merge(a, tmp, m, mid, n);
    }
}

func merge(a []int, tmp []int, m int, mid int, n int) {
    var i = m;
    var j = mid + 1;
    var k = m;
    while (i <= mid && j <= n) {
        if (a[i] <= a[j]) {
            tmp[k] = a[i];
            i = i + 1;
        } else {
            tmp[k] = a[j];
            j = j + 1;
        }
        k = k + 1;
    }
    while (i <= mid) { tmp[k] = a[i]; i = i + 1; k = k + 1; }
    while (j <= n)   { tmp[k] = a[j]; j = j + 1; k = k + 1; }
    for (var t = m; t <= n; t = t + 1) { a[t] = tmp[t]; }
}

func main() {
    var size = %d;
    var a = make([]int, size);
    var tmp = make([]int, size);
    var st = make([]int, 1);
    st[0] = 98765;
    for (var i = 0; i < size; i = i + 1) {
        st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
        a[i] = st[0] %% 100000;
    }
    mergesort(a, tmp, 0, size - 1);
    var ok = 1;
    var sum = 0;
    for (var i = 0; i < size; i = i + 1) {
        if (i > 0 && a[i - 1] > a[i]) { ok = 0; }
        sum = (sum + a[i] * (i %% 97 + 1)) %% 1000000007;
    }
    println(ok, sum);
}
`, n)
}

func spanningTreeSrc(n int) string {
	return fmt.Sprintf(`
// Spanning Tree (HJ Bench stand-in): level-synchronous BFS with a
// two-phase claim/merge per level. Phase 1 (parallel over vertex
// chunks): every unvisited vertex scans its neighbors for one visited
// in the previous level and claims it as parent. Phase 2 (sequential
// merge): claimed vertices join the frontier. The finish between the
// phases is what the repair tool must restore.
func phase(adjStart []int, adj []int, level []int, parent []int, claimed []int, lo int, hi int, k int) {
    for (var v = lo; v < hi; v = v + 1) {
        if (parent[v] == -1) {
            var s = adjStart[v];
            var e = adjStart[v + 1];
            for (var x = s; x < e; x = x + 1) {
                var u = adj[x];
                if (level[u] == k - 1 && claimed[v] == 0) {
                    parent[v] = u;
                    claimed[v] = 1;
                }
            }
        }
    }
}

func main() {
    var n = %d;
    var deg = 4;
    var st = make([]int, 1);
    st[0] = 555;

    // Random connected graph: a random tree plus deg-1 extra edges per
    // vertex, in edge-list form, then converted to CSR.
    var maxEdges = n * deg * 2;
    var eu = make([]int, maxEdges);
    var ev = make([]int, maxEdges);
    var ne = 0;
    for (var v = 1; v < n; v = v + 1) {
        st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
        var u = st[0] %% v;
        eu[ne] = u; ev[ne] = v; ne = ne + 1;
        for (var d = 1; d < deg; d = d + 1) {
            st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
            var w = st[0] %% n;
            if (w != v) {
                eu[ne] = w; ev[ne] = v; ne = ne + 1;
            }
        }
    }
    var adjStart = make([]int, n + 1);
    var degCount = make([]int, n);
    for (var i = 0; i < ne; i = i + 1) {
        degCount[eu[i]] = degCount[eu[i]] + 1;
        degCount[ev[i]] = degCount[ev[i]] + 1;
    }
    for (var v = 0; v < n; v = v + 1) {
        adjStart[v + 1] = adjStart[v] + degCount[v];
    }
    var adj = make([]int, adjStart[n]);
    var fill = make([]int, n);
    for (var i = 0; i < ne; i = i + 1) {
        var a = eu[i];
        var b = ev[i];
        adj[adjStart[a] + fill[a]] = b; fill[a] = fill[a] + 1;
        adj[adjStart[b] + fill[b]] = a; fill[b] = fill[b] + 1;
    }

    var parent = make([]int, n);
    var level = make([]int, n);
    var claimed = make([]int, n);
    for (var v = 0; v < n; v = v + 1) { parent[v] = -1; level[v] = -1; }
    parent[0] = 0;
    level[0] = 0;

    var visited = 1;
    var k = 1;
    var progress = 1;
    var chunk = (n + %d - 1) / %d;
    while (progress > 0) {
        finish {
            for (var c = 0; c < n; c = c + chunk) {
                var lo = c;
                var hi = c + chunk;
                if (hi > n) { hi = n; }
                async phase(adjStart, adj, level, parent, claimed, lo, hi, k);
            }
        }
        progress = 0;
        for (var v = 0; v < n; v = v + 1) {
            if (claimed[v] == 1) {
                claimed[v] = 0;
                level[v] = k;
                visited = visited + 1;
                progress = progress + 1;
            }
        }
        k = k + 1;
    }

    var sum = 0;
    for (var v = 0; v < n; v = v + 1) {
        sum = (sum + parent[v] + level[v] * 7) %% 1000000007;
    }
    println(visited, sum);
}
`, n, nchunk, nchunk)
}

func nqueensSrc(n int) string {
	return fmt.Sprintf(`
// Nqueens (BOTS): count solutions; tasks fan out over the first rows
// with copied boards, each writing a private result slot summed after
// the finish.
func safe(board []int, row int, c int) bool {
    for (var r = 0; r < row; r = r + 1) {
        if (board[r] == c) { return false; }
        if (board[r] - r == c - row) { return false; }
        if (board[r] + r == c + row) { return false; }
    }
    return true;
}

func nqSeq(n int, row int, board []int) int {
    if (row == n) { return 1; }
    var total = 0;
    for (var c = 0; c < n; c = c + 1) {
        if (safe(board, row, c)) {
            board[row] = c;
            total = total + nqSeq(n, row + 1, board);
        }
    }
    return total;
}

func nqPar(n int, row int, cutoff int, board []int, out []int, slot int) {
    if (row == n) { out[slot] = 1; return; }
    if (row >= cutoff) { out[slot] = nqSeq(n, row, board); return; }
    var results = make([]int, n);
    finish {
        for (var c = 0; c < n; c = c + 1) {
            if (safe(board, row, c)) {
                var nb = make([]int, n);
                for (var i = 0; i < row; i = i + 1) { nb[i] = board[i]; }
                nb[row] = c;
                async nqPar(n, row + 1, cutoff, nb, results, c);
            }
        }
    }
    var t = 0;
    for (var c = 0; c < n; c = c + 1) { t = t + results[c]; }
    out[slot] = t;
}

func main() {
    var n = %d;
    var board = make([]int, n);
    var out = make([]int, 1);
    nqPar(n, 0, 2, board, out, 0);
    println(out[0]);
}
`, n)
}

func seriesSrc(rows int) string {
	return fmt.Sprintf(`
// Series (JGF): first Fourier coefficients of (x+1)^x on [0,2] by
// trapezoid integration; coefficient pairs are computed in parallel
// chunks into disjoint array slots.
func thefunction(x float, omegan float, sel int) float {
    if (sel == 0) { return pow(x + 1.0, x); }
    if (sel == 1) { return pow(x + 1.0, x) * cos(omegan * x); }
    return pow(x + 1.0, x) * sin(omegan * x);
}

func trapezoid(nsteps int, omegan float, sel int) float {
    var x = 0.0;
    var dx = 2.0 / float(nsteps);
    var rvalue = thefunction(0.0, omegan, sel) / 2.0;
    for (var i = 1; i < nsteps; i = i + 1) {
        x = x + dx;
        rvalue = rvalue + thefunction(x, omegan, sel);
    }
    rvalue = (rvalue + thefunction(2.0, omegan, sel) / 2.0) * dx;
    return rvalue;
}

func chunkWork(ac []float, as []float, lo int, hi int, nsteps int) {
    var pi = 3.141592653589793;
    for (var j = lo; j < hi; j = j + 1) {
        if (j == 0) {
            ac[0] = trapezoid(nsteps, 0.0, 0) / 2.0;
            as[0] = 0.0;
        } else {
            var omegan = float(j) * pi;
            ac[j] = trapezoid(nsteps, omegan, 1);
            as[j] = trapezoid(nsteps, omegan, 2);
        }
    }
}

func main() {
    var rows = %d;
    var nsteps = 200;
    var ac = make([]float, rows);
    var as = make([]float, rows);
    var chunk = (rows + %d - 1) / %d;
    finish {
        for (var c = 0; c < rows; c = c + chunk) {
            var lo = c;
            var hi = c + chunk;
            if (hi > rows) { hi = rows; }
            async chunkWork(ac, as, lo, hi, nsteps);
        }
    }
    var sum = 0.0;
    for (var j = 0; j < rows; j = j + 1) {
        sum = sum + ac[j] + as[j];
    }
    println(int(sum * 1000000.0));
}
`, rows, nchunk, nchunk)
}

func sorSrc(size int) string {
	iters := 2
	if size <= 100 {
		iters = 1
	}
	return fmt.Sprintf(`
// SOR (JGF): red-black successive over-relaxation; within a color the
// writes are disjoint and the reads touch only the other color, so each
// half-sweep is a finish scope of row-chunk tasks.
func sweep(g [][]float, m int, n int, omega float, color int, lo int, hi int) {
    var of = omega / 4.0;
    var om = 1.0 - omega;
    for (var i = lo; i < hi; i = i + 1) {
        if (i >= 1 && i < m - 1) {
            var gi = g[i];
            var gim = g[i - 1];
            var gip = g[i + 1];
            for (var j = 1 + (i + color) %% 2; j < n - 1; j = j + 2) {
                gi[j] = of * (gim[j] + gip[j] + gi[j - 1] + gi[j + 1]) + om * gi[j];
            }
        }
    }
}

func main() {
    var m = %d;
    var n = m;
    var iters = %d;
    var omega = 1.25;
    var g = make([][]float, m);
    var st = make([]int, 1);
    st[0] = 31415;
    for (var i = 0; i < m; i = i + 1) {
        var row = make([]float, n);
        for (var j = 0; j < n; j = j + 1) {
            st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
            row[j] = float(st[0] %% 1000) / 1000.0;
        }
        g[i] = row;
    }
    var chunk = (m + %d - 1) / %d;
    for (var it = 0; it < iters; it = it + 1) {
        for (var color = 0; color < 2; color = color + 1) {
            finish {
                for (var c = 0; c < m; c = c + chunk) {
                    var lo = c;
                    var hi = c + chunk;
                    if (hi > m) { hi = m; }
                    async sweep(g, m, n, omega, color, lo, hi);
                }
            }
        }
    }
    var sum = 0.0;
    for (var i = 0; i < m; i = i + 1) {
        for (var j = 0; j < n; j = j + 1) {
            sum = sum + g[i][j];
        }
    }
    println(int(sum * 1000.0));
}
`, size, iters, nchunk, nchunk)
}

func cryptSrc(n int) string {
	return fmt.Sprintf(`
// Crypt (JGF stand-in): XTEA-style 64-bit Feistel block cipher over a
// random buffer — encrypt in parallel chunks, decrypt in parallel
// chunks, then verify the round trip. Arithmetic is masked to 32 bits.
func encryptRange(src []int, dst []int, k []int, lo int, hi int) {
    var mask = 4294967295;
    var delta = 2654435769;
    for (var b = lo; b < hi; b = b + 1) {
        var v0 = src[2 * b];
        var v1 = src[2 * b + 1];
        var sum = 0;
        for (var r = 0; r < 8; r = r + 1) {
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k[sum & 3]))) & mask;
            sum = (sum + delta) & mask;
            v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + k[(sum >> 11) & 3]))) & mask;
        }
        dst[2 * b] = v0;
        dst[2 * b + 1] = v1;
    }
}

func decryptRange(src []int, dst []int, k []int, lo int, hi int) {
    var mask = 4294967295;
    var delta = 2654435769;
    for (var b = lo; b < hi; b = b + 1) {
        var v0 = src[2 * b];
        var v1 = src[2 * b + 1];
        var sum = (delta * 8) & mask;
        for (var r = 0; r < 8; r = r + 1) {
            v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + k[(sum >> 11) & 3]))) & mask;
            sum = (sum - delta) & mask;
            v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k[sum & 3]))) & mask;
        }
        dst[2 * b] = v0;
        dst[2 * b + 1] = v1;
    }
}

func main() {
    var nblocks = %d / 8;
    var plain = make([]int, 2 * nblocks);
    var cipher = make([]int, 2 * nblocks);
    var back = make([]int, 2 * nblocks);
    var k = make([]int, 4);
    k[0] = 305419896; k[1] = 2596069104; k[2] = 19088743; k[3] = 4275878552;
    var st = make([]int, 1);
    st[0] = 777;
    for (var i = 0; i < 2 * nblocks; i = i + 1) {
        st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
        plain[i] = st[0];
    }
    var chunk = (nblocks + %d - 1) / %d;
    finish {
        for (var c = 0; c < nblocks; c = c + chunk) {
            var lo = c;
            var hi = c + chunk;
            if (hi > nblocks) { hi = nblocks; }
            async encryptRange(plain, cipher, k, lo, hi);
        }
    }
    finish {
        for (var c = 0; c < nblocks; c = c + chunk) {
            var lo = c;
            var hi = c + chunk;
            if (hi > nblocks) { hi = nblocks; }
            async decryptRange(cipher, back, k, lo, hi);
        }
    }
    var ok = 1;
    var sum = 0;
    for (var i = 0; i < 2 * nblocks; i = i + 1) {
        if (back[i] != plain[i]) { ok = 0; }
        sum = (sum + cipher[i]) %% 1000000007;
    }
    println(ok, sum);
}
`, n, nchunk, nchunk)
}

func sparseSrc(n int) string {
	return fmt.Sprintf(`
// Sparse (JGF): CSR sparse matrix-vector product y = A*x iterated; each
// iteration computes row chunks in parallel, then x is refreshed from y
// sequentially.
func spmv(rowStart []int, col []int, val []float, x []float, y []float, lo int, hi int) {
    for (var r = lo; r < hi; r = r + 1) {
        var acc = 0.0;
        for (var k = rowStart[r]; k < rowStart[r + 1]; k = k + 1) {
            acc = acc + val[k] * x[col[k]];
        }
        y[r] = acc;
    }
}

func main() {
    var n = %d;
    var nzPerRow = 5;
    var nnz = n * nzPerRow;
    var rowStart = make([]int, n + 1);
    var col = make([]int, nnz);
    var val = make([]float, nnz);
    var st = make([]int, 1);
    st[0] = 424242;
    for (var r = 0; r < n; r = r + 1) {
        rowStart[r + 1] = rowStart[r] + nzPerRow;
        for (var q = 0; q < nzPerRow; q = q + 1) {
            st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
            col[rowStart[r] + q] = st[0] %% n;
            st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
            val[rowStart[r] + q] = float(st[0] %% 1000) / 1000.0 - 0.5;
        }
    }
    var x = make([]float, n);
    var y = make([]float, n);
    for (var i = 0; i < n; i = i + 1) { x[i] = 1.0; }

    var iters = 5;
    var chunk = (n + %d - 1) / %d;
    for (var it = 0; it < iters; it = it + 1) {
        finish {
            for (var c = 0; c < n; c = c + chunk) {
                var lo = c;
                var hi = c + chunk;
                if (hi > n) { hi = n; }
                async spmv(rowStart, col, val, x, y, lo, hi);
            }
        }
        for (var i = 0; i < n; i = i + 1) {
            x[i] = y[i] * 0.5 + 0.25;
        }
    }
    var sum = 0.0;
    for (var i = 0; i < n; i = i + 1) { sum = sum + x[i]; }
    println(int(sum * 1000.0));
}
`, n, nchunk, nchunk)
}

func lufactSrc(n int) string {
	return fmt.Sprintf(`
// LUFact (JGF): in-place LU factorization with partial pivoting; for
// each pivot column the trailing-row updates run as parallel chunk
// tasks (the pivot row is read-only during the update).
func update(a [][]float, k int, n int, lo int, hi int) {
    var pivotRow = a[k];
    for (var i = lo; i < hi; i = i + 1) {
        var row = a[i];
        var factor = row[k] / pivotRow[k];
        row[k] = factor;
        for (var j = k + 1; j < n; j = j + 1) {
            row[j] = row[j] - factor * pivotRow[j];
        }
    }
}

func main() {
    var n = %d;
    var a = make([][]float, n);
    var st = make([]int, 1);
    st[0] = 1357;
    for (var i = 0; i < n; i = i + 1) {
        var row = make([]float, n);
        for (var j = 0; j < n; j = j + 1) {
            st[0] = (st[0] * 1103515245 + 12345) %% 2147483648;
            row[j] = float(st[0] %% 2000) / 1000.0 - 1.0;
            if (i == j) { row[j] = row[j] + float(n); }
        }
        a[i] = row;
    }

    for (var k = 0; k < n - 1; k = k + 1) {
        // Partial pivoting (sequential).
        var best = k;
        for (var i = k + 1; i < n; i = i + 1) {
            if (abs(a[i][k]) > abs(a[best][k])) { best = i; }
        }
        if (best != k) {
            var t = a[k];
            a[k] = a[best];
            a[best] = t;
        }
        var rows = n - (k + 1);
        var chunk = (rows + %d - 1) / %d;
        if (chunk < 1) { chunk = 1; }
        finish {
            for (var c = k + 1; c < n; c = c + chunk) {
                var lo = c;
                var hi = c + chunk;
                if (hi > n) { hi = n; }
                async update(a, k, n, lo, hi);
            }
        }
    }

    var det = 1.0;
    for (var i = 0; i < n; i = i + 1) { det = det * a[i][i]; }
    var sum = 0.0;
    for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < n; j = j + 1) { sum = sum + a[i][j]; }
    }
    println(int(log(abs(det)) * 1000.0), int(sum * 100.0));
}
`, n, nchunk, nchunk)
}

func fannkuchSrc(n int) string {
	return fmt.Sprintf(`
// FannKuch (Shootout): maximum pancake-flip count over all permutations
// of 0..n-1; one task per first element, each exploring its suffix
// permutations recursively into a private maximum slot.
func countFlips(p []int, n int) int {
    var q = make([]int, n);
    for (var i = 0; i < n; i = i + 1) { q[i] = p[i]; }
    var flips = 0;
    while (q[0] != 0) {
        var f = q[0];
        var i = 0;
        var j = f;
        while (i < j) {
            var t = q[i];
            q[i] = q[j];
            q[j] = t;
            i = i + 1;
            j = j - 1;
        }
        flips = flips + 1;
    }
    return flips;
}

func permRec(p []int, pos int, n int, best []int, slot int) {
    if (pos == n) {
        var f = countFlips(p, n);
        if (f > best[slot]) { best[slot] = f; }
        return;
    }
    for (var i = pos; i < n; i = i + 1) {
        var t = p[pos];
        p[pos] = p[i];
        p[i] = t;
        permRec(p, pos + 1, n, best, slot);
        t = p[pos];
        p[pos] = p[i];
        p[i] = t;
    }
}

func startTask(n int, c int, best []int) {
    var p = make([]int, n);
    p[0] = c;
    var w = 1;
    for (var v = 0; v < n; v = v + 1) {
        if (v != c) {
            p[w] = v;
            w = w + 1;
        }
    }
    permRec(p, 1, n, best, c);
}

func main() {
    var n = %d;
    var best = make([]int, n);
    finish {
        for (var c = 0; c < n; c = c + 1) {
            async startTask(n, c, best);
        }
    }
    var m = 0;
    for (var c = 0; c < n; c = c + 1) {
        if (best[c] > m) { m = best[c]; }
    }
    println(m);
}
`, n)
}

func mandelbrotSrc(size int) string {
	return fmt.Sprintf(`
// Mandelbrot (Shootout): escape-time iteration counts over a size x size
// grid; rows are computed in parallel chunks into disjoint slots, then
// summed into a checksum.
func row(counts []int, size int, y int, maxIter int) {
    var ci = 2.0 * float(y) / float(size) - 1.0;
    for (var x = 0; x < size; x = x + 1) {
        var cr = 2.0 * float(x) / float(size) - 1.5;
        var zr = 0.0;
        var zi = 0.0;
        var it = 0;
        var live = 1;
        while (live == 1 && it < maxIter) {
            var nzr = zr * zr - zi * zi + cr;
            var nzi = 2.0 * zr * zi + ci;
            zr = nzr;
            zi = nzi;
            if (zr * zr + zi * zi > 4.0) { live = 0; }
            it = it + 1;
        }
        counts[y * size + x] = it;
    }
}

func rows(counts []int, size int, lo int, hi int, maxIter int) {
    for (var y = lo; y < hi; y = y + 1) {
        row(counts, size, y, maxIter);
    }
}

func main() {
    var size = %d;
    var maxIter = 50;
    var counts = make([]int, size * size);
    var chunk = (size + %d - 1) / %d;
    finish {
        for (var c = 0; c < size; c = c + chunk) {
            var lo = c;
            var hi = c + chunk;
            if (hi > size) { hi = size; }
            async rows(counts, size, lo, hi, maxIter);
        }
    }
    var sum = 0;
    for (var i = 0; i < size * size; i = i + 1) {
        sum = (sum + counts[i]) %% 1000000007;
    }
    println(sum);
}
`, size, nchunk, nchunk)
}
