package bench_test

import (
	"strings"
	"testing"

	"finishrepair/internal/bench"
)

func TestPrintTable1ListsAllBenchmarks(t *testing.T) {
	var sb strings.Builder
	bench.PrintTable1(&sb)
	out := sb.String()
	for _, b := range bench.All() {
		if !strings.Contains(out, b.Name) {
			t.Errorf("table 1 missing %s", b.Name)
		}
	}
	if len(bench.All()) != 12 {
		t.Fatalf("expected 12 benchmarks, got %d", len(bench.All()))
	}
}

func TestScaledPerfSize(t *testing.T) {
	fib := bench.Get("Fibonacci")
	if got := fib.ScaledPerfSize(100); got != fib.PerfSize {
		t.Errorf("full scale = %d, want %d", got, fib.PerfSize)
	}
	if got := fib.ScaledPerfSize(50); got != fib.PerfSize-2 {
		t.Errorf("50%% exponential scale = %d, want knob-2", got)
	}
	qs := bench.Get("Quicksort")
	if got := qs.ScaledPerfSize(25); got != qs.PerfSize/4 {
		t.Errorf("25%% linear scale = %d, want %d", got, qs.PerfSize/4)
	}
	if got := qs.ScaledPerfSize(0); got != qs.PerfSize {
		t.Errorf("scale 0 should mean full size, got %d", got)
	}
}

func TestRunPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is slow")
	}
	b := bench.Get("Fibonacci")
	ps, err := bench.RunPerf(b, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.OutputOK {
		t.Error("outputs diverged across execution modes")
	}
	if ps.Seq <= 0 || ps.Orig <= 0 || ps.Repaired <= 0 {
		t.Errorf("non-positive timings: %+v", ps)
	}
	if ps.OrigModel <= 0 || ps.RepairModel <= 0 {
		t.Errorf("missing model speedups: %+v", ps)
	}
}

// The ablation must show that collapsing never loses races entirely and
// always shrinks the tree.
func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	for _, name := range []string{"Quicksort", "SOR"} {
		st, err := bench.RunAblation(bench.Get(name))
		if err != nil {
			t.Fatal(err)
		}
		if st.NodesGC >= st.NodesFull {
			t.Errorf("%s: collapsing did not shrink the tree (%d -> %d)", name, st.NodesFull, st.NodesGC)
		}
		if st.RacesGC == 0 || st.RacesFull == 0 {
			t.Errorf("%s: lost all races (%d/%d)", name, st.RacesFull, st.RacesGC)
		}
		if st.MaxGraphGC > st.MaxGraphFull {
			t.Errorf("%s: collapsing grew the dependence graph (%d -> %d)", name, st.MaxGraphFull, st.MaxGraphGC)
		}
	}
}
