package guard_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"finishrepair/internal/guard"
)

func TestNilMeterIsUnlimited(t *testing.T) {
	var m *guard.Meter
	if err := m.AddOps(1 << 50); err != nil {
		t.Fatalf("nil meter AddOps: %v", err)
	}
	if err := m.AddDPStates(1 << 50); err != nil {
		t.Fatalf("nil meter AddDPStates: %v", err)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("nil meter Check: %v", err)
	}
	if got := m.OpLimit(); got != guard.DefaultOpLimit {
		t.Fatalf("nil meter OpLimit = %d, want default %d", got, guard.DefaultOpLimit)
	}
	if got := m.Iterations(); got != guard.DefaultMaxIterations {
		t.Fatalf("nil meter Iterations = %d, want %d", got, guard.DefaultMaxIterations)
	}
	m.SetPhase("x") // must not panic
	m.Lift(guard.ResourceDeadline)
}

func TestOpBudgetTripsWithTypedError(t *testing.T) {
	m := guard.NewMeter(nil, guard.Budget{OpLimit: 100})
	m.SetPhase("detect")
	if err := m.AddOps(100); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := m.AddOps(1)
	var be *guard.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetExceededError", err)
	}
	if be.Resource != guard.ResourceOps || be.Phase != "detect" || be.Limit != 100 {
		t.Fatalf("bad error fields: %+v", be)
	}
	if !strings.Contains(err.Error(), "op budget exhausted") {
		t.Errorf("ops message %q lost the historical phrasing", err)
	}
}

func TestDPStateBudgetTrips(t *testing.T) {
	m := guard.NewMeter(nil, guard.Budget{MaxDPStates: 10})
	if err := m.AddDPStates(10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := m.AddDPStates(1)
	var be *guard.BudgetExceededError
	if !errors.As(err, &be) || be.Resource != guard.ResourceDPStates {
		t.Fatalf("err = %v, want dp-states BudgetExceededError", err)
	}
}

func TestCancellationSurfacesErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := guard.NewMeter(ctx, guard.Budget{})
	m.SetPhase("dp-place")
	if err := m.Check(); err != nil {
		t.Fatalf("premature cancel: %v", err)
	}
	cancel()
	err := m.Check()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v should also unwrap to context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "dp-place") {
		t.Errorf("canceled error %q missing phase", err)
	}
}

func TestTimeoutBecomesDeadlineBudgetError(t *testing.T) {
	m := guard.NewMeter(nil, guard.Budget{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := m.Check()
	var be *guard.BudgetExceededError
	if !errors.As(err, &be) || be.Resource != guard.ResourceDeadline {
		t.Fatalf("err = %v, want deadline BudgetExceededError", err)
	}
	// Lifting the deadline disarms further trips.
	m.Lift(guard.ResourceDeadline)
	if err := m.Check(); err != nil {
		t.Fatalf("after Lift: %v", err)
	}
}

func TestContextDeadlineReportsAsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	m := guard.NewMeter(ctx, guard.Budget{})
	err := m.Check()
	var be *guard.BudgetExceededError
	if !errors.As(err, &be) || be.Resource != guard.ResourceDeadline {
		t.Fatalf("err = %v, want deadline BudgetExceededError from ctx deadline", err)
	}
}

func TestPeriodicCheckObservesCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := guard.NewMeter(ctx, guard.Budget{})
	// Small batches must still observe cancellation within one check
	// interval's worth of ops.
	var err error
	for i := 0; i < 4096 && err == nil; i++ {
		err = m.AddOps(1)
	}
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("cancellation not observed within a check interval: %v", err)
	}
}

func TestProtectConvertsPanicToInternalError(t *testing.T) {
	err := guard.Protect("rewrite", func() error {
		var s []int
		_ = s[3] // index out of range
		return nil
	})
	var ie *guard.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want InternalError", err)
	}
	if ie.Phase != "rewrite" || !strings.Contains(ie.Stack, "guard_test") {
		t.Fatalf("InternalError missing phase/stack: phase=%q stackLen=%d", ie.Phase, len(ie.Stack))
	}
}

func TestProtectUnwrapsBail(t *testing.T) {
	want := &guard.BudgetExceededError{Resource: guard.ResourceOps, Phase: "detect", Limit: 1, Used: 2}
	err := guard.Protect("detect", func() error {
		panic(guard.Bail{Err: want})
	})
	var be *guard.BudgetExceededError
	if !errors.As(err, &be) || be != want {
		t.Fatalf("err = %v, want the bailed error verbatim", err)
	}
}

func TestProtectPassesThroughReturnedError(t *testing.T) {
	want := errors.New("plain")
	if err := guard.Protect("p", func() error { return want }); err != want {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if err := guard.Protect("p", func() error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestInternalErrorUnwrapsPanickedError(t *testing.T) {
	inner := fmt.Errorf("inner cause")
	err := guard.Protect("parse", func() error { panic(inner) })
	if !errors.Is(err, inner) {
		t.Fatalf("InternalError should unwrap to the panicked error; got %v", err)
	}
}

func TestIsBudgetOrCanceled(t *testing.T) {
	if !guard.IsBudgetOrCanceled(&guard.BudgetExceededError{Resource: guard.ResourceOps}) {
		t.Error("budget error not recognized")
	}
	if !guard.IsBudgetOrCanceled(fmt.Errorf("wrap: %w", guard.ErrCanceled)) {
		t.Error("wrapped ErrCanceled not recognized")
	}
	if guard.IsBudgetOrCanceled(errors.New("other")) {
		t.Error("unrelated error recognized")
	}
}
