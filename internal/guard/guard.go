// Package guard is the fault-tolerance core of the repair pipeline:
// resource budgets, cooperative cancellation, and panic containment.
//
// Every pipeline phase (parse, detect, dp-place, rewrite, the
// interpreters) threads a shared *Meter through its hot loops and calls
// the nil-safe Add*/Check methods; when a limit trips or the caller's
// context is canceled, the phase unwinds with a typed error instead of
// running away or crashing:
//
//   - *BudgetExceededError — a Budget resource (wall-clock deadline,
//     interpreter ops, DP states, S-DPST nodes) ran out;
//   - ErrCanceled (wrapped by *CanceledError) — the caller's context was
//     canceled;
//   - *InternalError — a panic escaped a phase; Protect converts it to a
//     value carrying the phase name and stack so no panic crosses the
//     public tdr API.
//
// The package is a leaf: everything above it (tdr, internal/repair,
// internal/interp, internal/parinterp, taskpar) imports it, and the tdr
// facade re-exports the types by alias so callers outside the module see
// them as tdr.Budget, tdr.BudgetExceededError, and so on.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"finishrepair/internal/obs"
)

// Failure-rate metrics for operators (see README Observability).
var (
	mBudgetTrips     = obs.Default().Counter("fault.budget_trips")
	mCancellations   = obs.Default().Counter("fault.cancellations")
	mRecoveredPanics = obs.Default().Counter("fault.recovered_panics")
)

// Defaults applied by Budget.fill. DefaultOpLimit is the single source
// of truth for the interpreter op bound: the sequential, instrumented,
// and parallel runs all agree on it.
const (
	DefaultOpLimit       = int64(1) << 40
	DefaultMaxIterations = 10
)

// checkInterval is how many consumed ops elapse between deadline and
// context checks in the interpreter hot loops: small enough that a
// canceled pipeline aborts in well under 100ms, large enough that the
// time.Now call vanishes in the noise.
const checkInterval = 1024

// Budget bounds every resource a repair pipeline run may consume. The
// zero value means "defaults": no deadline, DefaultOpLimit interpreter
// ops, unlimited DP states and S-DPST nodes, DefaultMaxIterations
// repair rounds.
type Budget struct {
	// Timeout is the wall-clock budget for the whole pipeline run
	// (0 = none). A context deadline, when earlier, takes precedence.
	Timeout time.Duration
	// OpLimit bounds cumulative interpreter work units across every
	// execution of the run, sequential and parallel (0 = DefaultOpLimit).
	OpLimit int64
	// MaxDPStates bounds cumulative dynamic-programming states explored
	// by finish placement (0 = unlimited). When it trips mid-placement
	// the repair degrades to the coarse sound placement instead of
	// failing (see internal/repair).
	MaxDPStates int64
	// MaxSDPSTNodes bounds the S-DPST size of one instrumented execution
	// (0 = unlimited).
	MaxSDPSTNodes int64
	// MaxIterations bounds repair detect/place/rewrite rounds
	// (0 = DefaultMaxIterations). Exhausting it yields the repair
	// package's MaxIterationsError, distinct from a budget trip.
	MaxIterations int
}

// fill returns the budget with defaults applied.
func (b Budget) fill() Budget {
	if b.OpLimit == 0 {
		b.OpLimit = DefaultOpLimit
	}
	if b.MaxIterations == 0 {
		b.MaxIterations = DefaultMaxIterations
	}
	return b
}

// Iterations returns the effective repair-iteration bound.
func (b Budget) Iterations() int {
	if b.MaxIterations == 0 {
		return DefaultMaxIterations
	}
	return b.MaxIterations
}

// Resource names the budget dimension that ran out.
type Resource string

// Budget resources.
const (
	ResourceDeadline   Resource = "deadline"
	ResourceOps        Resource = "interpreter-ops"
	ResourceDPStates   Resource = "dp-states"
	ResourceSDPSTNodes Resource = "sdpst-nodes"
)

// ErrCanceled reports that the caller's context was canceled before the
// pipeline finished. Test with errors.Is.
var ErrCanceled = errors.New("repair pipeline canceled")

// CanceledError wraps ErrCanceled with the phase that observed the
// cancellation and the context's cause.
type CanceledError struct {
	// Phase is the pipeline phase that observed the cancellation.
	Phase string
	// Cause is the context error (context.Canceled or a custom cause).
	Cause error
}

// Error implements the error interface.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("%s: canceled: %v", e.Phase, e.Cause)
}

// Unwrap makes errors.Is(err, ErrCanceled) and errors.Is(err,
// context.Canceled) both succeed.
func (e *CanceledError) Unwrap() []error { return []error{ErrCanceled, e.Cause} }

// BudgetExceededError reports that one Budget resource ran out. Which
// one is in Resource; Phase identifies the pipeline phase that tripped.
type BudgetExceededError struct {
	Resource Resource
	Phase    string
	// Limit is the configured bound; Used what had been consumed when
	// the trip was detected (for ResourceDeadline both are nanoseconds
	// of wall clock).
	Limit, Used int64
}

// Error implements the error interface. The ops message keeps the
// historical "op budget exhausted" phrasing relied on by callers
// diagnosing runaway programs.
func (e *BudgetExceededError) Error() string {
	p := ""
	if e.Phase != "" {
		p = e.Phase + ": "
	}
	switch e.Resource {
	case ResourceOps:
		return fmt.Sprintf("%sop budget exhausted after %d work units (limit %d; infinite loop?)", p, e.Used, e.Limit)
	case ResourceDeadline:
		return fmt.Sprintf("%sdeadline exceeded after %v (budget %v)", p, time.Duration(e.Used), time.Duration(e.Limit))
	default:
		return fmt.Sprintf("%s%s budget exhausted: %d used (limit %d)", p, e.Resource, e.Used, e.Limit)
	}
}

// InternalError is a recovered panic: a bug in the pipeline (or an
// injected fault) that Protect converted into a value so it cannot take
// the process down. It records the failing phase and the stack at the
// point of the panic.
type InternalError struct {
	Phase string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error implements the error interface.
func (e *InternalError) Error() string {
	return fmt.Sprintf("%s: internal error: %v", e.Phase, e.Value)
}

// Unwrap exposes a panicked error value to errors.Is/As.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Bail carries a typed pipeline error through panic-based unwinding in
// the interpreters (which already use panic/recover for HJ-lite runtime
// faults). Run boundaries and Protect recover it and return Err; it is
// never surfaced as a panic to callers.
type Bail struct{ Err error }

// Meter is the shared, concurrency-safe consumption state of one
// pipeline run: the filled Budget, the caller's context, and cumulative
// op/DP-state counters. All methods are nil-safe — a nil *Meter means
// "unlimited, never canceled" and costs one pointer test.
type Meter struct {
	ctx      context.Context
	done     <-chan struct{}
	start    time.Time
	deadline time.Time
	budget   Budget

	deadlineOff atomic.Bool // set by Lift(ResourceDeadline)
	ops         atomic.Int64
	dpStates    atomic.Int64
	sinceCheck  atomic.Int64
	phase       atomic.Pointer[string]
}

// NewMeter builds a meter for one pipeline run. ctx may be nil; the
// effective deadline is the earlier of ctx's deadline and now+Timeout.
func NewMeter(ctx context.Context, b Budget) *Meter {
	m := &Meter{ctx: ctx, start: time.Now(), budget: b.fill()}
	if ctx != nil {
		m.done = ctx.Done()
		if d, ok := ctx.Deadline(); ok {
			m.deadline = d
		}
	}
	if b.Timeout > 0 {
		if d := m.start.Add(b.Timeout); m.deadline.IsZero() || d.Before(m.deadline) {
			m.deadline = d
		}
	}
	ph := "pipeline"
	m.phase.Store(&ph)
	return m
}

// SetPhase records the pipeline phase for error attribution. Safe from
// any goroutine; nil-safe.
func (m *Meter) SetPhase(phase string) {
	if m == nil {
		return
	}
	m.phase.Store(&phase)
}

// CurrentPhase returns the phase recorded by SetPhase ("pipeline" when
// never set, "" on a nil meter).
func (m *Meter) CurrentPhase() string {
	if m == nil {
		return ""
	}
	return *m.phase.Load()
}

// OpLimit returns the effective interpreter op limit (DefaultOpLimit on
// a nil meter).
func (m *Meter) OpLimit() int64 {
	if m == nil {
		return DefaultOpLimit
	}
	return m.budget.OpLimit
}

// MaxSDPSTNodes returns the S-DPST node bound (0 = unlimited).
func (m *Meter) MaxSDPSTNodes() int64 {
	if m == nil {
		return 0
	}
	return m.budget.MaxSDPSTNodes
}

// Iterations returns the effective repair-iteration bound.
func (m *Meter) Iterations() int {
	if m == nil {
		return DefaultMaxIterations
	}
	return m.budget.Iterations()
}

// Check tests cancellation and the wall-clock deadline. It is the slow
// half of the hot-loop checks: callers batch via AddOps/AddDPStates,
// which call it every checkInterval units.
func (m *Meter) Check() error {
	if m == nil {
		return nil
	}
	if m.done != nil {
		select {
		case <-m.done:
			mCancellations.Inc()
			cause := m.ctx.Err()
			if context.Cause(m.ctx) != nil {
				cause = context.Cause(m.ctx)
			}
			// A context that expired by deadline is a deadline trip, not
			// a user cancellation.
			if errors.Is(cause, context.DeadlineExceeded) {
				return m.deadlineError()
			}
			return &CanceledError{Phase: m.CurrentPhase(), Cause: cause}
		default:
		}
	}
	if !m.deadline.IsZero() && !m.deadlineOff.Load() && time.Now().After(m.deadline) {
		return m.deadlineError()
	}
	return nil
}

func (m *Meter) deadlineError() error {
	mBudgetTrips.Inc()
	return &BudgetExceededError{
		Resource: ResourceDeadline,
		Phase:    m.CurrentPhase(),
		Limit:    int64(m.deadline.Sub(m.start)),
		Used:     int64(time.Since(m.start)),
	}
}

// Lift disarms one budget dimension for the rest of the run. The repair
// loop uses it after committing to a degraded placement on a deadline
// trip: the final verification pass must complete (still bounded by the
// op budget) or the degraded repair would be lost.
func (m *Meter) Lift(r Resource) {
	if m == nil {
		return
	}
	if r == ResourceDeadline {
		m.deadlineOff.Store(true)
	}
}

// AddOps charges n interpreter work units against the cumulative op
// budget and runs the cancellation/deadline check every checkInterval
// charged units. The interpreters call it in batches from their tick
// loops.
func (m *Meter) AddOps(n int64) error {
	if m == nil {
		return nil
	}
	used := m.ops.Add(n)
	if used > m.budget.OpLimit {
		mBudgetTrips.Inc()
		return &BudgetExceededError{Resource: ResourceOps, Phase: m.CurrentPhase(), Limit: m.budget.OpLimit, Used: used}
	}
	if m.sinceCheck.Add(n) >= checkInterval {
		m.sinceCheck.Store(0)
		return m.Check()
	}
	return nil
}

// Ops returns the cumulative interpreter work charged so far.
func (m *Meter) Ops() int64 {
	if m == nil {
		return 0
	}
	return m.ops.Load()
}

// AddDPStates charges n dynamic-programming states against the DP-state
// budget, with the same periodic cancellation check as AddOps.
func (m *Meter) AddDPStates(n int64) error {
	if m == nil {
		return nil
	}
	used := m.dpStates.Add(n)
	if m.budget.MaxDPStates > 0 && used > m.budget.MaxDPStates {
		mBudgetTrips.Inc()
		return &BudgetExceededError{Resource: ResourceDPStates, Phase: m.CurrentPhase(), Limit: m.budget.MaxDPStates, Used: used}
	}
	if m.sinceCheck.Add(n) >= checkInterval {
		m.sinceCheck.Store(0)
		return m.Check()
	}
	return nil
}

// DPStates returns the cumulative DP states charged so far.
func (m *Meter) DPStates() int64 {
	if m == nil {
		return 0
	}
	return m.dpStates.Load()
}

// NodeBudgetError builds the S-DPST node-budget error; the interpreter
// calls it when its per-run node count passes MaxSDPSTNodes.
func (m *Meter) NodeBudgetError(used int64) error {
	mBudgetTrips.Inc()
	return &BudgetExceededError{Resource: ResourceSDPSTNodes, Phase: m.CurrentPhase(), Limit: m.MaxSDPSTNodes(), Used: used}
}

// Protect runs fn, converting any escaping panic into a typed error:
// Bail panics return their carried error verbatim; anything else
// becomes an *InternalError carrying phase and stack. It is the
// containment boundary wrapped around every public tdr entry point and
// every risky pipeline phase.
func Protect(phase string, fn func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if b, ok := r.(Bail); ok {
			err = b.Err
			return
		}
		mRecoveredPanics.Inc()
		err = &InternalError{Phase: phase, Value: r, Stack: string(debug.Stack())}
	}()
	return fn()
}

// IsBudgetOrCanceled reports whether err is a budget trip or a
// cancellation — the conditions CLIs map to their distinct exit code.
func IsBudgetOrCanceled(err error) bool {
	var be *BudgetExceededError
	return errors.As(err, &be) || errors.Is(err, ErrCanceled)
}
