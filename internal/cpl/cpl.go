// Package cpl computes work and critical-path length ("span") of an
// async/finish execution from its S-DPST (paper Definition 1: a program
// has maximal parallelism when its critical path length is minimal; CPL
// is the execution time on unboundedly many processors).
//
// The model matches the finish-placement DP: within a task, steps
// advance a sequential cursor; an async's subtree runs concurrently from
// the spawn point; a finish completes when its sequential cursor and all
// transitively pending asyncs have completed.
package cpl

import (
	"finishrepair/internal/dpst"
)

// Metrics summarizes an execution's parallelism.
type Metrics struct {
	// Work is T1: total work units across all steps.
	Work int64
	// Span is T∞: the critical path length. When the execution contains
	// isolated regions, Span is at least the isolated serialization
	// bound: bodies of lock class 0 exclude every isolated body, and
	// each nonzero class serializes only against itself, so the bound is
	// Σ class-0 work + max over nonzero classes of that class's work.
	// With a single class this equals the old Σ IsoWork bound.
	Span int64
	// IsoWork is the total work executed inside isolated bodies (all
	// classes).
	IsoWork int64
}

// Parallelism returns Work/Span, the average available parallelism.
func (m Metrics) Parallelism() float64 {
	if m.Span == 0 {
		return 1
	}
	return float64(m.Work) / float64(m.Span)
}

// Analyze computes work and span of the execution recorded in the tree.
// Isolated regions lower-bound the span per lock class: each lock
// admits one body at a time, so even with unboundedly many processors,
// all class-0 work passes sequentially (class 0 excludes everything)
// and each nonzero class's work passes sequentially against itself.
// The serialization bound is Σ(class 0) + max over c>0 of Σ(class c).
func Analyze(t *dpst.Tree) Metrics {
	var work int64
	perClass := map[int]int64{}
	isoWork(t.Root, perClass)
	var iso, global, maxClass int64
	for cls, w := range perClass {
		iso += w
		if cls == 0 {
			global = w
		} else if w > maxClass {
			maxClass = w
		}
	}
	bound := global + maxClass
	t.Walk(func(n *dpst.Node) { work += n.Work })
	end, pending := eval(t.Root, 0)
	span := end
	if pending > span {
		span = pending
	}
	if bound > span {
		span = bound
	}
	return Metrics{Work: work, Span: span, IsoWork: iso}
}

// isoWork accumulates per-lock-class isolated work. Collapsed steps
// carry it in IsoWork/IsoClass; an uncollapsed IsoScope (NoCollapse
// replay) contributes its whole subtree under its own class and is not
// descended into, so nested isolated bodies are not double-counted.
func isoWork(n *dpst.Node, perClass map[int]int64) {
	if n.Kind == dpst.Scope && n.Class == dpst.IsoScope {
		var w int64
		var sum func(c *dpst.Node)
		sum = func(c *dpst.Node) {
			w += c.Work
			for _, g := range c.Children {
				sum(g)
			}
		}
		sum(n)
		perClass[n.IsoClass] += w
		return
	}
	if n.IsoWork > 0 {
		perClass[n.IsoClass] += n.IsoWork
	}
	for _, c := range n.Children {
		isoWork(c, perClass)
	}
}

// eval returns (end, pending): the time at which n's sequential
// continuation may proceed, and the latest completion among asyncs
// spawned inside n that have not yet been joined by a finish inside n.
func eval(n *dpst.Node, start int64) (end, pending int64) {
	switch n.Kind {
	case dpst.Step:
		return start + n.Work, 0
	case dpst.Async:
		e, p := evalSeq(n, start)
		comp := e
		if p > comp {
			comp = p
		}
		// The parent's cursor is not advanced; the completion is pending
		// until an enclosing finish joins it.
		return start, comp
	case dpst.Finish:
		e, p := evalSeq(n, start)
		if p > e {
			e = p
		}
		return e, 0
	default: // Scope
		return evalSeq(n, start)
	}
}

// evalSeq threads the cursor through n's children, accumulating the
// maximum pending async completion.
func evalSeq(n *dpst.Node, start int64) (end, pending int64) {
	cur := start
	var pend int64
	for _, c := range n.Children {
		e, p := eval(c, cur)
		cur = e
		if p > pend {
			pend = p
		}
	}
	return cur, pend
}
