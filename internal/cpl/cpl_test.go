package cpl_test

import (
	"testing"

	"finishrepair/internal/cpl"
	"finishrepair/internal/dpst"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
)

func step(t *dpst.Tree, parent *dpst.Node, w int64) *dpst.Node {
	s := t.NewChild(parent, dpst.Step, dpst.NotScope, "")
	s.Work = w
	return s
}

func TestSequentialSpanEqualsWork(t *testing.T) {
	tree := dpst.NewTree()
	step(tree, tree.Root, 5)
	step(tree, tree.Root, 7)
	m := cpl.Analyze(tree)
	if m.Work != 12 || m.Span != 12 {
		t.Errorf("got work %d span %d, want 12 12", m.Work, m.Span)
	}
	if m.Parallelism() != 1 {
		t.Errorf("parallelism = %v, want 1", m.Parallelism())
	}
}

func TestAsyncsOverlap(t *testing.T) {
	// root: step(2); async(10); async(20); step(3)
	// span: asyncs start after the 2-unit step and overlap each other
	// and the trailing step: max(2+10, 2+20, 2+3) = 22.
	tree := dpst.NewTree()
	step(tree, tree.Root, 2)
	a1 := tree.NewChild(tree.Root, dpst.Async, dpst.NotScope, "")
	step(tree, a1, 10)
	a2 := tree.NewChild(tree.Root, dpst.Async, dpst.NotScope, "")
	step(tree, a2, 20)
	step(tree, tree.Root, 3)
	m := cpl.Analyze(tree)
	if m.Work != 35 {
		t.Errorf("work = %d, want 35", m.Work)
	}
	if m.Span != 22 {
		t.Errorf("span = %d, want 22", m.Span)
	}
}

func TestFinishJoins(t *testing.T) {
	// root: finish{ async(10); async(20) }; step(3)
	// span = max(10,20) + 3 = 23.
	tree := dpst.NewTree()
	f := tree.NewChild(tree.Root, dpst.Finish, dpst.NotScope, "")
	a1 := tree.NewChild(f, dpst.Async, dpst.NotScope, "")
	step(tree, a1, 10)
	a2 := tree.NewChild(f, dpst.Async, dpst.NotScope, "")
	step(tree, a2, 20)
	step(tree, tree.Root, 3)
	m := cpl.Analyze(tree)
	if m.Span != 23 {
		t.Errorf("span = %d, want 23", m.Span)
	}
}

func TestNestedFinishScopes(t *testing.T) {
	// root: async A { finish{ async(5) }; step(1) }; step(2)
	// A's internal span: 5 (join) + 1 = 6; root: max(6, 2) = 6.
	tree := dpst.NewTree()
	a := tree.NewChild(tree.Root, dpst.Async, dpst.NotScope, "")
	f := tree.NewChild(a, dpst.Finish, dpst.NotScope, "")
	inner := tree.NewChild(f, dpst.Async, dpst.NotScope, "")
	step(tree, inner, 5)
	step(tree, a, 1)
	step(tree, tree.Root, 2)
	m := cpl.Analyze(tree)
	if m.Span != 6 {
		t.Errorf("span = %d, want 6", m.Span)
	}
}

func TestScopesAreTransparent(t *testing.T) {
	// A scope between root and an async changes nothing.
	tree := dpst.NewTree()
	sc := tree.NewChild(tree.Root, dpst.Scope, dpst.IfScope, "if")
	a := tree.NewChild(sc, dpst.Async, dpst.NotScope, "")
	step(tree, a, 9)
	step(tree, tree.Root, 4)
	m := cpl.Analyze(tree)
	if m.Span != 9 {
		t.Errorf("span = %d, want 9", m.Span)
	}
}

// Property: for any generated program, Span <= Work; the serial elision
// has Span == Work after stripping asyncs is not possible here, so
// instead: a program with no asyncs has Span == Work.
func TestSpanBounds(t *testing.T) {
	for seed := int64(500); seed < 530; seed++ {
		prog := parser.MustParse(progen.Gen(seed, progen.Default()))
		info := sem.MustCheck(prog)
		res, err := interp.Run(info, interp.Options{Mode: interp.DepthFirst, Instrument: true})
		if err != nil {
			t.Fatal(err)
		}
		m := cpl.Analyze(res.Tree)
		if m.Span > m.Work {
			t.Fatalf("seed %d: span %d > work %d", seed, m.Span, m.Work)
		}
		if m.Span <= 0 || m.Work <= 0 {
			t.Fatalf("seed %d: non-positive metrics %+v", seed, m)
		}
	}
}

// Adding finishes can only increase (or keep) the span; stripping them
// can only decrease it.
func TestStrippingReducesSpan(t *testing.T) {
	src := `
func work(a []int, i int) { a[i] = a[i] + 1; }
func main() {
    var a = make([]int, 4);
    finish { async work(a, 0); }
    finish { async work(a, 1); }
    finish { async work(a, 2); }
    println(a[0] + a[1] + a[2]);
}
`
	spanOf := func(s string) int64 {
		prog := parser.MustParse(s)
		info := sem.MustCheck(prog)
		res, err := interp.Run(info, interp.Options{Mode: interp.DepthFirst, Instrument: true})
		if err != nil {
			t.Fatal(err)
		}
		return cpl.Analyze(res.Tree).Span
	}
	withFinish := spanOf(src)
	prog := parser.MustParse(src)
	// Strip and print to compare.
	info := sem.MustCheck(prog)
	_ = info
	stripped := `
func work(a []int, i int) { a[i] = a[i] + 1; }
func main() {
    var a = make([]int, 4);
    async work(a, 0);
    async work(a, 1);
    async work(a, 2);
    println(a[0] + a[1] + a[2]);
}
`
	if s := spanOf(stripped); s >= withFinish {
		t.Errorf("stripped span %d not smaller than synchronized %d", s, withFinish)
	}
}
