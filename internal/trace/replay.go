package trace

import (
	"fmt"

	"finishrepair/internal/dpst"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/ast"
)

// Site is the static coordinate of one instrumented access: the block
// and statement index of the statement executing when the access
// happened (more precise than the merged maximal step, which may span
// many statements), plus whether the access occurred inside an isolated
// body. Race-detector engines use Iso to suppress pairs that the global
// isolated lock orders, and the repair strategies use Block/Stmt to wrap
// exactly the racing statement.
type Site struct {
	Block int32 // owner block ID (-1 = unknown)
	Stmt  int32 // statement index (-1 = loop-header pseudo)
	Iso   bool  // access executed inside an isolated body
	// IsoClass is the lock class of the OUTERMOST isolated body
	// enclosing the access (meaningful only when Iso is set): the
	// outermost lock is the one actually held against other tasks.
	// Engines suppress an isolated pair only when the two classes
	// exclude each other — either is 0 (the global lock) or they are
	// equal; different nonzero classes run concurrently.
	IsoClass int32
}

// Sink receives the reconstructed execution during replay: structure
// events in canonical depth-first order plus instrumented accesses with
// the current step and access site. Race-detector engines implement
// Sink.
type Sink interface {
	Read(loc uint64, step *dpst.Node, site Site)
	Write(loc uint64, step *dpst.Node, site Site)
	TaskStart(n *dpst.Node)
	TaskEnd(n *dpst.Node)
	FinishStart(n *dpst.Node)
	FinishEnd(n *dpst.Node)
}

// RangeKind selects what construct a virtual range injects.
type RangeKind uint8

// Virtual range kinds. The zero value is a finish so pre-existing
// literals keep their meaning.
const (
	RangeFinish   RangeKind = iota // finish { ... }: joins child tasks
	RangeIsolated                  // isolated { ... }: global mutual exclusion
)

// String names the range kind.
func (k RangeKind) String() string {
	if k == RangeIsolated {
		return "isolated"
	}
	return "finish"
}

// FinishRange is a virtual scope to inject during replay: during any
// dynamic instance of block BlockID, the construct selected by Kind
// (finish by default, isolated for RangeIsolated) opens before the
// first event of statement Lo and closes after the last event of
// statement Hi. Coordinates are in the trace's (original) program, so
// accumulated repair placements replay against one capture without
// rewriting or re-executing the source.
type FinishRange struct {
	BlockID int
	Lo, Hi  int
	Kind    RangeKind
	// Class is the lock class of an injected isolated range (see
	// ast.IsolatedStmt.LockClass); 0 — the global lock — for finishes
	// and for source-level isolated semantics.
	Class int
}

// ReplayOptions configures a replay.
type ReplayOptions struct {
	// Prog resolves block IDs back to blocks; it must be the program the
	// trace was captured from (or a structurally identical reparse).
	Prog *ast.Program
	// Finishes are virtual finish scopes to inject (may be nil).
	Finishes []FinishRange
	// Sink receives the replayed execution (may be nil).
	Sink Sink
	// NoCollapse disables maximal-step collapsing, exactly as in
	// interp.Options.
	NoCollapse bool
	// Meter, when set, bounds the replay: periodic cancellation/deadline
	// checks and the S-DPST node budget. Replay charges no interpreter
	// ops — the work was already paid for at capture time.
	Meter *guard.Meter
}

// Result is the reconstructed execution.
type Result struct {
	Tree  *dpst.Tree
	Steps int
}

// nopSink discards all events.
type nopSink struct{}

func (nopSink) Read(uint64, *dpst.Node, Site)  {}
func (nopSink) Write(uint64, *dpst.Node, Site) {}
func (nopSink) TaskStart(*dpst.Node)           {}
func (nopSink) TaskEnd(*dpst.Node)             {}
func (nopSink) FinishStart(*dpst.Node)         {}
func (nopSink) FinishEnd(*dpst.Node)           {}

// injState tracks virtual-finish progress through one dynamic block
// instance. Synthetic finish frames share their parent frame's state so
// a range is opened at most once per instance.
type injState struct {
	block   int32
	pending []FinishRange // sorted by (Lo asc, Hi desc): outermost first
	next    int
}

// rframe is one open interior node during replay.
type rframe struct {
	node      *dpst.Node
	synthetic bool  // injected virtual scope
	iso       bool  // frame is an isolated body (real or injected)
	lo, hi    int32 // synthetic: statement range in the owner block
	inj       *injState
}

type replayer struct {
	tree       *dpst.Tree
	sink       Sink
	noCollapse bool
	meter      *guard.Meter
	nodeLimit  int64
	nodes      int64
	steps      int
	curStep    *dpst.Node
	frames     []rframe
	blocks     map[int32]*ast.Block
	ranges     map[int32][]FinishRange
	labels     []string // label-table snapshot of the current chunk

	// Access-site attribution: coordinates of the last step boundary,
	// the current isolated-nesting depth, and the lock class of the
	// outermost open isolated frame (0 when isoDepth == 0).
	siteBlock int32
	siteStmt  int32
	isoDepth  int
	isoClass  int32
}

// checkMask gates the periodic meter check: every 4096 events.
const checkMask = 1<<12 - 1

// eventSource abstracts where replay pulls events from: a fully
// captured Trace (all chunks immediately available) or a live Stream
// (nextChunk blocks until capture seals the next one). Replay state —
// open frames, virtual-finish injection, the step state machine — lives
// in the replayer and carries across chunk seams untouched, so a
// virtual finish may open in one chunk and close in a later one.
type eventSource interface {
	// nextChunk returns chunk i and the label table covering it;
	// ok=false when the source is exhausted, with err set if the
	// producer failed.
	nextChunk(i int) (events []Event, labels []string, ok bool, err error)
	// tailWork reports work trailing the final event; valid once
	// nextChunk has returned ok=false with a nil error.
	tailWork() int64
}

// nextChunk returns the i'th captured chunk (Trace is a fully-available
// event source).
func (t *Trace) nextChunk(i int) ([]Event, []string, bool, error) {
	if i < len(t.chunks) {
		return t.chunks[i], t.labels, true, nil
	}
	return nil, nil, false, nil
}

func (t *Trace) tailWork() int64 { return t.TailWork }

// Replay reconstructs the execution recorded in tr, feeding sink and
// rebuilding the S-DPST. With no injected finishes the resulting tree
// is node-for-node identical (IDs, kinds, coordinates, work) to the one
// the instrumented execution built, because replay re-runs the same
// step state machine the interpreter used at capture time. Injected
// finishes appear exactly where re-executing the rewritten program
// would put them; finish statements are free in the cost model, so no
// other node changes.
func Replay(tr *Trace, opts ReplayOptions) (*Result, error) {
	return replayFrom(tr, opts)
}

// ReplayStream is Replay over a live capture stream: it consumes chunks
// as the recorder seals them, blocking until the next chunk (or the end
// of the capture) is available, and produces exactly the result a batch
// replay of the completed trace would.
func ReplayStream(s *Stream, opts ReplayOptions) (*Result, error) {
	return replayFrom(s, opts)
}

func replayFrom(src eventSource, opts ReplayOptions) (res *Result, err error) {
	r := &replayer{
		tree:       dpst.NewTree(),
		sink:       opts.Sink,
		noCollapse: opts.NoCollapse,
		meter:      opts.Meter,
		nodeLimit:  opts.Meter.MaxSDPSTNodes(),
		blocks:     make(map[int32]*ast.Block),
		ranges:     groupRanges(opts.Finishes),
		siteBlock:  -1,
		siteStmt:   -1,
	}
	if r.sink == nil {
		r.sink = nopSink{}
	}
	if opts.Prog != nil {
		for _, b := range ast.Blocks(opts.Prog) {
			r.blocks[int32(b.ID)] = b
		}
	}
	r.frames = append(r.frames, rframe{node: r.tree.Root})

	defer func() {
		if p := recover(); p != nil {
			if b, ok := p.(guard.Bail); ok {
				err = b.Err
				return
			}
			panic(p)
		}
	}()

	r.sink.TaskStart(r.tree.Root)
	i := 0
	for ci := 0; ; ci++ {
		events, labels, ok, serr := src.nextChunk(ci)
		if serr != nil {
			return nil, serr
		}
		if !ok {
			break
		}
		r.labels = labels
		for j := range events {
			e := &events[j]
			if e.W > 0 && r.curStep != nil {
				r.curStep.Work += int64(e.W)
			}
			if i&checkMask == 0 && r.meter != nil {
				if cerr := r.meter.Check(); cerr != nil {
					panic(guard.Bail{Err: cerr})
				}
			}
			switch Kind(e.Kind) {
			case EvStep:
				r.boundary(e.Block, e.Stmt)
				r.ensureStep(e.Block, e.Stmt)
				r.siteBlock, r.siteStmt = e.Block, e.Stmt
			case EvEnd:
				r.curStep = nil
			case EvRead:
				r.sink.Read(e.Loc, r.curStep, r.site())
			case EvWrite:
				r.sink.Write(e.Loc, r.curStep, r.site())
			case EvPush:
				r.boundary(e.Block, e.Stmt)
				r.push(e)
			case EvPop:
				if len(r.frames) == 1 {
					return nil, fmt.Errorf("trace: unbalanced pop at event %d", i)
				}
				r.pop()
			default:
				return nil, fmt.Errorf("trace: unknown event kind %d at event %d", e.Kind, i)
			}
			i++
		}
	}
	if tw := src.tailWork(); tw > 0 && r.curStep != nil {
		r.curStep.Work += tw
	}
	for len(r.frames) > 1 && r.top().synthetic {
		r.closeSynthetic()
	}
	if len(r.frames) != 1 {
		return nil, fmt.Errorf("trace: %d unclosed nodes at end of stream", len(r.frames)-1)
	}
	r.sink.TaskEnd(r.tree.Root)
	r.curStep = nil
	r.tree.AggregateWork()
	return &Result{Tree: r.tree, Steps: r.steps}, nil
}

// groupRanges buckets and canonicalizes the virtual finish set: per
// block, sorted by (Lo asc, Hi desc) so nested ranges open outermost
// first, with exact duplicates dropped.
func groupRanges(fins []FinishRange) map[int32][]FinishRange {
	if len(fins) == 0 {
		return nil
	}
	m := make(map[int32][]FinishRange)
	for _, f := range fins {
		m[int32(f.BlockID)] = append(m[int32(f.BlockID)], f)
	}
	for id, rs := range m {
		for i := 1; i < len(rs); i++ {
			for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			}
		}
		out := rs[:0]
		for i, f := range rs {
			if i > 0 && f == rs[i-1] {
				continue
			}
			out = append(out, f)
		}
		m[id] = out
	}
	return m
}

func less(a, b FinishRange) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	if a.Hi != b.Hi {
		return a.Hi > b.Hi
	}
	return a.Kind < b.Kind
}

func (r *replayer) top() *rframe { return &r.frames[len(r.frames)-1] }

// site is the static coordinate of the current access point.
func (r *replayer) site() Site {
	return Site{Block: r.siteBlock, Stmt: r.siteStmt, Iso: r.isoDepth > 0, IsoClass: r.isoClass}
}

// enterIso tracks an isolated frame opening with the given lock class;
// the outermost frame's class is the lock actually held.
func (r *replayer) enterIso(class int) {
	if r.isoDepth == 0 {
		r.isoClass = int32(class)
	}
	r.isoDepth++
}

func (r *replayer) exitIso() {
	r.isoDepth--
	if r.isoDepth == 0 {
		r.isoClass = 0
	}
}

func (r *replayer) block(id int32) *ast.Block {
	if id < 0 {
		return nil
	}
	return r.blocks[id]
}

func (r *replayer) noteNode() {
	r.nodes++
	if r.nodeLimit > 0 && r.nodes > r.nodeLimit {
		panic(guard.Bail{Err: r.meter.NodeBudgetError(r.nodes)})
	}
}

// ensureStep mirrors the interpreter's step state machine, including
// the trailing-merge rule for maximal steps.
func (r *replayer) ensureStep(bid, stmt int32) {
	b := r.block(bid)
	idx := int(stmt)
	cn := r.top().node
	if r.curStep == nil {
		if k := len(cn.Children); k > 0 {
			last := cn.Children[k-1]
			if last.Kind == dpst.Step && last.OwnerBlock == b {
				r.curStep = last
			}
		}
	}
	if r.curStep != nil {
		if idx >= 0 {
			if idx > r.curStep.StmtHi {
				r.curStep.StmtHi = idx
			}
			if r.curStep.StmtLo == -2 {
				r.curStep.StmtLo = idx
			}
		}
		return
	}
	r.noteNode()
	s := r.tree.NewChild(cn, dpst.Step, dpst.NotScope, "")
	s.OwnerBlock = b
	s.StmtLo, s.StmtHi = idx, idx
	r.curStep = s
	r.steps++
}

// label resolves a label-table index against the current chunk's
// snapshot.
func (r *replayer) label(i uint16) string {
	if int(i) < len(r.labels) {
		return r.labels[i]
	}
	return ""
}

func (r *replayer) push(e *Event) {
	r.curStep = nil
	r.noteNode()
	n := r.tree.NewChild(r.top().node, dpst.Kind(e.NKind), dpst.ScopeClass(e.Class), r.label(e.Label))
	n.OwnerBlock = r.block(e.Block)
	n.StmtLo, n.StmtHi = int(e.Stmt), int(e.Stmt)
	n.Body = r.block(e.Body)
	iso := n.Kind == dpst.Scope && n.Class == dpst.IsoScope
	if iso {
		// The event codec carries no lock class; resolve it from the
		// AST: the frame's construct is OwnerBlock.Stmts[StmtLo].
		cls := 0
		if ob := n.OwnerBlock; ob != nil && n.StmtLo >= 0 && n.StmtLo < len(ob.Stmts) {
			if is, ok := ob.Stmts[n.StmtLo].(*ast.IsolatedStmt); ok {
				cls = is.LockClass
			}
		}
		n.IsoClass = cls
		r.enterIso(cls)
	}
	r.frames = append(r.frames, rframe{node: n, iso: iso})
	switch n.Kind {
	case dpst.Async:
		r.sink.TaskStart(n)
	case dpst.Finish:
		r.sink.FinishStart(n)
	}
}

func (r *replayer) pop() {
	// Re-execution closes finishes inside a construct before the
	// construct itself ends; mirror that for open virtual scopes.
	for r.top().synthetic {
		r.closeSynthetic()
	}
	f := r.top()
	n := f.node
	if f.iso {
		r.exitIso()
	}
	switch n.Kind {
	case dpst.Async:
		r.sink.TaskEnd(n)
	case dpst.Finish:
		r.sink.FinishEnd(n)
	}
	r.curStep = nil
	r.frames = r.frames[:len(r.frames)-1]
	if !r.noCollapse {
		r.tree.CollapseScope(n)
	}
}

// boundary advances virtual-finish injection at a step or push event
// for statement s of block b: it closes open synthetic finishes whose
// range does not contain s (s may move past Hi, or jump below Lo when a
// loop's post statement runs at the header pseudo-index), then opens
// any not-yet-opened ranges containing s, outermost first. Ranges whose
// statements never execute (dead code after a return) are simply never
// opened — exactly as a finish statement that never runs.
func (r *replayer) boundary(b, s int32) {
	if b < 0 || len(r.ranges) == 0 {
		return
	}
	top := r.top()
	var inj *injState
	if top.synthetic {
		inj = top.inj
	} else {
		if top.inj == nil {
			rs := r.ranges[b]
			if len(rs) == 0 {
				return
			}
			top.inj = &injState{block: b, pending: rs}
		}
		inj = top.inj
	}
	if inj == nil || inj.block != b {
		return
	}
	for {
		t := r.top()
		if !t.synthetic || (s >= t.lo && s <= t.hi) {
			break
		}
		r.closeSynthetic()
	}
	for inj.next < len(inj.pending) {
		p := inj.pending[inj.next]
		if int32(p.Lo) > s {
			break
		}
		inj.next++
		if int32(p.Hi) < s {
			continue
		}
		r.openSynthetic(b, p, inj)
	}
}

func (r *replayer) openSynthetic(b int32, p FinishRange, inj *injState) {
	r.curStep = nil
	r.noteNode()
	var n *dpst.Node
	iso := p.Kind == RangeIsolated
	if iso {
		n = r.tree.NewChild(r.top().node, dpst.Scope, dpst.IsoScope, "isolated")
		n.IsoClass = p.Class
		r.enterIso(p.Class)
	} else {
		n = r.tree.NewChild(r.top().node, dpst.Finish, dpst.NotScope, "finish")
	}
	n.OwnerBlock = r.block(b)
	n.StmtLo, n.StmtHi = p.Lo, p.Hi
	r.frames = append(r.frames, rframe{
		node: n, synthetic: true, iso: iso,
		lo: int32(p.Lo), hi: int32(p.Hi), inj: inj,
	})
	if !iso {
		r.sink.FinishStart(n)
	}
}

func (r *replayer) closeSynthetic() {
	f := r.top()
	n := f.node
	if f.iso {
		r.exitIso()
	} else {
		r.sink.FinishEnd(n)
	}
	r.curStep = nil
	r.frames = r.frames[:len(r.frames)-1]
	// An injected isolated scope collapses exactly as re-executing the
	// rewritten program would collapse it (its subtree never spawns
	// tasks); CollapseScope is a no-op for synthetic finishes.
	if !r.noCollapse {
		r.tree.CollapseScope(n)
	}
}
