package trace_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"finishrepair/internal/trace"
)

// bigSrc produces well over one 4096-event chunk: every loop iteration
// records a task start/end pair plus accesses, so virtual-finish
// injection over main's body is live across every chunk seam.
const bigSrc = `
var g = 0;
func main() {
    var a = make([]int, 8);
    for (var i = 0; i < 2000; i = i + 1) {
        async { a[0] = i; }
        g = g + 1;
    }
    println(g);
}`

// TestReplayStreamMatchesBatch replays a multi-chunk trace both from
// the batch trace and from a stream of its sealed chunks, with a
// virtual finish range spanning every chunk seam, and requires
// identical trees: injection state must carry across seams.
func TestReplayStreamMatchesBatch(t *testing.T) {
	info, _, tr := capture(t, bigSrc, false)
	if tr.Len() <= 4096 {
		t.Fatalf("fixture too small to cross a chunk seam: %d events", tr.Len())
	}
	blk := info.Prog.Func("main").Body
	fins := []trace.FinishRange{{BlockID: blk.ID, Lo: 0, Hi: len(blk.Stmts) - 1}}

	for _, withFins := range []bool{false, true} {
		f := fins
		if !withFins {
			f = nil
		}
		batch, err := trace.Replay(tr, trace.ReplayOptions{Prog: info.Prog, Finishes: f})
		if err != nil {
			t.Fatalf("batch replay (fins=%v): %v", withFins, err)
		}
		s := trace.StreamOf(tr)
		streamed, err := trace.ReplayStream(s, trace.ReplayOptions{Prog: info.Prog, Finishes: f})
		if err != nil {
			t.Fatalf("streamed replay (fins=%v): %v", withFins, err)
		}
		if s.Chunks() < 2 {
			t.Fatalf("expected a multi-chunk stream, got %d chunks", s.Chunks())
		}
		if want, got := describe(batch.Tree), describe(streamed.Tree); want != got {
			t.Errorf("streamed tree differs (fins=%v)\n-- batch --\n%s\n-- streamed --\n%s",
				withFins, want, got)
		}
		if batch.Steps != streamed.Steps {
			t.Errorf("streamed steps = %d, batch = %d (fins=%v)", streamed.Steps, batch.Steps, withFins)
		}
	}
}

// TestCodecMultiChunkRoundTrip round-trips a trace spanning several
// chunk frames through the v3 codec and requires an identical replay.
func TestCodecMultiChunkRoundTrip(t *testing.T) {
	info, _, tr := capture(t, bigSrc, false)
	if tr.Len() <= 4096 {
		t.Fatalf("fixture too small to span chunk frames: %d events", tr.Len())
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.TailWork != tr.TailWork {
		t.Fatalf("decoded %d events tail %d, want %d/%d",
			back.Len(), back.TailWork, tr.Len(), tr.TailWork)
	}
	r1, err := trace.Replay(tr, trace.ReplayOptions{Prog: info.Prog})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := trace.Replay(back, trace.ReplayOptions{Prog: info.Prog})
	if err != nil {
		t.Fatal(err)
	}
	if describe(r1.Tree) != describe(r2.Tree) {
		t.Error("decoded multi-chunk trace replays differently")
	}
}

// TestStreamFailUnblocksConsumer checks the producer-failure contract:
// a consumer blocked waiting for the next chunk must return the
// producer's error promptly once Fail is called, instead of hanging.
func TestStreamFailUnblocksConsumer(t *testing.T) {
	info, _, _ := capture(t, bigSrc, false)
	s := trace.NewStream()
	boom := errors.New("capture exploded")

	done := make(chan error, 1)
	go func() {
		_, err := trace.ReplayStream(s, trace.ReplayOptions{Prog: info.Prog})
		done <- err
	}()

	time.Sleep(10 * time.Millisecond) // let the consumer block on chunk 0
	s.Fail(boom)

	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("consumer returned %v, want the producer's error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer still blocked after Fail")
	}
}
