package trace_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"finishrepair/internal/cpl"
	"finishrepair/internal/dpst"
	"finishrepair/internal/interp"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
	"finishrepair/internal/race"
	"finishrepair/internal/trace"
)

// describe renders every structural fact of the tree replay must
// reproduce: IDs, kinds, classes, labels, owner blocks, statement
// coordinates, and per-step work.
func describe(t *dpst.Tree) string {
	var sb strings.Builder
	var visit func(n *dpst.Node, depth int)
	visit = func(n *dpst.Node, depth int) {
		owner := -1
		if n.OwnerBlock != nil {
			owner = n.OwnerBlock.ID
		}
		fmt.Fprintf(&sb, "%*s%d %s %d %q b%d [%d,%d] w%d\n",
			depth*2, "", n.ID, n.Kind, n.Class, n.Label, owner, n.StmtLo, n.StmtHi, n.Work)
		for _, c := range n.Children {
			visit(c, depth+1)
		}
	}
	visit(t.Root, 0)
	return sb.String()
}

var fixtures = []struct {
	name string
	src  string
}{
	{"fib", `
func fib(ret []int, n int) {
    if (n < 2) { ret[0] = n; return; }
    var x = make([]int, 1);
    var y = make([]int, 1);
    async fib(x, n - 1);
    async fib(y, n - 2);
    ret[0] = x[0] + y[0];
}
func main() {
    var r = make([]int, 1);
    async fib(r, 8);
    println(r[0]);
}`},
	{"loops", `
var g = 0;
func main() {
    var a = make([]int, 8);
    for (var i = 0; i < 8; i = i + 1) {
        async { a[i] = i * i; }
        g = g + 1;
    }
    var j = 0;
    while (j < 4) {
        g = g + a[j];
        j = j + 1;
    }
    println(g);
}`},
	{"finish", `
var g = 0;
func main() {
    finish {
        async { g = 1; }
        async { g = 2; }
    }
    g = g + 1;
    if (g > 2) { println(g); } else { println(0); }
}`},
}

func capture(t *testing.T, src string, noCollapse bool) (*sem.Info, *interp.Result, *trace.Trace) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	res, err := interp.Run(info, interp.Options{
		Mode: interp.DepthFirst, Instrument: true,
		Trace: rec, NoCollapse: noCollapse,
	})
	if err != nil {
		t.Fatal(err)
	}
	return info, res, rec.Trace()
}

// Replay with no injected finishes must rebuild a tree node-for-node
// identical to the one the instrumented execution built, under both
// collapse policies, for hand-written and generated programs.
func TestReplayReconstructsTree(t *testing.T) {
	srcs := make(map[string]string)
	for _, f := range fixtures {
		srcs[f.name] = f.src
	}
	for seed := int64(7000); seed < 7020; seed++ {
		srcs[fmt.Sprintf("progen-%d", seed)] = progen.Gen(seed, progen.Default())
	}
	for name, src := range srcs {
		for _, noCollapse := range []bool{false, true} {
			info, res, tr := capture(t, src, noCollapse)
			rr, err := trace.Replay(tr, trace.ReplayOptions{
				Prog: info.Prog, NoCollapse: noCollapse,
			})
			if err != nil {
				t.Fatalf("%s (noCollapse=%v): replay: %v", name, noCollapse, err)
			}
			want, got := describe(res.Tree), describe(rr.Tree)
			if want != got {
				t.Errorf("%s (noCollapse=%v): replayed tree differs\n-- executed --\n%s\n-- replayed --\n%s",
					name, noCollapse, want, got)
			}
			if rr.Steps != res.Steps {
				t.Errorf("%s: replay steps = %d, executed = %d", name, rr.Steps, res.Steps)
			}
		}
	}
}

// The binary codec must round-trip the stream exactly: the decoded
// trace replays to the same tree and race set as the original.
func TestCodecRoundTrip(t *testing.T) {
	for _, f := range fixtures {
		info, _, tr := capture(t, f.src, false)
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("%s: encode: %v", f.name, err)
		}
		back, err := trace.Read(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.name, err)
		}
		if back.Len() != tr.Len() || back.TailWork != tr.TailWork {
			t.Fatalf("%s: decoded %d events tail %d, want %d/%d",
				f.name, back.Len(), back.TailWork, tr.Len(), tr.TailWork)
		}
		r1, err := trace.Replay(tr, trace.ReplayOptions{Prog: info.Prog})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := trace.Replay(back, trace.ReplayOptions{Prog: info.Prog})
		if err != nil {
			t.Fatal(err)
		}
		if describe(r1.Tree) != describe(r2.Tree) {
			t.Errorf("%s: decoded trace replays differently", f.name)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := trace.Read(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Error("decoder accepted bad magic")
	}
	if _, err := trace.Read(bytes.NewReader(nil)); err == nil {
		t.Error("decoder accepted empty input")
	}
}

// raceProfile is the injection-equivalence identity: the multiset of
// (location, kind) pairs, which is invariant under renumbering of
// blocks and nodes between a rewritten source and an injected replay.
func raceProfile(races []*race.Race) string {
	counts := map[string]int{}
	for _, r := range races {
		counts[fmt.Sprintf("%d/%s", r.Loc, r.Kind)]++
	}
	var out []string
	for k, v := range counts {
		out = append(out, fmt.Sprintf("%s x%d", k, v))
	}
	sortStrings(out)
	return strings.Join(out, ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func analyze(t *testing.T, src string) (*sem.Info, []*race.Race, cpl.Metrics) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, det, err := race.Detect(info, race.VariantMRW, race.NewBagsOracle())
	if err != nil {
		t.Fatal(err)
	}
	return info, det.Races(), cpl.Analyze(res.Tree)
}

// Injected virtual finishes must be observationally equivalent to
// re-executing the source with real finish statements: same race
// profile, same work, same span, same finish count.
func TestVirtualFinishInjection(t *testing.T) {
	cases := []struct {
		name     string
		stripped string // capture source
		finished string // reference source with real finishes
		// ranges picks virtual scopes in the stripped program: fn name,
		// then Lo/Hi statement indices in that function's body block.
		ranges []struct {
			fn     string
			lo, hi int
		}
	}{
		{
			name: "wrap-asyncs",
			stripped: `
var g = 0;
func main() {
    async { g = 1; }
    async { g = 2; }
    g = 3;
    println(g);
}`,
			finished: `
var g = 0;
func main() {
    finish {
        async { g = 1; }
        async { g = 2; }
    }
    g = 3;
    println(g);
}`,
			ranges: []struct {
				fn     string
				lo, hi int
			}{{"main", 0, 1}},
		},
		{
			name: "nested",
			stripped: `
var g = 0;
var h = 0;
func main() {
    async { g = 1; }
    async { h = 1; }
    g = g + h;
    h = 2;
    println(g + h);
}`,
			finished: `
var g = 0;
var h = 0;
func main() {
    finish {
        finish {
            async { g = 1; }
        }
        async { h = 1; }
        g = g + h;
    }
    h = 2;
    println(g + h);
}`,
			ranges: []struct {
				fn     string
				lo, hi int
			}{{"main", 0, 2}, {"main", 0, 0}},
		},
	}
	for _, c := range cases {
		// Reference: real finishes, re-executed.
		_, wantRaces, wantM := analyze(t, c.finished)

		// Capture the stripped program once; replay with injection.
		info, _, tr := capture(t, c.stripped, false)
		var fins []trace.FinishRange
		for _, r := range c.ranges {
			blk := info.Prog.Func(r.fn).Body
			fins = append(fins, trace.FinishRange{BlockID: blk.ID, Lo: r.lo, Hi: r.hi})
		}
		det := race.New(race.VariantMRW, race.NewBagsOracle())
		rr, err := race.Analyze(tr, info.Prog, fins, det, nil, false)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		gotM := cpl.Analyze(rr.Tree)

		if got, want := raceProfile(det.Races()), raceProfile(wantRaces); got != want {
			t.Errorf("%s: races after injection = [%s], re-execution = [%s]", c.name, got, want)
		}
		if gotM.Work != wantM.Work || gotM.Span != wantM.Span {
			t.Errorf("%s: work/span after injection = %d/%d, re-execution = %d/%d",
				c.name, gotM.Work, gotM.Span, wantM.Work, wantM.Span)
		}
		finishes := 0
		rr.Tree.Walk(func(n *dpst.Node) {
			if n.Kind == dpst.Finish {
				finishes++
			}
		})
		if want := len(c.ranges) + 1; finishes != want { // +1 for the root
			t.Errorf("%s: %d finish nodes after injection, want %d", c.name, finishes, want)
		}
	}
}

// A virtual range covering statements that never execute (dead code
// after a return) must behave like a finish statement that never runs.
func TestVirtualFinishDeadCode(t *testing.T) {
	src := `
var g = 0;
func f() {
    g = 1;
    return;
    async { g = 2; }
}
func main() {
    f();
    println(g);
}`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	if _, err := interp.Run(info, interp.Options{
		Mode: interp.DepthFirst, Instrument: true, Trace: rec,
	}); err != nil {
		t.Fatal(err)
	}
	blk := info.Prog.Func("f").Body
	rr, err := trace.Replay(rec.Trace(), trace.ReplayOptions{
		Prog:     info.Prog,
		Finishes: []trace.FinishRange{{BlockID: blk.ID, Lo: 2, Hi: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rr.Tree.Walk(func(n *dpst.Node) {
		if n.Kind == dpst.Finish && n.Parent != nil {
			t.Errorf("dead-code range materialized finish node %d", n.ID)
		}
	})
}

// ast.StripFinishes must be the left inverse of injection on the event
// stream: capturing a finished program and capturing its stripped
// version yield the same accesses and work (finishes are free).
func TestFinishStatementsAreFreeInTrace(t *testing.T) {
	for _, f := range fixtures {
		_, res1, _ := capture(t, f.src, false)
		prog, _ := parser.Parse(f.src)
		ast.StripFinishes(prog)
		sinfo, err := sem.Check(prog)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder()
		res2, err := interp.Run(sinfo, interp.Options{
			Mode: interp.DepthFirst, Instrument: true, Trace: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res1.Work != res2.Work {
			t.Errorf("%s: work %d with finishes, %d stripped", f.name, res1.Work, res2.Work)
		}
		if res1.Output != res2.Output {
			t.Errorf("%s: output changed after stripping", f.name)
		}
	}
}
