// Package trace defines the event-trace IR of the canonical sequential
// execution: a compact, replayable stream of structure events (interior
// node push/pop), step boundaries, and instrumented memory accesses.
//
// The interpreter captures a trace once; analyses then replay it many
// times — against different race-detector engines, with different
// collapse policies, or with additional virtual finish scopes injected —
// without re-executing the program. Replay reconstructs an S-DPST that
// is node-for-node identical to the one the instrumented execution
// would have built, so detector output (which references tree nodes) is
// interchangeable between the two paths.
package trace

import "finishrepair/internal/lang/ast"

// Kind discriminates trace events.
type Kind uint8

// Event kinds. The stream is a well-parenthesized sequence of
// EvPush/EvPop pairs (interior S-DPST nodes) interleaved with step
// boundaries and accesses, in canonical depth-first order.
const (
	// EvPush opens an interior node (async, finish, or scope): NKind and
	// Class carry the dpst classification, Block/Stmt the static
	// coordinates of the construct in its owner block, Body the ID of the
	// block its children instantiate, Label an index into the trace's
	// label table.
	EvPush Kind = iota
	// EvPop closes the innermost open interior node.
	EvPop
	// EvStep marks a step-boundary request for statement Stmt of block
	// Block (the interpreter's ensureStep). Replay re-applies the
	// trailing-merge rule, so consecutive EvSteps may share one node.
	EvStep
	// EvEnd ends the current step (the interpreter's endStep).
	EvEnd
	// EvRead is an instrumented read of memory location Loc.
	EvRead
	// EvWrite is an instrumented write of memory location Loc.
	EvWrite
)

// Event is one trace record. The struct is laid out to pack into 32
// bytes; which fields are meaningful depends on Kind (see the Kind
// constants). W is the number of work units executed since the previous
// event while a step was current — replay charges it to the step that
// was current when the event was recorded, reproducing per-node Work.
type Event struct {
	Loc   uint64 // EvRead/EvWrite: memory location
	Block int32  // EvStep/EvPush: owner block ID (-1 = none)
	Body  int32  // EvPush: body block ID (-1 = none)
	Stmt  int32  // EvStep/EvPush: statement index (-1, -2 = pseudo)
	W     uint32 // work units since previous event (in-step only)
	Kind  uint8  // event kind
	NKind uint8  // EvPush: dpst.Kind
	Class uint8  // EvPush: dpst.ScopeClass
	Label uint16 // EvPush: label table index
}

// chunkLen is the arena chunk size: large enough to amortize append
// overhead, small enough that short traces stay cheap.
const chunkLen = 4096

// Trace is a captured event stream plus its label table.
type Trace struct {
	chunks [][]Event // all chunks full except possibly the last
	n      int
	labels []string
	// TailWork is work executed after the final event while a step was
	// current (the trailing statement units of the run).
	TailWork int64
}

// Len reports the number of events.
func (t *Trace) Len() int { return t.n }

// Label resolves a label-table index.
func (t *Trace) Label(i uint16) string {
	if int(i) < len(t.labels) {
		return t.labels[i]
	}
	return ""
}

// Events calls fn for every event in order, stopping early if fn
// returns false.
func (t *Trace) Events(fn func(i int, e *Event) bool) {
	i := 0
	for _, c := range t.chunks {
		for j := range c {
			if !fn(i, &c[j]) {
				return
			}
			i++
		}
	}
}

// Bytes estimates the in-memory footprint of the event arena.
func (t *Trace) Bytes() int64 { return int64(t.n) * 32 }

// Recorder accumulates events during an instrumented execution. It is
// arena-backed: events append into fixed-size chunks so capture never
// reallocates the stream.
type Recorder struct {
	t       Trace
	pending uint32 // work units since the last event
	labels  map[string]uint16
	stream  *Stream // when set, sealed chunks publish as capture runs
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{labels: make(map[string]uint16)}
}

// StreamTo mirrors the capture onto s: every chunk publishes the moment
// it seals (while execution continues), and Trace publishes the partial
// tail and finishes the stream. Set it before recording starts. The
// recorder still accumulates the full trace, so streamed captures also
// yield a replayable Trace for later iterations.
func (r *Recorder) StreamTo(s *Stream) { r.stream = s }

// Trace finalizes and returns the captured trace. The recorder must not
// be used afterwards.
func (r *Recorder) Trace() *Trace {
	r.t.TailWork += int64(r.pending)
	r.pending = 0
	if r.stream != nil {
		if k := len(r.t.chunks); k > 0 && len(r.t.chunks[k-1]) < chunkLen {
			r.stream.publish(r.t.chunks[k-1], r.t.labels)
		}
		r.stream.finish(r.t.TailWork)
		r.stream = nil
	}
	return &r.t
}

// AddWork charges n work units to the step current at record time; they
// flush into the W field of the next event (or TailWork at the end).
func (r *Recorder) AddWork(n int64) { r.pending += uint32(n) }

func (r *Recorder) append(e Event) {
	e.W = r.pending
	r.pending = 0
	k := len(r.t.chunks)
	if k == 0 || len(r.t.chunks[k-1]) == chunkLen {
		r.t.chunks = append(r.t.chunks, make([]Event, 0, chunkLen))
		k++
	}
	r.t.chunks[k-1] = append(r.t.chunks[k-1], e)
	r.t.n++
	if r.stream != nil && len(r.t.chunks[k-1]) == chunkLen {
		// Sealed: the next append starts a fresh chunk, so this one is
		// immutable from here on and safe to hand to the consumer.
		r.stream.publish(r.t.chunks[k-1], r.t.labels)
	}
}

func (r *Recorder) labelIndex(s string) uint16 {
	if i, ok := r.labels[s]; ok {
		return i
	}
	i := uint16(len(r.t.labels))
	r.t.labels = append(r.t.labels, s)
	r.labels[s] = i
	return i
}

func blockID(b *ast.Block) int32 {
	if b == nil {
		return -1
	}
	return int32(b.ID)
}

// Push records the opening of an interior node.
func (r *Recorder) Push(nkind, class uint8, label string, owner *ast.Block, stmt int, body *ast.Block) {
	r.append(Event{
		Kind:  uint8(EvPush),
		NKind: nkind,
		Class: class,
		Label: r.labelIndex(label),
		Block: blockID(owner),
		Stmt:  int32(stmt),
		Body:  blockID(body),
	})
}

// Pop records the closing of the innermost interior node.
func (r *Recorder) Pop() { r.append(Event{Kind: uint8(EvPop)}) }

// Step records a step-boundary request at statement stmt of block b.
func (r *Recorder) Step(b *ast.Block, stmt int) {
	r.append(Event{Kind: uint8(EvStep), Block: blockID(b), Stmt: int32(stmt)})
}

// End records the end of the current step.
func (r *Recorder) End() { r.append(Event{Kind: uint8(EvEnd)}) }

// Read records an instrumented read of loc.
func (r *Recorder) Read(loc uint64) { r.append(Event{Kind: uint8(EvRead), Loc: loc}) }

// Write records an instrumented write of loc.
func (r *Recorder) Write(loc uint64) { r.append(Event{Kind: uint8(EvWrite), Loc: loc}) }
