package trace

import "sync"

// Stream is the capture→analyze handoff for the pipelined detection
// path: the recorder publishes each event chunk as soon as it seals
// (execution keeps running), and a replay consumer blocks on the next
// chunk, so analysis overlaps capture instead of waiting for the whole
// trace. Chunks are immutable once published; the label table is
// snapshotted alongside each chunk (every label referenced by a chunk is
// interned before the chunk seals). The chunk boundary here is the same
// one the versioned codec frames on disk, so a streamed replay and a
// decode-then-replay see identical seams.
type Stream struct {
	mu        sync.Mutex
	cond      *sync.Cond
	chunks    [][]Event
	labels    []string
	tail      int64
	done      bool
	err       error
	published int
}

// NewStream returns an empty stream; hand it to Recorder.StreamTo before
// the instrumented execution starts.
func NewStream() *Stream {
	s := &Stream{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// publish hands a sealed chunk to consumers together with a snapshot of
// the label table as of sealing time.
func (s *Stream) publish(chunk []Event, labels []string) {
	s.mu.Lock()
	s.chunks = append(s.chunks, chunk)
	s.labels = labels
	s.published++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// finish marks the stream complete, recording the trailing work units.
func (s *Stream) finish(tail int64) {
	s.mu.Lock()
	s.tail = tail
	s.done = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Fail ends the stream with a capture error: consumers waiting on the
// next chunk unblock and surface it. The producer must call Fail on any
// path where Recorder.Trace will never run, or consumers block forever.
func (s *Stream) Fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.done = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// nextChunk blocks until chunk i is published or the stream ends.
func (s *Stream) nextChunk(i int) ([]Event, []string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil {
			return nil, nil, false, s.err
		}
		if i < len(s.chunks) {
			return s.chunks[i], s.labels, true, nil
		}
		if s.done {
			return nil, nil, false, nil
		}
		s.cond.Wait()
	}
}

// tailWork reports the trailing work units; valid once the stream has
// finished.
func (s *Stream) tailWork() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tail
}

// Chunks reports how many chunks have been published so far.
func (s *Stream) Chunks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.published
}

// StreamOf returns an already-completed stream over a captured trace:
// every chunk published, tail work recorded. A streamed replay of it
// sees exactly the batch replay's events — used by tests and tools that
// exercise the streaming path without a live capture.
func StreamOf(t *Trace) *Stream {
	s := NewStream()
	for _, c := range t.chunks {
		s.publish(c, t.labels)
	}
	s.finish(t.TailWork)
	return s
}
