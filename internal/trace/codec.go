package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format ("HJTR"): a versioned, varint-packed encoding of
// the event stream so a capture can be persisted and analyzed by later
// processes. Layout:
//
//	magic   "HJTR"
//	version uvarint (currently 3)
//	labels  uvarint count, then per label uvarint length + bytes
//	events  uvarint count
//	tail    uvarint trailing work
//	stream  v1/v2: `events` records back to back
//	        v3: chunk frames — uvarint record count (> 0), then that many
//	        records — terminated by a zero count
//	record  kind byte, kind-specific varint fields, W uvarint
var traceMagic = [4]byte{'H', 'J', 'T', 'R'}

// codecVersion is bumped on any incompatible stream change. Version 2
// adds isolated regions: EvPush events may carry Class = dpst.IsoScope
// (isolated entry; the matching EvPop is the exit). Version 3 frames
// the stream on the recorder's chunk boundary: each frame is
// independently consumable, so a decoder can hand sealed frames to a
// streaming replay before the stream ends, with seams identical to the
// live capture path's. Record layout is unchanged throughout, so
// version-1 and -2 streams decode as before.
const codecVersion = 3

// minCodecVersion is the oldest stream version Read still accepts.
const minCodecVersion = 1

// WriteTo encodes the trace to w in the versioned binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}
	if _, err := cw.w.Write(traceMagic[:]); err != nil {
		return 0, err
	}
	cw.n += 4
	cw.uvarint(codecVersion)
	cw.uvarint(uint64(len(t.labels)))
	for _, s := range t.labels {
		cw.uvarint(uint64(len(s)))
		nn, err := cw.w.WriteString(s)
		cw.n += int64(nn)
		if err != nil {
			return cw.n, err
		}
	}
	cw.uvarint(uint64(t.n))
	cw.uvarint(uint64(t.TailWork))
	for _, c := range t.chunks {
		if len(c) == 0 || cw.err != nil {
			continue
		}
		cw.uvarint(uint64(len(c)))
		for j := range c {
			e := &c[j]
			cw.byte(e.Kind)
			switch Kind(e.Kind) {
			case EvPush:
				cw.byte(e.NKind)
				cw.byte(e.Class)
				cw.uvarint(uint64(e.Label))
				cw.varint(int64(e.Block))
				cw.varint(int64(e.Stmt))
				cw.varint(int64(e.Body))
			case EvStep:
				cw.varint(int64(e.Block))
				cw.varint(int64(e.Stmt))
			case EvRead, EvWrite:
				cw.uvarint(e.Loc)
			}
			cw.uvarint(uint64(e.W))
			if cw.err != nil {
				break
			}
		}
	}
	cw.uvarint(0) // frame terminator
	if cw.err != nil {
		return cw.n, cw.err
	}
	if err := cw.w.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read decodes a trace previously encoded with WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	cr := &countReader{r: br}
	v := cr.uvarint()
	if cr.err == nil && (v < minCodecVersion || v > codecVersion) {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nl := cr.uvarint()
	if cr.err != nil {
		return nil, cr.err
	}
	if nl > 1<<16 {
		return nil, fmt.Errorf("trace: label table too large (%d)", nl)
	}
	t := &Trace{labels: make([]string, 0, nl)}
	buf := make([]byte, 0, 64)
	for i := uint64(0); i < nl; i++ {
		ln := cr.uvarint()
		if cr.err != nil {
			return nil, cr.err
		}
		if ln > 1<<20 {
			return nil, fmt.Errorf("trace: label too long (%d)", ln)
		}
		if uint64(cap(buf)) < ln {
			buf = make([]byte, ln)
		}
		buf = buf[:ln]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		t.labels = append(t.labels, string(buf))
	}
	ne := cr.uvarint()
	t.TailWork = int64(cr.uvarint())
	if cr.err != nil {
		return nil, cr.err
	}
	rec := Recorder{t: *t}
	readEvent := func(i uint64) error {
		var e Event
		e.Kind = cr.byte()
		switch Kind(e.Kind) {
		case EvPush:
			e.NKind = cr.byte()
			e.Class = cr.byte()
			e.Label = uint16(cr.uvarint())
			e.Block = int32(cr.varint())
			e.Stmt = int32(cr.varint())
			e.Body = int32(cr.varint())
		case EvPop, EvEnd:
			// no payload
		case EvStep:
			e.Block = int32(cr.varint())
			e.Stmt = int32(cr.varint())
		case EvRead, EvWrite:
			e.Loc = cr.uvarint()
		default:
			return fmt.Errorf("trace: unknown event kind %d at %d", e.Kind, i)
		}
		e.W = uint32(cr.uvarint())
		if cr.err != nil {
			return fmt.Errorf("trace: truncated stream at event %d: %w", i, cr.err)
		}
		rec.append(e)
		// append clears pending into W; restore the decoded value.
		last := rec.t.chunks[len(rec.t.chunks)-1]
		last[len(last)-1].W = e.W
		return nil
	}
	if v >= 3 {
		// Chunk-framed stream: uvarint record counts, zero-terminated.
		total := uint64(0)
		for {
			cnt := cr.uvarint()
			if cr.err != nil {
				return nil, fmt.Errorf("trace: truncated frame header after event %d: %w", total, cr.err)
			}
			if cnt == 0 {
				break
			}
			if total+cnt > ne {
				return nil, fmt.Errorf("trace: frames exceed declared event count (%d > %d)", total+cnt, ne)
			}
			for j := uint64(0); j < cnt; j++ {
				if err := readEvent(total + j); err != nil {
					return nil, err
				}
			}
			total += cnt
		}
		if total != ne {
			return nil, fmt.Errorf("trace: frames hold %d events, header declares %d", total, ne)
		}
	} else {
		for i := uint64(0); i < ne; i++ {
			if err := readEvent(i); err != nil {
				return nil, err
			}
		}
	}
	out := rec.t
	return &out, nil
}

type countWriter struct {
	w   *bufio.Writer
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

func (c *countWriter) byte(b byte) {
	if c.err != nil {
		return
	}
	c.err = c.w.WriteByte(b)
	c.n++
}

func (c *countWriter) uvarint(v uint64) {
	if c.err != nil {
		return
	}
	k := binary.PutUvarint(c.buf[:], v)
	_, c.err = c.w.Write(c.buf[:k])
	c.n += int64(k)
}

func (c *countWriter) varint(v int64) {
	if c.err != nil {
		return
	}
	k := binary.PutVarint(c.buf[:], v)
	_, c.err = c.w.Write(c.buf[:k])
	c.n += int64(k)
}

type countReader struct {
	r   *bufio.Reader
	err error
}

func (c *countReader) byte() byte {
	if c.err != nil {
		return 0
	}
	b, err := c.r.ReadByte()
	c.err = err
	return b
}

func (c *countReader) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(c.r)
	c.err = err
	return v
}

func (c *countReader) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(c.r)
	c.err = err
	return v
}
