package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runVetFromRoot runs hjvet with the repository root as working
// directory so file paths in the output match the committed goldens.
func runVetFromRoot(t *testing.T, args ...string) (stdout string, code int) {
	t.Helper()
	cmd := exec.Command(bins["hjvet"], args...)
	cmd.Dir = ".."
	var ob, eb strings.Builder
	cmd.Stdout, cmd.Stderr = &ob, &eb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("hjvet %v: %v", args, err)
	}
	if eb.Len() > 0 && code != 1 && code != 2 {
		t.Errorf("unexpected stderr: %s", eb.String())
	}
	return ob.String(), code
}

// TestHjvetGolden locks the text and JSON renderings (and exit codes)
// of every program in testdata/vet against committed golden files.
func TestHjvetGolden(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "testdata", "vet", "*.hj"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no vet corpus found: %v", err)
	}
	for _, m := range matches {
		rel := filepath.ToSlash(strings.TrimPrefix(m, ".."+string(filepath.Separator)))
		name := strings.TrimSuffix(filepath.Base(m), ".hj")
		t.Run(name, func(t *testing.T) {
			golden := func(ext string) string {
				b, err := os.ReadFile(strings.TrimSuffix(m, ".hj") + ".golden." + ext)
				if err != nil {
					t.Fatalf("golden: %v", err)
				}
				return string(b)
			}
			wantCode := 0
			if golden("txt") != "" {
				wantCode = 6
			}

			text, code := runVetFromRoot(t, rel)
			if code != wantCode {
				t.Errorf("text run exit = %d, want %d", code, wantCode)
			}
			if text != golden("txt") {
				t.Errorf("text output mismatch for %s:\n got:\n%s\nwant:\n%s", rel, text, golden("txt"))
			}

			jsonOut, code := runVetFromRoot(t, "-json", rel)
			if code != wantCode {
				t.Errorf("json run exit = %d, want %d", code, wantCode)
			}
			if jsonOut != golden("json") {
				t.Errorf("json output mismatch for %s:\n got:\n%s\nwant:\n%s", rel, jsonOut, golden("json"))
			}
		})
	}
}

// TestHjvetChecksFlag restricts the run to one check and verifies only
// its diagnostics appear.
func TestHjvetChecksFlag(t *testing.T) {
	out, code := runVetFromRoot(t, "-checks", "dead-stmt", "testdata/vet/static_race.hj")
	if code != 0 || out != "" {
		t.Errorf("dead-stmt on static_race.hj: exit=%d out=%q, want clean", code, out)
	}
	out, code = runVetFromRoot(t, "-checks", "static-race", "testdata/vet/static_race.hj")
	if code != 6 || !strings.Contains(out, "[static-race]") || strings.Contains(out, "[write-after-async]") {
		t.Errorf("static-race only: exit=%d out:\n%s", code, out)
	}
}

// TestHjvetErrors covers the non-6 failure exits.
func TestHjvetErrors(t *testing.T) {
	if _, code := runVetFromRoot(t, "no/such/file.hj"); code != 1 {
		t.Errorf("missing file: exit = %d, want 1", code)
	}
	if _, code := runVetFromRoot(t); code != 2 {
		t.Errorf("no args: exit = %d, want 2", code)
	}
	if _, code := runVetFromRoot(t, "-checks", "bogus", "testdata/vet/clean.hj"); code != 1 {
		t.Errorf("unknown check: exit = %d, want 1", code)
	}
}

// TestHjvetList verifies the -list output names all seven checks.
func TestHjvetList(t *testing.T) {
	out, code := runVetFromRoot(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, name := range []string{"static-race", "redundant-finish", "unscoped-async-loop", "write-after-async", "redundant-isolated", "reducible-race", "dead-stmt"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing %s:\n%s", name, out)
		}
	}
}

// TestHjvetAllow verifies the allowlist suppresses matched diagnostics
// and flips the exit code once everything is suppressed.
func TestHjvetAllow(t *testing.T) {
	dir := t.TempDir()
	allow := filepath.Join(dir, "allow.txt")
	content := `# all redundant-finish findings in the corpus file
testdata/vet/redundant_finish.hj:10:5 redundant-finish
`
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(allow)
	if err != nil {
		t.Fatal(err)
	}
	out, code := runVetFromRoot(t, "-allow", abs, "testdata/vet/redundant_finish.hj")
	if code != 0 || out != "" {
		t.Errorf("allowlisted run: exit=%d out=%q, want clean", code, out)
	}
}
