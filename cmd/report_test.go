package cmd_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"finishrepair/internal/obs/provenance"
)

// TestExplainProvenance runs hjrepair -explain end to end and checks
// the acceptance criterion: one provenance entry per placed finish,
// each carrying the race pairs, the NS-LCA node, the DP states
// explored, and the CPL before/after.
func TestExplainProvenance(t *testing.T) {
	dir := t.TempDir()
	explain := filepath.Join(dir, "explain.json")
	_, stderr, code := runTool(t, "hjrepair", "-quiet", "-explain", explain,
		"-o", filepath.Join(dir, "fixed.hj"), "../examples/hj/counter.hj")
	if code != 0 {
		t.Fatalf("hjrepair -explain failed (%d): %s", code, stderr)
	}
	f, err := os.Open(explain)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ex, err := provenance.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Program != "../examples/hj/counter.hj" {
		t.Errorf("Program = %q", ex.Program)
	}
	if !ex.Converged {
		t.Error("repair did not converge")
	}
	if len(ex.Finishes) == 0 {
		t.Fatal("no finish entries in explain record")
	}
	for i, fe := range ex.Finishes {
		if len(fe.Races) == 0 {
			t.Errorf("finish %d: no race pairs", i)
		}
		if fe.LCA.Kind == "" {
			t.Errorf("finish %d: no NS-LCA node", i)
		}
		if fe.DPStates == 0 && !fe.Fallback {
			t.Errorf("finish %d: no DP states and not a fallback", i)
		}
		if fe.CPLBefore.Work == 0 || fe.CPLAfter.Work == 0 {
			t.Errorf("finish %d: missing CPL before/after: %+v", i, fe)
		}
		if fe.Finish.Pos == "" {
			t.Errorf("finish %d: no source position", i)
		}
	}
	if ex.CPLBefore.Span == 0 || ex.CPLAfter.Span == 0 {
		t.Errorf("run-level CPL missing: before %+v after %+v", ex.CPLBefore, ex.CPLAfter)
	}
}

// TestExplainVerboseText checks the -explain -v human-readable "why
// this finish" summary on stderr.
func TestExplainVerboseText(t *testing.T) {
	dir := t.TempDir()
	_, stderr, code := runTool(t, "hjrepair", "-quiet", "-v",
		"-explain", filepath.Join(dir, "explain.json"),
		"-o", filepath.Join(dir, "fixed.hj"), "../examples/hj/counter.hj")
	if code != 0 {
		t.Fatalf("hjrepair failed (%d): %s", code, stderr)
	}
	for _, want := range []string{"critical path:", "why:", "share NS-LCA", "how:", "wrap statements"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("explain text missing %q:\n%s", want, stderr)
		}
	}
}

// TestHjreportEndToEnd runs the full pipeline — hjrepair -explain
// -jsonl, then hjreport — and checks the HTML is self-contained: every
// report section present, zero external fetches.
func TestHjreportEndToEnd(t *testing.T) {
	dir := t.TempDir()
	explain := filepath.Join(dir, "explain.json")
	jsonl := filepath.Join(dir, "run.jsonl")
	_, stderr, code := runTool(t, "hjrepair", "-quiet", "-vet",
		"-explain", explain, "-jsonl", jsonl,
		"-o", filepath.Join(dir, "fixed.hj"), "../examples/hj/counter.hj")
	if code != 0 {
		t.Fatalf("hjrepair failed (%d): %s", code, stderr)
	}

	html := filepath.Join(dir, "report.html")
	_, stderr, code = runTool(t, "hjreport", "-explain", explain, "-jsonl", jsonl, "-o", html)
	if code != 0 {
		t.Fatalf("hjreport failed (%d): %s", code, stderr)
	}
	raw, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)

	for _, want := range []string{
		"<!DOCTYPE html>",
		"Scope-placement timeline",
		"Races by NS-LCA group",
		"Pipeline flame chart",
		"Latency &amp; size distributions",
		"Counters &amp; gauges",
		"repair.stage_detect_ns", // a per-stage latency histogram card
		"p95",                    // quantiles on the cards
	} {
		if !strings.Contains(page, want) {
			t.Errorf("report missing %q", want)
		}
	}

	// Self-contained: no external URLs, scripts, or stylesheet links.
	if m := regexp.MustCompile(`https?://[^"'\s<]+`).FindString(page); m != "" {
		t.Errorf("report references an external URL: %s", m)
	}
	for _, banned := range []string{"<script src", "<link rel=\"stylesheet\"", "@import", "url("} {
		if strings.Contains(page, banned) {
			t.Errorf("report not self-contained: found %q", banned)
		}
	}
}

// TestHjreportExplainOnly checks hjreport degrades gracefully with only
// the explain input: provenance sections render, span/metric ones are
// omitted rather than broken.
func TestHjreportExplainOnly(t *testing.T) {
	dir := t.TempDir()
	explain := filepath.Join(dir, "explain.json")
	if _, stderr, code := runTool(t, "hjrepair", "-quiet", "-explain", explain,
		"-o", filepath.Join(dir, "fixed.hj"), "../examples/hj/counter.hj"); code != 0 {
		t.Fatalf("hjrepair failed (%d): %s", code, stderr)
	}
	stdout, stderr, code := runTool(t, "hjreport", "-explain", explain)
	if code != 0 {
		t.Fatalf("hjreport failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "Scope-placement timeline") {
		t.Error("explain-only report missing the scope timeline")
	}
	if strings.Contains(stdout, "Pipeline flame chart") {
		t.Error("explain-only report claims a flame chart with no span input")
	}
}

// TestHjreportUsage checks the no-input usage error.
func TestHjreportUsage(t *testing.T) {
	_, _, code := runTool(t, "hjreport")
	if code != 2 {
		t.Errorf("hjreport with no inputs: exit %d, want 2", code)
	}
}
