// Command hjrun executes an HJ-lite program.
//
// Usage:
//
//	hjrun [-mode seq|par|detect|coverage] [-workers N] program.hj
//
// Modes:
//
//	seq      serial elision (async/finish ignored) — the reference
//	par      parallel execution on the taskpar work-stealing runtime
//	detect   canonical depth-first execution with MRW race detection
//	coverage test-adequacy analysis: which asyncs/statements the
//	         input actually exercises
//	dot      S-DPST with race edges in Graphviz format (paper Fig. 9)
package main

import (
	"flag"
	"fmt"
	"os"

	"finishrepair/tdr"
)

func main() {
	mode := flag.String("mode", "par", "execution mode: seq, par, detect, or coverage")
	workers := flag.Int("workers", 0, "pool workers for -mode par (0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hjrun [flags] program.hj")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := tdr.Load(string(src))
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "seq":
		out, err := prog.RunSequential()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "par":
		out, err := prog.RunParallel(*workers)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "dot":
		dot, err := prog.SDPSTDot()
		if err != nil {
			fatal(err)
		}
		fmt.Print(dot)
	case "coverage":
		cov, err := prog.Coverage()
		if err != nil {
			fatal(err)
		}
		fmt.Println(cov)
		if !cov.Adequate() {
			fmt.Fprintln(os.Stderr, "hjrun: WARNING: some async statements never executed; this input cannot drive their repair")
			os.Exit(1)
		}
	case "detect":
		rep, err := prog.Detect(tdr.MRW)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Output)
		fmt.Fprintf(os.Stderr, "hjrun: %d race(s), %d S-DPST nodes\n", len(rep.Races), rep.SDPSTNodes)
		for i, r := range rep.Races {
			if i >= 20 {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(rep.Races)-20)
				break
			}
			fmt.Fprintf(os.Stderr, "  %s: step %d (%s) -> step %d (%s)\n",
				r.Kind, r.SrcStep, r.SrcPos, r.DstStep, r.DstPos)
		}
		if len(rep.Races) > 0 {
			os.Exit(1)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hjrun:", err)
	os.Exit(1)
}
