// Command hjrun executes an HJ-lite program.
//
// Usage:
//
//	hjrun [-mode seq|par|detect|coverage|dot] [-workers N]
//	      [-trace out.json] [-jsonl out.jsonl] [-metrics] [-v] program.hj
//
// Modes:
//
//	seq      serial elision (async/finish ignored) — the reference
//	par      parallel execution on the taskpar work-stealing runtime
//	detect   canonical depth-first execution with MRW race detection
//	coverage test-adequacy analysis: which asyncs/statements the
//	         input actually exercises
//	dot      S-DPST with race edges in Graphviz format (paper Fig. 9)
//
// Observability: -trace writes a Chrome trace_event JSON of the phases
// (parse, sem-check, and the run/detect phase), -jsonl a JSONL event
// log, -metrics the metrics snapshot (including taskpar/sched task and
// steal counters for -mode par) to stderr, and -v the span tree.
//
// -timeout bounds the wall clock of the whole run; exhausting it (or
// any other resource budget) exits 4.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"finishrepair/internal/obs"
	"finishrepair/tdr"
)

// exitBudgetExceeded is the distinct exit code for a run stopped by a
// resource budget (wall clock, ops) or cancellation.
const exitBudgetExceeded = 4

func main() {
	mode := flag.String("mode", "par", "execution mode: seq, par, detect, or coverage")
	workers := flag.Int("workers", 0, "pool workers for -mode par (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON of the phases to this file")
	jsonlFile := flag.String("jsonl", "", "write a JSONL event log (spans + metrics) to this file")
	metrics := flag.Bool("metrics", false, "print the metrics snapshot to stderr")
	verbose := flag.Bool("v", false, "print the phase span tree to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hjrun [flags] program.hj")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *traceFile != "" || *jsonlFile != "" || *verbose {
		tracer = obs.New()
	}
	// A failed export turns an otherwise-successful run into exit 1: the
	// caller asked for a trace it did not get.
	exportFailed := false
	exportObs := func() {
		if tracer.Enabled() {
			if err := obs.ExportFiles(tracer, *traceFile, *jsonlFile); err != nil {
				fmt.Fprintln(os.Stderr, "hjrun:", err)
				exportFailed = true
			}
			if *verbose {
				obs.WriteSpansText(os.Stderr, tracer.Records())
			}
		}
		if *metrics {
			obs.WriteText(os.Stderr, obs.Default().Snapshot())
		}
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := tdr.LoadTraced(string(src), tracer)
	if err != nil {
		fatal(err)
	}

	exit := func(code int) {
		exportObs()
		os.Exit(code)
	}

	budget := tdr.Budget{Timeout: *timeout}
	ctx := context.Background()
	fail := func(err error) {
		exportObs()
		fmt.Fprintln(os.Stderr, "hjrun:", err)
		if tdr.IsBudgetOrCanceled(err) {
			os.Exit(exitBudgetExceeded)
		}
		os.Exit(1)
	}

	switch *mode {
	case "seq":
		out, err := prog.RunSequentialCtx(ctx, budget)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	case "par":
		out, err := prog.RunParallelCtx(ctx, *workers, budget)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	case "dot":
		dot, err := prog.SDPSTDot()
		if err != nil {
			fatal(err)
		}
		fmt.Print(dot)
	case "coverage":
		cov, err := prog.Coverage()
		if err != nil {
			fatal(err)
		}
		fmt.Println(cov)
		if !cov.Adequate() {
			fmt.Fprintln(os.Stderr, "hjrun: WARNING: some async statements never executed; this input cannot drive their repair")
			exit(1)
		}
	case "detect":
		rep, err := prog.DetectCtx(ctx, tdr.MRW, budget)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.Output)
		fmt.Fprintf(os.Stderr, "hjrun: %d race(s), %d S-DPST nodes\n", len(rep.Races), rep.SDPSTNodes)
		for i, r := range rep.Races {
			if i >= 20 {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(rep.Races)-20)
				break
			}
			fmt.Fprintf(os.Stderr, "  %s: step %d (%s) -> step %d (%s)\n",
				r.Kind, r.SrcStep, r.SrcPos, r.DstStep, r.DstPos)
		}
		if len(rep.Races) > 0 {
			exit(1)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	exportObs()
	if exportFailed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hjrun:", err)
	os.Exit(1)
}
