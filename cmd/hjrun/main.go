// Command hjrun executes an HJ-lite program.
//
// Usage:
//
//	hjrun [-mode seq|par|detect|coverage|stress|dot] [-workers N]
//	      [-detector mrw|srw|espbags|vc|both]
//	      [-adversary K] [-sched-seed N]
//	      [-trace out.json] [-jsonl out.jsonl] [-metrics] [-v] program.hj
//
// Modes:
//
//	seq      serial elision (async/finish ignored) — the reference
//	par      parallel execution on the taskpar work-stealing runtime
//	detect   canonical depth-first execution with race detection
//	coverage test-adequacy analysis: which asyncs/statements the
//	         input actually exercises
//	stress   adversarial schedule stress: re-execute under K
//	         deterministic schedules (race-directed on every global plus
//	         seeded random-priority; -adversary K, -sched-seed N) and
//	         compare each against the serial oracle — exit 7 with a
//	         replayable witness on any divergence
//	dot      S-DPST with race edges in Graphviz format (paper Fig. 9)
//
// For -mode detect, -detector picks the detector: "mrw" (default) and
// "srw" select the ESP-Bags variant; "espbags", "vc", and "both" select
// the engine that analyzes the captured event trace — ESP-Bags, the
// vector-clock detector, or both in lockstep. With "both" any race-set
// disagreement between the engines exits with code 5.
//
// Observability: -trace writes a Chrome trace_event JSON of the phases
// (parse, sem-check, and the run/detect phase), -jsonl a JSONL event
// log, -metrics the metrics snapshot (including taskpar/sched task and
// steal counters for -mode par) to stderr, and -v the span tree.
//
// -timeout bounds the wall clock of the whole run; exhausting it (or
// any other resource budget) exits 4.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"finishrepair/internal/obs"
	"finishrepair/tdr"
)

// exitBudgetExceeded is the distinct exit code for a run stopped by a
// resource budget (wall clock, ops) or cancellation; exitDisagreement
// for differential detector engines (-detector both) reporting
// different race sets; exitAdversary for a -mode stress run whose
// program diverged from the serial oracle under some schedule.
const (
	exitBudgetExceeded = 4
	exitDisagreement   = 5
	exitAdversary      = 7
)

func main() {
	mode := flag.String("mode", "par", "execution mode: seq, par, detect, coverage, or stress")
	workers := flag.Int("workers", 0, "pool workers for -mode par (0 = GOMAXPROCS)")
	detector := flag.String("detector", "mrw", "race detector for -mode detect: mrw|srw (ESP-Bags variant) or espbags|vc|both (trace-analysis engine)")
	adversary := flag.Int("adversary", 0, "schedules for -mode stress (0 = 16)")
	schedSeed := flag.Int64("sched-seed", 0, "seed for -mode stress's random-priority schedules; runs are deterministic per seed")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON of the phases to this file")
	jsonlFile := flag.String("jsonl", "", "write a JSONL event log (spans + metrics) to this file")
	metrics := flag.Bool("metrics", false, "print the metrics snapshot to stderr")
	verbose := flag.Bool("v", false, "print the phase span tree to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hjrun [flags] program.hj")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *traceFile != "" || *jsonlFile != "" || *verbose {
		tracer = obs.New()
	}
	// A failed export turns an otherwise-successful run into exit 1: the
	// caller asked for a trace it did not get.
	exportFailed := false
	exportObs := func() {
		if tracer.Enabled() {
			if err := obs.ExportFiles(tracer, *traceFile, *jsonlFile); err != nil {
				fmt.Fprintln(os.Stderr, "hjrun:", err)
				exportFailed = true
			}
			if *verbose {
				obs.WriteSpansText(os.Stderr, tracer.Records())
			}
		}
		if *metrics {
			obs.WriteText(os.Stderr, obs.Default().Snapshot())
		}
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := tdr.LoadTraced(string(src), tracer)
	if err != nil {
		fatal(err)
	}

	exit := func(code int) {
		exportObs()
		os.Exit(code)
	}

	budget := tdr.Budget{Timeout: *timeout}
	ctx := context.Background()
	fail := func(err error) {
		exportObs()
		fmt.Fprintln(os.Stderr, "hjrun:", err)
		if tdr.IsBudgetOrCanceled(err) {
			os.Exit(exitBudgetExceeded)
		}
		os.Exit(1)
	}

	switch *mode {
	case "seq":
		out, err := prog.RunSequentialCtx(ctx, budget)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	case "par":
		out, err := prog.RunParallelCtx(ctx, *workers, budget)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	case "dot":
		dot, err := prog.SDPSTDot()
		if err != nil {
			fatal(err)
		}
		fmt.Print(dot)
	case "coverage":
		cov, err := prog.Coverage()
		if err != nil {
			fatal(err)
		}
		fmt.Println(cov)
		if !cov.Adequate() {
			fmt.Fprintln(os.Stderr, "hjrun: WARNING: some async statements never executed; this input cannot drive their repair")
			exit(1)
		}
	case "stress":
		rep, err := prog.Stress(ctx, tdr.StressOptions{
			Schedules: *adversary,
			Seed:      *schedSeed,
			Budget:    budget,
		})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "hjrun: stress: %d/%d schedule(s) diverged from the serial oracle (seed %d)\n",
			rep.Failures, rep.Schedules, *schedSeed)
		for i, d := range rep.Diverged {
			if i >= 20 {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(rep.Diverged)-20)
				break
			}
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		if rep.First != nil {
			fmt.Fprintf(os.Stderr, "hjrun: witness: replay with schedule %s: expected %q got %q\n",
				rep.First.Schedule, rep.First.Expected, rep.First.Actual)
			if rep.First.ExpectedState != rep.First.ActualState {
				fmt.Fprintf(os.Stderr, "hjrun: witness: final state expected %q got %q\n",
					rep.First.ExpectedState, rep.First.ActualState)
			}
		}
		if rep.Failures > 0 {
			exit(exitAdversary)
		}
	case "detect":
		d, eng, ok := tdr.ParseDetector(*detector)
		if !ok {
			fatal(fmt.Errorf("unknown detector %q", *detector))
		}
		rep, err := prog.DetectEngineCtx(ctx, d, eng, budget)
		if err != nil {
			var de *tdr.DisagreementError
			if errors.As(err, &de) {
				exportObs()
				fmt.Fprintln(os.Stderr, "hjrun:", err)
				os.Exit(exitDisagreement)
			}
			fail(err)
		}
		fmt.Print(rep.Output)
		fmt.Fprintf(os.Stderr, "hjrun: %d race(s), %d S-DPST nodes\n", len(rep.Races), rep.SDPSTNodes)
		for i, r := range rep.Races {
			if i >= 20 {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(rep.Races)-20)
				break
			}
			fmt.Fprintf(os.Stderr, "  %s: step %d (%s) -> step %d (%s)\n",
				r.Kind, r.SrcStep, r.SrcPos, r.DstStep, r.DstPos)
		}
		if len(rep.Races) > 0 {
			exit(1)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	exportObs()
	if exportFailed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hjrun:", err)
	os.Exit(1)
}
