// Command hjrepair runs the test-driven data-race repair tool on an
// HJ-lite program: it executes the program on its built-in input,
// detects all data races of the canonical sequential execution, inserts
// finish statements that eliminate them while maximizing parallelism,
// and prints the repaired source.
//
// Usage:
//
//	hjrepair [-detector mrw|srw] [-o out.hj] [-quiet] program.hj
package main

import (
	"flag"
	"fmt"
	"os"

	"finishrepair/tdr"
)

func main() {
	detector := flag.String("detector", "mrw", "race detector variant: mrw or srw")
	out := flag.String("o", "", "write repaired program to this file (default stdout)")
	quiet := flag.Bool("quiet", false, "suppress the repair summary on stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hjrepair [flags] program.hj")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := tdr.Load(string(src))
	if err != nil {
		fatal(err)
	}

	d := tdr.MRW
	if *detector == "srw" {
		d = tdr.SRW
	} else if *detector != "mrw" {
		fatal(fmt.Errorf("unknown detector %q", *detector))
	}

	rep, err := prog.Repair(tdr.RepairOptions{Detector: d})
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "hjrepair: %d race(s) found, %d finish(es) inserted in %d iteration(s)\n",
			rep.RacesFound, rep.FinishesInserted, rep.Iterations)
	}

	repaired := prog.Source()
	if *out == "" {
		fmt.Print(repaired)
		return
	}
	if err := os.WriteFile(*out, []byte(repaired), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hjrepair:", err)
	os.Exit(1)
}
