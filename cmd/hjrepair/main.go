// Command hjrepair runs the test-driven data-race repair tool on an
// HJ-lite program: it executes the program on its built-in input,
// detects all data races of the canonical sequential execution, inserts
// finish statements that eliminate them while maximizing parallelism,
// and prints the repaired source.
//
// Usage:
//
//	hjrepair [-detector mrw|srw|espbags|vc|both] [-strategy finish|isolated|auto] ("iso" = "isolated")
//	         [-j N] [-o out.hj]
//	         [-quiet] [-max-iter N] [-timeout D] [-max-dp-states N]
//	         [-vet] [-static-prune] [-explain out.json]
//	         [-witness] [-adversary K] [-sched-seed N]
//	         [-trace out.json] [-jsonl out.jsonl] [-metrics] [-v] program.hj
//
// -detector picks the detector: "mrw" (default) and "srw" select the
// ESP-Bags variant; "espbags", "vc", and "both" select the analysis
// engine replayed over the captured event trace — ESP-Bags, the
// vector-clock detector, or both in lockstep. With "both" any race-set
// disagreement between the engines aborts the repair with exit code 5.
//
// -strategy picks how each race group is eliminated: "finish" inserts
// finish statements (the paper's repair), "isolated" (alias "iso")
// wraps commutative conflicting updates in isolated blocks where that
// eliminates the
// group's races (falling back to finish where it does not), and "auto"
// (default) probes both candidates per group against the captured trace
// and keeps the one with the shorter post-repair critical path. The
// -explain record documents every choice (candidate spans and why).
//
// -j N parallelizes the analysis: with "-detector both" the two engines
// analyze the captured trace concurrently, and the independent
// per-NS-LCA finish-placement problems are solved on a worker pool of N
// goroutines. The repaired program is byte-identical for any N.
//
// Robustness: -timeout bounds the wall-clock time of the whole pipeline
// and -max-dp-states bounds the dynamic-programming states explored by
// finish placement. A DP-state or deadline trip mid-placement degrades
// to the coarse sound placement (reported in the summary) rather than
// failing; exhausting a budget outright exits 4.
//
// Static analysis: -vet runs the static MHP/effect analyzer before the
// repair and reports on stderr every static race candidate the test
// input never exercised — the repair guarantee is test-driven, and
// these pairs are where other inputs could still race. -static-prune
// uses the same analysis to skip race groups that are statically
// serial; the repaired program is byte-identical with or without it.
//
// Observability: -trace writes a Chrome trace_event JSON covering every
// pipeline phase (open it in chrome://tracing or ui.perfetto.dev),
// -jsonl writes the same spans plus the metrics registry as a JSONL
// event log, -metrics prints the metrics snapshot to stderr, and -v
// prints the span tree to stderr.
//
// Provenance: -explain out.json records WHY each finish landed where it
// did — per repair iteration, the detected race pairs, their NS-LCA
// groups, the DP placement decisions (candidates, chosen range, states
// explored), and the critical-path length before/after — as a JSON
// document hjreport can render. With -v the same record is also
// summarized as human-readable "why this finish" text on stderr.
//
// Adversarial replay: -witness replays each reported race on the
// original program under deterministic race-directed schedules until it
// observably diverges from the serial oracle, printing the witness
// (schedule, expected vs actual output/state) on stderr and recording it
// in the -explain document; with -vet the coverage gaps are additionally
// driven by position-directed schedules and each gets a verdict
// (witnessed / unreachable / no-divergence). -adversary K re-executes
// the repaired program under K adversarial schedules (race-directed plus
// seeded random-priority; -witness alone implies K=16) and fails with
// exit 7 if any diverges from the serial oracle. -sched-seed makes the
// seeded schedules reproducible: same program, flags, and seed — same
// schedules, same witnesses, bit-identical output.
//
// Exit codes: 0 repaired (or already race-free), 1 error, 2 usage,
// 3 the iteration bound was exhausted with races remaining, 4 a
// resource budget (wall clock, ops, DP states) was exhausted or the run
// was canceled, 5 the differential detector engines disagreed
// (-detector both), 7 adversarial replay found a divergence that
// survives the repair: the verification diverged, or the iteration
// bound was exhausted with at least one witnessed race.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"finishrepair/internal/obs"
	"finishrepair/internal/repair"
	"finishrepair/tdr"
)

// exitMaxIterations is the distinct exit code for a repair that ran out
// of iterations before reaching race-freedom; exitBudgetExceeded for a
// run stopped by a resource budget or cancellation; exitDisagreement
// for differential detector engines (-detector both) reporting
// different race sets.
// exitAdversary reports a divergence that survives the repair: either
// the post-repair adversarial verification diverged from the serial
// oracle, or the iteration bound was exhausted with at least one race
// replayed to a concrete witness (witnessed but unrepaired).
const (
	exitMaxIterations  = 3
	exitBudgetExceeded = 4
	exitDisagreement   = 5
	exitAdversary      = 7
)

func main() {
	detector := flag.String("detector", "mrw", "race detector: mrw|srw (ESP-Bags variant) or espbags|vc|both (trace-analysis engine)")
	strategy := flag.String("strategy", "auto", "repair strategy per race group: finish|isolated|auto; \"iso\" is accepted as an alias of isolated (auto picks the shorter post-repair critical path)")
	workers := flag.Int("j", 1, "analysis parallelism: concurrent detector engines and per-NS-LCA DP workers (output is identical for any value)")
	out := flag.String("o", "", "write repaired program to this file (default stdout)")
	quiet := flag.Bool("quiet", false, "suppress the repair summary on stderr")
	maxIter := flag.Int("max-iter", 0, "bound on detect/repair rounds (0 = default 10)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole pipeline (0 = none)")
	maxDPStates := flag.Int64("max-dp-states", 0, "bound on DP states explored by finish placement (0 = unlimited)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON of the pipeline phases to this file")
	jsonlFile := flag.String("jsonl", "", "write a JSONL event log (spans + metrics) to this file")
	metrics := flag.Bool("metrics", false, "print the metrics snapshot to stderr")
	verbose := flag.Bool("v", false, "print the phase span tree to stderr")
	vet := flag.Bool("vet", false, "run the static analyzer and report race candidates the test input never exercised (coverage gaps) on stderr")
	staticPrune := flag.Bool("static-prune", false, "skip NS-LCA race groups the static MHP analysis proves serial (output is identical either way)")
	explainFile := flag.String("explain", "", "write the repair-provenance record (race pairs, NS-LCA groups, DP decisions, CPL before/after) as JSON to this file; with -v also summarize it on stderr")
	witness := flag.Bool("witness", false, "replay each reported race under deterministic adversarial schedules to a concrete divergence witness; with -vet also drive the coverage gaps to a verdict")
	adversary := flag.Int("adversary", 0, "verify the repaired program under this many adversarial schedules, exit 7 on any divergence from the serial oracle (0 with -witness = 16)")
	schedSeed := flag.Int64("sched-seed", 0, "seed for the random-priority adversarial schedules; runs with the same program, flags, and seed are bit-identical")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hjrepair [flags] program.hj")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *traceFile != "" || *jsonlFile != "" || *verbose {
		tracer = obs.New()
	}
	// Exporters run on every exit path so failed repairs stay auditable.
	// A failed export turns an otherwise-successful run into exit 1: the
	// caller asked for a trace it did not get.
	exportFailed := false
	exportObs := func() {
		if tracer.Enabled() {
			if err := obs.ExportFiles(tracer, *traceFile, *jsonlFile); err != nil {
				fmt.Fprintln(os.Stderr, "hjrepair:", err)
				exportFailed = true
			}
			if *verbose {
				obs.WriteSpansText(os.Stderr, tracer.Records())
			}
		}
		if *metrics {
			obs.WriteText(os.Stderr, obs.Default().Snapshot())
		}
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := tdr.LoadTraced(string(src), tracer)
	if err != nil {
		fatal(err)
	}

	d, eng, ok := tdr.ParseDetector(*detector)
	if !ok {
		fatal(fmt.Errorf("unknown detector %q", *detector))
	}
	strat, ok := tdr.ParseStrategy(*strategy)
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q (have finish, isolated (alias iso), auto)", *strategy))
	}

	// Like exportObs, the explain record is written on every exit path
	// where a (possibly partial) report exists, so aborted repairs stay
	// explainable.
	writeExplain := func(rep *tdr.RepairReport) {
		if *explainFile == "" || rep == nil || rep.Explain == nil {
			return
		}
		rep.Explain.Program = flag.Arg(0)
		f, err := os.Create(*explainFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hjrepair:", err)
			exportFailed = true
			return
		}
		werr := rep.Explain.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "hjrepair:", werr)
			exportFailed = true
		}
		if *verbose {
			rep.Explain.WriteText(os.Stderr)
		}
	}

	rep, err := prog.Repair(tdr.RepairOptions{
		Detector:           d,
		Engine:             eng,
		MaxIterations:      *maxIter,
		Budget:             tdr.Budget{Timeout: *timeout, MaxDPStates: *maxDPStates},
		Workers:            *workers,
		Vet:                *vet,
		StaticPrune:        *staticPrune,
		Explain:            *explainFile != "",
		Witness:            *witness,
		AdversarySchedules: *adversary,
		SchedSeed:          *schedSeed,
		Strategy:           strat,
	})
	if err != nil {
		var de *tdr.DisagreementError
		if errors.As(err, &de) {
			exportObs()
			fmt.Fprintln(os.Stderr, "hjrepair:", err)
			os.Exit(exitDisagreement)
		}
		var mi *repair.MaxIterationsError
		if errors.As(err, &mi) {
			if !*quiet {
				summarize(rep, mi)
			}
			vetReport(rep)
			adversaryReport(rep)
			writeExplain(rep)
			exportObs()
			fmt.Fprintln(os.Stderr, "hjrepair:", err)
			// Witnessed but unrepaired: the unfixed races are proven
			// observable, which is worse than merely running out of rounds.
			if rep != nil && len(rep.Witnesses) > 0 {
				os.Exit(exitAdversary)
			}
			os.Exit(exitMaxIterations)
		}
		var ae *tdr.AdversaryError
		if errors.As(err, &ae) {
			if !*quiet {
				summarize(rep, nil)
			}
			vetReport(rep)
			adversaryReport(rep)
			writeExplain(rep)
			exportObs()
			fmt.Fprintln(os.Stderr, "hjrepair:", err)
			os.Exit(exitAdversary)
		}
		if tdr.IsBudgetOrCanceled(err) {
			if !*quiet {
				summarize(rep, nil)
			}
			writeExplain(rep)
			exportObs()
			fmt.Fprintln(os.Stderr, "hjrepair:", err)
			os.Exit(exitBudgetExceeded)
		}
		exportObs()
		fatal(err)
	}
	if !*quiet {
		summarize(rep, nil)
	}
	vetReport(rep)
	adversaryReport(rep)
	writeExplain(rep)
	exportObs()

	repaired := prog.Source()
	if *out == "" {
		fmt.Print(repaired)
	} else if err := os.WriteFile(*out, []byte(repaired), 0o644); err != nil {
		fatal(err)
	}
	if exportFailed {
		os.Exit(1)
	}
}

// summarize prints the one-line repair summary with the per-iteration
// race counts (e.g. "races/iter: 3,2,0"; the final 0 is the race-free
// confirmation round).
func summarize(rep *tdr.RepairReport, mi *repair.MaxIterationsError) {
	if rep == nil {
		return
	}
	perIter := make([]string, 0, len(rep.PerIteration))
	for _, n := range rep.RacesPerIteration() {
		perIter = append(perIter, fmt.Sprint(n))
	}
	status := ""
	if mi != nil {
		status = fmt.Sprintf(", %d race(s) UNRESOLVED", mi.RemainingRaces)
	}
	inserted := fmt.Sprintf("%d finish(es)", rep.FinishesInserted)
	if rep.IsolatedInserted > 0 {
		inserted = fmt.Sprintf("%d scope(s) (%d finish, %d isolated)",
			rep.FinishesInserted, rep.FinishesInserted-rep.IsolatedInserted, rep.IsolatedInserted)
	}
	fmt.Fprintf(os.Stderr, "hjrepair: %d race(s) found, %s inserted in %d iteration(s) (races/iter: %s)%s\n",
		rep.RacesFound, inserted, rep.Iterations, strings.Join(perIter, ","), status)
	if rep.Degraded {
		fmt.Fprintf(os.Stderr, "hjrepair: DEGRADED placement (still race-free, possibly over-synchronized): %s\n",
			rep.DegradedReason)
	}
}

// vetReport prints the -vet coverage-gap report: every static race
// candidate the dynamic detection rounds never exercised. An empty gap
// set means the test input drove every statically possible race.
func vetReport(rep *tdr.RepairReport) {
	if rep == nil || rep.StaticCandidates == 0 && len(rep.CoverageGaps) == 0 {
		return
	}
	exercised := rep.StaticCandidates - len(rep.CoverageGaps)
	fmt.Fprintf(os.Stderr, "hjrepair: vet: %d/%d static race candidate(s) exercised by this input\n",
		exercised, rep.StaticCandidates)
	for _, g := range rep.CoverageGaps {
		fmt.Fprintf(os.Stderr, "hjrepair: vet: unexercised: %s\n", g)
	}
}

// adversaryReport prints the -witness/-adversary results: each race's
// replayed witness, the gap-search verdicts, and the verification tally.
func adversaryReport(rep *tdr.RepairReport) {
	if rep == nil {
		return
	}
	for _, w := range rep.Witnesses {
		fmt.Fprintf(os.Stderr, "hjrepair: witness: %s under %s: %s (expected %q got %q)\n",
			w.Race, w.Schedule, w.Reason, w.Expected, w.Actual)
	}
	for _, g := range rep.GapVerdicts {
		line := fmt.Sprintf("hjrepair: gap %s: %s", g.Status, g.Gap)
		if g.Schedule != "" {
			line += fmt.Sprintf(" (schedule %s)", g.Schedule)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if rep.Adversary != nil {
		fmt.Fprintf(os.Stderr, "hjrepair: adversary: %d/%d schedule(s) diverged from the serial oracle (seed %d)\n",
			rep.Adversary.Failures, rep.Adversary.Schedules, rep.Adversary.Seed)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hjrepair:", err)
	os.Exit(1)
}
