// Package cmd_test builds the command-line tools once and exercises them
// end to end on the testdata programs.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"finishrepair/internal/obs"
)

var bins = map[string]string{}

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "finishrepair-cli")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	for _, tool := range []string{"hjrepair", "hjrun", "hjbench", "hjvet", "hjreport"} {
		bin := filepath.Join(dir, tool)
		out, err := exec.Command("go", "build", "-o", bin, "./"+tool).CombinedOutput()
		if err != nil {
			panic(tool + ": " + string(out))
		}
		bins[tool] = bin
	}
	os.Exit(m.Run())
}

func runTool(t *testing.T, tool string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bins[tool], args...)
	var ob, eb strings.Builder
	cmd.Stdout, cmd.Stderr = &ob, &eb
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", tool, args, err)
	}
	return ob.String(), eb.String(), code
}

func TestHjrunDetectFindsRaces(t *testing.T) {
	_, stderr, code := runTool(t, "hjrun", "-mode", "detect", "../testdata/buggy_fib.hj")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (races found); stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "race(s)") {
		t.Errorf("stderr missing race report: %s", stderr)
	}
}

func TestHjrepairThenRun(t *testing.T) {
	dir := t.TempDir()
	fixed := filepath.Join(dir, "fixed.hj")
	_, stderr, code := runTool(t, "hjrepair", "-o", fixed, "../testdata/buggy_fib.hj")
	if code != 0 {
		t.Fatalf("hjrepair failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stderr, "finish(es) inserted") {
		t.Errorf("missing summary: %s", stderr)
	}
	if !strings.Contains(stderr, "races/iter:") {
		t.Errorf("summary missing per-iteration race counts: %s", stderr)
	}

	// The repaired program is race-free and runs in parallel.
	_, stderr, code = runTool(t, "hjrun", "-mode", "detect", fixed)
	if code != 0 {
		t.Fatalf("repaired program still racy: %s", stderr)
	}
	stdout, _, code := runTool(t, "hjrun", "-mode", "par", fixed)
	if code != 0 || stdout != "144\n" {
		t.Fatalf("parallel run: code %d output %q, want 144", code, stdout)
	}
	stdout, _, _ = runTool(t, "hjrun", "-mode", "seq", fixed)
	if stdout != "144\n" {
		t.Fatalf("sequential run output %q, want 144", stdout)
	}
}

func TestHjrunCoverage(t *testing.T) {
	stdout, _, code := runTool(t, "hjrun", "-mode", "coverage", "../testdata/quicksort.hj")
	if code != 0 {
		t.Fatalf("coverage exit %d", code)
	}
	if !strings.Contains(stdout, "asyncs 2/2") {
		t.Errorf("coverage output %q missing async coverage", stdout)
	}
}

func TestHjrunExpertQuicksortIsRaceFree(t *testing.T) {
	stdout, stderr, code := runTool(t, "hjrun", "-mode", "detect", "../testdata/quicksort.hj")
	if code != 0 {
		t.Fatalf("expert quicksort reported races: %s", stderr)
	}
	if stdout != "1\n" {
		t.Errorf("output %q, want sorted (1)", stdout)
	}
}

func TestHjbenchFig4(t *testing.T) {
	stdout, stderr, code := runTool(t, "hjbench", "-fig", "4")
	if code != 0 {
		t.Fatalf("hjbench -fig 4: %s", stderr)
	}
	for _, want := range []string{"CPL = 1510", "CPL = 1500", "CPL = 1110", "CPL = 1100", "(A..D) (B..B)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("fig 4 output missing %q:\n%s", want, stdout)
		}
	}
}

func TestHjrepairTraceExport(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.json")
	jsonlFile := filepath.Join(dir, "t.jsonl")
	_, stderr, code := runTool(t, "hjrepair", "-quiet",
		"-trace", traceFile, "-jsonl", jsonlFile, "-metrics", "../testdata/buggy_fib.hj")
	if code != 0 {
		t.Fatalf("hjrepair failed (%d): %s", code, stderr)
	}

	// The Chrome trace covers every pipeline phase of paper Fig. 6.
	tf, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	recs, err := obs.ReadChromeTrace(tf)
	if err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	have := map[string]bool{}
	for _, r := range recs {
		have[r.Name] = true
	}
	for _, phase := range []string{"parse", "sem-check", "repair", "iteration", "detect", "group-nslca", "dp-place", "rewrite", "verify"} {
		if !have[phase] {
			t.Errorf("chrome trace missing phase %q (got %v)", phase, have)
		}
	}

	// The JSONL log re-parses, nests well-formedly, and carries metrics.
	jf, err := os.Open(jsonlFile)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	spans, samples, err := obs.ReadJSONL(jf)
	if err != nil {
		t.Fatalf("invalid jsonl: %v", err)
	}
	if err := obs.ValidateNesting(spans); err != nil {
		t.Errorf("jsonl spans malformed: %v", err)
	}
	foundDP := false
	for _, s := range samples {
		if s.Name == "repair.dp_states" && s.Value > 0 {
			foundDP = true
		}
	}
	if !foundDP {
		t.Errorf("jsonl metrics missing repair.dp_states > 0: %v", samples)
	}

	// -metrics dumps the registry to stderr.
	if !strings.Contains(stderr, "race.detect_runs") {
		t.Errorf("-metrics output missing detector counters: %s", stderr)
	}
}

func TestHjrepairMaxIterationsExitCode(t *testing.T) {
	// buggy_fib needs two repair rounds; a bound of one exhausts.
	_, stderr, code := runTool(t, "hjrepair", "-max-iter", "1", "../testdata/buggy_fib.hj")
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (max iterations exhausted); stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "UNRESOLVED") || !strings.Contains(stderr, "races/iter:") {
		t.Errorf("exhaustion summary incomplete: %s", stderr)
	}
}

func TestHjrunTraceExport(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "run.json")
	_, stderr, code := runTool(t, "hjrun", "-mode", "par", "-trace", traceFile, "-metrics", "../testdata/quicksort.hj")
	if code != 0 {
		t.Fatalf("hjrun failed (%d): %s", code, stderr)
	}
	tf, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	recs, err := obs.ReadChromeTrace(tf)
	if err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	have := map[string]bool{}
	for _, r := range recs {
		have[r.Name] = true
	}
	for _, phase := range []string{"parse", "sem-check", "parallel-run"} {
		if !have[phase] {
			t.Errorf("trace missing phase %q", phase)
		}
	}
	// The parallel run drove the task runtime; its counters surface.
	if !strings.Contains(stderr, "taskpar.asyncs") {
		t.Errorf("-metrics missing taskpar counters: %s", stderr)
	}
}

func TestHjbenchDebugAddrRejectsBadAddress(t *testing.T) {
	_, stderr, code := runTool(t, "hjbench", "-fig", "4", "-debug-addr", "256.0.0.1:bogus")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "debug server") {
		t.Errorf("stderr missing debug server diagnosis: %s", stderr)
	}
}

func TestHjrepairBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.hj")
	if err := os.WriteFile(bad, []byte("func main() { undefined(); }"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runTool(t, "hjrepair", bad)
	if code == 0 {
		t.Fatal("hjrepair accepted an invalid program")
	}
	if !strings.Contains(stderr, "undefined") {
		t.Errorf("stderr %q missing diagnosis", stderr)
	}
}

// writeProg drops an HJ-lite source into a temp dir and returns its path.
func writeProg(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cliLongRacy = `
var g = 0;

func main() {
    async {
        for (var i = 0; i < 1000000000; i = i + 1) {
            g = g + 1;
        }
    }
    g = 1;
}
`

const cliShortRacy = `
var g = 0;

func main() {
    async { g = 1; }
    async { g = 2; }
    g = 3;
    println(g);
}
`

// TestHjrepairTimeoutExitsBudgetCode: a wall-clock budget too small for
// the detection run must stop the pipeline with the distinct budget
// exit code (4), not the iteration-bound code (3) or a generic 1.
func TestHjrepairTimeoutExitsBudgetCode(t *testing.T) {
	prog := writeProg(t, "long.hj", cliLongRacy)
	_, stderr, code := runTool(t, "hjrepair", "-timeout", "50ms", prog)
	if code != 4 {
		t.Fatalf("exit = %d, want 4 (budget exceeded); stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "deadline exceeded") {
		t.Errorf("stderr should name the tripped deadline: %s", stderr)
	}
}

// TestHjrepairDPStateBudgetDegrades: a DP-state budget of 1 trips the
// optimal placement immediately; the tool must still succeed (exit 0)
// with the coarse sound placement and report the degradation.
func TestHjrepairDPStateBudgetDegrades(t *testing.T) {
	prog := writeProg(t, "short.hj", cliShortRacy)
	dir := t.TempDir()
	fixed := filepath.Join(dir, "fixed.hj")
	_, stderr, code := runTool(t, "hjrepair", "-max-dp-states", "1", "-o", fixed, prog)
	if code != 0 {
		t.Fatalf("degraded repair should exit 0, got %d; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "DEGRADED") {
		t.Errorf("summary should flag the degraded placement: %s", stderr)
	}
	// The degraded output must still be race-free.
	_, stderr, code = runTool(t, "hjrun", "-mode", "detect", fixed)
	if code != 0 {
		t.Fatalf("degraded repair left races: %s", stderr)
	}
}

// TestHjrunTimeoutExitsBudgetCode: hjrun's -timeout bounds a runaway
// sequential execution and exits 4.
func TestHjrunTimeoutExitsBudgetCode(t *testing.T) {
	prog := writeProg(t, "long.hj", cliLongRacy)
	_, stderr, code := runTool(t, "hjrun", "-mode", "seq", "-timeout", "50ms", prog)
	if code != 4 {
		t.Fatalf("exit = %d, want 4 (budget exceeded); stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "deadline exceeded") {
		t.Errorf("stderr should name the tripped deadline: %s", stderr)
	}
}

// TestHjrunDetectorEngines: every -detector value must report the same
// races on the buggy fixture, and "both" must agree (no exit 5).
func TestHjrunDetectorEngines(t *testing.T) {
	var reports []string
	for _, d := range []string{"mrw", "espbags", "vc", "both"} {
		_, stderr, code := runTool(t, "hjrun", "-mode", "detect", "-detector", d, "../testdata/buggy_fib.hj")
		if code != 1 {
			t.Fatalf("-detector %s: exit = %d, want 1 (races found); stderr: %s", d, code, stderr)
		}
		if !strings.Contains(stderr, "race(s)") {
			t.Errorf("-detector %s: stderr missing race report: %s", d, stderr)
		}
		reports = append(reports, stderr)
	}
	for i, r := range reports[1:] {
		if r != reports[0] {
			t.Errorf("-detector %s race report differs from mrw:\n%s\nvs\n%s",
				[]string{"espbags", "vc", "both"}[i], r, reports[0])
		}
	}
	_, stderr, code := runTool(t, "hjrun", "-mode", "detect", "-detector", "nope", "../testdata/buggy_fib.hj")
	if code != 1 || !strings.Contains(stderr, "unknown detector") {
		t.Errorf("bad -detector: exit = %d, stderr: %s", code, stderr)
	}
}

// TestHjrepairDetectorBoth repairs under the differential engine: the
// engines must agree on every round (exit 0) and the repaired source
// must match the default engine's result byte for byte.
func TestHjrepairDetectorBoth(t *testing.T) {
	var outs []string
	for _, d := range []string{"mrw", "vc", "both"} {
		stdout, stderr, code := runTool(t, "hjrepair", "-quiet", "-detector", d, "../testdata/buggy_fib.hj")
		if code != 0 {
			t.Fatalf("-detector %s: exit = %d; stderr: %s", d, code, stderr)
		}
		if !strings.Contains(stdout, "finish") {
			t.Errorf("-detector %s: no finish in repaired source", d)
		}
		outs = append(outs, stdout)
	}
	for i, o := range outs[1:] {
		if o != outs[0] {
			t.Errorf("-detector %s repaired source differs from mrw", []string{"vc", "both"}[i])
		}
	}
}

// TestHjrepairWitness: -witness replays the races to concrete
// divergence witnesses, verifies the repair under adversarial
// schedules, and records both in the explain document.
func TestHjrepairWitness(t *testing.T) {
	dir := t.TempDir()
	explain := filepath.Join(dir, "explain.json")
	_, stderr, code := runTool(t, "hjrepair", "-quiet", "-witness", "-vet", "-sched-seed", "1",
		"-explain", explain, "-o", filepath.Join(dir, "fixed.hj"), "../testdata/buggy_fib.hj")
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "witness:") {
		t.Errorf("stderr has no witness lines: %s", stderr)
	}
	if !strings.Contains(stderr, "adversary: 0/") {
		t.Errorf("stderr missing the clean adversary tally: %s", stderr)
	}
	data, err := os.ReadFile(explain)
	if err != nil {
		t.Fatalf("read explain: %v", err)
	}
	for _, want := range []string{`"witnesses"`, `"adversary"`, `"schedule"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("explain JSON missing %s", want)
		}
	}
}

// TestHjrepairWitnessedUnrepairedExitCode: running out of iterations
// with at least one witnessed race exits 7 (proven-observable races
// remain), not the plain exhaustion code 3.
func TestHjrepairWitnessedUnrepairedExitCode(t *testing.T) {
	_, stderr, code := runTool(t, "hjrepair", "-quiet", "-witness", "-max-iter", "1", "../testdata/buggy_fib.hj")
	if code != 7 {
		t.Fatalf("exit = %d, want 7 (witnessed but unrepaired); stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "witness:") {
		t.Errorf("stderr has no witness lines: %s", stderr)
	}
}

// TestHjrunStress: adversarial stress diverges on a racy program (exit
// 7 with a replayable witness) and passes an expert race-free one.
func TestHjrunStress(t *testing.T) {
	_, stderr, code := runTool(t, "hjrun", "-mode", "stress", "-sched-seed", "1", "../examples/hj/counter.hj")
	if code != 7 {
		t.Fatalf("exit = %d, want 7; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "witness: replay with schedule") {
		t.Errorf("stderr missing the replayable witness: %s", stderr)
	}

	_, stderr, code = runTool(t, "hjrun", "-mode", "stress", "-adversary", "8", "../testdata/quicksort.hj")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for the race-free program; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "0/8 schedule(s) diverged") {
		t.Errorf("stderr missing the clean stress tally: %s", stderr)
	}
}

// TestHjrepairGapVerdict: the bundled unexercised.hj example's gated
// writer is reported unreachable by the gap search.
func TestHjrepairGapVerdict(t *testing.T) {
	_, stderr, code := runTool(t, "hjrepair", "-quiet", "-witness", "-vet",
		"-o", filepath.Join(t.TempDir(), "out.hj"), "../examples/hj/unexercised.hj")
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "gap unreachable:") {
		t.Errorf("stderr missing the unreachable gap verdict: %s", stderr)
	}
}
