// Command hjvet runs the static analyzer over an HJ-lite program and
// reports lint diagnostics: static race candidates (may-happen-in-
// parallel statement pairs with conflicting effects), redundant
// finishes, unscoped asyncs in loops, serial writes racing with live
// asyncs, redundant isolated blocks (no shared writes, or nested in
// another isolated), and dead statements.
//
// Usage:
//
//	hjvet [-json] [-checks list] [-allow file] [-list] file.hj
//
// -json renders the diagnostics as a single JSON document instead of
// the compiler-style text format. -checks restricts the run to a
// comma-separated subset of check names (see -list). -allow suppresses
// diagnostics matched by an allowlist file ("path:line:col check" per
// line, # comments).
//
// Exit codes: 0 clean, 1 error (unreadable file, parse or type error),
// 2 usage, 6 at least one diagnostic fired. The distinct success/dirty
// split makes hjvet usable as a CI gate: only code 6 means "the
// analyzer worked and found something".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"finishrepair/internal/analysis"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
)

// exitDiagnostics is the exit code when the program analyzed cleanly
// but diagnostics fired.
const exitDiagnostics = 6

func main() {
	jsonOut := flag.Bool("json", false, "render diagnostics as JSON")
	checks := flag.String("checks", "", "comma-separated check names to run (default: all)")
	allowFile := flag.String("allow", "", "allowlist file suppressing known diagnostics")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	if *list {
		for _, c := range analysis.Checks() {
			fmt.Printf("%-22s %s\n", c.Name, c.Doc)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hjvet [-json] [-checks list] [-allow file] file.hj")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file := flag.Arg(0)

	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		fatal(err)
	}

	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	res := analysis.Analyze(info, nil)
	diags, err := analysis.RunChecks(res, names)
	if err != nil {
		fatal(err)
	}

	if *allowFile != "" {
		f, err := os.Open(*allowFile)
		if err != nil {
			fatal(err)
		}
		al, err := analysis.ParseAllowlist(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		diags = al.Filter(file, diags)
	}

	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, file, diags)
	} else {
		err = analysis.WriteText(os.Stdout, file, diags)
	}
	if err != nil {
		fatal(err)
	}
	if len(diags) > 0 {
		os.Exit(exitDiagnostics)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hjvet:", err)
	os.Exit(1)
}
