// Command hjbench regenerates the evaluation of the paper (§7): the
// benchmark roster (Table 1), repair-time breakdown (Table 2), SRW/MRW
// comparison (Table 3), race counts (Table 4), the performance figure
// (Figure 16), and the student-homework study (§7.4).
//
// Usage:
//
//	hjbench -table 1|2|3|4 [-json]
//	hjbench -fig 16 [-runs N] [-scale PCT]
//	hjbench -fig 4
//	hjbench -homework
//	hjbench -all [-runs N] [-scale PCT]
//
// Observability: -trace FILE writes a Chrome trace_event JSON of every
// harness phase (per-benchmark repair iterations with detect / dp-place
// / rewrite breakdowns), -metrics prints the metrics registry to stderr
// after the run, and -debug-addr HOST:PORT serves expvar
// (/debug/vars), a metrics text endpoint (/debug/metrics), Prometheus
// exposition (/debug/prom), and net/http/pprof (/debug/pprof/) for
// live inspection while long benchmark runs execute; the server drains
// in-flight scrapes gracefully on exit. -sample FILE appends a
// metrics-registry snapshot to FILE as one JSONL line every
// -sample-interval, giving a coarse time series over a long run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"finishrepair/internal/bench"
	"finishrepair/internal/homework"
	"finishrepair/internal/obs"
	"finishrepair/internal/repair"
	"finishrepair/tdr"
)

func main() {
	table := flag.Int("table", 0, "print table 1, 2, 3, or 4")
	fig := flag.Int("fig", 0, "print figure 4 (placement example) or 16 (performance)")
	hw := flag.Bool("homework", false, "run the student-homework study (§7.4)")
	ablation := flag.Bool("ablation", false, "run the S-DPST collapse ablation")
	all := flag.Bool("all", false, "run everything")
	runs := flag.Int("runs", 5, "repetitions per data point for figure 16 (paper: 30)")
	scale := flag.Int("scale", 100, "percentage of the performance input size for figure 16")
	jsonOut := flag.Bool("json", false, "emit table 2 as JSON with stage-level breakdowns")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON of the harness phases to this file")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per benchmark repair (0 = none)")
	workers := flag.Int("j", 1, "analysis parallelism for harness repairs: concurrent detector engines and per-NS-LCA DP workers (results are identical for any value)")
	metrics := flag.Bool("metrics", false, "print the metrics snapshot to stderr after the run")
	debugAddr := flag.String("debug-addr", "", "serve expvar + pprof + Prometheus debug endpoints on this address (e.g. localhost:6060)")
	sampleFile := flag.String("sample", "", "append periodic metrics-registry snapshots to this JSONL file")
	sampleEvery := flag.Duration("sample-interval", time.Second, "interval between -sample snapshots")
	flag.Parse()

	if *debugAddr != "" {
		addr, srv, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hjbench: debug server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hjbench: debug endpoints at http://%s/debug/{vars,metrics,prom,pprof}\n", addr)
		// Drain in-flight scrapes before the process exits; a hung
		// client only delays us by the shutdown timeout.
		defer func() {
			if err := obs.ShutdownDebug(srv, 2*time.Second); err != nil {
				fmt.Fprintf(os.Stderr, "hjbench: debug shutdown: %v\n", err)
			}
		}()
	}
	if *sampleFile != "" {
		f, err := os.Create(*sampleFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hjbench: %v\n", err)
			os.Exit(1)
		}
		s := obs.StartSampler(f, *sampleEvery, nil)
		defer func() {
			if err := s.Stop(); err == nil {
				err = f.Close()
				if err != nil {
					fmt.Fprintf(os.Stderr, "hjbench: sample: %v\n", err)
				}
			} else {
				f.Close()
				fmt.Fprintf(os.Stderr, "hjbench: sample: %v\n", err)
			}
		}()
	}
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.New()
		bench.SetTracer(tracer)
	}
	if *timeout > 0 {
		bench.SetBudget(tdr.Budget{Timeout: *timeout})
	}
	if *workers > 1 {
		bench.SetWorkers(*workers)
	}

	w := os.Stdout
	any := false
	run := func(name string, f func() error) {
		any = true
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "hjbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}

	if *all || *table == 1 {
		run("table 1", func() error { bench.PrintTable1(w); return nil })
	}
	if *all || *table == 2 {
		if *jsonOut {
			run("table 2", func() error { return bench.Table2JSON(w) })
		} else {
			run("table 2", func() error { return bench.PrintTable2(w) })
		}
	}
	if *all || *table == 3 {
		run("table 3", func() error { return bench.PrintTable3(w) })
	}
	if *all || *table == 4 {
		run("table 4", func() error { return bench.PrintTable4(w) })
	}
	if *all || *fig == 4 {
		run("figure 4", func() error { return printFig4(w) })
	}
	if *all || *fig == 16 {
		run("figure 16", func() error { return bench.PrintFig16(w, *runs, *scale) })
	}
	if *all || *hw {
		run("homework", func() error { return printHomework(w) })
	}
	if *all || *ablation {
		run("ablation", func() error { return bench.PrintAblation(w) })
	}
	if !any {
		flag.PrintDefaults()
		os.Exit(2)
	}

	if tracer.Enabled() {
		if err := obs.ExportFiles(tracer, *traceFile, ""); err != nil {
			fmt.Fprintf(os.Stderr, "hjbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *metrics {
		obs.WriteText(os.Stderr, obs.Default().Snapshot())
	}
}

// printFig4 reproduces the finish-placement example of paper Figures 3/4
// and reports the placement Algorithm 1 finds.
func printFig4(w *os.File) error {
	prob := &repair.Problem{
		N:     6,
		T:     []int64{500, 10, 10, 400, 600, 500},
		Async: []bool{true, true, true, true, true, true},
		Edges: [][2]int{{1, 3}, {0, 5}, {3, 5}},
	}
	fmt.Fprintln(w, "Figure 3/4: asyncs A-F with times 500,10,10,400,600,500; deps B->D, A->F, D->F")
	names := "ABCDEF"
	rows := []struct {
		desc string
		fs   []repair.FinishBlock
	}{
		{"( A ) ( B ) C ( D ) E F", []repair.FinishBlock{{S: 0, E: 0}, {S: 1, E: 1}, {S: 3, E: 3}}},
		{"( A B ) C ( D ) E F", []repair.FinishBlock{{S: 0, E: 1}, {S: 3, E: 3}}},
		{"( A B C ) ( D ) E F", []repair.FinishBlock{{S: 0, E: 2}, {S: 3, E: 3}}},
		{"( A ( B ) C D E ) F", []repair.FinishBlock{{S: 0, E: 4}, {S: 1, E: 1}}},
	}
	for _, r := range rows {
		c, err := repair.Evaluate(prob, r.fs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-28s CPL = %d\n", r.desc, c)
	}
	sol, err := repair.Solve(prob)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Algorithm 1 optimum: CPL = %d (%d DP states), finish set:", sol.Cost, sol.States)
	for _, f := range sol.Finishes {
		fmt.Fprintf(w, " (%c..%c)", names[f.S], names[f.E])
	}
	fmt.Fprintln(w)
	return nil
}

func printHomework(w *os.File) error {
	sr, err := homework.RunStudy()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Student homework study (§7.4): %d submissions\n", len(sr.Results))
	fmt.Fprintf(w, "  with data races:    %2d (paper: 5)\n", sr.Racy)
	fmt.Fprintf(w, "  over-synchronized:  %2d (paper: 29)\n", sr.OverSync)
	fmt.Fprintf(w, "  matching the tool:  %2d (paper: 25)\n", sr.Matching)
	fmt.Fprintf(w, "  tool repair critical path: %d work units\n", sr.ToolSpan)
	byStrategy := map[string][]int{}
	for _, gr := range sr.Results {
		byStrategy[gr.Submission.Strategy.Name] = append(byStrategy[gr.Submission.Strategy.Name], gr.Submission.ID)
	}
	for _, st := range homework.Strategies {
		ids := byStrategy[st.Name]
		if len(ids) == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-18s x%-2d  %s\n", st.Name, len(ids), st.Desc)
	}
	return nil
}
