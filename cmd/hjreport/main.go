// Command hjreport renders the observability artifacts of one hjrepair
// run into a single self-contained HTML report: the repair-provenance
// record (hjrepair -explain), the span/metric event log (hjrepair
// -jsonl), or both.
//
// Usage:
//
//	hjreport [-explain explain.json] [-jsonl run.jsonl]
//	         [-title s] [-o report.html]
//
// At least one of -explain and -jsonl is required; sections whose input
// is missing are omitted. The report shows the pipeline span flame
// chart, per-stage latency distributions with p50/p95/p99, the race
// table grouped by NS-LCA, the finish-placement timeline with the
// critical-path (CPL) delta of every inserted finish, and the -vet
// coverage gaps. The HTML embeds all styling and data inline and
// performs zero network fetches, so it can be archived as a CI artifact
// or mailed around as one file.
//
// A typical pipeline:
//
//	hjrepair -explain ex.json -jsonl run.jsonl -o fixed.hj prog.hj
//	hjreport -explain ex.json -jsonl run.jsonl -o report.html
package main

import (
	"flag"
	"fmt"
	"os"

	"finishrepair/internal/obs"
	"finishrepair/internal/obs/provenance"
)

func main() {
	explainFile := flag.String("explain", "", "repair-provenance JSON written by hjrepair -explain")
	jsonlFile := flag.String("jsonl", "", "span/metric JSONL event log written by hjrepair -jsonl")
	title := flag.String("title", "", "report title (default: the explained program, or \"finishrepair report\")")
	out := flag.String("o", "", "write the HTML report to this file (default stdout)")
	flag.Parse()
	if flag.NArg() != 0 || (*explainFile == "" && *jsonlFile == "") {
		fmt.Fprintln(os.Stderr, "usage: hjreport [-explain explain.json] [-jsonl run.jsonl] [-title s] [-o report.html]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var ex *provenance.Explain
	if *explainFile != "" {
		f, err := os.Open(*explainFile)
		if err != nil {
			fatal(err)
		}
		ex, err = provenance.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *explainFile, err))
		}
	}

	var recs []obs.SpanRecord
	var samples []obs.Sample
	if *jsonlFile != "" {
		f, err := os.Open(*jsonlFile)
		if err != nil {
			fatal(err)
		}
		recs, samples, err = obs.ReadJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *jsonlFile, err))
		}
	}

	t := *title
	if t == "" {
		t = "finishrepair report"
		if ex != nil && ex.Program != "" {
			t = "finishrepair report: " + ex.Program
		}
	}
	data := buildReport(t, ex, recs, samples)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := render(w, data); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hjreport:", err)
	os.Exit(1)
}
