package main

import (
	_ "embed"
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
	"time"

	"finishrepair/internal/obs"
	"finishrepair/internal/obs/provenance"
)

//go:embed report.tmpl
var reportTmpl string

// spanRow is one bar of the flame chart: the span's name, its nesting
// depth, and its horizontal placement as percentages of the run's wall
// clock.
type spanRow struct {
	Name     string
	Detail   string // duration + attrs, shown in the tooltip and the row label
	Depth    int
	LeftPct  float64
	WidthPct float64
	Color    string
}

// bar is one bucket of a histogram card.
type bar struct {
	Label string // the bucket's value range, e.g. "4–7"
	Count int64
	Pct   float64 // width relative to the fullest bucket
}

// histView is one per-stage latency (or size) distribution card.
type histView struct {
	Name  string
	Count int64
	Mean  string
	P50   string
	P95   string
	P99   string
	Bars  []bar
}

// counterRow is one line of the counters table.
type counterRow struct {
	Name  string
	Kind  string
	Value int64
}

// groupView is one NS-LCA race group of the race table.
type groupView struct {
	Iteration int
	Status    string // "applied", "deferred", "pruned (static serial)", "fallback"
	provenance.Group
}

// finishView is one row of the scope-placement timeline.
type finishView struct {
	provenance.FinishEntry
	KindLabel string // "finish" or "isolated"
	SpanDelta int64
	ParBefore string
	ParAfter  string
}

// chip is one headline stat of the summary strip.
type chip struct {
	Label string
	Value string
	Bad   bool
}

// reportData is the fully precomputed view model the template renders;
// the template itself contains no logic beyond ranging and conditionals.
type reportData struct {
	Title     string
	Generated string
	Explain   *provenance.Explain
	Chips     []chip
	Finishes  []finishView
	Groups    []groupView
	Gaps      []string
	Witnesses []provenance.WitnessRec
	Adversary *provenance.AdversaryRec
	Verdicts  []provenance.GapVerdictRec
	Spans     []spanRow
	Total     string
	Hists     []histView
	Counters  []counterRow
}

var flamePalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#b07aa1", "#edc948",
}

// buildReport precomputes the whole view model from whichever inputs
// were provided; nil/empty inputs simply omit their sections.
func buildReport(title string, ex *provenance.Explain, recs []obs.SpanRecord, samples []obs.Sample) *reportData {
	d := &reportData{
		Title:     title,
		Generated: time.Now().Format(time.RFC1123),
		Explain:   ex,
	}
	if ex != nil {
		buildExplain(d, ex)
	}
	buildSpans(d, recs)
	buildMetrics(d, samples)
	return d
}

func buildExplain(d *reportData, ex *provenance.Explain) {
	races := 0
	if len(ex.Iterations) > 0 {
		races = len(ex.Iterations[0].Races)
	}
	d.Chips = append(d.Chips,
		chip{Label: "races found", Value: fmt.Sprint(races)},
		chip{Label: "finishes inserted", Value: fmt.Sprint(len(ex.Finishes))},
		chip{Label: "iterations", Value: fmt.Sprint(len(ex.Iterations))},
	)
	if ex.CPLBefore.Span > 0 {
		d.Chips = append(d.Chips, chip{
			Label: "parallelism",
			Value: fmt.Sprintf("%.2f → %.2f", ex.CPLBefore.Parallelism(), ex.CPLAfter.Parallelism()),
		})
	}
	if ex.Converged {
		d.Chips = append(d.Chips, chip{Label: "status", Value: "race-free"})
	} else {
		d.Chips = append(d.Chips, chip{Label: "status", Value: "NOT converged", Bad: true})
	}
	if ex.Degraded != "" {
		d.Chips = append(d.Chips, chip{Label: "degraded", Value: ex.Degraded, Bad: true})
	}

	isolated, confirmed := 0, 0
	for _, f := range ex.Finishes {
		kind := f.Finish.Kind
		if kind == "" {
			kind = "finish"
		}
		if kind == "isolated" {
			isolated++
		}
		if f.CommuteProbe == "confirmed" {
			confirmed++
		}
		d.Finishes = append(d.Finishes, finishView{
			FinishEntry: f,
			KindLabel:   kind,
			SpanDelta:   f.CPLAfter.Span - f.CPLBefore.Span,
			ParBefore:   fmt.Sprintf("%.2f", f.CPLBefore.Parallelism()),
			ParAfter:    fmt.Sprintf("%.2f", f.CPLAfter.Parallelism()),
		})
	}
	if isolated > 0 {
		d.Chips = append(d.Chips, chip{Label: "isolated inserted", Value: fmt.Sprint(isolated)})
	}
	if confirmed > 0 {
		d.Chips = append(d.Chips, chip{Label: "commute probes confirmed", Value: fmt.Sprint(confirmed)})
	}
	for _, it := range ex.Iterations {
		for _, g := range it.Groups {
			status := "deferred"
			switch {
			case g.PrunedSerial:
				status = "pruned (static serial)"
			case g.Applied && g.Fallback:
				status = "applied (fallback)"
			case g.Applied:
				status = "applied"
			}
			d.Groups = append(d.Groups, groupView{Iteration: it.N, Status: status, Group: g})
		}
	}
	d.Gaps = ex.CoverageGaps
	d.Witnesses = ex.Witnesses
	d.Adversary = ex.Adversary
	d.Verdicts = ex.GapVerdicts
	if len(ex.Witnesses) > 0 {
		d.Chips = append(d.Chips, chip{Label: "witnesses", Value: fmt.Sprint(len(ex.Witnesses))})
	}
	if ex.Adversary != nil {
		v := fmt.Sprintf("%d/%d schedules passed", ex.Adversary.Schedules-ex.Adversary.Failures, ex.Adversary.Schedules)
		d.Chips = append(d.Chips, chip{Label: "adversary", Value: v, Bad: ex.Adversary.Failures > 0})
	}
}

func buildSpans(d *reportData, recs []obs.SpanRecord) {
	if len(recs) == 0 {
		return
	}
	byID := make(map[int64]obs.SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	depth := func(r obs.SpanRecord) int {
		n := 0
		for r.Parent != 0 {
			parent, ok := byID[r.Parent]
			if !ok || n > len(recs) {
				break
			}
			r, n = parent, n+1
		}
		return n
	}
	start, end := recs[0].Start, recs[0].Start+recs[0].Dur
	for _, r := range recs {
		if r.Start < start {
			start = r.Start
		}
		if e := r.Start + r.Dur; e > end {
			end = e
		}
	}
	total := end - start
	if total <= 0 {
		total = 1
	}
	sorted := append([]obs.SpanRecord(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Dur > sorted[j].Dur
	})
	for _, r := range sorted {
		dep := depth(r)
		detail := r.Dur.Round(time.Microsecond).String()
		if r.AllocBytes > 0 {
			detail += fmt.Sprintf(" %dB", r.AllocBytes)
		}
		for _, a := range r.Attrs {
			detail += fmt.Sprintf(" %s=%v", a.Key, a.Value())
		}
		d.Spans = append(d.Spans, spanRow{
			Name:     r.Name,
			Detail:   detail,
			Depth:    dep,
			LeftPct:  100 * float64(r.Start-start) / float64(total),
			WidthPct: 100 * float64(r.Dur) / float64(total),
			Color:    flamePalette[dep%len(flamePalette)],
		})
	}
	d.Total = total.Round(time.Microsecond).String()
}

func buildMetrics(d *reportData, samples []obs.Sample) {
	for _, s := range samples {
		if s.Kind != "histogram" {
			if s.Value != 0 {
				d.Counters = append(d.Counters, counterRow{Name: s.Name, Kind: s.Kind, Value: s.Value})
			}
			continue
		}
		if s.Count == 0 {
			continue
		}
		h := histView{
			Name:  s.Name,
			Count: s.Count,
			Mean:  fmtQuantile(s.Name, s.Mean),
			P50:   fmtQuantile(s.Name, s.P50),
			P95:   fmtQuantile(s.Name, s.P95),
			P99:   fmtQuantile(s.Name, s.P99),
		}
		var max int64
		for _, c := range s.Buckets {
			if c > max {
				max = c
			}
		}
		for i, c := range s.Buckets {
			if c == 0 {
				continue
			}
			lo, hi := obs.BucketRange(i)
			label := fmt.Sprint(lo)
			if hi != lo {
				label = fmt.Sprintf("%d–%d", lo, hi)
			}
			h.Bars = append(h.Bars, bar{Label: label, Count: c, Pct: 100 * float64(c) / float64(max)})
		}
		d.Hists = append(d.Hists, h)
	}
	sort.Slice(d.Hists, func(i, j int) bool { return d.Hists[i].Name < d.Hists[j].Name })
	sort.Slice(d.Counters, func(i, j int) bool { return d.Counters[i].Name < d.Counters[j].Name })
}

// fmtQuantile renders a quantile estimate, as a duration for the *_ns
// latency metrics and as a plain count otherwise.
func fmtQuantile(name string, v float64) string {
	if strings.HasSuffix(name, "_ns") {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.0f", v)
}

var tmpl = template.Must(template.New("report").Parse(reportTmpl))

// render writes the self-contained HTML report. The template embeds all
// styling inline; the output references no external assets.
func render(w io.Writer, d *reportData) error {
	return tmpl.Execute(w, d)
}
