module finishrepair

go 1.22
