# Converts `go test -bench BenchmarkDetectEngines -benchmem` output into
# the BENCH_detect.json records: one object per benchmark/stage with
# time, allocation, and event-count metrics. Used by `make bench-detect`.
BEGIN { print "["; first = 1 }
/^BenchmarkDetectEngines\// {
    name = $1
    sub(/^BenchmarkDetectEngines\//, "", name)
    sub(/-[0-9]+$/, "", name)
    n = split(name, parts, "/")
    bench = parts[1]
    stage = parts[n]
    iters = $2
    ns = $3
    bytes = ""; allocs = ""; events = ""; p50 = ""; p95 = ""; p99 = ""
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        if ($(i + 1) == "events") events = $i
        if ($(i + 1) == "p50-ns/op") p50 = $i
        if ($(i + 1) == "p95-ns/op") p95 = $i
        if ($(i + 1) == "p99-ns/op") p99 = $i
    }
    if (!first) printf(",\n")
    first = 0
    printf("  {\"benchmark\": \"%s\", \"stage\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", bench, stage, iters, ns)
    if (events != "") printf(", \"events\": %s", events)
    if (bytes != "") printf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    if (p50 != "") printf(", \"p50_ns_per_op\": %s", p50)
    if (p95 != "") printf(", \"p95_ns_per_op\": %s", p95)
    if (p99 != "") printf(", \"p99_ns_per_op\": %s", p99)
    printf("}")
}
END { print "\n]" }
