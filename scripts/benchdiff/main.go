// Command benchdiff compares two BENCH_detect.json files (as produced
// by `make bench-detect` via scripts/benchjson.awk) and fails when any
// benchmark/stage pair regressed in ns/op beyond the threshold:
//
//	benchdiff [-threshold 0.20] [-min-delta-ns 3000000] baseline.json current.json
//
// A regression gates only when the absolute slowdown also exceeds
// -min-delta-ns: millisecond-scale stages jitter past 20% from a
// single GC cycle at low iteration counts, while any real regression
// on the stages worth gating is tens of milliseconds. Entries present
// in only one file are reported but never fail the gate (new stages
// appear, old ones are retired). Exit codes: 0 no regression, 1 at
// least one stage regressed, 2 usage or I/O error. `make bench-diff`
// runs the benchmarks and gates against the committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type record struct {
	Benchmark   string `json:"benchmark"`
	Stage       string `json:"stage"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	Events      int64  `json:"events,omitempty"`
	BytesPerOp  int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

type key struct{ bench, stage string }

func load(path string) (map[key]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[key]record, len(recs))
	for _, r := range recs {
		out[key{r.Benchmark, r.Stage}] = r
	}
	return out, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "allowed fractional ns/op regression per benchmark/stage")
	minDelta := flag.Int64("min-delta-ns", 3_000_000, "noise floor: regressions smaller than this in absolute ns/op never gate")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	keys := make([]key, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		return keys[i].stage < keys[j].stage
	})

	regressions := 0
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			fmt.Printf("  gone  %s/%s (baseline %d ns/op)\n", k.bench, k.stage, b.NsPerOp)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := float64(c.NsPerOp)/float64(b.NsPerOp) - 1
		switch {
		case ratio > *threshold && c.NsPerOp-b.NsPerOp >= *minDelta:
			regressions++
			fmt.Printf("REGRESS %s/%s: %d -> %d ns/op (%+.1f%%, limit %+.0f%%)\n",
				k.bench, k.stage, b.NsPerOp, c.NsPerOp, 100*ratio, 100**threshold)
		case ratio > *threshold:
			fmt.Printf("  noise %s/%s: %d -> %d ns/op (%+.1f%%, under %dms floor)\n",
				k.bench, k.stage, b.NsPerOp, c.NsPerOp, 100*ratio, *minDelta/1_000_000)
		case ratio < -*threshold:
			fmt.Printf("  fast  %s/%s: %d -> %d ns/op (%+.1f%%)\n",
				k.bench, k.stage, b.NsPerOp, c.NsPerOp, 100*ratio)
		default:
			fmt.Printf("  ok    %s/%s: %d -> %d ns/op (%+.1f%%)\n",
				k.bench, k.stage, b.NsPerOp, c.NsPerOp, 100*ratio)
		}
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("  new   %s/%s: %d ns/op\n", k.bench, k.stage, cur[k].NsPerOp)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d stage(s) regressed beyond %.0f%%\n", regressions, 100**threshold)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no ns/op regression beyond threshold")
}
