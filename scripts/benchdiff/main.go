// Command benchdiff compares two BENCH_detect.json files (as produced
// by `make bench-detect` via scripts/benchjson.awk) and fails when any
// benchmark/stage pair regressed beyond the threshold:
//
//	benchdiff [-threshold 0.20] [-min-delta-ns 3000000] baseline.json current.json
//
// The gate metric is the p95 per-op latency when both files carry it
// (tail regressions can hide behind a stable mean) and the mean ns/op
// otherwise, so old baselines recorded before the quantile columns
// existed keep gating. A regression gates only when the absolute
// slowdown also exceeds -min-delta-ns: millisecond-scale stages jitter
// past 20% from a single GC cycle at low iteration counts, while any
// real regression on the stages worth gating is tens of milliseconds.
// Entries present in only one file are reported but never fail the gate
// (new stages appear, old ones are retired). Exit codes: 0 no
// regression, 1 at least one stage regressed, 2 usage or I/O error.
// `make bench-diff` runs the benchmarks and gates against the committed
// baseline.
//
// With -parallel-wins the gate additionally requires, within the
// CURRENT file alone, that every parallel detection stage beats its
// serial counterpart: for each benchmark carrying a "both" stage, no
// "both-jN" stage may exceed the "both" gate metric by more than the
// -min-delta-ns noise floor. This is the structural claim behind the
// fused sharded engine — -j N must win (or tie within noise) on every
// benchmark, not just on average.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

type record struct {
	Benchmark   string  `json:"benchmark"`
	Stage       string  `json:"stage"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	Events      int64   `json:"events,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	P50NsPerOp  float64 `json:"p50_ns_per_op,omitempty"`
	P95NsPerOp  float64 `json:"p95_ns_per_op,omitempty"`
	P99NsPerOp  float64 `json:"p99_ns_per_op,omitempty"`
}

type key struct{ bench, stage string }

func load(path string) (map[key]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[key]record, len(recs))
	for _, r := range recs {
		out[key{r.Benchmark, r.Stage}] = r
	}
	return out, nil
}

// gateMetric picks the value the regression gate compares: p95 when
// both records carry it, mean ns/op otherwise.
func gateMetric(b, c record) (base, cur float64, name string) {
	if b.P95NsPerOp > 0 && c.P95NsPerOp > 0 {
		return b.P95NsPerOp, c.P95NsPerOp, "p95-ns/op"
	}
	return float64(b.NsPerOp), float64(c.NsPerOp), "ns/op"
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.20, "allowed fractional regression per benchmark/stage")
	minDelta := fs.Int64("min-delta-ns", 3_000_000, "noise floor: regressions smaller than this in absolute ns never gate")
	parallelWins := fs.Bool("parallel-wins", false, "additionally require every both-jN stage in CURRENT to beat its both stage (within the noise floor)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold F] baseline.json current.json")
		return 2
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	keys := make([]key, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		return keys[i].stage < keys[j].stage
	})

	regressions := 0
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			fmt.Fprintf(stdout, "  gone  %s/%s (baseline %d ns/op)\n", k.bench, k.stage, b.NsPerOp)
			continue
		}
		bv, cv, metric := gateMetric(b, c)
		if bv <= 0 {
			continue
		}
		ratio := cv/bv - 1
		switch {
		case ratio > *threshold && cv-bv >= float64(*minDelta):
			regressions++
			fmt.Fprintf(stdout, "REGRESS %s/%s: %.0f -> %.0f %s (%+.1f%%, limit %+.0f%%)\n",
				k.bench, k.stage, bv, cv, metric, 100*ratio, 100**threshold)
		case ratio > *threshold:
			fmt.Fprintf(stdout, "  noise %s/%s: %.0f -> %.0f %s (%+.1f%%, under %dms floor)\n",
				k.bench, k.stage, bv, cv, metric, 100*ratio, *minDelta/1_000_000)
		case ratio < -*threshold:
			fmt.Fprintf(stdout, "  fast  %s/%s: %.0f -> %.0f %s (%+.1f%%)\n",
				k.bench, k.stage, bv, cv, metric, 100*ratio)
		default:
			fmt.Fprintf(stdout, "  ok    %s/%s: %.0f -> %.0f %s (%+.1f%%)\n",
				k.bench, k.stage, bv, cv, metric, 100*ratio)
		}
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Fprintf(stdout, "  new   %s/%s: %d ns/op\n", k.bench, k.stage, cur[k].NsPerOp)
		}
	}
	losses := 0
	if *parallelWins {
		losses = gateParallelWins(cur, *minDelta, stdout)
	}

	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d stage(s) regressed beyond %.0f%%\n", regressions, 100**threshold)
	}
	if losses > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d parallel stage(s) slower than their serial baseline\n", losses)
	}
	if regressions > 0 || losses > 0 {
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: no regression beyond threshold")
	return 0
}

// parallelStageRE matches the parallel detection stages gated against
// the serial "both" stage by -parallel-wins.
var parallelStageRE = regexp.MustCompile(`^both-j[0-9]+$`)

// gateParallelWins checks, within one result file, that every both-jN
// stage is at least as fast as its benchmark's both stage (up to the
// noise floor). It returns the number of losing stages.
func gateParallelWins(cur map[key]record, minDelta int64, stdout io.Writer) int {
	keys := make([]key, 0, len(cur))
	for k := range cur {
		if parallelStageRE.MatchString(k.stage) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		return keys[i].stage < keys[j].stage
	})

	losses := 0
	for _, k := range keys {
		serial, ok := cur[key{k.bench, "both"}]
		if !ok {
			fmt.Fprintf(stdout, "  PARWIN? %s/%s: no serial both stage to compare\n", k.bench, k.stage)
			continue
		}
		sv, pv, metric := gateMetric(serial, cur[k])
		if sv <= 0 {
			continue
		}
		switch {
		case pv > sv+float64(minDelta):
			losses++
			fmt.Fprintf(stdout, "PARLOSE %s/%s: %.0f > both %.0f %s (%+.1f%%, floor %dms)\n",
				k.bench, k.stage, pv, sv, metric, 100*(pv/sv-1), minDelta/1_000_000)
		default:
			fmt.Fprintf(stdout, "  PARWIN %s/%s: %.0f vs both %.0f %s (%+.1f%%)\n",
				k.bench, k.stage, pv, sv, metric, 100*(pv/sv-1))
		}
	}
	return losses
}
