package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, baseline, current string, args ...string) (out string, code int) {
	t.Helper()
	dir := t.TempDir()
	b := writeJSON(t, dir, "base.json", baseline)
	c := writeJSON(t, dir, "cur.json", current)
	var stdout, stderr strings.Builder
	code = run(append(args, b, c), &stdout, &stderr)
	return stdout.String() + stderr.String(), code
}

func TestGateOnP95(t *testing.T) {
	// The mean is flat but p95 doubled: the tail regression must gate.
	base := `[{"benchmark":"Mergesort","stage":"espbags","iterations":100,"ns_per_op":10000000,"p95_ns_per_op":12000000}]`
	cur := `[{"benchmark":"Mergesort","stage":"espbags","iterations":100,"ns_per_op":10000000,"p95_ns_per_op":24000000}]`
	out, code := runDiff(t, base, cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESS") || !strings.Contains(out, "p95-ns/op") {
		t.Errorf("expected a p95 regression report, got:\n%s", out)
	}
}

func TestP95ImprovementPasses(t *testing.T) {
	// The mean regressed but p95 is the gate metric when both sides
	// carry it, and p95 improved.
	base := `[{"benchmark":"M","stage":"vc","iterations":100,"ns_per_op":10000000,"p95_ns_per_op":30000000}]`
	cur := `[{"benchmark":"M","stage":"vc","iterations":100,"ns_per_op":20000000,"p95_ns_per_op":15000000}]`
	out, code := runDiff(t, base, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "fast") {
		t.Errorf("expected an improvement line, got:\n%s", out)
	}
}

func TestFallbackToMeanWithoutQuantiles(t *testing.T) {
	// Old baselines predate the quantile columns: the gate falls back
	// to mean ns/op and still catches the regression.
	base := `[{"benchmark":"M","stage":"capture","iterations":100,"ns_per_op":10000000}]`
	cur := `[{"benchmark":"M","stage":"capture","iterations":100,"ns_per_op":20000000,"p95_ns_per_op":25000000}]`
	out, code := runDiff(t, base, cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESS") || !strings.Contains(out, " ns/op") {
		t.Errorf("expected a mean ns/op regression, got:\n%s", out)
	}
}

func TestNoiseFloorSuppressesSmallRegressions(t *testing.T) {
	// +50% but only 1ms absolute: under the 3ms floor, reported as
	// noise, exit 0.
	base := `[{"benchmark":"M","stage":"both","iterations":100,"ns_per_op":2000000,"p95_ns_per_op":2000000}]`
	cur := `[{"benchmark":"M","stage":"both","iterations":100,"ns_per_op":3000000,"p95_ns_per_op":3000000}]`
	out, code := runDiff(t, base, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "noise") {
		t.Errorf("expected a noise line, got:\n%s", out)
	}
}

func TestGoneAndNewStagesNeverGate(t *testing.T) {
	base := `[{"benchmark":"M","stage":"old","iterations":100,"ns_per_op":10000000}]`
	cur := `[{"benchmark":"M","stage":"new","iterations":100,"ns_per_op":99000000}]`
	out, code := runDiff(t, base, cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "gone") || !strings.Contains(out, "new") {
		t.Errorf("expected gone+new lines, got:\n%s", out)
	}
}

func TestParallelWinsGateFailsOnLoss(t *testing.T) {
	// both-j4 is 10ms over both, well past the 3ms floor: gate fails
	// even though nothing regressed against the baseline.
	base := `[{"benchmark":"M","stage":"both","iterations":10,"ns_per_op":100000000,"p95_ns_per_op":100000000},
	          {"benchmark":"M","stage":"both-j4","iterations":10,"ns_per_op":110000000,"p95_ns_per_op":110000000}]`
	cur := base
	out, code := runDiff(t, base, cur, "-parallel-wins")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "PARLOSE M/both-j4") {
		t.Errorf("expected a PARLOSE line, got:\n%s", out)
	}
}

func TestParallelWinsGatePasses(t *testing.T) {
	// both-j2 wins outright; both-j4 is 1ms slower, within the floor.
	base := `[{"benchmark":"M","stage":"both","iterations":10,"ns_per_op":100000000,"p95_ns_per_op":100000000},
	          {"benchmark":"M","stage":"both-j2","iterations":10,"ns_per_op":40000000,"p95_ns_per_op":40000000},
	          {"benchmark":"M","stage":"both-j4","iterations":10,"ns_per_op":101000000,"p95_ns_per_op":101000000}]`
	out, code := runDiff(t, base, base, "-parallel-wins")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "PARWIN M/both-j2") || !strings.Contains(out, "PARWIN M/both-j4") {
		t.Errorf("expected PARWIN lines for both parallel stages, got:\n%s", out)
	}
}

func TestParallelWinsIgnoredWithoutFlag(t *testing.T) {
	base := `[{"benchmark":"M","stage":"both","iterations":10,"ns_per_op":100000000},
	          {"benchmark":"M","stage":"both-j4","iterations":10,"ns_per_op":200000000}]`
	out, code := runDiff(t, base, base)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if strings.Contains(out, "PARLOSE") {
		t.Errorf("parallel gate ran without -parallel-wins:\n%s", out)
	}
}

func TestUsageError(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"only-one.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}
