GO ?= go

.PHONY: all build test vet race bench fuzz ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs

# Short fuzz smoke: the CI budget; raise -fuzztime locally for real hunts.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/lang/parser
	$(GO) test -fuzz=FuzzRepairRoundTrip -fuzztime=20s ./tdr

ci: build vet race

clean:
	$(GO) clean ./...
