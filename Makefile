GO ?= go

.PHONY: all build test vet race bench ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs

ci: build vet race

clean:
	$(GO) clean ./...
