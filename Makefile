GO ?= go

.PHONY: all build test vet race bench bench-detect bench-diff eval fuzz report adversary commute-agreement ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# go vet over the Go sources, then hjvet over the bundled HJ-lite
# examples: any diagnostic not allowlisted in examples/hj/vet_allow.txt
# fails the build (hjvet exits 6 when unsuppressed diagnostics fire).
vet:
	$(GO) vet ./...
	@for f in examples/hj/*.hj; do \
		echo "hjvet $$f"; \
		$(GO) run ./cmd/hjvet -allow examples/hj/vet_allow.txt $$f || exit 1; \
	done

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/obs

# Regenerate the detect-engine comparison: capture cost vs per-engine
# trace-replay analysis cost (time and allocs), as JSON.
bench-detect:
	$(GO) test -run '^$$' -bench BenchmarkDetectEngines -benchmem -benchtime 3x . \
		| awk -f scripts/benchjson.awk > BENCH_detect.json

# Regression gate: re-run the detect-engine benchmarks into a scratch
# file and fail if any benchmark/stage regressed more than 20% in ns/op
# against the committed BENCH_detect.json baseline — and, via
# -parallel-wins, that every both-jN stage in the fresh numbers beats
# its serial both stage within the noise floor.
bench-diff:
	$(GO) test -run '^$$' -bench BenchmarkDetectEngines -benchmem -benchtime 3x . \
		| awk -f scripts/benchjson.awk > BENCH_detect.new.json
	$(GO) run ./scripts/benchdiff -parallel-wins BENCH_detect.json BENCH_detect.new.json

# Regenerate the archived evaluation output (all paper tables, figures,
# and studies). The full figure-16 inputs take a few minutes; lower
# -runs/-scale for a quick spin.
eval:
	$(GO) run ./cmd/hjbench -all -runs 3 > testdata/evaluation_output.txt

# Repair every bundled example with provenance (-explain) and event-log
# (-jsonl) capture, then render each run as a self-contained HTML report
# under reports/. CI runs this as the report smoke job and uploads the
# HTML as an artifact.
report:
	@mkdir -p reports
	@for f in examples/hj/*.hj; do \
		n=$$(basename $$f .hj); \
		echo "report $$f -> reports/$$n.html"; \
		$(GO) run ./cmd/hjrepair -quiet -vet -explain reports/$$n.explain.json \
			-jsonl reports/$$n.jsonl -o reports/$$n.fixed.hj $$f || exit 1; \
		$(GO) run ./cmd/hjreport -explain reports/$$n.explain.json \
			-jsonl reports/$$n.jsonl -o reports/$$n.html || exit 1; \
	done

# Short fuzz smoke: the CI budget; raise -fuzztime locally for real hunts.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/lang/parser
	$(GO) test -fuzz=FuzzRepairRoundTrip -fuzztime=20s ./tdr

# Adversarial replay smoke: repair every bundled example with witness
# generation and K-schedule verification, writing the witness-bearing
# explain documents (JSON artifacts) under reports/. A repaired example
# that diverges under any adversarial schedule fails the build (exit 7).
# The first loop pins -strategy finish (the pre-strategy behavior); the
# second sweeps -strategy auto under K=16 adversarial schedules and
# archives the per-group strategy choices as reports/*.strategy.json.
adversary:
	@mkdir -p reports
	@for f in examples/hj/*.hj; do \
		n=$$(basename $$f .hj); \
		echo "adversary $$f -> reports/$$n.witness.json"; \
		$(GO) run ./cmd/hjrepair -quiet -witness -vet -strategy finish -sched-seed 1 \
			-explain reports/$$n.witness.json -o reports/$$n.fixed.hj $$f || exit 1; \
	done
	@for f in examples/hj/*.hj; do \
		n=$$(basename $$f .hj); \
		echo "adversary -strategy auto $$f -> reports/$$n.strategy.json"; \
		$(GO) run ./cmd/hjrepair -quiet -strategy auto -adversary 16 -sched-seed 1 \
			-explain reports/$$n.strategy.json -o reports/$$n.auto.hj $$f || exit 1; \
	done
	@out=$$($(GO) run ./cmd/hjrun -mode stress -sched-seed 1 examples/hj/counter.hj 2>&1); \
	case "$$out" in \
		*"exit status 7"*) echo "stress witnessed the racy counter (exit 7), as expected";; \
		*) echo "stress mode failed to witness the racy counter:"; echo "$$out"; exit 1;; \
	esac

# Static/semantic agreement gate for the commutativity analysis: every
# "commutes" verdict over the bundled examples and a 50-program progen
# corpus (Commute shapes enabled) must survive the semantic order
# probe — zero refuted verdicts — and the auto-strategy repair of the
# commute corpus must restore the serial elision's output.
commute-agreement:
	$(GO) test -race -run 'TestCommuteAgreement|TestCommuteCorpusRepairsEndToEnd' -v ./tdr
	$(GO) test -race -run 'TestCommute|TestProbe|TestRecognize' ./internal/analysis/commute ./internal/progen

ci: build vet race adversary commute-agreement

clean:
	$(GO) clean ./...
