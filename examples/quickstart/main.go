// Quickstart: repair the paper's Figure 8 Fibonacci program.
//
// The program spawns its recursive calls as asyncs but never waits for
// them, so the parent reads x[0] and y[0] while the children may still
// be writing. The repair tool detects those races on a concrete input
// and inserts the finish statements of paper Figure 15.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"finishrepair/tdr"
)

const fibonacci = `
// Incorrectly synchronized Fibonacci (paper Figure 8). BoxInteger
// fields become 1-element arrays in HJ-lite.
func fib(ret []int, n int) {
    if (n < 2) {
        ret[0] = n;
        return;
    }
    var x = make([]int, 1);
    var y = make([]int, 1);
    async fib(x, n - 1);    // Async1
    async fib(y, n - 2);    // Async2
    ret[0] = x[0] + y[0];   // races with Async1 and Async2
}

func main() {
    var result = make([]int, 1);
    async fib(result, 12);  // Async0: races with the println below
    println(result[0]);
}
`

func main() {
	prog, err := tdr.Load(fibonacci)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Detect the races of the canonical sequential execution.
	races, err := prog.Detect(tdr.MRW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before repair: %d data race(s), e.g.:\n", len(races.Races))
	for i, r := range races.Races {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s  step %d (%s) -> step %d (%s)\n", r.Kind, r.SrcStep, r.SrcPos, r.DstStep, r.DstPos)
	}

	// 2. Repair: insert finish statements.
	rep, err := prog.Repair(tdr.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepair: %d race(s) fixed with %d finish statement(s) in %d iteration(s)\n",
		rep.RacesFound, rep.FinishesInserted, rep.Iterations)

	// 3. The repaired program (paper Figure 15).
	fmt.Println("\nrepaired program:")
	fmt.Println(prog.Source())

	// 4. Prove it: race-free, and the parallel run matches the serial
	// elision.
	confirm, err := prog.Detect(tdr.MRW)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := prog.RunSequential()
	if err != nil {
		log.Fatal(err)
	}
	par, err := prog.RunParallel(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after repair: %d race(s); sequential output %q; parallel output %q\n",
		len(confirm.Races), seq, par)
}
