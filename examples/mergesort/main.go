// Mergesort: the paper's Figure 1 motivating example, end to end.
//
// A developer marked the two recursive calls as asyncs (step 2 of the
// paper's workflow) but left out the synchronization (step 3). The tool
// determines that a finish is needed around the two asyncs — before the
// merge — for correctness and maximal parallelism, then we compare the
// available parallelism of the buggy intent and the repaired program and
// execute the repaired program on the work-stealing runtime.
//
// Run with: go run ./examples/mergesort
package main

import (
	"fmt"
	"log"

	"finishrepair/tdr"
)

const mergesort = `
func mergesort(a []int, tmp []int, m int, n int) {
    if (m < n) {
        var mid = m + (n - m) / 2;
        async mergesort(a, tmp, m, mid);
        async mergesort(a, tmp, mid + 1, n);
        merge(a, tmp, m, mid, n);
    }
}

func merge(a []int, tmp []int, m int, mid int, n int) {
    var i = m;
    var j = mid + 1;
    var k = m;
    while (i <= mid && j <= n) {
        if (a[i] <= a[j]) { tmp[k] = a[i]; i = i + 1; }
        else { tmp[k] = a[j]; j = j + 1; }
        k = k + 1;
    }
    while (i <= mid) { tmp[k] = a[i]; i = i + 1; k = k + 1; }
    while (j <= n)   { tmp[k] = a[j]; j = j + 1; k = k + 1; }
    for (var t = m; t <= n; t = t + 1) { a[t] = tmp[t]; }
}

func main() {
    var size = 2048;
    var a = make([]int, size);
    var tmp = make([]int, size);
    var st = make([]int, 1);
    st[0] = 42;
    for (var i = 0; i < size; i = i + 1) {
        st[0] = (st[0] * 1103515245 + 12345) % 2147483648;
        a[i] = st[0] % 100000;
    }
    mergesort(a, tmp, 0, size - 1);
    var sorted = true;
    for (var i = 1; i < size; i = i + 1) {
        if (a[i - 1] > a[i]) { sorted = false; }
    }
    println(sorted);
}
`

func main() {
	prog, err := tdr.Load(mergesort)
	if err != nil {
		log.Fatal(err)
	}

	// The unsynchronized program is buggy: the depth-first test run
	// reveals the races.
	races, err := prog.Detect(tdr.MRW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unsynchronized mergesort: %d data race(s)\n", len(races.Races))

	rep, err := prog.Repair(tdr.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired with %d finish(es), %d iteration(s)\n", rep.FinishesInserted, rep.Iterations)

	pl, err := prog.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("work = %d units, span = %d units, parallelism = %.1fx\n",
		pl.Work, pl.Span, pl.Ratio())

	seq, err := prog.RunSequential()
	if err != nil {
		log.Fatal(err)
	}
	par, err := prog.RunParallel(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %spar:        %s", seq, par)
	if seq == par && seq == "true\n" {
		fmt.Println("parallel mergesort sorts correctly after repair")
	} else {
		log.Fatal("outputs diverged")
	}
	fmt.Println("\nrepaired source:")
	fmt.Println(prog.Source())
}
