// Spanning tree: repairing a level-synchronous parallel graph traversal.
//
// Each BFS level claims parents for unvisited vertices in parallel
// chunks (phase 1) and then merges the claims sequentially (phase 2).
// Without a finish between the phases the merge races with the claim
// tasks. This example strips the expert synchronization, repairs the
// program, validates the spanning tree, and reports the parallelism.
//
// Run with: go run ./examples/spanningtree
package main

import (
	"fmt"
	"log"
	"strings"

	"finishrepair/internal/bench"
	"finishrepair/tdr"
)

func main() {
	// Reuse the benchmark program at a demo-friendly size.
	b := bench.Get("Spanning Tree")
	prog, err := tdr.Load(b.Src(400))
	if err != nil {
		log.Fatal(err)
	}

	want, err := prog.RunSequential()
	if err != nil {
		log.Fatal(err)
	}

	removed := prog.StripFinishes()
	fmt.Printf("removed %d expert finish(es); program is now under-synchronized\n", removed)

	races, err := prog.Detect(tdr.MRW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d race(s) between claim tasks and the sequential merge\n", len(races.Races))

	rep, err := prog.Repair(tdr.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair inserted %d finish(es) in %d iteration(s)\n", rep.FinishesInserted, rep.Iterations)

	got, err := prog.RunParallel(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial elision:   %srepaired (par):  %s", want, got)
	if got != want {
		log.Fatal("repaired parallel run diverged from the serial elision")
	}
	// Output is "<visited> <checksum>": all vertices must be reached.
	fields := strings.Fields(want)
	fmt.Printf("all %s vertices reached; spanning tree checksum %s\n", fields[0], fields[1])

	pl, err := prog.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("work/span parallelism after repair: %.1fx\n", pl.Ratio())
}
