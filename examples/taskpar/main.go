// taskpar: the structured async/finish runtime for plain Go code.
//
// Go's goroutines have no finish scopes: nothing in the language waits
// for a task *and everything it transitively spawned*. The taskpar
// package provides that terminally-strict discipline. This example
// builds a parallel divide-and-conquer sum and a parallel quicksort on
// top of it.
//
// Run with: go run ./examples/taskpar
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"finishrepair/taskpar"
)

// parSum sums s by splitting in half until chunks are small.
func parSum(c *taskpar.Ctx, s []int64, out *int64) {
	if len(s) <= 1024 {
		var t int64
		for _, v := range s {
			t += v
		}
		*out = t
		return
	}
	var left, right int64
	mid := len(s) / 2
	c.Finish(func(c *taskpar.Ctx) {
		c.Async(func(c *taskpar.Ctx) { parSum(c, s[:mid], &left) })
		c.Async(func(c *taskpar.Ctx) { parSum(c, s[mid:], &right) })
	})
	*out = left + right
}

// parQuicksort sorts s in place; the recursive tasks join at the
// caller's finish scope, exactly the paper's Figure 2 placement.
func parQuicksort(c *taskpar.Ctx, s []int) {
	if len(s) < 512 {
		sort.Ints(s)
		return
	}
	p := s[len(s)/2]
	i, j := 0, len(s)-1
	for i <= j {
		for s[i] < p {
			i++
		}
		for s[j] > p {
			j--
		}
		if i <= j {
			s[i], s[j] = s[j], s[i]
			i++
			j--
		}
	}
	lo, hi := s[:j+1], s[i:]
	c.Async(func(c *taskpar.Ctx) { parQuicksort(c, lo) })
	c.Async(func(c *taskpar.Ctx) { parQuicksort(c, hi) })
}

func main() {
	exec := taskpar.NewPoolExecutor(0)
	defer exec.Shutdown()
	fmt.Println("executor:", exec)

	rng := rand.New(rand.NewSource(7))
	nums := make([]int64, 1<<20)
	var want int64
	for i := range nums {
		nums[i] = int64(rng.Intn(1000))
		want += nums[i]
	}
	var got int64
	exec.Finish(func(c *taskpar.Ctx) { parSum(c, nums, &got) })
	fmt.Printf("parallel sum: %d (reference %d)\n", got, want)
	if got != want {
		log.Fatal("sum mismatch")
	}

	data := make([]int, 1<<18)
	for i := range data {
		data[i] = rng.Intn(1 << 20)
	}
	// One finish around the top-level call joins the whole task tree.
	exec.Finish(func(c *taskpar.Ctx) { parQuicksort(c, data) })
	if !sort.IntsAreSorted(data) {
		log.Fatal("quicksort produced unsorted output")
	}
	fmt.Printf("parallel quicksort sorted %d elements\n", len(data))
}
