// Homework grading: using the repair tool as an autograder (paper §7.4).
//
// The assignment: insert finish statements into a parallel quicksort so
// that no data races remain and parallelism is maximal. The tool repairs
// the bare assignment itself to obtain the reference solution, then each
// submission is graded: racy, over-synchronized, or matching the tool.
//
// Run with: go run ./examples/homework
package main

import (
	"fmt"
	"log"

	"finishrepair/internal/homework"
)

func main() {
	toolSpan, toolSrc, err := homework.ToolRepair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference solution (tool repair, critical path %d units) computed\n\n", toolSpan)

	// Grade one submission of each strategy in detail.
	for i := range homework.Strategies {
		st := &homework.Strategies[i]
		sub := homework.Submission{ID: i + 1, Strategy: st, Source: st.Render(homework.InputSize)}
		gr, err := homework.Grade(sub, toolSpan, toolSrc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s -> %-17s", st.Name, gr.Verdict)
		if gr.Races > 0 {
			fmt.Printf(" (%d races remain)", gr.Races)
		} else {
			fmt.Printf(" (span %d vs tool %d)", gr.Span, gr.ToolSpan)
		}
		fmt.Printf("   %s\n", st.Desc)
	}

	// Then the whole class.
	sr, err := homework.RunStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull class of %d submissions: %d racy / %d over-synchronized / %d match the tool\n",
		len(sr.Results), sr.Racy, sr.OverSync, sr.Matching)
	fmt.Println("(paper §7.4 reports 5 / 29 / 25)")
}
