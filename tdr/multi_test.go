package tdr_test

import (
	"fmt"
	"strings"
	"testing"

	"finishrepair/tdr"
)

// sizedSrc renders a program whose second race only manifests for large
// inputs: the conditional async never runs when n <= 4, so a small test
// input cannot drive its repair.
func sizedSrc(n int) string {
	return fmt.Sprintf(`
func main() {
    var n = %d;
    var a = make([]int, 8);
    if (n > 4) {
        async { a[0] = n; }
    }
    async { a[1] = 2; }
    println(a[0] + a[1]);
}
`, n)
}

func TestCoverageFlagsInadequateInput(t *testing.T) {
	small, err := tdr.Load(sizedSrc(2))
	if err != nil {
		t.Fatal(err)
	}
	cov, err := small.Coverage()
	if err != nil {
		t.Fatal(err)
	}
	if cov.Adequate() {
		t.Errorf("small input should be inadequate (async unexecuted): %v", cov)
	}
	if cov.Asyncs != 2 || cov.AsyncsRun != 1 {
		t.Errorf("async coverage = %d/%d, want 1/2", cov.AsyncsRun, cov.Asyncs)
	}

	big, err := tdr.Load(sizedSrc(8))
	if err != nil {
		t.Fatal(err)
	}
	cov, err = big.Coverage()
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Adequate() {
		t.Errorf("large input should be adequate: %v", cov)
	}
}

func TestCoverageFullOnBenchStyleProgram(t *testing.T) {
	p, err := tdr.Load(`
func work(a []int, i int) { a[i] = i; }
func main() {
    var a = make([]int, 4);
    finish {
        for (var i = 0; i < 4; i = i + 1) {
            async work(a, i);
        }
    }
    println(a[0] + a[1] + a[2] + a[3]);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := p.Coverage()
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Adequate() || cov.FuncsRun != cov.Funcs || cov.StmtsRun != cov.Stmts {
		t.Errorf("expected full coverage, got %v", cov)
	}
}

// RepairAcross: repairing only on the small input leaves the big input
// racy; iterating over both inputs fixes everything.
func TestRepairAcrossInputs(t *testing.T) {
	// Single small input: the conditional async's race is invisible.
	smallOnly, err := tdr.Load(sizedSrc(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smallOnly.Repair(tdr.RepairOptions{}); err != nil {
		t.Fatal(err)
	}
	// Render the same placements onto the big input by reusing the
	// multi-input API with just the small source, then checking the big
	// rendering still races.
	repairedSrc, _, err := tdr.RepairAcross([]string{sizedSrc(2), sizedSrc(8)}, tdr.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tdr.Load(repairedSrc)
	if err != nil {
		t.Fatalf("combined repair invalid: %v\n%s", err, repairedSrc)
	}
	det, err := p.Detect(tdr.MRW)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Races) != 0 {
		t.Errorf("%d races remain on the large input\n%s", len(det.Races), repairedSrc)
	}
	if !strings.Contains(repairedSrc, "finish") {
		t.Error("no finishes in combined repair")
	}
	// Semantics: repaired big input equals its elision.
	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.RunParallel(2)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par || seq != "10\n" {
		t.Errorf("seq %q par %q, want 10", seq, par)
	}
}

func TestRepairAcrossRejectsEmpty(t *testing.T) {
	if _, _, err := tdr.RepairAcross(nil, tdr.RepairOptions{}); err == nil {
		t.Error("expected error for empty input list")
	}
}
