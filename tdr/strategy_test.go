package tdr_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"finishrepair/tdr"
)

// reductionSrc squares elements in parallel and accumulates into a
// shared sum: the commutative-update shape where isolated wrapping
// preserves output and keeps the asyncs parallel.
const reductionSrc = `
var sum = 0;

func main() {
    var a = make([]int, 8);
    for (var i = 0; i < 8; i = i + 1) { a[i] = i + 1; }
    finish {
        for (var i = 0; i < 8; i = i + 1) {
            async {
                var t = a[i] * a[i];
                sum = sum + t;
            }
        }
    }
    println(sum);
}
`

func TestTdrParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want tdr.Strategy
		ok   bool
	}{
		{"finish", tdr.Finish, true},
		{"isolated", tdr.Isolated, true},
		{"auto", tdr.Auto, true},
		{"nope", tdr.Finish, false},
	}
	for _, c := range cases {
		got, ok := tdr.ParseStrategy(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// The acceptance path: -strategy auto selects isolated on the
// reduction, the repaired program survives K=16 adversarial schedules
// with byte-identical output, and the choice lands in the explain
// record with a strictly lower critical path than finish.
func TestRepairStrategyAutoIsolatedAdversaryVerified(t *testing.T) {
	pAuto := mustLoad(t, reductionSrc)
	repAuto, err := pAuto.Repair(tdr.RepairOptions{
		Strategy:           tdr.Auto,
		Explain:            true,
		AdversarySchedules: 16,
		SchedSeed:          1,
	})
	if err != nil {
		t.Fatalf("Repair(auto): %v", err)
	}
	if repAuto.IsolatedInserted == 0 {
		t.Fatalf("auto inserted no isolated:\n%s", pAuto.Source())
	}
	if repAuto.Adversary == nil || repAuto.Adversary.Schedules != 16 {
		t.Fatalf("adversary verification did not run with K=16: %+v", repAuto.Adversary)
	}
	if repAuto.Adversary.Failures != 0 {
		t.Fatalf("isolated repair diverged under adversarial schedules: %+v", repAuto.Adversary.First)
	}
	serial, err := pAuto.RunSequential()
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if repAuto.Output != serial {
		t.Fatalf("repaired output %q != serial oracle %q", repAuto.Output, serial)
	}
	if !strings.Contains(pAuto.Source(), "isolated {") {
		t.Errorf("repaired source lacks isolated:\n%s", pAuto.Source())
	}

	pFin := mustLoad(t, reductionSrc)
	repFin, err := pFin.Repair(tdr.RepairOptions{Explain: true})
	if err != nil {
		t.Fatalf("Repair(finish): %v", err)
	}
	if repFin.IsolatedInserted != 0 {
		t.Errorf("finish strategy inserted %d isolated", repFin.IsolatedInserted)
	}
	if repAuto.Output != repFin.Output {
		t.Errorf("strategies disagree on output: auto %q finish %q", repAuto.Output, repFin.Output)
	}
	if repAuto.Explain.CPLAfter.Span >= repFin.Explain.CPLAfter.Span {
		t.Errorf("auto span %d, want < finish span %d",
			repAuto.Explain.CPLAfter.Span, repFin.Explain.CPLAfter.Span)
	}
	found := false
	for _, f := range repAuto.Explain.Finishes {
		if f.Strategy == "isolated" && f.Finish.Kind == "isolated" && f.StrategyWhy != "" {
			found = true
		}
	}
	if !found {
		t.Error("explain record carries no isolated strategy choice")
	}
}

// TestExamplesStrategyAutoSweep is the acceptance sweep over the
// bundled examples: repairing every examples/hj program with -strategy
// auto must keep the output byte-identical to the serial oracle under
// K=16 adversarial schedules, and on at least two of the bundled
// reduction/counter benchmarks auto must choose isolated with a
// strictly lower post-repair critical path than the finish strategy.
func TestExamplesStrategyAutoSweep(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "examples", "hj", "*.hj"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	isolatedWins := 0
	for _, m := range matches {
		src, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(m), ".hj")
		t.Run(name, func(t *testing.T) {
			pAuto := mustLoad(t, string(src))
			repAuto, err := pAuto.Repair(tdr.RepairOptions{
				Strategy:           tdr.Auto,
				Explain:            true,
				AdversarySchedules: 16,
				SchedSeed:          1,
			})
			if err != nil {
				t.Fatalf("Repair(auto) on %s: %v", name, err)
			}
			if repAuto.Adversary == nil || repAuto.Adversary.Schedules != 16 {
				t.Fatalf("adversary verification did not run with K=16: %+v", repAuto.Adversary)
			}
			if repAuto.Adversary.Failures != 0 {
				t.Fatalf("auto repair of %s diverged under adversarial schedules: %+v",
					name, repAuto.Adversary.First)
			}
			serial, err := mustLoad(t, string(src)).RunSequential()
			if err != nil {
				t.Fatalf("RunSequential: %v", err)
			}
			if repAuto.Output != serial {
				t.Fatalf("auto output %q != serial oracle %q", repAuto.Output, serial)
			}
			if repAuto.IsolatedInserted == 0 {
				return
			}
			repFin, err := mustLoad(t, string(src)).Repair(tdr.RepairOptions{
				Strategy: tdr.Finish,
				Explain:  true,
			})
			if err != nil {
				t.Fatalf("Repair(finish) on %s: %v", name, err)
			}
			if repFin.Output != repAuto.Output {
				t.Fatalf("strategies disagree on output: auto %q finish %q", repAuto.Output, repFin.Output)
			}
			if repAuto.Explain.CPLAfter.Span < repFin.Explain.CPLAfter.Span {
				isolatedWins++
			}
		})
	}
	if isolatedWins < 2 {
		t.Errorf("auto chose isolated with a strictly lower critical path on %d examples, want >= 2",
			isolatedWins)
	}
}
