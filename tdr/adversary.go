// Adversarial schedule replay: the robustness layer on top of the
// repair loop. Where the repair's guarantee is analytic (the detector
// found no race on the canonical execution), this layer is empirical:
// it replays each reported race under deterministic race-directed
// schedules until the program observably misbehaves (a witness), drives
// uncovered static candidates with position-directed schedules (gap
// search), and re-executes the repaired program under K adversarial
// schedules checking each against the serial oracle (verification).
// Every schedule is deterministic and replayable from its rendered name
// plus the seed.
package tdr

import (
	"context"
	"fmt"
	"sort"

	"finishrepair/internal/adversary"
	"finishrepair/internal/analysis"
	"finishrepair/internal/guard"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/obs/provenance"
)

// DefaultAdversarySchedules is the verification suite size when
// RepairOptions.Witness is set without an explicit AdversarySchedules.
const DefaultAdversarySchedules = adversary.DefaultRandomSchedules

// Gap-search verdicts (RepairReport.GapVerdicts[i].Status).
const (
	// GapWitnessed: a schedule directed at the candidate made the
	// repaired program diverge — a real race the test input's repair did
	// not cover.
	GapWitnessed = adversary.GapWitnessed
	// GapUnreachable: no schedule ever executed the candidate's
	// statements — the pair is unreachable on this input under any
	// interleaving; only a different input could drive it.
	GapUnreachable = adversary.GapUnreachable
	// GapNoDivergence: the statements ran but no tried interleaving
	// misbehaved.
	GapNoDivergence = adversary.GapNoDivergence
)

// Witness is a reproduced race: a deterministic schedule under which
// the program observably diverges from the serial oracle, plus the
// evidence. Re-running the same program under the same schedule
// reproduces the same divergence.
type Witness struct {
	// Race attributes the witness to a reported race ("W->W on loc 1
	// (3:9 vs 4:9)"); empty for unattributed verify divergences.
	Race string
	// Schedule is the replayable schedule name ("defer-write@loc1",
	// "random#7").
	Schedule string
	// Reason is "output differs", "final state differs", or
	// "schedule failed: ...".
	Reason string
	// Expected/Actual are the oracle's and the schedule's outputs.
	Expected, Actual string
	// ExpectedState/ActualState render the final globals — the torn
	// value itself when the divergence never reaches the output.
	ExpectedState, ActualState string
	// Trace is the schedule's grant-sequence digest (hex), for replay
	// checking.
	Trace string
}

// AdversaryReport summarizes the post-repair K-schedule verification.
type AdversaryReport struct {
	// Schedules is how many adversarial schedules ran; Failures how many
	// diverged from the serial oracle (0 for a sound repair).
	Schedules, Failures int
	// Seed based the seeded random-priority schedules.
	Seed int64
	// First is the first divergence, if any.
	First *Witness
}

// GapVerdict is the schedule-search verdict for one coverage gap.
type GapVerdict struct {
	// Gap is the rendered candidate (matches CoverageGap.String()).
	Gap string
	// Status is GapWitnessed, GapUnreachable, or GapNoDivergence.
	Status string
	// Schedule is the witnessing schedule when Status is GapWitnessed.
	Schedule string
}

// AdversaryError reports that the repaired program diverged from the
// serial oracle under adversarial schedules — the repair is unsound for
// this input. Test with errors.As.
type AdversaryError struct {
	Failures, Schedules int
	First               *Witness
}

func (e *AdversaryError) Error() string {
	msg := fmt.Sprintf("adversarial verify: repaired program diverged from the serial oracle under %d of %d schedules", e.Failures, e.Schedules)
	if e.First != nil {
		msg += fmt.Sprintf(" (first: %s under %s)", e.First.Reason, e.First.Schedule)
	}
	return msg
}

func convertWitness(w *adversary.Witness, raceDesc string) Witness {
	return Witness{
		Race:          raceDesc,
		Schedule:      w.Schedule.String(),
		Reason:        w.Reason,
		Expected:      w.Expected,
		Actual:        w.Actual,
		ExpectedState: w.ExpectedState,
		ActualState:   w.ActualState,
		Trace:         fmt.Sprintf("%016x", w.Trace),
	}
}

func witnessRec(w Witness) provenance.WitnessRec {
	return provenance.WitnessRec{
		Race:          w.Race,
		Schedule:      w.Schedule,
		Reason:        w.Reason,
		Expected:      w.Expected,
		Actual:        w.Actual,
		ExpectedState: w.ExpectedState,
		ActualState:   w.ActualState,
		Trace:         w.Trace,
	}
}

// adversaryStage runs the witness search, gap search, and K-schedule
// verification after the repair loop, filling report.Witnesses,
// report.GapVerdicts, and report.Adversary. origSrc is the pre-repair
// source (the witness search replays the races where they were
// reported); the gap search and verification run on the repaired AST,
// whose original statements keep their source positions. repairFailed
// limits the stage to the witness search: a program the repair loop
// left racy has nothing sound to verify.
func (p *Program) adversaryStage(opts RepairOptions, m *guard.Meter, report *RepairReport, origSrc string, targets []adversary.RaceTarget, res *analysis.Result, repairFailed bool) error {
	tr := opts.Tracer
	if tr == nil {
		tr = p.tracer
	}
	k := opts.AdversarySchedules
	if k <= 0 {
		k = DefaultAdversarySchedules
	}
	var stageErr error
	err := guard.Protect("adversary", func() error {
		m.SetPhase("adversary")
		sopts := adversary.SearchOptions{Meter: m, Seed: opts.SchedSeed}

		// Witness search: replay each reported race on the original
		// program until a race-directed or seeded random schedule makes
		// it observably diverge from the serial oracle.
		if opts.Witness && len(targets) > 0 {
			prog, perr := parser.Parse(origSrc)
			if perr != nil {
				return perr
			}
			info, serr := sem.Check(prog)
			if serr != nil {
				return serr
			}
			oracle, oerr := adversary.Oracle(info, m)
			if oerr != nil {
				return oerr
			}
			sp := tr.Start("witness-search").SetInt("targets", int64(len(targets)))
			for _, tgt := range targets {
				w, werr := adversary.FindWitness(info, oracle, tgt, sopts)
				if werr != nil {
					sp.End()
					return werr
				}
				if w != nil {
					report.Witnesses = append(report.Witnesses, convertWitness(w, tgt.String()))
				}
			}
			sp.SetInt("witnesses", int64(len(report.Witnesses))).End()
		}
		if repairFailed {
			return nil
		}

		info, serr := sem.Check(p.prog)
		if serr != nil {
			return serr
		}
		oracle, oerr := adversary.Oracle(info, m)
		if oerr != nil {
			return oerr
		}
		if oracle.Err != nil {
			return fmt.Errorf("sequential oracle failed on the repaired program: %w", oracle.Err)
		}

		// Gap search: drive each unexercised static candidate with
		// position-directed schedules on the repaired program (covered
		// races are fixed there, so any divergence belongs to a gap).
		if opts.Witness && res != nil {
			uncovered := res.UncoveredCandidates()
			if len(uncovered) > 0 {
				sp := tr.Start("gap-search").SetInt("gaps", int64(len(uncovered)))
				for _, c := range uncovered {
					gres, gerr := adversary.SearchGap(info, oracle, adversary.GapTarget{
						APos: c.APos, BPos: c.BPos, Desc: c.String(),
					}, sopts)
					if gerr != nil {
						sp.End()
						return gerr
					}
					gv := GapVerdict{Gap: gres.Target.Desc, Status: gres.Status}
					if gres.Witness != nil {
						gv.Schedule = gres.Witness.Schedule.String()
					}
					report.GapVerdicts = append(report.GapVerdicts, gv)
				}
				sp.End()
			}
		}

		// Adversarial verification: the repaired program must reproduce
		// the serial oracle under every one of K schedules — the
		// race-directed schedules on every previously racing location
		// (the interleavings that broke it before), then seeded
		// random-priority schedules.
		locs := targetLocs(targets)
		scheds := adversary.VerifySchedules(locs, k, opts.SchedSeed)
		sp := tr.Start("adversarial-verify").SetInt("schedules", int64(len(scheds)))
		vrep, verr := adversary.Verify(info, oracle, scheds, sopts)
		if verr != nil {
			sp.End()
			return verr
		}
		sp.SetInt("failures", int64(vrep.Failures)).End()
		ar := &AdversaryReport{Schedules: len(vrep.Schedules), Failures: vrep.Failures, Seed: opts.SchedSeed}
		if vrep.First != nil {
			w := convertWitness(vrep.First, "")
			ar.First = &w
		}
		report.Adversary = ar
		if vrep.Failures > 0 {
			stageErr = &AdversaryError{Failures: vrep.Failures, Schedules: len(vrep.Schedules), First: ar.First}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return stageErr
}

func targetLocs(targets []adversary.RaceTarget) []uint64 {
	seen := map[uint64]bool{}
	var locs []uint64
	for _, t := range targets {
		if !seen[t.Loc] {
			seen[t.Loc] = true
			locs = append(locs, t.Loc)
		}
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// foldAdversary copies the stage's results into the provenance record.
func foldAdversary(ex *provenance.Explain, report *RepairReport) {
	for _, w := range report.Witnesses {
		ex.Witnesses = append(ex.Witnesses, witnessRec(w))
	}
	for _, g := range report.GapVerdicts {
		ex.GapVerdicts = append(ex.GapVerdicts, provenance.GapVerdictRec{Gap: g.Gap, Status: g.Status, Schedule: g.Schedule})
	}
	if report.Adversary != nil {
		ar := &provenance.AdversaryRec{
			Schedules: report.Adversary.Schedules,
			Failures:  report.Adversary.Failures,
			Seed:      report.Adversary.Seed,
		}
		if report.Adversary.First != nil {
			r := witnessRec(*report.Adversary.First)
			ar.First = &r
		}
		ex.Adversary = ar
	}
}

// StressOptions configures Stress.
type StressOptions struct {
	// Schedules is the suite size (0 = DefaultAdversarySchedules).
	Schedules int
	// Seed bases the seeded random-priority schedules.
	Seed int64
	// Budget bounds the run (every schedule's yields charge the op
	// budget).
	Budget Budget
}

// StressReport summarizes an adversarial stress run.
type StressReport struct {
	// Schedules is how many schedules ran; Failures how many diverged.
	Schedules, Failures int
	// Diverged lists each diverging schedule with its reason.
	Diverged []string
	// First is the first divergence in full.
	First *Witness
}

// Stress re-executes the program under adversarial schedules — the
// race-directed schedules for every global variable plus seeded
// random-priority schedules — and checks each against the serial
// oracle. A race-free program passes every schedule; a racy one is
// reported with a replayable witness. This is hjrun -mode stress.
func (p *Program) Stress(ctx context.Context, opts StressOptions) (*StressReport, error) {
	m := guard.NewMeter(ctx, opts.Budget)
	k := opts.Schedules
	if k <= 0 {
		k = DefaultAdversarySchedules
	}
	var rep *StressReport
	err := guard.Protect("stress", func() error {
		m.SetPhase("stress")
		info, serr := sem.Check(p.prog)
		if serr != nil {
			return serr
		}
		oracle, oerr := adversary.Oracle(info, m)
		if oerr != nil {
			return oerr
		}
		if oracle.Err != nil {
			return fmt.Errorf("sequential oracle failed: %w", oracle.Err)
		}
		locs := make([]uint64, 0, info.GlobalCount)
		for i := 0; i < info.GlobalCount; i++ {
			locs = append(locs, uint64(1+i))
		}
		scheds := adversary.VerifySchedules(locs, k, opts.Seed)
		sp := p.tracer.Start("adversarial-stress").SetInt("schedules", int64(len(scheds)))
		vrep, verr := adversary.Verify(info, oracle, scheds, adversary.SearchOptions{Meter: m, Seed: opts.Seed})
		if verr != nil {
			sp.End()
			return verr
		}
		sp.SetInt("failures", int64(vrep.Failures)).End()
		rep = &StressReport{Schedules: len(vrep.Schedules), Failures: vrep.Failures}
		for _, s := range vrep.Schedules {
			if s.Diverged {
				rep.Diverged = append(rep.Diverged, fmt.Sprintf("%s: %s", s.Schedule, s.Reason))
			}
		}
		if vrep.First != nil {
			w := convertWitness(vrep.First, "")
			rep.First = &w
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("tdr: %w", err)
	}
	return rep, nil
}
