package tdr_test

import (
	"errors"
	"testing"

	"finishrepair/tdr"
)

// fuzzBudget keeps arbitrary fuzz programs cheap: a small op limit trips
// fast on generated infinite loops, and the DP-state and iteration
// bounds keep placement from blowing up on degenerate race sets.
var fuzzBudget = tdr.Budget{
	OpLimit:       200_000,
	MaxDPStates:   200_000,
	MaxIterations: 4,
}

// FuzzRepairRoundTrip asserts the pipeline's containment and semantics
// contracts on arbitrary source text: no stage panics (typed errors are
// fine), and whenever a repair succeeds its final race-free output must
// equal the program's serial elision — the paper's correctness
// criterion.
func FuzzRepairRoundTrip(f *testing.F) {
	seeds := []string{
		"func main() { }",
		"var g = 0;\nfunc main() { async { g = 1; } g = 2; println(g); }",
		"var g = 0;\nvar h = 0;\nfunc main() { finish { async { g = 1; } } async { h = 2; } h = 3; }",
		"func work(a []int, i int) { a[i] = i * 2; }\nfunc main() { var a = make([]int, 16); for (var i = 0; i < 16; i = i + 1) { async work(a, i); } println(a[3]); }",
		"func main() { while (true) { } }",
		"var g = 0;\nfunc main() { async { async { g = 1; } g = 2; } g = 3; }",
		"var g = 0;\nfunc main() { finish { async { isolated { g = g + 1; } } isolated { g = g + 2; } } println(g); }",
		"var s = 0;\nvar a = make([]int, 4);\nfunc main() { finish { for (var i = 0; i < 4; i = i + 1) { async { var t = a[i] * a[i]; s = s + t; } } } println(s); }",
		"func main() { isolated { } isolated { isolated { } } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := tdr.Load(src)
		if err != nil {
			return
		}
		var ie *tdr.InternalError
		want, err := p.RunSequentialCtx(t.Context(), fuzzBudget)
		if err != nil {
			if errors.As(err, &ie) {
				t.Fatalf("sequential run leaked a panic: %v\n%s", ie, ie.Stack)
			}
			return
		}
		rep, err := p.RepairCtx(t.Context(), tdr.RepairOptions{Budget: fuzzBudget})
		if err != nil {
			if errors.As(err, &ie) {
				t.Fatalf("repair leaked a panic: %v\n%s", ie, ie.Stack)
			}
			return
		}
		if rep.Output != want {
			t.Fatalf("repaired output diverges from serial elision\nsource:\n%s\nserial:\n%q\nrepaired:\n%q",
				src, want, rep.Output)
		}
	})
}
