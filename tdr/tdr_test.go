package tdr_test

import (
	"strings"
	"testing"

	"finishrepair/tdr"
)

const buggy = `
func fib(ret []int, n int) {
    if (n < 2) { ret[0] = n; return; }
    var x = make([]int, 1);
    var y = make([]int, 1);
    async fib(x, n - 1);
    async fib(y, n - 2);
    ret[0] = x[0] + y[0];
}
func main() {
    var r = make([]int, 1);
    async fib(r, 10);
    println(r[0]);
}
`

func TestLoadRejectsInvalid(t *testing.T) {
	for _, src := range []string{
		"not a program",
		"func main() { undefined(); }",
		"func f() {}", // no main
	} {
		if _, err := tdr.Load(src); err == nil {
			t.Errorf("Load(%q) succeeded, want error", src)
		}
	}
}

func TestEndToEnd(t *testing.T) {
	p, err := tdr.Load(buggy)
	if err != nil {
		t.Fatal(err)
	}
	det, err := p.Detect(tdr.MRW)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Races) == 0 {
		t.Fatal("no races detected in buggy program")
	}
	if det.Races[0].SrcPos == "" || det.Races[0].DstPos == "" {
		t.Error("race positions missing")
	}

	rep, err := p.Repair(tdr.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinishesInserted != 2 || rep.Output != "55\n" {
		t.Errorf("repair: inserted=%d output=%q", rep.FinishesInserted, rep.Output)
	}
	if p.CountFinishes() != 2 {
		t.Errorf("CountFinishes = %d, want 2", p.CountFinishes())
	}
	if !strings.Contains(p.Source(), "finish {") {
		t.Error("repaired source lacks finish")
	}

	confirm, err := p.Detect(tdr.SRW)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirm.Races) != 0 {
		t.Errorf("%d races after repair", len(confirm.Races))
	}

	seq, err := p.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.RunParallel(2)
	if err != nil {
		t.Fatal(err)
	}
	if seq != "55\n" || par != "55\n" {
		t.Errorf("seq=%q par=%q, want 55", seq, par)
	}

	pl, err := p.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if pl.Work <= 0 || pl.Span <= 0 || pl.Ratio() < 1 {
		t.Errorf("bad parallelism metrics %+v", pl)
	}
}

func TestStripFinishes(t *testing.T) {
	p, err := tdr.Load(`func main() { finish { async { println(1); } } }`)
	if err != nil {
		t.Fatal(err)
	}
	if n := p.StripFinishes(); n != 1 {
		t.Errorf("stripped %d, want 1", n)
	}
	if p.CountFinishes() != 0 {
		t.Error("finishes remain")
	}
	det, err := p.Detect(tdr.MRW)
	if err != nil {
		t.Fatal(err)
	}
	// println in the async vs nothing else: no shared state -> 0 races.
	_ = det
}

func TestParallelismZeroSpan(t *testing.T) {
	var pl tdr.Parallelism
	if pl.Ratio() != 1 {
		t.Error("zero-span ratio should be 1")
	}
}
