package tdr_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"finishrepair/internal/analysis/commute"
	"finishrepair/internal/lang/ast"
	"finishrepair/internal/lang/parser"
	"finishrepair/internal/lang/sem"
	"finishrepair/internal/progen"
	"finishrepair/tdr"
)

// TestCommuteAgreement is the static/semantic agreement gate (run in CI
// as the commute-agreement job): over the bundled examples plus a
// 50-program progen corpus with the Commute shapes enabled, every
// static "commutes" verdict must survive the semantic order probe. A
// refuted probe means the recognizer accepted a region whose two
// execution orders disagree — a soundness bug in the analysis, so it
// fails the test rather than degrading. Unsupported probes (regions the
// serial oracle cannot rebuild) are fine: the strategy layer already
// treats them as "do not isolate".
func TestCommuteAgreement(t *testing.T) {
	type source struct{ name, src string }
	var sources []source

	matches, err := filepath.Glob(filepath.Join("..", "examples", "hj", "*.hj"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no bundled examples found: %v", err)
	}
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, source{filepath.Base(m), string(b)})
	}

	cfg := progen.Default()
	cfg.Commute = true
	const progenSeeds = 50
	for seed := int64(7000); seed < 7000+progenSeeds; seed++ {
		sources = append(sources, source{
			name: fmt.Sprintf("progen-%d", seed),
			src:  progen.Gen(seed, cfg),
		})
	}

	verdicts, probed, refuted, unsupported := 0, 0, 0, 0
	for _, s := range sources {
		prog, err := parser.Parse(s.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", s.name, err)
		}
		info, err := sem.Check(prog)
		if err != nil {
			t.Fatalf("%s: check: %v", s.name, err)
		}

		// Collect every distinct recognized update region.
		seen := map[commute.Key]bool{}
		var updates []commute.Update
		for _, fn := range prog.Funcs {
			for _, b := range blocksOf(fn.Body) {
				for i := range b.Stmts {
					u, ok := commute.RecognizeAt(b, i)
					if !ok || seen[u.RegionKey()] {
						continue
					}
					seen[u.RegionKey()] = true
					updates = append(updates, u)
					verdicts++
				}
			}
		}

		// Probe every pair whose order can matter: each region against
		// itself (two concurrent instances), and each compatible pair
		// over overlapping shared state. Incompatible pairs never earn
		// a "commutes" verdict, so they are not probed.
		for i := range updates {
			for j := i; j < len(updates); j++ {
				a, b := updates[i], updates[j]
				if i != j && (!commute.Overlaps(a, b) || !commute.Compatible(a, b)) {
					continue
				}
				probed++
				switch err := commute.ProbePair(info, a, b); {
				case err == nil:
				case errors.Is(err, commute.ErrRefuted):
					refuted++
					t.Errorf("%s: probe REFUTED static commutes verdict for %s/%s regions at %v and %v: %v",
						s.name, a.Family, b.Family, a.Block.Stmts[a.Lo].Pos(), b.Block.Stmts[b.Lo].Pos(), err)
				default:
					unsupported++
				}
			}
		}
	}

	t.Logf("%d sources, %d recognized regions, %d pairs probed, %d refuted, %d unsupported",
		len(sources), verdicts, probed, refuted, unsupported)
	if verdicts == 0 || probed == 0 {
		t.Error("agreement sweep found nothing to check — recognizer or corpus broken")
	}
}

// TestCommuteCorpusRepairsEndToEnd runs the full auto-strategy repair
// over a slice of the Commute corpus: stripping the finishes and
// repairing must restore the serial elision's output even when the
// repair isolates recognized reductions under per-location lock
// classes.
func TestCommuteCorpusRepairsEndToEnd(t *testing.T) {
	cfg := progen.Default()
	cfg.Commute = true
	for seed := int64(7100); seed < 7120; seed++ {
		src := progen.Gen(seed, cfg)
		ref, err := tdrLoadStripped(t, src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := ref.RunSequential()
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		p, err := tdrLoadStripped(t, src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := p.Repair(tdr.RepairOptions{Strategy: tdr.Auto, Budget: tdr.Budget{MaxIterations: 30}})
		if err != nil {
			t.Fatalf("seed %d: repair: %v\n%s", seed, err, src)
		}
		if rep.Output != want {
			t.Fatalf("seed %d: repaired output %q != serial elision %q\n%s",
				seed, rep.Output, want, p.Source())
		}
	}
}

// tdrLoadStripped loads a source and removes its finishes, yielding the
// unsynchronized program the repair loop starts from.
func tdrLoadStripped(t *testing.T, src string) (*tdr.Program, error) {
	t.Helper()
	p, err := tdr.Load(src)
	if err != nil {
		return nil, err
	}
	p.StripFinishes()
	return p, nil
}

// blocksOf returns b and every block nested inside it.
func blocksOf(b *ast.Block) []*ast.Block {
	if b == nil {
		return nil
	}
	out := []*ast.Block{b}
	for _, s := range b.Stmts {
		for _, nb := range ast.StmtBlocks(s) {
			out = append(out, blocksOf(nb)...)
		}
	}
	return out
}
