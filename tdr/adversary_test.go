package tdr_test

import (
	"context"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"finishrepair/internal/bench"
	"finishrepair/tdr"
)

// racyCounter is the canonical lost update: two unjoined increments.
const racyCounter = `
var count = 0;
func main() {
    async { count = count + 1; }
    async { count = count + 1; }
    println(count);
}
`

func mustLoad(t *testing.T, src string) *tdr.Program {
	t.Helper()
	p, err := tdr.Load(src)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return p
}

// TestRepairWitnessAndVerify is the adversary pipeline end to end: the
// racy counter's races are replayed to concrete witnesses on the
// original program, the repair passes the K-schedule verification, and
// everything lands in the explain record.
func TestRepairWitnessAndVerify(t *testing.T) {
	p := mustLoad(t, racyCounter)
	rep, err := p.Repair(tdr.RepairOptions{Witness: true, Vet: true, Explain: true, SchedSeed: 1})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rep.RacesFound == 0 {
		t.Fatal("no races found in the racy counter")
	}
	if len(rep.Witnesses) == 0 {
		t.Fatal("no witnesses: the counter races must replay to a concrete divergence")
	}
	for _, w := range rep.Witnesses {
		if w.Race == "" || w.Schedule == "" || w.Reason == "" {
			t.Errorf("incomplete witness: %+v", w)
		}
		if w.Actual == w.Expected && w.ActualState == w.ExpectedState {
			t.Errorf("witness shows no divergence: %+v", w)
		}
	}
	if rep.Adversary == nil {
		t.Fatal("no adversary report")
	}
	if rep.Adversary.Schedules != tdr.DefaultAdversarySchedules {
		t.Errorf("Schedules = %d, want %d", rep.Adversary.Schedules, tdr.DefaultAdversarySchedules)
	}
	if rep.Adversary.Failures != 0 {
		t.Errorf("repaired program failed %d adversarial schedules; first: %+v", rep.Adversary.Failures, rep.Adversary.First)
	}
	if rep.Explain == nil {
		t.Fatal("no explain record")
	}
	if len(rep.Explain.Witnesses) != len(rep.Witnesses) {
		t.Errorf("explain has %d witnesses, report has %d", len(rep.Explain.Witnesses), len(rep.Witnesses))
	}
	if rep.Explain.Adversary == nil || rep.Explain.Adversary.Schedules != rep.Adversary.Schedules {
		t.Errorf("explain adversary record missing or inconsistent: %+v", rep.Explain.Adversary)
	}
}

// TestAdversaryCatchesBadRepair: verification alone (no witness mode)
// flags a program that is still racy. We fake a "bad repair" by running
// the adversary stage on a program the repair loop has nothing to do
// to... instead, we verify the racy program directly through Stress and
// assert the typed error surfaces through Repair when the repaired
// program misbehaves is covered by the unit layer; here we check the
// options plumbing: AdversarySchedules alone enables the stage.
func TestAdversarySchedulesAloneEnablesVerify(t *testing.T) {
	p := mustLoad(t, racyCounter)
	rep, err := p.Repair(tdr.RepairOptions{AdversarySchedules: 8, SchedSeed: 2})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if len(rep.Witnesses) != 0 {
		t.Errorf("witness search ran without Witness: %d witnesses", len(rep.Witnesses))
	}
	if rep.Adversary == nil || rep.Adversary.Schedules != 8 {
		t.Fatalf("adversary verification did not run with K=8: %+v", rep.Adversary)
	}
	if rep.Adversary.Failures != 0 {
		t.Errorf("repaired counter failed verification: %+v", rep.Adversary.First)
	}
}

// TestAdversaryDeterminism (satellite: -sched-seed determinism): the
// witness, gap, and verify results are bit-identical across repeated
// runs and across analysis worker counts.
func TestAdversaryDeterminism(t *testing.T) {
	run := func(workers int) *tdr.RepairReport {
		p := mustLoad(t, racyCounter)
		rep, err := p.Repair(tdr.RepairOptions{
			Witness: true, Vet: true, SchedSeed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatalf("Repair (workers=%d): %v", workers, err)
		}
		return rep
	}
	base := run(1)
	for _, workers := range []int{1, 8} {
		rep := run(workers)
		if !reflect.DeepEqual(rep.Witnesses, base.Witnesses) {
			t.Errorf("workers=%d: witnesses differ\n%+v\nvs\n%+v", workers, rep.Witnesses, base.Witnesses)
		}
		if !reflect.DeepEqual(rep.Adversary, base.Adversary) {
			t.Errorf("workers=%d: adversary reports differ\n%+v\nvs\n%+v", workers, rep.Adversary, base.Adversary)
		}
		if !reflect.DeepEqual(rep.GapVerdicts, base.GapVerdicts) {
			t.Errorf("workers=%d: gap verdicts differ\n%+v\nvs\n%+v", workers, rep.GapVerdicts, base.GapVerdicts)
		}
	}
}

// TestGapSearchUnexercised (satellite: CoverageGaps handoff): the
// bundled unexercised.hj example's gated writer is a coverage gap, and
// the schedule search proves it unreachable on this input — no
// interleaving of the bundled input ever executes the gated statement.
func TestGapSearchUnexercised(t *testing.T) {
	src, err := os.ReadFile("../examples/hj/unexercised.hj")
	if err != nil {
		t.Fatalf("read example: %v", err)
	}
	p := mustLoad(t, string(src))
	rep, rerr := p.Repair(tdr.RepairOptions{Witness: true, Vet: true, SchedSeed: 3})
	if rerr != nil {
		t.Fatalf("Repair: %v", rerr)
	}
	if len(rep.CoverageGaps) == 0 {
		t.Fatal("no coverage gaps for unexercised.hj")
	}
	if len(rep.GapVerdicts) != len(rep.CoverageGaps) {
		t.Fatalf("%d gap verdicts for %d gaps", len(rep.GapVerdicts), len(rep.CoverageGaps))
	}
	unreachable := 0
	for i, gv := range rep.GapVerdicts {
		if gv.Gap != rep.CoverageGaps[i].String() {
			t.Errorf("verdict %d is for %q, gap is %q", i, gv.Gap, rep.CoverageGaps[i].String())
		}
		if gv.Status == tdr.GapUnreachable {
			unreachable++
		}
		if gv.Status == tdr.GapWitnessed {
			t.Errorf("gap %q witnessed on the repaired program — repair unsound?", gv.Gap)
		}
	}
	if unreachable == 0 {
		t.Errorf("no gap proved unreachable; verdicts: %+v", rep.GapVerdicts)
	}
}

// TestStressRacyAndRepaired: hjrun -mode stress's engine. The racy
// counter diverges under adversarial schedules; its repaired form
// passes all of them.
func TestStressRacyAndRepaired(t *testing.T) {
	p := mustLoad(t, racyCounter)
	rep, err := p.Stress(context.Background(), tdr.StressOptions{Seed: 1})
	if err != nil {
		t.Fatalf("Stress: %v", err)
	}
	if rep.Failures == 0 {
		t.Fatal("stress passed a racy program")
	}
	if rep.First == nil || rep.First.Schedule == "" {
		t.Fatalf("no replayable first divergence: %+v", rep.First)
	}
	if len(rep.Diverged) != rep.Failures {
		t.Errorf("%d diverged entries for %d failures", len(rep.Diverged), rep.Failures)
	}

	if _, err := p.Repair(tdr.RepairOptions{}); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	rep, err = p.Stress(context.Background(), tdr.StressOptions{Seed: 1})
	if err != nil {
		t.Fatalf("Stress (repaired): %v", err)
	}
	if rep.Failures != 0 {
		t.Fatalf("repaired program diverged under %d schedules; first: %+v", rep.Failures, rep.First)
	}
}

// TestStressBudget: schedule yields charge the op budget and the trip
// surfaces as a typed budget error.
func TestStressBudget(t *testing.T) {
	p := mustLoad(t, racyCounter)
	_, err := p.Stress(context.Background(), tdr.StressOptions{Seed: 1, Budget: tdr.Budget{OpLimit: 3}})
	if err == nil || !tdr.IsBudgetOrCanceled(err) {
		t.Fatalf("err = %v, want a budget trip", err)
	}
}

// TestBenchWitnessAndVerify is the acceptance sweep: strip the finishes
// from every bundled benchmark, repair, and require that (a) the races
// the repair reported were replayed to concrete witnesses and (b) the
// repaired program survives the full K=16 adversarial verification
// against the serial oracle.
func TestBenchWitnessAndVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial sweep is slow")
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			size := b.RepairSize
			if size > 12 {
				size = 12
			}
			p := mustLoad(t, b.Src(size))
			p.StripFinishes()
			rep, err := p.Repair(tdr.RepairOptions{Witness: true, SchedSeed: 1})
			if err != nil {
				var ae *tdr.AdversaryError
				if errors.As(err, &ae) {
					t.Fatalf("repaired %s diverged under adversarial schedules: %v", b.Name, ae)
				}
				t.Fatalf("Repair: %v", err)
			}
			if rep.Adversary == nil {
				t.Fatal("no adversary report")
			}
			if rep.Adversary.Failures != 0 {
				t.Fatalf("%d/%d adversarial schedules diverged; first: %+v",
					rep.Adversary.Failures, rep.Adversary.Schedules, rep.Adversary.First)
			}
			if rep.RacesFound > 0 && len(rep.Witnesses) == 0 {
				t.Errorf("%d races reported but none replayed to a witness", rep.RacesFound)
			}
		})
	}
}

// TestAdversaryErrorRendering keeps the operator-facing message stable.
func TestAdversaryErrorRendering(t *testing.T) {
	e := &tdr.AdversaryError{Failures: 3, Schedules: 16, First: &tdr.Witness{Reason: "output differs", Schedule: "defer-write@loc1"}}
	msg := e.Error()
	for _, want := range []string{"3 of 16", "output differs", "defer-write@loc1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}
